package main

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"topoopt/internal/clientretry"
	"topoopt/internal/serve"
)

func TestRequestBodiesDecodeToValidPlanRequests(t *testing.T) {
	bodies, err := requestBodies(loadSpec{
		Model: "bert", Section: "6", Servers: 12, Degree: 4,
		BandwidthGbps: 25, MCMCIters: 30, Rounds: 1, Parallelism: 8, Seeds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 3 {
		t.Fatalf("got %d bodies, want 3", len(bodies))
	}
	for i, b := range bodies {
		var req serve.PlanRequest
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatalf("body %d does not decode: %v", i, err)
		}
		if _, err := req.Model.Resolve(); err != nil {
			t.Errorf("body %d: model would be rejected: %v", i, err)
		}
		if err := req.Options.Validate(); err != nil {
			t.Errorf("body %d: options would be rejected: %v", i, err)
		}
		if req.Options.Seed != int64(i+1) {
			t.Errorf("body %d: seed %d, want %d", i, req.Options.Seed, i+1)
		}
		if req.Options.LinkBandwidth != 25e9 {
			t.Errorf("body %d: bandwidth %g, want 25e9 (Gbps scaling)", i, req.Options.LinkBandwidth)
		}
		if req.Options.Parallelism != 8 {
			t.Errorf("body %d: parallelism %d not carried onto the wire", i, req.Options.Parallelism)
		}
	}
}

func TestRequestBodiesDistinctSeedsDistinctFingerprints(t *testing.T) {
	bodies, err := requestBodies(loadSpec{
		Model: "dlrm", Servers: 8, Degree: 4, BandwidthGbps: 100,
		MCMCIters: 10, Rounds: 1, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b serve.PlanRequest
	if err := json.Unmarshal(bodies[0], &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodies[1], &b); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct seeds should produce distinct fingerprints (cache-miss traffic)")
	}
}

func TestTallyReportTaxonomy(t *testing.T) {
	ty := newTally()
	ty.add(clientretry.OK, nil)
	ty.add(clientretry.OK, nil)
	ty.add(clientretry.Connect, errors.New("dial tcp: connection refused"))
	ty.add(clientretry.Connect, errors.New("a later connect error"))
	ty.add(clientretry.Exhausted, nil)

	got := ty.report("  ")
	if !strings.Contains(got, "errors[connect]: 2") {
		t.Errorf("report missing connect count:\n%s", got)
	}
	if !strings.Contains(got, "connection refused") {
		t.Errorf("report should carry the first error per class:\n%s", got)
	}
	if strings.Contains(got, "a later connect error") {
		t.Errorf("report should keep only the first error per class:\n%s", got)
	}
	if !strings.Contains(got, "errors[retry-exhausted]: 1") {
		t.Errorf("report missing exhausted count:\n%s", got)
	}
	if strings.Contains(got, "errors[ok]") || strings.Contains(got, "errors[timeout]") {
		t.Errorf("report should omit zero/OK classes:\n%s", got)
	}
}

func TestLatHistPerClassQuantiles(t *testing.T) {
	h := newLatHist()
	for i := 1; i <= 100; i++ {
		h.observe("plan", clientretry.OK, float64(i)/1000) // 1ms..100ms
	}
	h.observe("plan", clientretry.Exhausted, 2.5) // includes backoff sleeps
	h.observe("plan", clientretry.Exhausted, 3.5)

	ok := h.ok("plan")
	if len(ok) != 100 {
		t.Fatalf("ok series has %d samples, want 100", len(ok))
	}

	got := h.report("  ")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("report has %d lines, want 2 (one per populated class):\n%s", len(lines), got)
	}
	// OK row first, failure classes after, and the slow retry-exhausted
	// samples stay out of the OK quantiles.
	if !strings.HasPrefix(lines[0], "  latency[plan,ok]: n=100 ") {
		t.Errorf("first row should be the OK class: %q", lines[0])
	}
	if !strings.Contains(lines[0], "p50=0.0505s") || !strings.Contains(lines[0], "max=0.1s") {
		t.Errorf("OK quantiles wrong (retry latencies leaked in?): %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  latency[plan,retry-exhausted]: n=2 ") ||
		!strings.Contains(lines[1], "max=3.5s") {
		t.Errorf("exhausted row wrong: %q", lines[1])
	}
}

func TestLatHistMultipleEndpointsSorted(t *testing.T) {
	h := newLatHist()
	h.observe("plan", clientretry.OK, 0.01)
	h.observe("compare", clientretry.OK, 0.02)
	h.observe("compare", clientretry.Status5xx, 0.03)
	got := h.report("")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	want := []string{"latency[compare,ok]:", "latency[compare,5xx]:", "latency[plan,ok]:"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), got)
	}
	for i, w := range want {
		if !strings.HasPrefix(lines[i], w) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], w)
		}
	}
	if h.ok("cost") != nil {
		t.Error("unobserved endpoint should have a nil OK series")
	}
}

func TestTallyReportEmptyWhenAllOK(t *testing.T) {
	ty := newTally()
	ty.add(clientretry.OK, nil)
	if got := ty.report("  "); got != "" {
		t.Errorf("all-OK run should report nothing, got %q", got)
	}
}
