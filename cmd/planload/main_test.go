package main

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"topoopt/internal/clientretry"
	"topoopt/internal/serve"
)

func TestRequestBodiesDecodeToValidPlanRequests(t *testing.T) {
	bodies, err := requestBodies(loadSpec{
		Model: "bert", Section: "6", Servers: 12, Degree: 4,
		BandwidthGbps: 25, MCMCIters: 30, Rounds: 1, Parallelism: 8, Seeds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 3 {
		t.Fatalf("got %d bodies, want 3", len(bodies))
	}
	for i, b := range bodies {
		var req serve.PlanRequest
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatalf("body %d does not decode: %v", i, err)
		}
		if _, err := req.Model.Resolve(); err != nil {
			t.Errorf("body %d: model would be rejected: %v", i, err)
		}
		if err := req.Options.Validate(); err != nil {
			t.Errorf("body %d: options would be rejected: %v", i, err)
		}
		if req.Options.Seed != int64(i+1) {
			t.Errorf("body %d: seed %d, want %d", i, req.Options.Seed, i+1)
		}
		if req.Options.LinkBandwidth != 25e9 {
			t.Errorf("body %d: bandwidth %g, want 25e9 (Gbps scaling)", i, req.Options.LinkBandwidth)
		}
		if req.Options.Parallelism != 8 {
			t.Errorf("body %d: parallelism %d not carried onto the wire", i, req.Options.Parallelism)
		}
	}
}

func TestRequestBodiesDistinctSeedsDistinctFingerprints(t *testing.T) {
	bodies, err := requestBodies(loadSpec{
		Model: "dlrm", Servers: 8, Degree: 4, BandwidthGbps: 100,
		MCMCIters: 10, Rounds: 1, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b serve.PlanRequest
	if err := json.Unmarshal(bodies[0], &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodies[1], &b); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct seeds should produce distinct fingerprints (cache-miss traffic)")
	}
}

func TestTallyReportTaxonomy(t *testing.T) {
	ty := newTally()
	ty.add(clientretry.OK, nil)
	ty.add(clientretry.OK, nil)
	ty.add(clientretry.Connect, errors.New("dial tcp: connection refused"))
	ty.add(clientretry.Connect, errors.New("a later connect error"))
	ty.add(clientretry.Exhausted, nil)

	got := ty.report("  ")
	if !strings.Contains(got, "errors[connect]: 2") {
		t.Errorf("report missing connect count:\n%s", got)
	}
	if !strings.Contains(got, "connection refused") {
		t.Errorf("report should carry the first error per class:\n%s", got)
	}
	if strings.Contains(got, "a later connect error") {
		t.Errorf("report should keep only the first error per class:\n%s", got)
	}
	if !strings.Contains(got, "errors[retry-exhausted]: 1") {
		t.Errorf("report missing exhausted count:\n%s", got)
	}
	if strings.Contains(got, "errors[ok]") || strings.Contains(got, "errors[timeout]") {
		t.Errorf("report should omit zero/OK classes:\n%s", got)
	}
}

func TestTallyReportEmptyWhenAllOK(t *testing.T) {
	ty := newTally()
	ty.add(clientretry.OK, nil)
	if got := ty.report("  "); got != "" {
		t.Errorf("all-OK run should report nothing, got %q", got)
	}
}
