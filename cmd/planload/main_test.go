package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topoopt/internal/clientretry"
	"topoopt/internal/serve"
	"topoopt/internal/slo"
)

func TestRequestBodiesDecodeToValidPlanRequests(t *testing.T) {
	bodies, err := requestBodies(loadSpec{
		Model: "bert", Section: "6", Servers: 12, Degree: 4,
		BandwidthGbps: 25, MCMCIters: 30, Rounds: 1, Parallelism: 8, Seeds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 3 {
		t.Fatalf("got %d bodies, want 3", len(bodies))
	}
	for i, b := range bodies {
		var req serve.PlanRequest
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatalf("body %d does not decode: %v", i, err)
		}
		if _, err := req.Model.Resolve(); err != nil {
			t.Errorf("body %d: model would be rejected: %v", i, err)
		}
		if err := req.Options.Validate(); err != nil {
			t.Errorf("body %d: options would be rejected: %v", i, err)
		}
		if req.Options.Seed != int64(i+1) {
			t.Errorf("body %d: seed %d, want %d", i, req.Options.Seed, i+1)
		}
		if req.Options.LinkBandwidth != 25e9 {
			t.Errorf("body %d: bandwidth %g, want 25e9 (Gbps scaling)", i, req.Options.LinkBandwidth)
		}
		if req.Options.Parallelism != 8 {
			t.Errorf("body %d: parallelism %d not carried onto the wire", i, req.Options.Parallelism)
		}
	}
}

func TestRequestBodiesDistinctSeedsDistinctFingerprints(t *testing.T) {
	bodies, err := requestBodies(loadSpec{
		Model: "dlrm", Servers: 8, Degree: 4, BandwidthGbps: 100,
		MCMCIters: 10, Rounds: 1, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b serve.PlanRequest
	if err := json.Unmarshal(bodies[0], &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodies[1], &b); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct seeds should produce distinct fingerprints (cache-miss traffic)")
	}
}

func TestTallyReportTaxonomy(t *testing.T) {
	ty := newTally()
	ty.add(clientretry.OK, nil)
	ty.add(clientretry.OK, nil)
	ty.add(clientretry.Connect, errors.New("dial tcp: connection refused"))
	ty.add(clientretry.Connect, errors.New("a later connect error"))
	ty.add(clientretry.Exhausted, nil)

	got := ty.report("  ")
	if !strings.Contains(got, "errors[connect]: 2") {
		t.Errorf("report missing connect count:\n%s", got)
	}
	if !strings.Contains(got, "connection refused") {
		t.Errorf("report should carry the first error per class:\n%s", got)
	}
	if strings.Contains(got, "a later connect error") {
		t.Errorf("report should keep only the first error per class:\n%s", got)
	}
	if !strings.Contains(got, "errors[retry-exhausted]: 1") {
		t.Errorf("report missing exhausted count:\n%s", got)
	}
	if strings.Contains(got, "errors[ok]") || strings.Contains(got, "errors[timeout]") {
		t.Errorf("report should omit zero/OK classes:\n%s", got)
	}
}

func TestLatHistPerClassQuantiles(t *testing.T) {
	h := newLatHist()
	for i := 1; i <= 100; i++ {
		h.observe("plan", clientretry.OK, float64(i)/1000) // 1ms..100ms
	}
	h.observe("plan", clientretry.Exhausted, 2.5) // includes backoff sleeps
	h.observe("plan", clientretry.Exhausted, 3.5)

	ok := h.ok("plan")
	if len(ok) != 100 {
		t.Fatalf("ok series has %d samples, want 100", len(ok))
	}

	got := h.report("  ")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("report has %d lines, want 2 (one per populated class):\n%s", len(lines), got)
	}
	// OK row first, failure classes after, and the slow retry-exhausted
	// samples stay out of the OK quantiles.
	if !strings.HasPrefix(lines[0], "  latency[plan,ok]: n=100 ") {
		t.Errorf("first row should be the OK class: %q", lines[0])
	}
	if !strings.Contains(lines[0], "p50=0.0505s") || !strings.Contains(lines[0], "max=0.1s") {
		t.Errorf("OK quantiles wrong (retry latencies leaked in?): %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  latency[plan,retry-exhausted]: n=2 ") ||
		!strings.Contains(lines[1], "max=3.5s") {
		t.Errorf("exhausted row wrong: %q", lines[1])
	}
}

func TestLatHistMultipleEndpointsSorted(t *testing.T) {
	h := newLatHist()
	h.observe("plan", clientretry.OK, 0.01)
	h.observe("compare", clientretry.OK, 0.02)
	h.observe("compare", clientretry.Status5xx, 0.03)
	got := h.report("")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	want := []string{"latency[compare,ok]:", "latency[compare,5xx]:", "latency[plan,ok]:"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), got)
	}
	for i, w := range want {
		if !strings.HasPrefix(lines[i], w) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], w)
		}
	}
	if h.ok("cost") != nil {
		t.Error("unobserved endpoint should have a nil OK series")
	}
}

func TestTallyReportEmptyWhenAllOK(t *testing.T) {
	ty := newTally()
	ty.add(clientretry.OK, nil)
	if got := ty.report("  "); got != "" {
		t.Errorf("all-OK run should report nothing, got %q", got)
	}
}

func sloStub(t *testing.T, planJSON string, delay time.Duration) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/plan":
			if delay > 0 {
				time.Sleep(delay)
			}
			mu.Lock()
			hits++
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"fingerprint":"abc","cached":false,"plan":%s}`, planJSON)
		case "/v1/metrics":
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{}`)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestParseFlagsAddrsAndModes(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "http://a:1/, http://b:2 ", "-open-loop", "-rate", "50"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2"}
	if !reflect.DeepEqual(cfg.Addrs, want) {
		t.Fatalf("addrs %v, want %v (trimmed, no trailing slash)", cfg.Addrs, want)
	}
	if !cfg.OpenLoop || cfg.Rate != 50 {
		t.Fatalf("open-loop flags not parsed: %+v", cfg)
	}

	for _, args := range [][]string{
		{"-open-loop"}, // no rate
		{"-open-loop", "-rate", "10", "-saturate"}, // exclusive modes
		{"-saturate", "-rate-min", "0"},            // bad bracket
		{"-saturate", "-rate-min", "10", "-rate-max", "5"},
		{"-verify-identical"},           // needs >= 2 addrs
		{"-addr", "http://a,,http://b"}, // empty entry
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v should be rejected", args)
		}
	}
}

func TestRunOpenLoopGate(t *testing.T) {
	ts := sloStub(t, `{"ok":true}`, time.Millisecond)
	base := []string{
		"-addr", ts.URL, "-open-loop", "-rate", "200",
		"-duration", "300ms", "-bucket", "100ms", "-max-errors", "0",
	}
	cfg, err := parseFlags(append(base, "-slo-p99", "2s"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("passing gate exited %d:\n%s", code, out.String())
	}
	for _, needle := range []string{"open-loop", "p999", "SLO PASS"} {
		if !strings.Contains(out.String(), needle) {
			t.Fatalf("report missing %q:\n%s", needle, out.String())
		}
	}

	// An impossible p99 target must fail the gate and exit nonzero.
	cfg, err = parseFlags(append(base, "-slo-p99", "1ns"))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "SLO FAIL") {
		t.Fatalf("failing gate exited %d:\n%s", code, out.String())
	}
}

func TestRunOpenLoopJSONAndBench(t *testing.T) {
	ts := sloStub(t, `{"ok":true}`, 0)
	cfg, err := parseFlags([]string{
		"-addr", ts.URL, "-open-loop", "-rate", "300", "-duration", "200ms",
		"-json", "-bench", "-bench-prefix", "ServeSLO",
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code, err := run(cfg, &out); err != nil || code != 0 {
		t.Fatalf("code %d err %v:\n%s", code, err, out.String())
	}
	dec := json.NewDecoder(&out)
	var rep slo.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("output is not a JSON report: %v", err)
	}
	if rep.Requests == 0 || rep.OfferedRate != 300 {
		t.Fatalf("report %+v", rep)
	}
	rest, _ := io.ReadAll(dec.Buffered())
	tail, _ := io.ReadAll(&out)
	bench := string(rest) + string(tail)
	for _, needle := range []string{"BenchmarkServeSLOP50", "BenchmarkServeSLOP99", "BenchmarkServeSLOP999"} {
		if !strings.Contains(bench, needle) {
			t.Fatalf("bench lines missing %q:\n%s", needle, bench)
		}
	}
}

func TestRunSaturateFindsBracketTop(t *testing.T) {
	ts := sloStub(t, `{"ok":true}`, 0)
	cfg, err := parseFlags([]string{
		"-addr", ts.URL, "-saturate", "-rate-min", "20", "-rate-max", "40",
		"-duration", "100ms", "-slo-p99", "2s", "-max-errors", "0", "-bench",
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "saturation: 40.0 req/s") {
		t.Fatalf("fast stub should sustain the bracket top:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SaturationInterval") {
		t.Fatalf("bench line missing:\n%s", out.String())
	}
}

func TestRunVerifyIdentical(t *testing.T) {
	a := sloStub(t, `{"links":[1,2,3]}`, 0)
	b := sloStub(t, `{"links":[1,2,3]}`, 0)
	cfg, err := parseFlags([]string{"-addr", a.URL + "," + b.URL, "-verify-identical"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code, err := run(cfg, &out); err != nil || code != 0 {
		t.Fatalf("identical daemons: code %d err %v:\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "verify-identical: OK") {
		t.Fatalf("missing OK verdict:\n%s", out.String())
	}

	c := sloStub(t, `{"links":[9,9,9]}`, 0)
	cfg, err = parseFlags([]string{"-addr", a.URL + "," + c.URL, "-verify-identical"})
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("divergent daemons: code %d:\n%s", code, out.String())
	}
}

func TestRunClosedLoopRoundRobinsAddrs(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	mk := func(hits *atomic.Int64) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/plan" {
				hits.Add(1)
				fmt.Fprint(w, `{"fingerprint":"abc","cached":false,"plan":{}}`)
				return
			}
			io.WriteString(w, `{}`)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := mk(&hitsA), mk(&hitsB)
	cfg, err := parseFlags([]string{"-addr", a.URL + "," + b.URL, "-n", "10", "-c", "2"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code, err := run(cfg, &out); err != nil || code != 0 {
		t.Fatalf("code %d err %v:\n%s", code, err, out.String())
	}
	if hitsA.Load() != 5 || hitsB.Load() != 5 {
		t.Fatalf("round-robin split %d/%d, want 5/5", hitsA.Load(), hitsB.Load())
	}
	if !strings.Contains(out.String(), "2 daemon(s)") {
		t.Fatalf("summary missing daemon count:\n%s", out.String())
	}
}
