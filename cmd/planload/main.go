// Command planload is the load generator and SLO harness for topooptd.
//
// Closed-loop mode (the default) fires -n concurrent POST /v1/plan
// requests from -c workers, optionally spreading them over several
// seeds to control the cache hit ratio, and reports client-side latency
// quantiles (p50/p90/p99/max, broken down per endpoint and per outcome
// class so retry/backoff time never skews the success numbers), an
// error taxonomy (connect / timeout / 4xx / 5xx / retry-exhausted)
// plus the server's own /v1/metrics counters afterwards.
//
// Open-loop mode (-open-loop -rate R -duration D) offers requests on a
// seeded Poisson arrival schedule that never waits for responses, so a
// saturated server faces the full offered rate instead of a politely
// self-throttling worker pool. The run reports time-bucketed
// p50/p99/p999 latencies and can be gated (-slo-p99, -max-errors):
// a failed gate exits nonzero, which is what `make slo-smoke` keys on.
//
// Saturation mode (-saturate -rate-min A -rate-max B) binary-searches
// the highest offered rate that still meets the gate, probing the
// bracket ends first and then bisecting -sat-iters times; the reported
// rate is always one the server was measured to sustain.
//
// -addr accepts a comma-separated list of daemons: requests round-robin
// across them, which is how a sharded topooptd cluster is loaded (any
// member accepts any request and forwards to the owner).
// -verify-identical POSTs one identical request to every listed daemon
// and requires the plan payloads to be byte-identical regardless of
// entry peer — the sharding correctness invariant.
//
// -json emits the open-loop report (or saturation report) as JSON;
// -bench appends `go test -bench`-style lines so the benchdiff ledger
// can ingest an SLO trajectory with the machinery it already has.
//
// Plan requests are idempotent (fingerprint-keyed and cached server
// side), so -retries re-sends failed requests with capped exponential
// backoff, honoring the server's Retry-After backpressure hints. The
// request path reads full response bodies inside the retry loop
// (clientretry.DoRead), so a connection torn down mid-body — a peer
// restarting under load — is retried like any connect failure instead
// of surfacing as a lost request.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"topoopt"
	"topoopt/internal/clientretry"
	"topoopt/internal/serve"
	"topoopt/internal/slo"
	"topoopt/internal/stats"
)

// runConfig is the parsed flag surface of one planload invocation.
type runConfig struct {
	Addrs []string

	N, C      int
	Model     string
	Section   string
	Servers   int
	Degree    int
	Bandwidth float64
	MCMC      int
	Rounds    int
	Parallel  int
	Seeds     int
	WarmMix   float64
	Retries   int
	Backoff   time.Duration
	Sweep     int
	Scenario  string

	OpenLoop  bool
	Rate      float64
	Duration  time.Duration
	Bucket    time.Duration
	Seed      int64
	SLOP99    time.Duration
	MaxErrors int

	Saturate bool
	RateMin  float64
	RateMax  float64
	SatIters int

	JSONOut     bool
	Bench       bool
	BenchPrefix string
	Verify      bool
}

func parseFlags(args []string) (runConfig, error) {
	var cfg runConfig
	fs := flag.NewFlagSet("planload", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:7070", "topooptd base URL, or a comma-separated list to round-robin across a sharded cluster")
	fs.IntVar(&cfg.N, "n", 100, "total requests (closed-loop mode)")
	fs.IntVar(&cfg.C, "c", 8, "concurrent clients (closed-loop mode)")
	fs.StringVar(&cfg.Model, "model", "bert", "workload preset")
	fs.StringVar(&cfg.Section, "section", "6", "preset section: 5.3, 5.6 or 6")
	fs.IntVar(&cfg.Servers, "servers", 12, "servers (n)")
	fs.IntVar(&cfg.Degree, "degree", 4, "interfaces per server (d)")
	fs.Float64Var(&cfg.Bandwidth, "bandwidth", 25, "per-interface bandwidth in Gbps")
	fs.IntVar(&cfg.MCMC, "mcmc", 30, "MCMC iterations per round (total across chains)")
	fs.IntVar(&cfg.Rounds, "rounds", 1, "alternating-optimization rounds")
	fs.IntVar(&cfg.Parallel, "parallel", 0, "parallel MCMC chains per request (0 = server default of 1)")
	fs.IntVar(&cfg.Seeds, "seeds", 1, "distinct seeds to cycle through (1 = all identical)")
	fs.Float64Var(&cfg.WarmMix, "warm-mix", 0, "fraction of plan requests fired as near-miss perturbations (same model and servers, offset seed) that exercise the server's similarity warm starts")
	fs.IntVar(&cfg.Retries, "retries", 0, "retries per failed request (plan requests are idempotent)")
	fs.DurationVar(&cfg.Backoff, "backoff", 100*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
	fs.IntVar(&cfg.Sweep, "sweep", 0, "fire K-replica POST /v1/sweep requests instead of plans")
	fs.StringVar(&cfg.Scenario, "scenario", "steady", "fleet scenario preset for -sweep requests")

	fs.BoolVar(&cfg.OpenLoop, "open-loop", false, "offer requests on a Poisson schedule at -rate instead of the closed worker pool")
	fs.Float64Var(&cfg.Rate, "rate", 0, "offered arrival rate in req/s (open-loop mode)")
	fs.DurationVar(&cfg.Duration, "duration", 10*time.Second, "open-loop run duration")
	fs.DurationVar(&cfg.Bucket, "bucket", time.Second, "open-loop latency bucketing period")
	fs.Int64Var(&cfg.Seed, "slo-seed", 1, "arrival-schedule seed (deterministic per (rate, duration, seed))")
	fs.DurationVar(&cfg.SLOP99, "slo-p99", 0, "SLO gate: fail (exit 1) when overall p99 exceeds this (0 = no latency gate)")
	fs.IntVar(&cfg.MaxErrors, "max-errors", -1, "SLO gate: fail when errors exceed this (-1 = no error gate)")

	fs.BoolVar(&cfg.Saturate, "saturate", false, "binary-search the highest rate meeting the SLO gate")
	fs.Float64Var(&cfg.RateMin, "rate-min", 1, "saturation search bracket minimum (req/s)")
	fs.Float64Var(&cfg.RateMax, "rate-max", 500, "saturation search bracket maximum (req/s)")
	fs.IntVar(&cfg.SatIters, "sat-iters", 5, "saturation search bisection steps after the bracket probes")

	fs.BoolVar(&cfg.JSONOut, "json", false, "emit the open-loop/saturation report as JSON")
	fs.BoolVar(&cfg.Bench, "bench", false, "append go-test-bench-style lines for the benchdiff ledger")
	fs.StringVar(&cfg.BenchPrefix, "bench-prefix", "ServeSLO", "benchmark name prefix for -bench lines")
	fs.BoolVar(&cfg.Verify, "verify-identical", false, "POST one identical request to every -addr and require byte-identical plans")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}

	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimRight(strings.TrimSpace(a), "/")
		if a == "" {
			return cfg, fmt.Errorf("-addr has an empty entry")
		}
		cfg.Addrs = append(cfg.Addrs, a)
	}
	if cfg.N <= 0 || cfg.C <= 0 || cfg.Seeds <= 0 {
		return cfg, fmt.Errorf("-n, -c and -seeds must be positive")
	}
	if cfg.Retries < 0 {
		return cfg, fmt.Errorf("-retries must be non-negative")
	}
	if cfg.WarmMix < 0 || cfg.WarmMix > 1 {
		return cfg, fmt.Errorf("-warm-mix must be in [0, 1]")
	}
	if cfg.WarmMix > 0 && cfg.Sweep > 0 {
		return cfg, fmt.Errorf("-warm-mix applies to plan loads only")
	}
	if cfg.OpenLoop && cfg.Saturate {
		return cfg, fmt.Errorf("-open-loop and -saturate are exclusive (saturation runs its own open-loop probes)")
	}
	if cfg.OpenLoop && cfg.Rate <= 0 {
		return cfg, fmt.Errorf("-open-loop requires a positive -rate")
	}
	if cfg.Saturate && (cfg.RateMin <= 0 || cfg.RateMax <= cfg.RateMin) {
		return cfg, fmt.Errorf("-saturate requires 0 < -rate-min < -rate-max")
	}
	if cfg.Verify && len(cfg.Addrs) < 2 {
		return cfg, fmt.Errorf("-verify-identical needs at least two -addr entries")
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	code, err := run(cfg, os.Stdout)
	if err != nil {
		fatal(err)
	}
	os.Exit(code)
}

// run executes one planload invocation and returns the process exit
// code (1 on a failed SLO gate or identity check, 0 otherwise).
func run(cfg runConfig, out io.Writer) (int, error) {
	endpoint, path := "plan", "/v1/plan"
	var bodies, warmBodies [][]byte
	var err error
	if cfg.Sweep > 0 {
		endpoint, path = "sweep", "/v1/sweep"
		bodies, err = sweepBodies(cfg.Scenario, cfg.Sweep, cfg.Seeds)
	} else {
		spec := loadSpec{
			Model: cfg.Model, Section: cfg.Section,
			Servers: cfg.Servers, Degree: cfg.Degree, BandwidthGbps: cfg.Bandwidth,
			MCMCIters: cfg.MCMC, Rounds: cfg.Rounds, Parallelism: cfg.Parallel,
			Seeds: cfg.Seeds,
		}
		bodies, err = requestBodies(spec)
		if err == nil && cfg.WarmMix > 0 {
			// Near-miss population: same model and server count (the
			// similarity index's hard-match key) at far-away seeds, so each
			// is an exact-fingerprint miss the server can warm-start from
			// whatever the base population has already cached.
			warm := spec
			warm.SeedBase = 10000
			warmBodies, err = requestBodies(warm)
		}
	}
	if err != nil {
		return 1, err
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	retrier := clientretry.New(clientretry.Policy{
		MaxRetries: cfg.Retries, Base: cfg.Backoff, Seed: 1,
	})

	if cfg.Verify {
		if err := verifyIdentical(client, cfg.Addrs, path, bodies[0]); err != nil {
			fmt.Fprintf(out, "verify-identical: FAIL: %v\n", err)
			return 1, nil
		}
		fmt.Fprintf(out, "verify-identical: OK: %d daemons returned byte-identical plans\n", len(cfg.Addrs))
		return 0, nil
	}
	if cfg.Saturate {
		return runSaturate(cfg, out, client, retrier, path, bodies)
	}
	if cfg.OpenLoop {
		return runOpenLoop(cfg, out, client, retrier, path, bodies)
	}
	return runClosedLoop(cfg, out, client, retrier, endpoint, path, bodies, warmBodies)
}

// fireRequest issues one request (round-robin over addrs by index,
// cycling bodies) through the retrier, reading the full body inside the
// retry loop. It reports the outcome into rec and whether the request
// ultimately succeeded.
func fireRequest(client *http.Client, retrier *clientretry.Retrier, addrs []string, path string, bodies [][]byte, rec *recorder, i int) bool {
	addr := addrs[i%len(addrs)]
	body := bodies[i%len(bodies)]
	resp, raw, outcome, err := retrier.DoRead(client, true, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	rec.record(resp, raw, outcome, err)
	return outcome == clientretry.OK
}

// recorder accumulates per-status and taxonomy counts across a run.
type recorder struct {
	mu       sync.Mutex
	statuses map[int]int
	tally    *tally
	cached   int
}

func newRecorder() *recorder {
	return &recorder{statuses: map[int]int{}, tally: newTally()}
}

func (r *recorder) record(resp *http.Response, raw []byte, out clientretry.Outcome, err error) {
	var cr struct {
		Cached bool `json:"cached"`
	}
	hit := resp != nil && resp.StatusCode == http.StatusOK &&
		json.Unmarshal(raw, &cr) == nil && cr.Cached
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tally.add(out, err)
	if resp != nil {
		r.statuses[resp.StatusCode]++
	}
	if hit {
		r.cached++
	}
}

func (r *recorder) report(out io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	codes := make([]int, 0, len(r.statuses))
	for code := range r.statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(out, "  HTTP %d: %d\n", code, r.statuses[code])
	}
	fmt.Fprint(out, r.tally.report("  "))
	fmt.Fprintf(out, "  cache-hit responses: %d\n", r.cached)
}

// runOpenLoop offers the Poisson schedule and renders/gates the report.
func runOpenLoop(cfg runConfig, out io.Writer, client *http.Client, retrier *clientretry.Retrier, path string, bodies [][]byte) (int, error) {
	rec := newRecorder()
	rep, err := slo.Run(slo.Config{
		Rate: cfg.Rate, Duration: cfg.Duration, Bucket: cfg.Bucket, Seed: cfg.Seed,
		Fire: func(i int) slo.Result {
			return slo.Result{Err: !fireRequest(client, retrier, cfg.Addrs, path, bodies, rec, i)}
		},
	})
	if err != nil {
		return 1, err
	}
	pass := true
	if cfg.SLOP99 > 0 || cfg.MaxErrors >= 0 {
		pass = rep.Apply(cfg.SLOP99, cfg.MaxErrors)
	}
	if cfg.JSONOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else {
		fmt.Fprint(out, rep.String())
		rec.report(out)
	}
	if cfg.Bench {
		fmt.Fprint(out, rep.BenchLines(cfg.BenchPrefix))
	}
	if !pass {
		return 1, nil
	}
	return 0, nil
}

// runSaturate binary-searches the sustainable rate, each probe a full
// open-loop measurement over -duration.
func runSaturate(cfg runConfig, out io.Writer, client *http.Client, retrier *clientretry.Retrier, path string, bodies [][]byte) (int, error) {
	rec := newRecorder()
	rep, err := slo.Saturate(slo.SearchConfig{
		MinRate: cfg.RateMin, MaxRate: cfg.RateMax, Iters: cfg.SatIters,
		TargetP99: cfg.SLOP99, MaxErrors: cfg.MaxErrors,
		Measure: func(rate float64) (*slo.Report, error) {
			if !cfg.JSONOut {
				fmt.Fprintf(out, "probe %.1f req/s for %s...\n", rate, cfg.Duration)
			}
			return slo.Run(slo.Config{
				Rate: rate, Duration: cfg.Duration, Bucket: cfg.Bucket, Seed: cfg.Seed,
				Fire: func(i int) slo.Result {
					return slo.Result{Err: !fireRequest(client, retrier, cfg.Addrs, path, bodies, rec, i)}
				},
			})
		},
	})
	if err != nil {
		return 1, err
	}
	if cfg.JSONOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else {
		for _, s := range rep.Steps {
			verdict := "fail"
			if s.Pass {
				verdict = "pass"
			}
			fmt.Fprintf(out, "  %8.1f req/s: p99 %8.1fms errors %d %s\n", s.Rate, s.P99Seconds*1e3, s.Errors, verdict)
		}
		fmt.Fprintf(out, "saturation: %.1f req/s (bracket [%g, %g], target p99 %s)\n",
			rep.SaturationRate, cfg.RateMin, cfg.RateMax, cfg.SLOP99)
	}
	if cfg.Bench {
		fmt.Fprint(out, rep.BenchLine(cfg.BenchPrefix))
	}
	if rep.SaturationRate <= 0 {
		return 1, nil
	}
	return 0, nil
}

// verifyIdentical POSTs one identical request to every daemon and
// requires the plan payloads to match byte for byte — the sharded
// cluster's correctness invariant (any entry peer, same plan).
func verifyIdentical(client *http.Client, addrs []string, path string, body []byte) error {
	type planBody struct {
		Fingerprint string          `json:"fingerprint"`
		Plan        json.RawMessage `json:"plan"`
		Result      json.RawMessage `json:"result"`
	}
	var first planBody
	for i, addr := range addrs {
		resp, err := client.Post(addr+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("%s: %w", addr, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: reading body: %w", addr, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", addr, resp.StatusCode, raw)
		}
		var pb planBody
		if err := json.Unmarshal(raw, &pb); err != nil {
			return fmt.Errorf("%s: decoding: %w", addr, err)
		}
		payload := pb.Plan
		if len(payload) == 0 {
			payload = pb.Result
		}
		if len(payload) == 0 || string(payload) == "null" {
			return fmt.Errorf("%s: response carries no plan", addr)
		}
		if i == 0 {
			first = planBody{Fingerprint: pb.Fingerprint, Plan: payload}
			continue
		}
		if pb.Fingerprint != first.Fingerprint {
			return fmt.Errorf("%s: fingerprint %s differs from %s at %s", addr, pb.Fingerprint, first.Fingerprint, addrs[0])
		}
		if !bytes.Equal(payload, first.Plan) {
			return fmt.Errorf("%s: plan bytes differ from %s", addr, addrs[0])
		}
	}
	return nil
}

// runClosedLoop is the original worker-pool load mode.
func runClosedLoop(cfg runConfig, out io.Writer, client *http.Client, retrier *clientretry.Retrier, endpoint, path string, bodies, warmBodies [][]byte) (int, error) {
	var (
		mu       sync.Mutex
		statuses = map[int]int{}
		cached   int
		ty       = newTally()
		hist     = newLatHist()
		// classes buckets successful plan latencies by how the request was
		// served: "exact-hit" (cache), "warm" (near-miss perturbation) or
		// "cold" (base request, full search). Only populated with -warm-mix.
		classes = map[string][]float64{}
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.C; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				addr := cfg.Addrs[i%len(cfg.Addrs)]
				body := bodies[i%len(bodies)]
				isWarm := false
				if len(warmBodies) > 0 && warmPick(i, cfg.WarmMix) {
					body, isWarm = warmBodies[i%len(warmBodies)], true
				}
				t0 := time.Now()
				resp, raw, outcome, err := retrier.DoRead(client, true, func() (*http.Request, error) {
					req, err := http.NewRequest(http.MethodPost, addr+path, bytes.NewReader(body))
					if err != nil {
						return nil, err
					}
					req.Header.Set("Content-Type", "application/json")
					return req, nil
				})
				lat := time.Since(t0).Seconds()
				mu.Lock()
				ty.add(outcome, err)
				if resp != nil {
					statuses[resp.StatusCode]++
				}
				hist.observe(endpoint, outcome, lat)
				mu.Unlock()
				if resp == nil {
					continue
				}
				// Both response shapes carry a top-level "cached" flag.
				var cr struct {
					Cached bool `json:"cached"`
				}
				if resp.StatusCode == http.StatusOK && json.Unmarshal(raw, &cr) == nil {
					mu.Lock()
					if cr.Cached {
						cached++
					}
					if len(warmBodies) > 0 {
						// Serving class: a cached response is an exact hit
						// regardless of which population fired it; misses
						// split by population (warm = near-miss perturbation
						// the server can similarity-seed, cold = base).
						class := "cold"
						switch {
						case cr.Cached:
							class = "exact-hit"
						case isWarm:
							class = "warm"
						}
						classes[class] = append(classes[class], lat)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Fprintf(out, "planload: %d requests, %d clients, %d seed(s), %d daemon(s) in %.2fs (%.1f req/s)\n",
		cfg.N, cfg.C, cfg.Seeds, len(cfg.Addrs), elapsed.Seconds(), float64(cfg.N)/elapsed.Seconds())
	codes := make([]int, 0, len(statuses))
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(out, "  HTTP %d: %d\n", code, statuses[code])
	}
	fmt.Fprint(out, ty.report("  "))
	if ok := hist.ok(endpoint); len(ok) > 0 {
		fmt.Fprintf(out, "  latency: %s\n", stats.Summary(ok))
		fmt.Fprintf(out, "  cache-hit responses: %d\n", cached)
	}
	fmt.Fprint(out, hist.report("  "))
	fmt.Fprint(out, classReport("  ", classes))

	for _, addr := range cfg.Addrs {
		resp, err := client.Get(addr + "/v1/metrics")
		if err != nil {
			return 1, fmt.Errorf("fetching server metrics: %w", err)
		}
		var m serve.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			return 1, fmt.Errorf("decoding server metrics: %w", err)
		}
		fmt.Fprintf(out, "server %s: hits=%d misses=%d coalesced=%d optimizations=%d queue=%d/%d shed=%d warmed=%d warm-starts=%d (improved %d) sim-index=%d\n",
			addr, m.CacheHits, m.CacheMisses, m.Coalesced, m.Optimizations, m.QueueDepth, m.QueueCapacity,
			m.Shed, m.WarmedEntries, m.WarmStarts, m.WarmStartImproved, m.SimIndexEntries)
		if m.ForwardedServed > 0 || len(m.Forwarded) > 0 {
			fwd, fb := int64(0), int64(0)
			for _, v := range m.Forwarded {
				fwd += v
			}
			for _, v := range m.ForwardFallbacks {
				fb += v
			}
			fmt.Fprintf(out, "server %s: forwarded=%d forward-fallbacks=%d forwarded-served=%d\n", addr, fwd, fb, m.ForwardedServed)
		}
		if m.Latency.Count > 0 {
			fmt.Fprintf(out, "server %s latency: p50=%.4gs p99=%.4gs max=%.4gs over %d requests\n",
				addr, m.Latency.P50Seconds, m.Latency.P99Seconds, m.Latency.MaxSeconds, m.Latency.Count)
		}
	}
	return 0, nil
}

// tally accumulates the failure taxonomy over a load run. Not
// goroutine-safe; callers hold the run's mutex.
type tally struct {
	counts map[clientretry.Outcome]int
	firsts map[clientretry.Outcome]string
}

func newTally() *tally {
	return &tally{
		counts: map[clientretry.Outcome]int{},
		firsts: map[clientretry.Outcome]string{},
	}
}

func (t *tally) add(out clientretry.Outcome, err error) {
	t.counts[out]++
	if err != nil {
		if _, ok := t.firsts[out]; !ok {
			t.firsts[out] = err.Error()
		}
	}
}

// report renders the non-OK taxonomy lines, one per outcome in a fixed
// order, each prefixed with prefix. Empty when every request succeeded.
func (t *tally) report(prefix string) string {
	order := []clientretry.Outcome{
		clientretry.Connect, clientretry.Timeout,
		clientretry.Status4xx, clientretry.Status5xx, clientretry.Exhausted,
	}
	var b bytes.Buffer
	for _, o := range order {
		n := t.counts[o]
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%serrors[%s]: %d", prefix, o, n)
		if first := t.firsts[o]; first != "" {
			fmt.Fprintf(&b, " (first: %s)", first)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// latHist buckets client-observed latencies by endpoint and outcome
// class. Failed requests' latencies include retry backoff sleeps and
// timeout waits, so mixing them into the success quantiles would skew
// them; keeping one histogram per (endpoint, class) keeps both views
// honest. Not goroutine-safe; callers hold the run's mutex.
type latHist struct {
	samples map[histKey][]float64
}

type histKey struct {
	endpoint string
	class    clientretry.Outcome
}

func newLatHist() *latHist {
	return &latHist{samples: map[histKey][]float64{}}
}

func (h *latHist) observe(endpoint string, class clientretry.Outcome, seconds float64) {
	k := histKey{endpoint, class}
	h.samples[k] = append(h.samples[k], seconds)
}

// ok returns the successful-request latencies for one endpoint (the
// series the headline summary and cache-hit ratio are computed over).
func (h *latHist) ok(endpoint string) []float64 {
	return h.samples[histKey{endpoint, clientretry.OK}]
}

// histClasses fixes the report's row order: success first, then the
// failure taxonomy in the same order tally.report uses.
var histClasses = []clientretry.Outcome{
	clientretry.OK, clientretry.Connect, clientretry.Timeout,
	clientretry.Status4xx, clientretry.Status5xx, clientretry.Exhausted,
}

// report renders one quantile line per populated (endpoint, class)
// bucket, endpoints sorted, classes in taxonomy order.
func (h *latHist) report(prefix string) string {
	endpoints := make(map[string]bool)
	for k := range h.samples {
		endpoints[k.endpoint] = true
	}
	sorted := make([]string, 0, len(endpoints))
	for e := range endpoints {
		sorted = append(sorted, e)
	}
	sort.Strings(sorted)
	var b bytes.Buffer
	for _, e := range sorted {
		for _, class := range histClasses {
			xs := h.samples[histKey{e, class}]
			if len(xs) == 0 {
				continue
			}
			fmt.Fprintf(&b, "%slatency[%s,%s]: n=%d p50=%.4gs p90=%.4gs p99=%.4gs max=%.4gs\n",
				prefix, e, class, len(xs),
				stats.Percentile(xs, 50), stats.Percentile(xs, 90),
				stats.Percentile(xs, 99), stats.Max(xs))
		}
	}
	return b.String()
}

// warmPick deterministically selects which request indices fire the
// near-miss population at mix fraction p: index i is picked exactly when
// the running count ⌊(i+1)·p⌋ advances, spreading picks evenly over the
// run (Bresenham-style) with no randomness to blur repeated loads.
func warmPick(i int, p float64) bool {
	return int(float64(i+1)*p) > int(float64(i)*p)
}

// classClasses fixes the serving-class report order.
var classClasses = []string{"exact-hit", "warm", "cold"}

// classReport renders one quantile line per populated serving class.
// Empty without -warm-mix (the map is never fed).
func classReport(prefix string, classes map[string][]float64) string {
	var b bytes.Buffer
	for _, class := range classClasses {
		xs := classes[class]
		if len(xs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%slatency[plan/%s]: n=%d p50=%.4gs p90=%.4gs p99=%.4gs max=%.4gs\n",
			prefix, class, len(xs),
			stats.Percentile(xs, 50), stats.Percentile(xs, 90),
			stats.Percentile(xs, 99), stats.Max(xs))
	}
	return b.String()
}

// loadSpec describes the request population one load run fires.
type loadSpec struct {
	Model, Section    string
	Servers, Degree   int
	BandwidthGbps     float64
	MCMCIters, Rounds int
	Parallelism       int
	Seeds             int
	// SeedBase offsets every seed; the -warm-mix near-miss population uses
	// a far-away base so it never collides with the base population's
	// fingerprints while staying in the same similarity bucket.
	SeedBase int
}

// requestBodies pre-marshals one plan request per seed. Splitting this
// from main keeps the request surface testable: a body must decode into
// a PlanRequest the server would accept.
func requestBodies(s loadSpec) ([][]byte, error) {
	bodies := make([][]byte, s.Seeds)
	for i := range bodies {
		req := serve.PlanRequest{
			Model: topoopt.ModelSpec{Preset: s.Model, Section: s.Section},
			Options: topoopt.Options{
				Servers: s.Servers, Degree: s.Degree, LinkBandwidth: s.BandwidthGbps * 1e9,
				MCMCIters: s.MCMCIters, Rounds: s.Rounds, Parallelism: s.Parallelism,
				Seed: int64(s.SeedBase + i + 1),
			},
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// sweepBodies pre-marshals one K-replica sweep request per root seed,
// built on the named fleet scenario preset.
func sweepBodies(scenario string, replicas, seeds int) ([][]byte, error) {
	spec, err := topoopt.FleetScenario(scenario)
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, seeds)
	for i := range bodies {
		sp := spec
		sp.Seed = int64(i + 1)
		b, err := json.Marshal(serve.SweepRequest{Spec: sp, Replicas: replicas})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planload:", err)
	os.Exit(1)
}
