// Command planload is a load generator for topooptd: it fires concurrent
// POST /v1/plan requests, optionally spreading them over several seeds to
// control the cache hit ratio, and reports client-side latency quantiles
// (p50/p90/p99/max, broken down per endpoint and per outcome class so
// retry/backoff time never skews the success numbers), an error taxonomy
// (connect / timeout / 4xx / 5xx / retry-exhausted) plus the server's
// own /v1/metrics counters afterwards.
//
// Usage:
//
//	planload -addr http://localhost:7070 -n 200 -c 16 \
//	         -model bert -section 6 -servers 12 -degree 4 \
//	         -bandwidth 25 -mcmc 30 -rounds 1 -seeds 4 \
//	         -retries 3 -backoff 100ms
//
// With -seeds 1 every request is identical: the first one pays for the
// optimization and the rest coalesce onto it or hit the cache, which is
// the serving hot path the BenchmarkServe* suite records.
//
// With -warm-mix P, fraction P of the requests are near-miss
// perturbations of the base population — same model and server count,
// far-offset seeds — so they miss the exact-fingerprint cache but sit in
// the same similarity bucket, exercising the server's warm-start path.
// Successful plan latencies are then additionally reported per serving
// class (exact-hit / warm / cold).
//
// With -sweep K the load targets POST /v1/sweep instead: each request
// is a K-replica Monte Carlo fleet sweep of the -scenario preset,
// cycling root seeds the same way. Sweeps are fingerprinted and cached
// like plans, so the same retry/latency/cache accounting applies.
//
// Plan requests are idempotent (fingerprint-keyed and cached server
// side), so -retries re-sends failed requests with capped exponential
// backoff, honoring the server's Retry-After backpressure hints
// (internal/clientretry).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"topoopt"
	"topoopt/internal/clientretry"
	"topoopt/internal/serve"
	"topoopt/internal/stats"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:7070", "topooptd base URL")
		n         = flag.Int("n", 100, "total requests")
		c         = flag.Int("c", 8, "concurrent clients")
		modelName = flag.String("model", "bert", "workload preset")
		section   = flag.String("section", "6", "preset section: 5.3, 5.6 or 6")
		servers   = flag.Int("servers", 12, "servers (n)")
		degree    = flag.Int("degree", 4, "interfaces per server (d)")
		bandwidth = flag.Float64("bandwidth", 25, "per-interface bandwidth in Gbps")
		mcmc      = flag.Int("mcmc", 30, "MCMC iterations per round (total across chains)")
		rounds    = flag.Int("rounds", 1, "alternating-optimization rounds")
		parallel  = flag.Int("parallel", 0, "parallel MCMC chains per request (0 = server default of 1)")
		seeds     = flag.Int("seeds", 1, "distinct seeds to cycle through (1 = all identical)")
		warmMix   = flag.Float64("warm-mix", 0, "fraction of plan requests fired as near-miss perturbations (same model and servers, offset seed) that exercise the server's similarity warm starts")
		retries   = flag.Int("retries", 0, "retries per failed request (plan requests are idempotent)")
		backoff   = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
		sweep     = flag.Int("sweep", 0, "fire K-replica POST /v1/sweep requests instead of plans")
		scenario  = flag.String("scenario", "steady", "fleet scenario preset for -sweep requests")
	)
	flag.Parse()
	if *n <= 0 || *c <= 0 || *seeds <= 0 {
		fatal(fmt.Errorf("-n, -c and -seeds must be positive"))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("-retries must be non-negative"))
	}
	if *warmMix < 0 || *warmMix > 1 {
		fatal(fmt.Errorf("-warm-mix must be in [0, 1]"))
	}
	if *warmMix > 0 && *sweep > 0 {
		fatal(fmt.Errorf("-warm-mix applies to plan loads only"))
	}

	endpoint, path := "plan", "/v1/plan"
	var bodies, warmBodies [][]byte
	var err error
	if *sweep > 0 {
		endpoint, path = "sweep", "/v1/sweep"
		bodies, err = sweepBodies(*scenario, *sweep, *seeds)
	} else {
		spec := loadSpec{
			Model: *modelName, Section: *section,
			Servers: *servers, Degree: *degree, BandwidthGbps: *bandwidth,
			MCMCIters: *mcmc, Rounds: *rounds, Parallelism: *parallel,
			Seeds: *seeds,
		}
		bodies, err = requestBodies(spec)
		if err == nil && *warmMix > 0 {
			// Near-miss population: same model and server count (the
			// similarity index's hard-match key) at far-away seeds, so each
			// is an exact-fingerprint miss the server can warm-start from
			// whatever the base population has already cached.
			warm := spec
			warm.SeedBase = 10000
			warmBodies, err = requestBodies(warm)
		}
	}
	if err != nil {
		fatal(err)
	}

	var (
		mu       sync.Mutex
		statuses = map[int]int{}
		cached   int
		tally    = newTally()
		hist     = newLatHist()
		// classes buckets successful plan latencies by how the request was
		// served: "exact-hit" (cache), "warm" (near-miss perturbation) or
		// "cold" (base request, full search). Only populated with -warm-mix.
		classes = map[string][]float64{}
	)
	retrier := clientretry.New(clientretry.Policy{
		MaxRetries: *retries, Base: *backoff, Seed: 1,
	})
	work := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := bodies[i%len(bodies)]
				isWarm := false
				if len(warmBodies) > 0 && warmPick(i, *warmMix) {
					body, isWarm = warmBodies[i%len(warmBodies)], true
				}
				t0 := time.Now()
				resp, out, err := retrier.Do(client, true, func() (*http.Request, error) {
					req, err := http.NewRequest(http.MethodPost, *addr+path, bytes.NewReader(body))
					if err != nil {
						return nil, err
					}
					req.Header.Set("Content-Type", "application/json")
					return req, nil
				})
				lat := time.Since(t0).Seconds()
				mu.Lock()
				tally.add(out, err)
				if resp != nil {
					statuses[resp.StatusCode]++
				}
				hist.observe(endpoint, out, lat)
				mu.Unlock()
				if resp == nil {
					continue
				}
				// Both response shapes carry a top-level "cached" flag.
				var cr struct {
					Cached bool `json:"cached"`
				}
				if resp.StatusCode == http.StatusOK &&
					json.NewDecoder(resp.Body).Decode(&cr) == nil {
					mu.Lock()
					if cr.Cached {
						cached++
					}
					if len(warmBodies) > 0 {
						// Serving class: a cached response is an exact hit
						// regardless of which population fired it; misses
						// split by population (warm = near-miss perturbation
						// the server can similarity-seed, cold = base).
						class := "cold"
						switch {
						case cr.Cached:
							class = "exact-hit"
						case isWarm:
							class = "warm"
						}
						classes[class] = append(classes[class], lat)
					}
					mu.Unlock()
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("planload: %d requests, %d clients, %d seed(s) in %.2fs (%.1f req/s)\n",
		*n, *c, *seeds, elapsed.Seconds(), float64(*n)/elapsed.Seconds())
	for code, count := range statuses {
		fmt.Printf("  HTTP %d: %d\n", code, count)
	}
	fmt.Print(tally.report("  "))
	if ok := hist.ok(endpoint); len(ok) > 0 {
		fmt.Printf("  latency: %s\n", stats.Summary(ok))
		fmt.Printf("  cache-hit responses: %d\n", cached)
	}
	fmt.Print(hist.report("  "))
	fmt.Print(classReport("  ", classes))

	resp, err := client.Get(*addr + "/v1/metrics")
	if err != nil {
		fatal(fmt.Errorf("fetching server metrics: %w", err))
	}
	defer resp.Body.Close()
	var m serve.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		fatal(fmt.Errorf("decoding server metrics: %w", err))
	}
	fmt.Printf("server: hits=%d misses=%d coalesced=%d optimizations=%d queue=%d/%d shed=%d warmed=%d warm-starts=%d (improved %d) sim-index=%d\n",
		m.CacheHits, m.CacheMisses, m.Coalesced, m.Optimizations, m.QueueDepth, m.QueueCapacity,
		m.Shed, m.WarmedEntries, m.WarmStarts, m.WarmStartImproved, m.SimIndexEntries)
	if m.Latency.Count > 0 {
		fmt.Printf("server latency: p50=%.4gs p99=%.4gs max=%.4gs over %d requests\n",
			m.Latency.P50Seconds, m.Latency.P99Seconds, m.Latency.MaxSeconds, m.Latency.Count)
	}
}

// tally accumulates the failure taxonomy over a load run. Not
// goroutine-safe; callers hold the run's mutex.
type tally struct {
	counts map[clientretry.Outcome]int
	firsts map[clientretry.Outcome]string
}

func newTally() *tally {
	return &tally{
		counts: map[clientretry.Outcome]int{},
		firsts: map[clientretry.Outcome]string{},
	}
}

func (t *tally) add(out clientretry.Outcome, err error) {
	t.counts[out]++
	if err != nil {
		if _, ok := t.firsts[out]; !ok {
			t.firsts[out] = err.Error()
		}
	}
}

// report renders the non-OK taxonomy lines, one per outcome in a fixed
// order, each prefixed with prefix. Empty when every request succeeded.
func (t *tally) report(prefix string) string {
	order := []clientretry.Outcome{
		clientretry.Connect, clientretry.Timeout,
		clientretry.Status4xx, clientretry.Status5xx, clientretry.Exhausted,
	}
	var b bytes.Buffer
	for _, o := range order {
		n := t.counts[o]
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%serrors[%s]: %d", prefix, o, n)
		if first := t.firsts[o]; first != "" {
			fmt.Fprintf(&b, " (first: %s)", first)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// latHist buckets client-observed latencies by endpoint and outcome
// class. Failed requests' latencies include retry backoff sleeps and
// timeout waits, so mixing them into the success quantiles would skew
// them; keeping one histogram per (endpoint, class) keeps both views
// honest. Not goroutine-safe; callers hold the run's mutex.
type latHist struct {
	samples map[histKey][]float64
}

type histKey struct {
	endpoint string
	class    clientretry.Outcome
}

func newLatHist() *latHist {
	return &latHist{samples: map[histKey][]float64{}}
}

func (h *latHist) observe(endpoint string, class clientretry.Outcome, seconds float64) {
	k := histKey{endpoint, class}
	h.samples[k] = append(h.samples[k], seconds)
}

// ok returns the successful-request latencies for one endpoint (the
// series the headline summary and cache-hit ratio are computed over).
func (h *latHist) ok(endpoint string) []float64 {
	return h.samples[histKey{endpoint, clientretry.OK}]
}

// histClasses fixes the report's row order: success first, then the
// failure taxonomy in the same order tally.report uses.
var histClasses = []clientretry.Outcome{
	clientretry.OK, clientretry.Connect, clientretry.Timeout,
	clientretry.Status4xx, clientretry.Status5xx, clientretry.Exhausted,
}

// report renders one quantile line per populated (endpoint, class)
// bucket, endpoints sorted, classes in taxonomy order.
func (h *latHist) report(prefix string) string {
	endpoints := make(map[string]bool)
	for k := range h.samples {
		endpoints[k.endpoint] = true
	}
	sorted := make([]string, 0, len(endpoints))
	for e := range endpoints {
		sorted = append(sorted, e)
	}
	sort.Strings(sorted)
	var b bytes.Buffer
	for _, e := range sorted {
		for _, class := range histClasses {
			xs := h.samples[histKey{e, class}]
			if len(xs) == 0 {
				continue
			}
			fmt.Fprintf(&b, "%slatency[%s,%s]: n=%d p50=%.4gs p90=%.4gs p99=%.4gs max=%.4gs\n",
				prefix, e, class, len(xs),
				stats.Percentile(xs, 50), stats.Percentile(xs, 90),
				stats.Percentile(xs, 99), stats.Max(xs))
		}
	}
	return b.String()
}

// warmPick deterministically selects which request indices fire the
// near-miss population at mix fraction p: index i is picked exactly when
// the running count ⌊(i+1)·p⌋ advances, spreading picks evenly over the
// run (Bresenham-style) with no randomness to blur repeated loads.
func warmPick(i int, p float64) bool {
	return int(float64(i+1)*p) > int(float64(i)*p)
}

// classClasses fixes the serving-class report order.
var classClasses = []string{"exact-hit", "warm", "cold"}

// classReport renders one quantile line per populated serving class.
// Empty without -warm-mix (the map is never fed).
func classReport(prefix string, classes map[string][]float64) string {
	var b bytes.Buffer
	for _, class := range classClasses {
		xs := classes[class]
		if len(xs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%slatency[plan/%s]: n=%d p50=%.4gs p90=%.4gs p99=%.4gs max=%.4gs\n",
			prefix, class, len(xs),
			stats.Percentile(xs, 50), stats.Percentile(xs, 90),
			stats.Percentile(xs, 99), stats.Max(xs))
	}
	return b.String()
}

// loadSpec describes the request population one load run fires.
type loadSpec struct {
	Model, Section    string
	Servers, Degree   int
	BandwidthGbps     float64
	MCMCIters, Rounds int
	Parallelism       int
	Seeds             int
	// SeedBase offsets every seed; the -warm-mix near-miss population uses
	// a far-away base so it never collides with the base population's
	// fingerprints while staying in the same similarity bucket.
	SeedBase int
}

// requestBodies pre-marshals one plan request per seed. Splitting this
// from main keeps the request surface testable: a body must decode into
// a PlanRequest the server would accept.
func requestBodies(s loadSpec) ([][]byte, error) {
	bodies := make([][]byte, s.Seeds)
	for i := range bodies {
		req := serve.PlanRequest{
			Model: topoopt.ModelSpec{Preset: s.Model, Section: s.Section},
			Options: topoopt.Options{
				Servers: s.Servers, Degree: s.Degree, LinkBandwidth: s.BandwidthGbps * 1e9,
				MCMCIters: s.MCMCIters, Rounds: s.Rounds, Parallelism: s.Parallelism,
				Seed: int64(s.SeedBase + i + 1),
			},
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// sweepBodies pre-marshals one K-replica sweep request per root seed,
// built on the named fleet scenario preset.
func sweepBodies(scenario string, replicas, seeds int) ([][]byte, error) {
	spec, err := topoopt.FleetScenario(scenario)
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, seeds)
	for i := range bodies {
		sp := spec
		sp.Seed = int64(i + 1)
		b, err := json.Marshal(serve.SweepRequest{Spec: sp, Replicas: replicas})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planload:", err)
	os.Exit(1)
}
