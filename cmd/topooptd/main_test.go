package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"topoopt"
	"topoopt/internal/serve"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":7070" || cfg.Workers != 0 || cfg.Queue != 64 ||
		cfg.Cache != 256 || cfg.SearchThreads != 0 || cfg.Verbose {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.Store != "" || cfg.StoreSync || cfg.DrainTimeout != 30*time.Second || cfg.DefaultDeadline != 0 {
		t.Errorf("unexpected durability defaults: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", ":9999", "-workers", "3", "-queue", "7",
		"-cache", "11", "-search-threads", "5", "-v",
		"-store", "/tmp/plans", "-store-sync", "-drain-timeout", "2s",
		"-default-deadline", "750ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := daemonConfig{Addr: ":9999", Workers: 3, Queue: 7, Cache: 11,
		SearchThreads: 5, Verbose: true, Store: "/tmp/plans", StoreSync: true,
		DrainTimeout: 2 * time.Second, DefaultDeadline: 750 * time.Millisecond,
		ProbeInterval: time.Second}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
}

func TestParseFlagsCluster(t *testing.T) {
	peers := "http://127.0.0.1:7070,http://127.0.0.1:7071"
	cfg, err := parseFlags([]string{
		"-peers", peers, "-self", "http://127.0.0.1:7070",
		"-ring-vnodes", "64", "-probe-interval", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	cc := clusterConfig(cfg)
	if cc == nil {
		t.Fatal("expected a cluster config")
	}
	if cc.Self != "http://127.0.0.1:7070" || len(cc.Peers) != 2 ||
		cc.VNodes != 64 || cc.ProbeInterval != 250*time.Millisecond {
		t.Errorf("cluster config %+v", cc)
	}

	// An unsharded daemon derives no cluster config.
	plain, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if clusterConfig(plain) != nil {
		t.Error("expected nil cluster config without -peers")
	}

	// -peers and -self are all-or-nothing.
	for _, args := range [][]string{
		{"-peers", peers},
		{"-self", "http://127.0.0.1:7070"},
		{"-peers", peers, "-self", "http://127.0.0.1:7070", "-probe-interval", "0s"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v should fail", args)
		}
	}
}

// TestNewServiceRejectsBadCluster pins that a -self not present in
// -peers is refused at startup, not discovered at request time.
func TestNewServiceRejectsBadCluster(t *testing.T) {
	_, err := newService(daemonConfig{
		DrainTimeout:  time.Second,
		ProbeInterval: time.Second,
		Self:          "http://127.0.0.1:9999",
		Peers:         "http://127.0.0.1:7070,http://127.0.0.1:7071",
	})
	if err == nil {
		t.Fatal("expected newService to reject self not in peers")
	}
}

func TestParseFlagsRejectsUnknown(t *testing.T) {
	if _, err := parseFlags([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestParseFlagsRejectsNonPositiveDrainTimeout(t *testing.T) {
	if _, err := parseFlags([]string{"-drain-timeout", "0s"}); err == nil {
		t.Error("zero drain timeout should fail")
	}
}

func TestParseFlagsDebugAndProfiling(t *testing.T) {
	cfg, err := parseFlags([]string{"-debug-addr", "127.0.0.1:7071",
		"-mutex-profile-fraction", "5", "-block-profile-rate", "1000"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DebugAddr != "127.0.0.1:7071" || cfg.MutexFraction != 5 || cfg.BlockRate != 1000 {
		t.Errorf("parsed %+v", cfg)
	}
	for _, args := range [][]string{
		{"-mutex-profile-fraction", "-1"},
		{"-block-profile-rate", "-7"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v should fail", args)
		}
	}
}

// TestDebugHandlerSurface checks the operator listener serves pprof
// indexes and the shared metrics/trace views, and nothing else (no /v1
// planning API on the debug port).
func TestDebugHandlerSurface(t *testing.T) {
	svc, err := newService(daemonConfig{Workers: 1, Queue: 4, Cache: 8, DrainTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(debugHandler(svc))
	defer ts.Close()

	for path, want := range map[string]int{
		"/debug/pprof/":                  http.StatusOK,
		"/debug/pprof/heap?debug=1":      http.StatusOK,
		"/debug/pprof/mutex?debug=1":     http.StatusOK,
		"/debug/pprof/block?debug=1":     http.StatusOK,
		"/debug/pprof/goroutine?debug=1": http.StatusOK,
		"/debug/requests":                http.StatusOK,
		"/metrics":                       http.StatusOK,
		"/v1/metrics":                    http.StatusOK,
		"/v1/plan":                       http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestDaemonServesPlan spins the real daemon wiring (flags → service →
// handler) and drives one parallel plan request through it.
func TestDaemonServesPlan(t *testing.T) {
	cfg, err := parseFlags([]string{"-workers", "2", "-search-threads", "2"})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(handler(svc, cfg.Verbose))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body, _ := json.Marshal(serve.PlanRequest{
		Model: topoopt.ModelSpec{Preset: "bert", Section: "6"},
		Options: topoopt.Options{Servers: 12, Degree: 4, LinkBandwidth: 25e9,
			Rounds: 1, MCMCIters: 10, Seed: 1, Parallelism: 2},
	})
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	var pr serve.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Plan == nil || pr.Plan.PredictedIteration.Total() <= 0 {
		t.Fatalf("no usable plan: %+v", pr.Plan)
	}
}
