// Command topooptd is the TopoOpt planning daemon: it serves the library's
// Optimize/Compare/Cost entry points over HTTP/JSON with a bounded worker
// pool, a fingerprint-keyed plan cache, coalescing of identical in-flight
// requests, async jobs with cancellation, and a metrics endpoint.
//
// Usage:
//
//	topooptd [-addr :7070] [-workers N] [-queue 64] [-cache 256]
//
// Endpoints (see internal/serve and DESIGN.md, "Planning service"):
//
//	POST   /v1/plan       {"model": {"preset": "bert", "section": "5.3"},
//	                       "options": {"servers": 16, "degree": 4,
//	                                   "link_bandwidth": 100e9, "seed": 1}}
//	POST   /v1/compare    same body plus optional "archs": ["TopoOpt", ...]
//	GET    /v1/cost?arch=TopoOpt&servers=128&degree=4&bandwidth_gbps=100
//	POST   /v1/jobs       async plan; poll GET /v1/jobs/{id}, cancel with
//	                      DELETE /v1/jobs/{id}
//	GET    /v1/metrics    request counts, cache hit rate, queue depth,
//	                      latency quantiles
//	GET    /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topoopt/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		workers = flag.Int("workers", 0, "concurrent optimizations (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "queued request bound (full queue returns 503)")
		cache   = flag.Int("cache", 256, "plan cache entries (LRU)")
		verbose = flag.Bool("v", false, "log each request")
	)
	flag.Parse()

	svc := serve.New(serve.Config{Workers: *workers, QueueLen: *queue, CacheEntries: *cache})
	var handler http.Handler = svc.Handler()
	if *verbose {
		handler = logRequests(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Println("topooptd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		svc.Close()
	}()

	log.Printf("topooptd: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "topooptd:", err)
		os.Exit(1)
	}
	// ListenAndServe returns the instant Shutdown begins; wait for the
	// drain (and the worker pool) to finish before exiting.
	<-drained
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
