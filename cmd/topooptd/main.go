// Command topooptd is the TopoOpt planning daemon: it serves the library's
// Optimize/Compare/Cost entry points over HTTP/JSON with a bounded worker
// pool, a fingerprint-keyed plan cache, coalescing of identical in-flight
// requests, async jobs with cancellation, and a metrics endpoint.
//
// Usage:
//
//	topooptd [-addr :7070] [-workers N] [-queue 64] [-cache 256]
//	         [-search-threads N] [-store DIR] [-store-sync]
//	         [-drain-timeout 30s] [-default-deadline 0]
//	         [-peers URL,URL,... -self URL] [-ring-vnodes N]
//	         [-probe-interval 1s]
//
// -peers/-self join the daemon to a static sharded cluster: every
// member runs with the same -peers list (its own URL included, named by
// -self) and owns a deterministic slice of the SHA-256 fingerprint
// space via a consistent-hash ring. A plan/compare request landing on a
// non-owner is proxied to its owner — one hop max — and the owner's
// response (error envelope, Retry-After, X-Trace) passes through
// verbatim; if the owner is down the request is computed locally, so a
// dead peer degrades the cache-hit rate, never availability.
// GET /v1/cluster reports membership, ring shares and peer health.
//
// -search-threads caps the total goroutines spent on parallel MCMC chains
// across all concurrent optimizations (requests opt into chains with
// "parallelism" in their options); grants are metered on demand, so a
// lone request gets the whole budget and a busy pool degrades each
// request toward sequential chains. Plans are deterministic per
// (seed, parallelism) regardless of the thread budget.
//
// -store names a directory for the durable plan store (internal/wal):
// completed plans, compares and fleet results are appended to a
// write-ahead log and replayed into the cache on restart, so a restarted
// daemon serves previously computed fingerprints as byte-identical cache
// hits without re-searching; queued-but-unfinished async jobs are
// journaled and re-enqueued. Empty (the default) keeps the cache purely
// in-memory. By default the log is not fsynced per append (a process
// crash loses nothing; a power loss can lose the unsynced tail, which
// replays as a clean truncation); -store-sync fsyncs every append for
// power-loss durability at the cost of one disk flush per write.
//
// On SIGTERM/SIGINT the daemon drains instead of dropping work: new
// requests get a structured 503 ("draining") with Retry-After, in-flight
// requests and running async jobs are given up to -drain-timeout to
// finish (their results are persisted), and whatever remains is
// cancelled through the search context before exit.
//
// Requests may carry an X-Deadline-Ms header; -default-deadline applies
// one to requests that don't. When the queue is deep enough that a
// request's deadline would expire before a worker could reach it, the
// daemon sheds it immediately with a 429 and a Retry-After hint instead
// of queueing doomed work.
//
// Endpoints (see internal/serve and DESIGN.md, "Planning service"):
//
//	POST   /v1/plan       {"model": {"preset": "bert", "section": "5.3"},
//	                       "options": {"servers": 16, "degree": 4,
//	                                   "link_bandwidth": 100e9, "seed": 1,
//	                                   "parallelism": 8}}
//	POST   /v1/compare    same body plus optional "archs": ["TopoOpt", ...]
//	                      — any backend in the architecture registry
//	                      (Torus, SiP-Ring, ...); unknown names get a 400
//	                      listing the registered menu. Results are cached
//	                      by a fingerprint that includes the arch names.
//	GET    /v1/cost?arch=TopoOpt&servers=128&degree=4&bandwidth_gbps=100
//	POST   /v1/fleet      async fleet simulation (internal/fleet): a whole
//	                      cluster lifetime — trace-driven arrivals,
//	                      placement policy, provisioning latency, failure
//	                      injection — cached by canonical-spec
//	                      fingerprint; result arrives in the job's
//	                      "fleet" field
//	POST   /v1/jobs       async plan; poll GET /v1/jobs/{id}, cancel with
//	                      DELETE /v1/jobs/{id}
//	GET    /v1/metrics    request counts, cache hit rate, queue depth,
//	                      latency quantiles (JSON)
//	GET    /metrics       the same snapshot as Prometheus text exposition
//	GET    /debug/requests ring of recent request stage breakdowns
//	GET    /healthz
//
// Observability: every /v1/plan and /v1/compare response carries an
// X-Trace header with its stage breakdown (decode/admission/cache/queue/
// search/encode, microsecond precision), and /debug/requests returns the
// last 128 breakdowns. -debug-addr starts a second, operator-only
// listener with net/http/pprof (CPU, heap, mutex, block, goroutine
// profiles) plus the /metrics and /debug/requests views; keep it on
// loopback — it is not meant for untrusted networks.
// -mutex-profile-fraction and -block-profile-rate enable the runtime's
// contention profilers (0 = off, the runtime default) so `go tool pprof
// http://host:debugport/debug/pprof/mutex` shows real lock contention.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"topoopt/internal/serve"
	"topoopt/internal/wal"
)

// daemonConfig is the parsed command line.
type daemonConfig struct {
	Addr            string
	Workers         int
	Queue           int
	Cache           int
	SearchThreads   int
	Store           string
	StoreSync       bool
	DrainTimeout    time.Duration
	DefaultDeadline time.Duration
	Verbose         bool
	DebugAddr       string
	MutexFraction   int
	BlockRate       int
	Self            string
	Peers           string
	VNodes          int
	ProbeInterval   time.Duration
}

// parseFlags parses args (excluding the program name) into a
// daemonConfig using a fresh FlagSet, so tests can exercise the exact
// flag surface main uses.
func parseFlags(args []string) (daemonConfig, error) {
	var cfg daemonConfig
	fs := flag.NewFlagSet("topooptd", flag.ContinueOnError)
	fs.StringVar(&cfg.Addr, "addr", ":7070", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "concurrent optimizations (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.Queue, "queue", 64, "queued request bound (full queue returns 503)")
	fs.IntVar(&cfg.Cache, "cache", 256, "plan cache entries (LRU)")
	fs.IntVar(&cfg.SearchThreads, "search-threads", 0,
		"total goroutines for parallel MCMC chains across requests (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.Store, "store", "",
		"durable plan store directory (empty = in-memory cache only)")
	fs.BoolVar(&cfg.StoreSync, "store-sync", false,
		"fsync the store log on every append (power-loss durability; slower)")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 30*time.Second,
		"how long SIGTERM lets in-flight work finish before cancelling it")
	fs.DurationVar(&cfg.DefaultDeadline, "default-deadline", 0,
		"deadline applied to requests without an X-Deadline-Ms header (0 = none)")
	fs.BoolVar(&cfg.Verbose, "v", false, "log each request")
	fs.StringVar(&cfg.DebugAddr, "debug-addr", "",
		"operator listener with pprof + metrics, e.g. 127.0.0.1:7071 (empty = off)")
	fs.IntVar(&cfg.MutexFraction, "mutex-profile-fraction", 0,
		"sample 1/N of mutex contention events into the mutex profile (0 = off)")
	fs.IntVar(&cfg.BlockRate, "block-profile-rate", 0,
		"sample blocking events lasting ≥ N ns into the block profile (0 = off)")
	fs.StringVar(&cfg.Peers, "peers", "",
		"comma-separated base URLs of every cluster member including this one, "+
			"e.g. http://10.0.0.1:7070,http://10.0.0.2:7070 (empty = unsharded)")
	fs.StringVar(&cfg.Self, "self", "",
		"this daemon's own base URL as it appears in -peers (required with -peers)")
	fs.IntVar(&cfg.VNodes, "ring-vnodes", 0,
		"virtual nodes per member on the consistent-hash ring (0 = default)")
	fs.DurationVar(&cfg.ProbeInterval, "probe-interval", time.Second,
		"peer health-probe period for the sharded cluster")
	if err := fs.Parse(args); err != nil {
		return daemonConfig{}, err
	}
	if cfg.DrainTimeout <= 0 {
		return daemonConfig{}, fmt.Errorf("-drain-timeout must be positive, got %s", cfg.DrainTimeout)
	}
	if cfg.MutexFraction < 0 || cfg.BlockRate < 0 {
		return daemonConfig{}, fmt.Errorf("-mutex-profile-fraction and -block-profile-rate must be ≥ 0")
	}
	if cfg.Peers != "" && cfg.Self == "" {
		return daemonConfig{}, fmt.Errorf("-peers requires -self naming this daemon's own URL")
	}
	if cfg.Peers == "" && cfg.Self != "" {
		return daemonConfig{}, fmt.Errorf("-self requires -peers listing the full membership")
	}
	if cfg.ProbeInterval <= 0 {
		return daemonConfig{}, fmt.Errorf("-probe-interval must be positive, got %s", cfg.ProbeInterval)
	}
	return cfg, nil
}

// clusterConfig derives the serve.ClusterConfig from the flags, or nil
// for an unsharded daemon. Deeper validation (self ∈ peers, URL
// normalization) lives in serve.EnableCluster so every embedding
// shares it.
func clusterConfig(cfg daemonConfig) *serve.ClusterConfig {
	if cfg.Peers == "" {
		return nil
	}
	return &serve.ClusterConfig{
		Self:          cfg.Self,
		Peers:         strings.Split(cfg.Peers, ","),
		VNodes:        cfg.VNodes,
		ProbeInterval: cfg.ProbeInterval,
	}
}

// applyProfileRates wires the contention-profiling flags into the
// runtime. Zero values leave both profilers off (the runtime default),
// so an unconfigured daemon pays nothing.
func applyProfileRates(cfg daemonConfig) {
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
	}
}

// debugHandler is the operator-only surface served on -debug-addr:
// net/http/pprof (on its conventional /debug/pprof/ paths, but on an
// explicit mux rather than http.DefaultServeMux) plus the service's
// metrics and request-trace views, so one scrape target covers both.
func debugHandler(svc *serve.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	api := svc.Handler()
	mux.Handle("GET /debug/requests", api)
	mux.Handle("GET /metrics", api)
	mux.Handle("GET /v1/metrics", api)
	return mux
}

// newService builds the planning service for a daemonConfig, opening
// the durable store (and replaying its WAL into the cache) when one is
// configured.
func newService(cfg daemonConfig) (*serve.Service, error) {
	var store *serve.Store
	if cfg.Store != "" {
		var opts []wal.Option
		if cfg.StoreSync {
			opts = append(opts, wal.WithSync())
		}
		var err error
		store, err = serve.OpenStore(cfg.Store, opts...)
		if err != nil {
			return nil, fmt.Errorf("opening plan store: %w", err)
		}
	}
	svc := serve.New(serve.Config{
		Workers:         cfg.Workers,
		QueueLen:        cfg.Queue,
		CacheEntries:    cfg.Cache,
		SearchThreads:   cfg.SearchThreads,
		Store:           store,
		DefaultDeadline: cfg.DefaultDeadline,
	})
	if cc := clusterConfig(cfg); cc != nil {
		if err := svc.EnableCluster(*cc); err != nil {
			svc.Close()
			return nil, err
		}
		log.Printf("topooptd: sharded cluster member %s of %d peers", cc.Self, len(cc.Peers))
	}
	return svc, nil
}

// handler wires the service's HTTP API with optional request logging.
func handler(svc *serve.Service, verbose bool) http.Handler {
	var h http.Handler = svc.Handler()
	if verbose {
		h = logRequests(h)
	}
	return h
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		os.Exit(2)
	}

	applyProfileRates(cfg)
	svc, err := newService(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topooptd:", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: cfg.Addr, Handler: handler(svc, cfg.Verbose)}

	var dbgSrv *http.Server
	if cfg.DebugAddr != "" {
		dbgSrv = &http.Server{Addr: cfg.DebugAddr, Handler: debugHandler(svc)}
		go func() {
			log.Printf("topooptd: debug listener (pprof, metrics) on %s", cfg.DebugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("topooptd: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("topooptd: draining (refusing new work, up to %s for in-flight)", cfg.DrainTimeout)
		// Admission off first: requests arriving during the drain get a
		// structured 503 + Retry-After instead of queueing work we are
		// about to cancel.
		svc.BeginDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		defer cancel()
		// Let the HTTP layer finish writing in-flight responses, then let
		// running searches and async jobs finish within the same budget;
		// Drain cancels whatever is left when drainCtx expires, persists
		// completed results, and compacts the store.
		srv.Shutdown(drainCtx)
		if dbgSrv != nil {
			dbgSrv.Shutdown(drainCtx)
		}
		if derr := svc.Drain(drainCtx); derr != nil {
			log.Printf("topooptd: drain timeout: cancelled remaining work (%v)", derr)
		} else {
			log.Println("topooptd: drained cleanly")
		}
	}()

	log.Printf("topooptd: listening on %s", cfg.Addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "topooptd:", err)
		os.Exit(1)
	}
	// ListenAndServe returns the instant Shutdown begins; wait for the
	// drain (and the worker pool) to finish before exiting.
	<-drained
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
