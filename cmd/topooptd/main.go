// Command topooptd is the TopoOpt planning daemon: it serves the library's
// Optimize/Compare/Cost entry points over HTTP/JSON with a bounded worker
// pool, a fingerprint-keyed plan cache, coalescing of identical in-flight
// requests, async jobs with cancellation, and a metrics endpoint.
//
// Usage:
//
//	topooptd [-addr :7070] [-workers N] [-queue 64] [-cache 256]
//	         [-search-threads N]
//
// -search-threads caps the total goroutines spent on parallel MCMC chains
// across all concurrent optimizations (requests opt into chains with
// "parallelism" in their options); grants are metered on demand, so a
// lone request gets the whole budget and a busy pool degrades each
// request toward sequential chains. Plans are deterministic per
// (seed, parallelism) regardless of the thread budget.
//
// Endpoints (see internal/serve and DESIGN.md, "Planning service"):
//
//	POST   /v1/plan       {"model": {"preset": "bert", "section": "5.3"},
//	                       "options": {"servers": 16, "degree": 4,
//	                                   "link_bandwidth": 100e9, "seed": 1,
//	                                   "parallelism": 8}}
//	POST   /v1/compare    same body plus optional "archs": ["TopoOpt", ...]
//	                      — any backend in the architecture registry
//	                      (Torus, SiP-Ring, ...); unknown names get a 400
//	                      listing the registered menu. Results are cached
//	                      by a fingerprint that includes the arch names.
//	GET    /v1/cost?arch=TopoOpt&servers=128&degree=4&bandwidth_gbps=100
//	POST   /v1/fleet      async fleet simulation (internal/fleet): a whole
//	                      cluster lifetime — trace-driven arrivals,
//	                      placement policy, provisioning latency, failure
//	                      injection — cached by canonical-spec
//	                      fingerprint; result arrives in the job's
//	                      "fleet" field
//	POST   /v1/jobs       async plan; poll GET /v1/jobs/{id}, cancel with
//	                      DELETE /v1/jobs/{id}
//	GET    /v1/metrics    request counts, cache hit rate, queue depth,
//	                      latency quantiles
//	GET    /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topoopt/internal/serve"
)

// daemonConfig is the parsed command line.
type daemonConfig struct {
	Addr          string
	Workers       int
	Queue         int
	Cache         int
	SearchThreads int
	Verbose       bool
}

// parseFlags parses args (excluding the program name) into a
// daemonConfig using a fresh FlagSet, so tests can exercise the exact
// flag surface main uses.
func parseFlags(args []string) (daemonConfig, error) {
	var cfg daemonConfig
	fs := flag.NewFlagSet("topooptd", flag.ContinueOnError)
	fs.StringVar(&cfg.Addr, "addr", ":7070", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "concurrent optimizations (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.Queue, "queue", 64, "queued request bound (full queue returns 503)")
	fs.IntVar(&cfg.Cache, "cache", 256, "plan cache entries (LRU)")
	fs.IntVar(&cfg.SearchThreads, "search-threads", 0,
		"total goroutines for parallel MCMC chains across requests (0 = GOMAXPROCS)")
	fs.BoolVar(&cfg.Verbose, "v", false, "log each request")
	if err := fs.Parse(args); err != nil {
		return daemonConfig{}, err
	}
	return cfg, nil
}

// newService builds the planning service for a daemonConfig.
func newService(cfg daemonConfig) *serve.Service {
	return serve.New(serve.Config{
		Workers:       cfg.Workers,
		QueueLen:      cfg.Queue,
		CacheEntries:  cfg.Cache,
		SearchThreads: cfg.SearchThreads,
	})
}

// handler wires the service's HTTP API with optional request logging.
func handler(svc *serve.Service, verbose bool) http.Handler {
	var h http.Handler = svc.Handler()
	if verbose {
		h = logRequests(h)
	}
	return h
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		os.Exit(2)
	}

	svc := newService(cfg)
	srv := &http.Server{Addr: cfg.Addr, Handler: handler(svc, cfg.Verbose)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Println("topooptd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		svc.Close()
	}()

	log.Printf("topooptd: listening on %s", cfg.Addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "topooptd:", err)
		os.Exit(1)
	}
	// ListenAndServe returns the instant Shutdown begins; wait for the
	// drain (and the worker pool) to finish before exiting.
	<-drained
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
