// Command fleetsim runs the trace-driven multi-job cluster simulator
// (internal/fleet) from the command line: pick a scenario preset, tweak
// any knob, and get the full FleetResult — per-job JCT/queueing/slowdown
// records, the cluster-utilization series and aggregate statistics — as
// canonical JSON. The result is a pure function of the spec, so piping
// the same invocation twice yields byte-identical output.
//
// Usage:
//
//	fleetsim -scenario steady
//	fleetsim -scenario failure-storm -seed 7 -summary
//	fleetsim -scenario diurnal-burst -policy fifo -o run.json
//	fleetsim -scenario steady -sweep 64 -parallel 8
//	fleetsim -spec myspec.json
//	fleetsim -list-scenarios
//
// With -sweep K the spec runs as a Monte Carlo sweep: K seed-replicas
// (replica i under a splitmix64-derived seed; replica 0 is the root
// seed) merged into per-metric p50/p90/p99 distributions with mean
// CIs. -parallel bounds concurrent replicas; the merged JSON is
// byte-identical at any width.
//
// Scenario presets:
//
//	steady         Poisson §2.2 job mix on a TopoOpt-fabric cluster —
//	               the baseline shared-cluster what-if.
//	diurnal-burst  day/night arrival swing driving EASY backfill on a
//	               cost-equivalent Fat-tree.
//	failure-storm  seeded link/port faults forcing degraded replans
//	               (warm-started searches) and restarts behind look-ahead
//	               patch-panel provisioning.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"topoopt"
)

// simConfig is the parsed command line.
type simConfig struct {
	Scenario      string
	SpecFile      string
	ListScenarios bool
	Summary       bool
	Out           string

	// Overrides (zero = keep the preset's value).
	Seed     int64
	Servers  int
	Degree   int
	GBps     float64
	Arch     string
	Policy   string
	Prov     string
	Jobs     int
	Parallel int
	Sweep    int
}

// parseFlags parses args (excluding the program name) with a fresh
// FlagSet so tests can exercise the exact flag surface main uses.
func parseFlags(args []string) (simConfig, error) {
	var cfg simConfig
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.StringVar(&cfg.Scenario, "scenario", "steady", "scenario preset (see -list-scenarios)")
	fs.StringVar(&cfg.SpecFile, "spec", "", "run a FleetSpec JSON file instead of a preset")
	fs.BoolVar(&cfg.ListScenarios, "list-scenarios", false, "list scenario presets and exit")
	fs.BoolVar(&cfg.Summary, "summary", false, "print a human-readable summary to stderr")
	fs.StringVar(&cfg.Out, "o", "", "write result JSON to a file (default stdout)")
	fs.Int64Var(&cfg.Seed, "seed", 0, "override the preset seed")
	fs.IntVar(&cfg.Servers, "servers", 0, "override the cluster size")
	fs.IntVar(&cfg.Degree, "degree", 0, "override interfaces per server")
	fs.Float64Var(&cfg.GBps, "bandwidth-gbps", 0, "override per-interface bandwidth")
	fs.StringVar(&cfg.Arch, "arch", "", "override the fabric backend")
	fs.StringVar(&cfg.Policy, "policy", "", "override the placement policy (fifo, strided, backfill)")
	fs.StringVar(&cfg.Prov, "provisioning", "", "override provisioning (patch, lookahead, ocs)")
	fs.IntVar(&cfg.Jobs, "jobs", 0, "override the synthetic job count")
	fs.IntVar(&cfg.Parallel, "parallel", 0, "MCMC chains per embedded strategy search (with -sweep: concurrent replicas)")
	fs.IntVar(&cfg.Sweep, "sweep", 0, "run K seed-replicas and merge them into metric distributions")
	if err := fs.Parse(args); err != nil {
		return simConfig{}, err
	}
	return cfg, nil
}

// buildSpec resolves the preset or spec file and applies overrides.
func buildSpec(cfg simConfig) (topoopt.FleetSpec, error) {
	var spec topoopt.FleetSpec
	if cfg.SpecFile != "" {
		b, err := os.ReadFile(cfg.SpecFile)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			return spec, fmt.Errorf("fleetsim: parsing %s: %w", cfg.SpecFile, err)
		}
	} else {
		var err error
		spec, err = topoopt.FleetScenario(cfg.Scenario)
		if err != nil {
			return spec, err
		}
	}
	if cfg.Seed != 0 {
		spec.Seed = cfg.Seed
	}
	if cfg.Servers > 0 {
		spec.Servers = cfg.Servers
	}
	if cfg.Degree > 0 {
		spec.Degree = cfg.Degree
	}
	if cfg.GBps > 0 {
		spec.LinkBandwidth = cfg.GBps * 1e9
	}
	if cfg.Arch != "" {
		spec.Arch = cfg.Arch
	}
	if cfg.Policy != "" {
		spec.Policy = cfg.Policy
	}
	if cfg.Prov != "" {
		spec.Provisioning = cfg.Prov
	}
	if cfg.Jobs > 0 {
		spec.Trace.Jobs = cfg.Jobs
	}
	if cfg.Parallel > 0 {
		spec.Parallelism = cfg.Parallel
	}
	// A -servers override below the preset's worker cap would fail
	// validation; shrink the cap with the cluster.
	if spec.Trace.MaxWorkers > spec.Servers {
		spec.Trace.MaxWorkers = spec.Servers
	}
	return spec, spec.Validate()
}

// run executes the simulation and writes the result. Split from main for
// tests.
func run(ctx context.Context, cfg simConfig, stdout, stderr io.Writer) error {
	if cfg.ListScenarios {
		for _, s := range topoopt.FleetScenarios() {
			fmt.Fprintln(stdout, s)
		}
		return nil
	}
	spec, err := buildSpec(cfg)
	if err != nil {
		return err
	}
	if cfg.Sweep > 0 {
		return runSweep(ctx, cfg, spec, stdout, stderr)
	}
	res, err := topoopt.RunFleet(ctx, spec)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if cfg.Out != "" {
		if err := os.WriteFile(cfg.Out, b, 0o644); err != nil {
			return err
		}
	} else {
		if _, err := stdout.Write(b); err != nil {
			return err
		}
	}
	if cfg.Summary {
		s := res.Summary
		fmt.Fprintf(stderr,
			"fleetsim: %d jobs on %s/%s/%s  makespan %.0fs  mean JCT %.1fs (p50 %.1f, p95 %.1f)  "+
				"mean queue %.1fs  slowdown %.2fx  util %.1f%%  failures %d (replans %d, restarts %d)  "+
				"searches %d (%d warm, %d/%d index hits)\n",
			s.Jobs, res.Arch, res.Policy, res.Provisioning, s.MakespanS,
			s.MeanJCTS, s.P50JCTS, s.P95JCTS, s.MeanQueueDelayS, s.MeanSlowdown,
			100*s.MeanUtilization, s.Failures, s.Replans, s.Restarts,
			s.Searches, s.WarmStarts, s.WarmHits, s.WarmHits+s.WarmMisses)
	}
	return nil
}

// runSweep executes a -sweep K Monte Carlo run. -parallel doubles as
// the replica fan-out width (each replica's embedded searches run
// single-threaded); the merged output is byte-stable at any width.
func runSweep(ctx context.Context, cfg simConfig, spec topoopt.FleetSpec, stdout, stderr io.Writer) error {
	spec.SearchWorkers = cfg.Parallel
	var progress func(done, total int)
	if cfg.Summary {
		progress = func(done, total int) {
			fmt.Fprintf(stderr, "\rfleetsim: sweep replica %d/%d", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}
	res, err := topoopt.RunFleetSweep(ctx, spec, cfg.Sweep, progress)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if cfg.Out != "" {
		if err := os.WriteFile(cfg.Out, b, 0o644); err != nil {
			return err
		}
	} else {
		if _, err := stdout.Write(b); err != nil {
			return err
		}
	}
	if cfg.Summary {
		fmt.Fprintf(stderr, "fleetsim: sweep of %d replicas on %s/%s/%s (root seed %d)\n",
			res.Replicas, res.Arch, res.Policy, res.Provisioning, res.Seed)
		for _, m := range res.Metrics {
			fmt.Fprintf(stderr, "  %-20s mean %.3f  [%.3f, %.3f] 95%% CI  p50 %.3f  p90 %.3f  p99 %.3f\n",
				m.Name, m.Mean, m.CI95Lo, m.CI95Hi, m.P50, m.P90, m.P99)
		}
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err == flag.ErrHelp {
		return
	}
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}
