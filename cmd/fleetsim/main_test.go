package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topoopt"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-scenario", "failure-storm", "-seed", "7", "-servers", "16",
		"-policy", "backfill", "-jobs", "5", "-summary", "-o", "x.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scenario != "failure-storm" || cfg.Seed != 7 || cfg.Servers != 16 ||
		cfg.Policy != "backfill" || cfg.Jobs != 5 || !cfg.Summary || cfg.Out != "x.json" {
		t.Errorf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestBuildSpecOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-scenario", "steady", "-seed", "99", "-servers", "16",
		"-arch", "Expander", "-policy", "strided", "-provisioning", "patch",
		"-jobs", "3", "-bandwidth-gbps", "40", "-degree", "2", "-parallel", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := buildSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 99 || spec.Servers != 16 || spec.Arch != "Expander" ||
		spec.Policy != "strided" || spec.Provisioning != "patch" ||
		spec.Trace.Jobs != 3 || spec.LinkBandwidth != 40e9 || spec.Degree != 2 ||
		spec.Parallelism != 4 {
		t.Errorf("overrides not applied: %+v", spec)
	}
	// Overridden specs still validate.
	bad := cfg
	bad.Policy = "lifo"
	if _, err := buildSpec(bad); err == nil {
		t.Error("invalid override accepted")
	}
	if _, err := buildSpec(simConfig{Scenario: "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestBuildSpecFromFile(t *testing.T) {
	spec := topoopt.FleetSpec{
		Servers: 8, Degree: 1, LinkBandwidth: 1e9, Arch: "Fat-tree",
		Trace: topoopt.FleetTraceSpec{Inline: []topoopt.FleetJobSpec{
			{AtS: 0, Workers: 4, FixedDurationS: 10},
		}},
	}
	b, _ := json.Marshal(spec)
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := buildSpec(simConfig{SpecFile: path, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Servers != 8 || got.Seed != 5 {
		t.Errorf("spec file + override = %+v", got)
	}
	if _, err := buildSpec(simConfig{SpecFile: filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing spec file accepted")
	}
}

// TestRunDeterministicOutput: the CLI's end-to-end output is
// byte-identical across runs of the same spec, and -summary reports the
// run on stderr.
func TestRunDeterministicOutput(t *testing.T) {
	spec := topoopt.FleetSpec{
		Servers: 8, Degree: 1, LinkBandwidth: 1e9, Arch: "Fat-tree",
		Trace: topoopt.FleetTraceSpec{Inline: []topoopt.FleetJobSpec{
			{AtS: 0, Workers: 4, FixedDurationS: 50},
			{AtS: 1, Workers: 8, FixedDurationS: 20},
		}},
	}
	b, _ := json.Marshal(spec)
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := simConfig{SpecFile: path, Summary: true}
	var out1, out2, errBuf bytes.Buffer
	if err := run(context.Background(), cfg, &out1, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), cfg, &out2, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("two identical runs wrote different JSON")
	}
	var res topoopt.FleetResult
	if err := json.Unmarshal(out1.Bytes(), &res); err != nil {
		t.Fatalf("output is not a FleetResult: %v", err)
	}
	if len(res.Jobs) != 2 {
		t.Errorf("result has %d jobs, want 2", len(res.Jobs))
	}
	if !strings.Contains(errBuf.String(), "2 jobs") {
		t.Errorf("summary missing: %q", errBuf.String())
	}
}

func TestRunWritesFile(t *testing.T) {
	spec := topoopt.FleetSpec{
		Servers: 8, Degree: 1, LinkBandwidth: 1e9, Arch: "Fat-tree",
		Trace: topoopt.FleetTraceSpec{Inline: []topoopt.FleetJobSpec{
			{AtS: 0, Workers: 2, FixedDurationS: 5},
		}},
	}
	b, _ := json.Marshal(spec)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	outPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(specPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run(context.Background(), simConfig{SpecFile: specPath, Out: outPath}, &stdout, &stdout); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("-o should suppress stdout")
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var res topoopt.FleetResult
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatalf("file is not a FleetResult: %v", err)
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), simConfig{ListScenarios: true}, &out, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"steady", "diurnal-burst", "failure-storm"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scenario list missing %q: %q", want, out.String())
		}
	}
}
