// Command topoopt co-optimizes network topology and parallelization
// strategy for one DNN training job and prints the deployable plan:
// patch-panel circuits, TotientPerms AllReduce rings, routing rules and
// the predicted iteration time.
//
// Usage:
//
//	topoopt -model dlrm -servers 16 -degree 4 -bandwidth 100 [-batch 128]
//	        [-rounds 3] [-mcmc 200] [-parallel 8] [-seed 1]
//	        [-section 5.3|5.6|6] [-arch TopoOpt] [-list-archs] [-v]
//
// -parallel K splits the MCMC budget over K concurrent chains; the plan
// is deterministic for a fixed (seed, K) regardless of core count.
//
// -arch selects any fabric backend from the architecture registry
// (-list-archs prints the menu). The default, TopoOpt, prints the full
// deployable plan; any other backend evaluates the workload on that
// fabric and prints its predicted iteration time and §5.2 interconnect
// cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"topoopt"
)

func main() {
	var (
		modelName = flag.String("model", "dlrm", "workload: dlrm, candle, bert, ncf, resnet50, vgg16")
		section   = flag.String("section", "5.3", "preset configuration: 5.3, 5.6 or 6 (List 1)")
		servers   = flag.Int("servers", 16, "number of dedicated servers (n)")
		degree    = flag.Int("degree", 4, "interfaces per server (d)")
		bandwidth = flag.Float64("bandwidth", 100, "per-interface bandwidth in Gbps (B)")
		batch     = flag.Int("batch", 0, "per-GPU batch size (0 = model default)")
		rounds    = flag.Int("rounds", 3, "alternating-optimization rounds (k)")
		mcmc      = flag.Int("mcmc", 200, "MCMC iterations per round (total across chains)")
		parallel  = flag.Int("parallel", 1, "parallel MCMC chains K (deterministic per seed+K)")
		seed      = flag.Int64("seed", 1, "search seed")
		prime     = flag.Bool("prime", false, "restrict TotientPerms to prime generators")
		archName  = flag.String("arch", string(topoopt.ArchTopoOpt),
			"fabric backend to evaluate (see -list-archs); TopoOpt prints the full plan")
		listArchs = flag.Bool("list-archs", false, "list registered architecture backends and exit")
		verbose   = flag.Bool("v", false, "print full routing table")
	)
	flag.Parse()

	if *listArchs {
		for _, a := range topoopt.Architectures() {
			fmt.Println(a)
		}
		return
	}

	m, err := pickModel(*modelName, *section)
	if err != nil {
		fatal(err)
	}
	opts := topoopt.Options{
		Servers: *servers, Degree: *degree, LinkBandwidth: *bandwidth * 1e9,
		BatchPerGPU: *batch, Rounds: *rounds, MCMCIters: *mcmc,
		Seed: *seed, PrimeOnly: *prime, Parallelism: *parallel,
	}
	if topoopt.Architecture(*archName) != topoopt.ArchTopoOpt {
		out, err := evaluateArch(m, opts, *archName, *bandwidth)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	plan, err := topoopt.Optimize(m, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("TopoOpt plan for %s on %d servers (d=%d, B=%.0f Gbps)\n",
		m.Name, *servers, *degree, *bandwidth)
	fmt.Printf("degree split: %d AllReduce + %d MP interfaces\n",
		plan.DegreeAllReduce, plan.DegreeMP)
	for _, r := range plan.Rings {
		fmt.Printf("AllReduce rings over %d servers: permutations %v\n",
			len(r.Members), r.Ps)
	}
	sharded := plan.Strategy.ShardedLayers()
	fmt.Printf("strategy: %d layers total, %d model-parallel\n",
		len(plan.Strategy.Layers), len(sharded))
	for _, li := range sharded {
		fmt.Printf("  layer %d (%s) -> servers %v\n",
			li, m.Layers[li].Name, plan.Strategy.Layers[li].Group)
	}
	it := plan.PredictedIteration
	fmt.Printf("predicted iteration: %.4gs (MP %.4gs + compute %.4gs + AllReduce %.4gs), bandwidth tax %.2f\n",
		it.Total(), it.MPSeconds, it.ComputeSeconds, it.AllReduceSeconds, it.BandwidthTax)

	fmt.Printf("circuits to program (%d):\n", len(plan.Circuits))
	byFrom := map[int][]int{}
	for _, c := range plan.Circuits {
		byFrom[c.From] = append(byFrom[c.From], c.To)
	}
	froms := make([]int, 0, len(byFrom))
	for f := range byFrom {
		froms = append(froms, f)
	}
	sort.Ints(froms)
	for _, f := range froms {
		sort.Ints(byFrom[f])
		tos := make([]string, len(byFrom[f]))
		for i, to := range byFrom[f] {
			tos[i] = fmt.Sprint(to)
		}
		fmt.Printf("  S%-3d TX -> {%s}\n", f, strings.Join(tos, ", "))
	}
	if *verbose {
		fmt.Println("routing rules:")
		for s := 0; s < *servers; s++ {
			for d := 0; d < *servers; d++ {
				if p := plan.Routes[s][d]; len(p) > 2 {
					fmt.Printf("  %d -> %d via %v\n", s, d, p[1:len(p)-1])
				}
			}
		}
	}
}

func pickModel(name, section string) (*topoopt.Model, error) {
	return topoopt.ModelSpec{Preset: name, Section: section}.Resolve()
}

// evaluateArch runs one non-TopoOpt backend through Compare and formats
// its iteration-time breakdown and interconnect cost. Deterministic for
// fixed flags: the backends pin their construction and search seeds to
// Options, so repeated invocations print identical bytes.
func evaluateArch(m *topoopt.Model, o topoopt.Options, name string, gbps float64) (string, error) {
	a, err := topoopt.ParseArchitecture(name)
	if err != nil {
		return "", err
	}
	res, err := topoopt.Compare(m, o, a)
	if err != nil {
		return "", err
	}
	r := res[0]
	var b strings.Builder
	fmt.Fprintf(&b, "%s evaluation for %s on %d servers (d=%d, B=%.0f Gbps)\n",
		r.Arch, m.Name, o.Servers, o.Degree, gbps)
	it := r.Iteration
	fmt.Fprintf(&b, "predicted iteration: %.4gs (MP %.4gs + compute %.4gs + AllReduce %.4gs), bandwidth tax %.2f\n",
		it.Total(), it.MPSeconds, it.ComputeSeconds, it.AllReduceSeconds, it.BandwidthTax)
	fmt.Fprintf(&b, "interconnect cost: $%.0f\n", r.CostUSD)
	return b.String(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topoopt:", err)
	os.Exit(1)
}
