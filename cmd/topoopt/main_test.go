package main

import "testing"

func TestPickModel(t *testing.T) {
	for _, name := range []string{"dlrm", "candle", "bert", "ncf", "resnet50", "vgg16", "VGG"} {
		m, err := pickModel(name, "5.3")
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(m.Layers) == 0 {
			t.Errorf("%s: empty model", name)
		}
	}
	for _, sec := range []string{"5.3", "5.6", "6"} {
		if _, err := pickModel("bert", sec); err != nil {
			t.Errorf("section %s: %v", sec, err)
		}
	}
	if _, err := pickModel("nope", "5.3"); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := pickModel("bert", "9.9"); err == nil {
		t.Error("unknown section should fail")
	}
}
