package main

import (
	"strings"
	"testing"

	"topoopt"
)

func TestPickModel(t *testing.T) {
	for _, name := range []string{"dlrm", "candle", "bert", "ncf", "resnet50", "vgg16", "VGG"} {
		m, err := pickModel(name, "5.3")
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(m.Layers) == 0 {
			t.Errorf("%s: empty model", name)
		}
	}
	for _, sec := range []string{"5.3", "5.6", "6"} {
		if _, err := pickModel("bert", sec); err != nil {
			t.Errorf("section %s: %v", sec, err)
		}
	}
	if _, err := pickModel("nope", "5.3"); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := pickModel("bert", "9.9"); err == nil {
		t.Error("unknown section should fail")
	}
}

// TestEvaluateArchDeterministic pins -arch output for the registry's two
// newest fabrics: the same flags must print identical bytes run over run.
func TestEvaluateArchDeterministic(t *testing.T) {
	m, err := pickModel("candle", "6")
	if err != nil {
		t.Fatal(err)
	}
	opts := topoopt.Options{Servers: 9, Degree: 4, LinkBandwidth: 100e9,
		Rounds: 1, MCMCIters: 10, Seed: 3}
	for _, arch := range []string{"Torus", "SiP-Ring"} {
		first, err := evaluateArch(m, opts, arch, 100)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if !strings.Contains(first, arch) || !strings.Contains(first, "interconnect cost") {
			t.Errorf("%s: unexpected output %q", arch, first)
		}
		again, err := evaluateArch(m, opts, arch, 100)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if first != again {
			t.Errorf("%s output differs across runs:\n%s\n%s", arch, first, again)
		}
	}
}

func TestEvaluateArchUnknownListsRegistry(t *testing.T) {
	m, err := pickModel("candle", "6")
	if err != nil {
		t.Fatal(err)
	}
	opts := topoopt.Options{Servers: 8, Degree: 2, LinkBandwidth: 100e9}
	_, err = evaluateArch(m, opts, "warpdrive", 100)
	if err == nil || !strings.Contains(err.Error(), "Torus") {
		t.Errorf("err = %v, want a registry listing", err)
	}
}
