// Command experiments regenerates the paper's tables and figures (the
// per-experiment index is in DESIGN.md). By default it runs the quick
// 32-server parameterization; -full runs the paper's 128/432-server
// scales (substantially slower).
//
// Usage:
//
//	experiments                # all experiments, quick parameters
//	experiments -only fig11    # one experiment
//	experiments -full          # paper-scale sweeps
//	experiments -list          # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"topoopt/internal/experiments"
)

type exp struct {
	id  string
	run func(experiments.Params, bool) string
}

func fixed(f func() string) func(experiments.Params, bool) string {
	return func(experiments.Params, bool) string { return f() }
}

func scaled(f func(experiments.Params) string) func(experiments.Params, bool) string {
	return func(p experiments.Params, _ bool) string { return f(p) }
}

var all = []exp{
	{"fig01", fixed(experiments.Fig01DLRMHeatmaps)},
	{"fig02", fixed(experiments.Fig02ProductionCDFs)},
	{"fig03", scaled(experiments.Fig03NetworkOverhead)},
	{"fig04", fixed(experiments.Fig04ProductionHeatmaps)},
	{"tab01", fixed(experiments.Tab01OpticalTech)},
	{"fig07", fixed(experiments.Fig07RingPermutations)},
	{"fig09", fixed(experiments.Fig09TopoOptTopology)},
	{"fig10", fixed(experiments.Fig10CostComparison)},
	{"fig11", func(p experiments.Params, full bool) string { return experiments.FigDedicated(p, 4, full) }},
	{"fig12", scaled(experiments.Fig12AllToAll)},
	{"fig13", scaled(experiments.Fig13BandwidthTax)},
	{"fig14", scaled(experiments.Fig14PathLengthCDF)},
	{"fig15", scaled(experiments.Fig15LinkTrafficCDF)},
	{"fig16", scaled(experiments.Fig16SharedCluster)},
	{"fig17", scaled(experiments.Fig17ReconfigLatency)},
	{"fig19", fixed(experiments.Fig19TestbedThroughput)},
	{"fig20", fixed(experiments.Fig20TimeToAccuracy)},
	{"fig21", fixed(experiments.Fig21TestbedAllToAll)},
	{"tab02", fixed(experiments.Tab02ComponentCosts)},
	{"figA1", fixed(experiments.FigA1DoubleBinaryTree)},
	{"fig27", func(p experiments.Params, full bool) string { return experiments.FigDedicated(p, 8, full) }},
	{"fig28", scaled(experiments.Fig28DegreeSensitivity)},
	{"abl-selectperms", scaled(experiments.AblationSelectPerms)},
	{"abl-mpdiscount", scaled(experiments.AblationMPDiscount)},
	{"abl-coinchange", scaled(experiments.AblationCoinChange)},
	{"abl-alternating", scaled(experiments.AblationAlternating)},
	{"abl-mcmc", scaled(experiments.AblationMCMCBudget)},
	{"abl-multiring", scaled(experiments.AblationMultiRing)},
	{"ext-fattree", scaled(experiments.ExtTotientPermsFatTree)},
	{"ext-moe", scaled(experiments.ExtMoETimeVaryingTraffic)},
	{"ext-arrivals", scaled(experiments.ExtDynamicArrivals)},
	{"ext-te", scaled(experiments.ExtRoutingTE)},
}

func main() {
	var (
		full = flag.Bool("full", false, "paper-scale parameters (128/432 servers)")
		only = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range all {
			fmt.Println(e.id)
		}
		return
	}
	params := experiments.Quick
	if *full {
		params = experiments.Full
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Println(e.run(params, *full))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched %q (use -list)\n", *only)
		os.Exit(1)
	}
}
