package main

import (
	"testing"

	"topoopt/internal/experiments"
)

func TestRegistryUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range all {
		if e.id == "" {
			t.Error("empty experiment id")
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.run == nil {
			t.Errorf("%s: nil runner", e.id)
		}
	}
	// Every paper figure/table of the DESIGN.md index is registered.
	for _, id := range []string{"fig01", "fig02", "fig03", "fig04", "tab01",
		"fig07", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig19", "fig20", "fig21", "tab02",
		"figA1", "fig27", "fig28"} {
		if !seen[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestFixedAndScaledWrappers(t *testing.T) {
	f := fixed(func() string { return "x" })
	if got := f(allParams(), true); got != "x" {
		t.Errorf("fixed wrapper = %q", got)
	}
}

func allParams() experiments.Params { return experiments.Params{} }
