// Command costcalc prices interconnect architectures with the §5.2 cost
// model (Table 2 component prices, Appendix G bill of materials). Every
// registered fabric backend is priced: the §5.1 comparison set in the
// figure's cheap-to-expensive order, then any additional backends in
// registry order.
//
// Usage:
//
//	costcalc -servers 432 -degree 4 -bandwidth 100
package main

import (
	"flag"
	"fmt"
	"os"

	"topoopt"
	"topoopt/internal/arch"
	"topoopt/internal/experiments"
)

// priceOrder returns every registered architecture: Figure 10's
// cheap-to-expensive order for the §5.1 set (shared with the figure
// generator), then backends registered since, in registry order.
func priceOrder() []topoopt.Architecture {
	figure := experiments.Fig10ArchOrder()
	listed := make(map[topoopt.Architecture]bool, len(figure))
	out := make([]topoopt.Architecture, 0, len(figure))
	for _, a := range figure {
		out = append(out, topoopt.Architecture(a))
		listed[topoopt.Architecture(a)] = true
	}
	for _, a := range topoopt.Architectures() {
		if !listed[a] {
			out = append(out, a)
		}
	}
	return out
}

func main() {
	var (
		servers   = flag.Int("servers", 432, "number of servers")
		degree    = flag.Int("degree", 4, "interfaces per server")
		bandwidth = flag.Float64("bandwidth", 100, "per-interface Gbps")
	)
	flag.Parse()
	bw := *bandwidth * 1e9
	fmt.Printf("Interconnect cost, n=%d servers, d=%d, B=%.0f Gbps\n",
		*servers, *degree, *bandwidth)
	topoCost, err := topoopt.Cost(topoopt.ArchTopoOpt, *servers, *degree, bw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "costcalc:", err)
		os.Exit(1)
	}
	for _, a := range priceOrder() {
		c, err := topoopt.Cost(a, *servers, *degree, bw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costcalc:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-16s $%12.0f  (%.2fx TopoOpt)\n", a, c, c/topoCost)
	}
	if ft, ok := arch.Lookup(string(topoopt.ArchFatTree)); ok {
		spec := ft.Interfaces(arch.Options{Servers: *servers, Degree: *degree, LinkBW: bw})
		fmt.Printf("cost-equivalent Fat-tree per-server bandwidth: %.0f Gbps (vs d*B = %.0f Gbps)\n",
			spec.LinkBW/1e9, float64(*degree)**bandwidth)
	}
}
