// Command costcalc prices interconnect architectures with the §5.2 cost
// model (Table 2 component prices, Appendix G bill of materials).
//
// Usage:
//
//	costcalc -servers 432 -degree 4 -bandwidth 100
package main

import (
	"flag"
	"fmt"
	"os"

	"topoopt/internal/cost"
)

func main() {
	var (
		servers   = flag.Int("servers", 432, "number of servers")
		degree    = flag.Int("degree", 4, "interfaces per server")
		bandwidth = flag.Float64("bandwidth", 100, "per-interface Gbps")
	)
	flag.Parse()
	bw := *bandwidth * 1e9
	archs := []string{cost.ArchExpander, cost.ArchTopoOpt, cost.ArchFatTree,
		cost.ArchOCS, cost.ArchOversub, cost.ArchIdeal, cost.ArchSiPML}
	fmt.Printf("Interconnect cost, n=%d servers, d=%d, B=%.0f Gbps\n",
		*servers, *degree, *bandwidth)
	topoCost, _ := cost.Of(cost.ArchTopoOpt, *servers, *degree, bw)
	for _, a := range archs {
		c, err := cost.Of(a, *servers, *degree, bw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costcalc:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-16s $%12.0f  (%.2fx TopoOpt)\n", a, c, c/topoCost)
	}
	bft := cost.EquivalentFatTreeBandwidth(*servers, *degree, bw)
	fmt.Printf("cost-equivalent Fat-tree per-server bandwidth: %.0f Gbps (vs d*B = %.0f Gbps)\n",
		bft/1e9, float64(*degree)**bandwidth)
}
