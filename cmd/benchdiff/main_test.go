package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: topoopt/internal/netsim
BenchmarkNetsimSmall-8   	    1000	   1200 ns/op	      16 B/op	       2 allocs/op
BenchmarkNetsimLarge-8   	     100	  50000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	topoopt/internal/netsim	2.345s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	got := results[0]
	if got.Name != "BenchmarkNetsimSmall" {
		t.Errorf("name %q should have the -8 CPU suffix stripped", got.Name)
	}
	if got.NsPerOp != 1200 || got.BytesPerOp != 16 || got.AllocsPerOp != 2 {
		t.Errorf("unexpected measurements: %+v", got)
	}
}

func writeBenchFile(t *testing.T, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsRegressionAndTolerance(t *testing.T) {
	path := writeBenchFile(t, File{Current: []Result{
		{Name: "BenchmarkNetsimSmall", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "BenchmarkNetsimLarge", NsPerOp: 50000},
	}})
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// 1200 vs 1000 ns/op = 1.20x: inside a 1.30 tolerance, outside 1.10.
	if fails := compare(path, results, 1.30, 1.10); fails != 0 {
		t.Errorf("within tolerance, got %d failures", fails)
	}
	if fails := compare(path, results, 1.10, 1.10); fails == 0 {
		t.Error("a 1.20x ns/op regression should fail a 1.10 tolerance")
	}
}

func TestCompareFlagsMissingBenchmarks(t *testing.T) {
	path := writeBenchFile(t, File{Current: []Result{
		{Name: "BenchmarkNetsimSmall", NsPerOp: 1000},
		{Name: "BenchmarkVanished", NsPerOp: 1},
	}})
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if fails := compare(path, results, 10, 10); fails == 0 {
		t.Error("a recorded benchmark missing from the run must fail the check")
	}
}

func TestRecordPreservesSeedBaseline(t *testing.T) {
	path := writeBenchFile(t, File{
		Note:         "n",
		SeedBaseline: []Result{{Name: "BenchmarkNetsimSmall", NsPerOp: 99999}},
		Current:      []Result{{Name: "BenchmarkNetsimSmall", NsPerOp: 2000}},
	})
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := record(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.SeedBaseline) != 1 || f.SeedBaseline[0].NsPerOp != 99999 {
		t.Error("record must never touch the frozen seed baseline")
	}
	if len(f.Current) != 2 || f.Current[0].NsPerOp != 1200 {
		t.Errorf("current section not rewritten: %+v", f.Current)
	}
}
