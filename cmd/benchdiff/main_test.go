package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: topoopt/internal/netsim
BenchmarkNetsimSmall-8   	    1000	   1200 ns/op	      16 B/op	       2 allocs/op
BenchmarkNetsimLarge-8   	     100	  50000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	topoopt/internal/netsim	2.345s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	got := results[0]
	if got.Name != "BenchmarkNetsimSmall" {
		t.Errorf("name %q should have the -8 CPU suffix stripped", got.Name)
	}
	if got.NsPerOp != 1200 || got.BytesPerOp != 16 || got.AllocsPerOp != 2 {
		t.Errorf("unexpected measurements: %+v", got)
	}
}

func writeBenchFile(t *testing.T, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsRegressionAndTolerance(t *testing.T) {
	path := writeBenchFile(t, File{Current: []Result{
		{Name: "BenchmarkNetsimSmall", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "BenchmarkNetsimLarge", NsPerOp: 50000},
	}})
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// 1200 vs 1000 ns/op = 1.20x: inside a 1.30 tolerance, outside 1.10.
	if fails := compare(path, results, 1.30, 1.10); fails != 0 {
		t.Errorf("within tolerance, got %d failures", fails)
	}
	if fails := compare(path, results, 1.10, 1.10); fails == 0 {
		t.Error("a 1.20x ns/op regression should fail a 1.10 tolerance")
	}
}

func TestCompareFlagsMissingBenchmarks(t *testing.T) {
	path := writeBenchFile(t, File{Current: []Result{
		{Name: "BenchmarkNetsimSmall", NsPerOp: 1000},
		{Name: "BenchmarkVanished", NsPerOp: 1},
	}})
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if fails := compare(path, results, 10, 10); fails == 0 {
		t.Error("a recorded benchmark missing from the run must fail the check")
	}
}

func TestHistoryAppendAndImport(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "BENCH_HISTORY.json")

	// First append creates the ledger from stdin-parsed results.
	var out strings.Builder
	err := runHistory(ledger, "netsim", "pr7", "2026-08-08", "", false,
		strings.NewReader(sampleBenchOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "appended netsim/2026-08-08 (2 benchmarks)") {
		t.Errorf("append output: %q", out.String())
	}

	// Second entry imports a committed BENCH_*.json instead of stdin.
	seed := writeBenchFile(t, File{Current: []Result{
		{Name: "BenchmarkNetsimSmall", NsPerOp: 1000, AllocsPerOp: 2}}})
	if err := runHistory(ledger, "netsim", "seed", "2026-07-01", seed, false, nil, io.Discard); err != nil {
		t.Fatal(err)
	}

	h, err := readHistory(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 2 || h.Note == "" {
		t.Fatalf("ledger: %+v", h)
	}
	if h.Entries[0].Label != "pr7" || h.Entries[1].Label != "seed" {
		t.Errorf("entry labels/order wrong: %+v", h.Entries)
	}
	if len(h.Entries[1].Results) != 1 || h.Entries[1].Results[0].NsPerOp != 1000 {
		t.Errorf("imported results wrong: %+v", h.Entries[1].Results)
	}
}

func TestHistoryAppendValidation(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "BENCH_HISTORY.json")
	if err := runHistory(ledger, "", "", "", "", false,
		strings.NewReader(sampleBenchOutput), io.Discard); err == nil {
		t.Error("append without -suite must fail")
	}
	if err := runHistory(ledger, "netsim", "", "", "", false,
		strings.NewReader("no benchmarks here\n"), io.Discard); err == nil {
		t.Error("append with no parsed results must fail")
	}
	if _, err := os.Stat(ledger); !os.IsNotExist(err) {
		t.Error("failed appends must not create the ledger")
	}
}

func TestHistoryTrend(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "BENCH_HISTORY.json")
	entries := []HistoryEntry{
		{Date: "2026-07-01", Suite: "netsim", Results: []Result{
			{Name: "BenchmarkNetsimSmall", NsPerOp: 1000, AllocsPerOp: 2},
			{Name: "BenchmarkNetsimLarge", NsPerOp: 50000}}},
		{Date: "2026-08-08", Suite: "netsim", Results: []Result{
			{Name: "BenchmarkNetsimSmall", NsPerOp: 1200, AllocsPerOp: 3},
			{Name: "BenchmarkNetsimLarge", NsPerOp: 48000}}},
		{Date: "2026-08-08", Suite: "serve", Results: []Result{
			{Name: "BenchmarkServeCacheHit", NsPerOp: 60000}}},
	}
	if err := writeHistory(ledger, History{Entries: entries}); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := runHistory(ledger, "", "", "", "", true, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkNetsimSmall", "2 runs", "1000 -> 2026-08-08 1200 ns/op (1.20x) SLOWER",
		"allocs/op 2 -> 3",
		"(0.96x) flat", // NetsimLarge: inside the ±5% flat band
		"1 runs",       // the serve suite's single entry still reports
		"BenchmarkServeCacheHit",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trend output missing %q:\n%s", want, got)
		}
	}

	// Suite filter narrows the report; an unknown suite is an error.
	out.Reset()
	if err := runHistory(ledger, "serve", "", "", "", true, nil, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "netsim") {
		t.Errorf("suite filter leaked other suites:\n%s", out.String())
	}
	if err := runHistory(ledger, "no-such-suite", "", "", "", true, nil, io.Discard); err == nil {
		t.Error("trend for an unknown suite must fail")
	}
	if err := runHistory(filepath.Join(t.TempDir(), "missing.json"), "", "", "", "", true, nil, io.Discard); err == nil {
		t.Error("trend over an empty ledger must fail")
	}
}

func TestRecordPreservesSeedBaseline(t *testing.T) {
	path := writeBenchFile(t, File{
		Note:         "n",
		SeedBaseline: []Result{{Name: "BenchmarkNetsimSmall", NsPerOp: 99999}},
		Current:      []Result{{Name: "BenchmarkNetsimSmall", NsPerOp: 2000}},
	})
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := record(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.SeedBaseline) != 1 || f.SeedBaseline[0].NsPerOp != 99999 {
		t.Error("record must never touch the frozen seed baseline")
	}
	if len(f.Current) != 2 || f.Current[0].NsPerOp != 1200 {
		t.Errorf("current section not rewritten: %+v", f.Current)
	}
}
