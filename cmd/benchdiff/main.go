// Command benchdiff records and gates the netsim microbenchmark results
// that anchor the repository's performance trajectory (see DESIGN.md,
// "Simulator performance").
//
// Record mode (the `make bench` target):
//
//	go test ./internal/netsim -bench BenchmarkNetsim -benchmem | benchdiff -out BENCH_netsim.json
//
// parses `go test -bench` output from stdin and rewrites the "current"
// section of the JSON file, preserving the committed "seed_baseline"
// section (the pre-refactor allocator's numbers).
//
// Check mode (the `make benchcheck` target):
//
//	go test ./internal/netsim -bench BenchmarkNetsim -benchmem | benchdiff -check BENCH_netsim.json
//
// compares stdin against the file's "current" section and exits nonzero
// when ns/op or allocs/op regress beyond the tolerances, so future PRs can
// gate on simulator regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the BENCH_*.json layout: the frozen pre-refactor baseline plus
// the latest recorded run.
type File struct {
	Note         string   `json:"note,omitempty"`
	SeedBaseline []Result `json:"seed_baseline,omitempty"`
	Current      []Result `json:"current"`
}

func main() {
	out := flag.String("out", "", "record mode: write/update this BENCH_*.json")
	check := flag.String("check", "", "check mode: compare stdin against this BENCH_*.json")
	maxNs := flag.Float64("max-ns-regress", 1.30, "check mode: allowed ns/op growth factor")
	maxAllocs := flag.Float64("max-alloc-regress", 1.10, "check mode: allowed allocs/op growth factor")
	warnOnly := flag.Bool("warn-only", false, "check mode: report regressions but exit 0 (for noisy CI runners)")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -out or -check is required")
		os.Exit(2)
	}

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *out != "" {
		if err := record(*out, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: recorded %d benchmarks to %s\n", len(results), *out)
		return
	}
	if fails := compare(*check, results, *maxNs, *maxAllocs); fails > 0 {
		if *warnOnly {
			fmt.Printf("benchdiff: %d regression(s) — warn-only mode, not failing\n", fails)
			return
		}
		os.Exit(1)
	}
}

// parseBench extracts Result rows from `go test -bench -benchmem` output,
// e.g. "BenchmarkFoo-8   123   4567 ns/op   89 B/op   10 allocs/op".
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		res := Result{Name: strings.TrimSuffix(fields[0], cpuSuffix(fields[0]))}
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if res.NsPerOp > 0 {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// cpuSuffix returns the "-N" GOMAXPROCS suffix of a benchmark name, if
// present, so recorded names are machine-independent.
func cpuSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[i:]
		}
	}
	return ""
}

func record(path string, results []Result) error {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not valid JSON: %w", path, err)
		}
	}
	f.Current = results
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func compare(path string, results []Result, maxNs, maxAllocs float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	recorded := make(map[string]Result, len(f.Current))
	for _, r := range f.Current {
		recorded[r.Name] = r
	}
	fails := 0
	// A recorded benchmark that vanished from the run (renamed, deleted,
	// or crashed before reporting) is a failure, not a silent pass.
	ran := make(map[string]bool, len(results))
	for _, r := range results {
		ran[r.Name] = true
	}
	for _, r := range f.Current {
		if !ran[r.Name] {
			fmt.Printf("benchdiff: %-40s MISSING from this run\n", r.Name)
			fails++
		}
	}
	for _, r := range results {
		base, ok := recorded[r.Name]
		if !ok {
			fmt.Printf("benchdiff: %-40s NEW (no recorded value)\n", r.Name)
			continue
		}
		nsRatio := r.NsPerOp / base.NsPerOp
		status := "ok"
		if nsRatio > maxNs {
			status = "REGRESSION"
			fails++
		}
		fmt.Printf("benchdiff: %-40s ns/op %.0f -> %.0f (%.2fx) %s\n",
			r.Name, base.NsPerOp, r.NsPerOp, nsRatio, status)
		if base.AllocsPerOp > 0 {
			aRatio := float64(r.AllocsPerOp) / float64(base.AllocsPerOp)
			if aRatio > maxAllocs {
				fmt.Printf("benchdiff: %-40s allocs/op %d -> %d (%.2fx) REGRESSION\n",
					r.Name, base.AllocsPerOp, r.AllocsPerOp, aRatio)
				fails++
			}
		} else if r.AllocsPerOp > base.AllocsPerOp {
			fmt.Printf("benchdiff: %-40s allocs/op %d -> %d REGRESSION\n",
				r.Name, base.AllocsPerOp, r.AllocsPerOp)
			fails++
		}
	}
	return fails
}
