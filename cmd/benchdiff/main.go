// Command benchdiff records and gates the netsim microbenchmark results
// that anchor the repository's performance trajectory (see DESIGN.md,
// "Simulator performance").
//
// Record mode (the `make bench` target):
//
//	go test ./internal/netsim -bench BenchmarkNetsim -benchmem | benchdiff -out BENCH_netsim.json
//
// parses `go test -bench` output from stdin and rewrites the "current"
// section of the JSON file, preserving the committed "seed_baseline"
// section (the pre-refactor allocator's numbers).
//
// Check mode (the `make benchcheck` target):
//
//	go test ./internal/netsim -bench BenchmarkNetsim -benchmem | benchdiff -check BENCH_netsim.json
//
// compares stdin against the file's "current" section and exits nonzero
// when ns/op or allocs/op regress beyond the tolerances, so future PRs can
// gate on simulator regressions.
//
// History mode (the `make bench-history` target) keeps a dated, append-only
// ledger of runs across PRs in BENCH_HISTORY.json, so the performance
// trajectory is a first-class artifact rather than something reconstructed
// from git archaeology:
//
//	go test ./internal/serve -bench BenchmarkServe -benchmem | benchdiff -history BENCH_HISTORY.json -suite serve
//	benchdiff -history BENCH_HISTORY.json -suite serve -import BENCH_serve.json -label pr6
//	benchdiff -history BENCH_HISTORY.json -trend
//
// The first form appends a dated entry parsed from stdin; -import instead
// copies the "current" section of an existing BENCH_*.json (seeding the
// ledger from committed baselines, no stdin); -trend reads nothing and
// reports each benchmark's first→latest trajectory across entries,
// optionally filtered by -suite.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the BENCH_*.json layout: the frozen pre-refactor baseline plus
// the latest recorded run.
type File struct {
	Note         string   `json:"note,omitempty"`
	SeedBaseline []Result `json:"seed_baseline,omitempty"`
	Current      []Result `json:"current"`
}

// HistoryEntry is one dated run of one suite in the trajectory ledger.
type HistoryEntry struct {
	Date    string   `json:"date"`            // YYYY-MM-DD
	Suite   string   `json:"suite"`           // netsim, serve, flexnet, fleet, ...
	Label   string   `json:"label,omitempty"` // free-form provenance, e.g. "pr6-baseline"
	Results []Result `json:"results"`
}

// History is the BENCH_HISTORY.json layout: an append-only ledger of
// benchmark runs, ordered as appended.
type History struct {
	Note    string         `json:"note,omitempty"`
	Entries []HistoryEntry `json:"entries"`
}

func main() {
	out := flag.String("out", "", "record mode: write/update this BENCH_*.json")
	check := flag.String("check", "", "check mode: compare stdin against this BENCH_*.json")
	maxNs := flag.Float64("max-ns-regress", 1.30, "check mode: allowed ns/op growth factor")
	maxAllocs := flag.Float64("max-alloc-regress", 1.10, "check mode: allowed allocs/op growth factor")
	warnOnly := flag.Bool("warn-only", false, "check mode: report regressions but exit 0 (for noisy CI runners)")
	history := flag.String("history", "", "history mode: append to / report from this BENCH_HISTORY.json")
	suite := flag.String("suite", "", "history mode: suite name for the appended entry (or -trend filter)")
	label := flag.String("label", "", "history mode: free-form label for the appended entry")
	date := flag.String("date", "", "history mode: entry date YYYY-MM-DD (default today)")
	importFrom := flag.String("import", "", "history mode: copy the \"current\" section of this BENCH_*.json instead of reading stdin")
	trend := flag.Bool("trend", false, "history mode: report first→latest trajectory per benchmark, no stdin")
	flag.Parse()

	modes := 0
	for _, m := range []string{*out, *check, *history} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -out, -check or -history is required")
		os.Exit(2)
	}

	if *history != "" {
		if err := runHistory(*history, *suite, *label, *date, *importFrom, *trend, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *out != "" {
		if err := record(*out, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: recorded %d benchmarks to %s\n", len(results), *out)
		return
	}
	if fails := compare(*check, results, *maxNs, *maxAllocs); fails > 0 {
		if *warnOnly {
			fmt.Printf("benchdiff: %d regression(s) — warn-only mode, not failing\n", fails)
			return
		}
		os.Exit(1)
	}
}

// runHistory dispatches the -history sub-modes: -trend reporting, -import
// seeding, or appending a run parsed from stdin.
func runHistory(path, suite, label, date, importFrom string, trend bool, stdin io.Reader, stdout io.Writer) error {
	if trend {
		h, err := readHistory(path)
		if err != nil {
			return err
		}
		return trendReport(stdout, h, suite)
	}
	if suite == "" {
		return fmt.Errorf("-history append requires -suite")
	}
	if date == "" {
		date = time.Now().Format("2006-01-02")
	}
	var results []Result
	if importFrom != "" {
		data, err := os.ReadFile(importFrom)
		if err != nil {
			return err
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", importFrom, err)
		}
		results = f.Current
	} else {
		var err error
		if results, err = parseBench(stdin); err != nil {
			return err
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results to append")
	}
	h, err := readHistory(path)
	if err != nil {
		return err
	}
	if h.Note == "" {
		h.Note = "Append-only benchmark trajectory ledger; one dated entry per suite per run. Maintained by `benchdiff -history` (see `make bench-history`)."
	}
	h.Entries = append(h.Entries, HistoryEntry{Date: date, Suite: suite, Label: label, Results: results})
	if err := writeHistory(path, h); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchdiff: appended %s/%s (%d benchmarks) to %s — %d entries total\n",
		suite, date, len(results), path, len(h.Entries))
	return nil
}

// readHistory loads the ledger, returning an empty one when the file does
// not exist yet (first append creates it).
func readHistory(path string) (History, error) {
	var h History
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return h, nil
	}
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(data, &h); err != nil {
		return h, fmt.Errorf("existing %s is not valid JSON: %w", path, err)
	}
	return h, nil
}

func writeHistory(path string, h History) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// trendReport prints, per suite and benchmark, the earliest and latest
// recorded ns/op across the ledger and the growth factor between them, so
// a slow drift that never trips a single-PR benchcheck tolerance is still
// visible. Entries are ledger-ordered (append order), which is also
// chronological for a ledger only ever written by -history.
func trendReport(w io.Writer, h History, suiteFilter string) error {
	if len(h.Entries) == 0 {
		return fmt.Errorf("history is empty — nothing to trend")
	}
	type series struct {
		suite, name         string
		first, last         Result
		firstDate, lastDate string
		lastRuns            int // entries containing this benchmark
	}
	bySuite := map[string]map[string]*series{}
	matched := false
	for _, e := range h.Entries {
		if suiteFilter != "" && e.Suite != suiteFilter {
			continue
		}
		matched = true
		m := bySuite[e.Suite]
		if m == nil {
			m = map[string]*series{}
			bySuite[e.Suite] = m
		}
		for _, r := range e.Results {
			s := m[r.Name]
			if s == nil {
				s = &series{suite: e.Suite, name: r.Name, first: r, firstDate: e.Date}
				m[r.Name] = s
			}
			s.last, s.lastDate = r, e.Date
			s.lastRuns++
		}
	}
	if !matched {
		return fmt.Errorf("no entries for suite %q", suiteFilter)
	}
	suites := make([]string, 0, len(bySuite))
	for s := range bySuite {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, su := range suites {
		names := make([]string, 0, len(bySuite[su]))
		for n := range bySuite[su] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s := bySuite[su][n]
			ratio := s.last.NsPerOp / s.first.NsPerOp
			verdict := "flat"
			switch {
			case ratio > 1.05:
				verdict = "SLOWER"
			case ratio < 0.95:
				verdict = "faster"
			}
			fmt.Fprintf(w, "trend %-8s %-40s %d runs  %s %.0f -> %s %.0f ns/op (%.2fx) %s\n",
				su, s.name, s.lastRuns, s.firstDate, s.first.NsPerOp, s.lastDate, s.last.NsPerOp, ratio, verdict)
			if s.first.AllocsPerOp != s.last.AllocsPerOp {
				fmt.Fprintf(w, "trend %-8s %-40s allocs/op %d -> %d\n",
					su, s.name, s.first.AllocsPerOp, s.last.AllocsPerOp)
			}
		}
	}
	return nil
}

// parseBench extracts Result rows from `go test -bench -benchmem` output,
// e.g. "BenchmarkFoo-8   123   4567 ns/op   89 B/op   10 allocs/op".
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		res := Result{Name: strings.TrimSuffix(fields[0], cpuSuffix(fields[0]))}
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if res.NsPerOp > 0 {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// cpuSuffix returns the "-N" GOMAXPROCS suffix of a benchmark name, if
// present, so recorded names are machine-independent.
func cpuSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[i:]
		}
	}
	return ""
}

func record(path string, results []Result) error {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not valid JSON: %w", path, err)
		}
	}
	f.Current = results
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func compare(path string, results []Result, maxNs, maxAllocs float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	recorded := make(map[string]Result, len(f.Current))
	for _, r := range f.Current {
		recorded[r.Name] = r
	}
	fails := 0
	// A recorded benchmark that vanished from the run (renamed, deleted,
	// or crashed before reporting) is a failure, not a silent pass.
	ran := make(map[string]bool, len(results))
	for _, r := range results {
		ran[r.Name] = true
	}
	for _, r := range f.Current {
		if !ran[r.Name] {
			fmt.Printf("benchdiff: %-40s MISSING from this run\n", r.Name)
			fails++
		}
	}
	for _, r := range results {
		base, ok := recorded[r.Name]
		if !ok {
			fmt.Printf("benchdiff: %-40s NEW (no recorded value)\n", r.Name)
			continue
		}
		nsRatio := r.NsPerOp / base.NsPerOp
		status := "ok"
		if nsRatio > maxNs {
			status = "REGRESSION"
			fails++
		}
		fmt.Printf("benchdiff: %-40s ns/op %.0f -> %.0f (%.2fx) %s\n",
			r.Name, base.NsPerOp, r.NsPerOp, nsRatio, status)
		if base.AllocsPerOp > 0 {
			aRatio := float64(r.AllocsPerOp) / float64(base.AllocsPerOp)
			if aRatio > maxAllocs {
				fmt.Printf("benchdiff: %-40s allocs/op %d -> %d (%.2fx) REGRESSION\n",
					r.Name, base.AllocsPerOp, r.AllocsPerOp, aRatio)
				fails++
			}
		} else if r.AllocsPerOp > base.AllocsPerOp {
			fmt.Printf("benchdiff: %-40s allocs/op %d -> %d REGRESSION\n",
				r.Name, base.AllocsPerOp, r.AllocsPerOp)
			fails++
		}
	}
	return fails
}
