// Command heatmap prints ASCII traffic heatmaps for a workload under
// different parallelization strategies and AllReduce permutations — the
// interactive version of the paper's Figures 1, 7–9.
//
// Usage:
//
//	heatmap -model dlrm -servers 16 [-strategy hybrid|dp] [-perms 1,3,7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"topoopt/internal/collective"
	"topoopt/internal/heatmap"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

func main() {
	var (
		modelName = flag.String("model", "dlrm", "workload: dlrm, candle, bert, ncf, resnet50, vgg16")
		servers   = flag.Int("servers", 16, "number of servers")
		strategy  = flag.String("strategy", "hybrid", "parallelization: hybrid or dp")
		permsArg  = flag.String("perms", "", "comma-separated ring permutations (default: single +1 ring)")
		batch     = flag.Int("batch", 0, "per-GPU batch (0 = model default)")
	)
	flag.Parse()

	m := pick(*modelName)
	if m == nil {
		fmt.Fprintf(os.Stderr, "heatmap: unknown model %q\n", *modelName)
		os.Exit(1)
	}
	if *batch <= 0 {
		*batch = m.BatchPerGPU
	}
	var st parallel.Strategy
	switch *strategy {
	case "hybrid":
		st = parallel.Hybrid(m, *servers)
	case "dp":
		st = parallel.DataParallel(m, *servers)
	default:
		fmt.Fprintf(os.Stderr, "heatmap: unknown strategy %q\n", *strategy)
		os.Exit(1)
	}
	dem, err := traffic.FromStrategy(m, st, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heatmap:", err)
		os.Exit(1)
	}
	var perms []int
	if *permsArg != "" {
		for _, s := range strings.Split(*permsArg, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "heatmap: bad permutation %q\n", s)
				os.Exit(1)
			}
			perms = append(perms, p)
		}
	} else {
		perms = []int{1}
	}
	tm := dem.MP.Clone()
	for _, g := range dem.Groups {
		collective.MultiRing(tm, g.Members, perms, g.Bytes)
	}
	fmt.Printf("%s, %d servers, %s parallelism, rings %v\n",
		m.Name, *servers, *strategy, perms)
	fmt.Printf("AllReduce %s + MP %s per iteration\n",
		heatmap.Human(float64(dem.TotalAllReduceBytes())),
		heatmap.Human(float64(dem.TotalMPBytes())))
	fmt.Print(heatmap.Render(tm))
}

func pick(name string) *model.Model {
	switch strings.ToLower(name) {
	case "dlrm":
		return model.DLRMPreset(model.Sec53)
	case "candle":
		return model.CANDLEPreset(model.Sec53)
	case "bert":
		return model.BERTPreset(model.Sec53)
	case "ncf":
		return model.NCFPreset()
	case "resnet50", "resnet":
		return model.ResNetPreset(model.Sec53)
	case "vgg16", "vgg":
		return model.VGGPreset(model.Sec53)
	}
	return nil
}
