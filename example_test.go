package topoopt_test

import (
	"fmt"

	"topoopt"
)

// ExampleOptimize co-optimizes a small DLRM job and prints the interface
// split and AllReduce ring permutations of the resulting plan.
func ExampleOptimize() {
	m := topoopt.DLRM(topoopt.Sec6)
	plan, err := topoopt.Optimize(m, topoopt.Options{
		Servers:       12,
		Degree:        4,
		LinkBandwidth: 25e9,
		Rounds:        1,
		MCMCIters:     20,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("interfaces: %d AllReduce + %d MP\n", plan.DegreeAllReduce, plan.DegreeMP)
	for _, r := range plan.Rings {
		fmt.Printf("rings over %d servers: %v\n", len(r.Members), r.Ps)
	}
	// Output:
	// interfaces: 4 AllReduce + 0 MP
	// rings over 12 servers: [1 5 7 11]
}
