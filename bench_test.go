// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark prints the figure's rows/series once (on the
// first iteration) and times a full regeneration, so
//
//	go test -bench=. -benchmem
//
// both reproduces the results and measures the harness. Quick parameters
// (32-server sweeps) are used here; cmd/experiments -full runs the
// paper-scale versions. The per-experiment index mapping benchmarks to
// paper tables/figures is in DESIGN.md; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package topoopt

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"topoopt/internal/experiments"
)

var printed sync.Map

// report prints the experiment output exactly once per benchmark name and
// keeps the compiler from eliding the generation work.
func report(b *testing.B, out string) {
	b.Helper()
	if len(out) == 0 {
		b.Fatal("empty experiment output")
	}
	if _, dup := printed.LoadOrStore(b.Name(), true); !dup {
		fmt.Fprintln(os.Stdout, out)
	}
}

var quick = experiments.Quick

func BenchmarkFig01DLRMHeatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig01DLRMHeatmaps())
	}
}

func BenchmarkFig02ProductionCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig02ProductionCDFs())
	}
}

func BenchmarkFig03NetworkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig03NetworkOverhead(quick))
	}
}

func BenchmarkFig04ProductionHeatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig04ProductionHeatmaps())
	}
}

func BenchmarkTab01OpticalTech(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Tab01OpticalTech())
	}
}

func BenchmarkFig07RingPermutations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig07RingPermutations())
	}
}

func BenchmarkFig09TopoOptTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig09TopoOptTopology())
	}
}

func BenchmarkFig10CostComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig10CostComparison())
	}
}

func BenchmarkFig11Dedicated128D4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.FigDedicated(quick, 4, false))
	}
}

func BenchmarkFig12AllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig12AllToAll(quick))
	}
}

func BenchmarkFig13BandwidthTax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig13BandwidthTax(quick))
	}
}

func BenchmarkFig14PathLengthCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig14PathLengthCDF(quick))
	}
}

func BenchmarkFig15LinkTrafficCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig15LinkTrafficCDF(quick))
	}
}

func BenchmarkFig16SharedCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig16SharedCluster(quick))
	}
}

func BenchmarkFig17ReconfigLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig17ReconfigLatency(quick))
	}
}

func BenchmarkFig19TestbedThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig19TestbedThroughput())
	}
}

func BenchmarkFig20TimeToAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig20TimeToAccuracy())
	}
}

func BenchmarkFig21TestbedAllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig21TestbedAllToAll())
	}
}

func BenchmarkTab02ComponentCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Tab02ComponentCosts())
	}
}

func BenchmarkFigA1DoubleBinaryTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.FigA1DoubleBinaryTree())
	}
}

func BenchmarkFig27Dedicated128D8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.FigDedicated(quick, 8, false))
	}
}

func BenchmarkFig28DegreeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Fig28DegreeSensitivity(quick))
	}
}

// Ablation benches for the design decisions called out in DESIGN.md.

func BenchmarkAblationSelectPerms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationSelectPerms(quick))
	}
}

func BenchmarkAblationMPDiscount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationMPDiscount(quick))
	}
}

func BenchmarkAblationCoinChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationCoinChange(quick))
	}
}

func BenchmarkAblationAlternating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationAlternating(quick))
	}
}

func BenchmarkAblationMCMCBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationMCMCBudget(quick))
	}
}

func BenchmarkAblationMultiRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationMultiRing(quick))
	}
}

// BenchmarkCompare sweeps every registered architecture backend through
// the public Compare at a tiny budget. Recorded via `make flexnet-bench`
// into BENCH_flexnet.json: the number tracks the registry-dispatch path
// end to end, so replacing the old per-arch switch with Lookup/Evaluate
// must not move it (dispatch is two map reads per architecture against
// seconds of search).
func BenchmarkCompare(b *testing.B) {
	m := CANDLE(Sec6)
	opts := Options{Servers: 8, Degree: 2, LinkBandwidth: 100e9,
		Rounds: 1, MCMCIters: 5, Seed: 3}
	archs := Architectures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Compare(m, opts, archs...)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(archs) {
			b.Fatalf("results = %d, want %d", len(res), len(archs))
		}
	}
}

// BenchmarkOptimizeEndToEnd times the public-API co-optimization itself.
func BenchmarkOptimizeEndToEnd(b *testing.B) {
	m := DLRM(Sec6)
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(m, Options{Servers: 12, Degree: 4,
			LinkBandwidth: 25e9, Rounds: 1, MCMCIters: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments (paper §5.5 future work, §7 discussion, App. C).

func BenchmarkExtTotientPermsFatTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ExtTotientPermsFatTree(quick))
	}
}

func BenchmarkExtMoETimeVaryingTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ExtMoETimeVaryingTraffic(quick))
	}
}

func BenchmarkExtDynamicArrivals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ExtDynamicArrivals(quick))
	}
}

func BenchmarkExtRoutingTE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ExtRoutingTE(quick))
	}
}
