package topoopt

import (
	"os"
	"os/exec"
	"testing"
)

// TestExamplesBuild compiles every example program so public-API changes
// cannot silently break them (a plain `go test` does not build main
// packages' dependents).
func TestExamplesBuild(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 4 {
		t.Fatalf("expected at least 4 example programs, found %v", dirs)
	}
	cmd := exec.Command("go", "build", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/... failed: %v\n%s", err, out)
	}
}
