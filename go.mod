module topoopt

go 1.22
