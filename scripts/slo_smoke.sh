#!/usr/bin/env bash
# slo_smoke.sh — single-daemon sustained-load SLO gate.
#
# Builds topooptd + planload, starts one daemon, and offers an open-loop
# Poisson load (arrivals never wait for responses, so a saturated server
# faces the full offered rate). The run is gated on a p99 target and a
# zero-error budget; a failed gate exits nonzero, which is what
# `make slo-smoke` and the CI job key on. The -bench lines at the end
# are the ledger-ingestible form of the same quantiles.
#
# Tunables (env): SLO_PORT, SLO_RATE, SLO_DURATION, SLO_P99.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/topooptd" ./cmd/topooptd
go build -o "$BIN/planload" ./cmd/planload

PORT=${SLO_PORT:-7471}
"$BIN/topooptd" -addr "127.0.0.1:$PORT" -workers 4 -queue 64 &
DPID=$!

# Wait for the listener (bash-native probe, no curl dependency).
for _ in $(seq 100); do
  (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null && break
  sleep 0.1
done

"$BIN/planload" -addr "http://127.0.0.1:$PORT" \
  -open-loop -rate "${SLO_RATE:-150}" -duration "${SLO_DURATION:-3s}" -bucket 500ms \
  -model bert -section 6 -servers 8 -degree 2 -mcmc 5 -seeds 4 -retries 2 \
  -slo-p99 "${SLO_P99:-500ms}" -max-errors 0 -bench

echo "slo-smoke: PASS"
