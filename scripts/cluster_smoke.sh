#!/usr/bin/env bash
# cluster_smoke.sh — three-daemon sharded cluster smoke.
#
# Builds topooptd + planload, starts three daemons joined by a static
# consistent-hash peer ring (-peers/-self), and asserts the two cluster
# invariants end to end on real processes:
#
#   1. byte-identical plans regardless of entry peer
#      (planload -verify-identical POSTs one identical request to every
#      daemon; non-owners proxy to the owner, so the payloads must match
#      byte for byte), and
#   2. a sustained open-loop load round-robined across all three members
#      completes with ZERO errors while meeting the p99 gate — requests
#      landing on non-owners pay one forwarding hop and still clear it.
#
# A failed check exits nonzero, which is what `make cluster-smoke` and
# the CI job key on.
#
# Tunables (env): CLUSTER_BASE_PORT, SLO_RATE, SLO_DURATION, SLO_P99.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
PIDS=()
cleanup() {
  [ "${#PIDS[@]}" -gt 0 ] && kill "${PIDS[@]}" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/topooptd" ./cmd/topooptd
go build -o "$BIN/planload" ./cmd/planload

BASE=${CLUSTER_BASE_PORT:-7481}
PEERS="http://127.0.0.1:$BASE,http://127.0.0.1:$((BASE + 1)),http://127.0.0.1:$((BASE + 2))"

for i in 0 1 2; do
  port=$((BASE + i))
  "$BIN/topooptd" -addr "127.0.0.1:$port" -workers 2 -queue 64 \
    -peers "$PEERS" -self "http://127.0.0.1:$port" -probe-interval 500ms &
  PIDS+=($!)
done

for i in 0 1 2; do
  port=$((BASE + i))
  for _ in $(seq 100); do
    (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null && break
    sleep 0.1
  done
done

# Invariant 1: same request, every entry peer, byte-identical plans.
"$BIN/planload" -addr "$PEERS" -verify-identical \
  -model bert -section 6 -servers 8 -degree 2 -mcmc 5

# Invariant 2: sustained open-loop load across all members, zero errors.
"$BIN/planload" -addr "$PEERS" \
  -open-loop -rate "${SLO_RATE:-120}" -duration "${SLO_DURATION:-3s}" -bucket 500ms \
  -model bert -section 6 -servers 8 -degree 2 -mcmc 5 -seeds 6 -retries 2 \
  -slo-p99 "${SLO_P99:-500ms}" -max-errors 0

echo "cluster-smoke: PASS"
