# Build/verify/benchmark entry points. `make tier1` is the recipe CI (and
# the ROADMAP's tier-1 gate) runs; `make bench` records the netsim
# microbenchmarks into BENCH_netsim.json, `make serve-bench` the
# planning-service benchmarks into BENCH_serve.json and
# `make flexnet-bench` the parallel MCMC search benchmarks into
# BENCH_flexnet.json; the matching *benchcheck targets fail when the
# current tree regresses against the recorded numbers. `make ci` mirrors
# exactly what .github/workflows/ci.yml runs, so the pipeline is
# reproducible locally without act.

GO ?= go

# Benchtime for the *bench/*benchcheck targets; `make ci` shrinks it for
# the smoke pass and flips benchdiff into warn-only mode, since short
# runs on noisy shared runners should flag, not hard-fail.
BENCHTIME ?= 1s
BENCHDIFF_FLAGS ?=

# bench/benchcheck pipe `go test` into benchdiff; without pipefail a
# crashed benchmark run with partial output would still exit 0.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# `build` compiles ./... which includes examples/; TestExamplesBuild in
# the test step additionally pins them as an explicit guarantee.
.PHONY: tier1 fmt vet build test race bench benchcheck serve-bench \
	serve-benchcheck flexnet-bench flexnet-benchcheck fleet-bench \
	fleet-benchcheck sweep-bench warm-bench slo-bench bench-smoke bench-history profile-serve \
	profile-fleet profile-smoke chaos cover lint slo-smoke cluster-smoke ci

tier1: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_netsim.json

benchcheck:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_netsim.json $(BENCHDIFF_FLAGS)

serve-bench:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_serve.json

serve-benchcheck:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_serve.json $(BENCHDIFF_FLAGS)

# The flexnet suite records the search engine AND the registry-dispatched
# Compare sweep (BenchmarkCompare in the root package): the comparison
# path is two map lookups per architecture on top of the searches, so the
# recorded number is the guard that registry dispatch stays free.
flexnet-bench:
	$(GO) test ./internal/flexnet . -run '^$$' -bench 'BenchmarkMCMCSearch|^BenchmarkWarmReplan|^BenchmarkCompare$$' -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_flexnet.json

flexnet-benchcheck:
	$(GO) test ./internal/flexnet . -run '^$$' -bench 'BenchmarkMCMCSearch|^BenchmarkWarmReplan|^BenchmarkCompare$$' -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_flexnet.json $(BENCHDIFF_FLAGS)

# The fleet suite records the cluster-scale simulator: two full scenario
# lifetimes (steady-state with per-shard co-optimization, failure-storm
# with warm-started replans), the raw no-training event engine over 500
# jobs, and the evaluation-cache hit path every long trace lives on.
fleet-bench:
	$(GO) test ./internal/fleet -run '^$$' -bench BenchmarkFleet -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_cluster.json

fleet-benchcheck:
	$(GO) test ./internal/fleet -run '^$$' -bench BenchmarkFleet -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_cluster.json $(BENCHDIFF_FLAGS)

# `make sweep-bench` is the PR-time recorder for the fleet suite now that
# it includes the Monte Carlo sweep service (BenchmarkFleetSweep) and the
# pooled steady path (BenchmarkFleetSteady at 0 allocs/op, which
# fleet-benchcheck pins exactly — benchdiff treats a 0-alloc baseline as
# an exact gate, so a single leaked allocation fails the check). Runs the
# suite once, records it into BENCH_cluster.json, then copies that
# recording into the BENCH_HISTORY.json ledger under HISTORY_LABEL.
sweep-bench: fleet-bench
	$(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite fleet \
		-import BENCH_cluster.json -label '$(HISTORY_LABEL)'

# `make warm-bench` is the PR-time recorder for the flexnet suite now
# that it includes the incremental-replanning benchmark
# (BenchmarkWarmReplan: warm-started near-miss search vs cold, same
# fabric family — the recorded gap is the ≥2x warm speedup the issue
# pins). Runs the suite once, records it into BENCH_flexnet.json, then
# copies that recording into the BENCH_HISTORY.json ledger under
# HISTORY_LABEL.
warm-bench: flexnet-bench
	$(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite flexnet \
		-import BENCH_flexnet.json -label '$(HISTORY_LABEL)'

# `make slo-bench` is the PR-time recorder for the serve suite now that
# it includes the open-loop SLO benchmark (BenchmarkServeOpenLoopSLO:
# Poisson arrivals at a fixed offered rate against an in-process daemon,
# ns/op = the run's overall p99 — the serving-tail trajectory the SLO
# harness gates on). Runs the suite once, records it into
# BENCH_serve.json, then copies that recording into the
# BENCH_HISTORY.json ledger under HISTORY_LABEL.
slo-bench: serve-bench
	$(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite serve \
		-import BENCH_serve.json -label '$(HISTORY_LABEL)'

# Sustained-load SLO gate against one real daemon: open-loop Poisson
# arrivals (fire-and-forget, so a saturated server faces the full
# offered rate), time-bucketed p50/p99/p999, pass/fail on a p99 target
# and a zero-error budget. Exits nonzero on a failed gate.
slo-smoke:
	bash scripts/slo_smoke.sh

# Three real daemons joined by the consistent-hash peer ring: asserts
# byte-identical plans regardless of entry peer (planload
# -verify-identical) and a zero-error open-loop run round-robined across
# all members under the same SLO gate.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# Short-benchtime pass over every recorded suite. Warn-only: CI runners
# are noisy and 0.2s samples are for catching order-of-magnitude
# regressions, not 1.3x ones. The warm-quality gate runs first and is
# NOT warn-only: "warm at equal budget never loses to cold" is a
# correctness property of the warm-start seam, not a timing number, so
# it must hard-fail even on noisy runners.
bench-smoke:
	$(GO) test ./internal/flexnet -run TestMCMCWarmPatienceEqualBudgetQuality
	$(MAKE) BENCHTIME=0.2s BENCHDIFF_FLAGS=-warn-only benchcheck serve-benchcheck flexnet-benchcheck fleet-benchcheck

# Appends one dated entry per suite to the BENCH_HISTORY.json trajectory
# ledger (append-only, unlike the BENCH_*.json files whose "current"
# section is overwritten each record), then prints the first→latest trend
# per benchmark. Run at PR time with HISTORY_LABEL=prN to keep the
# performance story readable across PRs without git archaeology.
HISTORY_LABEL ?=
bench-history:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite netsim -label '$(HISTORY_LABEL)'
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite serve -label '$(HISTORY_LABEL)'
	$(GO) test ./internal/flexnet . -run '^$$' -bench 'BenchmarkMCMCSearch|^BenchmarkWarmReplan|^BenchmarkCompare$$' -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite flexnet -label '$(HISTORY_LABEL)'
	$(GO) test ./internal/fleet -run '^$$' -bench BenchmarkFleet -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -suite fleet -label '$(HISTORY_LABEL)'
	$(GO) run ./cmd/benchdiff -history BENCH_HISTORY.json -trend

# Contention + CPU profiles over the benchmark suites that exercise the
# serving hot path (cache hits, coalescing, lock handoffs) and the
# cluster simulator. Emits standard pprof files plus the test binary for
# symbolization; inspect with e.g.
#	go tool pprof profiles/serve.test profiles/serve_mutex.out
# Every profile must come out non-empty — an empty mutex/block profile
# means the runtime rates were never wired, which is exactly the
# regression this target exists to catch.
PROFILE_DIR ?= profiles

profile-serve:
	mkdir -p $(PROFILE_DIR)
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=$(BENCHTIME) \
		-o $(PROFILE_DIR)/serve.test -outputdir $(abspath $(PROFILE_DIR)) \
		-cpuprofile serve_cpu.out \
		-mutexprofile serve_mutex.out -mutexprofilefraction 5 \
		-blockprofile serve_block.out -blockprofilerate 10000
	@for f in serve_cpu.out serve_mutex.out serve_block.out; do \
		[ -s $(PROFILE_DIR)/$$f ] || { echo "profile-serve: $(PROFILE_DIR)/$$f missing or empty"; exit 1; }; \
	done
	@echo "profile-serve: wrote $(PROFILE_DIR)/serve_{cpu,mutex,block}.out"

profile-fleet:
	mkdir -p $(PROFILE_DIR)
	$(GO) test ./internal/fleet -run '^$$' -bench BenchmarkFleet -benchmem -benchtime=$(BENCHTIME) \
		-o $(PROFILE_DIR)/fleet.test -outputdir $(abspath $(PROFILE_DIR)) \
		-cpuprofile fleet_cpu.out \
		-mutexprofile fleet_mutex.out -mutexprofilefraction 5 \
		-blockprofile fleet_block.out -blockprofilerate 10000
	@for f in fleet_cpu.out fleet_mutex.out fleet_block.out; do \
		[ -s $(PROFILE_DIR)/$$f ] || { echo "profile-fleet: $(PROFILE_DIR)/$$f missing or empty"; exit 1; }; \
	done
	@echo "profile-fleet: wrote $(PROFILE_DIR)/fleet_{cpu,mutex,block}.out"

# Short-benchtime pass over both profiled suites: proves the profiling
# plumbing end to end (files exist and are non-empty) without the cost of
# a full benchtime run. CI runs this once per pipeline.
profile-smoke:
	$(MAKE) BENCHTIME=0.2s profile-serve profile-fleet

# Chaos suite: the crash/restart/drain/overload tests for the durable
# serving layer (internal/serve chaos + robustness files, driven through
# the seeded fault-injection middleware) and the WAL crash-consistency
# tests, all under the race detector. Deterministic — faults come from
# seeded rngs, not wall-clock randomness — so a failure here reproduces
# locally with the same command.
chaos:
	$(GO) test -race -timeout 300s \
		-run 'Chaos|Crash|Restart|Drain|Overload|Fault|Shed|QueueFull|Deadline|Torn|Kill|WarmBoot|Backoff|Retr|Broken|Closed' \
		./internal/serve ./internal/wal ./internal/clientretry -v

# Per-package coverage floors for the packages where a silent coverage
# slide is most dangerous: the architecture registry (every backend must
# stay exercised or a broken fabric ships silently), the cost model
# (unpriced components corrupt every Figure 10 reproduction), and the
# cluster/fleet simulators (an untested scheduling or failure path breaks
# reproducibility silently — results stay plausible but wrong). Floors
# sit below current coverage with headroom for refactors; raise them as
# the packages grow. internal/telemetry is floored high because its whole
# job is observability — an untested trace or exposition path means the
# operator's view of the daemon silently lies. internal/shard is floored
# high because ring ownership is a pure deterministic function the whole
# sharded cluster agrees through — an untested arc is a silent
# split-brain — and internal/slo because the SLO gate's own arithmetic
# must not be the thing that lies about a regression.
COVER_FLOORS := internal/arch:80 internal/cost:90 internal/cluster:80 internal/fleet:80 internal/wal:85 internal/telemetry:85 internal/shard:90 internal/slo:85

cover:
	@set -e; for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		out=$$($(GO) test -cover ./$$pkg 2>&1) \
			|| { echo "$$out"; echo "cover: tests failed in $$pkg"; exit 1; }; \
		pct=$$(echo "$$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$pkg"; exit 1; fi; \
		echo "$$pkg: $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' \
			|| { echo "cover: $$pkg coverage $$pct% below floor $$floor%"; exit 1; }; \
	done

# staticcheck and govulncheck run when installed (CI installs them; dev
# machines may not have them, and the tier-1 gate must stay hermetic).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (CI runs it)"; \
	fi

# The exact job list of .github/workflows/ci.yml, runnable locally.
ci: tier1 race chaos cover lint bench-smoke profile-smoke slo-smoke cluster-smoke
