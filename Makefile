# Build/verify/benchmark entry points. `make tier1` is the recipe CI (and
# the ROADMAP's tier-1 gate) runs; `make bench` records the netsim
# microbenchmarks into BENCH_netsim.json, `make serve-bench` the
# planning-service benchmarks into BENCH_serve.json and
# `make flexnet-bench` the parallel MCMC search benchmarks into
# BENCH_flexnet.json; the matching *benchcheck targets fail when the
# current tree regresses against the recorded numbers. `make ci` mirrors
# exactly what .github/workflows/ci.yml runs, so the pipeline is
# reproducible locally without act.

GO ?= go

# Benchtime for the *bench/*benchcheck targets; `make ci` shrinks it for
# the smoke pass and flips benchdiff into warn-only mode, since short
# runs on noisy shared runners should flag, not hard-fail.
BENCHTIME ?= 1s
BENCHDIFF_FLAGS ?=

# bench/benchcheck pipe `go test` into benchdiff; without pipefail a
# crashed benchmark run with partial output would still exit 0.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# `build` compiles ./... which includes examples/; TestExamplesBuild in
# the test step additionally pins them as an explicit guarantee.
.PHONY: tier1 fmt vet build test race bench benchcheck serve-bench \
	serve-benchcheck flexnet-bench flexnet-benchcheck bench-smoke lint ci

tier1: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_netsim.json

benchcheck:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_netsim.json $(BENCHDIFF_FLAGS)

serve-bench:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_serve.json

serve-benchcheck:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_serve.json $(BENCHDIFF_FLAGS)

flexnet-bench:
	$(GO) test ./internal/flexnet -run '^$$' -bench BenchmarkMCMCSearch -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -out BENCH_flexnet.json

flexnet-benchcheck:
	$(GO) test ./internal/flexnet -run '^$$' -bench BenchmarkMCMCSearch -benchmem -benchtime=$(BENCHTIME) \
		| $(GO) run ./cmd/benchdiff -check BENCH_flexnet.json $(BENCHDIFF_FLAGS)

# Short-benchtime pass over every recorded suite. Warn-only: CI runners
# are noisy and 0.2s samples are for catching order-of-magnitude
# regressions, not 1.3x ones.
bench-smoke:
	$(MAKE) BENCHTIME=0.2s BENCHDIFF_FLAGS=-warn-only benchcheck serve-benchcheck flexnet-benchcheck

# staticcheck and govulncheck run when installed (CI installs them; dev
# machines may not have them, and the tier-1 gate must stay hermetic).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (CI runs it)"; \
	fi

# The exact job list of .github/workflows/ci.yml, runnable locally.
ci: tier1 race lint bench-smoke
