# Build/verify/benchmark entry points. `make tier1` is the recipe CI (and
# the ROADMAP's tier-1 gate) runs; `make bench` records the netsim
# microbenchmarks into BENCH_netsim.json; `make benchcheck` fails when the
# current tree regresses against the recorded numbers.

GO ?= go

# bench/benchcheck pipe `go test` into benchdiff; without pipefail a
# crashed benchmark run with partial output would still exit 0.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: tier1 fmt vet build test bench benchcheck

tier1: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=1s \
		| $(GO) run ./cmd/benchdiff -out BENCH_netsim.json

benchcheck:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=1s \
		| $(GO) run ./cmd/benchdiff -check BENCH_netsim.json
