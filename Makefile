# Build/verify/benchmark entry points. `make tier1` is the recipe CI (and
# the ROADMAP's tier-1 gate) runs; `make bench` records the netsim
# microbenchmarks into BENCH_netsim.json and `make serve-bench` the
# planning-service benchmarks into BENCH_serve.json; the matching
# *benchcheck targets fail when the current tree regresses against the
# recorded numbers.

GO ?= go

# bench/benchcheck pipe `go test` into benchdiff; without pipefail a
# crashed benchmark run with partial output would still exit 0.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# `build` compiles ./... which includes examples/; TestExamplesBuild in
# the test step additionally pins them as an explicit guarantee.
.PHONY: tier1 fmt vet build test bench benchcheck serve-bench serve-benchcheck

tier1: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=1s \
		| $(GO) run ./cmd/benchdiff -out BENCH_netsim.json

benchcheck:
	$(GO) test ./internal/netsim -run '^$$' -bench BenchmarkNetsim -benchmem -benchtime=1s \
		| $(GO) run ./cmd/benchdiff -check BENCH_netsim.json

serve-bench:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=1s \
		| $(GO) run ./cmd/benchdiff -out BENCH_serve.json

serve-benchcheck:
	$(GO) test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem -benchtime=1s \
		| $(GO) run ./cmd/benchdiff -check BENCH_serve.json
