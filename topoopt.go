// Package topoopt is the public API of the TopoOpt library: co-optimizing
// network topology and parallelization strategy for distributed DNN
// training jobs (Wang et al., NSDI 2023).
//
// The central entry point is Optimize, which runs the alternating
// optimization of the paper's §4 — FlexFlow-style MCMC strategy search in
// the Comp.×Comm. plane alternating with the TOPOLOGY FINDER algorithm in
// the Comm.×Topo. plane — and returns a deployable Plan: the
// direct-connect topology (patch-panel circuits), the AllReduce ring
// permutations (TotientPerms), routing rules (coin-change + k-shortest
// path), the parallelization strategy, and the predicted iteration time
// from a flow-level simulation.
//
//	m := topoopt.DLRM(topoopt.Sec53)
//	plan, err := topoopt.Optimize(m, topoopt.Options{
//	    Servers: 128, Degree: 4, LinkBandwidth: 100e9,
//	})
//
// Comparison baselines (Ideal Switch, cost-equivalent Fat-tree, 2:1
// oversubscribed Fat-tree, Expander, SiP-ML-style reconfigurable fabrics)
// and the §5.2 cost model are exposed through Compare and Cost.
package topoopt

import (
	"context"
	"fmt"
	"strings"

	"topoopt/internal/arch"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

// Model is a DNN training workload (a coarse operator graph).
type Model = model.Model

// Strategy is a parallelization strategy + device placement.
type Strategy = parallel.Strategy

// Demand is a job's per-iteration traffic demand: mutable AllReduce
// groups plus the immutable MP transfer matrix.
type Demand = traffic.Demand

// GPU is the roofline compute model used for per-layer compute times.
type GPU = model.GPU

// A100 is the default accelerator model.
var A100 = model.A100

// Section selects a paper experiment configuration for workload presets.
type Section = model.Section

// Preset sections from List 1 (Appendix D).
const (
	Sec53 = model.Sec53 // §5.3 dedicated-cluster simulations
	Sec56 = model.Sec56 // §5.6 shared-cluster simulations
	Sec6  = model.Sec6  // §6 12-node testbed
)

// Workload presets (List 1).
func DLRM(s Section) *Model     { return model.DLRMPreset(s) }
func CANDLE(s Section) *Model   { return model.CANDLEPreset(s) }
func BERT(s Section) *Model     { return model.BERTPreset(s) }
func NCF() *Model               { return model.NCFPreset() }
func ResNet50(s Section) *Model { return model.ResNetPreset(s) }
func VGG16(s Section) *Model    { return model.VGGPreset(s) }

// Options configures Optimize. The JSON tags define the canonical wire
// format used by the topooptd planning service (see ModelSpec).
type Options struct {
	// Servers is the number of dedicated training servers (n).
	Servers int `json:"servers"`
	// Degree is the number of optical interfaces per server (d).
	Degree int `json:"degree"`
	// LinkBandwidth is per-interface bandwidth in bits/s (B).
	LinkBandwidth float64 `json:"link_bandwidth"`
	// BatchPerGPU overrides the model's default when > 0.
	BatchPerGPU int `json:"batch_per_gpu,omitempty"`
	// Rounds is the alternating-optimization hyper-parameter k
	// (default 3).
	Rounds int `json:"rounds,omitempty"`
	// MCMCIters is the strategy-search budget per round. When ≤ 0, both
	// Optimize and Compare inherit the single default applied inside
	// flexnet's MCMC search (flexnet.DefaultMCMCIters, 200).
	MCMCIters int `json:"mcmc_iters,omitempty"`
	// Seed makes the search deterministic.
	Seed int64 `json:"seed,omitempty"`
	// PrimeOnly restricts TotientPerms to prime generators (recommended
	// beyond a few hundred servers).
	PrimeOnly bool `json:"prime_only,omitempty"`
	// GPU overrides the accelerator model (default A100).
	GPU GPU `json:"gpu"`
	// Parallelism is the number of parallel MCMC chains (K) per strategy
	// search (default 1, max flexnet.MaxParallelism). Semantic: the plan
	// depends deterministically on (Seed, Parallelism) — the same seed
	// and K produce a byte-identical plan for any worker count or
	// GOMAXPROCS setting — so K is part of the wire format and the
	// service fingerprint.
	Parallelism int `json:"parallelism,omitempty"`
	// SearchWorkers bounds the goroutines executing those chains
	// (0 = min(Parallelism, GOMAXPROCS)). A pure execution hint that
	// never changes results, so it is excluded from the wire format and
	// the fingerprint; the planning service sets it per request from its
	// global search-thread budget.
	SearchWorkers int `json:"-"`
	// Progress, when non-nil, receives per-epoch strategy-search progress
	// (proposals done, round budget) from the MCMC engine's epoch
	// barriers; done restarts at each alternating-optimization round.
	// Purely observational — the plan is identical with or without it —
	// so, like SearchWorkers, it is server-side instrumentation excluded
	// from the wire format and the fingerprint.
	Progress func(done, total int) `json:"-"`
	// WarmStart seeds every strategy-search round with extra starting
	// candidates (flexnet's MCMCConfig.Warm). The planning service fills
	// it from its plan-similarity index when a near-miss request has a
	// cached neighbor. Server-side: excluded from the wire format and the
	// fingerprint — a warm start changes how fast the search converges,
	// not what request it answers.
	WarmStart []Strategy `json:"-"`
	// Patience, when > 0, lets each search round stop after that many
	// consecutive improvement-free epoch barriers (flexnet's
	// MCMCConfig.Patience). Server-side, set together with WarmStart: a
	// search seeded near an optimum converges within a few epochs and
	// skips the rest of its budget.
	Patience int `json:"-"`
	// OnWarmStart, when non-nil, reports whether a WarmStart candidate
	// won the search's starting point (telemetry). Server-side.
	OnWarmStart func(adopted bool) `json:"-"`
	// OnBest, when non-nil, streams the search's running best strategy
	// and estimated cost from every round's epoch barriers — the anytime
	// seam the async jobs API uses to publish partial plans. Costs can
	// jump between rounds (each round estimates on its own candidate
	// fabric); monotonicity is enforced by the consumer. Server-side.
	OnBest func(s Strategy, cost float64) `json:"-"`
}

// Validate checks that the options describe a feasible deployment. It is
// exported so services decoding Options off the wire (internal/serve) can
// reject bad requests up front with structured errors.
func (o Options) Validate() error {
	if o.Servers < 2 {
		return fmt.Errorf("topoopt: Servers must be >= 2, got %d", o.Servers)
	}
	if o.Degree < 1 {
		return fmt.Errorf("topoopt: Degree must be >= 1, got %d", o.Degree)
	}
	if o.LinkBandwidth <= 0 {
		return fmt.Errorf("topoopt: LinkBandwidth must be positive, got %g", o.LinkBandwidth)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("topoopt: Parallelism must be >= 0, got %d", o.Parallelism)
	}
	if o.Parallelism > flexnet.MaxParallelism {
		return fmt.Errorf("topoopt: Parallelism must be <= %d, got %d", flexnet.MaxParallelism, o.Parallelism)
	}
	return nil
}

// Canonical returns o with defaulted fields made explicit — the same
// defaults the optimization itself applies (Rounds 3, MCMCIters 200, GPU
// A100, Parallelism 1) — so an omitted field and its explicit default
// describe the same computation. The serving layer fingerprints canonical
// options, letting both spellings share one cache entry. BatchPerGPU
// stays as-is: its default is per-model and only known after preset
// resolution. SearchWorkers is untouched: it never affects results and is
// excluded from the wire format anyway.
func (o Options) Canonical() Options {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.MCMCIters <= 0 {
		o.MCMCIters = flexnet.DefaultMCMCIters
	}
	if o.GPU.PeakFLOPS == 0 {
		o.GPU = A100
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// Circuit is one directed optical circuit of the plan: the TX fiber of
// From's interface patched to an RX fiber of To.
type Circuit struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// RingSpec describes the AllReduce rings selected for one group.
type RingSpec struct {
	Members []int `json:"members"`
	// Ps are the "+p" generation rules (co-prime with the group size).
	Ps []int `json:"ps"`
}

// Plan is the deployable output of Optimize.
type Plan struct {
	// Strategy is the chosen parallelization strategy.
	Strategy Strategy
	// Circuits lists the patch-panel connections to program.
	Circuits []Circuit
	// Rings are the TotientPerms AllReduce permutations per group, to be
	// installed into the collective library (the paper's NCCL patch).
	Rings []RingSpec
	// Routes maps src -> dst -> node path for host-based forwarding.
	Routes map[int]map[int][]int
	// DegreeAllReduce / DegreeMP is the interface split of Algorithm 1.
	DegreeAllReduce int
	DegreeMP        int
	// PredictedIteration is the flow-level simulated iteration time
	// breakdown.
	PredictedIteration IterationBreakdown
	// Demand is the traffic demand of the chosen strategy.
	Demand Demand
}

// IterationBreakdown splits an iteration into its phases (§5.4's no-overlap
// accounting).
type IterationBreakdown struct {
	MPSeconds        float64 `json:"mp_seconds"`
	ComputeSeconds   float64 `json:"compute_seconds"`
	AllReduceSeconds float64 `json:"allreduce_seconds"`
	BandwidthTax     float64 `json:"bandwidth_tax"`
}

// Total returns the full iteration time in seconds.
func (b IterationBreakdown) Total() float64 {
	return b.MPSeconds + b.ComputeSeconds + b.AllReduceSeconds
}

// Optimize co-optimizes topology and parallelization strategy for the
// model under the given options (§4's alternating optimization).
func Optimize(m *Model, o Options) (*Plan, error) {
	return OptimizeContext(context.Background(), m, o)
}

// OptimizeContext is Optimize with cancellation: ctx is polled between
// MCMC iterations, between alternating-optimization rounds and before the
// final flow-level simulation, so a cancelled or expired context aborts
// the search promptly with ctx.Err(). Cancellation never interrupts a
// simulation in flight, leaving reused simulators in a consistent state.
func OptimizeContext(ctx context.Context, m *Model, o Options) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res, err := flexnet.CoOptimizeContext(ctx, m, flexnet.CoOptConfig{
		N: o.Servers, Degree: o.Degree, LinkBW: o.LinkBandwidth,
		Batch: o.BatchPerGPU, Rounds: o.Rounds, MCMCIters: o.MCMCIters,
		Seed: o.Seed, PrimeOnly: o.PrimeOnly, GPU: o.GPU,
		Parallelism: o.Parallelism, SearchWorkers: o.SearchWorkers,
		Progress: o.Progress, Warm: o.WarmStart, Patience: o.Patience,
		OnWarmStart: o.OnWarmStart, OnBest: o.OnBest,
	})
	if err != nil {
		return nil, err
	}
	return planFromResult(res, o.Servers), nil
}

func planFromResult(res *flexnet.CoOptResult, n int) *Plan {
	p := &Plan{
		Strategy:        res.Strategy,
		DegreeAllReduce: res.Topo.DegreeAllReduce,
		DegreeMP:        res.Topo.DegreeMP,
		Demand:          res.Demand,
		PredictedIteration: IterationBreakdown{
			MPSeconds:        res.IterTime.MPTime,
			ComputeSeconds:   res.IterTime.ComputeTime,
			AllReduceSeconds: res.IterTime.AllReduceTime,
			BandwidthTax:     res.IterTime.BandwidthTax,
		},
	}
	for _, e := range res.Topo.Network.G.Edges() {
		p.Circuits = append(p.Circuits, Circuit{From: e.From, To: e.To})
	}
	for _, gr := range res.Topo.Rings {
		p.Rings = append(p.Rings, RingSpec{
			Members: append([]int(nil), gr.Members...),
			Ps:      append([]int(nil), gr.Ps...),
		})
	}
	p.Routes = make(map[int]map[int][]int)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if nodes := res.Topo.Routes.Get(s, d); nodes != nil {
				if p.Routes[s] == nil {
					p.Routes[s] = make(map[int][]int)
				}
				p.Routes[s][d] = append([]int(nil), nodes...)
			}
		}
	}
	return p
}

// Architecture identifies a comparison fabric (§5.1). Every architecture
// is a self-describing backend in the internal/arch registry; the names
// below are the registered identities of the built-in family.
type Architecture string

const (
	ArchTopoOpt  Architecture = "TopoOpt"
	ArchIdeal    Architecture = "IdealSwitch"
	ArchFatTree  Architecture = "Fat-tree"
	ArchOversub  Architecture = "OversubFatTree"
	ArchExpander Architecture = "Expander"
	ArchSiPML    Architecture = "SiP-ML"
	ArchOCS      Architecture = "OCS-reconfig"
	ArchTorus    Architecture = "Torus"
	ArchSiPRing  Architecture = "SiP-Ring"
)

// Architectures lists every registered fabric backend in stable display
// order: the §5.1 comparison set in the paper's order, then later
// additions. The list is derived from the registry, so it can never
// drift from what Compare and Cost actually accept.
func Architectures() []Architecture {
	names := arch.Names()
	out := make([]Architecture, len(names))
	for i, n := range names {
		out[i] = Architecture(n)
	}
	return out
}

// unknownArchitecture is the shared "not registered" error: it lists the
// registered names so callers (and HTTP clients) see the menu instead of
// guessing.
func unknownArchitecture(a Architecture) error {
	return fmt.Errorf("topoopt: unknown architecture %q (registered: %s)",
		a, strings.Join(arch.Names(), ", "))
}

// archOptions converts public Options to the registry's option set.
func archOptions(o Options) arch.Options {
	return arch.Options{
		Servers: o.Servers, Degree: o.Degree, LinkBW: o.LinkBandwidth,
		Batch: o.BatchPerGPU, Rounds: o.Rounds, MCMCIters: o.MCMCIters,
		Seed: o.Seed, PrimeOnly: o.PrimeOnly, GPU: o.GPU,
		Parallelism: o.Parallelism, SearchWorkers: o.SearchWorkers,
	}
}

// CompareResult is the iteration time of one architecture for one model.
type CompareResult struct {
	Arch      Architecture       `json:"arch"`
	Iteration IterationBreakdown `json:"iteration"`
	// CostUSD is the §5.2 interconnect cost.
	CostUSD float64 `json:"cost_usd"`
}

// Compare evaluates a model across architectures at equal nominal degree
// and bandwidth: TopoOpt and Expander get d interfaces of B; Ideal Switch
// gets a non-blocking d×B per server; Fat-tree gets the cost-equivalent
// reduced bandwidth (§5.1); Oversub gets d×B with a halved fabric;
// SiP-ML and OCS-reconfig run the reconfigurable heuristic.
func Compare(m *Model, o Options, archs ...Architecture) ([]CompareResult, error) {
	return CompareContext(context.Background(), m, o, archs...)
}

// CompareContext is Compare with cancellation: ctx is polled between
// architectures and between MCMC iterations inside each baseline search.
func CompareContext(ctx context.Context, m *Model, o Options, archs ...Architecture) ([]CompareResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(archs) == 0 {
		archs = Architectures()
	}
	ao := archOptions(o)
	var out []CompareResult
	for _, a := range archs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, ok := arch.Lookup(string(a))
		if !ok {
			return nil, unknownArchitecture(a)
		}
		cr := CompareResult{Arch: a}
		c, err := b.Cost(ao)
		if err != nil {
			// A zero CostUSD would be indistinguishable from "free":
			// surface pricing failures instead of swallowing them.
			return nil, fmt.Errorf("topoopt: pricing %s: %w", a, err)
		}
		cr.CostUSD = c
		it, err := arch.Evaluate(ctx, b, m, ao)
		if err != nil {
			return nil, err
		}
		cr.Iteration = IterationBreakdown{
			MPSeconds: it.MPSeconds, ComputeSeconds: it.ComputeSeconds,
			AllReduceSeconds: it.AllReduceSeconds, BandwidthTax: it.BandwidthTax,
		}
		out = append(out, cr)
	}
	return out, nil
}

// Cost returns the §5.2 interconnect cost in USD of an architecture at
// the given scale, dispatching to the architecture's registered backend.
func Cost(a Architecture, servers, degree int, linkBandwidth float64) (float64, error) {
	b, ok := arch.Lookup(string(a))
	if !ok {
		return 0, unknownArchitecture(a)
	}
	return b.Cost(arch.Options{Servers: servers, Degree: degree, LinkBW: linkBandwidth})
}
