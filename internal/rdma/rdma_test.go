package rdma

import "testing"

// figure29 wires four servers A(0)-B(1)-C(2)-D(3) in a chain, the
// Appendix I walk-through scenario.
func figure29(t *testing.T) *Overlay {
	t.Helper()
	o, err := NewOverlay(4, WiresFromDuplexPairs([][2]int{{0, 1}, {1, 2}, {2, 3}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Install(0, 3, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := o.Install(0, 1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestWalkFigure29(t *testing.T) {
	o := figure29(t)
	hops, err := o.Walk(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(hops))
	}
	// First two hops target if2 MACs (kernel forwarding at B and C), the
	// last targets D's if1 so the RDMA engine consumes it.
	if !hops[0].Kernel || !hops[1].Kernel {
		t.Error("intermediate hops must hit the kernel partition")
	}
	if hops[2].Kernel {
		t.Error("final hop must hit the RDMA partition")
	}
	// MAC partition encoding: if2 ends in :02, if1 in :01.
	if hops[0].DstMAC[len(hops[0].DstMAC)-2:] != "02" {
		t.Errorf("hop 0 MAC %s should be an if2 MAC", hops[0].DstMAC)
	}
	if hops[2].DstMAC[len(hops[2].DstMAC)-2:] != "01" {
		t.Errorf("hop 2 MAC %s should be an if1 MAC", hops[2].DstMAC)
	}
}

func TestDirectConnectionNoKernel(t *testing.T) {
	o := figure29(t)
	hops, err := o.Walk(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Kernel {
		t.Errorf("direct hop should be pure RDMA: %+v", hops)
	}
	k, _ := o.ForwardedHops(0, 1)
	if k != 0 {
		t.Errorf("forwarded hops = %d, want 0", k)
	}
}

func TestForwardedHopsAndPenalty(t *testing.T) {
	o := figure29(t)
	k, err := o.ForwardedHops(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("forwarded hops = %d, want 2", k)
	}
	bw, err := o.EffectiveBandwidth(0, 3, 25e9, DefaultPenalty)
	if err != nil {
		t.Fatal(err)
	}
	if bw >= 25e9 {
		t.Error("forwarded connection should lose bandwidth")
	}
	direct, _ := o.EffectiveBandwidth(0, 1, 25e9, DefaultPenalty)
	if direct != 25e9 {
		t.Error("direct connection should keep line rate")
	}
	lat, _ := o.ExtraLatency(0, 3, DefaultPenalty)
	if lat != 2*DefaultPenalty.PerHopLatency {
		t.Errorf("extra latency %g, want %g", lat, 2*DefaultPenalty.PerHopLatency)
	}
}

func TestInstallValidation(t *testing.T) {
	o := figure29(t)
	if err := o.Install(0, 2, []int{0, 2}); err == nil {
		t.Error("unwired hop should fail")
	}
	if err := o.Install(0, 2, []int{0, 1}); err == nil {
		t.Error("wrong endpoints should fail")
	}
	if _, err := o.Walk(3, 0); err == nil {
		t.Error("missing route should fail")
	}
}

func TestDoubleWiringRejected(t *testing.T) {
	_, err := NewOverlay(3, [][4]int{{0, 0, 1, 0}, {0, 0, 2, 0}})
	if err == nil {
		t.Error("reusing a port should fail")
	}
}

func TestWiresFromDuplexPairsPortAssignment(t *testing.T) {
	wires := WiresFromDuplexPairs([][2]int{{0, 1}, {0, 2}, {1, 2}})
	// Host 0 uses ports 0 then 1; host 1 uses 0 then 1; host 2 uses 0, 1.
	if wires[1][1] != 1 {
		t.Errorf("host 0 second wire should use port 1: %v", wires[1])
	}
	if wires[2][1] != 1 || wires[2][3] != 1 {
		t.Errorf("third wire ports wrong: %v", wires[2])
	}
}

func TestMACUniqueness(t *testing.T) {
	seen := map[MAC]bool{}
	for h := 0; h < 4; h++ {
		for p := 0; p < 4; p++ {
			for _, r := range []bool{true, false} {
				m := macOf(IfaceID{Host: h, Port: p, RDMA: r})
				if seen[m] {
					t.Fatalf("duplicate MAC %s", m)
				}
				seen[m] = true
			}
		}
	}
}
