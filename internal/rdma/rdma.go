// Package rdma models host-based RDMA forwarding over NPAR logical
// interfaces (§6 and Appendix I). RoCEv2 NICs silently drop packets whose
// destination IP is not their own, so multi-hop TopoOpt routes split each
// physical port into two logical interfaces: if1 (RDMA-capable, has an
// IP) and if2 (no IP, kernel path) and install iproute/arp/tc-flower-like
// rules so intermediate hosts forward Ethernet-encapsulated RDMA packets
// toward the final destination.
//
// The package emulates the rule tables and walks packets hop by hop —
// exactly the Figure 29 scenario — and exposes the forwarding penalty
// constants the testbed simulation applies to kernel-path hops.
package rdma

import (
	"fmt"
)

// Penalty quantifies the cost of the kernel forwarding path relative to
// NIC-offloaded RDMA (the paper measures "negligible" overhead for small
// forwarded volumes; these defaults reproduce the testbed's mild
// degradation).
type Penalty struct {
	// PerHopLatency is the added kernel-processing latency per forwarded
	// hop, seconds.
	PerHopLatency float64
	// BandwidthFraction is the fraction of line rate the kernel path
	// sustains.
	BandwidthFraction float64
}

// DefaultPenalty models the HPE/Marvell NPAR prototype.
var DefaultPenalty = Penalty{PerHopLatency: 8e-6, BandwidthFraction: 0.92}

// IfaceID identifies one logical interface: host, physical port, and
// whether it is the RDMA partition (if1) or the forwarding partition
// (if2).
type IfaceID struct {
	Host int
	Port int
	RDMA bool
}

// MAC is a logical MAC address (unique per logical interface).
type MAC string

// macOf derives the deterministic MAC of a logical interface.
func macOf(id IfaceID) MAC {
	part := 2
	if id.RDMA {
		part = 1
	}
	return MAC(fmt.Sprintf("02:%02x:%02x:%02x", id.Host, id.Port, part))
}

// Overlay is the logical RDMA overlay of a direct-connect fabric: per-host
// rule tables that rewrite destination MACs along the precomputed route.
type Overlay struct {
	hosts int
	// wires maps (host, port) -> (peerHost, peerPort): the physical
	// patch-panel connections.
	wires map[[2]int][2]int
	// routes: per (srcHost, dstHost) the node path.
	routes map[[2]int][]int
	// egress: for host h and next-hop nh, which local port reaches nh.
	egress map[[2]int]int
}

// NewOverlay builds an overlay for a fabric given its physical wires:
// wires[i] = {hostA, portA, hostB, portB} (duplex). Routes are installed
// with Install.
func NewOverlay(hosts int, wires [][4]int) (*Overlay, error) {
	o := &Overlay{
		hosts:  hosts,
		wires:  make(map[[2]int][2]int),
		routes: make(map[[2]int][]int),
		egress: make(map[[2]int]int),
	}
	for _, w := range wires {
		a := [2]int{w[0], w[1]}
		b := [2]int{w[2], w[3]}
		if _, dup := o.wires[a]; dup {
			return nil, fmt.Errorf("rdma: port %v wired twice", a)
		}
		if _, dup := o.wires[b]; dup {
			return nil, fmt.Errorf("rdma: port %v wired twice", b)
		}
		o.wires[a] = b
		o.wires[b] = a
		o.egress[[2]int{w[0], w[2]}] = w[1]
		o.egress[[2]int{w[2], w[0]}] = w[3]
	}
	return o, nil
}

// Install sets the route (node path, inclusive) for src -> dst, checking
// every hop is physically wired.
func (o *Overlay) Install(src, dst int, nodes []int) error {
	if len(nodes) < 2 || nodes[0] != src || nodes[len(nodes)-1] != dst {
		return fmt.Errorf("rdma: invalid route %v for %d->%d", nodes, src, dst)
	}
	for i := 0; i+1 < len(nodes); i++ {
		if _, ok := o.egress[[2]int{nodes[i], nodes[i+1]}]; !ok {
			return fmt.Errorf("rdma: hop %d->%d not wired", nodes[i], nodes[i+1])
		}
	}
	o.routes[[2]int{src, dst}] = append([]int(nil), nodes...)
	return nil
}

// Hop is one step of a packet walk.
type Hop struct {
	From, To   int
	EgressPort int
	// DstMAC is the destination MAC the sender wrote — an if1 MAC means
	// the receiving NIC's RDMA engine consumes the packet; an if2 MAC
	// means it is punted to the receiving host's kernel for forwarding.
	DstMAC MAC
	Kernel bool // true when the receiving side processes in the kernel
}

// Walk emulates sending one RoCEv2 packet from src to dst: at each
// intermediate host the kernel's tc-flower rule looks up the final
// destination IP and rewrites the destination MAC for the next hop
// (Appendix I's walk-through of servers A→B→C→D). The last hop addresses
// the destination's if1 so the RDMA engine consumes it.
func (o *Overlay) Walk(src, dst int) ([]Hop, error) {
	nodes, ok := o.routes[[2]int{src, dst}]
	if !ok {
		return nil, fmt.Errorf("rdma: no route %d->%d", src, dst)
	}
	var hops []Hop
	for i := 0; i+1 < len(nodes); i++ {
		from, to := nodes[i], nodes[i+1]
		port := o.egress[[2]int{from, to}]
		peer := o.wires[[2]int{from, port}]
		if peer[0] != to {
			return nil, fmt.Errorf("rdma: wiring inconsistent at host %d port %d", from, port)
		}
		last := i+2 == len(nodes)
		dstIf := IfaceID{Host: to, Port: peer[1], RDMA: last}
		hops = append(hops, Hop{
			From: from, To: to, EgressPort: port,
			DstMAC: macOf(dstIf),
			Kernel: !last,
		})
	}
	return hops, nil
}

// ForwardedHops counts kernel-path hops for src->dst (0 when directly
// connected).
func (o *Overlay) ForwardedHops(src, dst int) (int, error) {
	hops, err := o.Walk(src, dst)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, h := range hops {
		if h.Kernel {
			n++
		}
	}
	return n, nil
}

// EffectiveBandwidth returns the end-to-end bandwidth of the src->dst
// logical RDMA connection at the given line rate under the penalty
// model: the kernel path caps forwarded hops at BandwidthFraction of
// line rate.
func (o *Overlay) EffectiveBandwidth(src, dst int, lineRate float64, p Penalty) (float64, error) {
	k, err := o.ForwardedHops(src, dst)
	if err != nil {
		return 0, err
	}
	if k == 0 {
		return lineRate, nil
	}
	return lineRate * p.BandwidthFraction, nil
}

// ExtraLatency returns the added latency of kernel forwarding for
// src->dst.
func (o *Overlay) ExtraLatency(src, dst int, p Penalty) (float64, error) {
	k, err := o.ForwardedHops(src, dst)
	if err != nil {
		return 0, err
	}
	return float64(k) * p.PerHopLatency, nil
}

// WiresFromDuplexPairs builds the wire list for a topology expressed as
// duplex node pairs, assigning ports in order of appearance per host.
func WiresFromDuplexPairs(pairs [][2]int) [][4]int {
	next := map[int]int{}
	var wires [][4]int
	for _, p := range pairs {
		a, b := p[0], p[1]
		wires = append(wires, [4]int{a, next[a], b, next[b]})
		next[a]++
		next[b]++
	}
	return wires
}
