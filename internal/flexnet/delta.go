package flexnet

import (
	"sync"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

// DeltaEval is an incremental drop-in for the analytic evaluator closure
// (traffic.FromStrategy + EstimateIteration over a fixed fabric). It keeps
// the incumbent strategy's per-phase link loads as exact int64 byte counts
// and, when a proposal changes only a few layers — the MCMC moves touch
// one or two — subtracts the changed layers' old contributions and adds
// the new ones along the installed routes instead of rebuilding both
// traffic matrices and re-routing the whole fabric.
//
// Correctness rests on LinkLoads being additive: every matrix entry is a
// sum of per-layer contributions, each routed independently, so link
// loads can be patched contribution-by-contribution in exact integer
// arithmetic. Three places resist naive diffing and are handled
// explicitly:
//
//   - AllReduce groups are rendered with integer division
//     (multiRingInto's per-ring share and RingPerNodeBytes), so a group's
//     rendering is not linear in its byte count; any group whose
//     membership or byte total changed is un-rendered at its old state
//     and re-rendered at its new state as a whole.
//   - MP traffic depends on the consumers set (Strategy.Servers()). A
//     per-server refcount over all layer groups detects any change to the
//     set and falls back to a full rebuild, which every other sharded
//     layer's traffic would need anyway.
//   - The float max over link loads and the compute-time term are
//     recomputed from scratch every call (max is order-independent;
//     float sums are not exactly invertible), so the returned cost is
//     bit-identical to EstimateIteration however the incumbent evolved.
//
// Eval is safe for concurrent use (the chains of a Parallelism > 1
// search): a mutex serializes callers, and because every result equals
// the full evaluation of its argument regardless of the incumbent,
// interleaving order cannot perturb search results.
type DeltaEval struct {
	m     *model.Model
	fab   *Fabric
	batch int
	gpu   model.GPU

	mu sync.Mutex
	// Incumbent state; valid only when ok.
	ok        bool
	inc       parallel.Strategy
	refs      []int // per-server count of layer groups containing it
	consumers []int // incumbent Servers(), ascending
	mpLoads   map[[2]int]int64
	arLoads   map[[2]int]int64
	groups    map[string]*arGroup

	caps    map[[2]int]float64 // pairCapacity cache (immutable per fabric)
	changed []int              // scratch: indices of layers that differ
	arDelta map[string]*arPatch
}

// arGroup is one incumbent AllReduce group: sorted members + byte total.
type arGroup struct {
	members []int
	bytes   int64
}

// arPatch accumulates a pending byte delta for one group key.
type arPatch struct {
	members []int
	delta   int64
}

// NewDeltaEval returns an evaluator over a fixed fabric that scores
// strategies exactly like the closure
//
//	d, err := traffic.FromStrategy(m, s, batch)
//	if err != nil { return inf }
//	return EstimateIteration(fab, d, s.MaxComputeTime(m, gpu, batch))
//
// but incrementally. A batch ≤ 0 inherits the model default, matching
// SearchOnFabric; a zero GPU inherits model.A100.
func NewDeltaEval(m *model.Model, fab *Fabric, batch int, gpu model.GPU) *DeltaEval {
	if batch <= 0 {
		batch = m.BatchPerGPU
	}
	if gpu.PeakFLOPS == 0 {
		gpu = model.A100
	}
	return &DeltaEval{
		m:       m,
		fab:     fab,
		batch:   batch,
		gpu:     gpu,
		caps:    make(map[[2]int]float64),
		arDelta: make(map[string]*arPatch),
	}
}

// Eval scores the strategy; lower is better (iteration seconds). The
// result is bit-identical to the full analytic evaluation for every
// input, including invalid strategies (inf) and degenerate fabrics.
func (de *DeltaEval) Eval(s parallel.Strategy) float64 {
	de.mu.Lock()
	defer de.mu.Unlock()

	if !de.ok || s.N != de.inc.N || len(s.Layers) != len(de.inc.Layers) {
		return de.rebuild(s)
	}
	de.changed = de.changed[:0]
	for i := range s.Layers {
		if !sameLayer(s.Layers[i], de.inc.Layers[i]) {
			de.changed = append(de.changed, i)
		}
	}
	if len(de.changed) == 0 {
		return de.score(s)
	}
	// A proposal touching most layers (a warm candidate from a different
	// family of starts) diffs no cheaper than a rebuild.
	if 2*len(de.changed) >= len(s.Layers) {
		return de.rebuild(s)
	}
	// Validate the changed layers before touching any state, so an invalid
	// proposal returns inf with the incumbent intact. Unchanged layers
	// were validated when they entered the incumbent.
	for _, li := range de.changed {
		if !de.validLayer(li, s.Layers[li]) {
			return inf
		}
	}
	// Update the per-server refcounts; if any server enters or leaves the
	// union of groups, the consumers set changed and every sharded layer's
	// MP traffic with it — rebuild (which recomputes refs wholesale).
	consumersChanged := false
	for _, li := range de.changed {
		for _, v := range de.inc.Layers[li].Group {
			de.refs[v]--
			if de.refs[v] == 0 {
				consumersChanged = true
			}
		}
		for _, v := range s.Layers[li].Group {
			de.refs[v]++
			if de.refs[v] == 1 {
				consumersChanged = true
			}
		}
	}
	if consumersChanged {
		return de.rebuild(s)
	}

	for _, li := range de.changed {
		de.chargeMP(li, de.inc.Layers[li], -1)
		de.chargeMP(li, s.Layers[li], +1)
		de.stageAR(li, de.inc.Layers[li], -1)
		de.stageAR(li, s.Layers[li], +1)
	}
	de.applyAR()

	for _, li := range de.changed {
		ls := s.Layers[li]
		de.inc.Layers[li] = parallel.LayerStrategy{Kind: ls.Kind, Group: append([]int(nil), ls.Group...)}
	}
	return de.score(s)
}

// rebuild recomputes the incumbent state from scratch via the exact full
// evaluation path and returns the score.
func (de *DeltaEval) rebuild(s parallel.Strategy) float64 {
	dem, err := traffic.FromStrategy(de.m, s, de.batch)
	if err != nil {
		de.ok = false
		return inf
	}
	de.mpLoads = pruneZero(de.fab.Routes.LinkLoads(de.fab.MPMatrix(dem)))
	de.arLoads = pruneZero(de.fab.Routes.LinkLoads(de.fab.AllReduceMatrix(dem)))
	de.groups = make(map[string]*arGroup, len(dem.Groups))
	for _, g := range dem.Groups {
		de.groups[memberKey(g.Members)] = &arGroup{members: g.Members, bytes: g.Bytes}
	}
	if cap(de.refs) < s.N {
		de.refs = make([]int, s.N)
	} else {
		de.refs = de.refs[:s.N]
		clear(de.refs)
	}
	for _, ls := range s.Layers {
		for _, v := range ls.Group {
			de.refs[v]++
		}
	}
	de.consumers = s.Servers()
	de.inc = s.Clone()
	de.ok = true
	return de.score(s)
}

// score computes phase(MP) + compute + phase(AR) exactly like
// EstimateIteration, in the same order, from the maintained link loads.
func (de *DeltaEval) score(s parallel.Strategy) float64 {
	return de.phase(de.mpLoads) + s.MaxComputeTime(de.m, de.gpu, de.batch) + de.phase(de.arLoads)
}

// phase mirrors phaseEstimate over a maintained load map. Zero-valued
// entries are pruned on update, so emptiness and the max coincide with
// the from-scratch map.
func (de *DeltaEval) phase(loads map[[2]int]int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	worst := 0.0
	for pair, bytes := range loads {
		cap, ok := de.caps[pair]
		if !ok {
			cap = de.fab.pairCapacity(pair[0], pair[1])
			de.caps[pair] = cap
		}
		if cap <= 0 {
			return inf
		}
		t := float64(bytes) * 8 / cap
		if t > worst {
			worst = t
		}
	}
	return worst
}

// chargeMP adds (sign=+1) or removes (sign=-1) one sharded layer's MP
// contribution, replaying traffic.FromStrategy's sharded case along the
// installed routes.
func (de *DeltaEval) chargeMP(li int, ls parallel.LayerStrategy, sign int64) {
	if ls.Kind != parallel.Sharded {
		return
	}
	per := int64(de.batch) * de.m.Layers[li].ActBytesPerSample / int64(len(ls.Group))
	if per == 0 {
		return
	}
	for _, h := range ls.Group {
		for _, c := range de.consumers {
			if c == h {
				continue
			}
			de.charge(de.mpLoads, h, c, sign*per) // forward activations
			de.charge(de.mpLoads, c, h, sign*per) // backward gradients
		}
	}
}

// stageAR records one replicated layer's pending byte delta against its
// (sorted-members) group, mirroring traffic.FromStrategy's merge rule.
// Groups are re-rendered whole in applyAR because the ring split is not
// linear in bytes.
func (de *DeltaEval) stageAR(li int, ls parallel.LayerStrategy, sign int64) {
	if ls.Kind != parallel.Replicated || len(ls.Group) < 2 || de.m.Layers[li].ParamBytes == 0 {
		return
	}
	sorted := append([]int(nil), ls.Group...)
	insertionSort(sorted)
	key := memberKey(sorted)
	p := de.arDelta[key]
	if p == nil {
		p = &arPatch{members: sorted}
		de.arDelta[key] = p
	}
	p.delta += sign * de.m.Layers[li].ParamBytes
}

// applyAR replays every staged group delta: un-render the group at its
// old byte total, re-render at the new one, and update the group map.
func (de *DeltaEval) applyAR() {
	for key, p := range de.arDelta {
		if p.delta != 0 {
			g := de.groups[key]
			var old int64
			members := p.members
			if g != nil {
				old = g.bytes
				members = g.members
				de.chargeGroup(members, old, -1)
			}
			now := old + p.delta
			if now > 0 {
				de.chargeGroup(members, now, +1)
				if g != nil {
					g.bytes = now
				} else {
					de.groups[key] = &arGroup{members: members, bytes: now}
				}
			} else {
				delete(de.groups, key)
			}
		}
		delete(de.arDelta, key)
	}
}

// chargeGroup adds or removes one AllReduce group's full rendering,
// replaying multiRingInto onto the link loads.
func (de *DeltaEval) chargeGroup(members []int, bytes int64, sign int64) {
	ps := de.fab.ringsFor(members)
	share := bytes / int64(len(ps))
	rem := bytes - share*int64(len(ps))
	k := len(members)
	for i, p := range ps {
		b := share
		if i == 0 {
			b += rem
		}
		per := traffic.RingPerNodeBytes(b, k)
		if per == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			de.charge(de.arLoads, members[j], members[(j+p)%k], sign*per)
		}
	}
}

// charge walks the installed route for (a, b) and applies delta to every
// traversed link, pruning entries that return to zero so the map stays
// equal (as a set) to a from-scratch LinkLoads result.
func (de *DeltaEval) charge(loads map[[2]int]int64, a, b int, delta int64) {
	if a == b || delta == 0 {
		return
	}
	nodes := de.fab.Routes.Get(a, b)
	if nodes == nil {
		return // unrouted pairs are skipped by LinkLoads too
	}
	for i := 0; i+1 < len(nodes); i++ {
		link := [2]int{nodes[i], nodes[i+1]}
		v := loads[link] + delta
		if v == 0 {
			delete(loads, link)
		} else {
			loads[link] = v
		}
	}
}

// validLayer mirrors Strategy.Validate for a single layer without
// allocating: bounds, duplicates, shardability.
func (de *DeltaEval) validLayer(li int, ls parallel.LayerStrategy) bool {
	if len(ls.Group) == 0 {
		return false
	}
	for i, v := range ls.Group {
		if v < 0 || v >= de.inc.N {
			return false
		}
		for j := 0; j < i; j++ {
			if ls.Group[j] == v {
				return false
			}
		}
	}
	return ls.Kind != parallel.Sharded || de.m.Layers[li].Shardable
}

// sameLayer reports whether two layer strategies are literally equal
// (kind and group, order-sensitive — a reordered group diffs as changed
// and is handled by the subtract/add cycle, which is a no-op).
func sameLayer(a, b parallel.LayerStrategy) bool {
	if a.Kind != b.Kind || len(a.Group) != len(b.Group) {
		return false
	}
	for i := range a.Group {
		if a.Group[i] != b.Group[i] {
			return false
		}
	}
	return true
}

// memberKey is a compact exact key over a sorted member list.
func memberKey(sorted []int) string {
	b := make([]byte, 0, 4*len(sorted))
	for _, v := range sorted {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// insertionSort sorts tiny group slices in place without the sort
// package's interface allocations.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// pruneZero drops zero-valued entries so maintained maps start equal (as
// key sets) to what LinkLoads would produce later. LinkLoads never emits
// zeros today; this guards the invariant, not a live case.
func pruneZero(loads map[[2]int]int64) map[[2]int]int64 {
	for k, v := range loads {
		if v == 0 {
			delete(loads, k)
		}
	}
	return loads
}
