package flexnet

import (
	"fmt"

	"topoopt/internal/traffic"
)

// IterationResult breaks an iteration's time into its phases. The paper's
// Eq. (1) formulation (§5.4) assumes no compute/communication overlap; we
// follow it: iteration = MP phase + compute + AllReduce phase.
type IterationResult struct {
	MPTime        float64
	ComputeTime   float64
	AllReduceTime float64
	BandwidthTax  float64
}

// Total returns the iteration time in seconds.
func (r IterationResult) Total() float64 { return r.MPTime + r.ComputeTime + r.AllReduceTime }

// SimulateIteration runs one training iteration on the fabric with the
// flow-level simulator: all MP transfers first, a compute interval, then
// all AllReduce transfers (rendered under the fabric's ring policy).
func SimulateIteration(f *Fabric, dem traffic.Demand, computeTime float64) (IterationResult, error) {
	res := IterationResult{ComputeTime: computeTime}

	runPhase := func(tm traffic.Matrix) (float64, error) {
		if tm.Total() == 0 {
			return 0, nil
		}
		sim := f.AcquireSim()
		defer f.ReleaseSim(sim)
		pending := 0
		if err := f.InjectMatrix(sim, tm, &pending, nil); err != nil {
			return 0, err
		}
		end := sim.Run(0)
		if sim.ActiveFlows() != 0 {
			return 0, fmt.Errorf("flexnet: %d flows stalled (disconnected or zero-capacity path)", sim.ActiveFlows())
		}
		res.BandwidthTax = sim.BandwidthTax() // last phase's tax; callers read after AR phase
		return end, nil
	}

	var err error
	if res.MPTime, err = runPhase(f.MPMatrix(dem)); err != nil {
		return res, err
	}
	mpTax := res.BandwidthTax
	if res.AllReduceTime, err = runPhase(f.AllReduceMatrix(dem)); err != nil {
		return res, err
	}
	// Report the volume-weighted tax over both phases.
	mpVol := float64(dem.TotalMPBytes())
	arVol := float64(dem.TotalAllReduceBytes())
	if mpVol+arVol > 0 {
		res.BandwidthTax = (mpTax*mpVol + res.BandwidthTax*arVol) / (mpVol + arVol)
	} else {
		res.BandwidthTax = 1
	}
	return res, nil
}

// EstimateIteration is the fast analytic evaluator used inside MCMC: each
// phase's duration is the most-loaded node-pair's bytes divided by the
// aggregate capacity between that pair, the standard max-link-load bound.
func EstimateIteration(f *Fabric, dem traffic.Demand, computeTime float64) float64 {
	return phaseEstimate(f, f.MPMatrix(dem)) + computeTime + phaseEstimate(f, f.AllReduceMatrix(dem))
}

func phaseEstimate(f *Fabric, tm traffic.Matrix) float64 {
	loads := f.Routes.LinkLoads(tm)
	if len(loads) == 0 {
		return 0
	}
	worst := 0.0
	for pair, bytes := range loads {
		cap := f.pairCapacity(pair[0], pair[1])
		if cap <= 0 {
			return inf
		}
		t := float64(bytes) * 8 / cap
		if t > worst {
			worst = t
		}
	}
	return worst
}

const inf = 1e30

// pairCapacity is the aggregate bandwidth of parallel links from a to b.
func (f *Fabric) pairCapacity(a, b int) float64 {
	total := 0.0
	for _, id := range f.Net.G.Out(a) {
		e := f.Net.G.Edge(id)
		if e.To == b {
			total += e.Cap
		}
	}
	return total
}
