package flexnet

import (
	"context"
	"errors"
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/topo"
)

func TestMCMCSearchCancelledSkipsChain(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evals := 0
	eval := func(parallel.Strategy) float64 { evals++; return 1 }
	st, _ := MCMCSearch(m, 8, 0, eval, MCMCConfig{Iters: 500, Seed: 1, Ctx: ctx})
	// Only the hybrid and pure-DP starting points are evaluated; the chain
	// itself never runs.
	if evals > 2 {
		t.Errorf("cancelled search ran %d evaluations, want ≤ 2", evals)
	}
	if err := st.Validate(m); err != nil {
		t.Errorf("cancelled search must still return a valid strategy: %v", err)
	}
}

func TestCoOptimizeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CoOptimizeContext(ctx, model.DLRMPreset(model.Sec6), CoOptConfig{
		N: 8, Degree: 4, LinkBW: 25e9, Rounds: 1, MCMCIters: 10, Seed: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSearchOnFabricContextCancelled(t *testing.T) {
	fab := NewSwitchFabric(topo.IdealSwitch(8, 100e9))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SearchOnFabricContext(ctx, model.CANDLEPreset(model.Sec6), fab,
		8, 0, MCMCConfig{Iters: 10, Seed: 1}, model.GPU{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMCMCDefaultItersUnified(t *testing.T) {
	if DefaultMCMCIters != 200 {
		t.Fatalf("DefaultMCMCIters = %d, want 200", DefaultMCMCIters)
	}
	// A zero-iteration config must still run the full default budget: count
	// proposals via evaluator calls (memoization may dedupe, so just check
	// the chain ran well past the old hard-coded 100).
	// Ever-improving costs make every fresh proposal accepted, so the chain
	// keeps moving and revisits (memoized, not re-evaluated) stay rare.
	m := model.DLRMPreset(model.Sec6)
	evals := 0
	eval := func(s parallel.Strategy) float64 { evals++; return -float64(evals) }
	MCMCSearch(m, 8, 0, eval, MCMCConfig{Seed: 1})
	if evals < 150 {
		t.Errorf("default search made %d evaluations, expected a 200-iteration budget", evals)
	}
}
