package flexnet

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// fabricEval builds the same estimator CoOptimize hands to MCMC: demand
// from the strategy, analytic iteration estimate on a fixed fabric. It is
// pure over immutable inputs, hence safe for concurrent chains.
func fabricEval(t testing.TB, m *model.Model, n int) Evaluator {
	t.Helper()
	fab := NewSwitchFabric(topo.IdealSwitch(n, 400e9))
	return func(s parallel.Strategy) float64 {
		d, err := traffic.FromStrategy(m, s, m.BatchPerGPU)
		if err != nil {
			return inf
		}
		return EstimateIteration(fab, d, s.MaxComputeTime(m, model.A100, m.BatchPerGPU))
	}
}

// TestMCMCParallelDeterministic is the determinism table: for every K,
// the same seed must yield the identical strategy and cost across repeat
// runs, across worker counts, and across GOMAXPROCS settings.
func TestMCMCParallelDeterministic(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	n := 12
	eval := fabricEval(t, m, n)
	for _, k := range []int{1, 2, 8} {
		base, baseCost := MCMCSearch(m, n, 0, eval, MCMCConfig{
			Iters: 200, Seed: 11, Parallelism: k,
		})
		for _, workers := range []int{1, 3, 8} {
			st, c := MCMCSearch(m, n, 0, eval, MCMCConfig{
				Iters: 200, Seed: 11, Parallelism: k, Workers: workers,
			})
			if c != baseCost || st.Fingerprint() != base.Fingerprint() {
				t.Errorf("K=%d workers=%d: cost %g fp %q differ from workers-default run (cost %g)",
					k, workers, c, st.Fingerprint(), baseCost)
			}
		}
		old := runtime.GOMAXPROCS(4)
		st, c := MCMCSearch(m, n, 0, eval, MCMCConfig{
			Iters: 200, Seed: 11, Parallelism: k,
		})
		runtime.GOMAXPROCS(old)
		if c != baseCost || st.Fingerprint() != base.Fingerprint() {
			t.Errorf("K=%d: result changed under GOMAXPROCS=4", k)
		}
	}
}

// TestMCMCParallelismZeroIsOne pins the wire-format aliasing: an unset
// Parallelism and an explicit 1 are the same computation.
func TestMCMCParallelismZeroIsOne(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	eval := fabricEval(t, m, 8)
	st0, c0 := MCMCSearch(m, 8, 0, eval, MCMCConfig{Iters: 120, Seed: 3})
	st1, c1 := MCMCSearch(m, 8, 0, eval, MCMCConfig{Iters: 120, Seed: 3, Parallelism: 1})
	if c0 != c1 || st0.Fingerprint() != st1.Fingerprint() {
		t.Errorf("Parallelism 0 vs 1 diverge: %g vs %g", c0, c1)
	}
}

// TestMCMCParallelNotWorseThanSingleChain is the quality regression
// gate: with the same total proposal budget, the multi-chain engine
// (shared memo + pull-only best exchange) must not return a worse cost
// than the single sequential chain. Deterministic seeds make this a
// stable pin, not a flaky statistical claim.
func TestMCMCParallelNotWorseThanSingleChain(t *testing.T) {
	cases := []struct {
		name string
		m    *model.Model
		n    int
	}{
		{"dlrm-sec6", model.DLRMPreset(model.Sec6), 12},
		{"dlrm-small", smallDLRM(), 8},
	}
	for _, tc := range cases {
		eval := fabricEval(t, tc.m, tc.n)
		for _, seed := range []int64{1, 7, 42} {
			_, single := MCMCSearch(tc.m, tc.n, 0, eval, MCMCConfig{
				Iters: 400, Seed: seed,
			})
			for _, k := range []int{2, 4, 8} {
				_, multi := MCMCSearch(tc.m, tc.n, 0, eval, MCMCConfig{
					Iters: 400, Seed: seed, Parallelism: k,
				})
				if multi > single {
					t.Errorf("%s seed=%d K=%d: multi-chain cost %g worse than single chain %g",
						tc.name, seed, k, multi, single)
				}
			}
		}
	}
}

// TestMCMCParallelCancellation exercises the per-chain context poll under
// real concurrency (meaningful under -race): chains running on several
// workers must stop promptly after cancellation and still return a valid
// strategy.
func TestMCMCParallelCancellation(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	n := 12
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	slowEval := func(s parallel.Strategy) float64 {
		if evals.Add(1) == 20 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return float64(len(s.ShardedLayers()) + 1)
	}
	st, _ := MCMCSearch(m, n, 0, slowEval, MCMCConfig{
		Iters: 100000, Seed: 1, Parallelism: 8, Workers: 4, Ctx: ctx,
	})
	if err := st.Validate(m); err != nil {
		t.Fatalf("cancelled parallel search returned invalid strategy: %v", err)
	}
	// Each of the 4 workers can overshoot by at most the epoch in flight;
	// anything near the full budget means cancellation was ignored.
	if got := evals.Load(); got > 20+8*mcmcExchangePeriod {
		t.Errorf("search kept evaluating after cancel: %d evals", got)
	}
}

// TestCoOptimizeParallelDeterministic pins the full alternating loop:
// same seed + same K must converge to the identical plan inputs.
func TestCoOptimizeParallelDeterministic(t *testing.T) {
	m := smallDLRM()
	cfg := CoOptConfig{
		N: 16, Degree: 4, LinkBW: 100e9, Rounds: 2, MCMCIters: 60, Seed: 42,
		Parallelism: 4,
	}
	a, err := CoOptimize(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SearchWorkers = 2
	b, err := CoOptimize(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy.Fingerprint() != b.Strategy.Fingerprint() {
		t.Error("CoOptimize strategies diverge across worker counts")
	}
	if a.IterTime != b.IterTime {
		t.Errorf("CoOptimize iteration times diverge: %+v vs %+v", a.IterTime, b.IterTime)
	}
}

// TestChainSeedDerivation pins the chain-seed contract: chain 0 replays
// the root seed and distinct chains get distinct sources.
func TestChainSeedDerivation(t *testing.T) {
	if chainSeed(99, 0) != 99 {
		t.Fatalf("chainSeed(99, 0) = %d, want 99 (chain 0 must replay the sequential search)", chainSeed(99, 0))
	}
	seen := map[int64]bool{}
	for i := 0; i < MaxParallelism; i++ {
		s := chainSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate chain seed %d at chain %d", s, i)
		}
		seen[s] = true
	}
}

// TestMemoStoreShardsCoverKeys sanity-checks the sharded memo store:
// every inserted key is readable back and lands in exactly one shard.
func TestMemoStoreShardsCoverKeys(t *testing.T) {
	ms := newMemoStore()
	m := smallDLRM()
	st := parallel.Hybrid(m, 8)
	keys := []string{st.Fingerprint(), parallel.DataParallel(m, 8).Fingerprint(), "", "x"}
	for i, k := range keys {
		ms.put(k, float64(i))
	}
	total := 0
	for _, shard := range ms.shards {
		total += len(shard)
	}
	if total != len(keys) {
		t.Fatalf("store holds %d entries, want %d", total, len(keys))
	}
	for i, k := range keys {
		if v, ok := ms.get(k); !ok || v != float64(i) {
			t.Errorf("get(%q) = %g, %v; want %d, true", k, v, ok, i)
		}
	}
}
