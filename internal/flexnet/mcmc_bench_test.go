package flexnet

import (
	"fmt"
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// BenchmarkMCMCSearch measures strategy-search wall-clock at chain counts
// K ∈ {1, 4, 8} with a fixed total proposal budget, the configuration
// `make flexnet-bench` records into BENCH_flexnet.json. Workers defaults
// to min(K, GOMAXPROCS), so on a multi-core host K > 1 runs genuinely in
// parallel while returning the deterministic per-(seed, K) result.
//
// Two presets bound the spectrum: dlrm (§5.3 scale, 64 shardable
// embedding tables on 32 servers) is the search-heavy case parallel
// chains exist for; vgg16 has no shardable layers, so its "search" is
// the two start-state evaluations regardless of K — the paper's VGG
// strategies are pure-DP/hybrid (§5.1), and the benchmark documents that
// shape rather than hiding it.
func BenchmarkMCMCSearch(b *testing.B) {
	cases := []struct {
		name string
		m    *model.Model
		n    int
	}{
		{"vgg16", model.VGGPreset(model.Sec53), 16},
		{"dlrm", model.DLRMPreset(model.Sec53), 32},
	}
	for _, tc := range cases {
		fab := NewSwitchFabric(topo.IdealSwitch(tc.n, 400e9))
		eval := func(s parallel.Strategy) float64 {
			d, err := traffic.FromStrategy(tc.m, s, tc.m.BatchPerGPU)
			if err != nil {
				return inf
			}
			return EstimateIteration(fab, d, s.MaxComputeTime(tc.m, model.A100, tc.m.BatchPerGPU))
		}
		for _, k := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/K%d", tc.name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					MCMCSearch(tc.m, tc.n, 0, eval, MCMCConfig{
						Iters: 400, Seed: 1, Parallelism: k,
					})
				}
			})
		}
	}
}

// BenchmarkWarmReplan is the incremental-replanning headline `make
// warm-bench` records: the same near-miss replan run cold (from-scratch
// search, full budget, closure evaluator — the pre-incremental service
// path) and warm (similarity-index neighbor via MCMCConfig.Warm, the
// patience early exit, and the delta evaluator). The acceptance bar is
// warm ≥2x cheaper at equal budget with matched-or-better cost — pinned
// functionally by TestMCMCWarmPatienceEqualBudgetQuality, measured here.
func BenchmarkWarmReplan(b *testing.B) {
	m := model.DLRMPreset(model.Sec53)
	n := 32
	fab := NewSwitchFabric(topo.IdealSwitch(n, 400e9))
	eval := func(s parallel.Strategy) float64 {
		d, err := traffic.FromStrategy(m, s, m.BatchPerGPU)
		if err != nil {
			return inf
		}
		return EstimateIteration(fab, d, s.MaxComputeTime(m, model.A100, m.BatchPerGPU))
	}
	// The cached neighbor a near-miss request warm-starts from.
	neighbor, _ := MCMCSearch(m, n, 0, eval, MCMCConfig{Iters: 400, Seed: 99})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MCMCSearch(m, n, 0, eval, MCMCConfig{Iters: 400, Seed: 1})
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			de := NewDeltaEval(m, fab, m.BatchPerGPU, model.A100)
			MCMCSearch(m, n, 0, de.Eval, MCMCConfig{
				Iters: 400, Seed: 1,
				Warm: []parallel.Strategy{neighbor}, Patience: 3,
			})
		}
	})
}
