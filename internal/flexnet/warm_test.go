package flexnet

import (
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

func warmEval(fab *Fabric, m *model.Model, n, batch int) Evaluator {
	return func(s parallel.Strategy) float64 {
		d, err := traffic.FromStrategy(m, s, batch)
		if err != nil {
			return inf
		}
		return EstimateIteration(fab, d, s.MaxComputeTime(m, model.A100, batch))
	}
}

// TestMCMCWarmStartAdoptsPriorPlan: seeding the search with a known-good
// strategy can never produce a worse result than the strategy itself —
// every chain starts from the best known point, so a tiny follow-up
// budget retains (or improves) a full search's quality. This is the seam
// the fleet simulator uses to replan degraded shards cheaply.
func TestMCMCWarmStartAdoptsPriorPlan(t *testing.T) {
	n, batch := 8, 16
	m := model.DLRMPreset(model.Sec56)
	fab := NewSwitchFabric(topo.FatTree(n, 25e9))
	eval := warmEval(fab, m, n, batch)

	cold, coldCost := MCMCSearch(m, n, batch, eval, MCMCConfig{Iters: 150, Seed: 9})
	// A near-zero budget search warm-started from the converged strategy
	// must match or beat it.
	_, warmCost := MCMCSearch(m, n, batch, eval, MCMCConfig{
		Iters: 1, Seed: 1234, Warm: []parallel.Strategy{cold},
	})
	if warmCost > coldCost {
		t.Errorf("warm-started cost %g worse than its own seed %g", warmCost, coldCost)
	}
	// And without the warm seed, one iteration from scratch is generally
	// no better than the canonical starts — the warm result must not
	// depend on luck to hold the line.
	_, scratch := MCMCSearch(m, n, batch, eval, MCMCConfig{Iters: 1, Seed: 1234})
	if warmCost > scratch {
		t.Errorf("warm-started cost %g worse than cold 1-iter search %g", warmCost, scratch)
	}
}

// TestMCMCWarmStartEmptyIdentical: an empty Warm slice reproduces the
// cold search proposal-for-proposal.
func TestMCMCWarmStartEmptyIdentical(t *testing.T) {
	n, batch := 8, 16
	m := model.DLRMPreset(model.Sec56)
	fab := NewSwitchFabric(topo.FatTree(n, 25e9))
	eval := warmEval(fab, m, n, batch)

	s1, c1 := MCMCSearch(m, n, batch, eval, MCMCConfig{Iters: 80, Seed: 3})
	s2, c2 := MCMCSearch(m, n, batch, eval, MCMCConfig{Iters: 80, Seed: 3, Warm: []parallel.Strategy{}})
	if c1 != c2 || s1.Fingerprint() != s2.Fingerprint() {
		t.Error("empty warm slice changed the search result")
	}
}

// TestMCMCWarmStartSkipsMisfits: candidates from another shard size (or
// another model shape) are ignored, not evaluated — a warm cache can be
// shared across job families without pre-filtering.
func TestMCMCWarmStartSkipsMisfits(t *testing.T) {
	n, batch := 8, 16
	m := model.DLRMPreset(model.Sec56)
	fab := NewSwitchFabric(topo.FatTree(n, 25e9))
	eval := warmEval(fab, m, n, batch)

	wrongN := parallel.Hybrid(m, 16)                               // 16-server strategy on an 8-server search
	wrongShape := parallel.Hybrid(model.VGGPreset(model.Sec56), n) // different layer count
	s1, c1 := MCMCSearch(m, n, batch, eval, MCMCConfig{Iters: 80, Seed: 3})
	s2, c2 := MCMCSearch(m, n, batch, eval, MCMCConfig{
		Iters: 80, Seed: 3, Warm: []parallel.Strategy{wrongN, wrongShape},
	})
	if c1 != c2 || s1.Fingerprint() != s2.Fingerprint() {
		t.Error("misfit warm candidates perturbed the search")
	}
}
