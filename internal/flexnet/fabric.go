// Package flexnet is this repository's FlexNet: the network-aware
// augmentation of FlexFlow's strategy search described in §5.1. It
// provides (i) a Fabric abstraction bundling a network architecture with
// routing and an AllReduce rendering policy, (ii) an iteration-time
// evaluator in two fidelities — a fast analytic estimate for MCMC inner
// loops and a full flow-level simulation for reported numbers — (iii) the
// FlexFlow-style MCMC parallelization-strategy search, and (iv) the
// alternating optimization loop of §4.1 that co-optimizes strategy and
// topology via core.TopologyFinder.
package flexnet

import (
	"sync"

	"topoopt/internal/core"
	"topoopt/internal/netsim"
	"topoopt/internal/route"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// Fabric is a network architecture prepared for evaluation: topology,
// routing table and (for TopoOpt fabrics) the AllReduce ring permutations
// to load-balance across.
type Fabric struct {
	Net    *topo.Network
	Routes *route.Table
	// Rings, when non-nil, maps AllReduce groups to their TotientPerms
	// permutations (TopoOpt fabrics). Switch fabrics leave it nil and use
	// a single "+1" ring.
	Rings []core.GroupRings
	// LinkLatency is per-hop propagation delay for simulation (seconds);
	// negative selects the default 1 µs.
	LinkLatency float64

	// simPool recycles simulators across evaluations so MCMC iterations
	// and sweep points stop re-allocating one per call. A pool (rather
	// than a single cached instance) lets concurrent users — parallel
	// search chains, overlapping service requests — each hold their own
	// simulator while still reusing retired ones via Sim.Reset.
	simPool sync.Pool
}

// AcquireSim returns a simulator reset to the empty state over the
// fabric's graph, reusing a pooled instance when one is available (the
// allocation-free path) and allocating otherwise. Callers that finish a
// simulation should hand the instance back with ReleaseSim so the next
// evaluation can Reset-reuse it. Safe for concurrent use: every caller
// gets a private instance.
func (f *Fabric) AcquireSim() *netsim.Sim {
	if s, ok := f.simPool.Get().(*netsim.Sim); ok {
		s.Reset(f.Net.G, f.LinkLatency)
		return s
	}
	return netsim.New(f.Net.G, f.LinkLatency)
}

// ReleaseSim returns a simulator obtained from AcquireSim to the pool.
// The caller must not use it afterwards.
func (f *Fabric) ReleaseSim(s *netsim.Sim) {
	f.simPool.Put(s)
}

// NewSwitchFabric prepares a switch-based network (Ideal Switch, Fat-tree,
// Oversub Fat-tree, Expander, SiP-Ring): all-pairs shortest-path routing.
func NewSwitchFabric(nw *topo.Network) *Fabric {
	t := route.NewTable(nw.G.N())
	t.FillShortestPaths(nw.G)
	return &Fabric{Net: nw, Routes: t, LinkLatency: -1}
}

// NewRoutedFabric prepares a network with a caller-supplied routing
// table (fabrics whose routing is structural rather than shortest-path,
// e.g. dimension-ordered routing on a torus). Pairs without installed
// routes fall back to shortest paths so switch nodes and asymmetric
// tables stay reachable.
func NewRoutedFabric(nw *topo.Network, t *route.Table) *Fabric {
	t.FillShortestPaths(nw.G)
	return &Fabric{Net: nw, Routes: t, LinkLatency: -1}
}

// NewTopoOptFabric wraps a TopologyFinder result.
func NewTopoOptFabric(res *core.Result) *Fabric {
	return &Fabric{Net: res.Network, Routes: res.Routes, Rings: res.Rings, LinkLatency: -1}
}

// allReduceMatrix renders the demand's AllReduce groups into a concrete
// traffic matrix under this fabric's policy.
func (f *Fabric) AllReduceMatrix(dem traffic.Demand) traffic.Matrix {
	tm := traffic.NewMatrix(f.Net.G.N())
	for _, g := range dem.Groups {
		if len(g.Members) < 2 {
			continue
		}
		ps := f.ringsFor(g.Members)
		multiRingInto(tm, g.Members, ps, g.Bytes)
	}
	return tm
}

// ringsFor returns the permutations to use for an AllReduce over the given
// members: the matching TopologyFinder group if present, else {+1}.
func (f *Fabric) ringsFor(members []int) []int {
	for _, gr := range f.Rings {
		if sameMembers(gr.Members, members) && len(gr.Ps) > 0 {
			return gr.Ps
		}
	}
	return []int{1}
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]int, len(a))
	for _, v := range a {
		seen[v]++
	}
	for _, v := range b {
		seen[v]--
		if seen[v] < 0 {
			return false
		}
	}
	return true
}

// multiRingInto splits bytes across the permutations' rings (collective
// semantics, duplicated here to avoid an import cycle with the collective
// package's tests using core).
func multiRingInto(tm traffic.Matrix, members []int, ps []int, bytes int64) {
	if len(ps) == 0 {
		ps = []int{1}
	}
	share := bytes / int64(len(ps))
	rem := bytes - share*int64(len(ps))
	k := len(members)
	for i, p := range ps {
		b := share
		if i == 0 {
			b += rem
		}
		per := traffic.RingPerNodeBytes(b, k)
		for j := 0; j < k; j++ {
			tm.Add(members[j], members[(j+p)%k], per)
		}
	}
}

// mpMatrix widens the demand's MP matrix to the fabric's node count
// (switch fabrics have extra switch nodes).
func (f *Fabric) MPMatrix(dem traffic.Demand) traffic.Matrix {
	tm := traffic.NewMatrix(f.Net.G.N())
	for s := range dem.MP {
		for d, v := range dem.MP[s] {
			if v > 0 {
				tm.Add(s, d, v)
			}
		}
	}
	return tm
}

// maxStripes caps channel striping per transfer (NCCL-like).
const maxStripes = 8

// InjectMatrix adds one striped flow per nonzero matrix entry along the
// installed route, counting completions into the returned counter.
func (f *Fabric) InjectMatrix(sim *netsim.Sim, tm traffic.Matrix, pending *int, onDone func()) error {
	for s := range tm {
		for d, bytes := range tm[s] {
			if bytes == 0 || s == d {
				continue
			}
			nodes := f.Routes.Get(s, d)
			if nodes == nil {
				nodes = append([]int{}, s, d) // direct attempt; ResolveNodePath will fail if absent
			}
			*pending++
			_, err := sim.AddFlowNodesStriped(nodes, float64(bytes), maxStripes, func(float64) {
				*pending--
				if *pending == 0 && onDone != nil {
					onDone()
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
