package flexnet

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
)

// Evaluator scores a strategy: lower is better (iteration seconds). It
// must be deterministic (MCMC results are memoized by strategy
// fingerprint) and, when the search runs more than one chain worker
// (Parallelism > 1 and Workers != 1), safe for concurrent use. The
// evaluators flexnet itself builds (traffic.FromStrategy +
// EstimateIteration over an immutable Fabric) satisfy both.
type Evaluator func(parallel.Strategy) float64

// DefaultMCMCIters is the strategy-search budget applied whenever a
// caller leaves the iteration count unset (≤ 0). It is the single place
// the default lives: CoOptimize, SearchOnFabric and the public
// Optimize/Compare entry points all inherit it from MCMCSearch.
const DefaultMCMCIters = 200

// mcmcExchangePeriod is the epoch length: how many proposals each chain
// runs between best-so-far exchanges. It is a fixed constant (not derived
// from the worker count), so the exchange schedule — and therefore the
// result — depends only on (Seed, Iters, Parallelism).
const mcmcExchangePeriod = 25

// MaxParallelism bounds MCMCConfig.Parallelism (and the wire-level
// Options.Parallelism): chains beyond any plausible core count only cost
// memory, and the bound keeps a hostile planning request from allocating
// an unbounded chain array.
const MaxParallelism = 64

// MCMCConfig parameterizes the FlexFlow-style Markov-chain Monte Carlo
// search over parallelization strategies (§4.1 uses FlexFlow's search in
// the Comp.×Comm. plane).
type MCMCConfig struct {
	// Iters is the total proposal budget across all chains (default
	// DefaultMCMCIters). With Parallelism K it is split as evenly as
	// possible: chain i gets Iters/K proposals, the first Iters%K chains
	// one extra.
	Iters int
	Seed  int64
	// Temp is the initial Metropolis temperature as a fraction of the
	// initial cost (default 0.05). Temperature decays linearly to ~0 over
	// each chain's own budget.
	Temp float64
	// Ctx, when non-nil, is checked by every chain between its own
	// iterations: a cancelled or expired context stops all chains early
	// and the best strategy found so far is returned. The check sits
	// between iterations (never inside an evaluation), so it adds no cost
	// to the simulation hot path.
	Ctx context.Context
	// Parallelism is the number of independent chains K (default 1).
	// Each chain draws from its own rand.Source derived deterministically
	// from Seed, so the result depends only on (Seed, Iters, Parallelism)
	// — never on Workers, GOMAXPROCS or scheduling. K=1 reproduces the
	// original sequential chain exactly.
	Parallelism int
	// Workers bounds the goroutines that execute chain epochs (default
	// min(Parallelism, GOMAXPROCS)). Purely an execution hint: any value
	// produces byte-identical results. Services use it to keep
	// per-request search threads within a global budget.
	Workers int
	// Progress, when non-nil, is called at every epoch barrier with the
	// proposals consumed so far across all chains and the total budget:
	// (done, cfg.Iters), done monotonically increasing within one search.
	// Searches that never reach a barrier (a model with no shardable
	// layers resolves in the two canonical evaluations) report nothing. It runs on the goroutine driving the barrier
	// while no chain executes, so it may touch shared state without
	// synchronizing against the chains; it must be cheap — it sits
	// between every epoch. Purely observational: the search result is
	// identical with or without it.
	Progress func(done, total int)
	// Warm lists extra starting candidates evaluated alongside the
	// canonical hybrid and pure-DP starts: every chain begins from the
	// best of all starts, and the global argmin can be a warm candidate
	// itself. Callers replanning a related configuration (the fleet
	// simulator re-searching a job's strategy on a degraded fabric) seed
	// it with the previous plan so the search starts at a known-good
	// point instead of from scratch. Candidates that do not fit the
	// (model, n) pair are ignored; an empty slice reproduces the original
	// search proposal-for-proposal.
	Warm []parallel.Strategy
	// Patience, when > 0, stops the search once that many consecutive
	// epoch barriers pass without the global best improving — the early
	// exit that makes warm-started replans cheap: a search seeded at a
	// near-optimal point converges (stops proposing improvements) within
	// a few epochs and pays nothing for the rest of its budget. The
	// barrier schedule is fixed by (Iters, Parallelism), so early exit is
	// exactly as deterministic as the full run. Zero (the default) never
	// exits early and is byte-identical to the historical search.
	Patience int
	// OnWarmStart, when non-nil, is called once, before any chain runs,
	// whenever Warm contained at least one structurally fitting candidate.
	// adopted reports whether a warm candidate strictly beat the canonical
	// hybrid/DP starts and became the shared starting point. Purely
	// observational (telemetry counters).
	OnWarmStart func(adopted bool)
	// OnBest, when non-nil, receives the search's running global best:
	// once before any chain runs (the winning canonical or warm start)
	// and again at every epoch barrier where the global best improved.
	// Costs are therefore strictly decreasing across calls. The strategy
	// is a private clone; the callback runs on the barrier goroutine
	// while no chain executes, so it may touch shared state. Purely
	// observational: results are identical with or without it.
	OnBest func(s parallel.Strategy, cost float64)
}

// warmFits reports whether a warm-start candidate is structurally valid
// for the (model, n) pair being searched: candidates from a different
// shard size or model shape are silently skipped rather than crashing the
// evaluator on out-of-range hosts.
func warmFits(w parallel.Strategy, m *model.Model, n int) bool {
	return w.N == n && w.Validate(m) == nil
}

// mcmcChain is one independently-seeded Metropolis chain. Chains advance
// in epoch steps of mcmcExchangePeriod proposals; between epochs the
// engine merges their memo deltas into the shared store and runs the
// pull-only best exchange.
type mcmcChain struct {
	rng      *rand.Rand
	cur      parallel.Strategy
	curCost  float64
	best     parallel.Strategy
	bestCost float64
	t0       float64 // initial temperature (Temp × starting cost)
	iters    int     // this chain's share of the total budget
	done     int     // proposals consumed so far
	// delta holds evaluations made this epoch. It is chain-private while
	// chains run and merged into the shared store at the barrier, so
	// chains read the store without any synchronization.
	delta map[string]float64
}

// memoShards is the shard count of the shared memo store. Sharding keeps
// each underlying map small (cheaper rehash during barrier merges) and
// leaves room to parallelize the merge itself if it ever shows up in
// profiles.
const memoShards = 16

// memoStore is the strategy-fingerprint → cost cache shared by all
// chains. Reads are mutex-free: writes only happen at epoch barriers
// (merge) or before chains start (put), when no chain goroutine is
// running, and the barrier's WaitGroup establishes the happens-before
// edge for the next epoch's readers.
type memoStore struct {
	shards [memoShards]map[string]float64
}

func newMemoStore() *memoStore {
	ms := &memoStore{}
	for i := range ms.shards {
		ms.shards[i] = make(map[string]float64)
	}
	return ms
}

// memoShard hashes a fingerprint to its shard (FNV-1a).
func memoShard(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % memoShards)
}

func (ms *memoStore) get(key string) (float64, bool) {
	v, ok := ms.shards[memoShard(key)][key]
	return v, ok
}

// put inserts one entry. Only call while no chain is running.
func (ms *memoStore) put(key string, v float64) {
	ms.shards[memoShard(key)][key] = v
}

// merge folds a chain's epoch delta into the store. Only call at a
// barrier. Map iteration order is irrelevant: a fingerprint always maps
// to the same deterministic cost, whichever chain computed it.
func (ms *memoStore) merge(delta map[string]float64) {
	for k, v := range delta {
		ms.shards[memoShard(k)][k] = v
	}
}

// chainSeed derives chain i's rand.Source seed from the root seed using a
// splitmix64-style golden-ratio increment. chainSeed(root, 0) == root, so
// a single chain replays exactly the sequence the sequential search used.
func chainSeed(root int64, chain int) int64 {
	return int64(uint64(root) + uint64(chain)*0x9E3779B97F4A7C15)
}

// MCMCSearch explores layer-wise parallelization decisions starting from
// the hybrid strategy: proposals move a shard to another server, toggle a
// shardable layer between sharded and replicated, or swap two shard
// placements. With cfg.Parallelism = K > 1 the total budget is split
// across K independently-seeded chains that run concurrently on a bounded
// goroutine pool, share the evaluation memo, and exchange their
// best-so-far at epoch barriers (pull-only: a chain adopts the global
// best only when it strictly beats everything the chain has seen).
// Returns the global argmin over all chains and its cost; ties resolve to
// the lowest chain index, so the result is identical for any worker count
// or GOMAXPROCS setting.
func MCMCSearch(m *model.Model, n, batchPerGPU int, eval Evaluator, cfg MCMCConfig) (parallel.Strategy, float64) {
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultMCMCIters
	}
	if cfg.Temp <= 0 {
		cfg.Temp = 0.05
	}
	k := cfg.Parallelism
	if k <= 0 {
		k = 1
	}
	if k > MaxParallelism {
		k = MaxParallelism
	}

	// Evaluate the two canonical starting points once, shared by every
	// chain. (When the model has no shardable layers they coincide and
	// the fingerprint dedupes the second evaluation.)
	store := newMemoStore()
	hybrid := parallel.Hybrid(m, n)
	hybridCost := eval(hybrid)
	store.put(hybrid.Fingerprint(), hybridCost)
	// Also consider the pure-DP start; keep whichever is better (the
	// paper's final strategies are "either hybrid or pure data-parallel",
	// §5.1).
	dp := parallel.DataParallel(m, n)
	dpCost, ok := store.get(dp.Fingerprint())
	if !ok {
		dpCost = eval(dp)
		store.put(dp.Fingerprint(), dpCost)
	}

	best := hybrid.Clone()
	bestCost := hybridCost
	if dpCost < bestCost {
		best, bestCost = dp.Clone(), dpCost
	}
	// Warm-start candidates compete with the canonical starts on strictly
	// better cost, so with no (or unhelpful) candidates the search below is
	// proposal-for-proposal identical to the cold search.
	warmConsidered, warmAdopted := false, false
	for _, w := range cfg.Warm {
		if !warmFits(w, m, n) {
			continue
		}
		warmConsidered = true
		key := w.Fingerprint()
		c, ok := store.get(key)
		if !ok {
			c = eval(w)
			store.put(key, c)
		}
		if c < bestCost {
			best, bestCost = w.Clone(), c
			warmAdopted = true
		}
	}
	if warmConsidered && cfg.OnWarmStart != nil {
		cfg.OnWarmStart(warmAdopted)
	}
	if cfg.OnBest != nil {
		cfg.OnBest(best.Clone(), bestCost)
	}

	shardable := m.ShardableLayers()
	if len(shardable) == 0 {
		return best, bestCost
	}

	chains := make([]*mcmcChain, k)
	per, extra := cfg.Iters/k, cfg.Iters%k
	for i := range chains {
		c := &mcmcChain{
			rng:   rand.New(rand.NewSource(chainSeed(cfg.Seed, i))),
			iters: per,
			delta: make(map[string]float64),
		}
		if i < extra {
			c.iters++
		}
		// Every chain starts from the best known point — hybrid, pure DP
		// or a warm-start candidate (without warm candidates this is
		// exactly the historical hybrid-vs-DP selection).
		c.cur, c.curCost = best.Clone(), bestCost
		c.best, c.bestCost = c.cur.Clone(), c.curCost
		c.t0 = cfg.Temp * c.curCost
		chains[i] = c
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}

	run := func(c *mcmcChain) { c.runEpoch(n, shardable, eval, store, cfg) }
	active := make([]*mcmcChain, 0, k)
	// globalBest tracks the best cost seen across barriers for the
	// patience early exit and the OnBest stream; barren counts barriers
	// without improvement.
	globalBest := bestCost
	barren := 0
	for {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			break
		}
		active = active[:0]
		for _, c := range chains {
			if c.done < c.iters {
				active = append(active, c)
			}
		}
		if len(active) == 0 {
			break
		}
		runChainEpochs(active, workers, run)
		// Barrier reached: merge epoch deltas (chain order; values are
		// deterministic per key so the order cannot matter) and run the
		// pull-only exchange.
		for _, c := range chains {
			store.merge(c.delta)
			clear(c.delta)
		}
		g := chains[0]
		for _, c := range chains[1:] {
			if c.bestCost < g.bestCost {
				g = c
			}
		}
		for _, c := range chains {
			if g.bestCost < c.bestCost {
				c.cur, c.curCost = g.best.Clone(), g.bestCost
				c.best, c.bestCost = g.best.Clone(), g.bestCost
			}
		}
		if g.bestCost < globalBest {
			globalBest = g.bestCost
			barren = 0
			if cfg.OnBest != nil {
				cfg.OnBest(g.best.Clone(), g.bestCost)
			}
		} else {
			barren++
		}
		if cfg.Progress != nil {
			done := 0
			for _, c := range chains {
				done += c.done
			}
			cfg.Progress(done, cfg.Iters)
		}
		if cfg.Patience > 0 && barren >= cfg.Patience {
			break
		}
	}

	for _, c := range chains {
		if c.bestCost < bestCost {
			best, bestCost = c.best, c.bestCost
		}
	}
	return best, bestCost
}

// runChainEpochs executes one epoch for every active chain on at most
// `workers` goroutines and waits for all of them (the barrier). A single
// worker — the K=1 case, or a service that pinned the search to one
// thread — runs inline with zero goroutine overhead.
func runChainEpochs(active []*mcmcChain, workers int, run func(*mcmcChain)) {
	if workers > len(active) {
		workers = len(active)
	}
	if workers <= 1 {
		for _, c := range active {
			run(c)
		}
		return
	}
	work := make(chan *mcmcChain)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range work {
				run(c)
			}
		}()
	}
	for _, c := range active {
		work <- c
	}
	close(work)
	wg.Wait()
}

// runEpoch advances the chain by up to mcmcExchangePeriod proposals,
// stopping early when its budget is exhausted or cfg.Ctx is cancelled.
// The proposal/accept logic is exactly the original sequential search's,
// so one chain with the whole budget reproduces it move for move.
func (c *mcmcChain) runEpoch(n int, shardable []int, eval Evaluator, store *memoStore, cfg MCMCConfig) {
	// memoEval consults the chain's epoch delta, then the shared store
	// (read-only during the epoch), and only then pays for an evaluation.
	memoEval := func(s parallel.Strategy) float64 {
		key := s.Fingerprint()
		if v, ok := c.delta[key]; ok {
			return v
		}
		if v, ok := store.get(key); ok {
			return v
		}
		v := eval(s)
		c.delta[key] = v
		return v
	}

	stop := c.done + mcmcExchangePeriod
	if stop > c.iters {
		stop = c.iters
	}
	for ; c.done < stop; c.done++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return
		}
		prop := c.cur.Clone()
		li := shardable[c.rng.Intn(len(shardable))]
		switch c.rng.Intn(3) {
		case 0: // move shard (or shard a replicated layer) to a random host
			prop.PlaceShard(li, c.rng.Intn(n))
		case 1: // toggle
			if prop.Layers[li].Kind == parallel.Sharded {
				prop.Replicate(li)
			} else {
				prop.PlaceShard(li, c.rng.Intn(n))
			}
		case 2: // swap placements of two sharded layers
			lj := shardable[c.rng.Intn(len(shardable))]
			if prop.Layers[li].Kind == parallel.Sharded && prop.Layers[lj].Kind == parallel.Sharded {
				prop.Layers[li].Group, prop.Layers[lj].Group =
					prop.Layers[lj].Group, prop.Layers[li].Group
			} else {
				prop.PlaceShard(li, c.rng.Intn(n))
			}
		}
		propCost := memoEval(prop)
		temp := c.t0 * (1 - float64(c.done)/float64(c.iters))
		accept := propCost <= c.curCost
		if !accept && temp > 0 {
			accept = c.rng.Float64() < math.Exp((c.curCost-propCost)/temp)
		}
		if accept {
			c.cur, c.curCost = prop, propCost
			if c.curCost < c.bestCost {
				c.best, c.bestCost = c.cur.Clone(), c.curCost
			}
		}
	}
}
