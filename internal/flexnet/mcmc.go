package flexnet

import (
	"context"
	"math"
	"math/rand"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
)

// Evaluator scores a strategy: lower is better (iteration seconds).
type Evaluator func(parallel.Strategy) float64

// DefaultMCMCIters is the strategy-search budget applied whenever a
// caller leaves the iteration count unset (≤ 0). It is the single place
// the default lives: CoOptimize, SearchOnFabric and the public
// Optimize/Compare entry points all inherit it from MCMCSearch.
const DefaultMCMCIters = 200

// MCMCConfig parameterizes the FlexFlow-style Markov-chain Monte Carlo
// search over parallelization strategies (§4.1 uses FlexFlow's search in
// the Comp.×Comm. plane).
type MCMCConfig struct {
	// Iters is the proposal budget (default DefaultMCMCIters).
	Iters int
	Seed  int64
	// Temp is the initial Metropolis temperature as a fraction of the
	// initial cost (default 0.05). Temperature decays linearly to ~0.
	Temp float64
	// Ctx, when non-nil, is checked between iterations: a cancelled or
	// expired context stops the chain early and the best strategy found
	// so far is returned. The check sits between iterations (never inside
	// an evaluation), so it adds no cost to the simulation hot path.
	Ctx context.Context
}

// MCMCSearch explores layer-wise parallelization decisions starting from
// the hybrid strategy: proposals move a shard to another server, toggle a
// shardable layer between sharded and replicated, or swap two shard
// placements. Returns the best strategy found and its cost.
func MCMCSearch(m *model.Model, n, batchPerGPU int, eval Evaluator, cfg MCMCConfig) (parallel.Strategy, float64) {
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultMCMCIters
	}
	if cfg.Temp <= 0 {
		cfg.Temp = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Memoize evaluator results by strategy fingerprint: the chain
	// revisits states constantly (rejected proposals, toggles that undo
	// each other), and the evaluator is deterministic, so a revisit is a
	// map hit instead of a re-evaluation.
	memo := make(map[string]float64)
	rawEval := eval
	eval = func(s parallel.Strategy) float64 {
		key := s.Fingerprint()
		if c, ok := memo[key]; ok {
			return c
		}
		c := rawEval(s)
		memo[key] = c
		return c
	}

	cur := parallel.Hybrid(m, n)
	curCost := eval(cur)
	best := cur.Clone()
	bestCost := curCost

	// Also consider the pure-DP start; keep whichever is better (the
	// paper's final strategies are "either hybrid or pure data-parallel",
	// §5.1).
	dp := parallel.DataParallel(m, n)
	if c := eval(dp); c < bestCost {
		cur, curCost = dp.Clone(), c
		best, bestCost = dp, c
	}

	shardable := m.ShardableLayers()
	if len(shardable) == 0 {
		return best, bestCost
	}
	t0 := cfg.Temp * curCost
	for it := 0; it < cfg.Iters; it++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return best, bestCost
		}
		prop := cur.Clone()
		li := shardable[rng.Intn(len(shardable))]
		switch rng.Intn(3) {
		case 0: // move shard (or shard a replicated layer) to a random host
			prop.PlaceShard(li, rng.Intn(n))
		case 1: // toggle
			if prop.Layers[li].Kind == parallel.Sharded {
				prop.Replicate(li)
			} else {
				prop.PlaceShard(li, rng.Intn(n))
			}
		case 2: // swap placements of two sharded layers
			lj := shardable[rng.Intn(len(shardable))]
			if prop.Layers[li].Kind == parallel.Sharded && prop.Layers[lj].Kind == parallel.Sharded {
				prop.Layers[li].Group, prop.Layers[lj].Group =
					prop.Layers[lj].Group, prop.Layers[li].Group
			} else {
				prop.PlaceShard(li, rng.Intn(n))
			}
		}
		propCost := eval(prop)
		temp := t0 * (1 - float64(it)/float64(cfg.Iters))
		accept := propCost <= curCost
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curCost-propCost)/temp)
		}
		if accept {
			cur, curCost = prop, propCost
			if curCost < bestCost {
				best, bestCost = cur.Clone(), curCost
			}
		}
	}
	return best, bestCost
}
