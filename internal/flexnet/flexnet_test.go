package flexnet

import (
	"math"
	"testing"

	"topoopt/internal/core"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

func smallDLRM() *model.Model {
	return model.DLRM(model.DLRMConfig{BatchPerGPU: 64, DenseLayers: 4, DenseLayerSize: 1024,
		DenseFeatLayers: 4, FeatLayerSize: 1024, EmbedDim: 128, EmbedRows: 1e6, EmbedTables: 4})
}

func TestSwitchFabricRoutes(t *testing.T) {
	f := NewSwitchFabric(topo.IdealSwitch(8, 400e9))
	p := f.Routes.Get(0, 5)
	if len(p) != 3 || p[1] != 8 {
		t.Errorf("route 0->5 = %v, want via switch 8", p)
	}
}

func TestSimulateIterationIdealSwitchPureDP(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	n := 8
	st := parallel.DataParallel(m, n)
	dem, _ := traffic.FromStrategy(m, st, 10)
	f := NewSwitchFabric(topo.IdealSwitch(n, 400e9))
	res, err := SimulateIteration(f, dem, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.MPTime != 0 {
		t.Errorf("pure DP should have no MP phase, got %g", res.MPTime)
	}
	if res.ComputeTime != 0.01 {
		t.Errorf("compute time %g, want 0.01", res.ComputeTime)
	}
	// Ring-AllReduce on an ideal switch: each server sends 2(n-1)/n·S
	// through its 400 Gbps uplink (up and down) → analytic bound.
	per := float64(traffic.RingPerNodeBytes(m.TotalParamBytes(), n))
	analytic := per * 8 / 400e9
	if res.AllReduceTime < analytic*0.99 {
		t.Errorf("AllReduce %g below analytic floor %g", res.AllReduceTime, analytic)
	}
	if res.AllReduceTime > analytic*2.5 {
		t.Errorf("AllReduce %g far above analytic floor %g (uplink+downlink ≤ 2x)", res.AllReduceTime, analytic)
	}
	if res.Total() != res.MPTime+res.ComputeTime+res.AllReduceTime {
		t.Error("Total inconsistent")
	}
}

func TestSimulateIterationTopoOptUsesMultiRing(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	n := 12
	st := parallel.DataParallel(m, n)
	dem, _ := traffic.FromStrategy(m, st, 10)
	tf, err := core.TopologyFinder(core.Config{N: n, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	f := NewTopoOptFabric(tf)
	res, err := SimulateIteration(f, dem, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With 4 rings at 100 Gbps each, AllReduce should beat a single-ring
	// rendering on one 100 Gbps interface by roughly the ring count.
	oneRing := float64(traffic.RingPerNodeBytes(m.TotalParamBytes(), n)) * 8 / 100e9
	if res.AllReduceTime > oneRing*0.5 {
		t.Errorf("multi-ring AllReduce %g not enough faster than single ring %g",
			res.AllReduceTime, oneRing)
	}
	if res.BandwidthTax < 1 {
		t.Errorf("bandwidth tax %g < 1", res.BandwidthTax)
	}
}

func TestEstimateTracksSimulation(t *testing.T) {
	// The analytic estimate should be within ~2x of the simulated time for
	// a simple fabric (it ignores queueing interactions but both measure
	// bottleneck-link time).
	m := smallDLRM()
	n := 16
	st := parallel.Hybrid(m, n)
	dem, _ := traffic.FromStrategy(m, st, 64)
	tf, err := core.TopologyFinder(core.Config{N: n, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	f := NewTopoOptFabric(tf)
	sim, err := SimulateIteration(f, dem, 0)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateIteration(f, dem, 0)
	ratio := sim.Total() / est
	if ratio < 0.4 || ratio > 4 {
		t.Errorf("estimate %g vs simulation %g (ratio %g) diverge", est, sim.Total(), ratio)
	}
}

func TestEstimateInfiniteWhenDisconnected(t *testing.T) {
	nw := topo.DirectConnect(4, [][2]int{{0, 1}}, 100e9)
	f := NewSwitchFabric(nw)
	dem := traffic.Demand{N: 4, MP: traffic.NewMatrix(4)}
	dem.MP.Add(2, 3, 1000)
	est := EstimateIteration(f, dem, 0)
	// 2->3 unroutable: LinkLoads skips pairs with no route, so the
	// phase contributes nothing; estimate stays finite but the full
	// simulation errors instead.
	_ = est
	if _, err := SimulateIteration(f, dem, 0); err == nil {
		t.Error("simulation should fail on unroutable demand")
	}
}

func TestMCMCImprovesOverHybridOnBadPlacement(t *testing.T) {
	// Evaluator that punishes shards on servers != 0: MCMC should learn to
	// either replicate everything or pile shards near 0.
	m := smallDLRM()
	n := 8
	eval := func(s parallel.Strategy) float64 {
		cost := 1.0
		for _, li := range s.ShardedLayers() {
			for _, h := range s.Layers[li].Group {
				cost += float64(h)
			}
		}
		return cost
	}
	st, c := MCMCSearch(m, n, 64, eval, MCMCConfig{Iters: 500, Seed: 1})
	if err := st.Validate(m); err != nil {
		t.Fatal(err)
	}
	if c > eval(parallel.Hybrid(m, n)) {
		t.Errorf("MCMC cost %g worse than hybrid start %g", c, eval(parallel.Hybrid(m, n)))
	}
}

func TestMCMCDeterministicForSeed(t *testing.T) {
	m := smallDLRM()
	eval := func(s parallel.Strategy) float64 {
		return float64(len(s.ShardedLayers()) + 1)
	}
	_, c1 := MCMCSearch(m, 8, 64, eval, MCMCConfig{Iters: 100, Seed: 7})
	_, c2 := MCMCSearch(m, 8, 64, eval, MCMCConfig{Iters: 100, Seed: 7})
	if c1 != c2 {
		t.Errorf("non-deterministic MCMC: %g vs %g", c1, c2)
	}
}

func TestMCMCNoShardableLayers(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	st, _ := MCMCSearch(m, 8, 10, func(parallel.Strategy) float64 { return 1 },
		MCMCConfig{Iters: 50, Seed: 1})
	if !st.IsPureDataParallel() {
		t.Error("CANDLE should stay pure data parallel")
	}
}

func TestCoOptimizeDLRM(t *testing.T) {
	m := smallDLRM()
	res, err := CoOptimize(m, CoOptConfig{
		N: 16, Degree: 4, LinkBW: 100e9, Rounds: 2, MCMCIters: 60, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Strategy.Validate(m); err != nil {
		t.Fatal(err)
	}
	if !res.Topo.Network.G.Connected() {
		t.Error("final topology disconnected")
	}
	if res.IterTime.Total() <= 0 {
		t.Error("iteration time must be positive")
	}
	if len(res.History) < 1 {
		t.Error("history empty")
	}
	// History should be non-increasing at the accepted points (best-so-far
	// semantics mean the final config is at least as good as round 0).
	if res.History[len(res.History)-1] > res.History[0]*1.001 &&
		len(res.History) > 1 {
		// Converged-and-broke case keeps the earlier best; only assert the
		// chosen config is ≤ round 0.
		best := math.Inf(1)
		for _, h := range res.History {
			if h < best {
				best = h
			}
		}
		if best > res.History[0] {
			t.Errorf("alternating optimization worsened: %v", res.History)
		}
	}
}

func TestCoOptimizeBeatsCostEquivalentFatTree(t *testing.T) {
	// The headline claim (§5.3, at a shape level): TopoOpt with d=4×B
	// beats a similar-cost Fat-tree whose per-server bandwidth is d×B'
	// with B' < B. Use B=100G for TopoOpt vs 100G total for Fat-tree
	// (i.e. B'=25G), a generous approximation of the cost parity in §5.2.
	m := model.CANDLEPreset(model.Sec6)
	n := 16
	topoRes, err := CoOptimize(m, CoOptConfig{
		N: n, Degree: 4, LinkBW: 100e9, Rounds: 1, MCMCIters: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft := NewSwitchFabric(topo.FatTree(n, 100e9))
	_, ftIter, err := SearchOnFabric(m, ft, n, 0, MCMCConfig{Iters: 30, Seed: 1}, model.GPU{})
	if err != nil {
		t.Fatal(err)
	}
	if topoRes.IterTime.Total() >= ftIter.Total() {
		t.Errorf("TopoOpt %g should beat cost-equivalent Fat-tree %g",
			topoRes.IterTime.Total(), ftIter.Total())
	}
}

func TestRingsForFallsBackToPlusOne(t *testing.T) {
	f := NewSwitchFabric(topo.IdealSwitch(4, 1e9))
	ps := f.ringsFor([]int{0, 1, 2, 3})
	if len(ps) != 1 || ps[0] != 1 {
		t.Errorf("fallback rings = %v, want [1]", ps)
	}
}

func TestSameMembers(t *testing.T) {
	if !sameMembers([]int{1, 2, 3}, []int{3, 1, 2}) {
		t.Error("permuted sets should match")
	}
	if sameMembers([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("different sizes should not match")
	}
	if sameMembers([]int{1, 1, 2}, []int{1, 2, 2}) {
		t.Error("multiset mismatch should not match")
	}
}
