package flexnet

import (
	"sync/atomic"
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
)

// countingEval wraps an evaluator and counts genuine evaluations (memo
// misses), the unit the patience early exit is supposed to save.
func countingEval(eval Evaluator, calls *atomic.Int64) Evaluator {
	return func(s parallel.Strategy) float64 {
		calls.Add(1)
		return eval(s)
	}
}

// gradientEval is a synthetic deterministic evaluator with a long
// downhill path: every sharded layer prefers host ((7·li+5) mod n) — a
// target far from the canonical hybrid's round-robin placement, with
// distance-proportional cost so roughly half of all random placements
// improve — and every replicated layer pays a flat penalty. On the
// paper's real fabrics the canonical hybrid start is already
// (near-)optimal — the search confirms rather than improves it — so
// exercising the improvement machinery (OnBest streaming, warm adoption)
// needs a landscape with real descent.
func gradientEval(n int) Evaluator {
	return func(s parallel.Strategy) float64 {
		cost := 1.0
		for li, ls := range s.Layers {
			if ls.Kind != parallel.Sharded {
				cost += float64(n)
				continue
			}
			for _, h := range ls.Group {
				d := (h - 7*li - 5) % n
				if d < 0 {
					d += n
				}
				cost += float64(d)
			}
		}
		return cost
	}
}

// TestMCMCPatienceDeterministic: the early exit depends only on barrier
// state, so a patience run is identical across worker counts and
// repeats, like every other search configuration.
func TestMCMCPatienceDeterministic(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	n := 12
	eval := fabricEval(t, m, n)
	warm, _ := MCMCSearch(m, n, 0, eval, MCMCConfig{Iters: 200, Seed: 11})
	for _, k := range []int{1, 4} {
		cfg := MCMCConfig{Iters: 400, Seed: 11, Parallelism: k,
			Warm: []parallel.Strategy{warm}, Patience: 3}
		base, baseCost := MCMCSearch(m, n, 0, eval, cfg)
		for _, workers := range []int{1, 3, 8} {
			cfg.Workers = workers
			st, c := MCMCSearch(m, n, 0, eval, cfg)
			if c != baseCost || st.Fingerprint() != base.Fingerprint() {
				t.Errorf("K=%d workers=%d: patience run diverged (%g vs %g)", k, workers, c, baseCost)
			}
		}
	}
}

// TestMCMCWarmPatienceEqualBudgetQuality is the warm≥cold quality gate
// (run by `make bench-smoke`): at the same proposal budget, a search
// warm-started from a neighbor's converged plan with the patience early
// exit must match or beat the cold search on every pinned config — and,
// at the service's default single chain, spend at most half the
// evaluations doing it: the ≥2x replan saving the similarity index is
// built on. (At K>1 a barrier spans K×25 proposals, so patience
// granularity coarsens and only the quality half of the gate applies.)
// Deterministic seeds make this a stable pin, not a statistical claim.
func TestMCMCWarmPatienceEqualBudgetQuality(t *testing.T) {
	cases := []struct {
		name string
		m    *model.Model
		n    int
	}{
		{"dlrm-sec6", model.DLRMPreset(model.Sec6), 12},
		{"dlrm-small", smallDLRM(), 8},
	}
	for _, tc := range cases {
		eval := fabricEval(t, tc.m, tc.n)
		for _, seed := range []int64{1, 7, 42} {
			// The neighbor: a converged plan from a nearby configuration
			// (here: the same search at another seed, the worst case — a
			// real neighbor differs in batch or degree, not in optimum).
			neighbor, _ := MCMCSearch(tc.m, tc.n, 0, eval, MCMCConfig{Iters: 400, Seed: seed + 1000})
			for _, k := range []int{1, 4} {
				var coldN, warmN atomic.Int64
				_, cold := MCMCSearch(tc.m, tc.n, 0, countingEval(eval, &coldN), MCMCConfig{
					Iters: 400, Seed: seed, Parallelism: k,
				})
				_, warmC := MCMCSearch(tc.m, tc.n, 0, countingEval(eval, &warmN), MCMCConfig{
					Iters: 400, Seed: seed, Parallelism: k,
					Warm: []parallel.Strategy{neighbor}, Patience: 3,
				})
				if warmC > cold {
					t.Errorf("%s seed=%d K=%d: warm cost %g worse than cold %g",
						tc.name, seed, k, warmC, cold)
				}
				if k == 1 && 2*warmN.Load() > coldN.Load() {
					t.Errorf("%s seed=%d: warm search spent %d evals, cold %d — want ≥2x saving",
						tc.name, seed, warmN.Load(), coldN.Load())
				}
			}
		}
	}
}

// TestMCMCOnBestMonotone: the OnBest stream starts at the chosen start
// point, strictly improves, and ends at the returned result — the
// contract the anytime jobs API surfaces as `partial`.
func TestMCMCOnBestMonotone(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	n := 12
	eval := gradientEval(n)
	var costs []float64
	var fps []string
	st, c := MCMCSearch(m, n, 0, eval, MCMCConfig{
		Iters: 400, Seed: 7, Parallelism: 4,
		OnBest: func(s parallel.Strategy, cost float64) {
			costs = append(costs, cost)
			fps = append(fps, s.Fingerprint())
		},
	})
	if len(costs) < 3 {
		t.Fatalf("gradient landscape produced only %d OnBest calls, want several improvements", len(costs))
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Errorf("OnBest cost %g at %d not strictly below previous %g", costs[i], i, costs[i-1])
		}
	}
	last := len(costs) - 1
	if costs[last] != c || fps[last] != st.Fingerprint() {
		t.Errorf("final OnBest (%g) differs from returned result (%g)", costs[last], c)
	}
}

// TestMCMCOnWarmStartCallback pins the warm telemetry seam: fired once
// with adopted=true when a candidate wins the start, adopted=false when
// considered but beaten, and not at all when nothing fits.
func TestMCMCOnWarmStartCallback(t *testing.T) {
	m := model.DLRMPreset(model.Sec56)
	n := 8
	eval := gradientEval(n)
	// The gradient optimum: every shardable layer on its target host —
	// strictly better than the canonical hybrid's round-robin placement.
	good := parallel.Hybrid(m, n)
	for _, li := range m.ShardableLayers() {
		good.PlaceShard(li, (7*li+5)%n)
	}
	record := func(cfg MCMCConfig) (calls int, adopted bool) {
		cfg.OnWarmStart = func(a bool) { calls++; adopted = a }
		MCMCSearch(m, n, 0, eval, cfg)
		return
	}
	if calls, adopted := record(MCMCConfig{Iters: 1, Seed: 1, Warm: []parallel.Strategy{good}}); calls != 1 || !adopted {
		t.Errorf("better candidate: calls=%d adopted=%v, want 1/true", calls, adopted)
	}
	// The canonical hybrid start ties rather than strictly beating itself.
	if calls, adopted := record(MCMCConfig{Iters: 1, Seed: 1, Warm: []parallel.Strategy{parallel.Hybrid(m, n)}}); calls != 1 || adopted {
		t.Errorf("tying candidate: calls=%d adopted=%v, want 1/false", calls, adopted)
	}
	misfit := parallel.Hybrid(m, 16)
	if calls, _ := record(MCMCConfig{Iters: 1, Seed: 1, Warm: []parallel.Strategy{misfit}}); calls != 0 {
		t.Errorf("misfit-only Warm: callback fired %d times, want 0", calls)
	}
}
