package flexnet

import (
	"testing"

	"topoopt/internal/core"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

func ocsDemand(t *testing.T, n int) traffic.Demand {
	t.Helper()
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: 64, DenseLayers: 2, DenseLayerSize: 1024,
		DenseFeatLayers: 2, FeatLayerSize: 1024, EmbedDim: 128, EmbedRows: 1e6, EmbedTables: 8})
	st := parallel.Hybrid(m, n)
	dem, err := traffic.FromStrategy(m, st, 64)
	if err != nil {
		t.Fatal(err)
	}
	return dem
}

func TestOCSIterationCompletes(t *testing.T) {
	dem := ocsDemand(t, 8)
	cfg := OCSRunConfig{N: 8, D: 4, LinkBW: 100e9, ReconfigLatency: 10e-3,
		MeasureInterval: 0.050, HostForwarding: true}
	tm, err := SimulateOCSIteration(cfg, dem, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0.001 {
		t.Errorf("iteration time %g should exceed compute time", tm)
	}
}

func TestReconfigLatencyMonotone(t *testing.T) {
	// Figure 17 shape: higher reconfiguration latency → slower iteration.
	dem := ocsDemand(t, 8)
	prev := 0.0
	for _, lat := range []float64{1e-6, 100e-6, 1e-3, 10e-3} {
		cfg := OCSRunConfig{N: 8, D: 4, LinkBW: 100e9, ReconfigLatency: lat,
			MeasureInterval: 0.050, HostForwarding: true}
		tm, err := SimulateOCSIteration(cfg, dem, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tm < prev {
			t.Errorf("latency %g: iteration %g faster than at lower latency %g", lat, tm, prev)
		}
		prev = tm
	}
}

func TestOCSLowLatencyApproachesTopoOpt(t *testing.T) {
	// At 1 µs reconfiguration, OCS-reconfig-noFW should be in the same
	// ballpark as the one-shot TopoOpt fabric (§5.7).
	dem := ocsDemand(t, 8)
	cfg := OCSRunConfig{N: 8, D: 4, LinkBW: 100e9, ReconfigLatency: 1e-6,
		MeasureInterval: 0.050, HostForwarding: false}
	ocsTime, err := SimulateOCSIteration(cfg, dem, 0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := core.TopologyFinder(core.Config{N: 8, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	topoTime, err := SimulateIteration(NewTopoOptFabric(tf), dem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ocsTime > topoTime.Total()*5 {
		t.Errorf("1µs OCS %g too far from TopoOpt %g", ocsTime, topoTime.Total())
	}
}

func TestOCSNoFWBlockedWithoutCircuitsEventuallyProgresses(t *testing.T) {
	// All-to-all demand with degree 1: only one circuit per node per
	// round, but successive rounds rotate circuits so everything drains.
	n := 4
	dem := traffic.Demand{N: n, MP: traffic.NewMatrix(n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				dem.MP.Add(i, j, 1e6)
			}
		}
	}
	cfg := OCSRunConfig{N: n, D: 1, LinkBW: 100e9, ReconfigLatency: 1e-5,
		MeasureInterval: 0.001, HostForwarding: false}
	tm, err := SimulateOCSIteration(cfg, dem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("should take time")
	}
}

func TestSiPMLVariantRuns(t *testing.T) {
	// SiP-ML per Appendix F: unit discount, 25 µs reconfiguration, noFW.
	dem := ocsDemand(t, 8)
	cfg := OCSRunConfig{N: 8, D: 4, LinkBW: 100e9, ReconfigLatency: 25e-6,
		MeasureInterval: 0.050, HostForwarding: false, Discount: core.UnitDiscount}
	tm, err := SimulateOCSIteration(cfg, dem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("SiP-ML variant should take time")
	}
}
