package flexnet

import (
	"math/rand"
	"testing"

	"topoopt/internal/core"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// fullEval is the reference evaluator DeltaEval must reproduce
// bit-for-bit: the closure CoOptimize and SearchOnFabric historically
// handed to MCMC.
func fullEval(fab *Fabric, m *model.Model, batch int, gpu model.GPU) Evaluator {
	return func(s parallel.Strategy) float64 {
		d, err := traffic.FromStrategy(m, s, batch)
		if err != nil {
			return inf
		}
		return EstimateIteration(fab, d, s.MaxComputeTime(m, gpu, batch))
	}
}

// topoOptFabric builds a TopologyFinder fabric (rings + coin-change
// routes, the hardest rendering path) for the hybrid demand.
func topoOptFabric(t *testing.T, m *model.Model, n, degree int) *Fabric {
	t.Helper()
	dem, err := traffic.FromStrategy(m, parallel.Hybrid(m, n), m.BatchPerGPU)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := core.TopologyFinder(core.Config{N: n, D: degree, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	return NewTopoOptFabric(tf)
}

// TestDeltaEvalGoldenIdentity is the golden pin: over a long random walk
// of MCMC-style proposals — plus consumer-set changes, misfit and
// invalid strategies — the incremental evaluator returns the exact
// float64 the full evaluation returns, on every fabric family.
func TestDeltaEvalGoldenIdentity(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	n := 12
	fabrics := map[string]*Fabric{
		"ideal-switch": NewSwitchFabric(topo.IdealSwitch(n, 400e9)),
		"fat-tree":     NewSwitchFabric(topo.FatTree(n, 25e9)),
		"topoopt":      topoOptFabric(t, m, n, 4),
	}
	shardable := m.ShardableLayers()
	for name, fab := range fabrics {
		t.Run(name, func(t *testing.T) {
			full := fullEval(fab, m, m.BatchPerGPU, model.A100)
			de := NewDeltaEval(m, fab, m.BatchPerGPU, model.A100)
			rng := rand.New(rand.NewSource(7))
			cur := parallel.Hybrid(m, n)
			check := func(s parallel.Strategy, what string) {
				t.Helper()
				got, want := de.Eval(s), full(s)
				if got != want {
					t.Fatalf("%s: delta eval %v != full eval %v", what, got, want)
				}
			}
			check(cur, "hybrid start")
			for i := 0; i < 400; i++ {
				prop := cur.Clone()
				li := shardable[rng.Intn(len(shardable))]
				switch rng.Intn(6) {
				case 0:
					prop.PlaceShard(li, rng.Intn(n))
				case 1:
					if prop.Layers[li].Kind == parallel.Sharded {
						prop.Replicate(li)
					} else {
						prop.PlaceShard(li, rng.Intn(n))
					}
				case 2:
					lj := shardable[rng.Intn(len(shardable))]
					prop.Layers[li].Group, prop.Layers[lj].Group =
						prop.Layers[lj].Group, prop.Layers[li].Group
				case 3: // multi-host shard group
					a, b := rng.Intn(n), rng.Intn(n)
					if a == b {
						b = (b + 1) % n
					}
					prop.PlaceShard(li, a, b)
				case 4: // shrink a replica group (changes the consumers set)
					members := make([]int, 0, n-1)
					skip := rng.Intn(n)
					for v := 0; v < n; v++ {
						if v != skip {
							members = append(members, v)
						}
					}
					for lj := range prop.Layers {
						if prop.Layers[lj].Kind == parallel.Replicated {
							prop.Replicate(lj, members...)
						}
					}
				case 5: // whole-strategy jumps: DP, shard-scoped hybrid
					if rng.Intn(2) == 0 {
						prop = parallel.DataParallel(m, n)
					} else {
						prop = parallel.HybridOn(m, n, []int{1, 3, 5, 7})
					}
				}
				check(prop, "proposal")
				if rng.Intn(4) != 0 { // usually adopt, sometimes re-diff from cur
					cur = prop
				}
			}
			// Invalid strategies must come back inf without corrupting the
			// incumbent state for subsequent evaluations.
			bad := cur.Clone()
			bad.Layers[shardable[0]] = parallel.LayerStrategy{Kind: parallel.Sharded, Group: []int{n + 3}}
			check(bad, "out-of-range host")
			dup := cur.Clone()
			dup.Replicate(shardable[0], 2, 2)
			check(dup, "duplicate member")
			empty := cur.Clone()
			empty.Layers[shardable[0]] = parallel.LayerStrategy{Kind: parallel.Sharded}
			check(empty, "empty group")
			wrongShape := parallel.Hybrid(model.VGGPreset(model.Sec56), n)
			check(wrongShape, "wrong layer count")
			check(cur, "recovery after invalid")
		})
	}
}

// TestDeltaEvalSearchIdentity pins the end-to-end swap: MCMCSearch with
// the delta evaluator returns the identical strategy and cost as with
// the full closure, cold and warm, single- and multi-chain.
func TestDeltaEvalSearchIdentity(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	n := 12
	fab := NewSwitchFabric(topo.FatTree(n, 25e9))
	full := fullEval(fab, m, m.BatchPerGPU, model.A100)
	warm, _ := MCMCSearch(m, n, 0, full, MCMCConfig{Iters: 100, Seed: 5})
	for _, cfg := range []MCMCConfig{
		{Iters: 200, Seed: 11},
		{Iters: 200, Seed: 11, Parallelism: 4},
		{Iters: 200, Seed: 11, Warm: []parallel.Strategy{warm}, Patience: 3},
	} {
		s1, c1 := MCMCSearch(m, n, 0, full, cfg)
		de := NewDeltaEval(m, fab, m.BatchPerGPU, model.A100)
		s2, c2 := MCMCSearch(m, n, 0, de.Eval, cfg)
		if c1 != c2 || s1.Fingerprint() != s2.Fingerprint() {
			t.Errorf("cfg %+v: delta-eval search diverged: %g vs %g", cfg, c1, c2)
		}
	}
}
