package flexnet

import (
	"context"
	"fmt"

	"topoopt/internal/core"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

// CoOptConfig parameterizes the alternating optimization of §4.1.
type CoOptConfig struct {
	N      int
	Degree int
	LinkBW float64
	// Batch overrides the model's default per-GPU batch when > 0.
	Batch int
	// Rounds is the hyper-parameter k: alternations between the
	// Comp.×Comm. and Comm.×Topo. planes (default 3).
	Rounds int
	// MCMCIters per round (≤ 0 inherits DefaultMCMCIters via MCMCSearch).
	MCMCIters int
	Seed      int64
	PrimeOnly bool
	GPU       model.GPU
	// Parallelism is the number of MCMC chains per search round (K).
	// Semantic: results depend deterministically on (Seed, Parallelism)
	// and on nothing else. Default 1 — the original sequential search.
	Parallelism int
	// SearchWorkers bounds the goroutines running those chains. A pure
	// execution hint (any value yields identical results); services use
	// it to keep per-request search threads within a global budget.
	// Default min(Parallelism, GOMAXPROCS).
	SearchWorkers int
	// Progress, when non-nil, receives per-epoch search progress
	// (MCMCConfig.Progress) from every round's strategy search. done
	// restarts from zero at each round boundary; observers that want a
	// cumulative count across rounds accumulate deltas themselves.
	Progress func(done, total int)
	// Warm seeds every round's strategy search with extra starting
	// candidates (MCMCConfig.Warm): a near-miss service request passes
	// its nearest cached neighbor's strategy here. Empty reproduces the
	// cold search exactly.
	Warm []parallel.Strategy
	// Patience is MCMCConfig.Patience for every round's search: > 0
	// stops a round once that many consecutive epoch barriers pass
	// without improvement. Zero never exits early.
	Patience int
	// OnWarmStart is MCMCConfig.OnWarmStart, fired from the first round
	// only — later rounds re-seed from the alternation, so round 0 is
	// the request-level warm-start verdict telemetry wants.
	OnWarmStart func(adopted bool)
	// OnBest is MCMCConfig.OnBest for every round's search. Costs are
	// strictly decreasing within one round but can jump between rounds
	// (each round estimates on its own candidate fabric); anytime
	// consumers that need a monotone stream enforce it at the sink.
	OnBest func(s parallel.Strategy, cost float64)
}

// CoOptResult is the converged strategy + topology pair.
type CoOptResult struct {
	Strategy parallel.Strategy
	Topo     *core.Result
	Fabric   *Fabric
	Demand   traffic.Demand
	// IterTime is the flow-level simulated iteration time of the final
	// configuration.
	IterTime IterationResult
	// History records the estimated iteration time after each round.
	History []float64
}

// CoOptimize runs TopoOpt's alternating optimization: search strategies on
// the current topology (MCMC with the fast estimator), hand the resulting
// demand to TopologyFinder, feed the topology back, and repeat until the
// estimate stops improving or Rounds is exhausted.
func CoOptimize(m *model.Model, cfg CoOptConfig) (*CoOptResult, error) {
	return CoOptimizeContext(context.Background(), m, cfg)
}

// CoOptimizeContext is CoOptimize with cancellation: ctx is polled between
// MCMC iterations, between alternating-optimization rounds and before the
// final flow-level simulation. Cancellation never interrupts a simulation
// in flight, so every fabric's cached simulator is left in a completed,
// reusable state and the hot path pays nothing for the plumbing.
func CoOptimizeContext(ctx context.Context, m *model.Model, cfg CoOptConfig) (*CoOptResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.GPU.PeakFLOPS == 0 {
		cfg.GPU = model.A100
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = m.BatchPerGPU
	}
	tfCfg := core.Config{N: cfg.N, D: cfg.Degree, LinkBW: cfg.LinkBW, PrimeOnly: cfg.PrimeOnly}

	// Round 0: topology for the default hybrid strategy.
	st := parallel.Hybrid(m, cfg.N)
	dem, err := traffic.FromStrategy(m, st, batch)
	if err != nil {
		return nil, err
	}
	tf, err := core.TopologyFinder(tfCfg, dem)
	if err != nil {
		return nil, err
	}
	fab := NewTopoOptFabric(tf)

	best := &CoOptResult{Strategy: st, Topo: tf, Fabric: fab, Demand: dem}
	bestCost := EstimateIteration(fab, dem, st.MaxComputeTime(m, cfg.GPU, batch))
	best.History = append(best.History, bestCost)

	for round := 0; round < cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Incremental evaluation: MCMC proposals differ from their chain's
		// incumbent in one or two layers, so the delta evaluator patches
		// link loads instead of rebuilding demand + routing per proposal.
		// Bit-identical to the closure it replaced (see DeltaEval).
		de := NewDeltaEval(m, best.Fabric, batch, cfg.GPU)
		var onWarm func(bool)
		if round == 0 {
			onWarm = cfg.OnWarmStart
		}
		st, _ := MCMCSearch(m, cfg.N, batch, de.Eval, MCMCConfig{
			Iters:       cfg.MCMCIters,
			Seed:        cfg.Seed + int64(round),
			Ctx:         ctx,
			Parallelism: cfg.Parallelism,
			Workers:     cfg.SearchWorkers,
			Progress:    cfg.Progress,
			Warm:        cfg.Warm,
			Patience:    cfg.Patience,
			OnWarmStart: onWarm,
			OnBest:      cfg.OnBest,
		})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dem, err := traffic.FromStrategy(m, st, batch)
		if err != nil {
			return nil, err
		}
		tf, err := core.TopologyFinder(tfCfg, dem)
		if err != nil {
			return nil, err
		}
		fab := NewTopoOptFabric(tf)
		cost := EstimateIteration(fab, dem, st.MaxComputeTime(m, cfg.GPU, batch))
		best.History = append(best.History, cost)
		if cost < bestCost {
			bestCost = cost
			best.Strategy, best.Topo, best.Fabric, best.Demand = st, tf, fab, dem
		} else {
			break // converged
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, err := SimulateIteration(best.Fabric, best.Demand,
		best.Strategy.MaxComputeTime(m, cfg.GPU, batch))
	if err != nil {
		return nil, fmt.Errorf("flexnet: final simulation: %w", err)
	}
	best.IterTime = it
	return best, nil
}

// SearchOnFabric finds the best strategy for a fixed fabric (the
// topology-aware search used for Ideal Switch, Fat-tree, Oversub, SiP-ML
// and Expander baselines, §5.1) and simulates its iteration. The search
// budget, seed and chain parallelism come from mc (mc.Ctx is ignored;
// use SearchOnFabricContext for cancellation).
func SearchOnFabric(m *model.Model, fab *Fabric, n, batch int, mc MCMCConfig, gpu model.GPU) (parallel.Strategy, IterationResult, error) {
	return SearchOnFabricContext(context.Background(), m, fab, n, batch, mc, gpu)
}

// SearchOnFabricContext is SearchOnFabric with cancellation, polled
// between MCMC iterations (per chain) and before the final simulation.
func SearchOnFabricContext(ctx context.Context, m *model.Model, fab *Fabric, n, batch int, mc MCMCConfig, gpu model.GPU) (parallel.Strategy, IterationResult, error) {
	if gpu.PeakFLOPS == 0 {
		gpu = model.A100
	}
	if batch <= 0 {
		batch = m.BatchPerGPU
	}
	de := NewDeltaEval(m, fab, batch, gpu)
	mc.Ctx = ctx
	st, _ := MCMCSearch(m, n, batch, de.Eval, mc)
	if err := ctx.Err(); err != nil {
		return st, IterationResult{}, err
	}
	dem, err := traffic.FromStrategy(m, st, batch)
	if err != nil {
		return st, IterationResult{}, err
	}
	it, err := SimulateIteration(fab, dem, st.MaxComputeTime(m, gpu, batch))
	return st, it, err
}
