package flexnet

import (
	"fmt"

	"topoopt/internal/core"
	"topoopt/internal/netsim"
	"topoopt/internal/route"
	"topoopt/internal/traffic"
)

// OCSRunConfig parameterizes the OCS-reconfig architecture (§5.1): a
// reconfigurable direct-connect fabric that re-optimizes circuits from
// the instantaneous unsatisfied demand every MeasureInterval, paying
// ReconfigLatency of dark time per reconfiguration (§5.7 sweeps this from
// 1 µs to 10 ms).
type OCSRunConfig struct {
	N               int
	D               int
	LinkBW          float64
	ReconfigLatency float64
	// MeasureInterval is the demand sampling period (the paper uses
	// 50 ms following SiP-ML).
	MeasureInterval float64
	// HostForwarding enables multi-hop relaying over the instantaneous
	// topology (OCS-reconfig-FW); without it only directly connected
	// pairs make progress (OCS-reconfig-noFW / SiP-ML style).
	HostForwarding bool
	// Discount is Algorithm 5's parallel-link utility discount; nil means
	// the paper's exponential. core.UnitDiscount reproduces SiP-ML's
	// formulation (Appendix F).
	Discount core.DiscountFunc
}

// SimulateOCSIteration runs one training iteration (MP phase → compute →
// AllReduce phase) on a reconfigurable fabric: each round reconfigures to
// the residual demand, then transfers for up to MeasureInterval on the
// frozen topology. Returns the iteration time.
func SimulateOCSIteration(cfg OCSRunConfig, dem traffic.Demand, computeTime float64) (float64, error) {
	if cfg.MeasureInterval <= 0 {
		cfg.MeasureInterval = 0.050
	}
	mp := traffic.NewMatrix(cfg.N)
	for s := range dem.MP {
		for d, v := range dem.MP[s] {
			mp.Add(s, d, v)
		}
	}
	ar := traffic.NewMatrix(cfg.N)
	for _, g := range dem.Groups {
		if len(g.Members) < 2 {
			continue
		}
		per := traffic.RingPerNodeBytes(g.Bytes, len(g.Members))
		for i, m := range g.Members {
			ar.Add(m, g.Members[(i+1)%len(g.Members)], per)
		}
	}
	t1, err := drainOnReconfigurable(cfg, mp)
	if err != nil {
		return 0, err
	}
	t2, err := drainOnReconfigurable(cfg, ar)
	if err != nil {
		return 0, err
	}
	return t1 + computeTime + t2, nil
}

// drainOnReconfigurable transfers the demand matrix to completion over
// successive reconfiguration rounds and returns the elapsed time.
func drainOnReconfigurable(cfg OCSRunConfig, demand traffic.Matrix) (float64, error) {
	remaining := demand.Clone()
	elapsed := 0.0
	// One simulator for all rounds: each round's topology differs, but
	// Reset re-targets the warm buffers at the new graph.
	var sim *netsim.Sim
	const maxRounds = 100000
	for round := 0; round < maxRounds; round++ {
		if remaining.Total() == 0 {
			return elapsed, nil
		}
		// Reconfigure to the residual demand (Algorithm 5) and pay the
		// dark time.
		nw := core.OCSReconfig(cfg.N, cfg.D, cfg.LinkBW,
			core.DemandFromMatrix(remaining), cfg.Discount, cfg.HostForwarding)
		elapsed += cfg.ReconfigLatency

		tbl := route.NewTable(cfg.N)
		if cfg.HostForwarding {
			tbl.FillShortestPaths(nw.G)
		} else {
			for s := 0; s < cfg.N; s++ {
				for d := 0; d < cfg.N; d++ {
					if s != d && nw.G.HasEdge(s, d) {
						tbl.Set(s, d, []int{s, d})
					}
				}
			}
		}
		if sim == nil {
			sim = netsim.New(nw.G, -1)
		} else {
			sim.Reset(nw.G, -1)
		}
		type key struct{ s, d int }
		flows := make(map[key][]*netsim.Flow)
		progressed := false
		for s := 0; s < cfg.N; s++ {
			for d := 0; d < cfg.N; d++ {
				if remaining[s][d] == 0 || s == d {
					continue
				}
				nodes := tbl.Get(s, d)
				if nodes == nil {
					continue // blocked this round (noFW without a circuit)
				}
				fs, err := sim.AddFlowNodesStriped(nodes, float64(remaining[s][d]), 0, nil)
				if err != nil {
					return 0, err
				}
				flows[key{s, d}] = fs
				progressed = true
			}
		}
		if !progressed {
			return 0, fmt.Errorf("flexnet: reconfigurable fabric made no progress (demand %d bytes)", remaining.Total())
		}
		end := sim.Run(cfg.MeasureInterval)
		elapsed += end
		for k, fs := range flows {
			left := 0.0
			for _, f := range fs {
				left += f.Remaining
			}
			if int64(left) < remaining[k.s][k.d] {
				remaining[k.s][k.d] = int64(left)
			}
		}
	}
	return 0, fmt.Errorf("flexnet: demand did not drain within round budget")
}
