// Package core implements the paper's contribution: the TOPOLOGY FINDER
// algorithm (Algorithm 1) that builds a direct-connect topology and routing
// for a training job's traffic demand, the OCS-reconfig heuristic
// (Algorithm 5), and the alternating-optimization glue used by flexnet.
//
// Interface accounting follows the optical reality of §3: one server
// interface is a transceiver whose TX and RX fibers are patched
// independently, so a "+p" ring consumes exactly one interface per member
// (TX to i+p, RX from i-p) and the topology is a directed multigraph with
// out-degree (and, by construction, in-degree) at most d per server. MP
// matching edges allocate one interface at each endpoint in both
// directions.
package core

import (
	"fmt"
	"math"
	"sort"

	"topoopt/internal/graph"
	"topoopt/internal/perm"
	"topoopt/internal/route"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// Config parameterizes TopologyFinder.
type Config struct {
	// N is the number of dedicated servers.
	N int
	// D is the degree (interfaces) per server.
	D int
	// LinkBW is per-interface bandwidth in bits/s.
	LinkBW float64
	// PrimeOnly restricts TotientPerms candidates to 1 and primes (the
	// paper's large-scale variant).
	PrimeOnly bool
	// KShortest is the number of alternative MP paths to compute
	// (Algorithm 1 line 20); values < 1 default to 2.
	KShortest int
}

// GroupRings records the ring permutations selected for one AllReduce
// group.
type GroupRings struct {
	Members []int
	Ps      []int
	Bytes   int64
}

// Result is TopologyFinder's output: the topology (as a directed
// multigraph wrapped in a Network), per-group AllReduce permutations,
// and the routing table covering AllReduce (coin-change) and MP
// (k-shortest-path) transfers.
type Result struct {
	Network *topo.Network
	Rings   []GroupRings
	Routes  *route.Table
	// MPPaths holds the k-shortest alternatives per MP pair for
	// load-spreading in the simulator.
	MPPaths map[[2]int][][]int
	// DegreeAllReduce and DegreeMP are the degree split of Algorithm 1
	// lines 2–3.
	DegreeAllReduce int
	DegreeMP        int
}

// TopologyFinder runs Algorithm 1 on the given demand.
func TopologyFinder(cfg Config, dem traffic.Demand) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("core: need at least 2 servers, got %d", cfg.N)
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("core: need degree >= 1, got %d", cfg.D)
	}
	if dem.N != cfg.N {
		return nil, fmt.Errorf("core: demand for %d servers, config for %d", dem.N, cfg.N)
	}
	if cfg.KShortest < 1 {
		cfg.KShortest = 2
	}

	// Step 1: distribute degree between AllReduce and MP (lines 2–3).
	sumAR := float64(dem.TotalAllReduceBytes())
	sumMP := float64(dem.TotalMPBytes())
	dA := cfg.D
	if sumAR+sumMP > 0 {
		dA = int(math.Ceil(float64(cfg.D) * sumAR / (sumAR + sumMP)))
	}
	if dA < 1 {
		dA = 1
	}
	if dA > cfg.D {
		dA = cfg.D
	}
	// Guarantee MP transfers at least one degree when some MP pair is not
	// covered by any AllReduce group (it could otherwise be unreachable).
	// MP pairs inside a group's span can always ride the group's rings
	// via coin-change forwarding, so no reservation is needed there —
	// this is what lets the §2.1 example devote all three interfaces to
	// the +1/+3/+7 rings.
	if dA == cfg.D && cfg.D >= 2 && hasUncoveredMP(dem) {
		dA = cfg.D - 1
	}
	dMP := cfg.D - dA

	g := graph.New(cfg.N)
	res := &Result{
		Routes:          route.NewTable(cfg.N),
		MPPaths:         make(map[[2]int][][]int),
		DegreeAllReduce: dA,
		DegreeMP:        dMP,
	}

	// Step 2: AllReduce sub-topology (lines 4–11). Groups are processed
	// largest-traffic first so degree exhaustion cuts the cheapest groups.
	groups := append([]traffic.Group(nil), dem.Groups...)
	sort.SliceStable(groups, func(i, j int) bool {
		return groupVolume(groups[i]) > groupVolume(groups[j])
	})
	var totalGroupVol float64
	for _, grp := range groups {
		totalGroupVol += groupVolume(grp)
	}
	remaining := dA
	// Algorithm 1 line 2 allocates "at least one degree to the AllReduce
	// sub-topology to ensure the network remains connected". When no
	// group spans all servers (subset-only hybrid parallelism), honor
	// that guarantee explicitly: spend the first degree on a spanning
	// "+1" ring before dividing the rest among groups.
	// Only the largest group is guaranteed a ring (degree may run out
	// before later groups), so the spanning test must look at it alone.
	spans := len(groups) > 0 && len(groups[0].Members) == cfg.N
	if !spans && remaining > 0 {
		all := make([]int, cfg.N)
		for i := range all {
			all[i] = i
		}
		res.Rings = append(res.Rings, GroupRings{Members: all, Ps: []int{1}})
		for _, e := range perm.Ring(all, 1) {
			g.AddEdge(e.From, e.To, cfg.LinkBW)
		}
		remaining--
	}
	for _, grp := range groups {
		if remaining <= 0 {
			break
		}
		k := len(grp.Members)
		if k < 2 {
			continue
		}
		dk := remaining
		if totalGroupVol > 0 {
			dk = int(math.Ceil(float64(dA) * groupVolume(grp) / totalGroupVol))
		}
		if dk > remaining {
			dk = remaining
		}
		if dk < 1 {
			dk = 1
		}
		cands := perm.TotientPerms(k, cfg.PrimeOnly)
		ps := perm.SelectPermutations(k, dk, cands)
		if len(ps) == 0 {
			continue
		}
		// When the group is small enough that φ(k) < dk, reuse
		// permutations as parallel rings rather than stranding
		// interfaces: duplicate links double the ring's bandwidth and
		// the collective stripes across them.
		base := append([]int(nil), ps...)
		for i := 0; len(ps) < dk; i++ {
			ps = append(ps, base[i%len(base)])
		}
		remaining -= len(ps)
		res.Rings = append(res.Rings, GroupRings{
			Members: append([]int(nil), grp.Members...),
			Ps:      ps,
			Bytes:   grp.Bytes,
		})
		for _, p := range ps {
			for _, e := range perm.Ring(grp.Members, p) {
				g.AddEdge(e.From, e.To, cfg.LinkBW)
			}
		}
	}
	// Ensure connectivity even when no AllReduce group exists (pure model
	// parallelism): fall back to a +1 ring over all servers (line 2
	// reserves at least one degree for this).
	if len(res.Rings) == 0 {
		all := make([]int, cfg.N)
		for i := range all {
			all[i] = i
		}
		res.Rings = append(res.Rings, GroupRings{Members: all, Ps: []int{1}})
		for _, e := range perm.Ring(all, 1) {
			g.AddEdge(e.From, e.To, cfg.LinkBW)
		}
	}

	// Step 3: MP sub-topology (lines 12–17). Repeated maximum-weight
	// matching on the symmetrized residual MP demand, halving matched
	// pairs' demand each round (diminishing-return discount).
	if dMP > 0 && sumMP > 0 {
		resid := make([][]float64, cfg.N)
		for i := range resid {
			resid[i] = make([]float64, cfg.N)
		}
		for s := 0; s < cfg.N; s++ {
			for d := 0; d < cfg.N; d++ {
				if s < d {
					resid[s][d] = float64(dem.MP[s][d] + dem.MP[d][s])
				}
			}
		}
		for round := 0; round < dMP; round++ {
			var edges []graph.MatchEdge
			for s := 0; s < cfg.N; s++ {
				for d := s + 1; d < cfg.N; d++ {
					if resid[s][d] > 0 {
						edges = append(edges, graph.MatchEdge{U: s, V: d, Weight: resid[s][d]})
					}
				}
			}
			if len(edges) == 0 {
				break
			}
			mate := graph.MaxWeightMatching(cfg.N, edges, false)
			matched := false
			for v, u := range mate {
				if u > v {
					g.AddEdge(v, u, cfg.LinkBW)
					g.AddEdge(u, v, cfg.LinkBW)
					resid[v][u] /= 2
					matched = true
				}
			}
			if !matched {
				break
			}
		}
	}

	// Step 4: final topology and routing (lines 18–20).
	// Connectivity fallback: join residual components with spare
	// interfaces (mirrors the failure-recovery behaviour of §7).
	connectComponents(g, cfg)
	res.Network = &topo.Network{G: g, Hosts: cfg.N, ForwardingHosts: true, Name: "TopoOpt"}

	// Coin-change routes per AllReduce group (within group members, using
	// group-local indices). Coins are exactly the selected p values: rings
	// are directed, so there is no free reverse hop (Algorithm 4).
	for _, gr := range res.Rings {
		k := len(gr.Members)
		if k < 2 {
			continue
		}
		cc, err := route.NewCoinChange(k, gr.Ps, false)
		if err != nil {
			return nil, fmt.Errorf("core: coin change for group %v: %w", gr.Ps, err)
		}
		for si := 0; si < k; si++ {
			for di := 0; di < k; di++ {
				if si == di {
					continue
				}
				src, dst := gr.Members[si], gr.Members[di]
				if res.Routes.Get(src, dst) != nil {
					continue // an earlier (larger) group already routed this pair
				}
				local := cc.Route(si, di)
				nodes := make([]int, len(local))
				for i, li := range local {
					nodes[i] = gr.Members[li]
				}
				res.Routes.Set(src, dst, nodes)
			}
		}
	}

	// MP routes: k-shortest paths on the combined topology for every pair
	// with MP demand; the primary path goes into the table, alternatives
	// into MPPaths.
	for s := 0; s < cfg.N; s++ {
		for d := 0; d < cfg.N; d++ {
			if s == d || dem.MP[s][d] == 0 {
				continue
			}
			paths := route.KShortest(g, s, d, cfg.KShortest)
			if len(paths) == 0 {
				return nil, fmt.Errorf("core: no MP path %d -> %d", s, d)
			}
			res.MPPaths[[2]int{s, d}] = paths
			// MP routes take priority over coin-change detours when the
			// combined topology offers a shorter path.
			if cur := res.Routes.Get(s, d); cur == nil || len(paths[0]) < len(cur) {
				res.Routes.Set(s, d, paths[0])
			}
		}
	}
	// Complete the table so host-based forwarding can serve any residual
	// pair (control traffic, multi-group AllReduce spill-over).
	res.Routes.FillShortestPaths(g)
	return res, nil
}

// connectComponents joins weakly connected components, first with duplex
// links on nodes that still have spare TX/RX interfaces, then — when the
// fragments are saturated (e.g. a subset AllReduce group absorbed the
// whole ring budget at small d) — by cross-swapping one intra-component
// edge from each side (a→b, c→d becomes a→d, c→b), which bridges the
// components while preserving every node's interface count.
func connectComponents(g *graph.Graph, cfg Config) {
	for iter := 0; iter < cfg.N; iter++ {
		comp := components(g, cfg.N)
		if comp.count <= 1 {
			return
		}
		a, b := -1, -1
		for v := 0; v < cfg.N; v++ {
			if comp.id[v] == comp.id[0] && g.OutDegree(v) < cfg.D {
				a = v
				break
			}
		}
		for v := 0; v < cfg.N; v++ {
			if comp.id[v] != comp.id[0] && g.OutDegree(v) < cfg.D {
				b = v
				break
			}
		}
		if a != -1 && b != -1 {
			g.AddEdge(a, b, cfg.LinkBW)
			g.AddEdge(b, a, cfg.LinkBW)
			continue
		}
		// Saturated: two-edge replacement across the first boundary.
		other := -1
		for v := 0; v < cfg.N; v++ {
			if comp.id[v] != comp.id[0] {
				other = comp.id[v]
				break
			}
		}
		var e1, e2 *graph.Edge
		for _, e := range g.Edges() {
			e := e
			if comp.id[e.From] == comp.id[0] && comp.id[e.To] == comp.id[0] && e1 == nil {
				e1 = &e
			}
			if comp.id[e.From] == other && comp.id[e.To] == other && e2 == nil {
				e2 = &e
			}
		}
		if e1 == nil || e2 == nil {
			return // an isolated node with no interfaces at all: give up
		}
		crossSwap(g, e1.ID, e2.ID)
	}
}

// hasUncoveredMP reports whether some MP pair with demand lies outside
// every AllReduce group's member set.
func hasUncoveredMP(dem traffic.Demand) bool {
	if dem.MP == nil {
		return false
	}
	memberOf := make([]map[int]bool, len(dem.Groups))
	for i, g := range dem.Groups {
		memberOf[i] = make(map[int]bool, len(g.Members))
		for _, v := range g.Members {
			memberOf[i][v] = true
		}
	}
	for s := range dem.MP {
		for d, v := range dem.MP[s] {
			if v == 0 || s == d {
				continue
			}
			covered := false
			for i := range memberOf {
				if memberOf[i][s] && memberOf[i][d] {
					covered = true
					break
				}
			}
			if !covered {
				return true
			}
		}
	}
	return false
}

func groupVolume(g traffic.Group) float64 {
	k := len(g.Members)
	if k < 2 {
		return 0
	}
	return float64(k) * float64(traffic.RingPerNodeBytes(g.Bytes, k))
}

// MaxOutDegree returns the maximum server out-degree of the result's
// topology — must be ≤ cfg.D + (0 or the MP duplex allowance).
func (r *Result) MaxOutDegree() int {
	max := 0
	for v := 0; v < r.Network.Hosts; v++ {
		if d := r.Network.G.OutDegree(v); d > max {
			max = d
		}
	}
	return max
}
