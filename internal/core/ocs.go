package core

import (
	"sort"

	"topoopt/internal/graph"
	"topoopt/internal/topo"
)

// DiscountFunc scales the utility of the l-th parallel link between a node
// pair (Equation 1/2 of Appendix E.4).
type DiscountFunc func(l int) float64

// ExponentialDiscount is the paper's default: the l-th parallel link is
// worth 2^-l of the demand (Σ_{x=1..l} 2^-x over all allocated links).
func ExponentialDiscount(l int) float64 {
	return 1.0 / float64(int64(1)<<uint(l))
}

// UnitDiscount gives every parallel link full utility — the SiP-ML-like
// variant of Appendix F (Discount = 1).
func UnitDiscount(int) float64 { return 1 }

// OCSReconfig runs the Algorithm 5 heuristic: greedily allocate direct
// links to the highest-demand node pairs, discounting repeated pairs,
// until interfaces run out; then patch connectivity with a two-edge
// replacement pass (host-based forwarding requires a connected fabric).
//
// demand is the unsatisfied traffic matrix in bytes (demand[i][j] ≥ 0,
// need not be symmetric). Returns a direct-connect Network with directed
// degree d per node.
func OCSReconfig(n, d int, linkBW float64, demand [][]float64, discount DiscountFunc, ensureConnected bool) *topo.Network {
	if discount == nil {
		discount = ExponentialDiscount
	}
	g := graph.New(n)
	availTx := make([]int, n)
	availRx := make([]int, n)
	for i := range availTx {
		availTx[i] = d
		availRx[i] = d
	}
	// Residual demand, scaled down by the discount as parallel links are
	// added (T(v1,v2) ×= discount ratio; with the exponential discount the
	// residual simply halves).
	resid := make([][]float64, n)
	for i := range resid {
		resid[i] = make([]float64, n)
		copy(resid[i], demand[i])
	}
	type pair struct {
		v1, v2 int
	}
	nLinks := make(map[pair]int)
	for {
		// Highest-demand pair with available interfaces.
		best := pair{-1, -1}
		bestVal := 0.0
		for v1 := 0; v1 < n; v1++ {
			if availTx[v1] == 0 {
				continue
			}
			for v2 := 0; v2 < n; v2++ {
				if v1 == v2 || availRx[v2] == 0 {
					continue
				}
				if resid[v1][v2] > bestVal {
					bestVal = resid[v1][v2]
					best = pair{v1, v2}
				}
			}
		}
		if best.v1 == -1 || bestVal == 0 {
			break
		}
		g.AddEdge(best.v1, best.v2, linkBW)
		l := nLinks[best] + 1
		nLinks[best] = l
		// Scale residual demand by the marginal discount ratio.
		resid[best.v1][best.v2] *= discount(l+1) / discount(l)
		availTx[best.v1]--
		availRx[best.v2]--
	}
	if ensureConnected {
		twoEdgeReplacement(g, n, linkBW, availTx, availRx)
	}
	return &topo.Network{G: g, Hosts: n, ForwardingHosts: true, Name: "OCS-reconfig"}
}

// twoEdgeReplacement connects the fabric (Algorithm 5 line 21, after
// OWAN): first spend leftover interfaces joining components; if none are
// left, replace a parallel link inside one component with a cross-
// component link.
func twoEdgeReplacement(g *graph.Graph, n int, linkBW float64, availTx, availRx []int) {
	for iter := 0; iter < n; iter++ {
		comp := components(g, n)
		if comp.count <= 1 {
			return
		}
		// Pick representatives of two different components, preferring
		// nodes with spare interfaces.
		a, b := -1, -1
		for v := 0; v < n; v++ {
			if comp.id[v] != comp.id[0] {
				b = v
				break
			}
		}
		if b == -1 {
			return
		}
		for v := 0; v < n; v++ {
			if comp.id[v] == comp.id[0] && availTx[v] > 0 {
				a = v
				break
			}
		}
		if a != -1 && availRx[b] > 0 {
			g.AddEdge(a, b, linkBW)
			g.AddEdge(b, a, linkBW)
			availTx[a]--
			availRx[b]--
			if availRx[a] > 0 && availTx[b] > 0 {
				availRx[a]--
				availTx[b]--
			}
			continue
		}
		// No spare ports: classic two-edge replacement (after OWAN).
		// Prefer sacrificing a parallel (multiplicity ≥ 2) link; otherwise
		// cross-swap one edge from each component:
		// (a→b in A, c→d in B) becomes (a→d, c→b), preserving per-node
		// TX/RX counts while bridging the components both ways.
		replaced := false
		for _, e := range g.Edges() {
			if comp.id[e.From] != comp.id[0] {
				continue
			}
			if g.Multiplicity(e.From, e.To) >= 2 {
				rewire(g, e.ID, e.From, b)
				replaced = true
				break
			}
		}
		if !replaced {
			var e1, e2 *graph.Edge
			for _, e := range g.Edges() {
				e := e
				if comp.id[e.From] == comp.id[0] && comp.id[e.To] == comp.id[0] && e1 == nil {
					e1 = &e
				}
				if comp.id[e.From] == comp.id[b] && comp.id[e.To] == comp.id[b] && e2 == nil {
					e2 = &e
				}
			}
			if e1 == nil || e2 == nil {
				return // isolated node with no spare ports: give up
			}
			crossSwap(g, e1.ID, e2.ID)
			replaced = true
		}
	}
}

// crossSwap rewires edges (a→b) and (c→d) into (a→d) and (c→b).
func crossSwap(g *graph.Graph, id1, id2 int) {
	edges := g.Edges()
	e1, e2 := edges[id1], edges[id2]
	fresh := graph.New(g.N())
	for _, e := range edges {
		switch e.ID {
		case id1:
			fresh.AddEdge(e1.From, e2.To, e.Cap)
		case id2:
			fresh.AddEdge(e2.From, e1.To, e.Cap)
		default:
			fresh.AddEdge(e.From, e.To, e.Cap)
		}
	}
	*g = *fresh
}

type compInfo struct {
	id    []int
	count int
}

// components labels weakly connected components (directed edges treated as
// undirected for reachability).
func components(g *graph.Graph, n int) compInfo {
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	count := 0
	for v := 0; v < n; v++ {
		if id[v] != -1 {
			continue
		}
		queue := []int{v}
		id[v] = count
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, eid := range g.Out(u) {
				w := g.Edge(eid).To
				if id[w] == -1 {
					id[w] = count
					queue = append(queue, w)
				}
			}
			for _, eid := range g.In(u) {
				w := g.Edge(eid).From
				if id[w] == -1 {
					id[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return compInfo{id: id, count: count}
}

// rewire retargets edge id from (from -> oldTo) to (from -> newTo). The
// graph package has no edge removal, so we rebuild; n is small enough that
// this simple approach is fine for a 50 ms reconfiguration cadence.
func rewire(g *graph.Graph, edgeID, from, newTo int) {
	edges := g.Edges()
	fresh := graph.New(g.N())
	for _, e := range edges {
		if e.ID == edgeID {
			fresh.AddEdge(from, newTo, e.Cap)
			continue
		}
		fresh.AddEdge(e.From, e.To, e.Cap)
	}
	*g = *fresh
}

// DemandFromMatrix converts an int64 traffic matrix into the float demand
// Algorithm 5 consumes.
func DemandFromMatrix(tm [][]int64) [][]float64 {
	out := make([][]float64, len(tm))
	for i, row := range tm {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = float64(v)
		}
	}
	return out
}

// TopPairs returns the k highest-demand ordered pairs (for tests and
// debugging).
func TopPairs(demand [][]float64, k int) [][2]int {
	type pv struct {
		p [2]int
		v float64
	}
	var all []pv
	for i := range demand {
		for j, v := range demand[i] {
			if i != j && v > 0 {
				all = append(all, pv{[2]int{i, j}, v})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].v != all[b].v {
			return all[a].v > all[b].v
		}
		return all[a].p[0]*len(demand)+all[a].p[1] < all[b].p[0]*len(demand)+all[b].p[1]
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].p
	}
	return out
}
