package core

import (
	"math/rand"
	"testing"
)

func uniformDemand(n int, v float64) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = v
			}
		}
	}
	return d
}

func TestOCSReconfigDegreeBound(t *testing.T) {
	n, d := 16, 4
	rng := rand.New(rand.NewSource(3))
	dem := make([][]float64, n)
	for i := range dem {
		dem[i] = make([]float64, n)
		for j := range dem[i] {
			if i != j {
				dem[i][j] = rng.Float64() * 1e9
			}
		}
	}
	nw := OCSReconfig(n, d, 100e9, dem, ExponentialDiscount, true)
	for v := 0; v < n; v++ {
		if nw.G.OutDegree(v) > d {
			t.Errorf("node %d out-degree %d > %d", v, nw.G.OutDegree(v), d)
		}
		if nw.G.InDegree(v) > d {
			t.Errorf("node %d in-degree %d > %d", v, nw.G.InDegree(v), d)
		}
	}
	if !nw.G.Connected() {
		t.Error("fabric should be connected after two-edge replacement")
	}
}

func TestOCSReconfigServesTopDemand(t *testing.T) {
	n := 8
	dem := uniformDemand(n, 1)
	dem[2][5] = 1e12 // dominant pair
	nw := OCSReconfig(n, 2, 100e9, dem, ExponentialDiscount, false)
	if !nw.G.HasEdge(2, 5) {
		t.Error("dominant pair should get a direct link")
	}
}

func TestOCSReconfigDiscountLimitsParallelLinks(t *testing.T) {
	n := 4
	dem := uniformDemand(n, 3)
	dem[0][1] = 10 // heavy but should not absorb all 4 interfaces
	nwExp := OCSReconfig(n, 4, 1e9, dem, ExponentialDiscount, false)
	nwUnit := OCSReconfig(n, 4, 1e9, dem, UnitDiscount, false)
	if nwExp.G.Multiplicity(0, 1) >= nwUnit.G.Multiplicity(0, 1) {
		t.Errorf("exponential discount (%d links) should allocate fewer parallel links than unit (%d)",
			nwExp.G.Multiplicity(0, 1), nwUnit.G.Multiplicity(0, 1))
	}
}

func TestOCSReconfigEmptyDemand(t *testing.T) {
	nw := OCSReconfig(6, 2, 1e9, uniformDemand(6, 0), nil, false)
	if nw.G.M() != 0 {
		t.Errorf("no demand should build no links, got %d", nw.G.M())
	}
}

func TestOCSReconfigConnectivityRepair(t *testing.T) {
	// Demand that naturally forms two cliques.
	n := 8
	dem := make([][]float64, n)
	for i := range dem {
		dem[i] = make([]float64, n)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				dem[i][j] = 1e9
				dem[i+4][j+4] = 1e9
			}
		}
	}
	nw := OCSReconfig(n, 3, 1e9, dem, ExponentialDiscount, true)
	if !nw.G.Connected() {
		t.Error("two-clique demand should be connected after repair")
	}
	nwNo := OCSReconfig(n, 3, 1e9, dem, ExponentialDiscount, false)
	if nwNo.G.Connected() {
		t.Log("note: fabric connected even without repair (matching spill)")
	}
}

func TestDemandFromMatrix(t *testing.T) {
	tm := [][]int64{{0, 5}, {7, 0}}
	d := DemandFromMatrix(tm)
	if d[0][1] != 5 || d[1][0] != 7 {
		t.Errorf("conversion wrong: %v", d)
	}
}

func TestTopPairs(t *testing.T) {
	dem := uniformDemand(4, 1)
	dem[1][3] = 50
	dem[2][0] = 40
	top := TopPairs(dem, 2)
	if top[0] != [2]int{1, 3} || top[1] != [2]int{2, 0} {
		t.Errorf("TopPairs = %v", top)
	}
	if got := len(TopPairs(dem, 100)); got != 12 {
		t.Errorf("TopPairs clamp = %d, want 12", got)
	}
}

func TestDiscountFunctions(t *testing.T) {
	if ExponentialDiscount(1) != 0.5 || ExponentialDiscount(2) != 0.25 {
		t.Error("exponential discount values wrong")
	}
	if UnitDiscount(7) != 1 {
		t.Error("unit discount should always be 1")
	}
}
