package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topoopt/internal/traffic"
)

// randomDemand builds a random but well-formed demand: one or two
// AllReduce groups plus sparse MP traffic.
func randomDemand(rng *rand.Rand, n int) traffic.Demand {
	dem := traffic.Demand{N: n, MP: traffic.NewMatrix(n)}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	switch rng.Intn(3) {
	case 0: // one full group
		dem.Groups = []traffic.Group{{Members: all, Bytes: 1 + rng.Int63n(1e9)}}
	case 1: // full group + subset group
		half := append([]int(nil), all[:n/2]...)
		dem.Groups = []traffic.Group{
			{Members: all, Bytes: 1 + rng.Int63n(1e9)},
			{Members: half, Bytes: 1 + rng.Int63n(1e8)},
		}
	case 2: // no AllReduce at all
	}
	pairs := rng.Intn(3 * n)
	for i := 0; i < pairs; i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			dem.MP.Add(s, d, 1+rng.Int63n(1e8))
		}
	}
	return dem
}

// Property: for any well-formed demand, TopologyFinder produces a
// degree-bounded topology where every demanded pair is routable over
// existing links, and at least one degree goes to AllReduce.
func TestTopologyFinderInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(29)
		d := 1 + rng.Intn(6)
		dem := randomDemand(rng, n)
		res, err := TopologyFinder(Config{N: n, D: d, LinkBW: 100e9}, dem)
		if err != nil {
			t.Logf("seed %d (n=%d d=%d): %v", seed, n, d, err)
			return false
		}
		for v := 0; v < n; v++ {
			if res.Network.G.OutDegree(v) > d || res.Network.G.InDegree(v) > d {
				t.Logf("seed %d: degree bound violated at %d", seed, v)
				return false
			}
		}
		if res.DegreeAllReduce < 1 {
			return false
		}
		// Every demanded pair routable over real links.
		check := func(s, dd int) bool {
			nodes := res.Routes.Get(s, dd)
			if nodes == nil {
				return false
			}
			for i := 0; i+1 < len(nodes); i++ {
				if !res.Network.G.HasEdge(nodes[i], nodes[i+1]) {
					return false
				}
			}
			return true
		}
		for s := 0; s < n; s++ {
			for dd := 0; dd < n; dd++ {
				if s == dd || dem.MP[s][dd] == 0 {
					continue
				}
				if !check(s, dd) {
					t.Logf("seed %d: MP pair %d->%d unroutable", seed, s, dd)
					return false
				}
			}
		}
		for _, g := range dem.Groups {
			for _, a := range g.Members {
				for _, bb := range g.Members {
					if a != bb && !check(a, bb) {
						t.Logf("seed %d: group pair %d->%d unroutable", seed, a, bb)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ring permutations selected by TopologyFinder are always valid
// generators (coprime with group size) and within degree budget.
func TestTopologyFinderRingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		d := 1 + rng.Intn(8)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		dem := traffic.Demand{N: n, MP: traffic.NewMatrix(n),
			Groups: []traffic.Group{{Members: all, Bytes: 1e9}}}
		res, err := TopologyFinder(Config{N: n, D: d, LinkBW: 1e9}, dem)
		if err != nil {
			return false
		}
		total := 0
		for _, gr := range res.Rings {
			total += len(gr.Ps)
			for _, p := range gr.Ps {
				if gcd(p, len(gr.Members)) != 1 {
					return false
				}
			}
		}
		return total <= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
