package core

import (
	"fmt"

	"topoopt/internal/graph"
	"topoopt/internal/route"
	"topoopt/internal/topo"
)

// FailLink handles a fiber failure (§7, "Handling failures"): the failed
// directed link is removed from the topology and all routes are
// recomputed over the survivors. When the failed link belonged to an
// AllReduce ring and borrowMP is set, one MP link between the same pair
// (if any) is conceptually re-dedicated to the ring — in graph terms the
// parallel link already carries the traffic, so recovery amounts to
// rerouting; if no path remains between the endpoints the failure is
// reported as partitioning.
//
// It returns a new Result sharing the demand-independent fields; the
// original is left untouched so the caller can compare before/after.
func FailLink(res *Result, from, to int, borrowMP bool) (*Result, error) {
	g := res.Network.G
	// Find one directed edge from->to to fail.
	failed := -1
	for _, id := range g.Out(from) {
		if g.Edge(id).To == to {
			failed = id
			break
		}
	}
	if failed == -1 {
		return nil, fmt.Errorf("core: no link %d -> %d to fail", from, to)
	}
	// Rebuild the graph without the failed edge.
	ng := graph.New(g.N())
	for _, e := range g.Edges() {
		if e.ID == failed {
			continue
		}
		ng.AddEdge(e.From, e.To, e.Cap)
	}
	if !borrowMP && !ng.Connected() {
		return nil, fmt.Errorf("core: failure of %d->%d partitions the fabric", from, to)
	}
	if borrowMP && !ng.Connected() {
		// Permanent-failure path: reconfigure to swap ports — reconnect
		// the components with a fresh duplex link on the failed pair's
		// spare interfaces (the paper's patch-panel swap).
		ng.AddEdge(from, to, res.Network.G.Edge(failed).Cap)
		ng.AddEdge(to, from, res.Network.G.Edge(failed).Cap)
	}
	nres := &Result{
		Network:         &topo.Network{G: ng, Hosts: res.Network.Hosts, ForwardingHosts: true, Name: res.Network.Name},
		Rings:           res.Rings,
		MPPaths:         res.MPPaths,
		DegreeAllReduce: res.DegreeAllReduce,
		DegreeMP:        res.DegreeMP,
	}
	// Recompute routing: keep coin-change routes that avoid the failed
	// link, reroute the rest by shortest path on the degraded fabric.
	nres.Routes = route.NewTable(ng.N())
	for s := 0; s < ng.N(); s++ {
		for d := 0; d < ng.N(); d++ {
			if s == d {
				continue
			}
			old := res.Routes.Get(s, d)
			if old != nil && !routeUses(old, from, to) && routeValid(ng, old) {
				nres.Routes.Set(s, d, old)
			}
		}
	}
	nres.Routes.FillShortestPaths(ng)
	// Verify full reachability.
	for s := 0; s < ng.N(); s++ {
		for d := 0; d < ng.N(); d++ {
			if s != d && nres.Routes.Get(s, d) == nil {
				return nil, fmt.Errorf("core: no route %d->%d after failure", s, d)
			}
		}
	}
	return nres, nil
}

func routeUses(nodes []int, from, to int) bool {
	for i := 0; i+1 < len(nodes); i++ {
		if nodes[i] == from && nodes[i+1] == to {
			return true
		}
	}
	return false
}

func routeValid(g *graph.Graph, nodes []int) bool {
	for i := 0; i+1 < len(nodes); i++ {
		if !g.HasEdge(nodes[i], nodes[i+1]) {
			return false
		}
	}
	return true
}

// RingHealth reports, for each ring of the result, how many of its edges
// are still present in the (possibly degraded) topology. A ring with
// missing edges is "inefficient for AllReduce traffic" (§7) and should be
// rebuilt by reconfiguration.
func RingHealth(res *Result) []float64 {
	out := make([]float64, len(res.Rings))
	for i, gr := range res.Rings {
		k := len(gr.Members)
		if k < 2 {
			out[i] = 1
			continue
		}
		total, present := 0, 0
		for _, p := range gr.Ps {
			for j := 0; j < k; j++ {
				total++
				if res.Network.G.HasEdge(gr.Members[j], gr.Members[(j+p)%k]) {
					present++
				}
			}
		}
		if total == 0 {
			out[i] = 1
		} else {
			out[i] = float64(present) / float64(total)
		}
	}
	return out
}
