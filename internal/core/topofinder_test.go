package core

import (
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

func dlrmDemand(t *testing.T, n, batch int) traffic.Demand {
	t.Helper()
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: batch, DenseLayers: 4, DenseLayerSize: 1024,
		DenseFeatLayers: 4, FeatLayerSize: 1024, EmbedDim: 128, EmbedRows: 1e6, EmbedTables: 4})
	st := parallel.Hybrid(m, n)
	d, err := traffic.FromStrategy(m, st, batch)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTopologyFinderBasic(t *testing.T) {
	dem := dlrmDemand(t, 16, 128)
	res, err := TopologyFinder(Config{N: 16, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Network.G.Connected() {
		t.Fatal("topology disconnected")
	}
	// Degree constraint: out-degree per server ≤ d.
	for v := 0; v < 16; v++ {
		if res.Network.G.OutDegree(v) > 4 {
			t.Errorf("server %d out-degree %d > 4", v, res.Network.G.OutDegree(v))
		}
		if res.Network.G.InDegree(v) > 4 {
			t.Errorf("server %d in-degree %d > 4", v, res.Network.G.InDegree(v))
		}
	}
	if res.DegreeAllReduce+res.DegreeMP != 4 {
		t.Errorf("degree split %d+%d != 4", res.DegreeAllReduce, res.DegreeMP)
	}
	if res.DegreeAllReduce < 1 {
		t.Error("AllReduce must get at least one degree")
	}
	// Routing covers all pairs.
	if res.Routes.PairCount() != 16*15 {
		t.Errorf("routes cover %d pairs, want 240", res.Routes.PairCount())
	}
}

func TestTopologyFinderRingsAreValidPerms(t *testing.T) {
	dem := dlrmDemand(t, 16, 128)
	res, err := TopologyFinder(Config{N: 16, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rings) == 0 {
		t.Fatal("no AllReduce rings")
	}
	for _, gr := range res.Rings {
		if len(gr.Ps) == 0 {
			t.Error("empty permutation set")
		}
		// Duplicates (parallel rings) are only allowed once every
		// distinct candidate is used.
		seen := map[int]int{}
		for _, p := range gr.Ps {
			seen[p]++
		}
		if len(seen) < len(gr.Ps) && len(seen) < len(gr.Members)-1 {
			// heuristic: distinct perms should be exhausted before reuse
			distinctAvailable := 0
			for p := 1; p < len(gr.Members); p++ {
				if gcdInt(p, len(gr.Members)) == 1 {
					distinctAvailable++
				}
			}
			if len(seen) < distinctAvailable && len(seen) < len(gr.Ps) {
				t.Errorf("duplicated permutations before exhausting candidates: %v", gr.Ps)
			}
		}
	}
}

func TestTopologyFinderPureDP(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	st := parallel.DataParallel(m, 12)
	dem, _ := traffic.FromStrategy(m, st, 10)
	res, err := TopologyFinder(Config{N: 12, D: 4, LinkBW: 25e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	// No MP traffic → all degree to AllReduce.
	if res.DegreeMP != 0 {
		t.Errorf("MP degree %d, want 0", res.DegreeMP)
	}
	// Candidates for n=12 are {1,5,7,11}: four rings fit exactly in d=4.
	if got := len(res.Rings[0].Ps); got != 4 {
		t.Errorf("selected %d rings, want 4", got)
	}
	if !res.Network.G.Connected() {
		t.Error("disconnected")
	}
}

func TestTopologyFinderPureMP(t *testing.T) {
	// Demand with only MP traffic still yields a connected fabric.
	dem := traffic.Demand{N: 8, MP: traffic.NewMatrix(8)}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				dem.MP.Add(i, j, 1e6)
			}
		}
	}
	res, err := TopologyFinder(Config{N: 8, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Network.G.Connected() {
		t.Fatal("pure-MP topology disconnected")
	}
	if res.DegreeMP < 1 {
		t.Error("MP should receive degree when it dominates traffic")
	}
	// Every demanded pair has a route.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && res.Routes.Get(i, j) == nil {
				t.Errorf("no route %d->%d", i, j)
			}
		}
	}
}

func TestTopologyFinderAllReduceRoutesUseCoins(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	st := parallel.DataParallel(m, 16)
	dem, _ := traffic.FromStrategy(m, st, 10)
	res, err := TopologyFinder(Config{N: 16, D: 3, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	coins := map[int]bool{}
	for _, p := range res.Rings[0].Ps {
		coins[p] = true
	}
	// Each hop of each route must be a direct link of the topology.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			nodes := res.Routes.Get(s, d)
			if nodes == nil {
				t.Fatalf("no route %d->%d", s, d)
			}
			for i := 0; i+1 < len(nodes); i++ {
				if !res.Network.G.HasEdge(nodes[i], nodes[i+1]) {
					t.Fatalf("route %d->%d uses missing link %d->%d",
						s, d, nodes[i], nodes[i+1])
				}
			}
		}
	}
}

func TestTopologyFinderDegreeSplitFollowsTraffic(t *testing.T) {
	// Heavy MP demand should push degree toward MP.
	dem := dlrmDemand(t, 16, 128)
	// Inflate MP 1000x so it dwarfs the dense AllReduce volume.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			dem.MP[i][j] *= 1000
		}
	}
	res, err := TopologyFinder(Config{N: 16, D: 8, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegreeMP < res.DegreeAllReduce {
		t.Errorf("MP-heavy demand got dA=%d dMP=%d", res.DegreeAllReduce, res.DegreeMP)
	}
}

func TestTopologyFinderMultiGroup(t *testing.T) {
	// Two disjoint AllReduce groups (hybrid parallelism over subsets).
	dem := traffic.Demand{
		N: 16,
		Groups: []traffic.Group{
			{Members: []int{0, 1, 2, 3, 4, 5, 6, 7}, Bytes: 1e9},
			{Members: []int{8, 9, 10, 11, 12, 13, 14, 15}, Bytes: 1e9},
		},
		MP: traffic.NewMatrix(16),
	}
	// Cross-group MP keeps the fabric connected.
	dem.MP.Add(0, 8, 1e8)
	dem.MP.Add(8, 0, 1e8)
	res, err := TopologyFinder(Config{N: 16, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rings) != 2 {
		t.Fatalf("rings for %d groups, want 2", len(res.Rings))
	}
	if !res.Network.G.Connected() {
		t.Error("multi-group topology disconnected")
	}
	// Intra-group routing exists.
	if res.Routes.Get(0, 5) == nil || res.Routes.Get(8, 13) == nil {
		t.Error("intra-group routes missing")
	}
	if res.Routes.Get(0, 8) == nil {
		t.Error("cross-group MP route missing")
	}
}

func TestTopologyFinderErrors(t *testing.T) {
	dem := traffic.Demand{N: 4, MP: traffic.NewMatrix(4)}
	if _, err := TopologyFinder(Config{N: 1, D: 4, LinkBW: 1}, traffic.Demand{N: 1}); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := TopologyFinder(Config{N: 4, D: 0, LinkBW: 1}, dem); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := TopologyFinder(Config{N: 8, D: 2, LinkBW: 1}, dem); err == nil {
		t.Error("demand/config size mismatch should fail")
	}
}

func TestTopologyFinderPrimeOnlyLargeN(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	st := parallel.DataParallel(m, 128)
	dem, _ := traffic.FromStrategy(m, st, 10)
	res, err := TopologyFinder(Config{N: 128, D: 4, LinkBW: 100e9, PrimeOnly: true}, dem)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Rings[0].Ps {
		if p != 1 && !isPrimeSlow(p) {
			t.Errorf("non-prime permutation %d with PrimeOnly", p)
		}
	}
	if !res.Network.G.Connected() {
		t.Error("disconnected")
	}
	// Theorem 1 shape: diameter far below n/2.
	diam, _ := res.Network.G.Diameter()
	if diam > 24 {
		t.Errorf("diameter %d too large for d=4, n=128", diam)
	}
}

func isPrimeSlow(n int) bool {
	if n < 2 {
		return false
	}
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			return false
		}
	}
	return true
}

func TestMaxOutDegree(t *testing.T) {
	dem := dlrmDemand(t, 16, 128)
	res, err := TopologyFinder(Config{N: 16, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOutDegree() > 4 {
		t.Errorf("MaxOutDegree = %d > 4", res.MaxOutDegree())
	}
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestTopologyFinderParallelRingsSmallGroup(t *testing.T) {
	// n=8, d=8: only φ(8)=4 distinct rings exist; the other 4 interfaces
	// must carry parallel rings instead of idling.
	m := model.CANDLEPreset(model.Sec6)
	st := parallel.DataParallel(m, 8)
	dem, _ := traffic.FromStrategy(m, st, 10)
	res, err := TopologyFinder(Config{N: 8, D: 8, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rings[0].Ps); got != 8 {
		t.Errorf("rings = %d, want 8 (4 distinct x2 parallel)", got)
	}
	for v := 0; v < 8; v++ {
		if res.Network.G.OutDegree(v) != 8 {
			t.Errorf("server %d uses %d interfaces, want all 8", v, res.Network.G.OutDegree(v))
		}
	}
}
