package core

import (
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

func builtTopo(t *testing.T, n, d int) *Result {
	t.Helper()
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: 64, DenseLayers: 4, DenseLayerSize: 1024,
		DenseFeatLayers: 4, FeatLayerSize: 1024, EmbedDim: 128, EmbedRows: 1e6, EmbedTables: 4})
	st := parallel.Hybrid(m, n)
	dem, err := traffic.FromStrategy(m, st, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TopologyFinder(Config{N: n, D: d, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFailLinkReroutes(t *testing.T) {
	res := builtTopo(t, 16, 4)
	e := res.Network.G.Edge(0)
	degraded, err := FailLink(res, e.From, e.To, false)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer edges, same reachability.
	if degraded.Network.G.M() != res.Network.G.M()-1 {
		t.Errorf("edges = %d, want %d", degraded.Network.G.M(), res.Network.G.M()-1)
	}
	if !degraded.Network.G.Connected() {
		t.Fatal("degraded fabric disconnected")
	}
	// No route crosses the failed link.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			nodes := degraded.Routes.Get(s, d)
			if nodes == nil {
				t.Fatalf("no route %d->%d after failure", s, d)
			}
			for i := 0; i+1 < len(nodes); i++ {
				if !degraded.Network.G.HasEdge(nodes[i], nodes[i+1]) {
					t.Fatalf("route %d->%d uses missing link", s, d)
				}
			}
		}
	}
	// Original untouched.
	if res.Network.G.M() == degraded.Network.G.M() {
		t.Error("original result mutated")
	}
}

func TestFailLinkNonexistent(t *testing.T) {
	res := builtTopo(t, 8, 2)
	// Find a pair with no direct link.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d && !res.Network.G.HasEdge(s, d) {
				if _, err := FailLink(res, s, d, false); err == nil {
					t.Fatal("failing a nonexistent link should error")
				}
				return
			}
		}
	}
	t.Skip("topology is a full mesh; nothing to test")
}

func TestFailLinkPartitionDetected(t *testing.T) {
	// Degree-1 chain ring: failing one directed ring edge breaks the only
	// directed cycle; borrowMP must re-patch it.
	m := model.CANDLEPreset(model.Sec6)
	st := parallel.DataParallel(m, 5) // n=5 → only p ∈ {1,2,3,4}; d=1 picks one ring
	dem, _ := traffic.FromStrategy(m, st, 10)
	res, err := TopologyFinder(Config{N: 5, D: 1, LinkBW: 100e9}, dem)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Network.G.Edge(0)
	if _, err := FailLink(res, e.From, e.To, false); err == nil {
		t.Error("single-ring failure should partition without borrow")
	}
	recovered, err := FailLink(res, e.From, e.To, true)
	if err != nil {
		t.Fatalf("borrowMP recovery failed: %v", err)
	}
	if !recovered.Network.G.Connected() {
		t.Error("recovered fabric disconnected")
	}
}

func TestRingHealth(t *testing.T) {
	res := builtTopo(t, 16, 4)
	health := RingHealth(res)
	for i, h := range health {
		if h != 1 {
			t.Errorf("ring %d health %g, want 1 on fresh topology", i, h)
		}
	}
	// Degrade one ring edge.
	gr := res.Rings[0]
	from := gr.Members[0]
	to := gr.Members[gr.Ps[0]%len(gr.Members)]
	degraded, err := FailLink(res, from, to, false)
	if err != nil {
		t.Fatal(err)
	}
	h2 := RingHealth(degraded)
	if h2[0] >= 1 {
		t.Errorf("ring health %g should drop after edge failure", h2[0])
	}
}
