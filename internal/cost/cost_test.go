package cost

import "testing"

func TestTierInterpolation(t *testing.T) {
	// Exact tier.
	tr := tierFor(100e9)
	if tr.Transceiver != 99 || tr.NICPort != 678 {
		t.Errorf("100G tier wrong: %+v", tr)
	}
	// Between 40 and 100: halfway at 70 Gbps.
	mid := tierFor(70e9)
	if mid.Transceiver <= 39 || mid.Transceiver >= 99 {
		t.Errorf("interpolated transceiver %v out of (39,99)", mid.Transceiver)
	}
	// Below bottom tier: flat.
	if tierFor(1e9).Transceiver != 20 {
		t.Error("sub-10G should use 10G prices")
	}
	// Above top: linear scaling.
	if got := tierFor(400e9).Transceiver; got != 396 {
		t.Errorf("400G transceiver = %v, want 2×198", got)
	}
	// Optical prices never scale with bandwidth.
	if tierFor(400e9).PatchPanelPort != 100 || tierFor(10e9).OCSPort != 520 {
		t.Error("optical port prices must be bandwidth-independent")
	}
}

func TestFatTreeK(t *testing.T) {
	cases := map[int]int{2: 2, 16: 4, 54: 6, 128: 8, 432: 12, 1024: 16, 2000: 20, 4394: 26}
	for n, want := range cases {
		if got := fatTreeK(n); got != want {
			t.Errorf("fatTreeK(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOCSMoreExpensiveThanPatchPanel(t *testing.T) {
	// §5.2: OCS-based TopoOpt is ~1.33× patch-panel TopoOpt.
	pp := TopoOptPatchPanel(432, 4, 100e9)
	ocs := TopoOptOCS(432, 4, 100e9)
	r := ocs / pp
	if r <= 1.0 || r > 1.8 {
		t.Errorf("OCS/patch-panel ratio %v, want ~1.33", r)
	}
}

func TestIdealRoughly3xTopoOpt(t *testing.T) {
	// §5.2: Ideal Switch ≈ 3.2× TopoOpt on average. Accept 2–5×.
	for _, n := range []int{128, 432, 1024, 2000} {
		for _, cfg := range [][2]float64{{4, 100e9}, {8, 200e9}} {
			d := int(cfg[0])
			ideal := IdealSwitch(n, d, cfg[1])
			topoopt := TopoOptPatchPanel(n, d, cfg[1])
			r := ideal / topoopt
			if r < 2 || r > 5.5 {
				t.Errorf("n=%d d=%d: ideal/topoopt = %.2f, want ~3.2", n, d, r)
			}
		}
	}
}

func TestCostOrdering(t *testing.T) {
	// Figure 10: Expander cheapest, SiP-ML most expensive; TopoOpt ≈
	// equivalent Fat-tree by construction; Oversub < Ideal.
	n, d, b := 432, 4, 100e9
	exp := Expander(n, d, b)
	topoopt := TopoOptPatchPanel(n, d, b)
	ideal := IdealSwitch(n, d, b)
	oversub := OversubFatTree(n, d, b)
	sip := SiPML(n, d, b)
	if !(exp < topoopt && topoopt < ideal) {
		t.Errorf("ordering broken: expander %.3g topoopt %.3g ideal %.3g", exp, topoopt, ideal)
	}
	if !(oversub < ideal) {
		t.Errorf("oversub %.3g should undercut ideal %.3g", oversub, ideal)
	}
	if sip <= topoopt {
		t.Errorf("SiP-ML %.3g should exceed TopoOpt %.3g", sip, topoopt)
	}
}

func TestEquivalentFatTreeBandwidth(t *testing.T) {
	n, d, b := 128, 4, 100e9
	bft := EquivalentFatTreeBandwidth(n, d, b)
	if bft >= float64(d)*b {
		t.Errorf("equivalent bandwidth %.3g should be below d×B %.3g", bft, float64(d)*b)
	}
	if bft < 10e9 {
		t.Errorf("equivalent bandwidth %.3g implausibly low", bft)
	}
	// Cost parity within bisection tolerance.
	ftCost := FatTree(n, bft)
	toCost := TopoOptPatchPanel(n, d, b)
	if r := ftCost / toCost; r < 0.95 || r > 1.05 {
		t.Errorf("cost parity off: %v", r)
	}
}

func TestDirectConnectShape(t *testing.T) {
	// Expander is a full-degree direct-connect bill by definition.
	if Expander(128, 4, 100e9) != DirectConnect(128, 4, 100e9) {
		t.Error("Expander must equal the d-interface direct-connect bill")
	}
	// Linear in servers and interfaces.
	if 2*DirectConnect(128, 4, 100e9) != DirectConnect(256, 4, 100e9) {
		t.Error("direct-connect cost must be linear in n")
	}
	if 2*DirectConnect(128, 3, 100e9) != DirectConnect(128, 6, 100e9) {
		t.Error("direct-connect cost must be linear in interfaces")
	}
	// A torus consuming fewer interfaces than d must undercut the
	// d-regular expander.
	if DirectConnect(128, 4, 100e9) <= DirectConnect(128, 2, 100e9) {
		t.Error("fewer interfaces must cost less")
	}
}

func TestSiPRingBetweenExpanderAndSiPML(t *testing.T) {
	// The SiP-Ring estimate keeps photonic ports but drops the fabric-wide
	// switch premium: dearer than Expander, cheaper than SiP-ML at every
	// Table 2 scale and configuration.
	for _, n := range []int{128, 432, 1024, 2000} {
		for _, cfg := range []struct {
			d  int
			bw float64
		}{{4, 100e9}, {8, 200e9}} {
			ring := SiPRing(n, cfg.d, cfg.bw)
			exp := Expander(n, cfg.d, cfg.bw)
			sip := SiPML(n, cfg.d, cfg.bw)
			if !(exp < ring && ring < sip) {
				t.Errorf("n=%d d=%d: want Expander %.3g < SiP-Ring %.3g < SiP-ML %.3g",
					n, cfg.d, exp, ring, sip)
			}
		}
	}
}

func TestCostMonotoneInScale(t *testing.T) {
	prev := 0.0
	for _, n := range []int{128, 432, 1024, 2000} {
		c := TopoOptPatchPanel(n, 4, 100e9)
		if c <= prev {
			t.Errorf("cost not increasing at n=%d", n)
		}
		prev = c
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if r := Ratio(1, 0); r <= 1e300 {
		t.Error("zero denominator should be +Inf")
	}
}

func TestSiPMLMostExpensive(t *testing.T) {
	// Figure 10: SiP-ML tops every scale at both configurations.
	for _, n := range []int{128, 432, 1024, 2000} {
		for _, cfg := range []struct {
			d  int
			bw float64
		}{{4, 100e9}, {8, 200e9}} {
			sip := SiPML(n, cfg.d, cfg.bw)
			ideal := IdealSwitch(n, cfg.d, cfg.bw)
			if sip <= ideal {
				t.Errorf("n=%d d=%d: SiP-ML %.3g should exceed Ideal %.3g", n, cfg.d, sip, ideal)
			}
		}
	}
}
