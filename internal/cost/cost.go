// Package cost implements the §5.2 / Appendix G interconnect cost model:
// per-component prices from Table 2, per-architecture bills of materials,
// and the cost-equivalent Fat-tree bandwidth solver that Figure 11's
// "similar-cost Fat-tree" baseline requires.
package cost

import (
	"math"
	"sort"
)

// Tier is a row of Table 2: component prices at one link bandwidth.
type Tier struct {
	GbpsRate       float64
	Transceiver    float64
	NICPort        float64 // per-port share of the NIC
	ElectricalPort float64 // per-port share of an electrical switch
	PatchPanelPort float64
	OCSPort        float64
	OneByTwoSwitch float64
}

// Table2 reproduces the paper's component cost table. 200 Gbps uses
// doubled 100 Gbps optics, as the paper notes.
var Table2 = []Tier{
	{10, 20, 185, 94, 100, 520, 25},
	{25, 39, 185, 144, 100, 520, 25},
	{40, 39, 354, 144, 100, 520, 25},
	{100, 99, 678, 187, 100, 520, 25},
	{200, 198, 815, 374, 100, 520, 25},
}

// FiberCostPerLink is the expected fiber cost: $0.30/m over a uniform
// 0–1000 m length distribution → $150 expected (Appendix G).
const FiberCostPerLink = 150.0

// tierFor interpolates component prices for an arbitrary bandwidth in
// bits/s. Below the lowest tier prices are held flat; between tiers
// prices interpolate linearly; above the top tier they scale linearly
// with bandwidth (ganged ports).
func tierFor(bw float64) Tier {
	gbps := bw / 1e9
	ts := Table2
	if gbps <= ts[0].GbpsRate {
		return ts[0]
	}
	last := ts[len(ts)-1]
	if gbps >= last.GbpsRate {
		scale := gbps / last.GbpsRate
		return Tier{
			GbpsRate:       gbps,
			Transceiver:    last.Transceiver * scale,
			NICPort:        last.NICPort * scale,
			ElectricalPort: last.ElectricalPort * scale,
			PatchPanelPort: last.PatchPanelPort,
			OCSPort:        last.OCSPort,
			OneByTwoSwitch: last.OneByTwoSwitch,
		}
	}
	i := sort.Search(len(ts), func(i int) bool { return ts[i].GbpsRate >= gbps })
	lo, hi := ts[i-1], ts[i]
	f := (gbps - lo.GbpsRate) / (hi.GbpsRate - lo.GbpsRate)
	lerp := func(a, b float64) float64 { return a + f*(b-a) }
	return Tier{
		GbpsRate:       gbps,
		Transceiver:    lerp(lo.Transceiver, hi.Transceiver),
		NICPort:        lerp(lo.NICPort, hi.NICPort),
		ElectricalPort: lerp(lo.ElectricalPort, hi.ElectricalPort),
		PatchPanelPort: lo.PatchPanelPort,
		OCSPort:        lo.OCSPort,
		OneByTwoSwitch: lo.OneByTwoSwitch,
	}
}

// fatTreeK returns the smallest even k whose 3-tier fat-tree (k³/4
// servers) accommodates n servers.
func fatTreeK(n int) int {
	for k := 2; ; k += 2 {
		if k*k*k/4 >= n {
			return k
		}
	}
}

// TopoOptPatchPanel is the cost of a TopoOpt fabric on patch panels with
// the look-ahead design: per server-interface one NIC port, one
// transceiver, one 1×2 switch, two patch-panel ports (active +
// look-ahead) and one fiber (Appendix G).
func TopoOptPatchPanel(n, d int, linkBW float64) float64 {
	t := tierFor(linkBW)
	perIface := t.NICPort + t.Transceiver + t.OneByTwoSwitch + 2*t.PatchPanelPort + FiberCostPerLink
	return float64(n*d) * perIface
}

// TopoOptOCS is the cost of a TopoOpt (or OCS-reconfig) fabric on optical
// circuit switches: per interface one NIC port, transceiver, OCS port and
// fiber.
func TopoOptOCS(n, d int, linkBW float64) float64 {
	t := tierFor(linkBW)
	perIface := t.NICPort + t.Transceiver + t.OCSPort + FiberCostPerLink
	return float64(n*d) * perIface
}

// fatTreeCost prices a full-bisection 3-tier fat-tree offering nPorts
// server-facing ports at portBW each: the smallest even k with k³/4 ≥
// nPorts, hence k³/4 server links plus k³ fabric links (5k³/4 switch
// ports total), one transceiver per switch port and per NIC port, one
// fiber per link. fabricFraction scales the fabric tier for
// oversubscription (1 = full bisection, 0.5 = 2:1 oversubscribed).
func fatTreeCost(nPorts int, portBW, fabricFraction float64) float64 {
	t := tierFor(portBW)
	k := fatTreeK(nPorts)
	serverPorts := float64(k * k * k / 4)
	fabricPorts := float64(k*k*k) * fabricFraction
	switchPorts := serverPorts + fabricPorts
	// NIC ports + server transceivers for the ports actually used;
	// switch-side transceivers for every switch port; one fiber per link
	// (each fabric link joins two switch ports).
	nicSide := float64(nPorts) * (t.NICPort + t.Transceiver)
	switchSide := switchPorts * (t.ElectricalPort + t.Transceiver)
	fibers := (serverPorts + fabricPorts/2) * FiberCostPerLink
	return nicSide + switchSide + fibers
}

// IdealSwitch prices the Ideal Switch baseline as a full-bisection
// fat-tree giving each of the n servers d line-rate ports of linkBW
// (§5.2: "we estimate the cost of Ideal Switch with a full-bisection
// Fat-tree of the same bandwidth"). Real switches are radix-limited at
// line rate, so a d×B server attachment means d fabric ports per server.
func IdealSwitch(n, d int, linkBW float64) float64 {
	return fatTreeCost(n*d, linkBW, 1)
}

// FatTree prices a full-bisection fat-tree where each server has one NIC
// of the given bandwidth (the §5.1 similar-cost baseline shape).
func FatTree(n int, perServerBW float64) float64 {
	return fatTreeCost(n, perServerBW, 1)
}

// OversubFatTree prices a 2:1 oversubscribed fat-tree giving each server
// d line-rate ports but only half the fabric layer (§5.1).
func OversubFatTree(n, d int, linkBW float64) float64 {
	return fatTreeCost(n*d, linkBW, 0.5)
}

// DirectConnect prices a static point-to-point fabric using ifaces
// interfaces per server: NICs, transceivers and fibers only — no switch,
// panel or OCS ports. Expander and Torus fabrics are both bills of this
// shape; they differ only in how many interfaces the topology consumes.
func DirectConnect(n, ifaces int, linkBW float64) float64 {
	t := tierFor(linkBW)
	return float64(n*ifaces) * (t.NICPort + t.Transceiver + FiberCostPerLink)
}

// Expander prices a Jellyfish-style fabric: the full d interfaces in a
// direct-connect bill — the cheapest architecture (§5.2).
func Expander(n, d int, linkBW float64) float64 {
	return DirectConnect(n, d, linkBW)
}

// SiPML prices the SiP-ML fabric. Silicon-photonic ports are not
// commercial (Table 1); the paper's Figure 10 places SiP-ML as the most
// expensive fabric at every scale. We estimate the photonic port at 6×
// the 3D-MEMS OCS port plus a doubled transceiver, which reproduces that
// ordering across 128–2000 servers.
func SiPML(n, d int, linkBW float64) float64 {
	t := tierFor(linkBW)
	perIface := t.NICPort + 2*t.Transceiver + 6*t.OCSPort + FiberCostPerLink
	return float64(n*d) * perIface
}

// EquivalentFatTreeBandwidth returns the per-server bandwidth B_ft such
// that a full-bisection fat-tree costs the same as a TopoOpt patch-panel
// fabric with n servers, degree d, link bandwidth B (§5.1's similar-cost
// Fat-tree; B_ft < d×B). Solved by bisection on the monotone cost curve.
func EquivalentFatTreeBandwidth(n, d int, linkBW float64) float64 {
	target := TopoOptPatchPanel(n, d, linkBW)
	lo, hi := 1e9, float64(d)*linkBW
	if FatTree(n, hi) <= target {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if FatTree(n, mid) > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// SiPRing prices the SiP-Ring variant: the physical-ring substrate keeps
// silicon-photonic ports (doubled transceivers like SiP-ML) but drops the
// fabric-wide reconfigurable switch fan-out, so the photonic premium
// shrinks from 6× to 3× the OCS port. The estimate lands between
// Expander and SiP-ML at every Table 2 scale.
func SiPRing(n, d int, linkBW float64) float64 {
	t := tierFor(linkBW)
	perIface := t.NICPort + 2*t.Transceiver + 3*t.OCSPort + FiberCostPerLink
	return float64(n*d) * perIface
}

// Ratio returns a/b guarding against zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
