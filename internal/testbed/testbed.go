// Package testbed models the 12-node prototype of §6: ASUS servers with
// one A100 each, one 4×25 Gbps HPE NIC (degree d=4, B=25 Gbps) patched
// through a Telescent panel, compared against 100 Gbps and 25 Gbps
// switch baselines. The hardware is simulated (DESIGN.md substitution
// table); the RDMA NPAR forwarding penalty from the rdma package applies
// to multi-hop TopoOpt routes.
package testbed

import (
	"fmt"

	"topoopt/internal/core"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/rdma"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// Nodes is the prototype size.
const Nodes = 12

// Setup identifies one of the three §6 fabrics.
type Setup int

const (
	// TopoOpt4x25 is the prototype: d=4, B=25 Gbps over the patch panel.
	TopoOpt4x25 Setup = iota
	// Switch100 is the Ideal-Switch-like 100 Gbps baseline.
	Switch100
	// Switch25 is the bandwidth-starved 25 Gbps baseline.
	Switch25
)

func (s Setup) String() string {
	switch s {
	case TopoOpt4x25:
		return "TopoOpt 4x25Gbps"
	case Switch100:
		return "Switch 100Gbps"
	case Switch25:
		return "Switch 25Gbps"
	}
	return "unknown"
}

// Setups lists all three in the paper's order.
func Setups() []Setup { return []Setup{TopoOpt4x25, Switch100, Switch25} }

// Result is one model × setup measurement.
type Result struct {
	Setup            Setup
	IterationSeconds float64
	SamplesPerSecond float64
	BandwidthTax     float64
}

// Run measures one model on one setup: builds the fabric, derives the
// §6-scale hybrid strategy and simulates an iteration. The RDMA
// forwarding penalty shrinks TopoOpt's effective multi-hop bandwidth.
func Run(m *model.Model, s Setup, batch int) (Result, error) {
	if batch <= 0 {
		batch = m.BatchPerGPU
	}
	st := parallel.Hybrid(m, Nodes)
	dem, err := traffic.FromStrategy(m, st, batch)
	if err != nil {
		return Result{}, err
	}
	compute := st.MaxComputeTime(m, model.A100, batch)

	var fab *flexnet.Fabric
	switch s {
	case TopoOpt4x25:
		bw := 25e9 * rdma.DefaultPenalty.BandwidthFraction
		tf, err := core.TopologyFinder(core.Config{N: Nodes, D: 4, LinkBW: bw}, dem)
		if err != nil {
			return Result{}, err
		}
		fab = flexnet.NewTopoOptFabric(tf)
		fab.LinkLatency = 1e-6 + rdma.DefaultPenalty.PerHopLatency
	case Switch100:
		fab = flexnet.NewSwitchFabric(topo.IdealSwitch(Nodes, 100e9))
	case Switch25:
		fab = flexnet.NewSwitchFabric(topo.IdealSwitch(Nodes, 25e9))
	default:
		return Result{}, fmt.Errorf("testbed: unknown setup %d", s)
	}
	it, err := flexnet.SimulateIteration(fab, dem, compute)
	if err != nil {
		return Result{}, err
	}
	iter := it.Total()
	return Result{
		Setup:            s,
		IterationSeconds: iter,
		SamplesPerSecond: float64(batch*Nodes) / iter,
		BandwidthTax:     it.BandwidthTax,
	}, nil
}

// Models returns the five §6 workloads (List 1, §6 column).
func Models() []*model.Model {
	return []*model.Model{
		model.BERTPreset(model.Sec6),
		model.DLRMPreset(model.Sec6),
		model.VGGPreset(model.Sec6),
		model.CANDLEPreset(model.Sec6),
		model.ResNetPreset(model.Sec6),
	}
}

// vgg19Top5 is the published top-5 accuracy trajectory of VGG19 on
// ImageNet by epoch (coarse, monotone): the time-to-accuracy experiment
// (Figure 20) multiplies epochs by measured iteration time.
var vgg19Top5 = []struct {
	Epoch int
	Acc   float64
}{
	{1, 0.30}, {2, 0.45}, {4, 0.58}, {8, 0.70}, {12, 0.76}, {18, 0.81},
	{24, 0.84}, {32, 0.865}, {40, 0.880}, {50, 0.892}, {60, 0.900}, {74, 0.905},
}

// ImageNetSize is the number of training samples per epoch.
const ImageNetSize = 1_281_167

// TimeToAccuracy returns the wall-clock hours for VGG19 to reach the
// target top-5 accuracy at the given training throughput (samples/s).
// Returns an error if the target exceeds the trajectory's ceiling.
func TimeToAccuracy(target, samplesPerSecond float64) (float64, error) {
	for _, pt := range vgg19Top5 {
		if pt.Acc >= target {
			samples := float64(pt.Epoch) * ImageNetSize
			return samples / samplesPerSecond / 3600, nil
		}
	}
	return 0, fmt.Errorf("testbed: target accuracy %.3f unreachable (max %.3f)",
		target, vgg19Top5[len(vgg19Top5)-1].Acc)
}

// AccuracyCurve returns (hours, accuracy) samples of the training run at
// the given throughput — the Figure 20 series.
func AccuracyCurve(samplesPerSecond float64) (hours, acc []float64) {
	for _, pt := range vgg19Top5 {
		h := float64(pt.Epoch) * ImageNetSize / samplesPerSecond / 3600
		hours = append(hours, h)
		acc = append(acc, pt.Acc)
	}
	return hours, acc
}
