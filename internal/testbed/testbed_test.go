package testbed

import (
	"testing"

	"topoopt/internal/model"
)

func TestRunAllModelsAllSetups(t *testing.T) {
	for _, m := range Models() {
		var results []Result
		for _, s := range Setups() {
			r, err := Run(m, s, 0)
			if err != nil {
				t.Fatalf("%s on %s: %v", m.Name, s, err)
			}
			if r.IterationSeconds <= 0 || r.SamplesPerSecond <= 0 {
				t.Fatalf("%s on %s: non-positive result %+v", m.Name, s, r)
			}
			results = append(results, r)
		}
		topoOpt, sw100, sw25 := results[0], results[1], results[2]
		// Figure 19 shape: TopoOpt ≈ Switch 100G; Switch 25G slower or
		// equal (compute-bound models tie).
		if sw25.SamplesPerSecond > sw100.SamplesPerSecond*1.01 {
			t.Errorf("%s: 25G switch (%.1f samp/s) should not beat 100G (%.1f)",
				m.Name, sw25.SamplesPerSecond, sw100.SamplesPerSecond)
		}
		if topoOpt.SamplesPerSecond < sw25.SamplesPerSecond*0.9 {
			t.Errorf("%s: TopoOpt (%.1f samp/s) should be at least near 25G switch (%.1f)",
				m.Name, topoOpt.SamplesPerSecond, sw25.SamplesPerSecond)
		}
		// TopoOpt should recover most of the 100G switch's throughput
		// (paper: "similar to Switch 100Gbps for all models").
		if topoOpt.SamplesPerSecond < sw100.SamplesPerSecond*0.4 {
			t.Errorf("%s: TopoOpt (%.1f) too far below 100G switch (%.1f)",
				m.Name, topoOpt.SamplesPerSecond, sw100.SamplesPerSecond)
		}
	}
}

func TestSetupStrings(t *testing.T) {
	for _, s := range Setups() {
		if s.String() == "unknown" {
			t.Errorf("setup %d unnamed", s)
		}
	}
	if Setup(9).String() != "unknown" {
		t.Error("invalid setup should be unknown")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	h1, err := TimeToAccuracy(0.90, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := TimeToAccuracy(0.90, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if h2 >= h1 {
		t.Errorf("double throughput should halve TTA: %g vs %g", h1, h2)
	}
	if h1/h2 < 1.9 || h1/h2 > 2.1 {
		t.Errorf("TTA ratio %g, want 2.0", h1/h2)
	}
	if _, err := TimeToAccuracy(0.99, 1000); err == nil {
		t.Error("unreachable accuracy should error")
	}
}

func TestAccuracyCurveMonotone(t *testing.T) {
	hours, acc := AccuracyCurve(5000)
	if len(hours) != len(acc) || len(hours) == 0 {
		t.Fatal("curve shape wrong")
	}
	for i := 1; i < len(hours); i++ {
		if hours[i] <= hours[i-1] || acc[i] <= acc[i-1] {
			t.Fatal("curve must be strictly increasing")
		}
	}
}

func TestFigure20Shape(t *testing.T) {
	// TopoOpt 4×25 reaches 90% top-5 much faster than Switch 25G and about
	// as fast as Switch 100G (Figure 20: 2.0× faster than 25G).
	vgg := model.VGG(32, 19)
	var tta [3]float64
	for i, s := range Setups() {
		r, err := Run(vgg, s, 32)
		if err != nil {
			t.Fatal(err)
		}
		h, err := TimeToAccuracy(0.90, r.SamplesPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		tta[i] = h
	}
	if tta[0] > tta[2] {
		t.Errorf("TopoOpt TTA %g h should beat Switch 25G %g h", tta[0], tta[2])
	}
	speedup := tta[2] / tta[0]
	if speedup < 1.1 || speedup > 4 {
		t.Errorf("TopoOpt vs 25G speedup %.2f, paper reports ~2.0", speedup)
	}
}
