package model

import (
	"testing"
)

func TestDLRMPaperExample(t *testing.T) {
	// §2.1 example: 4 embedding tables of 512 columns × 1e7 rows, total
	// model size ~22 GB (tables alone are 4·512·1e7·4 B ≈ 82 GB with fp32;
	// the paper's 22 GB implies ~fp32 with 512-dim at 1e7 rows summing with
	// the dense part — we check the tables dominate and the per-table size
	// is rows·dim·4).
	m := DLRM(DLRMConfig{BatchPerGPU: 8192, DenseLayers: 8, DenseLayerSize: 1024,
		DenseFeatLayers: 4, FeatLayerSize: 512, EmbedDim: 512, EmbedRows: 1e7, EmbedTables: 4})
	var emb int64
	for _, l := range m.Layers {
		if l.Kind == KindEmbedding {
			emb += l.ParamBytes
			if l.ParamBytes != 512*1e7*4 {
				t.Errorf("table size = %d, want %d", l.ParamBytes, int64(512*1e7*4))
			}
			if !l.Shardable {
				t.Error("embedding table should be shardable")
			}
		}
	}
	if emb <= m.DenseParamBytes() {
		t.Error("embedding tables should dominate dense params")
	}
	// MP transfer check from §2.1: 8192 samples × 512 dim × bytes/val per
	// destination server. With fp32 that is 16 MB (the paper uses fp64 → 32 MB).
	act := m.Layers[4].ActBytesPerSample // first embedding
	if got := act * 8192; got != 512*4*8192 {
		t.Errorf("per-dest MP bytes = %d, want %d", got, int64(512*4*8192))
	}
}

func TestModelAggregates(t *testing.T) {
	m := CANDLEPreset(Sec53)
	if m.TotalParamBytes() <= 0 || m.TotalFwdFLOPsPerSample() <= 0 {
		t.Fatal("CANDLE aggregates must be positive")
	}
	// CANDLE is a pure MLP: no shardable layers, dense == total.
	if m.DenseParamBytes() != m.TotalParamBytes() {
		t.Error("CANDLE should have no shardable params")
	}
	if len(m.ShardableLayers()) != 0 {
		t.Error("CANDLE should have no shardable layers")
	}
	// §5.3 CANDLE: 16 feat layers of 16384² plus 8 dense of 16384² → 24
	// layers ≈ 24·16384²·4 B ≈ 25.8 GB.
	wantApprox := int64(24) * 16384 * 16384 * 4
	if m.TotalParamBytes() != wantApprox {
		t.Errorf("CANDLE params = %d, want %d", m.TotalParamBytes(), wantApprox)
	}
}

func TestBERTParams(t *testing.T) {
	m := BERTPreset(Sec53)
	// 12 blocks × 12·1024² × 4 B ≈ 604 MB plus embedding and pooler.
	blockParams := int64(12) * 12 * 1024 * 1024 * 4
	if m.TotalParamBytes() < blockParams {
		t.Errorf("BERT params %d below block-only %d", m.TotalParamBytes(), blockParams)
	}
	if m.TotalParamBytes() > 2*blockParams {
		t.Errorf("BERT params %d implausibly high", m.TotalParamBytes())
	}
}

func TestVGGParamScale(t *testing.T) {
	m := VGG(64, 16)
	p := m.TotalParamBytes()
	// VGG16 ≈ 138M params ≈ 552 MB fp32. Coarse model should land within 2x.
	if p < 300e6 || p > 1200e6 {
		t.Errorf("VGG16 params = %d B, want ~552 MB ±2x", p)
	}
	v19 := VGG(64, 19)
	if v19.TotalFwdFLOPsPerSample() <= m.TotalFwdFLOPsPerSample() {
		t.Error("VGG19 should cost more FLOPs than VGG16")
	}
}

func TestResNetScale(t *testing.T) {
	m := ResNet50(128)
	p := m.TotalParamBytes()
	if p < 40e6 || p > 250e6 {
		t.Errorf("ResNet50 params = %d B, want ~102 MB fp32 ballpark", p)
	}
	fl := m.TotalFwdFLOPsPerSample()
	if fl < 2e9 || fl > 8e9 {
		t.Errorf("ResNet50 FLOPs = %g, want ~4.1 GFLOPs", fl)
	}
}

func TestNCFTables(t *testing.T) {
	m := NCFPreset()
	nEmb := 0
	for _, l := range m.Layers {
		if l.Kind == KindEmbedding {
			nEmb++
		}
	}
	if nEmb != 128 {
		t.Errorf("NCF tables = %d, want 128 (32×4)", nEmb)
	}
	if len(m.ShardableLayers()) != 128 {
		t.Errorf("NCF shardable = %d, want 128", len(m.ShardableLayers()))
	}
}

func TestGPURoofline(t *testing.T) {
	// Compute-bound: big dense layer. Memory-bound: embedding.
	d := dense("d", 8192, 8192, false)
	e := embedding("e", 1e7, 128)
	g := A100
	dt := g.LayerTime(d, 128)
	et := g.LayerTime(e, 128)
	if dt <= 0 || et <= 0 {
		t.Fatal("layer times must be positive")
	}
	// Embedding time should be dominated by weight bytes / bandwidth.
	wantEmb := float64(e.ParamBytes) / g.MemBandwidth
	if et < wantEmb {
		t.Errorf("embedding time %g below memory floor %g", et, wantEmb)
	}
	// Dense time should be dominated by FLOPs.
	wantDense := d.FwdFLOPsPerSample * 128 * 3 / g.PeakFLOPS
	if dt < wantDense {
		t.Errorf("dense time %g below compute floor %g", dt, wantDense)
	}
}

func TestIterationComputeTimeMonotonicInBatch(t *testing.T) {
	m := BERTPreset(Sec53)
	t1 := A100.IterationComputeTime(m, 8)
	t2 := A100.IterationComputeTime(m, 32)
	if t2 <= t1 {
		t.Errorf("compute time not monotonic: batch 8 → %g, batch 32 → %g", t1, t2)
	}
}

func TestPresetsConstruct(t *testing.T) {
	for _, s := range []Section{Sec53, Sec56, Sec6} {
		for _, m := range []*Model{DLRMPreset(s), CANDLEPreset(s), BERTPreset(s),
			VGGPreset(s), ResNetPreset(s)} {
			if len(m.Layers) == 0 {
				t.Errorf("%s section %d: no layers", m.Name, s)
			}
			if m.BatchPerGPU <= 0 {
				t.Errorf("%s section %d: bad batch", m.Name, s)
			}
		}
	}
	if got := len(Sec53Models()); got != 6 {
		t.Errorf("Sec53Models = %d models, want 6", got)
	}
}

func TestDLRMAllToAllTables(t *testing.T) {
	m := DLRMAllToAll(512)
	n := 0
	for _, l := range m.Layers {
		if l.Kind == KindEmbedding {
			n++
		}
	}
	if n != 128 {
		t.Errorf("all-to-all DLRM tables = %d, want 128", n)
	}
	if m.BatchPerGPU != 512 {
		t.Errorf("batch = %d, want 512", m.BatchPerGPU)
	}
}

func TestLayerKindString(t *testing.T) {
	kinds := []LayerKind{KindDense, KindConv, KindEmbedding, KindAttention, KindInteraction}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	if LayerKind(99).String() != "kind(99)" {
		t.Error("unknown kind should format numerically")
	}
}
