package model

import "fmt"

// Section selects which experiment's configuration (List 1, Appendix D) a
// preset constructor should produce.
type Section int

const (
	// Sec53 is the dedicated-cluster simulation configuration (§5.3).
	Sec53 Section = iota
	// Sec56 is the shared-cluster simulation configuration (§5.6).
	Sec56
	// Sec6 is the 12-node testbed configuration (§6).
	Sec6
)

// DLRMConfig parameterizes a Deep Learning Recommendation Model.
type DLRMConfig struct {
	BatchPerGPU     int
	DenseLayers     int // top MLP
	DenseLayerSize  int
	DenseFeatLayers int // bottom (feature) MLP
	FeatLayerSize   int
	EmbedDim        int
	EmbedRows       int
	EmbedTables     int
}

// DLRM builds a DLRM model: bottom feature MLP, embedding tables
// (shardable), feature interaction, top MLP.
func DLRM(c DLRMConfig) *Model {
	m := &Model{Name: "DLRM", BatchPerGPU: c.BatchPerGPU}
	for i := 0; i < c.DenseFeatLayers; i++ {
		m.Layers = append(m.Layers, dense(fmt.Sprintf("bot_mlp%d", i), c.FeatLayerSize, c.FeatLayerSize, false))
	}
	for i := 0; i < c.EmbedTables; i++ {
		m.Layers = append(m.Layers, embedding(fmt.Sprintf("emb%d", i), c.EmbedRows, c.EmbedDim))
	}
	inter := Layer{
		Name:              "interaction",
		Kind:              KindInteraction,
		ActBytesPerSample: int64(c.EmbedTables*c.EmbedDim+c.FeatLayerSize) * f32,
		FwdFLOPsPerSample: float64(c.EmbedTables) * float64(c.EmbedDim) * float64(c.EmbedTables),
	}
	m.Layers = append(m.Layers, inter)
	for i := 0; i < c.DenseLayers; i++ {
		in := c.DenseLayerSize
		if i == 0 {
			in = c.EmbedTables*c.EmbedDim + c.FeatLayerSize
		}
		m.Layers = append(m.Layers, dense(fmt.Sprintf("top_mlp%d", i), in, c.DenseLayerSize, false))
	}
	return m
}

// DLRMPreset returns the DLRM configuration of List 1 for the given section.
func DLRMPreset(s Section) *Model {
	switch s {
	case Sec53:
		return DLRM(DLRMConfig{BatchPerGPU: 128, DenseLayers: 8, DenseLayerSize: 2048,
			DenseFeatLayers: 16, FeatLayerSize: 4096, EmbedDim: 128, EmbedRows: 1e7, EmbedTables: 64})
	case Sec56:
		return DLRM(DLRMConfig{BatchPerGPU: 256, DenseLayers: 8, DenseLayerSize: 1024,
			DenseFeatLayers: 16, FeatLayerSize: 2048, EmbedDim: 256, EmbedRows: 1e7, EmbedTables: 16})
	case Sec6:
		return DLRM(DLRMConfig{BatchPerGPU: 64, DenseLayers: 4, DenseLayerSize: 1024,
			DenseFeatLayers: 8, FeatLayerSize: 2048, EmbedDim: 32768, EmbedRows: 1e5, EmbedTables: 12})
	}
	panic("model: unknown section")
}

// DLRMAllToAll is the §5.4 worst-case all-to-all configuration: 128 large
// embedding tables, one per server, with the given per-GPU batch size.
func DLRMAllToAll(batch int) *Model {
	return DLRM(DLRMConfig{BatchPerGPU: batch, DenseLayers: 8, DenseLayerSize: 2048,
		DenseFeatLayers: 16, FeatLayerSize: 4096, EmbedDim: 128, EmbedRows: 1e7, EmbedTables: 128})
}

// CANDLEConfig parameterizes the CANDLE Uno drug-response MLP.
type CANDLEConfig struct {
	BatchPerGPU     int
	DenseLayers     int
	DenseLayerSize  int
	DenseFeatLayers int
	FeatLayerSize   int
}

// CANDLE builds the CANDLE Uno model: feature encoders feeding a deep MLP.
func CANDLE(c CANDLEConfig) *Model {
	m := &Model{Name: "CANDLE", BatchPerGPU: c.BatchPerGPU}
	for i := 0; i < c.DenseFeatLayers; i++ {
		m.Layers = append(m.Layers, dense(fmt.Sprintf("feat%d", i), c.FeatLayerSize, c.FeatLayerSize, false))
	}
	for i := 0; i < c.DenseLayers; i++ {
		m.Layers = append(m.Layers, dense(fmt.Sprintf("mlp%d", i), c.DenseLayerSize, c.DenseLayerSize, false))
	}
	return m
}

// CANDLEPreset returns the CANDLE configuration of List 1.
func CANDLEPreset(s Section) *Model {
	switch s {
	case Sec53:
		return CANDLE(CANDLEConfig{BatchPerGPU: 256, DenseLayers: 8, DenseLayerSize: 16384,
			DenseFeatLayers: 16, FeatLayerSize: 16384})
	case Sec56:
		return CANDLE(CANDLEConfig{BatchPerGPU: 256, DenseLayers: 8, DenseLayerSize: 4096,
			DenseFeatLayers: 16, FeatLayerSize: 4096})
	case Sec6:
		return CANDLE(CANDLEConfig{BatchPerGPU: 10, DenseLayers: 4, DenseLayerSize: 4096,
			DenseFeatLayers: 8, FeatLayerSize: 4096})
	}
	panic("model: unknown section")
}

// BERTConfig parameterizes a BERT encoder.
type BERTConfig struct {
	BatchPerGPU int
	Blocks      int
	Hidden      int
	SeqLen      int
	AttnHeads   int
	EmbedSize   int
	VocabSize   int
}

// BERT builds a BERT encoder: token embedding plus transformer blocks.
// Per-block parameters are 4h² (attention) + 8h² (FFN); per-sample forward
// FLOPs are 2·seq·12h² + 4·seq²·h (attention scores and mixing).
func BERT(c BERTConfig) *Model {
	if c.VocabSize == 0 {
		c.VocabSize = 30522
	}
	m := &Model{Name: "BERT", BatchPerGPU: c.BatchPerGPU}
	emb := Layer{
		Name:              "token_embed",
		Kind:              KindEmbedding,
		ParamBytes:        int64(c.VocabSize) * int64(c.EmbedSize) * f32,
		ActBytesPerSample: int64(c.SeqLen) * int64(c.Hidden) * f32,
		FwdFLOPsPerSample: float64(c.SeqLen) * float64(c.EmbedSize),
		Shardable:         false, // BERT embeddings sync with the dense group
	}
	m.Layers = append(m.Layers, emb)
	h, s := float64(c.Hidden), float64(c.SeqLen)
	for i := 0; i < c.Blocks; i++ {
		m.Layers = append(m.Layers, Layer{
			Name:              fmt.Sprintf("block%d", i),
			Kind:              KindAttention,
			ParamBytes:        int64(12*c.Hidden*c.Hidden) * f32,
			ActBytesPerSample: int64(c.SeqLen) * int64(c.Hidden) * f32,
			FwdFLOPsPerSample: 2*s*12*h*h + 4*s*s*h,
		})
	}
	m.Layers = append(m.Layers, dense("pooler", c.Hidden, c.Hidden, false))
	return m
}

// BERTPreset returns the BERT configuration of List 1.
func BERTPreset(s Section) *Model {
	switch s {
	case Sec53:
		return BERT(BERTConfig{BatchPerGPU: 16, Blocks: 12, Hidden: 1024, SeqLen: 64,
			AttnHeads: 16, EmbedSize: 512})
	case Sec56:
		return BERT(BERTConfig{BatchPerGPU: 16, Blocks: 6, Hidden: 768, SeqLen: 256,
			AttnHeads: 6, EmbedSize: 512})
	case Sec6:
		return BERT(BERTConfig{BatchPerGPU: 2, Blocks: 6, Hidden: 1024, SeqLen: 1024,
			AttnHeads: 16, EmbedSize: 512})
	}
	panic("model: unknown section")
}

// NCFConfig parameterizes Neural Collaborative Filtering.
type NCFConfig struct {
	BatchPerGPU    int
	DenseLayers    int
	DenseLayerSize int
	UserTablesMF   int
	UserTablesMLP  int
	ItemTablesMF   int
	ItemTablesMLP  int
	UsersPerTable  int
	ItemsPerTable  int
	MFDim          int
	MLPDim         int
}

// NCF builds the NCF model: MF and MLP embedding tables plus an MLP tower.
func NCF(c NCFConfig) *Model {
	m := &Model{Name: "NCF", BatchPerGPU: c.BatchPerGPU}
	for i := 0; i < c.UserTablesMF; i++ {
		m.Layers = append(m.Layers, embedding(fmt.Sprintf("user_mf%d", i), c.UsersPerTable, c.MFDim))
	}
	for i := 0; i < c.UserTablesMLP; i++ {
		m.Layers = append(m.Layers, embedding(fmt.Sprintf("user_mlp%d", i), c.UsersPerTable, c.MLPDim))
	}
	for i := 0; i < c.ItemTablesMF; i++ {
		m.Layers = append(m.Layers, embedding(fmt.Sprintf("item_mf%d", i), c.ItemsPerTable, c.MFDim))
	}
	for i := 0; i < c.ItemTablesMLP; i++ {
		m.Layers = append(m.Layers, embedding(fmt.Sprintf("item_mlp%d", i), c.ItemsPerTable, c.MLPDim))
	}
	for i := 0; i < c.DenseLayers; i++ {
		in := c.DenseLayerSize
		if i == 0 {
			in = (c.UserTablesMLP + c.ItemTablesMLP) * c.MLPDim
		}
		m.Layers = append(m.Layers, dense(fmt.Sprintf("mlp%d", i), in, c.DenseLayerSize, false))
	}
	return m
}

// NCFPreset returns the NCF configuration of List 1 (§5.3 only).
func NCFPreset() *Model {
	return NCF(NCFConfig{BatchPerGPU: 128, DenseLayers: 8, DenseLayerSize: 4096,
		UserTablesMF: 32, UserTablesMLP: 32, ItemTablesMF: 32, ItemTablesMLP: 32,
		UsersPerTable: 1e6, ItemsPerTable: 1e6, MFDim: 64, MLPDim: 128})
}

// ResNet50 builds a coarse ResNet50: ~25.6M params, ~4.1 GFLOPs/sample,
// modelled as 16 residual stages plus stem and classifier.
func ResNet50(batch int) *Model {
	m := &Model{Name: "ResNet50", BatchPerGPU: batch}
	m.Layers = append(m.Layers, Layer{
		Name: "stem", Kind: KindConv,
		ParamBytes:        9408 * f32,
		ActBytesPerSample: 64 * 112 * 112 * f32 / 4,
		FwdFLOPsPerSample: 0.24e9,
	})
	// 16 bottleneck blocks across 4 stages with standard channel growth.
	stages := []struct {
		blocks, ch, sp int
	}{{3, 256, 56}, {4, 512, 28}, {6, 1024, 14}, {3, 2048, 7}}
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			params := int64(st.ch) * int64(st.ch) / 2 * f32 // ~c²/2 per bottleneck
			m.Layers = append(m.Layers, Layer{
				Name:              fmt.Sprintf("res%d_%d", si+2, b),
				Kind:              KindConv,
				ParamBytes:        params,
				ActBytesPerSample: int64(st.ch) * int64(st.sp) * int64(st.sp) * f32 / 8,
				FwdFLOPsPerSample: 4.1e9 * 0.95 / 16,
			})
		}
	}
	m.Layers = append(m.Layers, dense("fc", 2048, 1000, false))
	return m
}

// VGG builds VGG16 (or VGG19 with extra conv blocks): ~138M params
// dominated by fc6/fc7, ~15.5 GFLOPs/sample forward (19.6 for VGG19).
func VGG(batch int, depth int) *Model {
	name := fmt.Sprintf("VGG%d", depth)
	m := &Model{Name: name, BatchPerGPU: batch}
	convs := 13
	flops := 15.3e9
	if depth == 19 {
		convs = 16
		flops = 19.5e9
	}
	chans := []int{64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512, 512, 512, 512}
	for i := 0; i < convs; i++ {
		ch := chans[i]
		sp := 224 >> uint(i/3) // coarse spatial shrink
		if sp < 7 {
			sp = 7
		}
		m.Layers = append(m.Layers, Layer{
			Name:              fmt.Sprintf("conv%d", i),
			Kind:              KindConv,
			ParamBytes:        int64(ch) * int64(ch) * 9 * f32 / 2,
			ActBytesPerSample: int64(ch) * int64(sp) * int64(sp) * f32 / 16,
			FwdFLOPsPerSample: flops * 0.9 / float64(convs),
		})
	}
	m.Layers = append(m.Layers, dense("fc6", 25088, 4096, false))
	m.Layers = append(m.Layers, dense("fc7", 4096, 4096, false))
	m.Layers = append(m.Layers, dense("fc8", 4096, 1000, false))
	return m
}

// VGGPreset returns VGG16 with the batch size of List 1.
func VGGPreset(s Section) *Model {
	switch s {
	case Sec53, Sec56:
		return VGG(64, 16)
	case Sec6:
		return VGG(32, 16)
	}
	panic("model: unknown section")
}

// ResNetPreset returns ResNet50 with the batch size of List 1.
func ResNetPreset(s Section) *Model {
	switch s {
	case Sec53, Sec56:
		return ResNet50(128)
	case Sec6:
		return ResNet50(20)
	}
	panic("model: unknown section")
}

// Sec53Models returns the six §5.3 workloads in the paper's order.
func Sec53Models() []*Model {
	return []*Model{
		CANDLEPreset(Sec53),
		VGGPreset(Sec53),
		BERTPreset(Sec53),
		DLRMPreset(Sec53),
		NCFPreset(),
		ResNetPreset(Sec53),
	}
}
