// Package model defines the DNN workloads TopoOpt is evaluated on: DLRM,
// CANDLE (Uno), BERT, NCF, ResNet50 and VGG16/19, with the exact
// configurations of List 1 in the paper's Appendix D. A model is a coarse
// operator graph — a sequence of layers, each with parameter bytes,
// per-sample activation bytes and per-sample forward FLOPs — plus a
// roofline GPU compute model used to convert FLOPs into seconds.
//
// The paper obtains compute times by FlexFlow's on-device measurement; we
// substitute an analytic A100 roofline (see DESIGN.md, substitution table).
// Only relative magnitudes matter to the reproduced figures.
package model

import "fmt"

// LayerKind classifies a layer for parallelization purposes.
type LayerKind int

const (
	// KindDense is a fully connected layer (weight-heavy, compute-heavy).
	KindDense LayerKind = iota
	// KindConv is a convolutional layer (compute-heavy, weight-light).
	KindConv
	// KindEmbedding is an embedding table lookup (weight-huge,
	// memory-bound, near-zero FLOPs). Shardable across servers.
	KindEmbedding
	// KindAttention is a transformer attention block.
	KindAttention
	// KindInteraction is a feature-interaction / concat layer (DLRM).
	KindInteraction
)

func (k LayerKind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindConv:
		return "conv"
	case KindEmbedding:
		return "embedding"
	case KindAttention:
		return "attention"
	case KindInteraction:
		return "interaction"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Layer is one coarse operator of a DNN.
type Layer struct {
	Name string
	Kind LayerKind
	// ParamBytes is the size of the layer's weights (fp32).
	ParamBytes int64
	// ActBytesPerSample is the size of the layer's output activation for
	// one input sample. This is what MP transfers carry when the layer's
	// consumer lives on another server.
	ActBytesPerSample int64
	// FwdFLOPsPerSample is the forward-pass FLOP count per sample. The
	// backward pass is modelled as 2x forward, the standard accounting.
	FwdFLOPsPerSample float64
	// Shardable marks layers that may be placed on a subset of servers
	// with model parallelism (embedding tables and very large dense
	// layers).
	Shardable bool
}

// Model is a coarse operator-graph description of a DNN training workload.
type Model struct {
	Name string
	// Layers in topological (forward) order.
	Layers []Layer
	// BatchPerGPU is the default per-GPU batch size for the experiment
	// section the model was configured for.
	BatchPerGPU int
}

// TotalParamBytes returns the total weight footprint.
func (m *Model) TotalParamBytes() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.ParamBytes
	}
	return t
}

// DenseParamBytes returns weight bytes excluding shardable layers — the
// portion replicated under hybrid parallelism, hence the AllReduce volume.
func (m *Model) DenseParamBytes() int64 {
	var t int64
	for _, l := range m.Layers {
		if !l.Shardable {
			t += l.ParamBytes
		}
	}
	return t
}

// TotalFwdFLOPsPerSample sums forward FLOPs over all layers.
func (m *Model) TotalFwdFLOPsPerSample() float64 {
	t := 0.0
	for _, l := range m.Layers {
		t += l.FwdFLOPsPerSample
	}
	return t
}

// ShardableLayers returns the indices of shardable layers.
func (m *Model) ShardableLayers() []int {
	var idx []int
	for i, l := range m.Layers {
		if l.Shardable {
			idx = append(idx, i)
		}
	}
	return idx
}

// GPU is a roofline compute device: a layer's time is the max of its
// compute time (FLOPs / peak) and its memory time (bytes touched / HBM
// bandwidth).
type GPU struct {
	Name string `json:"name"`
	// PeakFLOPS is sustained training throughput in FLOP/s.
	PeakFLOPS float64 `json:"peak_flops"`
	// MemBandwidth is HBM bandwidth in bytes/s.
	MemBandwidth float64 `json:"mem_bandwidth"`
}

// A100 approximates an NVIDIA A100: 312 TFLOPS tensor-core peak derated to
// ~40% sustained utilisation, 1.555 TB/s HBM2.
var A100 = GPU{Name: "A100", PeakFLOPS: 125e12, MemBandwidth: 1.555e12}

// LayerTime returns the forward+backward time in seconds for one layer at
// the given local batch size on this GPU.
func (g GPU) LayerTime(l Layer, batch int) float64 {
	const bwdFactor = 3 // fwd + 2x bwd
	flops := l.FwdFLOPsPerSample * float64(batch) * bwdFactor
	// Bytes touched: read weights + write activations (both directions).
	bytes := float64(l.ParamBytes) + float64(l.ActBytesPerSample)*float64(batch)*bwdFactor
	ct := flops / g.PeakFLOPS
	mt := bytes / g.MemBandwidth
	if mt > ct {
		return mt
	}
	return ct
}

// IterationComputeTime returns the per-iteration compute time of the whole
// model at the given local batch, assuming all layers execute serially on
// one GPU (pure data parallelism). Hybrid strategies are costed layer by
// layer in the flexnet package.
func (g GPU) IterationComputeTime(m *Model, batch int) float64 {
	t := 0.0
	for _, l := range m.Layers {
		t += g.LayerTime(l, batch)
	}
	return t
}

const f32 = 4 // bytes per fp32 value

// dense returns a fully connected layer in->out.
func dense(name string, in, out int, shardable bool) Layer {
	return Layer{
		Name:              name,
		Kind:              KindDense,
		ParamBytes:        int64(in) * int64(out) * f32,
		ActBytesPerSample: int64(out) * f32,
		FwdFLOPsPerSample: 2 * float64(in) * float64(out),
		Shardable:         shardable,
	}
}

// embedding returns one embedding table with the given rows and dimension.
// Lookups are memory-bound: FLOPs ~ 0, activation = dim values.
func embedding(name string, rows, dim int) Layer {
	return Layer{
		Name:              name,
		Kind:              KindEmbedding,
		ParamBytes:        int64(rows) * int64(dim) * f32,
		ActBytesPerSample: int64(dim) * f32,
		FwdFLOPsPerSample: float64(dim), // gather + pooling
		Shardable:         true,
	}
}
