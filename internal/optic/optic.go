// Package optic models the optical switching technologies of Table 1:
// port counts, reconfiguration latencies, insertion loss and per-port
// cost. The simulator consumes only reconfiguration latency and cost;
// port count and insertion loss bound which devices a deployment can use.
package optic

import "fmt"

// Device is one optical switching technology.
type Device struct {
	Name            string
	PortCount       int
	ReconfigLatency float64 // seconds
	InsertionLossDB [2]float64
	CostPerPort     float64 // USD; 0 = not commercially available
	Commercial      bool
}

// Table 1 of the paper.
var (
	PatchPanel = Device{
		Name: "Optical Patch Panel", PortCount: 1008,
		ReconfigLatency: 120, // "minutes": use 2 min
		InsertionLossDB: [2]float64{0.5, 0.5}, CostPerPort: 100, Commercial: true,
	}
	MEMS3D = Device{
		Name: "3D MEMS", PortCount: 384,
		ReconfigLatency: 10e-3,
		InsertionLossDB: [2]float64{1.5, 2.7}, CostPerPort: 520, Commercial: true,
	}
	MEMS2D = Device{
		Name: "2D MEMS", PortCount: 300,
		ReconfigLatency: 11.5e-6,
		InsertionLossDB: [2]float64{10, 20},
	}
	SiliconPhotonics = Device{
		Name: "Silicon Photonics", PortCount: 256,
		ReconfigLatency: 900e-9,
		InsertionLossDB: [2]float64{3.7, 3.7},
	}
	TunableLaser = Device{
		Name: "Tunable Lasers", PortCount: 128,
		ReconfigLatency: 3.8e-9,
		InsertionLossDB: [2]float64{7, 13},
	}
	RotorNet = Device{
		Name: "RotorNet", PortCount: 64,
		ReconfigLatency: 10e-6,
		InsertionLossDB: [2]float64{2, 2},
	}
)

// All returns Table 1 in the paper's order.
func All() []Device {
	return []Device{PatchPanel, MEMS3D, MEMS2D, SiliconPhotonics, TunableLaser, RotorNet}
}

// Fits reports whether n servers fit on one device plane: the §3 design
// uses one device per server interface, each connecting all n servers, so
// the constraint is per-plane port count regardless of degree.
func (d Device) Fits(n int) bool { return n <= d.PortCount }

// PlanesNeeded returns how many devices a cluster of degree deg requires:
// d planes, doubled by the look-ahead design of Appendix C.
func (d Device) PlanesNeeded(deg int, lookAhead bool) int {
	if lookAhead {
		return 2 * deg
	}
	return deg
}

// String implements fmt.Stringer.
func (d Device) String() string {
	cost := "n/a"
	if d.CostPerPort > 0 {
		cost = fmt.Sprintf("$%.0f/port", d.CostPerPort)
	}
	return fmt.Sprintf("%s: %d ports, reconfig %.3gs, loss %.1f-%.1f dB, %s",
		d.Name, d.PortCount, d.ReconfigLatency, d.InsertionLossDB[0], d.InsertionLossDB[1], cost)
}

// OneByTwoSwitch is the $25 1×2 mechanical optical switch of the
// look-ahead design (Appendix C), 0.73 dB measured loss.
type OneByTwoSwitch struct{}

// Cost returns the per-unit cost in USD.
func (OneByTwoSwitch) Cost() float64 { return 25 }

// LossDB returns the measured insertion loss.
func (OneByTwoSwitch) LossDB() float64 { return 0.73 }
