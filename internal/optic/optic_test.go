package optic

import (
	"strings"
	"testing"
)

func TestTable1Contents(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("devices = %d, want 6", len(all))
	}
	if all[0].Name != "Optical Patch Panel" || all[0].PortCount != 1008 {
		t.Errorf("first row wrong: %+v", all[0])
	}
	// Commercial availability (Table 1): only patch panel and 3D MEMS.
	commercial := 0
	for _, d := range all {
		if d.Commercial {
			commercial++
			if d.CostPerPort <= 0 {
				t.Errorf("%s commercial without a price", d.Name)
			}
		}
	}
	if commercial != 2 {
		t.Errorf("commercial devices = %d, want 2", commercial)
	}
	// Latency ordering: patch panel slowest, tunable laser fastest.
	if !(PatchPanel.ReconfigLatency > MEMS3D.ReconfigLatency &&
		MEMS3D.ReconfigLatency > MEMS2D.ReconfigLatency &&
		MEMS2D.ReconfigLatency > SiliconPhotonics.ReconfigLatency &&
		SiliconPhotonics.ReconfigLatency > TunableLaser.ReconfigLatency) {
		t.Error("reconfiguration latency ordering broken")
	}
}

func TestFits(t *testing.T) {
	if !PatchPanel.Fits(1008) || PatchPanel.Fits(1009) {
		t.Error("patch panel port bound wrong")
	}
	if !MEMS3D.Fits(384) || MEMS3D.Fits(385) {
		t.Error("3D MEMS port bound wrong")
	}
}

func TestPlanesNeeded(t *testing.T) {
	if PatchPanel.PlanesNeeded(4, true) != 8 {
		t.Error("look-ahead doubles planes")
	}
	if MEMS3D.PlanesNeeded(4, false) != 4 {
		t.Error("plain planes = degree")
	}
}

func TestString(t *testing.T) {
	s := PatchPanel.String()
	if !strings.Contains(s, "1008") || !strings.Contains(s, "$100/port") {
		t.Errorf("string missing fields: %s", s)
	}
	if !strings.Contains(MEMS2D.String(), "n/a") {
		t.Error("non-commercial should print n/a")
	}
}

func TestOneByTwoSwitch(t *testing.T) {
	var sw OneByTwoSwitch
	if sw.Cost() != 25 || sw.LossDB() != 0.73 {
		t.Error("1x2 switch constants wrong")
	}
}
