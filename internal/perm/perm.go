// Package perm implements the group-theory machinery behind TopoOpt's
// AllReduce sub-topology construction: Euler-totient co-prime enumeration
// (TotientPerms, Algorithm 2 of the paper), the geometric-sequence
// permutation selection (SelectPermutations, Algorithm 3), and ring
// generation rules ("+p" permutations, Theorem 2).
//
// A ring generation rule p for a group of k servers connects group-local
// index i to (i+p) mod k. By the fundamental theorem of cyclic groups the
// rule yields a single Hamiltonian ring exactly when gcd(p, k) = 1, so the
// candidate set is {p < k : gcd(p,k)=1}, of size φ(k).
package perm

import (
	"fmt"
	"math"
	"sort"
)

// GCD returns the greatest common divisor of a and b (non-negative).
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Totient returns Euler's totient φ(n) = |{k < n : gcd(k,n) = 1}|.
// φ(1) = 1 by convention.
func Totient(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("perm: totient of non-positive %d", n))
	}
	result := n
	m := n
	for p := 2; p*p <= m; p++ {
		if m%p == 0 {
			for m%p == 0 {
				m /= p
			}
			result -= result / p
		}
	}
	if m > 1 {
		result -= result / m
	}
	return result
}

// IsPrime reports whether n is prime (trial division; n is at most a cluster
// size so this is plenty fast).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			return false
		}
	}
	return true
}

// Coprimes returns all p in [1, n) with gcd(p, n) = 1, ascending. Each is a
// valid ring generation rule for a group of n servers (Theorem 2).
func Coprimes(n int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("perm: coprimes of non-positive %d", n))
	}
	if n == 1 {
		return []int{}
	}
	out := make([]int, 0, Totient(n))
	for p := 1; p < n; p++ {
		if GCD(p, n) == 1 {
			out = append(out, p)
		}
	}
	return out
}

// TotientPerms returns the candidate ring generation rules for an AllReduce
// group of size k (Algorithm 2). If primeOnly is set, candidates are
// restricted to p = 1 and prime p, shrinking the search space to O(k/ln k)
// per the Prime Number Theorem — the variant the paper uses at large scale.
func TotientPerms(k int, primeOnly bool) []int {
	ps := Coprimes(k)
	if !primeOnly {
		return ps
	}
	out := ps[:0:0]
	for _, p := range ps {
		if p == 1 || IsPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

// SelectPermutations chooses d generation rules from the sorted candidate
// set cands so that the chosen values approximate the geometric sequence
// 1, x, x², … with ratio x = k^(1/d) (Algorithm 3). This bounds the
// AllReduce sub-topology diameter by O(d·k^(1/d)) (Theorem 1), giving MP
// transfers short detours. k is the group size. Returns at most d distinct
// values, ascending.
func SelectPermutations(k, d int, cands []int) []int {
	if d <= 0 || len(cands) == 0 {
		return nil
	}
	if d >= len(cands) {
		out := append([]int(nil), cands...)
		sort.Ints(out)
		return out
	}
	remaining := append([]int(nil), cands...)
	sort.Ints(remaining)
	chosen := []int{remaining[0]} // q = min candidate (normally 1)
	q := float64(remaining[0])
	remaining = remaining[1:]
	x := math.Pow(float64(k), 1/float64(d))
	// When k^(1/d) < 2 the geometric steps collapse onto already-chosen
	// values; the paper (Appendix E.2) recommends ratio at least 2 in that
	// regime.
	if x < 2 {
		x = 2
	}
	for i := 1; i < d && len(remaining) > 0; i++ {
		target := x * q
		best := 0
		for j := 1; j < len(remaining); j++ {
			if math.Abs(float64(remaining[j])-target) < math.Abs(float64(remaining[best])-target) {
				best = j
			}
		}
		chosen = append(chosen, remaining[best])
		q = float64(remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	sort.Ints(chosen)
	return chosen
}

// RingEdge is one directed connection of a ring permutation, in cluster
// node IDs.
type RingEdge struct {
	From, To int
}

// Ring expands generation rule p over the given ordered group members:
// members[i] -> members[(i+p) mod k] for every i. It panics if gcd(p, k)
// != 1 because the result would not be a single ring.
func Ring(members []int, p int) []RingEdge {
	k := len(members)
	if k < 2 {
		return nil
	}
	if GCD(p, k) != 1 {
		panic(fmt.Sprintf("perm: p=%d not coprime with group size %d", p, k))
	}
	edges := make([]RingEdge, 0, k)
	for i := 0; i < k; i++ {
		edges = append(edges, RingEdge{members[i], members[(i+p)%k]})
	}
	return edges
}

// RingOrder returns the visiting order of the ring with rule p starting at
// members[0]: members[0], members[p], members[2p], ... Useful for building
// ring-AllReduce schedules.
func RingOrder(members []int, p int) []int {
	k := len(members)
	if k == 0 {
		return nil
	}
	if GCD(p, k) != 1 {
		panic(fmt.Sprintf("perm: p=%d not coprime with group size %d", p, k))
	}
	order := make([]int, 0, k)
	for i, at := 0, 0; i < k; i++ {
		order = append(order, members[at])
		at = (at + p) % k
	}
	return order
}

// IsSingleRing reports whether the directed edges i -> (i+p) mod k form one
// cycle covering all k nodes. Equivalent to gcd(p,k)==1; used in tests as
// the independent check.
func IsSingleRing(k, p int) bool {
	if k < 2 {
		return false
	}
	seen := make([]bool, k)
	at, count := 0, 0
	for !seen[at] {
		seen[at] = true
		count++
		at = (at + p) % k
	}
	return count == k
}
