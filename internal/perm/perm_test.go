package perm

import (
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 8, 4}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {-12, 8, 4}, {1, 1, 1},
		{100, 100, 100},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTotientKnownValues(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 4, 6: 2, 8: 4, 12: 4,
		16: 8, 100: 40, 128: 64, 1008: 288}
	for n, w := range want {
		if got := Totient(n); got != w {
			t.Errorf("Totient(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestTotientMatchesCoprimeCount(t *testing.T) {
	for n := 2; n <= 200; n++ {
		if got, want := Totient(n), len(Coprimes(n)); got != want {
			t.Errorf("Totient(%d) = %d but %d coprimes", n, got, want)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true,
		13: true, 1: false, 0: false, 4: false, 9: false, 91: false, 97: true}
	for n, w := range primes {
		if got := IsPrime(n); got != w {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestCoprimes12(t *testing.T) {
	// Paper §4.3: for n = 12, p ∈ {1, 5, 7, 11}.
	got := Coprimes(12)
	want := []int{1, 5, 7, 11}
	if len(got) != len(want) {
		t.Fatalf("Coprimes(12) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coprimes(12) = %v, want %v", got, want)
		}
	}
}

func TestTotientPermsPrimeOnly(t *testing.T) {
	got := TotientPerms(16, true)
	// Coprimes of 16 are odd numbers; prime-only keeps 1 and odd primes.
	want := []int{1, 3, 5, 7, 11, 13}
	if len(got) != len(want) {
		t.Fatalf("TotientPerms(16, prime) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TotientPerms(16, prime) = %v, want %v", got, want)
		}
	}
}

// Property (Theorem 2): p is a single-ring generator iff gcd(p,k) = 1.
func TestRingGenerationTheorem(t *testing.T) {
	for k := 2; k <= 64; k++ {
		coprime := make(map[int]bool)
		for _, p := range Coprimes(k) {
			coprime[p] = true
		}
		for p := 1; p < k; p++ {
			if IsSingleRing(k, p) != coprime[p] {
				t.Errorf("k=%d p=%d: single-ring=%v coprime=%v",
					k, p, IsSingleRing(k, p), coprime[p])
			}
		}
	}
}

func TestRingCoversGroupOnce(t *testing.T) {
	members := []int{3, 7, 11, 15, 19, 23, 27, 31}
	for _, p := range Coprimes(len(members)) {
		edges := Ring(members, p)
		if len(edges) != len(members) {
			t.Fatalf("p=%d: %d edges, want %d", p, len(edges), len(members))
		}
		outSeen := make(map[int]bool)
		inSeen := make(map[int]bool)
		for _, e := range edges {
			if outSeen[e.From] || inSeen[e.To] {
				t.Fatalf("p=%d: node repeated in ring", p)
			}
			outSeen[e.From] = true
			inSeen[e.To] = true
		}
	}
}

func TestRingOrderVisitsAll(t *testing.T) {
	members := []int{0, 1, 2, 3, 4}
	order := RingOrder(members, 2)
	want := []int{0, 2, 4, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("RingOrder = %v, want %v", order, want)
		}
	}
}

func TestRingNonCoprimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for gcd(p,k) != 1")
		}
	}()
	Ring([]int{0, 1, 2, 3}, 2)
}

func TestSelectPermutationsBasic(t *testing.T) {
	cands := Coprimes(16) // 1,3,5,7,9,11,13,15
	got := SelectPermutations(16, 3, cands)
	if len(got) != 3 {
		t.Fatalf("selected %v, want 3 values", got)
	}
	if got[0] != 1 {
		t.Errorf("first selection = %d, want 1 (minimum candidate)", got[0])
	}
	// Geometric targets for k=16, d=3: ratio 16^(1/3)≈2.52 → 1, ~2.5, ~6.3.
	// Projections onto odd numbers: 1, 3, 7 (or 5/7 depending on ties).
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("selections not increasing: %v", got)
		}
	}
}

func TestSelectPermutationsPaperExample(t *testing.T) {
	// Paper Figs 7–9: 16 servers, 3 NICs → permutations +1, +3, +7.
	got := SelectPermutations(16, 3, Coprimes(16))
	want := []int{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSelectPermutationsDegenerate(t *testing.T) {
	if got := SelectPermutations(8, 0, Coprimes(8)); got != nil {
		t.Errorf("d=0: got %v, want nil", got)
	}
	if got := SelectPermutations(8, 10, Coprimes(8)); len(got) != len(Coprimes(8)) {
		t.Errorf("d>candidates: got %v, want all %v", got, Coprimes(8))
	}
	if got := SelectPermutations(8, 2, nil); got != nil {
		t.Errorf("no candidates: got %v, want nil", got)
	}
}

func TestSelectPermutationsDistinct(t *testing.T) {
	f := func(seed int64) bool {
		k := 4 + int(uint64(seed)%60)
		cands := Coprimes(k)
		for d := 1; d <= 6; d++ {
			got := SelectPermutations(k, d, cands)
			seen := make(map[int]bool)
			for _, p := range got {
				if seen[p] {
					return false
				}
				seen[p] = true
				if GCD(p, k) != 1 {
					return false
				}
			}
			if len(got) > d && d < len(cands) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
