// Package shard provides a deterministic consistent-hash ring over the
// request-fingerprint space.
//
// topooptd shards work by the SHA-256 fingerprints the serve layer
// already computes for every plan/compare request: a fingerprint's
// leading 64 bits index into a ring of virtual nodes, and the member
// owning the next point clockwise owns the request. Ownership is a pure
// function of the member list and the vnode count — every daemon given
// the same static peer list derives byte-identical ownership with no
// coordination, which is what makes one-hop forwarding sound.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when the caller
// passes 0. 160 points per member keeps the max/min ownership-share
// ratio comfortably under 1.3x for small clusters (pinned by test)
// while a 5-member ring is still only 800 points — lookups stay a
// ~10-step binary search.
const DefaultVNodes = 160

// point is one virtual node: a position on the 64-bit ring and the
// index of the member that owns the arc ending at it.
type point struct {
	hash   uint64
	member int32
}

// Ring is an immutable consistent-hash ring. Build one with New; all
// methods are safe for concurrent use.
type Ring struct {
	members []string
	vnodes  int
	points  []point // sorted by (hash, member)
}

// New builds a ring over the given members (peer base URLs, typically).
// Members are deduplicated and sorted, so any permutation of the same
// list yields a byte-identical ring. vnodes <= 0 selects DefaultVNodes.
func New(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, errors.New("shard: empty member name")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, errors.New("shard: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		vnodes:  vnodes,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   pointHash(m, v),
				member: int32(i),
			})
		}
	}
	// Ties between members at the same hash (astronomically unlikely but
	// possible) break by member index, which is itself derived from the
	// sorted member list — the order stays insertion-independent.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// pointHash places virtual node v of member m on the ring: the leading
// 8 bytes of SHA-256 over "m#v". SHA-256 matches the fingerprint hash,
// so keys and points draw from the same uniform space.
func pointHash(m string, v int) uint64 {
	sum := sha256.Sum256([]byte(m + "#" + strconv.Itoa(v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Key maps a request fingerprint onto the ring. Fingerprints are
// 64-char SHA-256 hex (see PlanRequest.Fingerprint), so the leading 16
// hex digits are the leading 64 bits of an already-uniform hash; any
// other string is hashed the same way the ring points are.
func Key(fp string) uint64 {
	if len(fp) >= 16 {
		if b, err := hex.DecodeString(fp[:16]); err == nil {
			return binary.BigEndian.Uint64(b)
		}
	}
	sum := sha256.Sum256([]byte(fp))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning the given fingerprint: the member of
// the first ring point at or clockwise of Key(fp), wrapping at 2^64.
func (r *Ring) Owner(fp string) string {
	return r.members[r.ownerIndex(Key(fp))]
}

func (r *Ring) ownerIndex(key uint64) int32 {
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= key
	})
	if i == len(r.points) {
		i = 0 // wrap: keys past the last point belong to the first
	}
	return r.points[i].member
}

// Members returns the sorted, deduplicated member list.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Shares returns each member's fraction of the 64-bit key space, by
// summing the arc lengths ending at that member's points. Shares sum to
// 1 (up to float rounding) and quantify ring balance.
func (r *Ring) Shares() map[string]float64 {
	// Accumulate in float64: a single member owns the whole 2^64 ring,
	// which would overflow a uint64 accumulator back to zero.
	arcs := make([]float64, len(r.members))
	prev := r.points[len(r.points)-1].hash // the wrap arc ends at points[0]
	for _, p := range r.points {
		arcs[p.member] += float64(p.hash - prev) // uint64 subtraction wraps correctly
		prev = p.hash
	}
	shares := make(map[string]float64, len(r.members))
	for i, m := range r.members {
		shares[m] = arcs[i] / (1 << 64)
	}
	return shares
}

// Share returns one member's fraction of the key space, or an error if
// the member is not on the ring.
func (r *Ring) Share(member string) (float64, error) {
	i := sort.SearchStrings(r.members, member)
	if i == len(r.members) || r.members[i] != member {
		return 0, fmt.Errorf("shard: %q is not a ring member", member)
	}
	return r.Shares()[member], nil
}
