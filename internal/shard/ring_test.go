package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func testMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://127.0.0.1:%d", 7180+i)
	}
	return m
}

// fingerprint mimics the serve layer's request fingerprints: 64-char
// SHA-256 hex.
func fingerprint(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("req-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestRingDeterministicAcrossInsertionOrders(t *testing.T) {
	members := testMembers(5)
	base, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Members(), base.Members()) {
			t.Fatalf("trial %d: members differ: %v vs %v", trial, r.Members(), base.Members())
		}
		for i := 0; i < 500; i++ {
			fp := fingerprint(i)
			if got, want := r.Owner(fp), base.Owner(fp); got != want {
				t.Fatalf("trial %d: owner(%s) = %q, base says %q", trial, fp, got, want)
			}
		}
	}
}

func TestRingDeduplicatesMembers(t *testing.T) {
	r, err := New([]string{"a", "b", "a", "b", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("members = %v, want [a b]", got)
	}
	if got := len(r.points); got != 2*8 {
		t.Fatalf("points = %d, want 16", got)
	}
}

func TestRingRejectsEmptyAndBlank(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("expected error for empty member list")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("expected error for blank member name")
	}
}

// TestRingShareBalance pins the ownership-share balance bound from the
// issue: with the default vnode count, max/min member share stays
// within 1.3x for cluster sizes 2, 3, and 5.
func TestRingShareBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		r, err := New(testMembers(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		shares := r.Shares()
		lo, hi, sum := math.Inf(1), 0.0, 0.0
		for m, s := range shares {
			if s <= 0 {
				t.Fatalf("n=%d: member %s has non-positive share %g", n, m, s)
			}
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d: shares sum to %g, want 1", n, sum)
		}
		if ratio := hi / lo; ratio > 1.3 {
			t.Fatalf("n=%d: share imbalance %.3fx exceeds 1.3x (min=%.4f max=%.4f)", n, ratio, lo, hi)
		}
	}
}

// TestRingOwnerMatchesEmpiricalShare sanity-checks that the arc-length
// shares reported by Shares agree with the empirical ownership fraction
// over many uniform fingerprints.
func TestRingOwnerMatchesEmpiricalShare(t *testing.T) {
	r, err := New(testMembers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 20000
	counts := make(map[string]int)
	for i := 0; i < samples; i++ {
		counts[r.Owner(fingerprint(i))]++
	}
	for m, want := range r.Shares() {
		got := float64(counts[m]) / samples
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("member %s: empirical share %.4f vs arc share %.4f", m, got, want)
		}
	}
}

func TestRingKeyUsesFingerprintPrefix(t *testing.T) {
	fp := fingerprint(42)
	b, _ := hex.DecodeString(fp[:16])
	want := uint64(0)
	for _, x := range b {
		want = want<<8 | uint64(x)
	}
	if got := Key(fp); got != want {
		t.Fatalf("Key(%s) = %#x, want leading 64 bits %#x", fp, got, want)
	}
	// Non-hex strings still map somewhere stable.
	if Key("not hex at all!") != Key("not hex at all!") {
		t.Fatal("Key not deterministic for non-hex input")
	}
	if Key("not hex at all!") == Key("a different string") {
		t.Fatal("distinct non-hex inputs collided (suspicious)")
	}
}

func TestRingShare(t *testing.T) {
	r, err := New(testMembers(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Share(testMembers(2)[0])
	if err != nil || s <= 0 || s >= 1 {
		t.Fatalf("Share = %g, %v; want in (0,1)", s, err)
	}
	if _, err := r.Share("http://nowhere"); err == nil {
		t.Fatal("expected error for unknown member")
	}
	if got := r.VNodes(); got != DefaultVNodes {
		t.Fatalf("VNodes = %d, want %d", got, DefaultVNodes)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := New([]string{"solo"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(fingerprint(i)); got != "solo" {
			t.Fatalf("owner = %q, want solo", got)
		}
	}
	s, err := r.Share("solo")
	if err != nil || math.Abs(s-1) > 1e-9 {
		t.Fatalf("solo share = %g, %v; want 1", s, err)
	}
}
