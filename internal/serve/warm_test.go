package serve

// Warm-start tests: the plan-similarity index, near-miss warm seeding,
// index rebuild from the WAL after a crash, and the anytime partial
// stream of async plan jobs.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"topoopt"
	"topoopt/internal/wal"
)

// canonical mirrors what planRun indexes: the request in canonical form.
func canonical(req PlanRequest) PlanRequest {
	return PlanRequest{Model: req.Model.Canonical(), Options: req.Options.Canonical()}
}

// TestSimIndexInsertionOrderIndependent pins the determinism contract
// of neighbor selection: the nearest fingerprint is a function of the
// index *contents*, never of the order entries were added in — ties
// break toward the lexicographically smallest fingerprint.
func TestSimIndexInsertionOrderIndependent(t *testing.T) {
	// Three same-bucket entries around the query testRequest(1):
	//   "a" (seed 3)   → distance 0.5 (seed-only perturbation)
	//   "b" (seed 2)   → distance 0.5 (seed-only perturbation — tie with "a")
	//   "c" (degree 5) → distance 4·relDiff(4,5) = 0.8 (degree perturbation)
	entries := map[string]PlanRequest{
		"a": canonical(testRequest(3)),
		"b": canonical(testRequest(2)),
	}
	degReq := testRequest(1)
	degReq.Options.Degree = 5
	entries["c"] = canonical(degReq)

	orders := [][]string{{"a", "b", "c"}, {"c", "b", "a"}, {"b", "c", "a"}}
	for _, order := range orders {
		x := newSimIndex()
		for _, fp := range order {
			x.add(fp, entries[fp])
		}
		got, ok := x.nearest(canonical(testRequest(1)), "self")
		if !ok || got != "a" {
			t.Errorf("insertion order %v: nearest = %q (ok=%v), want \"a\" (tie broken to smallest fp)",
				order, got, ok)
		}
		// Sanity: an exact-options entry (distance 0) must beat the
		// seed-perturbed tie pair.
		if got, ok := x.nearest(canonical(testRequest(2)), "self"); !ok || got != "b" {
			t.Errorf("insertion order %v: nearest(seed 2) = %q (ok=%v), want \"b\"", order, got, ok)
		}
	}

	// Removal keeps the bucket consistent: with "a" gone the tie
	// resolves to "b" regardless of the original order.
	x := newSimIndex()
	for _, fp := range []string{"c", "a", "b"} {
		x.add(fp, entries[fp])
	}
	x.remove("a")
	if got, ok := x.nearest(canonical(testRequest(1)), "self"); !ok || got != "b" {
		t.Errorf("after removing \"a\": nearest = %q (ok=%v), want \"b\"", got, ok)
	}
	if x.len() != 2 {
		t.Errorf("index len = %d after one removal of three, want 2", x.len())
	}
}

// TestWarmStartSeedsNearMissSearch: the first request of a bucket runs
// cold; a near-miss follow-up (same model and server count, different
// seed) reaches the optimizer with the neighbor's strategy in
// Options.WarmStart and the pinned patience; a request in a different
// bucket (other server count) runs cold again.
func TestWarmStartSeedsNearMissSearch(t *testing.T) {
	plan := stubPlan(t)
	var mu sync.Mutex
	var captured []topoopt.Options
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		mu.Lock()
		captured = append(captured, o)
		mu.Unlock()
		return plan, nil
	}})
	defer s.Close()

	for i, req := range []PlanRequest{testRequest(1), testRequest(2)} {
		if _, _, _, err := s.Plan(context.Background(), req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	other := testRequest(3)
	other.Options.Servers = 8
	if _, _, _, err := s.Plan(context.Background(), other); err != nil {
		t.Fatalf("other-bucket request: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(captured) != 3 {
		t.Fatalf("optimizer ran %d times, want 3", len(captured))
	}
	if len(captured[0].WarmStart) != 0 || captured[0].Patience != 0 {
		t.Errorf("first request of a bucket must run cold, got %d warm seeds, patience %d",
			len(captured[0].WarmStart), captured[0].Patience)
	}
	if len(captured[1].WarmStart) != 1 {
		t.Fatalf("near-miss request got %d warm seeds, want 1", len(captured[1].WarmStart))
	}
	if !reflect.DeepEqual(captured[1].WarmStart[0], plan.Strategy) {
		t.Error("warm seed is not the neighbor plan's strategy")
	}
	if captured[1].Patience != warmPatience {
		t.Errorf("near-miss patience = %d, want %d", captured[1].Patience, warmPatience)
	}
	if len(captured[2].WarmStart) != 0 {
		t.Errorf("different-bucket request got %d warm seeds, want 0 (no cross-bucket warming)",
			len(captured[2].WarmStart))
	}

	m := s.Metrics()
	if m.WarmStarts != 1 {
		t.Errorf("warm_starts = %d, want 1", m.WarmStarts)
	}
	if m.SimIndexEntries != 3 {
		t.Errorf("sim_index_entries = %d, want 3", m.SimIndexEntries)
	}
}

// TestSimIndexRebuildFromWALAfterKill9: a service that crashes hard and
// restarts on its WAL rebuilds the similarity index from the stored
// request/plan pairs, and a post-restart near-miss warms from it —
// producing a plan byte-identical to the one an uncrashed service
// serves for the same request.
func TestSimIndexRebuildFromWALAfterKill9(t *testing.T) {
	// World A: no crash. Seed 1 cold, seed 2 warm from it.
	dirA := t.TempDir()
	storeA, err := OpenStore(dirA)
	if err != nil {
		t.Fatal(err)
	}
	sA := New(Config{Workers: 2, Store: storeA})
	tsA := httptest.NewServer(sA.Handler())
	if _, _, pr := postPlan(t, tsA.URL, testRequest(1), nil); pr.Cached {
		t.Fatal("world A seed 1: unexpected cache hit")
	}
	_, _, prA2 := postPlan(t, tsA.URL, testRequest(2), nil)
	tsA.Close()
	sA.Close()
	if got := sA.Metrics().WarmStarts; got != 1 {
		t.Fatalf("world A warm_starts = %d, want 1 (seed 2 warms from seed 1)", got)
	}

	// World B: plan seed 1, then kill -9 — no shutdown path, and a torn
	// half-record at the log tail.
	dirB := t.TempDir()
	storeB, err := OpenStore(dirB)
	if err != nil {
		t.Fatal(err)
	}
	sB1 := New(Config{Workers: 2, Store: storeB})
	tsB1 := httptest.NewServer(sB1.Handler())
	if resp, _, _ := postPlan(t, tsB1.URL, testRequest(1), nil); resp.StatusCode != 200 {
		t.Fatalf("world B seed 1: status %d", resp.StatusCode)
	}
	tsB1.Close()
	logPath := filepath.Join(dirB, wal.LogName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	storeB2, err := OpenStore(dirB)
	if err != nil {
		t.Fatalf("reopening store after crash: %v", err)
	}
	sB2 := New(Config{Workers: 2, Store: storeB2})
	defer sB2.Close()
	if got := sB2.Metrics().SimIndexEntries; got != 1 {
		t.Fatalf("restarted index holds %d entries, want 1 (rebuilt from the WAL)", got)
	}
	tsB2 := httptest.NewServer(sB2.Handler())
	defer tsB2.Close()
	_, _, prB2 := postPlan(t, tsB2.URL, testRequest(2), nil)
	if prB2.Cached {
		t.Fatal("world B seed 2: unexpected cache hit after crash")
	}
	if got := sB2.Metrics().WarmStarts; got != 1 {
		t.Errorf("restarted warm_starts = %d, want 1 (near miss warms from the rebuilt index)", got)
	}
	if !bytes.Equal(prB2.Plan, prA2.Plan) {
		t.Errorf("post-crash warm plan differs from the uncrashed one\nA: %s\nB: %s",
			prA2.Plan, prB2.Plan)
	}
}

// TestAnytimePartialMonotone: a running async plan job exposes the
// search's best-so-far through GET-job polling, the published cost only
// ever improves (a worse OnBest callback is rejected), and the final
// result supersedes the partial.
func TestAnytimePartialMonotone(t *testing.T) {
	plan := stubPlan(t)
	published := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Workers: 1, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		// 5 → 3 accepted, 4 rejected (worse than 3), 1 accepted.
		for _, cost := range []float64{5, 3, 4, 1} {
			o.OnBest(plan.Strategy, cost)
		}
		close(published)
		<-release
		return plan, nil
	}})
	defer s.Close()

	job, err := s.SubmitJob(testRequest(41))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent poller: every observed partial must be no worse than
	// the previous one (exercised under -race by `make race`).
	var pollWG sync.WaitGroup
	pollDone := make(chan struct{})
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		last := -1.0
		for {
			select {
			case <-pollDone:
				return
			default:
			}
			if j, ok := s.GetJob(job.ID); ok && j.Partial != nil {
				if last >= 0 && j.Partial.EstimatedIterationS > last {
					t.Errorf("partial cost regressed: %g after %g", j.Partial.EstimatedIterationS, last)
				}
				last = j.Partial.EstimatedIterationS
			}
		}
	}()

	<-published
	deadline := time.After(5 * time.Second)
	for {
		j, ok := s.GetJob(job.ID)
		if !ok {
			t.Fatal("job vanished while running")
		}
		if j.Status == JobRunning && j.Partial != nil {
			if j.Partial.EstimatedIterationS != 1 {
				t.Errorf("partial cost = %g, want 1 (the best published)", j.Partial.EstimatedIterationS)
			}
			if j.Partial.Updates != 3 {
				t.Errorf("partial updates = %d, want 3 (5, 3, 1 accepted; 4 rejected)", j.Partial.Updates)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never exposed a partial while running")
		case <-time.After(time.Millisecond):
		}
	}
	close(pollDone)
	pollWG.Wait()

	close(release)
	deadline = time.After(5 * time.Second)
	for {
		j, ok := s.GetJob(job.ID)
		if !ok {
			t.Fatal("job vanished after release")
		}
		if j.Status == JobDone {
			if j.Result == nil {
				t.Error("done job has no result")
			}
			if j.Partial != nil {
				t.Error("done job still exposes a partial (result must supersede it)")
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job stuck in %q", j.Status)
		case <-time.After(time.Millisecond):
		}
	}
}
