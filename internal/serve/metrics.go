package serve

import (
	"sync"

	"topoopt/internal/stats"
)

// latencyWindow bounds the ring buffer the latency quantiles are computed
// over: large enough for stable tails, small enough that a long-lived
// daemon's /metrics reflects recent behavior.
const latencyWindow = 1024

// metrics aggregates service counters. All methods are safe for
// concurrent use; it has its own mutex so hot counters never contend
// with the Service's cache/flight lock.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]int64
	hits      int64
	misses    int64
	coalesced int64
	optimized int64
	queueFull int64
	shed      int64
	storeErrs int64
	lat       []float64
	latPos    int
	latCount  int64
	svc       []float64
	svcPos    int
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]int64)}
}

func (m *metrics) incRequest(endpoint string) {
	m.mu.Lock()
	m.requests[endpoint]++
	m.mu.Unlock()
}

func (m *metrics) bump(field *int64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

func (m *metrics) cacheHit()      { m.bump(&m.hits) }
func (m *metrics) cacheMiss()     { m.bump(&m.misses) }
func (m *metrics) coalesce()      { m.bump(&m.coalesced) }
func (m *metrics) optimizedDone() { m.bump(&m.optimized) }
func (m *metrics) queueFullDrop() { m.bump(&m.queueFull) }
func (m *metrics) shedDrop()      { m.bump(&m.shed) }
func (m *metrics) storeError()    { m.bump(&m.storeErrs) }

// observeService records the wall time of one completed search (flight
// or compare run). The admission controller's shed decision multiplies
// the mean of this window by the queue depth to estimate how long a
// newly queued request would wait.
func (m *metrics) observeService(seconds float64) {
	m.mu.Lock()
	if len(m.svc) < latencyWindow {
		m.svc = append(m.svc, seconds)
	} else {
		m.svc[m.svcPos] = seconds
		m.svcPos = (m.svcPos + 1) % latencyWindow
	}
	m.mu.Unlock()
}

// meanService returns the mean observed service time in seconds, or 0
// when nothing has been observed yet (a cold service never sheds).
func (m *metrics) meanService() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.svc) == 0 {
		return 0
	}
	return stats.Mean(m.svc)
}

func (m *metrics) observeLatency(seconds float64) {
	m.mu.Lock()
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, seconds)
	} else {
		m.lat[m.latPos] = seconds
		m.latPos = (m.latPos + 1) % latencyWindow
	}
	m.latCount++
	m.mu.Unlock()
}

// LatencySummary reports quantiles over the recent-request window.
type LatencySummary struct {
	Count       int64   `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// MetricsSnapshot is the /v1/metrics response body.
type MetricsSnapshot struct {
	Requests      map[string]int64 `json:"requests"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	CacheEntries  int              `json:"cache_entries"`
	Coalesced     int64            `json:"coalesced"`
	Optimizations int64            `json:"optimizations"`
	InFlight      int              `json:"in_flight"`
	QueueDepth    int              `json:"queue_depth"`
	QueueCapacity int              `json:"queue_capacity"`
	QueueFull     int64            `json:"queue_full"`
	Shed          int64            `json:"shed"`
	StoreErrors   int64            `json:"store_errors"`
	JobsTracked   int              `json:"jobs_tracked"`
	WarmedEntries int              `json:"warmed_entries"`
	Draining      bool             `json:"draining"`
	Latency       LatencySummary   `json:"latency"`

	// MeanServiceSeconds is the mean wall time of recent completed
	// searches — the admission controller's service-time estimate.
	MeanServiceSeconds float64 `json:"mean_service_seconds"`
}

// snapshot copies the counters; cache/queue/job gauges are filled in by
// the Service, which owns those structures.
func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Requests:      make(map[string]int64, len(m.requests)),
		CacheHits:     m.hits,
		CacheMisses:   m.misses,
		Coalesced:     m.coalesced,
		Optimizations: m.optimized,
		QueueFull:     m.queueFull,
		Shed:          m.shed,
		StoreErrors:   m.storeErrs,
	}
	if len(m.svc) > 0 {
		s.MeanServiceSeconds = stats.Mean(m.svc)
	}
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	if len(m.lat) > 0 {
		window := append([]float64(nil), m.lat...)
		s.Latency = LatencySummary{
			Count:       m.latCount,
			MeanSeconds: stats.Mean(window),
			P50Seconds:  stats.Percentile(window, 50),
			P90Seconds:  stats.Percentile(window, 90),
			P99Seconds:  stats.Percentile(window, 99),
			MaxSeconds:  stats.Max(window),
		}
	}
	return s
}
