package serve

import (
	"sync"
	"sync/atomic"

	"topoopt/internal/stats"
	"topoopt/internal/telemetry"
)

// latencyWindow bounds the ring buffer the latency quantiles are computed
// over: large enough for stable tails, small enough that a long-lived
// daemon's /metrics reflects recent behavior.
const latencyWindow = 1024

// endpointNames is the fixed set of request counters. The per-endpoint
// map is built once in newMetrics and never mutated afterwards, so
// incRequest is a lock-free map read plus an atomic add.
var endpointNames = []string{
	"plan", "compare", "cost", "fleet", "sweep",
	"jobs_submit", "jobs_list", "jobs_get", "jobs_cancel",
	"cluster",
}

// metrics aggregates service counters. Hot counters — everything bumped
// on the cache-hit fast path or per request — are plain atomics so the
// serving path never takes a metrics lock; the mutex guards only the
// latency and service-time ring buffers, which are touched once per
// completed request or optimization.
type metrics struct {
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	optimized atomic.Int64
	queueFull atomic.Int64
	shed      atomic.Int64
	storeErrs atomic.Int64
	// proposals counts MCMC proposals consumed across all searches, fed
	// by the engine's epoch barriers (Options.Progress). Rate over time
	// is the daemon's search throughput.
	proposals atomic.Int64
	// warmStarts counts searches seeded from the plan-similarity index;
	// warmImproved counts the subset whose seed strictly beat the
	// canonical start states (on real fabrics the canonical hybrid is
	// usually already optimal, so the win is the patience time saving and
	// warmImproved staying near zero is expected, not a bug).
	warmStarts atomic.Int64
	warmWins   atomic.Int64
	requests   map[string]*atomic.Int64 // fixed keys; see endpointNames

	// Sharded-cluster forwarding counters. The per-peer maps are built
	// once by initPeers (EnableCluster, before traffic) and never mutated
	// afterwards, same lock-free discipline as requests. forwarded counts
	// requests this daemon proxied to each owner; forwardFallback counts
	// proxy attempts that failed over to local compute; fwdServed counts
	// requests served here that arrived via a peer's forward.
	forwarded   map[string]*atomic.Int64
	forwardFail map[string]*atomic.Int64
	fwdServed   atomic.Int64

	mu       sync.Mutex // guards the rings below, nothing else
	lat      []float64
	latPos   int
	latCount int64
	latSum   float64 // all-time, so the Prometheus summary _sum is monotonic
	svc      []float64
	svcPos   int
	svcSum   float64 // running sum of svc, so the mean is O(1)
}

func newMetrics() *metrics {
	m := &metrics{requests: make(map[string]*atomic.Int64, len(endpointNames))}
	for _, e := range endpointNames {
		m.requests[e] = new(atomic.Int64)
	}
	return m
}

func (m *metrics) incRequest(endpoint string) {
	if c, ok := m.requests[endpoint]; ok {
		c.Add(1)
	}
}

func (m *metrics) cacheHit()      { m.hits.Add(1) }
func (m *metrics) cacheMiss()     { m.misses.Add(1) }
func (m *metrics) coalesce()      { m.coalesced.Add(1) }
func (m *metrics) optimizedDone() { m.optimized.Add(1) }
func (m *metrics) queueFullDrop() { m.queueFull.Add(1) }
func (m *metrics) shedDrop()      { m.shed.Add(1) }
func (m *metrics) storeError()    { m.storeErrs.Add(1) }
func (m *metrics) warmStart()     { m.warmStarts.Add(1) }
func (m *metrics) warmImproved()  { m.warmWins.Add(1) }

// initPeers fixes the per-peer forwarding counter maps. Called once
// from EnableCluster before the service takes traffic.
func (m *metrics) initPeers(peers []string) {
	fwd := make(map[string]*atomic.Int64, len(peers))
	fail := make(map[string]*atomic.Int64, len(peers))
	for _, p := range peers {
		fwd[p] = new(atomic.Int64)
		fail[p] = new(atomic.Int64)
	}
	m.forwarded = fwd
	m.forwardFail = fail
}

func (m *metrics) forwardTo(peer string) {
	if c, ok := m.forwarded[peer]; ok {
		c.Add(1)
	}
}

func (m *metrics) forwardFallback(peer string) {
	if c, ok := m.forwardFail[peer]; ok {
		c.Add(1)
	}
}

func (m *metrics) forwardedServed() { m.fwdServed.Add(1) }

func (m *metrics) forwardedTo(peer string) int64 {
	if c, ok := m.forwarded[peer]; ok {
		return c.Load()
	}
	return 0
}

func (m *metrics) fallbacksTo(peer string) int64 {
	if c, ok := m.forwardFail[peer]; ok {
		return c.Load()
	}
	return 0
}

// addProposals folds an epoch's worth of consumed MCMC proposals into
// the throughput counter.
func (m *metrics) addProposals(n int64) {
	if n > 0 {
		m.proposals.Add(n)
	}
}

// observeService records the wall time of one completed search (flight
// or compare run). The admission controller's shed decision multiplies
// the mean of this window by the queue depth to estimate how long a
// newly queued request would wait.
func (m *metrics) observeService(seconds float64) {
	m.mu.Lock()
	if len(m.svc) < latencyWindow {
		m.svc = append(m.svc, seconds)
	} else {
		m.svcSum -= m.svc[m.svcPos]
		m.svc[m.svcPos] = seconds
		m.svcPos = (m.svcPos + 1) % latencyWindow
	}
	m.svcSum += seconds
	m.mu.Unlock()
}

// meanService returns the mean observed service time in seconds, or 0
// when nothing has been observed yet (a cold service never sheds). O(1):
// the running sum is maintained by observeService.
func (m *metrics) meanService() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.meanServiceLocked()
}

func (m *metrics) meanServiceLocked() float64 {
	if len(m.svc) == 0 {
		return 0
	}
	return m.svcSum / float64(len(m.svc))
}

func (m *metrics) observeLatency(seconds float64) {
	m.mu.Lock()
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, seconds)
	} else {
		m.lat[m.latPos] = seconds
		m.latPos = (m.latPos + 1) % latencyWindow
	}
	m.latCount++
	m.latSum += seconds
	m.mu.Unlock()
}

// LatencySummary reports quantiles over the recent-request window.
// Count and SumSeconds are all-time totals (monotonic, as Prometheus
// summaries require); the mean and quantiles cover the recent window.
type LatencySummary struct {
	Count       int64   `json:"count"`
	SumSeconds  float64 `json:"sum_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// MetricsSnapshot is the /v1/metrics response body; WriteMetricsText
// renders the same snapshot as Prometheus text exposition at /metrics.
type MetricsSnapshot struct {
	Requests      map[string]int64 `json:"requests"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	CacheEntries  int              `json:"cache_entries"`
	Coalesced     int64            `json:"coalesced"`
	Optimizations int64            `json:"optimizations"`
	InFlight      int              `json:"in_flight"`
	QueueDepth    int              `json:"queue_depth"`
	QueueCapacity int              `json:"queue_capacity"`
	QueueFull     int64            `json:"queue_full"`
	Shed          int64            `json:"shed"`
	StoreErrors   int64            `json:"store_errors"`
	JobsTracked   int              `json:"jobs_tracked"`
	WarmedEntries int              `json:"warmed_entries"`
	Draining      bool             `json:"draining"`
	Latency       LatencySummary   `json:"latency"`

	// MeanServiceSeconds is the mean wall time of recent completed
	// searches — the admission controller's service-time estimate.
	MeanServiceSeconds float64 `json:"mean_service_seconds"`

	// MCMCProposals counts search proposals consumed across all requests,
	// reported by the engine's epoch barriers.
	MCMCProposals int64 `json:"mcmc_proposals"`

	// WarmStarts counts searches seeded from the plan-similarity index;
	// WarmStartImproved is the subset whose seed strictly beat the
	// canonical start states. SimIndexEntries gauges the index size
	// (always ≤ CacheEntries: index entries die with their cached plan).
	WarmStarts        int64 `json:"warm_starts"`
	WarmStartImproved int64 `json:"warm_start_improved"`
	SimIndexEntries   int   `json:"sim_index_entries"`

	// Stages holds per-stage latency quantiles (decode, admission, cache,
	// queue, search, persist, encode) over recent traced requests.
	Stages map[string]telemetry.StageSummary `json:"stages,omitempty"`

	// Sharded-cluster forwarding counters (present only on a daemon with
	// EnableCluster): requests proxied to each owning peer, proxy
	// attempts that fell back to local compute, and requests served here
	// that arrived via a peer's forward.
	Forwarded        map[string]int64 `json:"forwarded,omitempty"`
	ForwardFallbacks map[string]int64 `json:"forward_fallbacks,omitempty"`
	ForwardedServed  int64            `json:"forwarded_served,omitempty"`
}

// snapshot copies the counters; cache/queue/job gauges and the stage
// summaries are filled in by the Service, which owns those structures.
func (m *metrics) snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:          make(map[string]int64, len(m.requests)),
		CacheHits:         m.hits.Load(),
		CacheMisses:       m.misses.Load(),
		Coalesced:         m.coalesced.Load(),
		Optimizations:     m.optimized.Load(),
		QueueFull:         m.queueFull.Load(),
		Shed:              m.shed.Load(),
		StoreErrors:       m.storeErrs.Load(),
		MCMCProposals:     m.proposals.Load(),
		WarmStarts:        m.warmStarts.Load(),
		WarmStartImproved: m.warmWins.Load(),
	}
	for k, c := range m.requests {
		if v := c.Load(); v > 0 {
			s.Requests[k] = v
		}
	}
	if len(m.forwarded) > 0 {
		s.Forwarded = make(map[string]int64, len(m.forwarded))
		s.ForwardFallbacks = make(map[string]int64, len(m.forwardFail))
		for p, c := range m.forwarded {
			s.Forwarded[p] = c.Load()
		}
		for p, c := range m.forwardFail {
			s.ForwardFallbacks[p] = c.Load()
		}
		s.ForwardedServed = m.fwdServed.Load()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// The mean is computed exactly once per snapshot and reused for both
	// the JSON field and whatever renders it downstream.
	s.MeanServiceSeconds = m.meanServiceLocked()
	if len(m.lat) > 0 {
		window := append([]float64(nil), m.lat...)
		s.Latency = LatencySummary{
			Count:       m.latCount,
			SumSeconds:  m.latSum,
			MeanSeconds: stats.Mean(window),
			P50Seconds:  stats.Percentile(window, 50),
			P90Seconds:  stats.Percentile(window, 90),
			P99Seconds:  stats.Percentile(window, 99),
			MaxSeconds:  stats.Max(window),
		}
	}
	return s
}
