package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// errorCodes is the published taxonomy from the ErrorResponse doc
// comment; every error any endpoint produces must use one of these.
var errorCodes = map[string]bool{
	"bad_request": true, "bad_deadline": true, "unknown_arch": true,
	"not_found": true, "queue_full": true, "overloaded": true,
	"draining": true, "shutting_down": true, "deadline_exceeded": true,
	"internal": true,
}

// TestErrorEnvelopeConformance drives an error out of every v1 route and
// asserts the response is exactly the unified envelope: a single "error"
// key holding an ErrorResponse whose code is in the published taxonomy
// — no endpoint-private shapes, no stray fields.
func TestErrorEnvelopeConformance(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const validSweepSpec = `{"servers":8,"degree":1,"link_bandwidth":1e9,"arch":"Fat-tree",` +
		`"trace":{"inline":[{"at_s":0,"workers":4,"fixed_duration_s":10}]}}`

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		headers    map[string]string
		wantStatus int
		wantCode   string
		wantDetail string // "" means don't care
	}{
		{"plan malformed body", "POST", "/v1/plan", `{"model":`, nil,
			http.StatusBadRequest, "bad_request", "body"},
		{"plan bad model", "POST", "/v1/plan",
			`{"model":{"preset":"gpt5"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9}}`, nil,
			http.StatusBadRequest, "bad_request", "model"},
		{"plan bad options", "POST", "/v1/plan",
			`{"model":{"preset":"bert"},"options":{"servers":1,"degree":4,"link_bandwidth":25e9}}`, nil,
			http.StatusBadRequest, "bad_request", "options"},
		{"plan bad deadline", "POST", "/v1/plan",
			`{"model":{"preset":"bert"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9}}`,
			map[string]string{"X-Deadline-Ms": "nope"},
			http.StatusBadRequest, "bad_deadline", ""},
		{"compare unknown arch", "POST", "/v1/compare",
			`{"model":{"preset":"bert"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9},"archs":["warpdrive"]}`, nil,
			http.StatusBadRequest, "unknown_arch", ""},
		{"cost missing params", "GET", "/v1/cost?arch=Fat-tree", "", nil,
			http.StatusBadRequest, "bad_request", "query"},
		{"cost unknown arch", "GET", "/v1/cost?arch=warpdrive&servers=16&degree=4&bandwidth_gbps=100", "", nil,
			http.StatusBadRequest, "unknown_arch", ""},
		{"fleet bad spec", "POST", "/v1/fleet", `{"spec":{"servers":0}}`, nil,
			http.StatusBadRequest, "bad_request", "spec"},
		{"sweep malformed body", "POST", "/v1/sweep", `{"spec":`, nil,
			http.StatusBadRequest, "bad_request", "body"},
		{"sweep bad spec", "POST", "/v1/sweep", `{"spec":{"servers":0},"replicas":2}`, nil,
			http.StatusBadRequest, "bad_request", "spec"},
		{"sweep zero replicas", "POST", "/v1/sweep",
			`{"spec":` + validSweepSpec + `,"replicas":0}`, nil,
			http.StatusBadRequest, "bad_request", "replicas"},
		{"sweep too many replicas", "POST", "/v1/sweep",
			`{"spec":` + validSweepSpec + `,"replicas":1000000}`, nil,
			http.StatusBadRequest, "bad_request", "replicas"},
		{"jobs submit malformed body", "POST", "/v1/jobs", `{`, nil,
			http.StatusBadRequest, "bad_request", "body"},
		{"jobs list bad limit", "GET", "/v1/jobs?limit=abc", "", nil,
			http.StatusBadRequest, "bad_request", "query"},
		{"jobs list bad status", "GET", "/v1/jobs?status=bogus", "", nil,
			http.StatusBadRequest, "bad_request", "query"},
		{"job get not found", "GET", "/v1/jobs/j99999999", "", nil,
			http.StatusNotFound, "not_found", ""},
		{"job cancel not found", "DELETE", "/v1/jobs/j99999999", "", nil,
			http.StatusNotFound, "not_found", ""},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range tc.headers {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}

			// The envelope must be exactly {"error": ErrorResponse}: one top
			// key, no fields beyond the published four.
			var top map[string]json.RawMessage
			if err := json.Unmarshal(raw, &top); err != nil {
				t.Fatalf("body is not a JSON object: %s", raw)
			}
			inner, ok := top["error"]
			if !ok || len(top) != 1 {
				t.Fatalf("body must have exactly the \"error\" key: %s", raw)
			}
			dec := json.NewDecoder(bytes.NewReader(inner))
			dec.DisallowUnknownFields()
			var e ErrorResponse
			if err := dec.Decode(&e); err != nil {
				t.Fatalf("error object has fields outside ErrorResponse: %v (%s)", err, inner)
			}

			if e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
			if !errorCodes[e.Code] {
				t.Errorf("code %q is not in the published taxonomy", e.Code)
			}
			if e.Message == "" {
				t.Error("message must be non-empty")
			}
			if tc.wantDetail != "" && e.Detail != tc.wantDetail {
				t.Errorf("detail = %q, want %q", e.Detail, tc.wantDetail)
			}
		})
	}
}
