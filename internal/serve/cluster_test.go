package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topoopt"
	"topoopt/internal/shard"
	"topoopt/internal/wal"
)

// clusterNode is one in-process cluster member: a Service behind a real
// httptest listener.
type clusterNode struct {
	svc *Service
	ts  *httptest.Server
	url string
}

// startTestCluster brings up n Services joined as one sharded cluster.
// The listeners are created first (their URLs are the member names),
// with a placeholder handler that answers /healthz while the services
// bootstrap; then each Service is built by mkCfg, clustered over the
// full URL list, and swapped in.
func startTestCluster(t *testing.T, n int, mkCfg func(i int, urls []string) Config) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	handlers := make([]atomic.Pointer[http.Handler], n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := handlers[i].Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			// Bootstrapping: answer health probes, defer everything else.
			if r.URL.Path == "/healthz" {
				writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
				return
			}
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		nodes[i] = &clusterNode{ts: ts, url: ts.URL}
		urls[i] = ts.URL
	}
	for i := 0; i < n; i++ {
		svc := New(mkCfg(i, urls))
		// Probe once at startup (peers come up healthy) and then never
		// again: the tests below pin exactly when a failed forward flips a
		// peer to down, and a periodic probe racing a ts.Close() would mark
		// the peer down before the request under test attempts its hop.
		if err := svc.EnableCluster(ClusterConfig{
			Self: urls[i], Peers: urls, ProbeInterval: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
		h := svc.Handler()
		handlers[i].Store(&h)
		nodes[i].svc = svc
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.svc.Close()
			nd.ts.Close()
		}
	})
	// EnableCluster's bootstrap probeAll runs asynchronously. Wait until
	// every node has successfully probed every peer before handing the
	// cluster to the test: a test that tears a listener down right after
	// startup must not race the bootstrap probe into marking that peer
	// down before the request under test attempts its hop.
	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range nodes {
		c := nd.svc.cluster.Load()
		for {
			c.mu.Lock()
			ready := true
			for _, st := range c.peers {
				if !st.healthy || st.lastProbe.IsZero() {
					ready = false
					break
				}
			}
			c.mu.Unlock()
			if ready {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("cluster bootstrap probes did not settle")
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nodes
}

// requestOwnedBy scans seeds until it finds a plan request whose
// fingerprint the ring assigns to the target member. The test-side ring
// is built exactly like EnableCluster builds its own (default vnodes),
// so ownership agrees by construction.
func requestOwnedBy(t *testing.T, urls []string, target string) PlanRequest {
	t.Helper()
	ring, err := shard.New(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed < 10000; seed++ {
		req := testRequest(seed)
		if ring.Owner(req.Fingerprint()) == target {
			return req
		}
	}
	t.Fatal("no seed hashed to the target member (astronomically unlikely)")
	return PlanRequest{}
}

// TestClusterByteIdenticalAcrossEntryPeers pins the core sharding
// contract: the same request POSTed to every member of a 3-daemon
// cluster returns a byte-identical plan regardless of entry peer —
// non-owners proxy to the owner, whose deterministic result (and cache)
// answers all three.
func TestClusterByteIdenticalAcrossEntryPeers(t *testing.T) {
	nodes := startTestCluster(t, 3, func(i int, urls []string) Config {
		return Config{Workers: 2, QueueLen: 8}
	})
	req := testRequest(1)
	fp := req.Fingerprint()

	var plans [][]byte
	owners := map[string]int{}
	for _, nd := range nodes {
		resp, body, pr := postPlan(t, nd.url, req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("entry %s: status %d: %s", nd.url, resp.StatusCode, body)
		}
		if pr.Fingerprint != fp {
			t.Fatalf("entry %s: fingerprint %s, want %s", nd.url, pr.Fingerprint, fp)
		}
		if string(pr.Plan) == "null" || len(pr.Plan) == 0 {
			t.Fatalf("entry %s: no plan", nd.url)
		}
		plans = append(plans, pr.Plan)
		owners[resp.Header.Get(OwnerHeader)]++
	}
	if !bytes.Equal(plans[0], plans[1]) || !bytes.Equal(plans[0], plans[2]) {
		t.Fatal("plans differ by entry peer")
	}
	// Exactly one member owns fp: the other two entries carried its
	// OwnerHeader, the owner itself served locally (no header).
	ring, _ := shard.New([]string{nodes[0].url, nodes[1].url, nodes[2].url}, 0)
	owner := ring.Owner(fp)
	if owners[owner] != 2 || owners[""] != 1 {
		t.Fatalf("owner attribution %v, want 2 hops to %s + 1 local", owners, owner)
	}
}

// TestClusterSingleHopAndCounters pins the loop guard: a request
// forwarded once is served where it lands, never re-forwarded, and the
// per-peer counters attribute the hop correctly on both sides.
func TestClusterSingleHopAndCounters(t *testing.T) {
	nodes := startTestCluster(t, 3, func(i int, urls []string) Config {
		return Config{Workers: 1, QueueLen: 8, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			return stubPlan(t), nil
		}}
	})
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	req := requestOwnedBy(t, urls, urls[2])

	resp, body, _ := postPlan(t, urls[0], req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(OwnerHeader); got != urls[2] {
		t.Fatalf("owner header %q, want %s", got, urls[2])
	}
	if resp.Header.Get("X-Trace") == "" {
		t.Fatal("owner's X-Trace header not propagated through the hop")
	}
	m0, m1, m2 := nodes[0].svc.Metrics(), nodes[1].svc.Metrics(), nodes[2].svc.Metrics()
	if m0.Forwarded[urls[2]] != 1 || m0.Forwarded[urls[1]] != 0 || m0.ForwardedServed != 0 {
		t.Fatalf("edge counters wrong: %+v", m0.Forwarded)
	}
	if m2.ForwardedServed != 1 {
		t.Fatalf("owner forwarded_served = %d, want 1", m2.ForwardedServed)
	}
	if m1.ForwardedServed != 0 || m1.Forwarded[urls[0]] != 0 || m1.Forwarded[urls[2]] != 0 {
		t.Fatal("bystander node saw traffic")
	}

	// A request already carrying the loop-guard header must be served
	// where it lands — even on a non-owner — with no second hop.
	req2 := requestOwnedBy(t, urls, urls[0])
	resp, body, _ = postPlan(t, urls[1], req2, map[string]string{ForwardedHeader: "test-origin"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(OwnerHeader); got != "" {
		t.Fatalf("single-hop violated: non-owner re-forwarded (owner header %q)", got)
	}
	m1 = nodes[1].svc.Metrics()
	if m1.Forwarded[urls[0]] != 0 || m1.ForwardedServed != 1 {
		t.Fatalf("loop-guarded request miscounted: forwarded=%v served=%d", m1.Forwarded, m1.ForwardedServed)
	}
}

// TestClusterOwnerDownFallsBackLocal pins the degradation contract: a
// dead owner costs locality, not availability. The first request pays
// one failed connect and computes locally; the peer is then marked down
// so subsequent requests skip the hop entirely.
func TestClusterOwnerDownFallsBackLocal(t *testing.T) {
	nodes := startTestCluster(t, 3, func(i int, urls []string) Config {
		return Config{Workers: 1, QueueLen: 8, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			return stubPlan(t), nil
		}}
	})
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	nodes[1].ts.Close() // kill the peer's listener; its URL stays a ring member

	req := requestOwnedBy(t, urls, urls[1])
	resp, body, _ := postPlan(t, urls[0], req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(OwnerHeader) != "" {
		t.Fatal("fallback-local response must not claim a remote owner")
	}
	m0 := nodes[0].svc.Metrics()
	if m0.ForwardFallbacks[urls[1]] != 1 || m0.Forwarded[urls[1]] != 0 {
		t.Fatalf("fallback counters: %+v / %+v", m0.ForwardFallbacks, m0.Forwarded)
	}

	// The failed hop marked the peer down: the next request it owns is
	// served locally without even attempting the connect.
	var req2 PlanRequest
	ring, _ := shard.New(urls, 0)
	for seed := int64(1); ; seed++ {
		req2 = testRequest(seed)
		if ring.Owner(req2.Fingerprint()) == urls[1] && req2.Fingerprint() != req.Fingerprint() {
			break
		}
	}
	resp, body, _ = postPlan(t, urls[0], req2, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second fallback status %d: %s", resp.StatusCode, body)
	}
	m0 = nodes[0].svc.Metrics()
	if m0.ForwardFallbacks[urls[1]] != 1 {
		t.Fatalf("marked-down peer was re-attempted: fallbacks %v", m0.ForwardFallbacks)
	}

	// /v1/cluster reflects the downed peer.
	cresp, err := http.Get(urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var cr ClusterResponse
	if err := json.NewDecoder(cresp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Enabled || len(cr.Members) != 3 {
		t.Fatalf("cluster response %+v", cr)
	}
	shareSum := 0.0
	for _, m := range cr.Members {
		shareSum += m.Share
		if m.Name == urls[1] && m.Healthy {
			t.Fatal("dead peer still reported healthy")
		}
		if m.Name == urls[0] && (!m.Self || !m.Healthy) {
			t.Fatalf("self row wrong: %+v", m)
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("ring shares sum to %g", shareSum)
	}
}

// TestClusterRetryAfterPropagatedThroughHop pins the satellite fix: a
// queue_full rejection forwarded back through a proxy hop carries the
// OWNER's Retry-After (derived from the owner's queue depth and service
// times), not one recomputed from the idle edge's queue.
func TestClusterRetryAfterPropagatedThroughHop(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	nodes := startTestCluster(t, 2, func(i int, urls []string) Config {
		cfg := Config{Workers: 1, QueueLen: 1, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			return stubPlan(t), nil
		}}
		if i == 1 {
			// The owner-to-be: one worker, one queue slot, and searches that
			// block until the test releases them.
			cfg.Optimize = func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return stubPlan(t), nil
			}
		}
		return cfg
	})
	urls := []string{nodes[0].url, nodes[1].url}
	owner := nodes[1].svc

	// Saturate the owner directly: one request running, one queued.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		req := requestOwnedBy(t, urls, urls[1])
		if i == 1 {
			for seed := int64(2); ; seed++ {
				r2 := testRequest(seed)
				ring, _ := shard.New(urls, 0)
				if ring.Owner(r2.Fingerprint()) == urls[1] && r2.Fingerprint() != req.Fingerprint() {
					req = r2
					break
				}
			}
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(urls[1]+"/v1/plan", "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := owner.Metrics()
		if m.InFlight >= 1 && m.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never saturated")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Teach the owner's admission estimator a 6s mean service time: its
	// Retry-After for a full queue becomes ceil(1 × 6 / 1) = 6s. The
	// idle edge would say 1s — so a 6 proves the header crossed the hop.
	owner.met.observeService(6.0)

	var req3 PlanRequest
	ring, _ := shard.New(urls, 0)
	for seed := int64(5000); ; seed++ {
		req3 = testRequest(seed)
		if ring.Owner(req3.Fingerprint()) == urls[1] {
			break
		}
	}
	resp, body, _ := postPlan(t, urls[0], req3, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(OwnerHeader); got != urls[1] {
		t.Fatalf("owner header %q, want %s", got, urls[1])
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Fatalf("Retry-After %q, want the owner's 6", got)
	}
	apiErr := decodeAPIError(t, body)
	if apiErr.Code != "queue_full" || apiErr.RetryAfterSeconds != 6 {
		t.Fatalf("envelope %+v, want queue_full with retry_after_seconds 6", apiErr)
	}
	once.Do(func() { close(release) })
	wg.Wait()
}

// TestClusterChaosPeerKilledMidLoad kills one of three daemons midway
// through a load run and asserts every request still gets a valid,
// consistent response (fallback-local on the survivors) and that every
// store replays clean afterwards.
func TestClusterChaosPeerKilledMidLoad(t *testing.T) {
	dirs := make([]string, 3)
	base := t.TempDir()
	nodes := startTestCluster(t, 3, func(i int, urls []string) Config {
		dirs[i] = filepath.Join(base, fmt.Sprintf("store%d", i))
		st, err := OpenStore(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		return Config{Workers: 2, QueueLen: 32, Store: st,
			Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
				time.Sleep(time.Millisecond)
				return stubPlan(t), nil
			}}
	})
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}

	const total, killAt, distinct = 120, 40, 24
	plansByFp := make(map[string][]byte)
	for i := 0; i < total; i++ {
		if i == killAt {
			nodes[2].ts.Close() // kill one daemon mid-load
		}
		req := testRequest(int64(i % distinct))
		entry := urls[i%2] // load targets the two survivors
		resp, body, pr := postPlan(t, entry, req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d via %s: status %d: %s", i, entry, resp.StatusCode, body)
		}
		if len(pr.Plan) == 0 || string(pr.Plan) == "null" {
			t.Fatalf("request %d: empty plan", i)
		}
		// The same fingerprint must yield byte-identical plans for the
		// whole run, across entry peers and across the kill.
		if prev, ok := plansByFp[pr.Fingerprint]; ok {
			if !bytes.Equal(prev, pr.Plan) {
				t.Fatalf("request %d: plan for %s changed mid-run", i, pr.Fingerprint)
			}
		} else {
			plansByFp[pr.Fingerprint] = pr.Plan
		}
	}
	if len(plansByFp) != distinct {
		t.Fatalf("saw %d distinct fingerprints, want %d", len(plansByFp), distinct)
	}
	m0, m1 := nodes[0].svc.Metrics(), nodes[1].svc.Metrics()
	if m0.ForwardFallbacks[urls[2]]+m1.ForwardFallbacks[urls[2]] == 0 {
		t.Fatal("killing the peer never triggered a fallback — the kill happened too late or ownership never hit it")
	}

	// Every store — the killed daemon's included — must replay clean.
	for _, nd := range nodes {
		nd.svc.Close()
	}
	puts := 0
	for i, dir := range dirs {
		st, err := wal.Open(dir)
		if err != nil {
			t.Fatalf("store %d: reopen: %v", i, err)
		}
		for _, rec := range st.Records() {
			if rec.Op != wal.OpPut {
				continue
			}
			if _, _, err := decodeStored(rec.Kind, rec.Payload); err != nil {
				t.Fatalf("store %d: record %s corrupt: %v", i, rec.Fp, err)
			}
			puts++
		}
		st.Close()
	}
	if puts == 0 {
		t.Fatal("no plans were persisted anywhere")
	}
}

// TestClusterDisabledResponse pins the unsharded /v1/cluster shape.
func TestClusterDisabledResponse(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Enabled || cr.Members != nil {
		t.Fatalf("unsharded daemon reported %+v", cr)
	}
}

// TestEnableClusterValidation pins startup-time rejection of broken
// cluster configs.
func TestEnableClusterValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for _, cfg := range []ClusterConfig{
		{Self: "", Peers: []string{"http://a"}},
		{Self: "http://a", Peers: nil},
		{Self: "http://c", Peers: []string{"http://a", "http://b"}},
	} {
		if err := s.EnableCluster(cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
	// Trailing slashes normalize away.
	if err := s.EnableCluster(ClusterConfig{
		Self:          "http://127.0.0.1:1/",
		Peers:         []string{"http://127.0.0.1:1", "http://127.0.0.1:2/"},
		ProbeInterval: time.Hour,
	}); err != nil {
		t.Fatalf("normalized config rejected: %v", err)
	}
}
