package serve

import (
	"io"
	"sort"

	"topoopt/internal/telemetry"
)

// WriteMetricsText renders a metrics snapshot as Prometheus text
// exposition format 0.0.4 — the GET /metrics body. It is a pure
// function of the snapshot and byte-deterministic: endpoint labels
// iterate in sorted order, stage labels in enum order, so two renders
// of the same snapshot are identical.
func WriteMetricsText(w io.Writer, snap MetricsSnapshot) error {
	p := telemetry.NewPromWriter(w)

	p.Family("topoopt_requests_total", "HTTP requests received, by endpoint.", "counter")
	endpoints := make([]string, 0, len(snap.Requests))
	for k := range snap.Requests {
		endpoints = append(endpoints, k)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		p.Int("topoopt_requests_total", snap.Requests[e], "endpoint", e)
	}

	counter := func(name, help string, v int64) {
		p.Family(name, help, "counter")
		p.Int(name, v)
	}
	gauge := func(name, help string, v float64) {
		p.Family(name, help, "gauge")
		p.Sample(name, v)
	}

	counter("topoopt_cache_hits_total", "Plan-cache hits.", snap.CacheHits)
	counter("topoopt_cache_misses_total", "Plan-cache misses.", snap.CacheMisses)
	counter("topoopt_coalesced_total", "Requests coalesced onto an already in-flight computation.", snap.Coalesced)
	counter("topoopt_optimizations_total", "Optimizations completed.", snap.Optimizations)
	counter("topoopt_queue_full_total", "Requests rejected because the work queue was full.", snap.QueueFull)
	counter("topoopt_shed_total", "Requests shed by the admission controller.", snap.Shed)
	counter("topoopt_store_errors_total", "Durable-store append or replay failures.", snap.StoreErrors)
	counter("topoopt_mcmc_proposals_total", "MCMC proposals consumed across all searches.", snap.MCMCProposals)
	counter("topoopt_warm_start_total", "Searches seeded from the plan-similarity index.", snap.WarmStarts)
	counter("topoopt_warm_start_improved_total", "Warm-started searches whose seed strictly beat the canonical start states.", snap.WarmStartImproved)

	gauge("topoopt_cache_entries", "Plan-cache entries resident.", float64(snap.CacheEntries))
	gauge("topoopt_in_flight", "Computations currently in flight.", float64(snap.InFlight))
	gauge("topoopt_queue_depth", "Tasks queued but not yet started.", float64(snap.QueueDepth))
	gauge("topoopt_queue_capacity", "Work-queue capacity.", float64(snap.QueueCapacity))
	gauge("topoopt_jobs_tracked", "Async jobs tracked.", float64(snap.JobsTracked))
	gauge("topoopt_warmed_entries", "Cache entries replayed from the durable store on boot.", float64(snap.WarmedEntries))
	gauge("topoopt_sim_index_entries", "Plans indexed for similarity warm starts.", float64(snap.SimIndexEntries))
	draining := 0.0
	if snap.Draining {
		draining = 1
	}
	gauge("topoopt_draining", "1 while the service is draining, 0 otherwise.", draining)
	gauge("topoopt_mean_service_seconds", "Mean wall time of recent completed searches (the admission controller's estimate).", snap.MeanServiceSeconds)

	// Sharded-cluster forwarding counters, present only when the daemon
	// runs with -peers. Peer labels iterate in sorted order, keeping the
	// render byte-deterministic.
	if len(snap.Forwarded) > 0 {
		peers := make([]string, 0, len(snap.Forwarded))
		for pr := range snap.Forwarded {
			peers = append(peers, pr)
		}
		sort.Strings(peers)
		p.Family("topoopt_forwarded_total", "Requests proxied to their owning peer, by peer.", "counter")
		for _, pr := range peers {
			p.Int("topoopt_forwarded_total", snap.Forwarded[pr], "peer", pr)
		}
		p.Family("topoopt_forward_fallback_total", "Proxy attempts that fell back to local compute, by peer.", "counter")
		for _, pr := range peers {
			p.Int("topoopt_forward_fallback_total", snap.ForwardFallbacks[pr], "peer", pr)
		}
		counter("topoopt_forwarded_served_total", "Requests served here that arrived via a peer's forward.", snap.ForwardedServed)
	}

	p.Family("topoopt_request_latency_seconds", "End-to-end plan latency: all-time count/sum, quantiles over the recent window.", "summary")
	p.Summary("topoopt_request_latency_seconds", telemetry.StageSummary{
		Count:      snap.Latency.Count,
		SumSeconds: snap.Latency.SumSeconds,
		P50Seconds: snap.Latency.P50Seconds,
		P90Seconds: snap.Latency.P90Seconds,
		P99Seconds: snap.Latency.P99Seconds,
		MaxSeconds: snap.Latency.MaxSeconds,
	})

	p.Family("topoopt_stage_latency_seconds", "Per-stage request latency: all-time count/sum, quantiles over the recent window.", "summary")
	for _, name := range telemetry.StageNames(snap.Stages) {
		p.Summary("topoopt_stage_latency_seconds", snap.Stages[name], "stage", name)
	}

	return p.Err()
}
