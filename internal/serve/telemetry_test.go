package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"topoopt"
	"topoopt/internal/telemetry"
)

// postPlan sends one POST /v1/plan and returns the response.
func tracePlan(t *testing.T, ts *httptest.Server, req PlanRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/plan: %v", err)
	}
	return resp
}

func getDebugRequests(t *testing.T, ts *httptest.Server) []telemetry.Record {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatalf("GET /debug/requests: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests: status %d", resp.StatusCode)
	}
	var dr DebugRequests
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatalf("decoding /debug/requests: %v", err)
	}
	return dr.Requests
}

func TestPlanTraceEndToEnd(t *testing.T) {
	// A deliberately slow stub makes the search stage dominate, so the
	// stage sum vs. wall time comparison is insensitive to scheduler
	// jitter in the sub-millisecond stages.
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		time.Sleep(30 * time.Millisecond)
		return stubPlan(t), nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	miss := tracePlan(t, ts, testRequest(1))
	miss.Body.Close()
	if miss.StatusCode != http.StatusOK {
		t.Fatalf("miss status = %d", miss.StatusCode)
	}
	xt := miss.Header.Get("X-Trace")
	if !strings.HasPrefix(xt, "total=") || !strings.Contains(xt, "search=") {
		t.Errorf("miss X-Trace = %q, want total=... with a search stage", xt)
	}

	hit := tracePlan(t, ts, testRequest(1))
	hit.Body.Close()
	if xt := hit.Header.Get("X-Trace"); !strings.HasPrefix(xt, "total=") {
		t.Errorf("hit X-Trace = %q, want total=...", xt)
	}
	if strings.Contains(hit.Header.Get("X-Trace"), "search=") {
		t.Errorf("cache hit should have no search stage: %q", hit.Header.Get("X-Trace"))
	}

	recs := getDebugRequests(t, ts)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Newest first: the hit, then the miss.
	if !recs[0].Cached || recs[1].Cached {
		t.Fatalf("record order/cached flags wrong: %+v", recs)
	}
	m := recs[1]
	if m.Endpoint != "plan" || m.Status != http.StatusOK {
		t.Errorf("miss record endpoint/status = %q/%d", m.Endpoint, m.Status)
	}
	if m.StageSumSeconds > m.TotalSeconds {
		t.Errorf("stage sum %.6fs exceeds total %.6fs", m.StageSumSeconds, m.TotalSeconds)
	}
	// The stages must account for nearly all of the wall time (the 5%%
	// acceptance bound, relaxed to 20%% here to keep CI deterministic —
	// the untraced gaps are scheduler handoffs, not missing stages).
	if m.StageSumSeconds < 0.8*m.TotalSeconds {
		t.Errorf("stage sum %.6fs < 80%% of total %.6fs", m.StageSumSeconds, m.TotalSeconds)
	}
	found := false
	for _, sp := range m.Stages {
		if sp.Stage == "search" && sp.Seconds >= 0.025 {
			found = true
		}
	}
	if !found {
		t.Errorf("miss record lacks a ≥25ms search stage: %+v", m.Stages)
	}

	// Stage quantiles surfaced in the JSON metrics snapshot.
	snap := s.Metrics()
	if snap.Stages["search"].Count == 0 {
		t.Error("metrics snapshot has no search-stage observations")
	}
	if snap.Stages["decode"].Count == 0 {
		t.Error("metrics snapshot has no decode-stage observations")
	}
}

func TestSearchProgressReported(t *testing.T) {
	// Real optimizer (default Optimize) so the MCMC epoch barriers feed
	// the flight's progress sink and the daemon-wide proposal counter.
	// DLRM has shardable layers (BERT does not, and a shard-free search
	// resolves before the first barrier); 60 iterations crosses the
	// 25-proposal epoch barrier at least twice.
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := PlanRequest{
		Model: topoopt.ModelSpec{Preset: "dlrm", Section: "6"},
		Options: topoopt.Options{Servers: 4, Degree: 2, LinkBandwidth: 25e9,
			Rounds: 1, MCMCIters: 60, Seed: 7},
	}
	resp := tracePlan(t, ts, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	recs := getDebugRequests(t, ts)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].SearchTotal != 60 {
		t.Errorf("SearchTotal = %d, want 60", recs[0].SearchTotal)
	}
	if recs[0].SearchDone <= 0 || recs[0].SearchDone > 60 {
		t.Errorf("SearchDone = %d, want in (0, 60]", recs[0].SearchDone)
	}
	if snap := s.Metrics(); snap.MCMCProposals <= 0 {
		t.Errorf("MCMCProposals = %d, want > 0", snap.MCMCProposals)
	}
}

// promLine matches a valid exposition sample line (metric, optional
// labels, value). Comment lines are checked separately.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eE-]+$`)

func TestPromMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		return stubPlan(t), nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := tracePlan(t, ts, testRequest(1)) // 1 miss + 2 hits
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()

	for _, want := range []string{
		`topoopt_requests_total{endpoint="plan"} 3`,
		"topoopt_cache_hits_total 2",
		"topoopt_cache_misses_total 1",
		"topoopt_shed_total 0",
		"topoopt_queue_full_total 0",
		"topoopt_store_errors_total 0",
		"topoopt_request_latency_seconds_count 3",
		`topoopt_stage_latency_seconds{stage="search",quantile="0.5"}`,
		"# TYPE topoopt_stage_latency_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

func TestWriteMetricsTextDeterministic(t *testing.T) {
	snap := MetricsSnapshot{
		Requests:           map[string]int64{"plan": 5, "compare": 2, "cost": 1},
		CacheHits:          3,
		CacheMisses:        2,
		CacheEntries:       2,
		Coalesced:          1,
		Optimizations:      2,
		QueueDepth:         1,
		QueueCapacity:      64,
		Draining:           true,
		MeanServiceSeconds: 0.125,
		MCMCProposals:      400,
		Latency: LatencySummary{Count: 5, SumSeconds: 1.5, MeanSeconds: 0.3,
			P50Seconds: 0.2, P90Seconds: 0.5, P99Seconds: 0.6, MaxSeconds: 0.6},
		Stages: map[string]telemetry.StageSummary{
			"search": {Count: 2, SumSeconds: 0.9, P50Seconds: 0.45},
			"decode": {Count: 5, SumSeconds: 0.001, P50Seconds: 0.0002},
		},
	}
	var a, b bytes.Buffer
	if err := WriteMetricsText(&a, snap); err != nil {
		t.Fatalf("WriteMetricsText: %v", err)
	}
	if err := WriteMetricsText(&b, snap); err != nil {
		t.Fatalf("WriteMetricsText: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same snapshot differ")
	}
	// Stage labels render in enum order regardless of map iteration:
	// decode strictly before search.
	out := a.String()
	if strings.Index(out, `stage="decode"`) > strings.Index(out, `stage="search"`) {
		t.Error("stage families not in enum order")
	}
	if !strings.Contains(out, "topoopt_draining 1") {
		t.Error("draining gauge missing")
	}
}
