package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"topoopt"
	"topoopt/internal/telemetry"
)

// maxRequestBytes bounds request bodies; plan requests are tiny.
const maxRequestBytes = 1 << 20

// ErrorResponse is the unified error envelope: every non-2xx response
// from every endpoint is {"error": ErrorResponse}. Code is the
// machine-readable taxonomy —
//
//	bad_request        malformed body/query or invalid field values
//	bad_deadline       malformed X-Deadline-Ms header
//	unknown_arch       architecture name not in the backend registry
//	not_found          no such job
//	queue_full         work queue at capacity
//	overloaded         admission controller shed the request
//	draining           graceful shutdown in progress, not admitting
//	shutting_down      service closed
//	deadline_exceeded  the request's deadline expired while waiting
//	internal           the computation itself failed
//
// — and Detail carries machine-readable context within a code (the
// offending field group for bad_request, queue depth for backpressure).
// RetryAfterSeconds, when nonzero, mirrors the Retry-After header:
// backpressure responses derive it from queue depth × observed service
// time, so well-behaved clients back off proportionally to the actual
// overload.
type ErrorResponse struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
	Detail            string `json:"detail,omitempty"`
}

// apiError is an ErrorResponse plus the HTTP status it rides on.
type apiError struct {
	Status int `json:"-"`
	ErrorResponse
}

// badRequest is a 400 bad_request with detail naming the offending field
// group (body, model, options, spec, query, replicas).
func badRequest(detail string, err error) *apiError {
	return &apiError{Status: http.StatusBadRequest,
		ErrorResponse: ErrorResponse{Code: "bad_request", Message: err.Error(), Detail: detail}}
}

// unknownArch is a 400 unknown_arch: the architecture name is not in the
// backend registry (the message names the registered menu).
func unknownArch(err error) *apiError {
	return &apiError{Status: http.StatusBadRequest,
		ErrorResponse: ErrorResponse{Code: "unknown_arch", Message: err.Error()}}
}

func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds))
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(map[string]ErrorResponse{"error": e.ErrorResponse})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// retrySeconds converts a wait estimate to a Retry-After value: at
// least 1 second, rounded up, so a client that honors the header never
// hammers a saturated server sub-second.
func retrySeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// serviceError maps service-layer errors onto the unified envelope.
// Backpressure responses carry the queue depth (in Detail) and a
// Retry-After hint derived from queue depth × observed service time, so
// well-behaved clients back off proportionally to the actual overload.
func (s *Service) serviceError(err error) *apiError {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		return &apiError{Status: http.StatusTooManyRequests, ErrorResponse: ErrorResponse{
			Code: "overloaded", Message: err.Error(),
			Detail:            fmt.Sprintf("queue_depth=%d", oe.QueueDepth),
			RetryAfterSeconds: retrySeconds(oe.EstimatedWait),
		}}
	case errors.Is(err, ErrQueueFull):
		return &apiError{Status: http.StatusServiceUnavailable, ErrorResponse: ErrorResponse{
			Code: "queue_full", Message: err.Error(),
			Detail:            fmt.Sprintf("queue_depth=%d", len(s.queue)),
			RetryAfterSeconds: retrySeconds(s.estimatedWait()),
		}}
	case errors.Is(err, ErrDraining):
		return &apiError{Status: http.StatusServiceUnavailable, ErrorResponse: ErrorResponse{
			Code: "draining", Message: err.Error(), RetryAfterSeconds: 1,
		}}
	case errors.Is(err, ErrClosed):
		return &apiError{Status: http.StatusServiceUnavailable,
			ErrorResponse: ErrorResponse{Code: "shutting_down", Message: err.Error()}}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: http.StatusGatewayTimeout,
			ErrorResponse: ErrorResponse{Code: "deadline_exceeded", Message: err.Error()}}
	default:
		return &apiError{Status: http.StatusInternalServerError,
			ErrorResponse: ErrorResponse{Code: "internal", Message: err.Error()}}
	}
}

// requestContext derives the per-request context: an explicit
// X-Deadline-Ms header wins, then the configured default deadline, then
// the bare request context. The returned cancel must always be called.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc, *apiError) {
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			return nil, nil, &apiError{Status: http.StatusBadRequest, ErrorResponse: ErrorResponse{
				Code:    "bad_deadline",
				Message: fmt.Sprintf("X-Deadline-Ms must be a positive integer, got %q", h),
			}}
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		return ctx, cancel, nil
	}
	if d := s.cfg.DefaultDeadline; d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		return ctx, cancel, nil
	}
	return r.Context(), func() {}, nil
}

// decodeJSON strictly decodes a bounded request body into dst.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("body", err)
	}
	return nil
}

// readBody reads the bounded request body whole. The forwardable
// endpoints (plan, compare) buffer the raw bytes so a non-owner daemon
// can re-send them verbatim to the fingerprint's owner.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return nil, badRequest("body", err)
	}
	return body, nil
}

// decodeJSONBytes strictly decodes an already-buffered body into dst.
func decodeJSONBytes(body []byte, dst any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("body", err)
	}
	return nil
}

// validatePlanFields resolves the spec and validates the options — the
// single validation pipeline every planning endpoint shares. Failures
// are bad_request with detail naming the field group: "model"
// (unresolvable ModelSpec) or "options" (Options.Validate failure). The
// resolved model is returned so downstream code never re-resolves.
func validatePlanFields(spec topoopt.ModelSpec, o topoopt.Options) (*topoopt.Model, *apiError) {
	m, err := spec.Resolve()
	if err != nil {
		return nil, badRequest("model", err)
	}
	if err := o.Validate(); err != nil {
		return nil, badRequest("options", err)
	}
	return m, nil
}

// decodePlanRequest decodes and validates the shared request body.
func decodePlanRequest(w http.ResponseWriter, r *http.Request, dst *PlanRequest) (*topoopt.Model, *apiError) {
	if aerr := decodeJSON(w, r, dst); aerr != nil {
		return nil, aerr
	}
	return validatePlanFields(dst.Model, dst.Options)
}

// decodePlanBytes is decodePlanRequest over a pre-buffered body.
func decodePlanBytes(body []byte, dst *PlanRequest) (*topoopt.Model, *apiError) {
	if aerr := decodeJSONBytes(body, dst); aerr != nil {
		return nil, aerr
	}
	return validatePlanFields(dst.Model, dst.Options)
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/plan       — synchronous optimization (cached, coalesced)
//	POST   /v1/compare    — architecture comparison
//	GET    /v1/cost       — §5.2 cost model lookup
//	POST   /v1/fleet      — submit an async fleet simulation
//	POST   /v1/sweep      — K-replica Monte Carlo fleet sweep (sync or async)
//	POST   /v1/jobs       — submit an async planning job
//	GET    /v1/jobs       — list jobs, newest first (?status=, ?limit=)
//	GET    /v1/jobs/{id}  — poll a job (plan, fleet or sweep)
//	DELETE /v1/jobs/{id}  — cancel a job
//	GET    /v1/cluster    — shard membership, ring shares, peer health
//	GET    /v1/metrics    — counters, gauges, latency quantiles (JSON)
//	GET    /metrics       — the same snapshot, Prometheus text exposition
//	GET    /debug/requests — ring of recent request stage breakdowns
//	GET    /healthz       — liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("GET /v1/cost", s.handleCost)
	mux.HandleFunc("POST /v1/fleet", s.handleSubmitFleet)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// PlanResponse is the POST /v1/plan response body.
type PlanResponse struct {
	Fingerprint string        `json:"fingerprint"`
	Cached      bool          `json:"cached"`
	Plan        *topoopt.Plan `json:"plan"`
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("plan")
	s.noteForwardedArrival(r)
	tr := s.tel.Begin("plan")
	tr.Start(telemetry.StageDecode)
	body, aerr := readBody(w, r)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	var req PlanRequest
	m, aerr := decodePlanBytes(body, &req)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	ctx, cancel, aerr := s.requestContext(r)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	defer cancel()
	fp := req.Fingerprint()
	tr.End()
	if handled, status := s.forward(ctx, w, r, body, fp); handled {
		tr.Finish(fp, false, status)
		return
	}
	start := time.Now()
	plan, fp, cached, err := s.plan(ctx, req, fp, resolved(m), nil, tr)
	if err != nil {
		aerr := s.serviceError(err)
		tr.Finish(fp, false, aerr.Status)
		writeError(w, aerr)
		return
	}
	s.met.observeLatency(time.Since(start).Seconds())
	tr.Start(telemetry.StageEncode)
	// The header renders before the body is encoded (headers must precede
	// WriteHeader), so its encode figure is ~0; the full encode time still
	// lands in the published /debug/requests record and stage quantiles.
	w.Header().Set("X-Trace", string(tr.AppendHeader(nil)))
	writeJSON(w, http.StatusOK, PlanResponse{Fingerprint: fp, Cached: cached, Plan: plan})
	tr.Finish(fp, cached, http.StatusOK)
}

// CompareRequest is the POST /v1/compare request body. Archs defaults to
// the full §5.1 comparison set.
type CompareRequest struct {
	Model   topoopt.ModelSpec `json:"model"`
	Options topoopt.Options   `json:"options"`
	Archs   []string          `json:"archs,omitempty"`
}

// CompareResponse is the POST /v1/compare response body.
type CompareResponse struct {
	Fingerprint string                  `json:"fingerprint"`
	Cached      bool                    `json:"cached"`
	Results     []topoopt.CompareResult `json:"results"`
}

func (s *Service) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("compare")
	s.noteForwardedArrival(r)
	tr := s.tel.Begin("compare")
	tr.Start(telemetry.StageDecode)
	body, aerr := readBody(w, r)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	var req CompareRequest
	if aerr := decodeJSONBytes(body, &req); aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	m, aerr := validatePlanFields(req.Model, req.Options)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	// Validate every name against the backend registry up front: the 400
	// carries the registered menu, and nothing unvalidated reaches the
	// worker pool (where it would surface as an opaque 500).
	archs := make([]topoopt.Architecture, 0, len(req.Archs))
	for _, a := range req.Archs {
		pa, err := topoopt.ParseArchitecture(a)
		if err != nil {
			tr.Finish("", false, http.StatusBadRequest)
			writeError(w, unknownArch(err))
			return
		}
		archs = append(archs, pa)
	}
	ctx, cancel, aerr := s.requestContext(r)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	defer cancel()
	tr.End()
	if handled, status := s.forward(ctx, w, r, body, CompareFingerprint(req.Model, req.Options, archs)); handled {
		tr.Finish("", false, status)
		return
	}
	// Compare latencies are not observed: a multi-architecture sweep is
	// seconds-scale and would swamp the serving-path quantiles the
	// latency window exists to track.
	res, fp, cached, err := s.compare(ctx, req.Model, m, req.Options, archs, tr)
	if err != nil {
		aerr := s.serviceError(err)
		tr.Finish(fp, false, aerr.Status)
		writeError(w, aerr)
		return
	}
	tr.Start(telemetry.StageEncode)
	w.Header().Set("X-Trace", string(tr.AppendHeader(nil)))
	writeJSON(w, http.StatusOK, CompareResponse{
		Fingerprint: fp,
		Cached:      cached,
		Results:     res,
	})
	tr.Finish(fp, cached, http.StatusOK)
}

// CostResponse is the GET /v1/cost response body.
type CostResponse struct {
	Arch          string  `json:"arch"`
	Servers       int     `json:"servers"`
	Degree        int     `json:"degree"`
	LinkBandwidth float64 `json:"link_bandwidth"`
	CostUSD       float64 `json:"cost_usd"`
}

func (s *Service) handleCost(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("cost")
	q := r.URL.Query()
	arch := q.Get("arch")
	servers, err1 := strconv.Atoi(q.Get("servers"))
	degree, err2 := strconv.Atoi(q.Get("degree"))
	gbps, err3 := strconv.ParseFloat(q.Get("bandwidth_gbps"), 64)
	if arch == "" || err1 != nil || err2 != nil || err3 != nil {
		writeError(w, badRequest("query",
			errors.New("required query parameters: arch, servers, degree, bandwidth_gbps")))
		return
	}
	bw := gbps * 1e9
	// Same bounds as Options.Validate, so /v1/cost rejects what /v1/plan
	// would instead of pricing a nonsensical deployment.
	if err := (topoopt.Options{Servers: servers, Degree: degree, LinkBandwidth: bw}).Validate(); err != nil {
		writeError(w, badRequest("query", err))
		return
	}
	// Registry validation first: an unknown name is a client error that
	// names the registered menu, never a 500.
	pa, err := topoopt.ParseArchitecture(arch)
	if err != nil {
		writeError(w, unknownArch(err))
		return
	}
	c, err := topoopt.Cost(pa, servers, degree, bw)
	if err != nil {
		writeError(w, unknownArch(err))
		return
	}
	writeJSON(w, http.StatusOK, CostResponse{
		Arch: arch, Servers: servers, Degree: degree, LinkBandwidth: bw, CostUSD: c,
	})
}

// handleSubmitFleet accepts a fleet simulation and returns the async job
// tracking it (202). Fleet runs are seconds-to-minutes scale, so the
// endpoint is async-only: poll GET /v1/jobs/{id} for the FleetResult,
// DELETE to cancel. A repeated submission of the same canonical spec
// reuses the fingerprinted cache entry and returns a job that is already
// done with the identical result.
func (s *Service) handleSubmitFleet(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("fleet")
	var req FleetRequest
	if aerr := decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	// Validate up front: the 400 names the registered menu (archs,
	// policies, provisioning modes) instead of surfacing a late 500.
	if err := req.Spec.Validate(); err != nil {
		writeError(w, badRequest("spec", err))
		return
	}
	j, err := s.SubmitFleet(req.Spec)
	if err != nil {
		writeError(w, s.serviceError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

// SweepResponse is the synchronous POST /v1/sweep response body.
type SweepResponse struct {
	Fingerprint string                    `json:"fingerprint"`
	Cached      bool                      `json:"cached"`
	Sweep       *topoopt.FleetSweepResult `json:"sweep"`
}

// handleSweep runs a K-replica Monte Carlo fleet sweep. Synchronous by
// default — the merged distributions come back in the response with the
// standard X-Trace breakdown (replica progress included) — or async with
// "async": true, returning 202 + a kind="sweep" job to poll.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("sweep")
	tr := s.tel.Begin("sweep")
	tr.Start(telemetry.StageDecode)
	var req SweepRequest
	if aerr := decodeJSON(w, r, &req); aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		aerr := badRequest("spec", err)
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	if req.Replicas < 1 || req.Replicas > topoopt.MaxFleetSweepReplicas {
		aerr := badRequest("replicas",
			fmt.Errorf("replicas must be in [1, %d], got %d", topoopt.MaxFleetSweepReplicas, req.Replicas))
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	if req.Async {
		j, err := s.SubmitSweep(req.Spec, req.Replicas)
		if err != nil {
			aerr := s.serviceError(err)
			tr.Finish("", false, aerr.Status)
			writeError(w, aerr)
			return
		}
		tr.Finish(j.Fingerprint, false, http.StatusAccepted)
		writeJSON(w, http.StatusAccepted, j)
		return
	}
	ctx, cancel, aerr := s.requestContext(r)
	if aerr != nil {
		tr.Finish("", false, aerr.Status)
		writeError(w, aerr)
		return
	}
	defer cancel()
	tr.End()
	// Sweep latencies are not observed, like compares: a K-replica fan-out
	// is seconds-to-minutes scale and would swamp the serving-path
	// quantiles.
	res, fp, cached, err := s.Sweep(ctx, req.Spec, req.Replicas, tr)
	if err != nil {
		aerr := s.serviceError(err)
		tr.Finish(fp, false, aerr.Status)
		writeError(w, aerr)
		return
	}
	tr.Start(telemetry.StageEncode)
	w.Header().Set("X-Trace", string(tr.AppendHeader(nil)))
	writeJSON(w, http.StatusOK, SweepResponse{Fingerprint: fp, Cached: cached, Sweep: res})
	tr.Finish(fp, cached, http.StatusOK)
}

// JobList is the GET /v1/jobs response body: tracked jobs newest-first,
// result payloads stripped (GET the individual job for its result).
type JobList struct {
	Jobs []Job `json:"jobs"`
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("jobs_list")
	q := r.URL.Query()
	limit := 0
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			writeError(w, badRequest("query", fmt.Errorf("limit must be a positive integer, got %q", l)))
			return
		}
		limit = n
	}
	jobs, err := s.ListJobs(q.Get("status"), limit)
	if err != nil {
		writeError(w, badRequest("query", err))
		return
	}
	writeJSON(w, http.StatusOK, JobList{Jobs: jobs})
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("jobs_submit")
	var req PlanRequest
	m, aerr := decodePlanRequest(w, r, &req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	j, err := s.submitJob(m, req)
	if err != nil {
		writeError(w, s.serviceError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("jobs_get")
	j, ok := s.GetJob(r.PathValue("id"))
	if !ok {
		writeError(w, jobNotFound(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func jobNotFound(id string) *apiError {
	return &apiError{Status: http.StatusNotFound, ErrorResponse: ErrorResponse{
		Code: "not_found", Message: fmt.Sprintf("no job %q", id),
	}}
}

func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("jobs_cancel")
	j, ok := s.CancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, jobNotFound(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handlePromMetrics is the Prometheus scrape endpoint: the same snapshot
// as /v1/metrics, rendered as text exposition format 0.0.4.
func (s *Service) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	WriteMetricsText(w, s.Metrics())
}

// DebugRequests is the GET /debug/requests response body: the last
// telemetry.DefaultRingSize completed traced requests, newest first,
// each with its per-stage breakdown.
type DebugRequests struct {
	Requests []telemetry.Record `json:"requests"`
}

func (s *Service) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DebugRequests{Requests: s.tel.Requests()})
}
