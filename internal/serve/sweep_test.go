package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"topoopt"
)

func postSweep(t *testing.T, url string, req SweepRequest) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// sweepBytes extracts the merged sweep payload from a 200 response so
// comparisons ignore the cached flag.
func sweepBytes(t *testing.T, raw []byte) (string, bool, []byte) {
	t.Helper()
	var sr SweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("decoding sweep response %s: %v", raw, err)
	}
	if sr.Sweep == nil {
		t.Fatalf("no sweep in response: %s", raw)
	}
	b, err := json.Marshal(sr.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	return sr.Fingerprint, sr.Cached, b
}

// TestHTTPSweepDeterministic is the API-level acceptance check: the same
// (spec, K=64) sweep returns byte-identical merged distributions on
// rerun (served from cache under the same fingerprint) and on a daemon
// with a completely different search-thread budget.
func TestHTTPSweepDeterministic(t *testing.T) {
	const k = 64
	req := SweepRequest{Spec: tinyFleetSpec(5), Replicas: k}

	s1 := New(Config{Workers: 2, SearchThreads: 1})
	defer s1.Close()
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	code, raw := postSweep(t, ts1.URL, req)
	if code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", code, raw)
	}
	fp1, cached, b1 := sweepBytes(t, raw)
	if cached {
		t.Error("first sweep cannot be cached")
	}

	code, raw = postSweep(t, ts1.URL, req)
	if code != http.StatusOK {
		t.Fatalf("repeat sweep status %d", code)
	}
	fp2, cached, b2 := sweepBytes(t, raw)
	if fp2 != fp1 {
		t.Errorf("repeat fingerprint %s != %s", fp2, fp1)
	}
	if !cached {
		t.Error("repeat sweep should be a cache hit")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cached repeat returned different sweep bytes")
	}

	// A daemon with 16× the worker budget fans the replicas out wide;
	// the merged result must not move by a byte.
	s2 := New(Config{Workers: 2, SearchThreads: 16})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, raw = postSweep(t, ts2.URL, req)
	if code != http.StatusOK {
		t.Fatalf("wide sweep status %d", code)
	}
	fp3, _, b3 := sweepBytes(t, raw)
	if fp3 != fp1 {
		t.Errorf("fingerprint differs across daemons: %s != %s", fp3, fp1)
	}
	if !bytes.Equal(b1, b3) {
		t.Error("sweep bytes depend on the daemon's search-thread budget")
	}

	// Replica count is part of the identity: K=8 is a different sweep.
	small := req
	small.Replicas = 8
	code, raw = postSweep(t, ts1.URL, small)
	if code != http.StatusOK {
		t.Fatalf("K=8 sweep status %d", code)
	}
	if fp4, _, _ := sweepBytes(t, raw); fp4 == fp1 {
		t.Error("replica count must be part of the sweep fingerprint")
	}
}

// TestHTTPSweepAsync: "async": true rides the job machinery — 202 with a
// kind="sweep" job whose result decodes as the merged SweepResult.
func TestHTTPSweepAsync(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const k = 4
	body, _ := json.Marshal(SweepRequest{Spec: tinyFleetSpec(9), Replicas: k, Async: true})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	err = json.NewDecoder(resp.Body).Decode(&j)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || j.ID == "" {
		t.Fatalf("async submit: status %d, job %+v", resp.StatusCode, j)
	}
	if j.Kind != kindSweep {
		t.Errorf("job kind = %q, want %q", j.Kind, kindSweep)
	}

	done := pollJob(t, ts.URL, j.ID)
	if done.Status != JobDone || done.Result == nil {
		t.Fatalf("sweep job = %+v", done)
	}
	// Re-fetch with a typed view of the kind-tagged envelope: decoding
	// Result as `any` would push the int64 replica seeds through float64.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var typed struct {
		Kind   string                   `json:"kind"`
		Result topoopt.FleetSweepResult `json:"result"`
	}
	err = json.NewDecoder(resp.Body).Decode(&typed)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding sweep job result: %v", err)
	}
	sw := typed.Result
	if typed.Kind != kindSweep || sw.Replicas != k || len(sw.Metrics) == 0 {
		t.Errorf("sweep result = %+v, want kind %q with %d merged replicas", typed, kindSweep, k)
	}

	// The async result and the synchronous endpoint agree byte-for-byte
	// (same fingerprint, same cache entry).
	code, syncRaw := postSweep(t, ts.URL, SweepRequest{Spec: tinyFleetSpec(9), Replicas: k})
	if code != http.StatusOK {
		t.Fatalf("sync repeat status %d", code)
	}
	fp, cached, b := sweepBytes(t, syncRaw)
	if fp != done.Fingerprint || !cached {
		t.Errorf("sync repeat fp=%s cached=%v, want the async job's cache entry %s", fp, cached, done.Fingerprint)
	}
	canon, _ := json.Marshal(&sw)
	if !bytes.Equal(canon, b) {
		t.Error("async and sync sweep results differ")
	}
}

// TestHTTPJobsList: GET /v1/jobs lists newest-first with results
// stripped, honoring ?status= and ?limit=.
func TestHTTPJobsList(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		_, j, _ := postFleet(t, ts.URL, tinyFleetSpec(seed))
		pollJob(t, ts.URL, j.ID)
		ids = append(ids, j.ID)
	}

	get := func(query string) JobList {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list status %d", resp.StatusCode)
		}
		var jl JobList
		if err := json.NewDecoder(resp.Body).Decode(&jl); err != nil {
			t.Fatal(err)
		}
		return jl
	}

	jl := get("")
	if len(jl.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jl.Jobs))
	}
	for i, j := range jl.Jobs {
		if want := ids[len(ids)-1-i]; j.ID != want {
			t.Errorf("jobs[%d] = %s, want %s (newest first)", i, j.ID, want)
		}
		if j.Result != nil {
			t.Errorf("jobs[%d] carries a result payload; lists must strip them", i)
		}
		if j.Kind != kindFleet {
			t.Errorf("jobs[%d] kind = %q, want %q", i, j.Kind, kindFleet)
		}
	}

	if jl := get("?limit=2"); len(jl.Jobs) != 2 {
		t.Errorf("limit=2 listed %d jobs", len(jl.Jobs))
	}
	if jl := get("?status=done"); len(jl.Jobs) != 3 {
		t.Errorf("status=done listed %d jobs, want 3", len(jl.Jobs))
	}
	if jl := get("?status=running"); len(jl.Jobs) != 0 {
		t.Errorf("status=running listed %d jobs, want 0", len(jl.Jobs))
	}
}
