package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"topoopt"
	"topoopt/internal/slo"
)

// BenchmarkServeCacheHit measures the serving hot path: POST /v1/plan for
// a fingerprint already in the cache — HTTP handling, request decode +
// validation, cache lookup and plan (re)serialization, no optimization.
// Recorded into BENCH_serve.json by `make serve-bench`.
func BenchmarkServeCacheHit(b *testing.B) {
	plan := stubPlan(b)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		return plan, nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, err := json.Marshal(testRequest(1))
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	warm, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkServeCoalesce measures coalescing under concurrency: each
// round fires 16 identical uncached requests; the service must collapse
// them onto one (simulated 100 µs) optimization. ns/op ≈ one optimization
// plus the full coordination overhead for all 16 waiters.
func BenchmarkServeCoalesce(b *testing.B) {
	const fanout = 16
	plan := stubPlan(b)
	s := New(Config{Workers: 4, QueueLen: 64, CacheEntries: 4, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		time.Sleep(100 * time.Microsecond)
		return plan, nil
	}})
	defer s.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := testRequest(int64(i) + 1000) // fresh fingerprint every round
		var wg sync.WaitGroup
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, _, err := s.Plan(ctx, req); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	m := s.Metrics()
	if got := m.Optimizations; got != int64(b.N) {
		b.Fatalf("ran %d optimizations for %d rounds: coalescing broken", got, b.N)
	}
}

// BenchmarkServeCacheHitParallel hammers the cache-hit path from many
// concurrent goroutines calling Service.Plan directly (no HTTP), to
// expose Service.mu — the lock every hit takes for the LRU bump and
// flight-map check — under far higher client counts than the HTTP
// benchmark reaches. Run with -mutexprofilefraction to measure the
// lock's contribution; the EXPERIMENTS.md contention harvest records
// the verdict.
func BenchmarkServeCacheHitParallel(b *testing.B) {
	plan := stubPlan(b)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		return plan, nil
	}})
	defer s.Close()
	ctx := context.Background()
	req := testRequest(1)
	if _, _, _, err := s.Plan(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.SetParallelism(64) // 64 goroutines per core
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, cached, err := s.Plan(ctx, req); err != nil || !cached {
				b.Errorf("cached=%v err=%v", cached, err)
			}
		}
	})
}

// BenchmarkServeFingerprint measures request fingerprinting, which sits
// on every request including cache hits.
func BenchmarkServeFingerprint(b *testing.B) {
	req := testRequest(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if req.Fingerprint() == "" {
			b.Fatal("empty fingerprint")
		}
	}
}

// BenchmarkServePlanEncode measures serializing a realistic Plan — the
// dominant per-byte cost of a cache-hit response.
func BenchmarkServePlanEncode(b *testing.B) {
	plan := stubPlan(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeOpenLoopSLO drives the open-loop SLO engine (the one
// behind `planload -open-loop` and `make slo-smoke`) against an
// in-process daemon: Poisson arrivals at a fixed offered rate over a
// short window, requests cycling a small seed population so the load is
// mostly cache hits with a cold miss per seed. The reported ns/op is
// the run's overall p99 latency, which makes the serving tail an entry
// in BENCH_serve.json the benchdiff ledger tracks across PRs.
func BenchmarkServeOpenLoopSLO(b *testing.B) {
	plan := stubPlan(b)
	s := New(Config{Workers: 4, QueueLen: 64, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		return plan, nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	const seeds = 8
	bodies := make([][]byte, seeds)
	for i := range bodies {
		body, err := json.Marshal(testRequest(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	client := ts.Client()

	var p99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := slo.Run(slo.Config{
			Rate: 500, Duration: 400 * time.Millisecond, Bucket: 100 * time.Millisecond, Seed: 1,
			Fire: func(j int) slo.Result {
				resp, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(bodies[j%seeds]))
				if err != nil {
					return slo.Result{Err: true}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return slo.Result{Err: resp.StatusCode != http.StatusOK}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d of %d open-loop requests failed", rep.Errors, rep.Requests)
		}
		p99 = rep.Overall.P99Seconds
	}
	b.ReportMetric(p99*1e9, "ns/op")
}
