package serve

// Chaos harness: crash, restart, drain and overload tests for the
// durable serving layer. These run in the ordinary test suite and,
// together with the fault-injection middleware, under `make chaos`
// (the same tests with -race and the chaos build tag is deliberately
// not needed — determinism comes from seeds, not tags).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topoopt"
	"topoopt/internal/wal"
)

// rawPlanResponse decodes a plan response keeping the plan payload as
// raw bytes, so byte-identity assertions compare what actually went
// over the wire.
type rawPlanResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Cached      bool            `json:"cached"`
	Plan        json.RawMessage `json:"plan"`
}

// postJSON posts v to url and returns the (closed) response plus its
// full body, so callers can inspect status, headers and payload freely.
func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// postPlan fires one plan request with optional headers, returning the
// (closed) response, its raw body, and the decoded plan payload when
// the request succeeded.
func postPlan(t *testing.T, url string, req PlanRequest, hdr map[string]string) (*http.Response, []byte, rawPlanResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pr rawPlanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("decoding plan response: %v", err)
		}
	}
	return resp, raw, pr
}

// decodeAPIError parses the structured error envelope from a response
// body.
func decodeAPIError(t *testing.T, raw []byte) apiError {
	t.Helper()
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("decoding error envelope from %q: %v", raw, err)
	}
	return env.Error
}

// TestRestartWarmByteIdenticalAfterKill9 is the pinned restart-warm
// proof from the issue's acceptance criteria: run real optimizations
// against a stored service, crash it without any shutdown path (no
// compaction, plus a torn half-record at the log tail, exactly what a
// kill -9 mid-append leaves), restart on the same directory, and
// require every previously completed fingerprint to come back as a
// cache hit with a byte-identical plan payload and zero re-searches.
func TestRestartWarmByteIdenticalAfterKill9(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 2, Store: store})
	ts1 := httptest.NewServer(s1.Handler())

	const seeds = 3
	before := make(map[string]json.RawMessage, seeds)
	for seed := int64(1); seed <= seeds; seed++ {
		resp, _, pr := postPlan(t, ts1.URL, testRequest(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		if pr.Cached {
			t.Fatalf("seed %d: first request should not be cached", seed)
		}
		before[pr.Fingerprint] = pr.Plan
	}
	ts1.Close()
	// kill -9: no Close, no Drain, no compaction — the service object is
	// simply abandoned — and the log gets the torn tail of an append that
	// was cut mid-write.
	logPath := filepath.Join(dir, wal.LogName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopening store after crash: %v", err)
	}
	if store2.Len() != seeds {
		t.Fatalf("store replayed %d entries, want %d", store2.Len(), seeds)
	}
	var researches atomic.Int64
	s2 := New(Config{Workers: 2, Store: store2,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			researches.Add(1)
			return nil, fmt.Errorf("re-search after restart-warm boot")
		}})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	for seed := int64(1); seed <= seeds; seed++ {
		resp, _, pr := postPlan(t, ts2.URL, testRequest(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d after restart: status %d", seed, resp.StatusCode)
		}
		if !pr.Cached {
			t.Errorf("seed %d after restart: not served from cache", seed)
		}
		want, ok := before[pr.Fingerprint]
		if !ok {
			t.Fatalf("seed %d after restart: unknown fingerprint %s", seed, pr.Fingerprint)
		}
		if !bytes.Equal(pr.Plan, want) {
			t.Errorf("seed %d: restart-warm plan differs from pre-crash plan\npre:  %s\npost: %s",
				seed, want, pr.Plan)
		}
	}
	if got := researches.Load(); got != 0 {
		t.Errorf("restart ran %d optimizations, want 0 (every hit must come from the WAL)", got)
	}
	if m := s2.Metrics(); m.WarmedEntries != seeds {
		t.Errorf("warmed_entries = %d, want %d", m.WarmedEntries, seeds)
	}
}

// TestCrashReenqueuesJournaledJob: an async job that was admitted but
// never finished survives a kill -9 as a journal entry and is re-run on
// the next boot.
func TestCrashReenqueuesJournaledJob(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{}) // never closed: the "process" dies mid-run
	s1 := New(Config{Workers: 1, Store: store,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			<-block
			return nil, ctx.Err()
		}})
	req := testRequest(9)
	if _, err := s1.SubmitJob(req); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon s1 with the job mid-flight (its worker goroutine
	// stays parked on block for the test process lifetime).

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := stubPlan(t)
	var runs atomic.Int64
	s2 := New(Config{Workers: 1, Store: store2,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			runs.Add(1)
			return plan, nil
		}})
	defer s2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for store2.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-enqueued job never persisted its result")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("restart ran the journaled job %d times, want 1", got)
	}
	// The recovered result serves the original fingerprint as a hit.
	p, _, cached, err := s2.Plan(context.Background(), req)
	if err != nil || !cached {
		t.Fatalf("recovered fingerprint: cached=%v err=%v", cached, err)
	}
	if p == nil {
		t.Fatal("recovered fingerprint returned no plan")
	}
}

// TestDrainFinishesInFlightAndRejectsNew exercises the drain state
// machine: admission stops immediately (structured rejection), work
// already in flight completes and its result is persisted, and Drain
// returns nil when everything finished inside the deadline.
func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := stubPlan(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 2, Store: store,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			started <- struct{}{}
			<-release
			return plan, nil
		}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		wg      sync.WaitGroup
		gotPlan *topoopt.Plan
		gotErr  error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		gotPlan, _, _, gotErr = s.Plan(context.Background(), testRequest(1))
	}()
	<-started

	s.BeginDrain()
	if _, _, _, err := s.Plan(context.Background(), testRequest(2)); err != ErrDraining {
		t.Fatalf("admission during drain: err = %v, want ErrDraining", err)
	}
	resp, raw, _ := postPlan(t, ts.URL, testRequest(3), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining HTTP status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("draining 503 must carry Retry-After")
	}
	if e := decodeAPIError(t, raw); e.Code != "draining" {
		t.Errorf("draining error code = %q", e.Code)
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain with finished work returned %v", err)
	}
	wg.Wait()
	if gotErr != nil || gotPlan == nil {
		t.Fatalf("in-flight request during drain: plan=%v err=%v", gotPlan, gotErr)
	}

	// The drained result must be durable: a fresh boot serves it warm.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 1 {
		t.Errorf("store after drain has %d entries, want 1", store2.Len())
	}
	store2.wal.Close()
}

// TestDrainDeadlineCancelsStragglers: a search that outlives the drain
// budget is cancelled through its flight context rather than abandoned.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	s := New(Config{Workers: 1,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			started <- struct{}{}
			<-ctx.Done() // refuses to finish until cancelled
			return nil, ctx.Err()
		}})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Plan(context.Background(), testRequest(1))
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain past deadline returned %v, want context.DeadlineExceeded", err)
	}
	wg.Wait() // the straggler's waiter must come back too
}

// TestDrainDeadlineKeepsAsyncJobJournal: an async job cut short by the
// drain deadline is NOT terminal — its journal entry must survive the
// shutdown compaction so the next boot re-enqueues and finishes it.
// (Clearing it would silently lose accepted work, contradicting Drain's
// re-enqueue guarantee.)
func TestDrainDeadlineKeepsAsyncJobJournal(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	s1 := New(Config{Workers: 1, Store: store,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			started <- struct{}{}
			<-ctx.Done() // outlives any drain budget
			return nil, ctx.Err()
		}})
	jb, err := s1.SubmitJob(testRequest(11))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s1.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain past deadline returned %v, want context.DeadlineExceeded", err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !store2.wal.HasJob(kindPlan, jb.Fingerprint) {
		t.Fatal("drain deadline erased the journal entry of an unfinished job")
	}
	plan := stubPlan(t)
	var runs atomic.Int64
	s2 := New(Config{Workers: 1, Store: store2,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			runs.Add(1)
			return plan, nil
		}})
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for store2.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-enqueued job never persisted its result")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("restart ran the drained job %d times, want 1", got)
	}
	if store2.wal.HasJob(kindPlan, jb.Fingerprint) {
		t.Error("journal entry not cleared after the re-run completed")
	}
}

// TestWarmBootClearsSatisfiedJobJournal: a journal entry whose put
// record also survived the crash resolves as an instant cache hit on
// boot AND clears the journal — without the clear the stale OpJob
// record would outlive every compaction and re-submit the job on every
// subsequent boot.
func TestWarmBootClearsSatisfiedJobJournal(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := stubPlan(t)
	s1 := New(Config{Workers: 1, Store: store,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			return plan, nil
		}})
	req := testRequest(21)
	if _, _, _, err := s1.Plan(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.Len() == 0 { // persist runs after the flight's waiters wake
		if time.Now().After(deadline) {
			t.Fatal("completed plan never persisted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Crash exactly between a job's journal append and its job_done:
	// the put record and the journal entry both survive.
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	fp := req.Fingerprint()
	if err := store.wal.Append(wal.Record{Op: wal.OpJob, Kind: kindPlan, Fp: fp, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	// s1 is abandoned: kill -9, no Close, no compaction.

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !store2.wal.HasJob(kindPlan, fp) {
		t.Fatal("precondition: journal entry did not survive the crash")
	}
	var runs atomic.Int64
	s2 := New(Config{Workers: 1, Store: store2,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			runs.Add(1)
			return nil, fmt.Errorf("satisfied job must not re-search")
		}})
	if got := runs.Load(); got != 0 {
		t.Errorf("warm boot re-ran a satisfied job %d times, want 0", got)
	}
	if store2.wal.HasJob(kindPlan, fp) {
		t.Error("stale journal entry survived the warm-boot cache hit")
	}
	s2.Close() // compacts

	store3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range store3.wal.Records() {
		if r.Op == wal.OpJob {
			t.Errorf("stale OpJob record %s/%s survived compaction", r.Kind, r.Fp)
		}
	}
	store3.wal.Close()
}

// TestOverloadNeverCorruptsStore hammers a tiny (1 worker, queue of 2)
// stored service through the fault-injection middleware — injected
// latency, injected 500s, connection resets, queue-full 503s, shed 429s
// and deadline 504s all mixed together — then verifies the WAL replays
// cleanly and every surviving record decodes to a usable result.
func TestOverloadNeverCorruptsStore(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := stubPlan(t)
	s := New(Config{Workers: 1, QueueLen: 2, Store: store,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			time.Sleep(time.Millisecond)
			return plan, nil
		}})
	fi := NewFaultInjector(FaultConfig{
		Seed:        42,
		LatencyProb: 0.2, Latency: time.Millisecond,
		ErrorProb: 0.2,
		ResetProb: 0.1,
	})
	ts := httptest.NewServer(fi.Wrap(s.Handler()))

	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := int64(c*perClient+i)%7 + 1 // overlap: hits, coalesces and misses
				body, _ := json.Marshal(testRequest(seed))
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				if i%3 == 0 {
					req.Header.Set("X-Deadline-Ms", "50")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue // injected reset
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	ts.Close()
	s.Close() // clean close: compacts whatever survived

	lats, errs, resets := fi.Counts()
	if errs == 0 || resets == 0 {
		t.Fatalf("fault injector idle (lat=%d errs=%d resets=%d); the test exercised nothing",
			lats, errs, resets)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("store corrupt after overload: %v", err)
	}
	recs := store2.wal.Records()
	if len(recs) == 0 {
		t.Fatal("no records survived the overload run")
	}
	for _, r := range recs {
		if r.Op != wal.OpPut {
			continue
		}
		if _, err := decodeResult(r.Kind, r.Payload); err != nil {
			t.Errorf("record %s/%s does not decode: %v", r.Kind, r.Fp, err)
		}
	}
	store2.wal.Close()
}

// TestFaultInjectorDeterministicPerSeed pins the chaos harness's
// reproducibility: the same seed produces the same fault sequence.
func TestFaultInjectorDeterministicPerSeed(t *testing.T) {
	cfg := FaultConfig{Seed: 7, LatencyProb: 0.3, ErrorProb: 0.3, ResetProb: 0.3}
	a, b := NewFaultInjector(cfg), NewFaultInjector(cfg)
	for i := 0; i < 200; i++ {
		la, fa, ra := a.roll()
		lb, fb, rb := b.roll()
		if la != lb || fa != fb || ra != rb {
			t.Fatalf("roll %d diverged between identical seeds", i)
		}
	}
	_, errs, _ := a.Counts()
	if errs == 0 {
		t.Error("200 rolls at p=0.3 injected no errors; rng wiring broken")
	}
}
