package serve

import (
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// FaultConfig configures the fault-injection middleware used by the
// chaos tests (and available behind a daemon flag for manual game
// days). Each probability is evaluated independently per request from a
// deterministic seeded stream, so a chaos run replays identically.
type FaultConfig struct {
	Seed int64 // rng seed; same seed → same fault sequence

	LatencyProb float64       // probability of injecting extra latency
	Latency     time.Duration // latency to inject when triggered

	ErrorProb float64 // probability of a synthetic 500 before the handler runs

	ResetProb float64 // probability of aborting the connection mid-request
}

// FaultInjector wraps an http.Handler with seeded fault injection:
// added latency, structured 500s, and connection resets. It is the
// serving half of the chaos harness — clients built on clientretry must
// converge to correct results under any fault sequence it produces.
type FaultInjector struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg FaultConfig

	latencies int
	errors    int
	resets    int
}

// NewFaultInjector builds an injector from cfg. A zero-probability
// config passes every request through untouched.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// roll draws the per-request fault decisions under one lock acquisition
// so concurrent requests see a deterministic (if interleaving-dependent)
// fault stream.
func (fi *FaultInjector) roll() (lat, fail, reset bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.cfg.LatencyProb > 0 && fi.rng.Float64() < fi.cfg.LatencyProb {
		lat = true
		fi.latencies++
	}
	if fi.cfg.ErrorProb > 0 && fi.rng.Float64() < fi.cfg.ErrorProb {
		fail = true
		fi.errors++
	}
	if fi.cfg.ResetProb > 0 && fi.rng.Float64() < fi.cfg.ResetProb {
		reset = true
		fi.resets++
	}
	return lat, fail, reset
}

// Counts reports how many faults of each kind have been injected.
func (fi *FaultInjector) Counts() (latencies, errors, resets int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.latencies, fi.errors, fi.resets
}

// Wrap returns next with fault injection in front. Injected failures
// happen before next runs, so a request that was "reset" or "500'd"
// never reaches the service — exactly the shape of a crash between
// accept and handling, which is what retry-side idempotency must absorb.
func (fi *FaultInjector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lat, fail, reset := fi.roll()
		if lat {
			time.Sleep(fi.cfg.Latency)
		}
		if reset {
			// net/http aborts the connection without writing a response —
			// the client sees io.EOF / ECONNRESET, not a status code.
			panic(http.ErrAbortHandler)
		}
		if fail {
			writeError(w, &apiError{
				Status: http.StatusInternalServerError,
				ErrorResponse: ErrorResponse{
					Code: "injected_fault",
					Message: "synthetic failure injected by the chaos harness; " +
						"retry against a healthy instance",
				},
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}
