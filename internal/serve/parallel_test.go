package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestFingerprintParallelismSensitive pins the cache-identity contract
// for the new knob: parallelism changes the computed plan, so it must
// split cache entries; omitted and explicit-1 must share one.
func TestFingerprintParallelismSensitive(t *testing.T) {
	a := testRequest(1)
	b := testRequest(1)
	b.Options.Parallelism = 8
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("parallelism must be part of the fingerprint")
	}
	c := testRequest(1)
	c.Options.Parallelism = 1
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("omitted parallelism and explicit 1 must share a fingerprint")
	}
}

// TestChainBudget pins the thread-budget policy: demand-metered grants
// up to the request's Parallelism, a lone request on an idle budget gets
// everything it asks for, an exhausted budget still grants one (searches
// must progress), and releases restore the budget exactly.
func TestChainBudget(t *testing.T) {
	b := &chainBudget{avail: 8}
	if g := b.acquire(4); g != 4 {
		t.Fatalf("idle budget grant = %d, want 4", g)
	}
	if g := b.acquire(8); g != 4 {
		t.Fatalf("partial budget grant = %d, want the 4 remaining", g)
	}
	// Budget exhausted: the floor grants one and lets avail go negative.
	if g := b.acquire(2); g != 1 {
		t.Fatalf("exhausted budget grant = %d, want 1", g)
	}
	if g := b.acquire(0); g != 1 {
		t.Fatalf("sequential request grant = %d, want 1", g)
	}
	for _, n := range []int{4, 4, 1, 1} {
		b.release(n)
	}
	if b.avail != 8 {
		t.Fatalf("after releases avail = %d, want 8", b.avail)
	}
	if g := b.acquire(64); g != 8 {
		t.Fatalf("over-ask grant = %d, want full budget 8", g)
	}
	b.release(8)
}

// TestConcurrentParallelPlansUnderCancellation is the race-detector
// workout the CI race job runs: several clients request genuinely
// parallel searches (Parallelism > 1, real optimizer), half of them get
// cancelled mid-flight, and the service must neither deadlock nor panic,
// and must still answer the surviving clients correctly.
func TestConcurrentParallelPlansUnderCancellation(t *testing.T) {
	s := New(Config{Workers: 2, QueueLen: 32, SearchThreads: 4})
	defer s.Close()

	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := testRequest(int64(100 + i))
			req.Options.Parallelism = 4
			req.Options.MCMCIters = 200
			ctx := context.Background()
			if i%2 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				defer cancel()
			}
			_, _, _, errs[i] = s.Plan(ctx, req)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("concurrent parallel plans deadlocked")
	}
	for i, err := range errs {
		if i%2 == 1 && err != nil {
			t.Errorf("uncancelled client %d failed: %v", i, err)
		}
		if i%2 == 0 && err != nil && err != context.DeadlineExceeded {
			t.Errorf("cancelled client %d: unexpected error %v", i, err)
		}
	}
}
