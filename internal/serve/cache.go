package serve

import "container/list"

// planCache is a plain LRU keyed by request fingerprint. It is not
// concurrency-safe; the Service guards it with its mutex, which also
// makes the lookup-then-coalesce sequence atomic.
type planCache struct {
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	// onEvict, when set, is called with each key the LRU bound pushes out
	// (not on overwrites). The similarity index hooks it so index entries
	// can never outlive the plan they point at. Runs under the same lock
	// as every other cache call (the Service mutex).
	onEvict func(key string)
}

type cacheEntry struct {
	key string
	val any
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *planCache) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *planCache) add(key string, val any) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		k := oldest.Value.(*cacheEntry).key
		delete(c.m, k)
		if c.onEvict != nil {
			c.onEvict(k)
		}
	}
}

func (c *planCache) len() int { return c.ll.Len() }
