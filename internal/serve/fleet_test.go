package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"topoopt"
)

// tinyFleetSpec is a fast inline fleet run (fixed-duration jobs: the
// engine's no-training path, so tests don't pay for strategy searches).
func tinyFleetSpec(seed int64) topoopt.FleetSpec {
	return topoopt.FleetSpec{
		Servers: 8, Degree: 1, LinkBandwidth: 1e9,
		Arch: "Fat-tree", Policy: "fifo", Provisioning: "ocs", Seed: seed,
		Trace: topoopt.FleetTraceSpec{Inline: []topoopt.FleetJobSpec{
			{AtS: 0, Workers: 4, FixedDurationS: 50},
			{AtS: 1, Workers: 8, FixedDurationS: 20},
			{AtS: 2, Workers: 2, FixedDurationS: 10},
		}},
	}
}

func postFleet(t *testing.T, url string, spec topoopt.FleetSpec) (int, Job, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(FleetRequest{Spec: spec})
	resp, err := http.Post(url+"/v1/fleet", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, Job{}, e
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, j, nil
}

// fleetJobResult re-decodes a done job's kind-tagged result envelope
// into the concrete fleet result type (over HTTP the envelope's Result
// arrives as generic JSON).
func fleetJobResult(t *testing.T, j Job) topoopt.FleetResult {
	t.Helper()
	raw, err := json.Marshal(j.Result)
	if err != nil {
		t.Fatal(err)
	}
	var fr topoopt.FleetResult
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatalf("decoding fleet job result: %v", err)
	}
	return fr
}

func pollJob(t *testing.T, url, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch j.Status {
		case JobDone, JobFailed, JobCancelled:
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return Job{}
}

// TestHTTPFleetRoundTrip: POST /v1/fleet runs asynchronously through the
// job machinery; a repeat submission of the same canonical spec returns
// the same fingerprint and a byte-identical cached result.
func TestHTTPFleetRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, j1, _ := postFleet(t, ts.URL, tinyFleetSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done1 := pollJob(t, ts.URL, j1.ID)
	if done1.Status != JobDone || done1.Result == nil {
		t.Fatalf("job 1 = %+v", done1)
	}
	if done1.Kind != kindFleet {
		t.Errorf("fleet job kind = %q, want %q", done1.Kind, kindFleet)
	}
	fr1 := fleetJobResult(t, done1)
	if len(fr1.Jobs) != 3 {
		t.Fatalf("fleet result has %d jobs, want 3", len(fr1.Jobs))
	}

	// Repeat: same fingerprint, instantly done from the cache, identical
	// result bytes.
	_, j2, _ := postFleet(t, ts.URL, tinyFleetSpec(1))
	if j2.Fingerprint != j1.Fingerprint {
		t.Errorf("repeat fingerprint %s != %s", j2.Fingerprint, j1.Fingerprint)
	}
	done2 := pollJob(t, ts.URL, j2.ID)
	b1, _ := json.Marshal(done1.Result)
	b2, _ := json.Marshal(done2.Result)
	if !bytes.Equal(b1, b2) {
		t.Error("cached repeat returned a different result")
	}

	// A different seed is a different fingerprint.
	_, j3, _ := postFleet(t, ts.URL, tinyFleetSpec(2))
	if j3.Fingerprint == j1.Fingerprint {
		t.Error("seed must be part of the fleet fingerprint")
	}
}

// TestHTTPFleetValidation: structural 400s for bad specs, with the
// unified bad_request code, the spec detail group, and a menu in the
// message.
func TestHTTPFleetValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := tinyFleetSpec(1)
	bad.Arch = "NoSuchFabric"
	code, _, e := postFleet(t, ts.URL, bad)
	if code != http.StatusBadRequest {
		t.Fatalf("bad arch status %d", code)
	}
	msg, _ := json.Marshal(e)
	if !strings.Contains(string(msg), `"bad_request"`) ||
		!strings.Contains(string(msg), `"spec"`) ||
		!strings.Contains(string(msg), "TopoOpt") {
		t.Errorf("error should carry bad_request, the spec detail group and the registered menu: %s", msg)
	}

	bad = tinyFleetSpec(1)
	bad.Policy = "lifo"
	if code, _, _ := postFleet(t, ts.URL, bad); code != http.StatusBadRequest {
		t.Errorf("bad policy status %d", code)
	}

	// Unknown fields are rejected like every other endpoint.
	resp, err := http.Post(ts.URL+"/v1/fleet", "application/json",
		strings.NewReader(`{"spec": {"servers": 8}, "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
}

// TestFleetFingerprintCanonical: omitted defaults and their explicit
// spellings share one fleet cache entry; every identity-bearing field
// separates entries.
func TestFleetFingerprintCanonical(t *testing.T) {
	a := tinyFleetSpec(1)
	b := tinyFleetSpec(1)
	b.Policy = "" // canonicalizes to fifo
	if FleetFingerprint(a) != FleetFingerprint(b) {
		t.Error("default policy spelling variants must share a fingerprint")
	}
	c := tinyFleetSpec(1)
	c.Policy = "backfill"
	if FleetFingerprint(a) == FleetFingerprint(c) {
		t.Error("policy must be part of the fingerprint")
	}
	d := tinyFleetSpec(1)
	d.Arch = "Expander"
	if FleetFingerprint(a) == FleetFingerprint(d) {
		t.Error("arch must be part of the fingerprint")
	}
}

// TestFleetJobCancellation: DELETE /v1/jobs/{id} cancels a running fleet
// simulation through the shared job machinery.
func TestFleetJobCancellation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A training fleet run big enough to still be in flight when the
	// cancel lands (co-optimized TopoOpt searches per shard size).
	spec := topoopt.FleetSpec{
		Servers: 32, Degree: 3, LinkBandwidth: 100e9,
		Arch: "TopoOpt", Seed: 42, MCMCIters: 400, Rounds: 3,
		Trace: topoopt.FleetTraceSpec{
			Jobs: 64, MeanInterarrivalS: 300, WorkerDivisor: 16, MaxWorkers: 24,
		},
	}
	_, j, _ := postFleet(t, ts.URL, spec)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := pollJob(t, ts.URL, j.ID)
	if final.Status != JobCancelled && final.Status != JobDone {
		t.Errorf("cancelled fleet job ended as %q", final.Status)
	}
}

// TestSubmitFleetRejectsInvalid: the service-level entry point validates
// too (callers that bypass HTTP get the same contract).
func TestSubmitFleetRejectsInvalid(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	bad := tinyFleetSpec(1)
	bad.Servers = 0
	if _, err := s.SubmitFleet(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}
