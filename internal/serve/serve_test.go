package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topoopt"
)

func testRequest(seed int64) PlanRequest {
	return PlanRequest{
		Model: topoopt.ModelSpec{Preset: "bert", Section: "6"},
		Options: topoopt.Options{Servers: 12, Degree: 4, LinkBandwidth: 25e9,
			Rounds: 1, MCMCIters: 10, Seed: seed},
	}
}

// tinyPlan builds one small real plan to serve from stubs.
var tinyPlanOnce sync.Once
var tinyPlan *topoopt.Plan

func stubPlan(t testing.TB) *topoopt.Plan {
	tinyPlanOnce.Do(func() {
		m := topoopt.BERT(topoopt.Sec6)
		p, err := topoopt.Optimize(m, topoopt.Options{Servers: 4, Degree: 2,
			LinkBandwidth: 25e9, Rounds: 1, MCMCIters: 5, Seed: 1})
		if err != nil {
			t.Fatalf("building stub plan: %v", err)
		}
		tinyPlan = p
	})
	return tinyPlan
}

func TestFingerprintDeterministicAndSeedSensitive(t *testing.T) {
	a, b := testRequest(1), testRequest(1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical requests must fingerprint identically")
	}
	if a.Fingerprint() == testRequest(2).Fingerprint() {
		t.Error("the seed must be part of the fingerprint")
	}
	c := testRequest(1)
	c.Options.Degree++
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("options must be part of the fingerprint")
	}
	// Spelling variants of the same workload must share one cache entry.
	d := testRequest(1)
	d.Model = topoopt.ModelSpec{Preset: "BERT", Section: "6"}
	if a.Fingerprint() != d.Fingerprint() {
		t.Error("preset case must not change the fingerprint")
	}
	e := PlanRequest{Model: topoopt.ModelSpec{Preset: "dlrm"}, Options: a.Options}
	f := PlanRequest{Model: topoopt.ModelSpec{Preset: "dlrm", Section: "5.3"}, Options: a.Options}
	if e.Fingerprint() != f.Fingerprint() {
		t.Error("implicit and explicit default section must fingerprint identically")
	}
	// Omitted option fields and their explicit defaults describe the same
	// computation and must share a cache entry.
	implicit := PlanRequest{Model: topoopt.ModelSpec{Preset: "dlrm"},
		Options: topoopt.Options{Servers: 12, Degree: 4, LinkBandwidth: 25e9}}
	explicit := implicit
	explicit.Options.Rounds = 3
	explicit.Options.MCMCIters = 200
	explicit.Options.GPU = topoopt.A100
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Error("default option values must fingerprint like omitted ones")
	}
}

// TestCoalescingSingleOptimize is the tentpole acceptance check: N
// concurrent identical requests trigger exactly one optimization.
func TestCoalescingSingleOptimize(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	plan := stubPlan(t)
	s := New(Config{Workers: 4, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		calls.Add(1)
		started <- struct{}{}
		<-release
		return plan, nil
	}})
	defer s.Close()

	const n = 8
	var wg sync.WaitGroup
	results := make([]*topoopt.Plan, n)
	errs := make([]error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, _, errs[0] = s.Plan(context.Background(), testRequest(1))
	}()
	<-started // the flight is registered before its optimizer runs
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, _, errs[i] = s.Plan(context.Background(), testRequest(1))
		}(i)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests made %d optimize calls, want exactly 1", n, got)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != plan {
			t.Fatalf("request %d got a different plan", i)
		}
	}
	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1", m.CacheMisses)
	}
	if m.Coalesced+m.CacheHits != n-1 {
		t.Errorf("coalesced %d + late cache hits %d, want %d combined",
			m.Coalesced, m.CacheHits, n-1)
	}
}

func TestCacheHitAndLRUEviction(t *testing.T) {
	var calls atomic.Int64
	plan := stubPlan(t)
	s := New(Config{Workers: 2, CacheEntries: 1, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		calls.Add(1)
		return plan, nil
	}})
	defer s.Close()
	ctx := context.Background()

	if _, _, cached, err := s.Plan(ctx, testRequest(1)); err != nil || cached {
		t.Fatalf("first request: cached=%v err=%v", cached, err)
	}
	if _, _, cached, err := s.Plan(ctx, testRequest(1)); err != nil || !cached {
		t.Fatalf("repeat request should hit the cache: cached=%v err=%v", cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("optimize calls = %d, want 1 (second served from cache)", calls.Load())
	}
	if _, _, _, err := s.Plan(ctx, testRequest(2)); err != nil {
		t.Fatal(err)
	}
	// Seed 1 was evicted by seed 2 in the single-entry cache.
	if _, _, cached, err := s.Plan(ctx, testRequest(1)); err != nil || cached {
		t.Fatalf("evicted entry must be recomputed: cached=%v err=%v", cached, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("optimize calls = %d, want 3 after eviction", calls.Load())
	}
}

// TestClientCancellationAbortsFlight: when every waiter gives up, the
// optimization's context is cancelled; a later identical request starts a
// fresh, functional flight.
func TestClientCancellationAbortsFlight(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 4)
	aborted := make(chan struct{}, 4)
	plan := stubPlan(t)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		calls.Add(1)
		started <- struct{}{}
		select {
		case <-ctx.Done():
			aborted <- struct{}{}
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return plan, nil
		}
	}})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := s.Plan(ctx, testRequest(1))
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning the last waiter did not cancel the optimization")
	}

	// The fingerprint is free again: a new request succeeds on a new flight.
	s2 := make(chan error, 1)
	go func() {
		p, _, _, err := s.Plan(context.Background(), testRequest(1))
		if err == nil && p != plan {
			err = errors.New("wrong plan")
		}
		s2 <- err
	}()
	<-started
	// Second flight is live; let it finish by cancelling nothing — it waits
	// on the timer, so cut it short via service shutdown? No: just verify
	// it is a distinct optimize call and complete it through ctx.
	if calls.Load() != 2 {
		t.Fatalf("optimize calls = %d, want 2 (fresh flight after abandonment)", calls.Load())
	}
	s.Close()
	if err := <-s2; err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, context.Canceled) {
		t.Fatalf("second flight: %v", err)
	}
}

func TestQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	plan := stubPlan(t)
	s := New(Config{Workers: 1, QueueLen: 1, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		started <- struct{}{}
		select {
		case <-release:
			return plan, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	defer s.Close()

	done := make(chan error, 2)
	go func() { _, _, _, err := s.Plan(context.Background(), testRequest(1)); done <- err }()
	<-started // the single worker is now busy; the queue is empty
	go func() { _, _, _, err := s.Plan(context.Background(), testRequest(2)); done <- err }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never filled the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// Worker busy + queue full: a third distinct request must be rejected.
	_, _, _, err := s.Plan(context.Background(), testRequest(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if s.Metrics().QueueFull == 0 {
		t.Error("queue_full counter not incremented")
	}
	// Job submission must see the same synchronous backpressure (a 503
	// at the HTTP layer), not a 202 that later fails asynchronously.
	if _, err := s.SubmitJob(testRequest(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("SubmitJob err = %v, want ErrQueueFull", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHTTPPlanValidation(t *testing.T) {
	var calls atomic.Int64
	plan := stubPlan(t)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		calls.Add(1)
		return plan, nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := `{"model":{"preset":"bert","section":"6"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9,"mcmc_iters":10,"rounds":1,"seed":1}}`
	cases := []struct {
		name       string
		body       string
		wantCode   int
		wantErr    string // error.code, "" for success
		wantDetail string // error.detail field group
	}{
		{"valid", good, http.StatusOK, "", ""},
		{"malformed json", `{"model":`, http.StatusBadRequest, "bad_request", "body"},
		{"unknown field", `{"model":{"preset":"bert"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9},"fanciness":11}`, http.StatusBadRequest, "bad_request", "body"},
		{"unknown preset", `{"model":{"preset":"gpt5"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9}}`, http.StatusBadRequest, "bad_request", "model"},
		{"bad section", `{"model":{"preset":"bert","section":"9.9"},"options":{"servers":12,"degree":4,"link_bandwidth":25e9}}`, http.StatusBadRequest, "bad_request", "model"},
		{"servers too small", `{"model":{"preset":"bert"},"options":{"servers":1,"degree":4,"link_bandwidth":25e9}}`, http.StatusBadRequest, "bad_request", "options"},
		{"degree too small", `{"model":{"preset":"bert"},"options":{"servers":12,"degree":0,"link_bandwidth":25e9}}`, http.StatusBadRequest, "bad_request", "options"},
		{"no bandwidth", `{"model":{"preset":"bert"},"options":{"servers":12,"degree":4}}`, http.StatusBadRequest, "bad_request", "options"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if tc.wantErr == "" {
				var pr PlanResponse
				if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
					t.Fatal(err)
				}
				if pr.Plan == nil || pr.Fingerprint == "" {
					t.Error("success response missing plan or fingerprint")
				}
				return
			}
			var env struct {
				Error apiError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.wantErr {
				t.Errorf("error code = %q, want %q (message %q)",
					env.Error.Code, tc.wantErr, env.Error.Message)
			}
			if env.Error.Detail != tc.wantDetail {
				t.Errorf("error detail = %q, want %q", env.Error.Detail, tc.wantDetail)
			}
		})
	}
	if calls.Load() != 1 {
		t.Errorf("invalid requests must not reach the optimizer (calls = %d)", calls.Load())
	}
}

func TestHTTPCompareAndCost(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"model":{"preset":"candle","section":"6"},"options":{"servers":4,"degree":2,"link_bandwidth":100e9,"mcmc_iters":5,"rounds":1,"seed":3},"archs":["IdealSwitch","Fat-tree"]}`
	resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status = %d", resp.StatusCode)
	}
	var cr CompareResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 2 {
		t.Fatalf("compare results = %d, want 2", len(cr.Results))
	}
	for _, r := range cr.Results {
		if r.Iteration.Total() <= 0 || r.CostUSD <= 0 {
			t.Errorf("%s: iteration %v cost %v", r.Arch, r.Iteration.Total(), r.CostUSD)
		}
	}

	bad, err := http.Post(ts.URL+"/v1/compare", "application/json",
		strings.NewReader(`{"model":{"preset":"candle","section":"6"},"options":{"servers":4,"degree":2,"link_bandwidth":1e9},"archs":["warpdrive"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown arch status = %d, want 400", bad.StatusCode)
	}

	cost, err := http.Get(ts.URL + "/v1/cost?arch=TopoOpt&servers=128&degree=4&bandwidth_gbps=100")
	if err != nil {
		t.Fatal(err)
	}
	defer cost.Body.Close()
	var cres CostResponse
	if err := json.NewDecoder(cost.Body).Decode(&cres); err != nil {
		t.Fatal(err)
	}
	if cres.CostUSD <= 0 {
		t.Errorf("cost = %v, want > 0", cres.CostUSD)
	}

	// Out-of-bounds parameters get the same 400 treatment as /v1/plan.
	for _, q := range []string{
		"arch=TopoOpt&servers=-5&degree=4&bandwidth_gbps=100",
		"arch=TopoOpt&servers=128&degree=0&bandwidth_gbps=100",
		"arch=TopoOpt&servers=128&degree=4&bandwidth_gbps=0",
	} {
		r, err := http.Get(ts.URL + "/v1/cost?" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("cost?%s → %d, want 400", q, r.StatusCode)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	plan := stubPlan(t)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		return plan, nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testRequest(1))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || j.ID == "" {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, j)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got Job
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if got.Status == JobDone {
			if got.Kind != kindPlan || got.Result == nil || got.FinishedAt == nil {
				t.Fatalf("done job missing kind/result/finish time: %+v", got)
			}
			break
		}
		if got.Status == JobFailed || got.Status == JobCancelled {
			t.Fatalf("job ended %s: %s", got.Status, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", r.StatusCode)
	}
}

func TestAsyncJobCancellation(t *testing.T) {
	started := make(chan struct{}, 4)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testRequest(7))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	json.NewDecoder(resp.Body).Decode(&j)
	resp.Body.Close()
	<-started
	// The optimizer has been dequeued, so the job must now be observable
	// as running (it was "queued" until a worker picked it up).
	deadline0 := time.Now().Add(5 * time.Second)
	for {
		got, ok := s.GetJob(j.ID)
		if ok && got.Status == JobRunning {
			break
		}
		if time.Now().After(deadline0) {
			t.Fatalf("job never became running (status %v)", got.Status)
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dr.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := s.GetJob(j.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if got.Status == JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	plan := stubPlan(t)
	s := New(Config{Workers: 2, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		return plan, nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testRequest(1))
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["plan"] != 3 {
		t.Errorf("plan requests = %d, want 3", m.Requests["plan"])
	}
	if m.CacheMisses != 1 || m.CacheHits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/1", m.CacheHits, m.CacheMisses)
	}
	if m.Latency.Count != 3 || m.Latency.P99Seconds < m.Latency.P50Seconds {
		t.Errorf("latency summary inconsistent: %+v", m.Latency)
	}
	if m.QueueCapacity == 0 {
		t.Error("queue capacity missing")
	}
}

// TestEndToEndRealOptimizer drives the full stack once — HTTP → service →
// topoopt.OptimizeContext → flexnet → netsim — and checks the returned
// plan round-trips through the wire format.
func TestEndToEndRealOptimizer(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testRequest(1))
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Plan == nil || pr.Plan.PredictedIteration.Total() <= 0 {
		t.Fatalf("no usable plan in response: %+v", pr.Plan)
	}
	if len(pr.Plan.Circuits) == 0 || len(pr.Plan.Routes) == 0 {
		t.Error("plan lost circuits or routes over the wire")
	}
	if fmt.Sprint(pr.Fingerprint) == "" {
		t.Error("missing fingerprint")
	}
}

// TestUnknownArchStructured400 table-tests the registry validation on
// both architecture-accepting endpoints: unknown names must produce a
// structured 400 whose message lists the registered backends, never an
// opaque 500.
func TestUnknownArchStructured400(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(method, url, body string) (int, string, string) {
		t.Helper()
		var (
			resp *http.Response
			err  error
		)
		if method == http.MethodPost {
			resp, err = http.Post(url, "application/json", strings.NewReader(body))
		} else {
			resp, err = http.Get(url)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, env.Error.Code, env.Error.Message
	}

	compareBody := func(arch string) string {
		return fmt.Sprintf(`{"model":{"preset":"candle","section":"6"},"options":{"servers":4,"degree":2,"link_bandwidth":1e9},"archs":[%q]}`, arch)
	}
	cases := []struct {
		name     string
		method   string
		url      string
		body     string
		wantCode string
	}{
		{"compare bogus", http.MethodPost, ts.URL + "/v1/compare", compareBody("warpdrive"), "unknown_arch"},
		{"compare empty name", http.MethodPost, ts.URL + "/v1/compare", compareBody(""), "unknown_arch"},
		{"compare case sensitive", http.MethodPost, ts.URL + "/v1/compare", compareBody("topoopt"), "unknown_arch"},
		{"cost bogus", http.MethodGet, ts.URL + "/v1/cost?arch=warpdrive&servers=16&degree=4&bandwidth_gbps=100", "", "unknown_arch"},
		{"cost case sensitive", http.MethodGet, ts.URL + "/v1/cost?arch=fat-tree&servers=16&degree=4&bandwidth_gbps=100", "", "unknown_arch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code, msg := do(tc.method, tc.url, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", status)
			}
			if code != tc.wantCode {
				t.Errorf("error code = %q, want %q", code, tc.wantCode)
			}
			// The structured error must hand the client the registry menu.
			for _, a := range topoopt.Architectures() {
				if !strings.Contains(msg, string(a)) {
					t.Errorf("message %q does not list registered arch %s", msg, a)
				}
			}
		})
	}
}

// TestCompareNewBackendsEndToEnd drives the two registry additions
// through POST /v1/compare and pins their output across requests: the
// second identical request must be a cache hit with identical results.
func TestCompareNewBackendsEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"model":{"preset":"candle","section":"6"},"options":{"servers":9,"degree":4,"link_bandwidth":100e9,"mcmc_iters":5,"rounds":1,"seed":3},"archs":["Torus","SiP-Ring"]}`
	post := func() CompareResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var cr CompareResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}

	first := post()
	if len(first.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(first.Results))
	}
	if first.Cached {
		t.Error("first comparison cannot be a cache hit")
	}
	for i, want := range []topoopt.Architecture{topoopt.ArchTorus, topoopt.ArchSiPRing} {
		r := first.Results[i]
		if r.Arch != want {
			t.Errorf("result %d arch = %s, want %s", i, r.Arch, want)
		}
		if r.Iteration.Total() <= 0 || r.CostUSD <= 0 {
			t.Errorf("%s: iteration %v cost %v", r.Arch, r.Iteration.Total(), r.CostUSD)
		}
	}

	second := post()
	if !second.Cached {
		t.Error("identical comparison must hit the cache")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", second.Fingerprint, first.Fingerprint)
	}
	a, _ := json.Marshal(first.Results)
	b, _ := json.Marshal(second.Results)
	if !bytes.Equal(a, b) {
		t.Errorf("cached results differ:\n%s\n%s", a, b)
	}
}

func TestCompareFingerprintSemantics(t *testing.T) {
	spec := topoopt.ModelSpec{Preset: "bert", Section: "6"}
	o := topoopt.Options{Servers: 8, Degree: 2, LinkBandwidth: 100e9, Seed: 1}

	// Implicit "all architectures" and the explicit full list are one
	// computation and must share a fingerprint.
	if CompareFingerprint(spec, o, nil) != CompareFingerprint(spec, o, topoopt.Architectures()) {
		t.Error("nil archs must canonicalize to the full registry sweep")
	}
	// Arch selection and order are part of the result, hence of the key.
	one := CompareFingerprint(spec, o, []topoopt.Architecture{topoopt.ArchTorus})
	other := CompareFingerprint(spec, o, []topoopt.Architecture{topoopt.ArchSiPRing})
	if one == other {
		t.Error("different arch selections must not alias")
	}
	ab := CompareFingerprint(spec, o, []topoopt.Architecture{topoopt.ArchTorus, topoopt.ArchSiPRing})
	ba := CompareFingerprint(spec, o, []topoopt.Architecture{topoopt.ArchSiPRing, topoopt.ArchTorus})
	if ab == ba {
		t.Error("arch order changes the result order and must change the key")
	}
	// Seeds distinguish fingerprints exactly as for plans.
	o2 := o
	o2.Seed = 2
	if CompareFingerprint(spec, o, nil) == CompareFingerprint(spec, o2, nil) {
		t.Error("seed must be part of the comparison fingerprint")
	}
}

// TestCompareCoalescing: N concurrent identical comparisons — the most
// expensive request type — must share one execution, with late arrivals
// joining the in-flight sweep instead of occupying workers.
func TestCompareCoalescing(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	spec := topoopt.ModelSpec{Preset: "candle", Section: "6"}
	m, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	o := topoopt.Options{Servers: 8, Degree: 2, LinkBandwidth: 100e9,
		Rounds: 1, MCMCIters: 10, Seed: 3}
	archs := []topoopt.Architecture{topoopt.ArchTorus, topoopt.ArchSiPRing}

	const clients = 6
	var wg sync.WaitGroup
	results := make([][]topoopt.CompareResult, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, _, err := s.Compare(context.Background(), spec, m, o, archs)
			results[i], errs[i] = res, err
		}(i)
	}
	wg.Wait()

	base, _ := json.Marshal(results[0])
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		got, _ := json.Marshal(results[i])
		if !bytes.Equal(base, got) {
			t.Errorf("client %d diverged:\n%s\n%s", i, base, got)
		}
	}
	snap := s.Metrics()
	// One miss ran the sweep; every other client either coalesced onto it
	// or (having arrived after it finished) hit the cache.
	if snap.Coalesced+snap.CacheHits != clients-1 {
		t.Errorf("coalesced %d + cache hits %d, want %d shared clients",
			snap.Coalesced, snap.CacheHits, clients-1)
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after completion, want 0", snap.InFlight)
	}
}

// TestCompareAbandonedByAllWaitersCancels: when every client waiting on
// a comparison leaves, the sweep must be cancelled and unregistered so a
// later identical request starts fresh. The single worker is parked on a
// gated stub plan, so the comparison deterministically sits in the queue
// while its only waiter abandons it.
func TestCompareAbandonedByAllWaitersCancels(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
		select {
		case <-release:
			return stubPlan(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	defer s.Close()

	// Occupy the worker: the plan task must be queued first so the FIFO
	// worker picks it up and blocks before the comparison is enqueued.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Plan(context.Background(), testRequest(1))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("plan never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	spec := topoopt.ModelSpec{Preset: "bert", Section: "6"}
	m, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	o := topoopt.Options{Servers: 12, Degree: 4, LinkBandwidth: 25e9,
		Rounds: 1, MCMCIters: 10, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, cerr := s.Compare(ctx, spec, m, o, []topoopt.Architecture{topoopt.ArchTopoOpt})
		done <- cerr
	}()
	// Wait for the comparison flight to register, then abandon it.
	deadline = time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatal("comparison never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case cerr := <-done:
		if !errors.Is(cerr, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", cerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned comparison did not return")
	}
	// Unblock the worker; the dead comparison task must finish without
	// running a sweep, leaving nothing registered.
	close(release)
	wg.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned comparison still registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
