package serve

// HTTP-surface tests for the overload contract: deadline plumbing
// (X-Deadline-Ms / DefaultDeadline → 504), admission-control shedding
// (429 + Retry-After) and the structured queue-full 503.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"topoopt"
)

func TestDeadlineHeaderRejectsGarbage(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		resp, raw, _ := postPlan(t, ts.URL, testRequest(1), map[string]string{"X-Deadline-Ms": bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("X-Deadline-Ms=%q: status %d, want 400", bad, resp.StatusCode)
			continue
		}
		if e := decodeAPIError(t, raw); e.Code != "bad_deadline" {
			t.Errorf("X-Deadline-Ms=%q: code %q, want bad_deadline", bad, e.Code)
		}
	}
}

func TestDeadlineHeaderExpiryIs504(t *testing.T) {
	s := New(Config{Workers: 1,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw, _ := postPlan(t, ts.URL, testRequest(1), map[string]string{"X-Deadline-Ms": "30"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if e := decodeAPIError(t, raw); e.Code != "deadline_exceeded" {
		t.Errorf("code %q, want deadline_exceeded", e.Code)
	}
}

func TestDefaultDeadlineAppliesWithoutHeader(t *testing.T) {
	s := New(Config{Workers: 1, DefaultDeadline: 30 * time.Millisecond,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _, _ := postPlan(t, ts.URL, testRequest(1), nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 from the default deadline", resp.StatusCode)
	}
}

// TestShedding429WhenQueueWaitExceedsDeadline drives the admission
// controller directly: with an observed mean service time of 1s, one
// busy worker and a backlog, a request that only has 100ms left is shed
// with a 429 whose Retry-After reflects the estimated wait.
func TestShedding429WhenQueueWaitExceedsDeadline(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Workers: 1, QueueLen: 8,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-release:
			case <-ctx.Done(): // Close cancels workers; don't wedge wg.Wait
				return nil, ctx.Err()
			}
			return stubPlan(t), nil
		}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.met.observeService(1.0) // pretend searches take 1s

	// Occupy the worker, then build a backlog of queued jobs.
	if _, err := s.SubmitJob(testRequest(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	for seed := int64(2); seed <= 4; seed++ {
		if _, err := s.SubmitJob(testRequest(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.queue) == 0 {
		t.Fatal("backlog did not build; shedding has nothing to act on")
	}

	resp, raw, _ := postPlan(t, ts.URL, testRequest(99), map[string]string{"X-Deadline-Ms": "100"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	e := decodeAPIError(t, raw)
	if e.Code != "overloaded" {
		t.Errorf("code %q, want overloaded", e.Code)
	}
	if !strings.HasPrefix(e.Detail, "queue_depth=") {
		t.Errorf("detail = %q, want queue_depth=N", e.Detail)
	}
	if e.RetryAfterSeconds != ra {
		t.Errorf("body retry_after_seconds %d != header %d", e.RetryAfterSeconds, ra)
	}
	if m := s.Metrics(); m.Shed < 1 {
		t.Errorf("shed counter = %d, want >= 1", m.Shed)
	}

	// A request with no deadline is never shed: it queues (or coalesces)
	// instead. Use an already-in-flight fingerprint so it coalesces and
	// does not need a free queue slot.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := s.Plan(ctx, testRequest(2))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("deadline-free request returned early: %v (should wait, not shed)", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	<-done
}

// TestQueueFull503StructuredResponses is the satellite table test: every
// admission endpoint returns the structured queue-full envelope with a
// queue_depth gauge and a Retry-After header once the worker pool and
// queue are saturated.
func TestQueueFull503StructuredResponses(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Workers: 1, QueueLen: 1,
		Optimize: func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubPlan(t), nil
		}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate: one job on the worker, one in the queue slot.
	if _, err := s.SubmitJob(testRequest(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.SubmitJob(testRequest(2)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		method string
		path   string
		seed   int64
	}{
		{"plan", http.MethodPost, "/v1/plan", 3},
		{"jobs", http.MethodPost, "/v1/jobs", 4},
		{"compare", http.MethodPost, "/v1/compare", 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+tc.path, testRequest(tc.seed))
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("status %d, want 503", resp.StatusCode)
			}
			if got := resp.Header.Get("Retry-After"); got == "" {
				t.Error("queue-full 503 must carry Retry-After")
			}
			e := decodeAPIError(t, raw)
			if e.Code != "queue_full" {
				t.Errorf("code %q, want queue_full", e.Code)
			}
			if !strings.HasPrefix(e.Detail, "queue_depth=") {
				t.Errorf("detail = %q, want queue_depth=N", e.Detail)
			}
		})
	}
}
