// Package serve is the planning-service core behind cmd/topooptd: it
// turns the blocking topoopt library calls into a concurrent service with
// a bounded worker pool, a fingerprint-keyed LRU plan cache, in-flight
// request coalescing (N identical concurrent requests cost one
// optimization), async jobs, and metrics with latency quantiles.
//
// Request identity is a deterministic fingerprint of (ModelSpec, Options)
// — including the seed, so two requests that would walk different MCMC
// chains never alias. Cancellation flows through context: every queued
// optimization runs under a context that is cancelled as soon as all
// clients waiting on it have gone away, and topoopt.OptimizeContext polls
// it between MCMC iterations.
//
// The service is crash-safe and overload-safe (see DESIGN.md,
// "Durability and degradation"): with a Store configured, every
// completed result is appended to a write-ahead log and replayed into
// the LRU on boot (restart-warm, byte-identical cache hits), queued
// async jobs are journaled and re-enqueued after a crash, BeginDrain /
// Drain implement graceful SIGTERM shutdown (stop admission, finish
// in-flight work up to a deadline, cancel the rest), and an admission
// controller sheds requests whose estimated queue wait already exceeds
// their deadline.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topoopt"
	"topoopt/internal/telemetry"
)

// OptimizeFunc computes a plan. It is injectable so tests and benchmarks
// can count or stub the expensive call; the default is
// topoopt.OptimizeContext.
type OptimizeFunc func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error)

// Config parameterizes a Service. Zero values select defaults.
type Config struct {
	// Workers bounds concurrent optimizations (default GOMAXPROCS).
	Workers int
	// QueueLen bounds queued-but-not-running work; a full queue rejects
	// with ErrQueueFull rather than growing without bound (default 64).
	QueueLen int
	// CacheEntries bounds the plan LRU (default 256).
	CacheEntries int
	// MaxJobs bounds tracked async jobs; the oldest finished jobs are
	// evicted past the bound (default 1024).
	MaxJobs int
	// SearchThreads is the total goroutine budget the service grants to
	// parallel MCMC chains across all concurrent optimizations (default
	// GOMAXPROCS). The budget is metered on demand: a request asking for
	// Parallelism K acquires up to K workers from whatever is currently
	// unclaimed — a lone request on an idle daemon gets min(K,
	// SearchThreads) genuinely concurrent chains, while a full pool
	// degrades each request toward one goroutine (never below, so
	// searches always make progress). The cap is an execution hint only:
	// a request's plan is identical whether its chains run on one
	// goroutine or eight.
	SearchThreads int
	// Optimize overrides the planner (tests); default
	// topoopt.OptimizeContext with the per-request search-worker cap
	// applied.
	Optimize OptimizeFunc
	// Store, when non-nil, is the durable plan store: completed results
	// are appended to its write-ahead log, queued async jobs are
	// journaled, the LRU is warmed from it on New, and it is compacted
	// and closed on Close/Drain. Nil keeps the service fully in-memory.
	Store *Store
	// DefaultDeadline, when positive, bounds every synchronous request
	// that does not carry its own X-Deadline-Ms header. The deadline
	// feeds both the waiter's context and the admission controller's
	// load shedding. Zero means no implicit deadline.
	DefaultDeadline time.Duration
}

// Service errors surfaced to transport layers.
var (
	ErrQueueFull = errors.New("serve: work queue full")
	ErrClosed    = errors.New("serve: service closed")
	ErrDraining  = errors.New("serve: draining, not admitting new work")
)

// OverloadError is returned by the admission controller when a
// request's estimated queue wait — queue depth × observed mean
// optimization time over the worker count — already exceeds the
// request's deadline, so queueing it would only burn a worker on a
// result nobody will wait for. The transport layer maps it to 429 with
// a Retry-After derived from EstimatedWait.
type OverloadError struct {
	QueueDepth    int
	EstimatedWait time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded: estimated queue wait %s exceeds the request deadline (queue depth %d)",
		e.EstimatedWait.Round(time.Millisecond), e.QueueDepth)
}

// PlanRequest is the wire request shared by POST /v1/plan and
// POST /v1/jobs.
type PlanRequest struct {
	Model   topoopt.ModelSpec `json:"model"`
	Options topoopt.Options   `json:"options"`
}

// Fingerprint returns the deterministic cache/coalescing key of the
// request: SHA-256 over the canonical JSON of (ModelSpec, Options), both
// normalized first so spelling variants of the same computation ("BERT"
// vs "bert", an implicit vs explicit default section, omitted vs default
// Rounds/MCMCIters/GPU) share one cache entry. The seed is part of
// Options, so identical workloads with different seeds are distinct
// entries.
func (r PlanRequest) Fingerprint() string {
	r.Model = r.Model.Canonical()
	r.Options = r.Options.Canonical()
	b, err := json.Marshal(r)
	if err != nil {
		// Both structs are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("serve: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// flight is one in-progress computation — an optimization or a fleet
// simulation — that any number of identical requests wait on. waiters
// counts them; when the last one abandons the request, the flight's
// context is cancelled and the computation aborts at its next
// cancellation check (between MCMC iterations, between fleet events).
// The result is held as `any`: the submitting path knows its concrete
// type and casts on the way out, so one coalescing/caching machinery
// serves every request shape.
type flight struct {
	fp      string
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	res     any
	err     error
	waiters int
	// started flips when a worker dequeues the task; onStart callbacks
	// (job status transitions) fire at that moment. Both under Service.mu.
	started bool
	onStart []func()
	// prog is the flight's search-progress sink: the optimizer publishes
	// (proposals done, budget) into it at every MCMC epoch barrier, and
	// each waiter copies it into its trace on wake.
	prog *telemetry.Progress
	// Lifecycle timestamps for stage attribution, all under Service.mu:
	// enqueued at creation, startedAt when a worker dequeues the task,
	// finishedAt when the result is published. A waiter clips these
	// intervals against its own wait window, so queue and search stages
	// are correct for creators and late joiners alike.
	enqueued   time.Time
	startedAt  time.Time
	finishedAt time.Time
}

// flightRun computes a flight's result under the flight's context.
type flightRun func(ctx context.Context) (any, error)

// Service is the planning service. Create with New, serve HTTP with
// Handler, stop with Close.
type Service struct {
	cfg      Config
	optimize OptimizeFunc
	// chains meters SearchThreads across in-flight searches. Every
	// optimization AND every comparison acquires through it, so no
	// request type can bypass the thread budget.
	chains *chainBudget

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan func()
	wg         sync.WaitGroup
	jobWG      sync.WaitGroup // async-job waiter goroutines
	store      *Store
	tel        *telemetry.Registry

	mu       sync.Mutex
	closed   bool
	draining bool // admission stopped; in-flight work finishing
	warmed   int  // cache entries replayed from the store on boot
	cache    *planCache
	// sim is the plan-similarity index over the cached plans: near-miss
	// requests warm-start their search from the nearest indexed neighbor.
	// Entries track the LRU (added on completion and WAL replay, removed
	// by the cache's eviction hook), all under mu.
	sim *simIndex
	// partials holds the anytime snapshot of every running plan flight,
	// keyed by fingerprint; GET /v1/jobs/{id} serves them as `partial`.
	partials map[string]*partialState
	flights  map[string]*flight
	compares map[string]*compareFlight
	jobs     map[string]*job
	jobID    uint64
	jobSeq   []string // creation order, for bounded eviction

	met *metrics

	// cluster is the sharding runtime, nil on an unsharded daemon. Set
	// once by EnableCluster before traffic; atomic so the per-request
	// forward check is lock-free.
	cluster atomic.Pointer[cluster]
}

// New starts a Service with cfg's worker pool running.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.SearchThreads <= 0 {
		cfg.SearchThreads = runtime.GOMAXPROCS(0)
	}
	chains := &chainBudget{avail: cfg.SearchThreads}
	met := newMetrics()
	if cfg.Optimize == nil {
		cfg.Optimize = func(ctx context.Context, m *topoopt.Model, o topoopt.Options) (*topoopt.Plan, error) {
			// SearchWorkers is server policy, never client input (it is
			// excluded from the wire format): acquire chain workers from
			// the shared budget for the duration of the optimization, so
			// concurrent parallel searches cannot oversubscribe the host
			// while a lone request gets the whole budget.
			granted := chains.acquire(o.Parallelism)
			defer chains.release(granted)
			o.SearchWorkers = granted
			// Progress is server-side instrumentation, like SearchWorkers:
			// each epoch barrier feeds the flight's progress sink (read by
			// waiters when they wake) and the daemon-wide proposal counter.
			// CoOptimize restarts done at every alternating-optimization
			// round; last tracks the reset so the counter only ever adds
			// the delta actually consumed.
			sink := telemetry.ProgressFromContext(ctx)
			last := 0
			o.Progress = func(done, total int) {
				if done < last {
					last = 0
				}
				met.addProposals(int64(done - last))
				last = done
				sink.Set(int64(done), int64(total))
			}
			return topoopt.OptimizeContext(ctx, m, o)
		}
	}
	sim := newSimIndex()
	cache := newPlanCache(cfg.CacheEntries)
	// An evicted plan must leave the similarity index with it — a warm
	// start needs the neighbor's strategy, which only the cache holds.
	// Eviction runs under Service.mu (cache.add is only called there), the
	// same lock guarding sim.
	cache.onEvict = sim.remove
	s := &Service{
		cfg:      cfg,
		optimize: cfg.Optimize,
		chains:   chains,
		store:    cfg.Store,
		tel:      telemetry.NewRegistry(0),
		queue:    make(chan func(), cfg.QueueLen),
		cache:    cache,
		sim:      sim,
		partials: make(map[string]*partialState),
		flights:  make(map[string]*flight),
		compares: make(map[string]*compareFlight),
		jobs:     make(map[string]*job),
		met:      met,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if s.store != nil {
		s.warmFromStore()
	}
	return s
}

// chainBudget meters the SearchThreads goroutine budget across in-flight
// searches on demand. acquire never blocks and never returns less than
// one (searches must always make progress), so when the budget is
// exhausted, extra requests run their chains sequentially; the soft
// floor lets avail go transiently negative and release restores it.
// Plans are unaffected by whatever is granted (the worker count is an
// execution hint — chain count and seeds fully determine the result).
type chainBudget struct {
	mu    sync.Mutex
	avail int
}

// acquire claims up to want workers (want ≤ 0 is treated as 1, the
// sequential search). Pair every acquire with a release of the grant.
func (b *chainBudget) acquire(want int) int {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	g := 1
	if b.avail > 0 {
		g = want
		if g > b.avail {
			g = b.avail
		}
	}
	b.avail -= g
	return g
}

func (b *chainBudget) release(n int) {
	b.mu.Lock()
	b.avail += n
	b.mu.Unlock()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case fn := <-s.queue:
			fn()
		case <-s.baseCtx.Done():
			return
		}
	}
}

// Close stops the workers and fails all pending work with ErrClosed,
// then compacts and closes the durable store (if any). Idempotent. For
// a graceful shutdown that lets in-flight work finish, use Drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if c := s.cluster.Swap(nil); c != nil {
		c.close() // stop the probe loop before tearing down workers
	}
	s.baseCancel()
	s.wg.Wait()
	s.jobWG.Wait()
	if s.store != nil {
		// A compacted snapshot makes the next boot replay the live set
		// instead of the full append history. Skipped on crash (kill -9),
		// where the WAL replay path takes over.
		if err := s.store.wal.Compact(); err != nil {
			s.met.storeError()
		}
		s.store.wal.Close()
	}
}

// BeginDrain stops admission: every subsequent Plan, Compare, SubmitJob
// and SubmitFleet call — cache hits included — fails with ErrDraining
// (a structured 503 with Retry-After at the HTTP layer), while work
// already admitted keeps running. Idempotent; the first step of a
// graceful shutdown, callable before the HTTP server stops listening so
// requests that raced past the listener still get the structured
// rejection.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain gracefully shuts the service down: admission stops immediately,
// in-flight optimizations and async jobs run to completion (their
// results are persisted to the store as they finish, as always), and
// when ctx expires whatever is still running is cancelled through the
// flight contexts — the MCMC engine observes cancellation between
// iterations, so stragglers abort quickly. Queued-but-unstarted async
// jobs stay journaled in the store and are re-enqueued on the next
// boot. Finally the workers are stopped and the store is compacted and
// closed. Returns nil if everything finished inside ctx, or ctx's error
// if the drain deadline forced cancellation.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	var derr error
	if !s.awaitIdle(ctx) {
		derr = ctx.Err()
		s.baseCancel() // deadline: cancel the stragglers
	}
	s.Close()
	return derr
}

// awaitIdle polls until no flight (sync request, comparison or async
// job) remains in flight, or ctx expires.
func (s *Service) awaitIdle(ctx context.Context) bool {
	for {
		s.mu.Lock()
		idle := len(s.flights) == 0 && len(s.compares) == 0
		s.mu.Unlock()
		if idle {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Plan returns the plan for req, consulting the cache first and coalescing
// concurrent identical requests onto a single optimization. The returned
// bool reports whether the plan came from the cache. ctx cancels only this
// caller's wait; the underlying optimization keeps running while any other
// request still waits on it.
func (s *Service) Plan(ctx context.Context, req PlanRequest) (*topoopt.Plan, string, bool, error) {
	return s.plan(ctx, req, req.Fingerprint(), func() (*topoopt.Model, error) {
		m, err := req.Model.Resolve()
		if err == nil {
			err = req.Options.Validate()
		}
		return m, err
	}, nil, nil)
}

// resolved wraps an already-resolved model for the plan call (the HTTP
// decode layer and jobs resolve exactly once up front).
func resolved(m *topoopt.Model) func() (*topoopt.Model, error) {
	return func() (*topoopt.Model, error) { return m, nil }
}

// plan is the core of Plan. resolve is only invoked on the
// flight-creating path, outside the service lock: cache hits and
// coalesced joins are served by fingerprint alone, so they never pay for
// model materialization or re-validation (a cached fingerprint implies
// the request was valid). onStart, when non-nil, fires once the
// optimization actually begins executing (async jobs use it to move from
// "queued" to "running"). tr, when non-nil, receives the request's stage
// breakdown — cache lookup, admission, queue wait and search time, the
// latter two clipped to this waiter's own wait window so coalesced
// joiners never claim time they did not spend waiting.
func (s *Service) plan(ctx context.Context, req PlanRequest, fp string, resolve func() (*topoopt.Model, error), onStart func(), tr *telemetry.Trace) (*topoopt.Plan, string, bool, error) {
	res, hit, err := s.execute(ctx, fp, func() (flightRun, error) {
		m, rerr := resolve()
		if rerr != nil {
			return nil, rerr
		}
		return s.planRun(m, req, fp), nil
	}, onStart, tr)
	if err != nil {
		return nil, fp, hit, err
	}
	return res.(*topoopt.Plan), fp, hit, nil
}

// execute is the shared cache → coalesce → admit → queue → wait sequence
// every flight-backed request shape (plan, fleet, sweep) rides. makeRun
// is only invoked on the flight-creating path, outside the service lock:
// cache hits and coalesced joins are served by fingerprint alone, so
// they never pay for request materialization (a cached fingerprint
// implies the request was valid). The returned bool reports a cache hit.
func (s *Service) execute(ctx context.Context, fp string, makeRun func() (flightRun, error), onStart func(), tr *telemetry.Trace) (any, bool, error) {
	tr.Start(telemetry.StageCache)
	cached, f, err := s.joinOrCreate(fp, nil, onStart)
	tr.End()
	if err != nil {
		return nil, false, err
	}
	if cached != nil {
		return cached, true, nil
	}
	if f == nil {
		// Miss: this request is about to occupy a queue slot, so this is
		// where the admission controller sheds work that cannot meet its
		// deadline anyway (cache hits and coalesced joins above never
		// shed — they ride work that is already paid for).
		tr.Start(telemetry.StageAdmission)
		serr := s.shedCheck(ctx)
		tr.End()
		if serr != nil {
			return nil, false, serr
		}
		// Materialize the run without holding the lock, then race to
		// create the flight (a concurrent identical request may win, in
		// which case we join its flight instead).
		tr.Start(telemetry.StageDecode)
		run, rerr := makeRun()
		tr.End()
		if rerr != nil {
			return nil, false, rerr
		}
		tr.Start(telemetry.StageCache)
		cached, f, err = s.joinOrCreate(fp, run, onStart)
		tr.End()
		if err != nil {
			return nil, false, err
		}
		if cached != nil {
			return cached, true, nil
		}
	}
	joined := time.Now()
	res, err := s.waitFlight(ctx, f)
	s.traceWait(tr, f, joined)
	return res, false, err
}

// traceWait attributes a waiter's time on f to the queue and search
// stages: the flight's [enqueued, started] and [started, finished]
// intervals clipped to [joined, now]. For the creator the clip is the
// whole flight; a joiner that arrived mid-search only claims its own
// wait. Also copies the flight's search-progress counter into the trace.
func (s *Service) traceWait(tr *telemetry.Trace, f *flight, joined time.Time) {
	if tr == nil {
		return
	}
	woke := time.Now()
	s.mu.Lock()
	enq, started, finished := f.enqueued, f.startedAt, f.finishedAt
	s.mu.Unlock()
	tr.Add(telemetry.StageQueue, overlap(enq, started, joined, woke))
	if !started.IsZero() {
		tr.Add(telemetry.StageSearch, overlap(started, finished, joined, woke))
	}
	tr.SetSearchProgress(f.prog.Load())
	tr.SetWarm(f.prog.Warm())
}

// overlap returns the length of [a0, a1] ∩ [b0, b1]. A zero a0 means the
// interval never opened (length 0); a zero a1 means it is still open and
// clamps to b1.
func overlap(a0, a1, b0, b1 time.Time) time.Duration {
	if a0.IsZero() {
		return 0
	}
	if a1.IsZero() || a1.After(b1) {
		a1 = b1
	}
	if a0.Before(b0) {
		a0 = b0
	}
	if d := a1.Sub(a0); d > 0 {
		return d
	}
	return 0
}

// planRun adapts the optimizer to the generic flight runner, layering the
// incremental-replanning machinery around the call:
//
//   - Warm start: a near-miss request (exact-fingerprint cache miss, but a
//     same-model-same-servers neighbor is indexed) seeds its search with
//     the neighbor's converged strategy and the patience early exit. The
//     optimizer adopts the seed only when it strictly beats the canonical
//     starts under this request's own evaluation, so the result is never
//     worse than cold — just reached with a fraction of the evaluations.
//   - Anytime streaming: the search's best-so-far is published into the
//     service's partial slot at every improvement, so async jobs expose a
//     monotonically improving `partial` result while running.
//   - Indexing: the completed plan joins the similarity index, becoming a
//     warm-start donor for future near-misses.
func (s *Service) planRun(m *topoopt.Model, req PlanRequest, fp string) flightRun {
	creq := PlanRequest{Model: req.Model.Canonical(), Options: req.Options.Canonical()}
	return func(ctx context.Context) (any, error) {
		o := req.Options
		if warm, ok := s.simNeighbor(creq, fp); ok {
			o.WarmStart = []topoopt.Strategy{warm}
			o.Patience = warmPatience
			o.OnWarmStart = func(adopted bool) {
				if adopted {
					s.met.warmImproved()
				}
			}
			s.met.warmStart()
			// Mark the flight's progress sink so every waiter's trace (and
			// /debug/requests) records that this search ran warm.
			telemetry.ProgressFromContext(ctx).MarkWarm()
		}
		ps := s.beginPartial(fp)
		defer s.endPartial(fp, ps)
		o.OnBest = ps.publish
		p, err := s.optimize(ctx, m, o)
		if err != nil {
			return nil, err
		}
		s.simAdd(fp, creq)
		return p, nil
	}
}

// simNeighbor returns the converged strategy of creq's nearest indexed
// neighbor (excluding the request's own fingerprint), if the neighbor's
// plan is still cached. Index and cache are consulted atomically under
// the service lock; an index entry whose plan has just been evicted (or
// was indexed from the WAL before the cache replay reached it) is simply
// skipped — warm starts are an optimization, never a dependency.
func (s *Service) simNeighbor(creq PlanRequest, selfFp string) (topoopt.Strategy, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nfp, ok := s.sim.nearest(creq, selfFp)
	if !ok {
		return topoopt.Strategy{}, false
	}
	v, ok := s.cache.get(nfp)
	if !ok {
		return topoopt.Strategy{}, false
	}
	p, ok := v.(*topoopt.Plan)
	if !ok || p == nil {
		return topoopt.Strategy{}, false
	}
	return p.Strategy, true
}

// simAdd indexes a completed plan's canonical request under its
// fingerprint.
func (s *Service) simAdd(fp string, creq PlanRequest) {
	s.mu.Lock()
	s.sim.add(fp, creq)
	s.mu.Unlock()
}

// simRequest returns the canonical request indexed under fp, if any —
// the persist path uses it to write the request into the WAL alongside
// the plan.
func (s *Service) simRequest(fp string) (PlanRequest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim.request(fp)
}

// beginPartial registers the anytime slot a starting plan flight streams
// its best-so-far into; endPartial retires it when the flight completes
// (the final result supersedes any partial).
func (s *Service) beginPartial(fp string) *partialState {
	ps := &partialState{}
	s.mu.Lock()
	s.partials[fp] = ps
	s.mu.Unlock()
	return ps
}

func (s *Service) endPartial(fp string, ps *partialState) {
	s.mu.Lock()
	if s.partials[fp] == ps {
		delete(s.partials, fp)
	}
	s.mu.Unlock()
}

// waitFlight blocks until the flight completes, the caller's ctx is
// cancelled (dropping this waiter), or the service closes. A completed
// result always wins a race against cancellation or shutdown: during a
// drain the flight may finish in the same instant the service closes,
// and the waiter must report the work that was actually done.
func (s *Service) waitFlight(ctx context.Context, f *flight) (any, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		select {
		case <-f.done:
			return f.res, f.err
		default:
		}
		s.abandon(f)
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		select {
		case <-f.done:
			return f.res, f.err
		default:
		}
		return nil, ErrClosed
	}
}

// joinOrCreate is the locked cache-lookup → flight-join → flight-create
// sequence. With run == nil it only looks up and joins, returning
// (nil, nil, nil) on a miss so the caller can resolve the request's
// inputs lock-free and call again with run set.
func (s *Service) joinOrCreate(fp string, run flightRun, onStart func()) (any, *flight, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		return nil, nil, ErrDraining
	}
	if v, ok := s.cache.get(fp); ok {
		s.mu.Unlock()
		s.met.cacheHit()
		return v, nil, nil
	}
	if f, ok := s.flights[fp]; ok {
		f.waiters++
		fireNow := false
		if onStart != nil {
			if f.started {
				fireNow = true
			} else {
				f.onStart = append(f.onStart, onStart)
			}
		}
		s.mu.Unlock()
		if fireNow {
			onStart()
		}
		s.met.coalesce()
		return nil, f, nil
	}
	if run == nil {
		s.mu.Unlock()
		return nil, nil, nil
	}
	prog := new(telemetry.Progress)
	fctx, cancel := context.WithCancel(telemetry.ContextWithProgress(s.baseCtx, prog))
	f := &flight{fp: fp, ctx: fctx, cancel: cancel, done: make(chan struct{}),
		waiters: 1, prog: prog, enqueued: time.Now()}
	if onStart != nil {
		f.onStart = append(f.onStart, onStart)
	}
	task := func() { s.runFlight(f, run) }
	select {
	case s.queue <- task:
		s.flights[fp] = f
	default:
		cancel()
		s.mu.Unlock()
		s.met.queueFullDrop()
		return nil, nil, ErrQueueFull
	}
	s.mu.Unlock()
	s.met.cacheMiss()
	return nil, f, nil
}

// runFlight executes one flight on a worker: mark started, fire the
// start callbacks, then compute — unless every waiter already left
// while the task sat in the queue, in which case the dead task finishes
// immediately instead of running a doomed computation.
func (s *Service) runFlight(f *flight, run flightRun) {
	s.mu.Lock()
	f.started = true
	f.startedAt = time.Now()
	cbs := f.onStart
	f.onStart = nil
	s.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
	if err := f.ctx.Err(); err != nil {
		s.finish(f, nil, err)
		return
	}
	t0 := time.Now()
	res, err := run(f.ctx)
	if err == nil {
		// Completed executions feed the admission controller's service-
		// time estimate (cancelled or failed runs would bias it short).
		s.met.observeService(time.Since(t0).Seconds())
	}
	s.finish(f, res, err)
}

// finish publishes a flight's result, caching successes.
func (s *Service) finish(f *flight, res any, err error) {
	s.mu.Lock()
	if s.flights[f.fp] == f {
		delete(s.flights, f.fp)
	}
	if err == nil {
		s.cache.add(f.fp, res)
	}
	f.res, f.err = res, err
	f.finishedAt = time.Now()
	close(f.done)
	s.mu.Unlock()
	if err == nil {
		s.met.optimizedDone()
		// Persist outside the service lock: a slow disk must not stall
		// cache lookups. One flight per fingerprint, so appends for a
		// given fp never race. It also runs after close(done) — the
		// response is already released — so the persist stage feeds the
		// stage quantiles but never a request's own breakdown.
		s.observedPersist(f.fp, res)
	}
	f.cancel()
}

// observedPersist is persist with its wall time folded into the persist
// stage's quantile window (only when a store is configured; a no-op
// persist would flood the window with zeros).
func (s *Service) observedPersist(fp string, res any) {
	if s.store == nil {
		return
	}
	t0 := time.Now()
	s.persist(fp, res)
	s.tel.ObserveStage(telemetry.StagePersist, time.Since(t0))
}

// shedCheck is the admission controller: requests carrying a deadline
// (X-Deadline-Ms header or the -default-deadline flag, materialized as
// a context deadline) are rejected up front when the estimated queue
// wait already exceeds the time they have left — a 429 now is cheaper
// for everyone than a timeout after occupying a queue slot. Requests
// without a deadline are never shed; the bounded queue's 503 is their
// backstop.
func (s *Service) shedCheck(ctx context.Context) error {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	est := s.estimatedWait()
	if est == 0 || est <= time.Until(dl) {
		return nil
	}
	s.met.shedDrop()
	return &OverloadError{QueueDepth: len(s.queue), EstimatedWait: est}
}

// estimatedWait predicts how long a newly queued request would wait
// before a worker picks it up: queue depth × observed mean optimization
// time, spread over the worker pool. Zero until the service has
// completed at least one optimization (a cold daemon never sheds).
func (s *Service) estimatedWait() time.Duration {
	mean := s.met.meanService()
	if mean <= 0 {
		return 0
	}
	return time.Duration(float64(len(s.queue)) * mean / float64(s.cfg.Workers) * float64(time.Second))
}

// abandon drops one waiter; the last one out cancels the optimization and
// unregisters the flight so a later identical request starts fresh.
func (s *Service) abandon(f *flight) {
	s.mu.Lock()
	f.waiters--
	if f.waiters <= 0 {
		select {
		case <-f.done:
			// Already finished; nothing to cancel.
		default:
			if s.flights[f.fp] == f {
				delete(s.flights, f.fp)
			}
			f.cancel()
		}
	}
	s.mu.Unlock()
}

// compareKey is the canonical payload hashed into a comparison
// fingerprint: the same normalizations as plan fingerprints plus the
// architecture names, in request order (order is part of the result).
type compareKey struct {
	Kind    string                 `json:"kind"`
	Model   topoopt.ModelSpec      `json:"model"`
	Options topoopt.Options        `json:"options"`
	Archs   []topoopt.Architecture `json:"archs"`
}

// CompareFingerprint returns the deterministic cache key of a comparison.
// An empty arch list canonicalizes to the full registry sweep, so the
// implicit and explicit spellings of "compare everything" share one
// entry. Architecture names are part of the key: two requests differing
// only in fabric selection never alias.
func CompareFingerprint(spec topoopt.ModelSpec, o topoopt.Options, archs []topoopt.Architecture) string {
	if len(archs) == 0 {
		archs = topoopt.Architectures()
	}
	b, err := json.Marshal(compareKey{
		Kind:    "compare",
		Model:   spec.Canonical(),
		Options: o.Canonical(),
		Archs:   archs,
	})
	if err != nil {
		// Plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: compare fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// compareFlight is one in-progress comparison that any number of
// identical requests wait on — the compare-shaped sibling of flight
// (which is hardwired to plans and their job onStart hooks). Comparisons
// are the most expensive request type (up to a full registry of MCMC
// sweeps), so they get the same waiter-refcounted coalescing: N
// identical concurrent requests cost one sweep, and the sweep is
// cancelled when its last waiter leaves. The two flights deliberately
// share their locking protocol — unregister-then-close(done) under
// Service.mu, cancel-on-last-abandon — so a fix to either must be
// mirrored in the other.
type compareFlight struct {
	fp      string
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	res     []topoopt.CompareResult
	err     error
	waiters int
	// Lifecycle timestamps for stage attribution, mirroring flight's;
	// all under Service.mu.
	enqueued   time.Time
	startedAt  time.Time
	finishedAt time.Time
}

// Compare runs topoopt.CompareContext on the worker pool (bounded like
// plans) with fingerprint-keyed caching and in-flight coalescing:
// comparisons are deterministic in (ModelSpec, Options, archs) — the
// fingerprint includes each arch name — so a repeated sweep is served
// from the shared LRU, and concurrent identical sweeps share one
// execution. The per-request search-worker cap applies here too:
// comparisons run the same parallel MCMC chains as plans and must not
// bypass the SearchThreads budget. Returns the results, the request
// fingerprint, and whether the results came from the cache.
func (s *Service) Compare(ctx context.Context, spec topoopt.ModelSpec, m *topoopt.Model, o topoopt.Options, archs []topoopt.Architecture) ([]topoopt.CompareResult, string, bool, error) {
	return s.compare(ctx, spec, m, o, archs, nil)
}

// compare is the core of Compare; tr, when non-nil, receives the stage
// breakdown exactly as in plan (queue/search clipped to this waiter's
// wait window).
func (s *Service) compare(ctx context.Context, spec topoopt.ModelSpec, m *topoopt.Model, o topoopt.Options, archs []topoopt.Architecture, tr *telemetry.Trace) ([]topoopt.CompareResult, string, bool, error) {
	fp := CompareFingerprint(spec, o, archs)
	tr.Start(telemetry.StageCache)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		tr.End()
		return nil, fp, false, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		tr.End()
		return nil, fp, false, ErrDraining
	}
	if v, ok := s.cache.get(fp); ok {
		s.mu.Unlock()
		tr.End()
		s.met.cacheHit()
		return v.([]topoopt.CompareResult), fp, true, nil
	}
	if f, ok := s.compares[fp]; ok {
		f.waiters++
		s.mu.Unlock()
		tr.End()
		s.met.coalesce()
		joined := time.Now()
		res, err := s.waitCompare(ctx, f)
		s.traceCompareWait(tr, f, joined)
		return res, fp, false, err
	}
	// About to occupy a queue slot: same admission shedding as plans
	// (comparisons are the most expensive request type, so doomed ones
	// waste the most).
	tr.Start(telemetry.StageAdmission)
	if serr := s.shedCheck(ctx); serr != nil {
		s.mu.Unlock()
		tr.End()
		return nil, fp, false, serr
	}
	tr.Start(telemetry.StageCache)
	fctx, cancel := context.WithCancel(s.baseCtx)
	f := &compareFlight{fp: fp, ctx: fctx, cancel: cancel,
		done: make(chan struct{}), waiters: 1, enqueued: time.Now()}
	task := func() { s.runCompare(f, m, o, archs) }
	select {
	case s.queue <- task:
		s.compares[fp] = f
	default:
		cancel()
		s.mu.Unlock()
		tr.End()
		s.met.queueFullDrop()
		return nil, fp, false, ErrQueueFull
	}
	s.mu.Unlock()
	tr.End()
	s.met.cacheMiss()
	joined := time.Now()
	res, err := s.waitCompare(ctx, f)
	s.traceCompareWait(tr, f, joined)
	return res, fp, false, err
}

// traceCompareWait is traceWait for comparison flights (which have no
// per-epoch progress sink; their searches span whole architecture
// registries).
func (s *Service) traceCompareWait(tr *telemetry.Trace, f *compareFlight, joined time.Time) {
	if tr == nil {
		return
	}
	woke := time.Now()
	s.mu.Lock()
	enq, started, finished := f.enqueued, f.startedAt, f.finishedAt
	s.mu.Unlock()
	tr.Add(telemetry.StageQueue, overlap(enq, started, joined, woke))
	if !started.IsZero() {
		tr.Add(telemetry.StageSearch, overlap(started, finished, joined, woke))
	}
}

// runCompare executes one comparison flight on a worker.
func (s *Service) runCompare(f *compareFlight, m *topoopt.Model, o topoopt.Options, archs []topoopt.Architecture) {
	s.mu.Lock()
	f.startedAt = time.Now()
	s.mu.Unlock()
	if err := f.ctx.Err(); err != nil {
		s.finishCompare(f, nil, err)
		return
	}
	granted := s.chains.acquire(o.Parallelism)
	defer s.chains.release(granted)
	o.SearchWorkers = granted
	t0 := time.Now()
	res, err := topoopt.CompareContext(f.ctx, m, o, archs...)
	if err == nil {
		s.met.observeService(time.Since(t0).Seconds())
	}
	s.finishCompare(f, res, err)
}

// finishCompare publishes a comparison's result, caching successes.
func (s *Service) finishCompare(f *compareFlight, res []topoopt.CompareResult, err error) {
	s.mu.Lock()
	if s.compares[f.fp] == f {
		delete(s.compares, f.fp)
	}
	if err == nil {
		s.cache.add(f.fp, res)
	}
	f.res, f.err = res, err
	f.finishedAt = time.Now()
	close(f.done)
	s.mu.Unlock()
	if err == nil {
		s.observedPersist(f.fp, res)
	}
	f.cancel()
}

// waitCompare blocks until the comparison completes, the caller's ctx is
// cancelled (dropping this waiter), or the service closes. As in
// waitFlight, a completed result wins any race against cancellation.
func (s *Service) waitCompare(ctx context.Context, f *compareFlight) ([]topoopt.CompareResult, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		select {
		case <-f.done:
			return f.res, f.err
		default:
		}
		s.abandonCompare(f)
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		select {
		case <-f.done:
			return f.res, f.err
		default:
		}
		return nil, ErrClosed
	}
}

// abandonCompare drops one waiter; the last one out cancels the sweep
// and unregisters it so a later identical request starts fresh.
func (s *Service) abandonCompare(f *compareFlight) {
	s.mu.Lock()
	f.waiters--
	if f.waiters <= 0 {
		select {
		case <-f.done:
			// Already finished; nothing to cancel.
		default:
			if s.compares[f.fp] == f {
				delete(s.compares, f.fp)
			}
			f.cancel()
		}
	}
	s.mu.Unlock()
}

// Job states.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Job is the externally visible state of an async job. Every job kind
// (plan, fleet, sweep) shares this one envelope: Kind names the result
// shape and Result carries it once the job is done — *topoopt.Plan for
// "plan" jobs, *topoopt.FleetResult for "fleet", *topoopt.FleetSweepResult
// for "sweep" — so callers dispatch on the tag instead of probing
// per-kind optional fields.
type Job struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Status      string `json:"status"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Result      any    `json:"result,omitempty"`
	// Partial is the anytime snapshot of a running plan job: the best
	// strategy the search has found so far, improving monotonically across
	// polls. Only set while Status is "running" and Kind is "plan"; the
	// final Result supersedes it.
	Partial    *PartialPlan `json:"partial,omitempty"`
	Error      string       `json:"error,omitempty"`
	CreatedAt  time.Time    `json:"created_at"`
	FinishedAt *time.Time   `json:"finished_at,omitempty"`
}

type job struct {
	snap   Job
	cancel context.CancelFunc
}

// SubmitJob validates req, registers an async job and starts it. The job
// flows through the same cache/coalescing path as synchronous plans.
func (s *Service) SubmitJob(req PlanRequest) (Job, error) {
	m, err := req.Model.Resolve()
	if err == nil {
		err = req.Options.Validate()
	}
	if err != nil {
		return Job{}, err
	}
	return s.submitJob(m, req)
}

// submitJob is SubmitJob after validation; m is the already-resolved
// model (the HTTP layer resolves it during request decoding). The
// canonical request is journaled so a crash re-enqueues the job on the
// next boot.
func (s *Service) submitJob(m *topoopt.Model, req PlanRequest) (Job, error) {
	journal, _ := json.Marshal(PlanRequest{
		Model:   req.Model.Canonical(),
		Options: req.Options.Canonical(),
	})
	fp := req.Fingerprint()
	return s.submitAsync(fp, s.planRun(m, req, fp), kindPlan, journal)
}

// FleetRequest is the wire request of POST /v1/fleet.
type FleetRequest struct {
	Spec topoopt.FleetSpec `json:"spec"`
}

// FleetFingerprint returns the deterministic cache key of a fleet
// simulation: SHA-256 over the canonical JSON of the spec under a "fleet"
// kind tag, so fleet entries can never alias plan or compare entries in
// the shared LRU. Fleet results are pure functions of the canonical spec
// (Seed, TraceSpec, Policy, Arch, ...), which is what makes caching whole
// cluster runs sound.
func FleetFingerprint(spec topoopt.FleetSpec) string {
	b, err := json.Marshal(struct {
		Kind string            `json:"kind"`
		Spec topoopt.FleetSpec `json:"spec"`
	}{Kind: "fleet", Spec: spec.Canonical()})
	if err != nil {
		// Plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: fleet fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SubmitFleet validates spec and registers an async fleet-simulation job.
// Fleet runs flow through the same flight machinery as plans — one
// fingerprint-keyed cache entry per canonical spec, concurrent identical
// submissions coalesce onto a single run, DELETE /v1/jobs/{id} cancels —
// and their embedded strategy searches draw workers from the service's
// SearchThreads budget, so a fleet run cannot starve interactive plans.
func (s *Service) SubmitFleet(spec topoopt.FleetSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	sp := spec.Canonical()
	run := func(ctx context.Context) (any, error) {
		granted := s.chains.acquire(sp.Parallelism)
		defer s.chains.release(granted)
		sp := sp
		sp.SearchWorkers = granted
		res, err := topoopt.RunFleet(ctx, sp)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	journal, _ := json.Marshal(sp)
	return s.submitAsync(FleetFingerprint(spec), run, kindFleet, journal)
}

// SweepRequest is the wire request of POST /v1/sweep: a fleet spec plus
// the Monte Carlo replica count. Async selects 202 + job semantics
// instead of a synchronous response.
type SweepRequest struct {
	Spec     topoopt.FleetSpec `json:"spec"`
	Replicas int               `json:"replicas"`
	Async    bool              `json:"async,omitempty"`
}

// sweepJournal is the durable form of an admitted sweep job: everything
// needed to re-submit it after a crash.
type sweepJournal struct {
	Spec     topoopt.FleetSpec `json:"spec"`
	Replicas int               `json:"replicas"`
}

// SweepFingerprint returns the deterministic cache key of a Monte Carlo
// sweep: SHA-256 over the canonical JSON of (spec, replicas) under a
// "sweep" kind tag. The replica count is part of the key — a K=64 sweep
// and a K=8 sweep of the same spec are different distributions.
func SweepFingerprint(spec topoopt.FleetSpec, replicas int) string {
	b, err := json.Marshal(struct {
		Kind     string            `json:"kind"`
		Spec     topoopt.FleetSpec `json:"spec"`
		Replicas int               `json:"replicas"`
	}{Kind: "sweep", Spec: spec.Canonical(), Replicas: replicas})
	if err != nil {
		// Plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: sweep fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// sweepRun adapts a Monte Carlo sweep to the generic flight runner. The
// replica fan-out is metered by the shared chain budget: the sweep asks
// for one worker per replica and fans out only as wide as the grant, so
// a 64-replica sweep on a busy daemon degrades toward sequential
// replicas instead of oversubscribing the host. Replica completions feed
// the flight's progress sink, so sweep progress (done/total replicas)
// reaches X-Trace headers and /debug/requests exactly like MCMC proposal
// progress does for plans.
func (s *Service) sweepRun(spec topoopt.FleetSpec, replicas int) flightRun {
	return func(ctx context.Context) (any, error) {
		want := replicas
		if spec.Parallelism > 0 && spec.Parallelism < want {
			want = spec.Parallelism
		}
		granted := s.chains.acquire(want)
		defer s.chains.release(granted)
		sp := spec
		sp.SearchWorkers = granted
		sink := telemetry.ProgressFromContext(ctx)
		sink.Set(0, int64(replicas))
		res, err := topoopt.RunFleetSweep(ctx, sp, replicas, func(done, total int) {
			sink.Set(int64(done), int64(total))
		})
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// Sweep runs a K-replica Monte Carlo sweep synchronously, riding the
// same fingerprint cache, in-flight coalescing and admission control as
// plans: concurrent identical sweeps cost one fan-out, repeated sweeps
// are served from the LRU (and the WAL across restarts), and sweeps that
// cannot meet their deadline are shed up front. Returns the merged
// distributions, the fingerprint, and whether the result was cached.
func (s *Service) Sweep(ctx context.Context, spec topoopt.FleetSpec, replicas int, tr *telemetry.Trace) (*topoopt.FleetSweepResult, string, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, "", false, err
	}
	if replicas < 1 || replicas > topoopt.MaxFleetSweepReplicas {
		return nil, "", false, fmt.Errorf("serve: sweep replicas must be in [1, %d], got %d",
			topoopt.MaxFleetSweepReplicas, replicas)
	}
	sp := spec.Canonical()
	fp := SweepFingerprint(sp, replicas)
	res, hit, err := s.execute(ctx, fp, func() (flightRun, error) {
		return s.sweepRun(sp, replicas), nil
	}, nil, tr)
	if err != nil {
		return nil, fp, hit, err
	}
	return res.(*topoopt.FleetSweepResult), fp, hit, nil
}

// SubmitSweep registers an async Monte Carlo sweep job: same flight
// machinery as Sweep, with job semantics (status polling via GET
// /v1/jobs/{id}, cancellation via DELETE, crash-safe journaling).
func (s *Service) SubmitSweep(spec topoopt.FleetSpec, replicas int) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	if replicas < 1 || replicas > topoopt.MaxFleetSweepReplicas {
		return Job{}, fmt.Errorf("serve: sweep replicas must be in [1, %d], got %d",
			topoopt.MaxFleetSweepReplicas, replicas)
	}
	sp := spec.Canonical()
	journal, _ := json.Marshal(sweepJournal{Spec: sp, Replicas: replicas})
	return s.submitAsync(SweepFingerprint(sp, replicas), s.sweepRun(sp, replicas), kindSweep, journal)
}

// submitAsync registers an async job around a flight. The
// cache/flight/queue admission runs synchronously so backpressure
// surfaces as an error here (a 503 at the HTTP layer), never as an
// accepted job that asynchronously "fails" with a full queue. Admitted
// non-cached jobs are journaled (kind + canonical request payload) so a
// crash before completion re-enqueues them on the next boot; the
// journal entry is cleared when the job reaches a genuine terminal
// state (done, failed, user-cancelled) — never when shutdown cut it
// short, so drained-but-unfinished jobs survive into the next boot.
func (s *Service) submitAsync(fp string, run flightRun, kind string, journal []byte) (Job, error) {
	jctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return Job{}, ErrClosed
	}
	// Reserve the waiter slot under the same lock as the closed check:
	// Close sets closed before waiting on jobWG, so every Add
	// happens-before the Wait and no waiter goroutine can appear (or
	// touch the store) once shutdown has begun. Paths that end up not
	// spawning the waiter release the reservation themselves.
	s.jobWG.Add(1)
	s.jobID++
	id := fmt.Sprintf("j%08d", s.jobID)
	j := &job{
		snap:   Job{ID: id, Kind: kind, Status: JobQueued, Fingerprint: fp, CreatedAt: time.Now().UTC()},
		cancel: cancel,
	}
	s.jobs[id] = j
	s.jobSeq = append(s.jobSeq, id)
	s.evictJobsLocked()
	s.mu.Unlock()

	// The job stays "queued" until a worker actually dequeues its flight;
	// cache hits jump straight to "done".
	onStart := func() {
		s.setJob(id, func(j *Job) { j.Status = JobRunning })
	}
	finish := func(res any, err error) {
		now := time.Now().UTC()
		s.setJob(id, func(j *Job) {
			j.FinishedAt = &now
			switch {
			case err == nil:
				j.Status, j.Result = JobDone, res
			case errors.Is(err, context.Canceled):
				j.Status, j.Error = JobCancelled, err.Error()
			default:
				j.Status, j.Error = JobFailed, err.Error()
			}
		})
	}

	cached, f, err := s.joinOrCreate(fp, run, onStart)
	if err != nil {
		cancel()
		s.jobWG.Done()
		s.mu.Lock()
		delete(s.jobs, id) // never admitted; jobSeq is cleaned lazily
		s.mu.Unlock()
		return Job{}, err
	}
	if cached != nil {
		finish(cached, nil)
		// A journaled job resolving straight from the cache is terminal
		// too: the boot-time re-submission path lands here when a job's
		// put record survived a crash alongside its journal entry, and
		// without the clear that entry would outlive every compaction and
		// re-submit the job on every subsequent boot.
		s.clearStaleJournal(kind, fp)
		cancel()
		s.jobWG.Done()
	} else {
		s.journalJob(kind, fp, journal)
		go func() {
			defer s.jobWG.Done()
			defer cancel()
			res, werr := s.waitFlight(jctx, f)
			finish(res, werr)
			// A job killed by shutdown (drain deadline or Close) is not
			// terminal: its journal entry must survive so the next boot
			// re-enqueues it. Success, genuine failure and user cancels
			// clear it.
			if !s.shutdownErr(werr) {
				s.journalJobDone(kind, fp)
			}
		}()
	}
	snap, _ := s.GetJob(id)
	return snap, nil
}

// shutdownErr reports whether werr is a shutdown-induced job failure
// (drain-deadline cancellation or Close) rather than a terminal outcome
// of the job itself. The job ctx descends from baseCtx, so a shutdown
// cancel can surface either as ErrClosed or as context.Canceled racing
// through the waiter's own ctx branch — check the service state, not
// just the error value.
func (s *Service) shutdownErr(werr error) bool {
	return werr != nil && (errors.Is(werr, ErrClosed) || s.baseCtx.Err() != nil)
}

// GetJob returns a snapshot of the job, if tracked. A running plan job
// carries the search's current best as Partial (when the search has
// streamed at least one improvement), so pollers can act on a good-enough
// plan before the full budget is spent.
func (s *Service) GetJob(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	snap := j.snap
	if snap.Status == JobRunning && snap.Kind == kindPlan {
		if ps, ok := s.partials[snap.Fingerprint]; ok {
			if pp, ok := ps.snapshot(); ok {
				snap.Partial = &pp
			}
		}
	}
	return snap, true
}

// Job-listing bounds: callers page with limit; the hard cap keeps one
// response from serializing a thousand tracked jobs.
const (
	defaultJobListLimit = 100
	maxJobListLimit     = 1000
)

// ListJobs returns tracked jobs newest-first, optionally filtered by
// status (empty matches all), bounded by limit (≤ 0 selects the default
// of 100; the cap is 1000). Result payloads are stripped from listings —
// they can be megabytes for fleet runs — so callers list to discover and
// then GET the job they want. An unknown status is an error.
func (s *Service) ListJobs(status string, limit int) ([]Job, error) {
	switch status {
	case "", JobQueued, JobRunning, JobDone, JobFailed, JobCancelled:
	default:
		return nil, fmt.Errorf("serve: unknown job status %q", status)
	}
	if limit <= 0 {
		limit = defaultJobListLimit
	}
	if limit > maxJobListLimit {
		limit = maxJobListLimit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, min(limit, len(s.jobSeq)))
	for i := len(s.jobSeq) - 1; i >= 0 && len(out) < limit; i-- {
		j, ok := s.jobs[s.jobSeq[i]]
		if !ok || (status != "" && j.snap.Status != status) {
			continue
		}
		snap := j.snap
		snap.Result = nil
		out = append(out, snap)
	}
	return out, nil
}

// CancelJob cancels a queued or running job. Finished jobs are left
// untouched.
func (s *Service) CancelJob(id string) (Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, false
	}
	cancel := j.cancel
	snap := j.snap
	s.mu.Unlock()
	if snap.Status == JobQueued || snap.Status == JobRunning {
		cancel()
	}
	return snap, true
}

func (s *Service) setJob(id string, mut func(*Job)) {
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		// Never regress a finished job (a slow "running" update racing a
		// fast completion).
		if j.snap.FinishedAt == nil {
			mut(&j.snap)
		}
	}
	s.mu.Unlock()
}

// evictJobsLocked drops the oldest finished jobs past cfg.MaxJobs.
func (s *Service) evictJobsLocked() {
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.jobSeq {
			j, ok := s.jobs[id]
			if !ok {
				s.jobSeq = append(s.jobSeq[:i], s.jobSeq[i+1:]...)
				evicted = true
				break
			}
			if j.snap.FinishedAt != nil {
				delete(s.jobs, id)
				s.jobSeq = append(s.jobSeq[:i], s.jobSeq[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything still running; let it finish
		}
	}
}

// Telemetry returns the service's trace registry — the ring of recent
// request breakdowns behind /debug/requests and the per-stage quantile
// windows folded into /metrics. Never nil.
func (s *Service) Telemetry() *telemetry.Registry { return s.tel }

// Metrics returns a point-in-time snapshot of the service counters and
// gauges.
func (s *Service) Metrics() MetricsSnapshot {
	snap := s.met.snapshot()
	snap.Stages = s.tel.StageSummaries()
	s.mu.Lock()
	snap.CacheEntries = s.cache.len()
	snap.SimIndexEntries = s.sim.len()
	snap.InFlight = len(s.flights) + len(s.compares)
	snap.JobsTracked = len(s.jobs)
	snap.WarmedEntries = s.warmed
	snap.Draining = s.draining
	s.mu.Unlock()
	snap.QueueDepth = len(s.queue)
	snap.QueueCapacity = cap(s.queue)
	return snap
}
