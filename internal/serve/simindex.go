package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"topoopt"
)

// The plan-similarity index is the incremental-replanning half of the
// plan cache: where the LRU answers "have I computed exactly this
// request", the index answers "what is the nearest request I have
// computed". A near-miss request — same workload and shard count,
// perturbed batch / degree / bandwidth / seed — warm-starts its search
// from the neighbor's converged strategy (Options.WarmStart) with the
// patience early exit (Options.Patience), converging in a fraction of
// the cold budget while never returning a worse plan: the MCMC engine
// adopts a warm candidate only when it strictly beats the canonical
// start under the request's own evaluator.
//
// Index entries ride the cache's lifecycle: added when a plan completes
// (and on boot, when the WAL is replayed), removed when the LRU evicts
// the underlying plan. Both structures are guarded by the Service mutex.

// warmPatience is the patience (improvement-free epoch barriers before a
// search round stops) injected alongside a warm start. 3 is the value
// the flexnet equal-budget quality gate and BenchmarkWarmReplan pin:
// warm matches-or-beats cold on every pinned config at ≥2x fewer
// evaluations.
const warmPatience = 3

// simEntry is one indexed plan: its cache fingerprint plus the canonical
// request whose options the distance metric compares (and whose full form
// the WAL persists alongside the plan, so the index survives restarts).
type simEntry struct {
	fp  string
	req PlanRequest
}

// simIndex buckets cached plans by their hard-match features and ranks
// within a bucket by a weighted option distance. Neighbor selection is
// deterministic in the index *contents*: ties break toward the
// lexicographically smallest fingerprint, so insertion order can never
// leak into which neighbor a request warms from.
type simIndex struct {
	buckets map[string][]simEntry
	byFp    map[string]string // fp → bucket key, for O(1) removal
}

func newSimIndex() *simIndex {
	return &simIndex{buckets: make(map[string][]simEntry), byFp: make(map[string]string)}
}

// bucketKey is the hard-match part of the feature key: the canonical
// model (a warm strategy must have the same layer schedule) and the
// server count (the MCMC engine only adopts candidates with w.N == n).
// Everything else — degree, bandwidth, batch, seed, search budget — is
// soft and handled by distance.
func bucketKey(req PlanRequest) string {
	mb, err := json.Marshal(req.Model)
	if err != nil {
		// ModelSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: simindex model marshal: %v", err))
	}
	return fmt.Sprintf("%s|n=%d", mb, req.Options.Servers)
}

// add indexes fp under req's features. req must be canonical. Re-adding
// an indexed fingerprint is a no-op (the features are derived from the
// fingerprint's preimage, so they cannot have changed).
func (x *simIndex) add(fp string, req PlanRequest) {
	if _, ok := x.byFp[fp]; ok {
		return
	}
	key := bucketKey(req)
	x.buckets[key] = append(x.buckets[key], simEntry{fp: fp, req: req})
	x.byFp[fp] = key
}

// remove drops fp from the index, if present (cache eviction calls this
// for every evicted key; non-plan fingerprints are simply absent).
func (x *simIndex) remove(fp string) {
	key, ok := x.byFp[fp]
	if !ok {
		return
	}
	delete(x.byFp, fp)
	bucket := x.buckets[key]
	for i := range bucket {
		if bucket[i].fp == fp {
			x.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(x.buckets[key]) == 0 {
		delete(x.buckets, key)
	}
}

// request returns the canonical request indexed under fp. The second
// return is false when fp is not indexed.
func (x *simIndex) request(fp string) (PlanRequest, bool) {
	key, ok := x.byFp[fp]
	if !ok {
		return PlanRequest{}, false
	}
	for _, e := range x.buckets[key] {
		if e.fp == fp {
			return e.req, true
		}
	}
	return PlanRequest{}, false
}

func (x *simIndex) len() int { return len(x.byFp) }

// nearest returns the fingerprint of the closest indexed neighbor of
// req, excluding selfFp. Deterministic in the index contents: minimum
// distance, ties to the lexicographically smallest fingerprint.
func (x *simIndex) nearest(req PlanRequest, selfFp string) (string, bool) {
	bucket := x.buckets[bucketKey(req)]
	bestFp, bestD := "", math.Inf(1)
	for _, e := range bucket {
		if e.fp == selfFp {
			continue
		}
		d := simDistance(req.Options, e.req.Options)
		if d < bestD || (d == bestD && e.fp < bestFp) {
			bestFp, bestD = e.fp, d
		}
	}
	return bestFp, bestFp != ""
}

// simDistance scores how far apart two same-bucket requests are. The
// weights order neighbors by how much the perturbation moves the search
// landscape: degree and bandwidth reshape the fabric, batch rescales
// every transfer, while seed / chain count / budget only move the search
// trajectory over the same landscape.
func simDistance(a, b topoopt.Options) float64 {
	d := 4 * relDiff(float64(a.Degree), float64(b.Degree))
	d += 2 * relDiff(a.LinkBandwidth, b.LinkBandwidth)
	d += 2 * relDiff(float64(a.BatchPerGPU), float64(b.BatchPerGPU))
	d += relDiff(float64(a.MCMCIters), float64(b.MCMCIters))
	d += relDiff(float64(a.Rounds), float64(b.Rounds))
	if a.Seed != b.Seed {
		d += 0.5
	}
	if a.Parallelism != b.Parallelism {
		d += 0.5
	}
	if a.PrimeOnly != b.PrimeOnly {
		d++
	}
	if a.GPU != b.GPU {
		d++
	}
	return d
}

// relDiff is |x−y| normalized by the larger magnitude: 0 for equal, → 1
// as the values diverge, scale-free so bandwidths in bits/s and degrees
// in single digits weigh comparably.
func relDiff(x, y float64) float64 {
	if x == y {
		return 0
	}
	m := math.Max(math.Abs(x), math.Abs(y))
	if m == 0 {
		return 0
	}
	return math.Abs(x-y) / m
}

// PartialPlan is the anytime-search snapshot of a running plan job: the
// best strategy the search has found so far and its cost estimate,
// served in GET /v1/jobs/{id} as the job's "partial" field while the
// job is running. Snapshots improve monotonically — EstimatedIterationS
// never increases across polls of one job — because the publisher only
// accepts strictly better costs (the optimizer's per-round streams can
// jump when a round switches candidate fabrics; the sink keeps the
// global best).
type PartialPlan struct {
	// Strategy is the best parallelization strategy found so far.
	Strategy topoopt.Strategy `json:"strategy"`
	// EstimatedIterationS is the search's fast estimate of the iteration
	// time under Strategy — comparable across polls, not identical to the
	// final plan's flow-level simulated time.
	EstimatedIterationS float64 `json:"estimated_iteration_s"`
	// Updates counts accepted (strictly improving) publications, so a
	// poller can cheaply detect progress between polls.
	Updates int `json:"updates"`
}

// partialState is the mutex-guarded slot one running optimization
// publishes its anytime stream into. The optimizer's OnBest callback
// fires between search epochs (never on the request hot path), and
// GetJob copies the snapshot out under the same small lock.
type partialState struct {
	mu   sync.Mutex
	has  bool
	snap PartialPlan
}

// publish folds one OnBest callback into the slot, enforcing
// monotonicity: only a strictly better cost replaces the snapshot. The
// strategy is already a clone (the MCMC engine clones before streaming),
// so storing it does not alias search state.
func (p *partialState) publish(st topoopt.Strategy, cost float64) {
	p.mu.Lock()
	if !p.has || cost < p.snap.EstimatedIterationS {
		p.snap.Strategy = st
		p.snap.EstimatedIterationS = cost
		p.snap.Updates++
		p.has = true
	}
	p.mu.Unlock()
}

// snapshot returns a copy of the current partial, if any.
func (p *partialState) snapshot() (PartialPlan, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap, p.has
}
