package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"topoopt/internal/shard"
)

// Cluster header names. ForwardedHeader is the one-hop loop guard: a
// daemon only forwards requests that do not already carry it, so a
// forwarded request is always served where it lands — even when ring
// views momentarily disagree (a peer marked down on one daemon but not
// another), the worst case is one extra local compute, never a proxy
// loop. OwnerHeader tells the client which peer actually computed the
// response.
const (
	ForwardedHeader = "X-Topoopt-Forwarded"
	OwnerHeader     = "X-Topoopt-Owner"
)

// ClusterConfig joins a Service to a static sharded cluster. Peers is
// the full membership — every daemon gets the same list — and Self must
// be one of them; ownership of the fingerprint space is then a pure
// function of (Peers, VNodes), identical on every member.
type ClusterConfig struct {
	// Self is this daemon's own base URL as it appears in Peers.
	Self string
	// Peers is the full member list (including Self), as base URLs
	// reachable from this daemon, e.g. http://10.0.0.1:7180.
	Peers []string
	// VNodes is the virtual-node count per member on the hash ring
	// (default shard.DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe period (default 1s). Probes GET
	// each peer's /healthz; a failed probe — or a failed forward — marks
	// the peer down, and requests it owns are served locally until a
	// probe succeeds again.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default min(ProbeInterval, 1s)).
	ProbeTimeout time.Duration
	// Client overrides the forwarding HTTP client (tests). The default
	// has a 2s dial timeout and no overall timeout: plan computations are
	// legitimately slow, and the request context bounds the hop.
	Client *http.Client
}

// normalize validates the config and canonicalizes member URLs
// (trailing slashes stripped, so "http://a:1/" and "http://a:1" are the
// same member).
func (c *ClusterConfig) normalize() error {
	c.Self = strings.TrimRight(strings.TrimSpace(c.Self), "/")
	if c.Self == "" {
		return errors.New("serve: cluster: Self must be set")
	}
	peers := make([]string, 0, len(c.Peers))
	selfListed := false
	for _, p := range c.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if p == c.Self {
			selfListed = true
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return errors.New("serve: cluster: Peers must list every member")
	}
	if !selfListed {
		return fmt.Errorf("serve: cluster: Self %q is not in the peer list %v", c.Self, peers)
	}
	c.Peers = peers
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 || c.ProbeTimeout > c.ProbeInterval {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout > time.Second {
			c.ProbeTimeout = time.Second
		}
	}
	return nil
}

// peerState is one remote member's health as seen from this daemon.
// Peers start healthy (optimistic: the first forward finds out) and are
// marked down by a failed probe or a failed forward; only a successful
// probe re-admits them.
type peerState struct {
	healthy   bool
	lastProbe time.Time
	lastErr   string
}

// cluster is the sharding runtime attached to a Service by
// EnableCluster: the ring, the forwarding client, and the probe loop.
type cluster struct {
	self   string
	ring   *shard.Ring
	client *http.Client // forwarding; context-bounded, no overall timeout
	probeC *http.Client // probes; short overall timeout
	stop   chan struct{}
	done   chan struct{}

	mu    sync.Mutex
	peers map[string]*peerState // remote members only
}

func newCluster(cfg ClusterConfig) (*cluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ring, err := shard.New(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     60 * time.Second,
		}}
	}
	c := &cluster{
		self:   cfg.Self,
		ring:   ring,
		client: client,
		probeC: &http.Client{Timeout: cfg.ProbeTimeout, Transport: client.Transport},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		peers:  make(map[string]*peerState),
	}
	for _, m := range ring.Members() {
		if m != cfg.Self {
			c.peers[m] = &peerState{healthy: true}
		}
	}
	go c.probeLoop(cfg.ProbeInterval)
	return c, nil
}

func (c *cluster) close() {
	close(c.stop)
	<-c.done
}

// owner returns the ring owner of fp and whether that owner is a remote
// peer currently believed healthy (i.e. whether to forward).
func (c *cluster) owner(fp string) (string, bool) {
	o := c.ring.Owner(fp)
	if o == c.self {
		return o, false
	}
	c.mu.Lock()
	st := c.peers[o]
	healthy := st != nil && st.healthy
	c.mu.Unlock()
	return o, healthy
}

// markDown records a failed forward or probe. The peer stays down until
// a probe succeeds, so at most one request per probe interval pays the
// failed-connect latency.
func (c *cluster) markDown(peer string, err error) {
	c.mu.Lock()
	if st := c.peers[peer]; st != nil {
		st.healthy = false
		st.lastErr = err.Error()
	}
	c.mu.Unlock()
}

func (c *cluster) probeLoop(every time.Duration) {
	defer close(c.done)
	c.probeAll()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *cluster) probeAll() {
	c.mu.Lock()
	peers := make([]string, 0, len(c.peers))
	for p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	for _, p := range peers {
		healthy, perr := c.probeOne(p)
		c.mu.Lock()
		if st := c.peers[p]; st != nil {
			st.healthy = healthy
			st.lastProbe = time.Now()
			if perr != nil {
				st.lastErr = perr.Error()
			} else {
				st.lastErr = ""
			}
		}
		c.mu.Unlock()
	}
}

func (c *cluster) probeOne(peer string) (bool, error) {
	resp, err := c.probeC.Get(peer + "/healthz")
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return true, nil
}

// ClusterMember is one row of the GET /v1/cluster membership table.
type ClusterMember struct {
	Name    string `json:"name"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
	// Share is the member's fraction of the fingerprint space.
	Share float64 `json:"share"`
	// LastProbeMs is milliseconds since this daemon last probed the
	// peer (absent for self and before the first probe completes).
	LastProbeMs int64  `json:"last_probe_ms,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// Forwarded / ForwardFallbacks count requests this daemon proxied to
	// the peer and proxy attempts that failed over to local compute.
	Forwarded        int64 `json:"forwarded"`
	ForwardFallbacks int64 `json:"forward_fallbacks"`
}

// ClusterResponse is the GET /v1/cluster response body. On an unsharded
// daemon it is {"enabled": false}.
type ClusterResponse struct {
	Enabled bool            `json:"enabled"`
	Self    string          `json:"self,omitempty"`
	VNodes  int             `json:"vnodes,omitempty"`
	Members []ClusterMember `json:"members,omitempty"`
}

// members builds the /v1/cluster membership table: every ring member
// with its ownership share and, for remote peers, probe-derived health
// and this daemon's forwarding counters toward it.
func (c *cluster) members(met *metrics) []ClusterMember {
	shares := c.ring.Shares()
	names := c.ring.Members()
	sort.Strings(names)
	out := make([]ClusterMember, 0, len(names))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range names {
		m := ClusterMember{
			Name:             n,
			Self:             n == c.self,
			Healthy:          true,
			Share:            shares[n],
			Forwarded:        met.forwardedTo(n),
			ForwardFallbacks: met.fallbacksTo(n),
		}
		if st := c.peers[n]; st != nil {
			m.Healthy = st.healthy
			m.LastError = st.lastErr
			if !st.lastProbe.IsZero() {
				m.LastProbeMs = time.Since(st.lastProbe).Milliseconds()
			}
		}
		out = append(out, m)
	}
	return out
}

// EnableCluster joins the service to a sharded cluster. Call it after
// New and before serving traffic: requests whose fingerprint hashes to
// another member are proxied there (one hop max), /v1/cluster starts
// reporting membership, and per-peer forwarding counters appear in
// /metrics. The probe loop stops when the service is closed.
func (s *Service) EnableCluster(cfg ClusterConfig) error {
	c, err := newCluster(cfg)
	if err != nil {
		return err
	}
	remote := make([]string, 0, len(c.peers))
	for p := range c.peers {
		remote = append(remote, p)
	}
	s.met.initPeers(remote)
	if old := s.cluster.Swap(c); old != nil {
		old.close()
	}
	return nil
}

// Cluster reports cluster membership as served by GET /v1/cluster.
func (s *Service) Cluster() ClusterResponse {
	c := s.cluster.Load()
	if c == nil {
		return ClusterResponse{}
	}
	return ClusterResponse{
		Enabled: true,
		Self:    c.self,
		VNodes:  c.ring.VNodes(),
		Members: c.members(s.met),
	}
}

func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.met.incRequest("cluster")
	writeJSON(w, http.StatusOK, s.Cluster())
}

// cachePeek reports whether fp is already in the local plan cache,
// without counting a hit or touching LRU recency semantics beyond the
// usual get. A sharded daemon serves its own cached copy instead of
// forwarding: results are deterministic in the fingerprint, so a local
// copy is byte-identical to the owner's.
func (s *Service) cachePeek(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cache.get(fp)
	return ok
}

// forward proxies a sync planning request to the fingerprint's owner.
// It returns handled=true when the response has been fully written (the
// hop happened, successfully or not at the HTTP level — the owner's
// status, error envelope, Retry-After and X-Trace all pass through
// verbatim), along with the status that was written. It returns false
// when the request should be served locally: the daemon is unsharded,
// already a hop (loop guard), the owner of fp, the owner is down,
// draining (drain semantics stay local), or the local cache already
// holds the result.
func (s *Service) forward(ctx context.Context, w http.ResponseWriter, r *http.Request, body []byte, fp string) (bool, int) {
	c := s.cluster.Load()
	if c == nil || r.Header.Get(ForwardedHeader) != "" {
		return false, 0
	}
	owner, remote := c.owner(fp)
	if !remote {
		return false, 0
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining || s.cachePeek(fp) {
		return false, 0
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false, 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	// The explicit deadline header travels with the hop so the owner's
	// admission controller sheds against the client's real deadline; the
	// proxied request's context enforces it end-to-end regardless.
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		req.Header.Set("X-Deadline-Ms", h)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		// Owner unreachable: mark it down (probes re-admit it) and degrade
		// to local compute — the ring degrades, requests never fail because
		// a peer died.
		c.markDown(owner, err)
		s.met.forwardFallback(owner)
		return false, 0
	}
	defer resp.Body.Close()
	s.met.forwardTo(owner)
	// The owner's response passes through byte-for-byte: status, error
	// envelope, its Retry-After (computed from the owner's queue, which
	// is the one that matters) and its X-Trace stage breakdown.
	for _, h := range []string{"Content-Type", "Retry-After", "X-Trace"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(OwnerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true, resp.StatusCode
}

// forwardedServed counts a request that arrived via a peer's forward
// (it carries the loop-guard header) and is being served here.
func (s *Service) noteForwardedArrival(r *http.Request) {
	if r.Header.Get(ForwardedHeader) != "" {
		s.met.forwardedServed()
	}
}
