package serve

import (
	"encoding/json"
	"fmt"

	"topoopt"
	"topoopt/internal/wal"
)

// WAL record kinds: the four cacheable result shapes, plus the same
// names reused to tag journaled async jobs (a "plan" job record carries
// a PlanRequest, a "fleet" job record a FleetSpec, a "sweep" job record
// a sweepJournal). Kinds namespace fingerprints inside the store,
// mirroring the kind tags already mixed into compare, fleet and sweep
// fingerprints, and double as the Job envelope's Kind tag.
const (
	kindPlan    = "plan"
	kindCompare = "compare"
	kindFleet   = "fleet"
	kindSweep   = "sweep"
)

// Store is the durable plan store: a typed adapter over internal/wal
// that the Service uses to persist every completed result, journal
// queued async jobs, warm its LRU on boot, and compact on clean
// shutdown. Results are stored as their canonical JSON — plans,
// compare results and fleet results are all byte-stable under
// Marshal → Unmarshal → Marshal, which is what makes a restart-warm
// cache hit byte-identical to the pre-crash response.
type Store struct {
	wal *wal.Store
}

// OpenStore opens (creating if needed) the durable plan store in dir,
// replaying the snapshot and write-ahead log and truncating any torn
// tail left by a crash. Options (e.g. wal.WithSync for power-loss
// durability) pass through to the underlying log.
func OpenStore(dir string, opts ...wal.Option) (*Store, error) {
	w, err := wal.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	return &Store{wal: w}, nil
}

// Len reports the number of persisted results.
func (st *Store) Len() int { return st.wal.Len() }

// encodeResult maps a cached result to its WAL kind and canonical JSON.
func encodeResult(res any) (kind string, payload []byte, err error) {
	switch v := res.(type) {
	case *topoopt.Plan:
		kind = kindPlan
		payload, err = json.Marshal(v)
	case []topoopt.CompareResult:
		kind = kindCompare
		payload, err = json.Marshal(v)
	case *topoopt.FleetResult:
		kind = kindFleet
		payload, err = json.Marshal(v)
	case *topoopt.FleetSweepResult:
		kind = kindSweep
		payload, err = json.Marshal(v)
	default:
		err = fmt.Errorf("serve: unstorable result type %T", res)
	}
	return kind, payload, err
}

// storedPlan is the durable form of a plan record: the plan plus the
// canonical request that produced it, so a restart rebuilds the
// plan-similarity index (not just the exact-fingerprint LRU) from the
// WAL and near-miss requests warm-start across daemon restarts. Request
// is optional: records written before the index existed are bare Plan
// JSON, and decodeStored falls back to that shape.
type storedPlan struct {
	Request *PlanRequest  `json:"request,omitempty"`
	Plan    *topoopt.Plan `json:"plan"`
}

// decodeStored reverses persist for OpPut records: the cache value plus,
// for plan records that carry one, the canonical request to re-index.
func decodeStored(kind string, payload []byte) (any, *PlanRequest, error) {
	if kind == kindPlan {
		var sp storedPlan
		// A wrapped record has a non-nil "plan" member; legacy records are
		// the bare Plan JSON (whose fields don't collide with the wrapper,
		// so sp.Plan stays nil) and take the fallback path below.
		if err := json.Unmarshal(payload, &sp); err == nil && sp.Plan != nil {
			return sp.Plan, sp.Request, nil
		}
	}
	v, err := decodeResult(kind, payload)
	return v, nil, err
}

// decodeResult reverses encodeResult, reconstructing exactly the types
// the in-memory cache holds so a warmed entry is indistinguishable from
// a freshly computed one.
func decodeResult(kind string, payload []byte) (any, error) {
	switch kind {
	case kindPlan:
		var p topoopt.Plan
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, err
		}
		return &p, nil
	case kindCompare:
		var rs []topoopt.CompareResult
		if err := json.Unmarshal(payload, &rs); err != nil {
			return nil, err
		}
		return rs, nil
	case kindFleet:
		var fr topoopt.FleetResult
		if err := json.Unmarshal(payload, &fr); err != nil {
			return nil, err
		}
		return &fr, nil
	case kindSweep:
		var sr topoopt.FleetSweepResult
		if err := json.Unmarshal(payload, &sr); err != nil {
			return nil, err
		}
		return &sr, nil
	default:
		return nil, fmt.Errorf("serve: unknown stored kind %q", kind)
	}
}

// persist appends a completed result to the WAL. Persistence is
// best-effort relative to serving — a failed append is counted in
// metrics but never fails the request that computed the result.
func (s *Service) persist(fp string, res any) {
	if s.store == nil {
		return
	}
	kind, payload, err := encodeResult(res)
	if err == nil && kind == kindPlan {
		// Wrap plans with their canonical request (known for every plan the
		// service itself computed — it was indexed on completion) so the
		// similarity index rebuilds from the WAL on the next boot.
		if creq, ok := s.simRequest(fp); ok {
			if b, merr := json.Marshal(storedPlan{Request: &creq, Plan: res.(*topoopt.Plan)}); merr == nil {
				payload = b
			}
		}
	}
	if err == nil {
		err = s.store.wal.Append(wal.Record{Op: wal.OpPut, Kind: kind, Fp: fp, Payload: payload})
	}
	if err != nil {
		s.met.storeError()
	}
}

// journalJob records a queued async job so a restart can re-enqueue it;
// journalJobDone clears the journal entry once the job reaches a
// terminal state (done, failed or cancelled).
func (s *Service) journalJob(kind, fp string, payload []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.wal.Append(wal.Record{Op: wal.OpJob, Kind: kind, Fp: fp, Payload: payload}); err != nil {
		s.met.storeError()
	}
}

func (s *Service) journalJobDone(kind, fp string) {
	if s.store == nil {
		return
	}
	if err := s.store.wal.Append(wal.Record{Op: wal.OpJobDone, Kind: kind, Fp: fp}); err != nil {
		s.met.storeError()
	}
}

// clearStaleJournal clears the journal entry, if any, of a job that
// resolved straight from the cache. Ordinary submissions hitting a warm
// cache were never journaled, so this appends nothing for them.
func (s *Service) clearStaleJournal(kind, fp string) {
	if s.store == nil || !s.store.wal.HasJob(kind, fp) {
		return
	}
	s.journalJobDone(kind, fp)
}

// warmFromStore replays the durable store into the service: every
// persisted result lands in the LRU (so a restart serves it as a
// byte-identical cache hit with zero re-search), and every journaled
// but unfinished async job is re-submitted through the normal admission
// path under a fresh job ID. Jobs whose results already landed complete
// instantly from the warmed cache, which also clears their journal
// entries. Runs during New, before the service accepts requests.
func (s *Service) warmFromStore() {
	var jobs []wal.Record
	for _, r := range s.store.wal.Records() {
		switch r.Op {
		case wal.OpPut:
			v, req, err := decodeStored(r.Kind, r.Payload)
			if err != nil {
				s.met.storeError()
				continue
			}
			s.mu.Lock()
			s.cache.add(r.Fp, v)
			if req != nil {
				// Restart-warm similarity: the replayed plan re-joins the
				// index, so near-miss requests warm-start across restarts.
				s.sim.add(r.Fp, *req)
			}
			s.warmed++
			s.mu.Unlock()
		case wal.OpJob:
			jobs = append(jobs, r)
		}
	}
	// Re-enqueue after warming so a journaled job whose put record
	// survived resolves as an instant cache hit instead of a re-run.
	// Best effort: a job the queue cannot re-admit stays journaled for
	// the next restart.
	for _, r := range jobs {
		switch r.Kind {
		case kindPlan:
			var req PlanRequest
			if json.Unmarshal(r.Payload, &req) == nil {
				s.SubmitJob(req)
			}
		case kindFleet:
			var spec topoopt.FleetSpec
			if json.Unmarshal(r.Payload, &spec) == nil {
				s.SubmitFleet(spec)
			}
		case kindSweep:
			var sj sweepJournal
			if json.Unmarshal(r.Payload, &sj) == nil {
				s.SubmitSweep(sj.Spec, sj.Replicas)
			}
		}
	}
}
