// Package trace generates synthetic production training-job traces with
// the distributional properties measured at Meta in §2.2: jobs of 32–700
// workers (Figure 2a), multi-hour to multi-day durations with the top 10%
// beyond 96 hours (Figure 2b), network overhead growing with worker count
// (Figure 3), and per-job traffic heatmaps combining a ring-AllReduce
// diagonal with model-dependent MP rows/columns (Figure 4).
//
// Substitution note (DESIGN.md): we do not have Meta's traces; this
// generator reproduces exactly the properties the paper uses them for.
package trace

import (
	"math"
	"math/rand"

	"topoopt/internal/collective"
	"topoopt/internal/traffic"
)

// Family is a production job family (Figure 2's four categories).
type Family int

const (
	ObjectTracking Family = iota
	Recommendation
	NLP
	ImageRecognition
)

func (f Family) String() string {
	switch f {
	case ObjectTracking:
		return "ObjectTracking"
	case Recommendation:
		return "Recommendation"
	case NLP:
		return "NaturalLanguageProc"
	case ImageRecognition:
		return "ImageRecognition"
	}
	return "Unknown"
}

// Families lists all four.
func Families() []Family {
	return []Family{ObjectTracking, Recommendation, NLP, ImageRecognition}
}

// Job is one synthetic production job.
type Job struct {
	Family        Family
	Workers       int
	DurationHours float64
}

// famParams are log-normal parameters per family, tuned so worker counts
// span 32–700 and durations reproduce Figure 2b's heavy tail. A fixed
// array indexed by Family (not a map): samplers index it directly, and no
// code path can ever iterate it in nondeterministic map order — fleet
// simulations replay traces byte-for-byte from a seed alone.
var famParams = [...]struct {
	wMu, wSigma float64 // log workers
	dMu, dSigma float64 // log duration hours
}{
	ObjectTracking:   {math.Log(48), 0.5, math.Log(8), 1.1},
	Recommendation:   {math.Log(128), 0.7, math.Log(24), 1.2},
	NLP:              {math.Log(96), 0.8, math.Log(30), 1.3},
	ImageRecognition: {math.Log(64), 0.6, math.Log(12), 1.2},
}

// Sample draws one job of family f from rng — the single-draw core of
// Generate, exported so arrival-driven simulators (internal/fleet) can
// interleave draws across families on one deterministic stream. The rng
// consumption is part of the contract (exactly two NormFloat64 draws, in
// worker-then-duration order) and is pinned by a golden test: changing it
// silently reshuffles every downstream fleet trace.
func Sample(f Family, rng *rand.Rand) Job {
	p := famParams[f]
	w := int(math.Exp(rng.NormFloat64()*p.wSigma + p.wMu))
	if w < 8 {
		w = 8
	}
	if w > 700 {
		w = 700
	}
	d := math.Exp(rng.NormFloat64()*p.dSigma + p.dMu)
	if d < 0.01 {
		d = 0.01
	}
	return Job{Family: f, Workers: w, DurationHours: d}
}

// Generate produces count jobs of the given family, deterministic per
// seed.
func Generate(f Family, count int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, count)
	for i := range jobs {
		jobs[i] = Sample(f, rng)
	}
	return jobs
}

// Workers extracts worker counts as float64 for CDF plotting.
func Workers(jobs []Job) []float64 {
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = float64(j.Workers)
	}
	return out
}

// Durations extracts durations (hours).
func Durations(jobs []Job) []float64 {
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = j.DurationHours
	}
	return out
}

// NetworkOverhead models Figure 3: the fraction of iteration time spent
// in communication as GPU count grows on a fixed-bandwidth fabric.
// Communication per worker grows with the AllReduce span (2(k-1)/k·S) and
// the per-worker compute stays constant (weak scaling), so overhead =
// comm/(comm+compute) rises with k. commScale encodes how network-heavy
// the DNN is (seconds of comm per unit of 2(k-1)/k at the cluster's
// bandwidth) relative to one second of compute.
func NetworkOverhead(gpus int, commScale float64) float64 {
	if gpus < 2 {
		return 0
	}
	k := float64(gpus)
	comm := commScale * 2 * (k - 1) / k * (1 + 0.15*math.Log2(k/8+1))
	return comm / (comm + 1) * 100
}

// ProductionHeatmap synthesizes a Figure 4-style traffic heatmap for a
// job with n servers: a ring-AllReduce diagonal plus MP rows/columns for
// a family-dependent number of model-parallel hosts.
func ProductionHeatmap(f Family, n int, seed int64) traffic.Matrix {
	rng := rand.New(rand.NewSource(seed))
	tm := traffic.NewMatrix(n)
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	collective.Ring(tm, members, 1, int64(4e9))
	mpHosts := 0
	switch f {
	case Recommendation:
		mpHosts = n / 4
	case NLP:
		mpHosts = n / 8
	case ObjectTracking:
		mpHosts = n / 16
	case ImageRecognition:
		mpHosts = 0
	}
	for h := 0; h < mpHosts; h++ {
		host := rng.Intn(n)
		per := int64(16e6 + rng.Int63n(48e6))
		for c := 0; c < n; c++ {
			if c != host {
				tm.Add(host, c, per)
				tm.Add(c, host, per)
			}
		}
	}
	return tm
}

// IsRingDominant reports whether the heatmap's ring diagonal carries the
// largest single entries — the visual signature of Figure 4.
func IsRingDominant(tm traffic.Matrix) bool {
	n := tm.N()
	if n < 2 {
		return false
	}
	var minDiag int64 = math.MaxInt64
	for i := 0; i < n; i++ {
		v := tm[i][(i+1)%n]
		if v < minDiag {
			minDiag = v
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if d == (s+1)%n || s == d {
				continue
			}
			if tm[s][d] > minDiag {
				return false
			}
		}
	}
	return true
}
