package trace

import (
	"math/rand"
	"testing"

	"topoopt/internal/stats"
)

func TestGenerateDistributionShape(t *testing.T) {
	for _, f := range Families() {
		jobs := Generate(f, 500, 1)
		if len(jobs) != 500 {
			t.Fatalf("%s: %d jobs", f, len(jobs))
		}
		ws := Workers(jobs)
		if stats.Min(ws) < 8 || stats.Max(ws) > 700 {
			t.Errorf("%s: workers out of [8,700]: min %g max %g", f, stats.Min(ws), stats.Max(ws))
		}
		// Figure 2a: bulk of jobs between 32 and 700 workers.
		if stats.Percentile(ws, 50) < 16 {
			t.Errorf("%s: median workers %g implausibly low", f, stats.Percentile(ws, 50))
		}
	}
}

func TestDurationsHeavyTail(t *testing.T) {
	var all []float64
	for _, f := range Families() {
		all = append(all, Durations(Generate(f, 400, 2))...)
	}
	// Figure 2b: most jobs last over an hour; top 10% beyond ~96 hours.
	if med := stats.Percentile(all, 50); med < 1 {
		t.Errorf("median duration %g h, want > 1 h", med)
	}
	if p90 := stats.Percentile(all, 90); p90 < 48 {
		t.Errorf("p90 duration %g h, want heavy tail approaching 96 h", p90)
	}
}

// TestGenerateGolden pins the generator's exact output: fleet runs are
// reproduced byte-for-byte from a seed, so the rng consumption order of
// Sample (two NormFloat64 draws, worker then duration) and the famParams
// constants are part of the public contract. If this test fails, every
// recorded fleet trace in the wild silently reshuffles — change the
// goldens only with a deliberate format break.
func TestGenerateGolden(t *testing.T) {
	golden := map[Family][]Job{
		ObjectTracking: {
			{ObjectTracking, 104, 9.181799755274538},
			{ObjectTracking, 37, 31.432992512737542},
			{ObjectTracking, 51, 30.157875821921568},
		},
		Recommendation: {
			{Recommendation, 379, 27.892592019049072},
			{Recommendation, 90, 106.79080725599272},
			{Recommendation, 140, 102.07370781874987},
		},
		NLP: {
			{NLP, 332, 35.30520115324681},
			{NLP, 64, 151.17179438352414},
			{NLP, 106, 143.9513662670663},
		},
		ImageRecognition: {
			{ImageRecognition, 162, 13.946296009524536},
			{ImageRecognition, 47, 53.39540362799638},
			{ImageRecognition, 69, 51.03685390937493},
		},
	}
	for _, f := range Families() {
		got := Generate(f, 3, 42)
		for i, want := range golden[f] {
			if got[i] != want {
				t.Errorf("%s job %d = %+v, want %+v", f, i, got[i], want)
			}
		}
	}
}

// TestSampleInterleavedGolden pins Sample's behavior on a shared stream:
// arrival-driven simulators interleave families on one rng, so a draw
// must consume exactly the same stream positions regardless of family.
func TestSampleInterleavedGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	want := []Job{
		{ObjectTracking, 42, 21.82041997754359},
		{Recommendation, 244, 11.557737046564256},
		{NLP, 70, 69.50651136676254},
		{ImageRecognition, 310, 48.605540118614144},
	}
	for i, w := range want {
		if got := Sample(Family(i), rng); got != w {
			t.Errorf("interleaved draw %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(NLP, 50, 7)
	b := Generate(NLP, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce jobs")
		}
	}
}

func TestNetworkOverheadGrowsWithGPUs(t *testing.T) {
	// Figure 3 shape: monotone growth, reaching tens of percent at 128.
	prev := -1.0
	for _, g := range []int{8, 16, 32, 64, 128} {
		o := NetworkOverhead(g, 0.3)
		if o <= prev {
			t.Errorf("overhead not increasing at %d GPUs: %g <= %g", g, o, prev)
		}
		prev = o
	}
	if o := NetworkOverhead(128, 0.8); o < 40 || o > 80 {
		t.Errorf("network-heavy model at 128 GPUs = %g%%, want 40-80%%", o)
	}
	if NetworkOverhead(1, 1) != 0 {
		t.Error("single GPU has no network overhead")
	}
}

func TestProductionHeatmapRingSignature(t *testing.T) {
	tm := ProductionHeatmap(Recommendation, 48, 3)
	if !IsRingDominant(tm) {
		t.Error("ring diagonal should dominate the heatmap (Figure 4)")
	}
	// Recommendation jobs have MP rows: some off-diagonal traffic exists.
	off := int64(0)
	for s := 0; s < 48; s++ {
		for d := 0; d < 48; d++ {
			if d != (s+1)%48 && s != d {
				off += tm[s][d]
			}
		}
	}
	if off == 0 {
		t.Error("recommendation heatmap should include MP traffic")
	}
	// Image recognition is pure data parallel: no MP.
	tmImg := ProductionHeatmap(ImageRecognition, 48, 3)
	for s := 0; s < 48; s++ {
		for d := 0; d < 48; d++ {
			if d != (s+1)%48 && tmImg[s][d] != 0 {
				t.Fatal("image recognition should be ring-only")
			}
		}
	}
}

func TestFamilyStrings(t *testing.T) {
	for _, f := range Families() {
		if f.String() == "Unknown" || f.String() == "" {
			t.Errorf("family %d has no name", f)
		}
	}
	if Family(99).String() != "Unknown" {
		t.Error("unknown family should say Unknown")
	}
}
