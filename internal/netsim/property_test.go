package netsim

import (
	"math"
	"math/rand"
	"testing"

	"topoopt/internal/graph"
)

// This file checks the incremental allocator against (a) the max-min
// fairness invariants and (b) the seed's map-based progressive-filling
// implementation, kept below as an executable specification. The two
// algorithms perform identical arithmetic in identical round order, so
// rates must match bit-for-bit, not just within a tolerance.

// referenceMaxMin is the seed implementation: rebuild link→flow maps from
// scratch and progressively fill, freezing the minimum-fair-share
// bottleneck each round (ties to the lowest edge ID).
func referenceMaxMin(flows []*Flow, linkCap []float64) map[int]float64 {
	rates := make(map[int]float64, len(flows))
	if len(flows) == 0 {
		return rates
	}
	linkFlows := make(map[int][]*Flow)
	for _, f := range flows {
		seen := make(map[int]bool, len(f.Path))
		for _, id := range f.Path {
			if seen[id] {
				continue
			}
			seen[id] = true
			linkFlows[id] = append(linkFlows[id], f)
		}
		rates[f.ID] = 0
	}
	frozen := make(map[int]bool, len(flows))
	remaining := make(map[int]float64, len(linkFlows))
	unfrozenCount := make(map[int]int, len(linkFlows))
	for id, fl := range linkFlows {
		remaining[id] = linkCap[id]
		unfrozenCount[id] = len(fl)
	}
	for len(frozen) < len(flows) {
		bottleneck := -1
		fair := math.Inf(1)
		for id, cnt := range unfrozenCount {
			if cnt == 0 {
				continue
			}
			f := remaining[id] / float64(cnt)
			if f < fair || (f == fair && (bottleneck == -1 || id < bottleneck)) {
				fair = f
				bottleneck = id
			}
		}
		if bottleneck == -1 {
			for _, f := range flows {
				if !frozen[f.ID] {
					rates[f.ID] = math.Inf(1)
					frozen[f.ID] = true
				}
			}
			break
		}
		for _, f := range linkFlows[bottleneck] {
			if frozen[f.ID] {
				continue
			}
			rates[f.ID] = fair
			frozen[f.ID] = true
			seen := make(map[int]bool, len(f.Path))
			for _, id := range f.Path {
				if seen[id] {
					continue
				}
				seen[id] = true
				remaining[id] -= fair
				if remaining[id] < 0 {
					remaining[id] = 0
				}
				unfrozenCount[id]--
			}
		}
	}
	return rates
}

// randomScenario builds a random multigraph and a random flow population
// on it, returning the simulator with rates flushed.
func randomScenario(rng *rand.Rand) *Sim {
	n := 4 + rng.Intn(12)
	g := graph.New(n)
	// Ring backbone (guarantees connectivity) + random chords, some
	// parallel, with varied capacities.
	for i := 0; i < n; i++ {
		g.AddDuplex(i, (i+1)%n, float64(10+rng.Intn(90))*1e9)
	}
	for c := 0; c < n; c++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b, float64(5+rng.Intn(95))*1e9)
		}
	}
	s := New(g, 0)
	nf := 1 + rng.Intn(40)
	for i := 0; i < nf; i++ {
		// Random walk path of 1..4 edges.
		hops := 1 + rng.Intn(4)
		at := rng.Intn(n)
		var path []int
		for h := 0; h < hops; h++ {
			out := g.Out(at)
			if len(out) == 0 {
				break
			}
			id := out[rng.Intn(len(out))]
			path = append(path, id)
			at = g.EdgeTo(id)
		}
		if len(path) == 0 {
			continue
		}
		s.AddFlowPath(path, float64(1+rng.Intn(1000))*1e6, nil)
	}
	s.flushRates()
	return s
}

func TestAllocatorMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomScenario(rng)
		ref := referenceMaxMin(s.active, s.linkCap)
		for _, f := range s.active {
			if want := ref[f.ID]; f.Rate != want {
				t.Fatalf("seed %d: flow %d rate %g, reference %g", seed, f.ID, f.Rate, want)
			}
		}
	}
}

func TestAllocatorInvariants(t *testing.T) {
	for seed := int64(200); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomScenario(rng)
		// Invariant 1: no link carries more than its capacity.
		for id := 0; id < s.g.M(); id++ {
			sum := 0.0
			for _, f := range s.linkFlows[id] {
				sum += f.Rate
			}
			if cap := s.linkCap[id]; sum > cap*(1+1e-9)+1e-6 {
				t.Fatalf("seed %d: link %d over capacity: %g > %g", seed, id, sum, cap)
			}
		}
		// Invariant 2 (max-min): every flow has a bottleneck link — one
		// that is saturated and on which no other flow gets a higher rate,
		// so no flow's rate can be raised without lowering a smaller or
		// equal one.
		for _, f := range s.active {
			if math.IsInf(f.Rate, 1) {
				continue
			}
			bottlenecked := false
			for _, id := range f.uniq {
				sum := 0.0
				maxRate := 0.0
				for _, other := range s.linkFlows[id] {
					sum += other.Rate
					if other.Rate > maxRate {
						maxRate = other.Rate
					}
				}
				saturated := sum >= s.linkCap[id]*(1-1e-9)-1e-6
				if saturated && f.Rate >= maxRate*(1-1e-9) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Fatalf("seed %d: flow %d (rate %g) has no bottleneck link", seed, f.ID, f.Rate)
			}
		}
	}
}

// TestResetReuseMatchesFreshSim drives a scenario on a fresh simulator and
// on one recycled from a different, differently-shaped scenario; completion
// times must agree exactly — Reset must leak no state.
func TestResetReuseMatchesFreshSim(t *testing.T) {
	scenario := func(s *Sim, g *graph.Graph) []float64 {
		var times []float64
		for i := 0; i < 24; i++ {
			src, dst := i%8, (i*3+1)%8
			if src == dst {
				continue
			}
			p := g.ShortestPath(src, dst).Nodes(g, src)
			if _, err := s.AddFlowNodes(p, float64(1e6*(i%5+1)), func(now float64) {
				times = append(times, now)
			}); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(0)
		return times
	}
	mkGraph := func() *graph.Graph {
		g := graph.New(8)
		for i := 0; i < 8; i++ {
			g.AddDuplex(i, (i+1)%8, 10e9)
		}
		return g
	}

	g1 := mkGraph()
	fresh := scenario(New(g1, 1e-6), g1)

	// Dirty the reused sim with a larger unrelated scenario first.
	big := graph.New(20)
	for i := 0; i < 20; i++ {
		big.AddDuplex(i, (i+1)%20, 25e9)
		big.AddDuplex(i, (i+7)%20, 25e9)
	}
	s := New(big, 0)
	for i := 0; i < 50; i++ {
		p := big.ShortestPath(i%20, (i+9)%20).Nodes(big, i%20)
		s.AddFlowNodes(p, 1e7, nil)
	}
	s.Run(0)

	g2 := mkGraph()
	s.Reset(g2, 1e-6)
	reused := scenario(s, g2)

	if len(fresh) != len(reused) {
		t.Fatalf("completion counts differ: %d vs %d", len(fresh), len(reused))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("completion %d differs: %g (fresh) vs %g (reused)", i, fresh[i], reused[i])
		}
	}
}

// TestRepeatedRunsByteIdentical asserts run-to-run determinism: the same
// scenario executed twice produces exactly the same completion sequence
// (the allocator iterates slices, never maps, so there is no iteration-
// order residue).
func TestRepeatedRunsByteIdentical(t *testing.T) {
	run := func() []float64 {
		g := graph.New(10)
		for i := 0; i < 10; i++ {
			g.AddDuplex(i, (i+1)%10, 25e9)
			g.AddDuplex(i, (i+3)%10, 10e9)
		}
		s := New(g, 1e-6)
		var times []float64
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 60; i++ {
			src := rng.Intn(10)
			dst := (src + 1 + rng.Intn(9)) % 10
			p := g.ShortestPath(src, dst).Nodes(g, src)
			s.AddFlowNodes(p, float64(1e5*(rng.Intn(9)+1)), func(now float64) {
				times = append(times, now)
			})
		}
		// Mid-run churn: reconfigure a link and add late arrivals.
		s.Schedule(1e-4, func() { s.SetLinkCap(0, 5e9) })
		s.Schedule(2e-4, func() { s.SetLinkCap(0, 25e9) })
		s.Schedule(1.5e-4, func() {
			p := g.ShortestPath(2, 7).Nodes(g, 2)
			s.AddFlowNodes(p, 3e6, func(now float64) { times = append(times, now) })
		})
		s.Run(0)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("completion counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}
