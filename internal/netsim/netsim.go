// Package netsim is an event-driven flow-level network simulator — this
// repository's substitute for the paper's htsim-based FlexNetPacket (§5.1;
// see DESIGN.md for the substitution argument). Flows traverse fixed paths
// of directed links; active flows share link capacity by progressive
// filling (max-min fairness), recomputed at every flow arrival, departure
// and capacity change. Completion times additionally pay a per-hop
// propagation latency (the paper uses 1 µs per link).
//
// The simulator also provides plain timer events so callers (the flexnet
// task-graph engine, the cluster scheduler, OCS reconfiguration logic) can
// interleave computation and control-plane actions with network activity.
package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"topoopt/internal/graph"
)

// DefaultLinkLatency is the per-hop propagation delay (§5.1: 1 µs).
const DefaultLinkLatency = 1e-6

// completionTolerance is the byte remainder below which a flow counts as
// finished, absorbing floating-point residue between rate allocation and
// event timestamps.
const completionTolerance = 1e-3

// Flow is an in-flight transfer.
type Flow struct {
	ID    int
	Path  []int // edge IDs, in order
	Bytes float64
	// Remaining bytes to deliver.
	Remaining float64
	// Rate currently allocated, bits/s.
	Rate float64
	// onComplete runs when the last byte arrives (including hop latency).
	onComplete func(now float64)
	start      float64
	done       bool
}

// Sim is the simulator instance. Create with New; the zero value is not
// usable.
type Sim struct {
	g           *graph.Graph
	linkCap     []float64 // effective capacity per edge (bits/s)
	linkLatency float64

	now     float64
	flows   map[int]*Flow
	nextID  int
	events  eventHeap
	eventID int

	// Stats.
	completed      int
	bytesDelivered float64
	byteHops       float64 // Σ bytes × hops: bandwidth-tax numerator
}

// New builds a simulator over the given graph, taking initial link
// capacities from the edges. A negative linkLatency selects
// DefaultLinkLatency; zero disables propagation delay.
func New(g *graph.Graph, linkLatency float64) *Sim {
	if linkLatency < 0 {
		linkLatency = DefaultLinkLatency
	}
	s := &Sim{
		g:           g,
		linkCap:     make([]float64, g.M()),
		linkLatency: linkLatency,
		flows:       make(map[int]*Flow),
	}
	for _, e := range g.Edges() {
		s.linkCap[e.ID] = e.Cap
	}
	return s
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Completed returns the number of finished flows.
func (s *Sim) Completed() int { return s.completed }

// BytesDelivered returns the total bytes delivered by finished flows.
func (s *Sim) BytesDelivered() float64 { return s.bytesDelivered }

// BandwidthTax returns Σ(bytes×hops)/Σ(bytes) across finished flows — the
// §5.4 bandwidth-tax metric. Returns 1 when nothing has finished.
func (s *Sim) BandwidthTax() float64 {
	if s.bytesDelivered == 0 {
		return 1
	}
	return s.byteHops / s.bytesDelivered
}

// SetLinkCap changes a link's capacity (0 disables it, e.g. during
// reconfiguration) and reallocates flow rates.
func (s *Sim) SetLinkCap(edgeID int, cap float64) {
	if cap < 0 {
		cap = 0
	}
	s.linkCap[edgeID] = cap
	s.reallocate()
}

// LinkCap returns a link's current capacity.
func (s *Sim) LinkCap(edgeID int) float64 { return s.linkCap[edgeID] }

// event types

type event struct {
	at   float64
	seq  int // tie-break for determinism
	fn   func()
	heap int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*event)
	e.heap = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Schedule runs fn at now+delay. Negative delays fire immediately.
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e := &event{at: s.now + delay, seq: s.eventID, fn: fn}
	s.eventID++
	heap.Push(&s.events, e)
}

// AddFlowPath injects a flow along explicit edge IDs. onComplete may be
// nil. Zero-byte flows complete after path latency only.
func (s *Sim) AddFlowPath(path []int, bytes float64, onComplete func(now float64)) *Flow {
	if bytes < 0 {
		panic("netsim: negative flow size")
	}
	f := &Flow{
		ID:         s.nextID,
		Path:       append([]int(nil), path...),
		Bytes:      bytes,
		Remaining:  bytes,
		onComplete: onComplete,
		start:      s.now,
	}
	s.nextID++
	if bytes == 0 || len(path) == 0 {
		lat := float64(len(path)) * s.linkLatency
		done := f
		s.Schedule(lat, func() { s.finish(done) })
		return f
	}
	s.flows[f.ID] = f
	s.reallocate()
	return f
}

// AddFlowNodes injects a flow along a node path (as produced by the route
// package), resolving each consecutive pair to the least-loaded parallel
// link between them.
func (s *Sim) AddFlowNodes(nodes []int, bytes float64, onComplete func(now float64)) (*Flow, error) {
	path, err := s.ResolveNodePath(nodes)
	if err != nil {
		return nil, err
	}
	return s.AddFlowPath(path, bytes, onComplete), nil
}

// AddFlowNodesStriped splits a transfer into parallel sub-flows, one per
// parallel link available along the narrowest hop of the path (capped at
// maxStripes; 0 means no cap). This models NCCL channel striping and the
// paper's load-balancing across TotientPerms parallel links: the pair's
// aggregate rate becomes the sum of the parallel links' fair shares.
// onComplete fires once, when the last stripe lands.
func (s *Sim) AddFlowNodesStriped(nodes []int, bytes float64, maxStripes int, onComplete func(now float64)) ([]*Flow, error) {
	stripes := s.pathMultiplicity(nodes)
	if stripes < 1 {
		stripes = 1
	}
	if maxStripes > 0 && stripes > maxStripes {
		stripes = maxStripes
	}
	per := bytes / float64(stripes)
	remaining := stripes
	var flows []*Flow
	for i := 0; i < stripes; i++ {
		f, err := s.AddFlowNodes(nodes, per, func(now float64) {
			remaining--
			if remaining == 0 && onComplete != nil {
				onComplete(now)
			}
		})
		if err != nil {
			return flows, err
		}
		flows = append(flows, f)
	}
	return flows, nil
}

// pathMultiplicity returns the minimum number of usable parallel links
// over the hops of a node path.
func (s *Sim) pathMultiplicity(nodes []int) int {
	min := 0
	for i := 0; i+1 < len(nodes); i++ {
		m := 0
		for _, id := range s.g.Out(nodes[i]) {
			if s.g.Edge(id).To == nodes[i+1] && s.linkCap[id] > 0 {
				m++
			}
		}
		if min == 0 || m < min {
			min = m
		}
	}
	return min
}

// ResolveNodePath converts a node path into edge IDs, choosing for each
// hop the parallel link with the fewest active flows (cheap load
// balancing across TotientPerms parallel rings).
func (s *Sim) ResolveNodePath(nodes []int) ([]int, error) {
	var path []int
	for i := 0; i+1 < len(nodes); i++ {
		bestID, bestLoad := -1, math.MaxInt32
		for _, id := range s.g.Out(nodes[i]) {
			e := s.g.Edge(id)
			if e.To != nodes[i+1] || s.linkCap[id] <= 0 {
				continue
			}
			load := s.activeOnLink(id)
			if load < bestLoad {
				bestID, bestLoad = id, load
			}
		}
		if bestID == -1 {
			return nil, fmt.Errorf("netsim: no usable link %d -> %d", nodes[i], nodes[i+1])
		}
		path = append(path, bestID)
	}
	return path, nil
}

func (s *Sim) activeOnLink(edgeID int) int {
	n := 0
	for _, f := range s.flows {
		for _, id := range f.Path {
			if id == edgeID {
				n++
				break
			}
		}
	}
	return n
}

// reallocate recomputes max-min fair rates by progressive filling.
func (s *Sim) reallocate() {
	if len(s.flows) == 0 {
		return
	}
	// Gather per-link flow lists (only links used by active flows).
	linkFlows := make(map[int][]*Flow)
	for _, f := range s.flows {
		seen := make(map[int]bool, len(f.Path))
		for _, id := range f.Path {
			if seen[id] {
				continue // a flow crossing a link twice still gets one share
			}
			seen[id] = true
			linkFlows[id] = append(linkFlows[id], f)
		}
		f.Rate = 0
	}
	frozen := make(map[int]bool, len(s.flows))
	remaining := make(map[int]float64, len(linkFlows))
	unfrozenCount := make(map[int]int, len(linkFlows))
	for id, fl := range linkFlows {
		remaining[id] = s.linkCap[id]
		unfrozenCount[id] = len(fl)
	}
	for len(frozen) < len(s.flows) {
		// Find bottleneck link: min remaining/unfrozen.
		bottleneck := -1
		fair := math.Inf(1)
		for id, cnt := range unfrozenCount {
			if cnt == 0 {
				continue
			}
			f := remaining[id] / float64(cnt)
			if f < fair || (f == fair && (bottleneck == -1 || id < bottleneck)) {
				fair = f
				bottleneck = id
			}
		}
		if bottleneck == -1 {
			// Flows not constrained by any shared link (shouldn't happen:
			// every flow has >= 1 link). Freeze them at +Inf — completes
			// instantly.
			for _, f := range s.flows {
				if !frozen[f.ID] {
					f.Rate = math.Inf(1)
					frozen[f.ID] = true
				}
			}
			break
		}
		// Freeze every unfrozen flow through the bottleneck at the fair
		// rate, and charge their rate to all their other links.
		for _, f := range linkFlows[bottleneck] {
			if frozen[f.ID] {
				continue
			}
			f.Rate = fair
			frozen[f.ID] = true
			seen := make(map[int]bool, len(f.Path))
			for _, id := range f.Path {
				if seen[id] {
					continue
				}
				seen[id] = true
				remaining[id] -= fair
				if remaining[id] < 0 {
					remaining[id] = 0
				}
				unfrozenCount[id]--
			}
		}
	}
	s.scheduleNextCompletion()
}

// completionEvent is lazily validated: we re-check at fire time whether
// the flow actually finished (rates may have changed since scheduling).
func (s *Sim) scheduleNextCompletion() {
	soonest := math.Inf(1)
	for _, f := range s.flows {
		if f.Rate <= 0 {
			continue
		}
		t := f.Remaining * 8 / f.Rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	s.Schedule(soonest, func() { s.drainCompletions() })
}

// advanceFlows progresses all flow byte counters to the current time,
// given the time elapsed since the last progress point.
func (s *Sim) advanceFlows(elapsed float64) {
	if elapsed <= 0 {
		return
	}
	for _, f := range s.flows {
		if f.Rate > 0 {
			f.Remaining -= f.Rate * elapsed / 8
			// Snap float residue: completion events land at times computed
			// from these very rates, so after the event fires the true
			// remainder is a rounding artifact. A millibyte is far below
			// any physical transfer granularity and far above the relative
			// epsilon of any flow size we simulate (< 1e13 bytes).
			if f.Remaining < completionTolerance {
				f.Remaining = 0
			}
		}
	}
}

// drainCompletions finishes any flow whose bytes ran out.
func (s *Sim) drainCompletions() {
	var done []*Flow
	for _, f := range s.flows {
		if f.Remaining <= completionTolerance {
			done = append(done, f)
		}
	}
	if len(done) == 0 {
		// Spurious wake-up after a rate change; reschedule.
		s.scheduleNextCompletion()
		return
	}
	// Deterministic order.
	for i := 0; i < len(done); i++ {
		for j := i + 1; j < len(done); j++ {
			if done[j].ID < done[i].ID {
				done[i], done[j] = done[j], done[i]
			}
		}
	}
	for _, f := range done {
		delete(s.flows, f.ID)
		lat := float64(len(f.Path)) * s.linkLatency
		ff := f
		s.Schedule(lat, func() { s.finish(ff) })
	}
	s.reallocate()
}

func (s *Sim) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	s.completed++
	s.bytesDelivered += f.Bytes
	s.byteHops += f.Bytes * float64(len(f.Path))
	if f.onComplete != nil {
		f.onComplete(s.now)
	}
}

// Step executes the next pending event. Returns false when no events
// remain.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	elapsed := e.at - s.now
	s.advanceFlows(elapsed)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue is empty or the time limit is
// passed (limit <= 0 means no limit). Returns the final time.
func (s *Sim) Run(limit float64) float64 {
	for s.events.Len() > 0 {
		if limit > 0 && s.events[0].at > limit {
			s.advanceFlows(limit - s.now)
			s.now = limit
			break
		}
		s.Step()
	}
	return s.now
}

// ActiveFlows returns the number of in-flight flows.
func (s *Sim) ActiveFlows() int { return len(s.flows) }

// Idle reports whether no flows are active and no events are pending.
func (s *Sim) Idle() bool { return len(s.flows) == 0 && s.events.Len() == 0 }
