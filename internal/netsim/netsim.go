// Package netsim is an event-driven flow-level network simulator — this
// repository's substitute for the paper's htsim-based FlexNetPacket (§5.1;
// see DESIGN.md for the substitution argument). Flows traverse fixed paths
// of directed links; active flows share link capacity by progressive
// filling (max-min fairness), recomputed at every flow arrival, departure
// and capacity change. Completion times additionally pay a per-hop
// propagation latency (the paper uses 1 µs per link).
//
// The simulator also provides plain timer events so callers (the flexnet
// task-graph engine, the cluster scheduler, OCS reconfiguration logic) can
// interleave computation and control-plane actions with network activity.
//
// The data plane is incremental and allocation-free on the steady-state
// path (see DESIGN.md, "Simulator performance"): per-link state lives in
// flat slices indexed by edge ID, link→flow adjacency is maintained on
// flow add/remove rather than rebuilt per reallocation, completed Flow
// structs are recycled through a free list, and rate recomputation is
// deferred until simulated time next advances, so a burst of arrivals at
// one instant pays for a single progressive-filling pass.
package netsim

import (
	"fmt"
	"math"
	"slices"

	"topoopt/internal/graph"
)

// DefaultLinkLatency is the per-hop propagation delay (§5.1: 1 µs).
const DefaultLinkLatency = 1e-6

// completionTolerance is the byte remainder below which a flow counts as
// finished, absorbing floating-point residue between rate allocation and
// event timestamps.
const completionTolerance = 1e-3

// Flow is an in-flight transfer.
//
// Flow structs are recycled: once a flow completes (its onComplete has
// fired), the struct may be reused for a flow added later to the same Sim,
// and by Reset for the next simulation. Callers may read a completed
// flow's fields only until the next AddFlow*/Reset call.
type Flow struct {
	ID    int
	Path  []int // edge IDs, in order
	Bytes float64
	// Remaining bytes to deliver.
	Remaining float64
	// Rate currently allocated, bits/s.
	Rate float64
	// onComplete runs when the last byte arrives (including hop latency).
	onComplete func(now float64)
	start      float64
	done       bool

	// uniq is Path with duplicate edges removed: a flow crossing a link
	// twice still gets one fair share there, and adjacency/bookkeeping
	// updates must touch each link exactly once.
	uniq []int
	// slot is this flow's index in Sim.active (-1 while not active).
	slot int
	// frozen is progressive-filling scratch, valid only inside reallocate.
	frozen bool
}

// Sim is the simulator instance. Create with New; the zero value is not
// usable. A Sim may be reused across simulations via Reset, which keeps
// all internal buffers warm.
type Sim struct {
	g           *graph.Graph
	linkCap     []float64 // effective capacity per edge (bits/s)
	linkLatency float64

	now     float64
	events  eventHeap
	eventID int

	// active is the dense list of in-flight flows; each flow's slot field
	// is its index here (swap-removal on completion).
	active []*Flow
	nextID int
	// pool holds completed Flow structs for reuse, so steady-state flow
	// churn allocates nothing.
	pool []*Flow

	// linkFlows[e] is the set of active flows crossing edge e, maintained
	// incrementally on add/remove. len(linkFlows[e]) doubles as the
	// per-link active-flow count used by ResolveNodePath.
	linkFlows [][]*Flow
	// usedLinks lists edges with at least one active flow. Entries go
	// stale when a link drains; reallocate compacts the list in place.
	usedLinks []int
	inUsed    []bool

	// Progressive-filling scratch, reused across reallocations. Entries
	// are (re)initialized per call for used links only.
	remaining []float64 // unallocated capacity per edge
	unfrozen  []int     // unfrozen flows per edge
	doneBuf   []*Flow   // drainCompletions scratch

	// ratesDirty marks that flows/capacities changed at the current
	// instant; rates are recomputed lazily before time next advances.
	ratesDirty bool

	// Stats.
	completed      int
	bytesDelivered float64
	byteHops       float64 // Σ bytes × hops: bandwidth-tax numerator

	pathBuf []int // ResolveNodePath scratch
}

// New builds a simulator over the given graph, taking initial link
// capacities from the edges. A negative linkLatency selects
// DefaultLinkLatency; zero disables propagation delay.
func New(g *graph.Graph, linkLatency float64) *Sim {
	s := &Sim{}
	s.Reset(g, linkLatency)
	return s
}

// Reset returns the simulator to the empty state over a (possibly
// different) graph, reusing every internal buffer — the cheap path for
// callers that simulate many scenarios in a loop (MCMC evaluations, OCS
// reconfiguration rounds, sweep points). Pending events are dropped and
// all statistics are zeroed. Flow structs still held by the caller may be
// recycled for flows of the next simulation.
func (s *Sim) Reset(g *graph.Graph, linkLatency float64) {
	if linkLatency < 0 {
		linkLatency = DefaultLinkLatency
	}
	s.g = g
	s.linkLatency = linkLatency
	m := g.M()
	s.linkCap = slices.Grow(s.linkCap[:0], m)[:m]
	for i := 0; i < m; i++ {
		s.linkCap[i] = g.EdgeCap(i)
	}
	s.linkFlows = slices.Grow(s.linkFlows[:0], m)[:m]
	for i := range s.linkFlows {
		if s.linkFlows[i] != nil {
			s.linkFlows[i] = s.linkFlows[i][:0]
		}
	}
	s.inUsed = slices.Grow(s.inUsed[:0], m)[:m]
	for i := range s.inUsed {
		s.inUsed[i] = false
	}
	s.remaining = slices.Grow(s.remaining[:0], m)[:m]
	s.unfrozen = slices.Grow(s.unfrozen[:0], m)[:m]
	s.usedLinks = s.usedLinks[:0]
	for _, f := range s.active {
		f.slot = -1
		s.pool = append(s.pool, f)
	}
	s.active = s.active[:0]
	// Recycle flows awaiting delivery (drained but not finished — disjoint
	// from active) and zero every dropped event so the truncated backing
	// array pins no closures or Flow structs from the previous run.
	for i := range s.events {
		e := &s.events[i]
		if e.kind == evtFinish && e.flow != nil && !e.flow.done {
			s.pool = append(s.pool, e.flow)
		}
		*e = event{}
	}
	s.events = s.events[:0]
	s.eventID = 0
	s.now = 0
	s.nextID = 0
	s.ratesDirty = false
	s.completed = 0
	s.bytesDelivered = 0
	s.byteHops = 0
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Completed returns the number of finished flows.
func (s *Sim) Completed() int { return s.completed }

// BytesDelivered returns the total bytes delivered by finished flows.
func (s *Sim) BytesDelivered() float64 { return s.bytesDelivered }

// BandwidthTax returns Σ(bytes×hops)/Σ(bytes) across finished flows — the
// §5.4 bandwidth-tax metric. Returns 1 when nothing has finished.
func (s *Sim) BandwidthTax() float64 {
	if s.bytesDelivered == 0 {
		return 1
	}
	return s.byteHops / s.bytesDelivered
}

// SetLinkCap changes a link's capacity (0 disables it, e.g. during
// reconfiguration). Flow rates are reallocated before simulated time next
// advances.
func (s *Sim) SetLinkCap(edgeID int, cap float64) {
	if cap < 0 {
		cap = 0
	}
	s.linkCap[edgeID] = cap
	s.ratesDirty = true
}

// LinkCap returns a link's current capacity.
func (s *Sim) LinkCap(edgeID int) float64 { return s.linkCap[edgeID] }

// event types

type eventKind uint8

const (
	evtFn     eventKind = iota // user callback
	evtDrain                   // completion check
	evtFinish                  // deliver a drained flow after hop latency
)

type event struct {
	at   float64
	seq  int // tie-break for determinism
	kind eventKind
	flow *Flow
	fn   func()
}

// eventHeap is a hand-rolled binary min-heap of event values, ordered by
// (at, seq). container/heap is avoided because its interface{} boxing
// allocates on every push/pop.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (s *Sim) pushEvent(e event) {
	e.seq = s.eventID
	s.eventID++
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

func (s *Sim) popEvent() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/flow references
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	s.events = h
	return top
}

// Schedule runs fn at now+delay. Negative delays fire immediately.
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.pushEvent(event{at: s.now + delay, kind: evtFn, fn: fn})
}

// newFlow takes a Flow struct from the free list (or allocates one) and
// initializes it for a fresh transfer. IDs stay monotonically increasing
// even when structs are recycled: completion ties break by ID, so reusing
// IDs would reorder same-instant completions between runs.
func (s *Sim) newFlow(bytes float64, onComplete func(now float64)) *Flow {
	var f *Flow
	if n := len(s.pool); n > 0 {
		f = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
	} else {
		f = &Flow{}
	}
	f.ID = s.nextID
	s.nextID++
	f.Bytes = bytes
	f.Remaining = bytes
	f.Rate = 0
	f.onComplete = onComplete
	f.start = s.now
	f.done = false
	f.slot = -1
	return f
}

// AddFlowPath injects a flow along explicit edge IDs. onComplete may be
// nil. Zero-byte flows complete after path latency only.
func (s *Sim) AddFlowPath(path []int, bytes float64, onComplete func(now float64)) *Flow {
	if bytes < 0 {
		panic("netsim: negative flow size")
	}
	f := s.newFlow(bytes, onComplete)
	f.Path = append(f.Path[:0], path...)
	if bytes == 0 || len(path) == 0 {
		lat := float64(len(path)) * s.linkLatency
		s.pushEvent(event{at: s.now + lat, kind: evtFinish, flow: f})
		return f
	}
	f.uniq = f.uniq[:0]
	for _, id := range f.Path {
		if !slices.Contains(f.uniq, id) {
			f.uniq = append(f.uniq, id)
		}
	}
	f.slot = len(s.active)
	s.active = append(s.active, f)
	for _, id := range f.uniq {
		if !s.inUsed[id] {
			s.usedLinks = append(s.usedLinks, id)
			s.inUsed[id] = true
		}
		s.linkFlows[id] = append(s.linkFlows[id], f)
	}
	s.ratesDirty = true
	return f
}

// removeActive detaches a flow from the rate-allocation structures: the
// dense active list (swap-removal via slots) and every link's adjacency.
func (s *Sim) removeActive(f *Flow) {
	last := len(s.active) - 1
	moved := s.active[last]
	s.active[f.slot] = moved
	moved.slot = f.slot
	s.active[last] = nil
	s.active = s.active[:last]
	f.slot = -1
	for _, id := range f.uniq {
		lf := s.linkFlows[id]
		for i, other := range lf {
			if other == f {
				lf[i] = lf[len(lf)-1]
				lf[len(lf)-1] = nil
				s.linkFlows[id] = lf[:len(lf)-1]
				break
			}
		}
		// usedLinks entries for drained links go stale here; reallocate
		// compacts them.
	}
}

// AddFlowNodes injects a flow along a node path (as produced by the route
// package), resolving each consecutive pair to the least-loaded parallel
// link between them.
func (s *Sim) AddFlowNodes(nodes []int, bytes float64, onComplete func(now float64)) (*Flow, error) {
	path, err := s.resolveNodePath(nodes)
	if err != nil {
		return nil, err
	}
	return s.AddFlowPath(path, bytes, onComplete), nil
}

// AddFlowNodesStriped splits a transfer into parallel sub-flows, one per
// parallel link available along the narrowest hop of the path (capped at
// maxStripes; 0 means no cap). This models NCCL channel striping and the
// paper's load-balancing across TotientPerms parallel links: the pair's
// aggregate rate becomes the sum of the parallel links' fair shares.
// onComplete fires once, when the last stripe lands.
func (s *Sim) AddFlowNodesStriped(nodes []int, bytes float64, maxStripes int, onComplete func(now float64)) ([]*Flow, error) {
	stripes := s.pathMultiplicity(nodes)
	if stripes < 1 {
		stripes = 1
	}
	if maxStripes > 0 && stripes > maxStripes {
		stripes = maxStripes
	}
	per := bytes / float64(stripes)
	remaining := stripes
	var flows []*Flow
	for i := 0; i < stripes; i++ {
		f, err := s.AddFlowNodes(nodes, per, func(now float64) {
			remaining--
			if remaining == 0 && onComplete != nil {
				onComplete(now)
			}
		})
		if err != nil {
			return flows, err
		}
		flows = append(flows, f)
	}
	return flows, nil
}

// pathMultiplicity returns the minimum number of usable parallel links
// over the hops of a node path.
func (s *Sim) pathMultiplicity(nodes []int) int {
	min := 0
	for i := 0; i+1 < len(nodes); i++ {
		m := 0
		for _, id := range s.g.Out(nodes[i]) {
			if s.g.EdgeTo(id) == nodes[i+1] && s.linkCap[id] > 0 {
				m++
			}
		}
		if min == 0 || m < min {
			min = m
		}
	}
	return min
}

// ResolveNodePath converts a node path into edge IDs, choosing for each
// hop the parallel link with the fewest active flows (cheap load
// balancing across TotientPerms parallel rings).
func (s *Sim) ResolveNodePath(nodes []int) ([]int, error) {
	path, err := s.resolveNodePath(nodes)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), path...), nil
}

// resolveNodePath is ResolveNodePath into a reused scratch buffer; the
// result is valid until the next resolve.
func (s *Sim) resolveNodePath(nodes []int) ([]int, error) {
	path := s.pathBuf[:0]
	for i := 0; i+1 < len(nodes); i++ {
		bestID, bestLoad := -1, math.MaxInt32
		for _, id := range s.g.Out(nodes[i]) {
			if s.g.EdgeTo(id) != nodes[i+1] || s.linkCap[id] <= 0 {
				continue
			}
			// Per-link load is maintained incrementally, making each hop
			// O(out-degree) instead of a scan over every active flow.
			if load := len(s.linkFlows[id]); load < bestLoad {
				bestID, bestLoad = id, load
			}
		}
		if bestID == -1 {
			s.pathBuf = path
			return nil, fmt.Errorf("netsim: no usable link %d -> %d", nodes[i], nodes[i+1])
		}
		path = append(path, bestID)
	}
	s.pathBuf = path
	return path, nil
}

// flushRates recomputes fair-share rates if flows or capacities changed at
// the current instant. Called before simulated time advances, so a burst
// of same-time arrivals costs one progressive-filling pass.
func (s *Sim) flushRates() {
	if s.ratesDirty {
		s.ratesDirty = false
		s.reallocate()
	}
}

// reallocate recomputes max-min fair rates by progressive filling over the
// incrementally maintained link→flow adjacency. It allocates nothing: all
// working state lives in flat per-edge slices reused across calls, and
// iteration order (usedLinks, active, linkFlows) is slice-deterministic.
func (s *Sim) reallocate() {
	// Compact stale entries (links whose last flow departed).
	used := s.usedLinks[:0]
	for _, id := range s.usedLinks {
		if len(s.linkFlows[id]) > 0 {
			used = append(used, id)
		} else {
			s.inUsed[id] = false
		}
	}
	s.usedLinks = used
	if len(s.active) == 0 {
		return
	}
	for _, id := range s.usedLinks {
		s.remaining[id] = s.linkCap[id]
		s.unfrozen[id] = len(s.linkFlows[id])
	}
	for _, f := range s.active {
		f.Rate = 0
		f.frozen = false
	}
	left := len(s.active)
	for left > 0 {
		// Find bottleneck link: min remaining/unfrozen, ties to the lowest
		// edge ID.
		bottleneck := -1
		fair := math.Inf(1)
		for _, id := range s.usedLinks {
			cnt := s.unfrozen[id]
			if cnt == 0 {
				continue
			}
			fr := s.remaining[id] / float64(cnt)
			if fr < fair || (fr == fair && (bottleneck == -1 || id < bottleneck)) {
				fair = fr
				bottleneck = id
			}
		}
		if bottleneck == -1 {
			// Flows not constrained by any shared link (shouldn't happen:
			// every flow has >= 1 link). Freeze them at +Inf — completes
			// instantly.
			for _, f := range s.active {
				if !f.frozen {
					f.Rate = math.Inf(1)
					f.frozen = true
				}
			}
			break
		}
		// Freeze every unfrozen flow through the bottleneck at the fair
		// rate, and charge their rate to all their other links.
		for _, f := range s.linkFlows[bottleneck] {
			if f.frozen {
				continue
			}
			f.Rate = fair
			f.frozen = true
			left--
			for _, id := range f.uniq {
				s.remaining[id] -= fair
				if s.remaining[id] < 0 {
					s.remaining[id] = 0
				}
				s.unfrozen[id]--
			}
		}
	}
	s.scheduleNextCompletion()
}

// completionEvent is lazily validated: we re-check at fire time whether
// the flow actually finished (rates may have changed since scheduling).
func (s *Sim) scheduleNextCompletion() {
	soonest := math.Inf(1)
	for _, f := range s.active {
		if f.Rate <= 0 {
			continue
		}
		t := f.Remaining * 8 / f.Rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	s.pushEvent(event{at: s.now + soonest, kind: evtDrain})
}

// advanceFlows progresses all flow byte counters to the current time,
// given the time elapsed since the last progress point.
func (s *Sim) advanceFlows(elapsed float64) {
	if elapsed <= 0 {
		return
	}
	for _, f := range s.active {
		if f.Rate > 0 {
			f.Remaining -= f.Rate * elapsed / 8
			// Snap float residue: completion events land at times computed
			// from these very rates, so after the event fires the true
			// remainder is a rounding artifact. A millibyte is far below
			// any physical transfer granularity and far above the relative
			// epsilon of any flow size we simulate (< 1e13 bytes).
			if f.Remaining < completionTolerance {
				f.Remaining = 0
			}
		}
	}
}

// drainCompletions finishes any flow whose bytes ran out.
func (s *Sim) drainCompletions() {
	done := s.doneBuf[:0]
	for _, f := range s.active {
		if f.Remaining <= completionTolerance {
			done = append(done, f)
		}
	}
	if len(done) == 0 {
		// Spurious wake-up after a rate change; reschedule.
		s.scheduleNextCompletion()
		return
	}
	// Deterministic order: injection order (IDs are monotonic).
	slices.SortFunc(done, func(a, b *Flow) int { return a.ID - b.ID })
	for _, f := range done {
		s.removeActive(f)
		lat := float64(len(f.Path)) * s.linkLatency
		s.pushEvent(event{at: s.now + lat, kind: evtFinish, flow: f})
	}
	for i := range done {
		done[i] = nil
	}
	s.doneBuf = done[:0]
	s.ratesDirty = true
}

func (s *Sim) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	s.completed++
	s.bytesDelivered += f.Bytes
	s.byteHops += f.Bytes * float64(len(f.Path))
	cb := f.onComplete
	f.onComplete = nil
	// Recycle the struct before the callback: a callback that injects new
	// flows may reuse it immediately.
	s.pool = append(s.pool, f)
	if cb != nil {
		cb(s.now)
	}
}

func (s *Sim) dispatch(e event) {
	switch e.kind {
	case evtFn:
		e.fn()
	case evtDrain:
		s.drainCompletions()
	case evtFinish:
		s.finish(e.flow)
	}
}

// Step executes the next pending event. Returns false when no events
// remain.
func (s *Sim) Step() bool {
	s.flushRates()
	if len(s.events) == 0 {
		return false
	}
	e := s.popEvent()
	s.advanceFlows(e.at - s.now)
	s.now = e.at
	s.dispatch(e)
	return true
}

// Run executes events until the queue is empty or the time limit is
// passed (limit <= 0 means no limit). Returns the final time.
func (s *Sim) Run(limit float64) float64 {
	for {
		s.flushRates()
		if len(s.events) == 0 {
			break
		}
		if limit > 0 && s.events[0].at > limit {
			s.advanceFlows(limit - s.now)
			s.now = limit
			break
		}
		e := s.popEvent()
		s.advanceFlows(e.at - s.now)
		s.now = e.at
		s.dispatch(e)
	}
	return s.now
}

// ActiveFlows returns the number of in-flight flows.
func (s *Sim) ActiveFlows() int { return len(s.active) }

// Idle reports whether no flows are active and no events are pending.
func (s *Sim) Idle() bool { return len(s.active) == 0 && len(s.events) == 0 }
