package netsim

import (
	"math"
	"testing"

	"topoopt/internal/graph"
)

// line builds a chain 0-1-2-…-n-1 with the given capacity.
func line(n int, cap float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddDuplex(i, i+1, cap)
	}
	return g
}

func TestSingleFlowCompletionTime(t *testing.T) {
	g := line(2, 100e9) // 100 Gbps
	s := New(g, 1e-6)
	var doneAt float64
	s.AddFlowNodes([]int{0, 1}, 125e6, func(now float64) { doneAt = now }) // 1 Gbit
	s.Run(0)
	want := 1e9/100e9 + 1e-6 // 10 ms + 1 µs
	if math.Abs(doneAt-want) > 1e-9 {
		t.Errorf("completion at %g, want %g", doneAt, want)
	}
	if s.Completed() != 1 || s.BytesDelivered() != 125e6 {
		t.Errorf("stats wrong: %d flows, %g bytes", s.Completed(), s.BytesDelivered())
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	g := line(2, 100e9)
	s := New(g, 0)
	var t1, t2 float64
	s.AddFlowNodes([]int{0, 1}, 125e6, func(now float64) { t1 = now })
	s.AddFlowNodes([]int{0, 1}, 125e6, func(now float64) { t2 = now })
	s.Run(0)
	// Fair share 50 Gbps each: both finish at 2·(1Gbit/100Gbps) = 20 ms.
	want := 0.02
	if math.Abs(t1-want) > 1e-6 || math.Abs(t2-want) > 1e-6 {
		t.Errorf("completions %g/%g, want %g", t1, t2, want)
	}
}

func TestShortFlowFreesBandwidth(t *testing.T) {
	g := line(2, 100e9)
	s := New(g, 0)
	var tSmall, tBig float64
	s.AddFlowNodes([]int{0, 1}, 125e6, func(now float64) { tBig = now })    // 1 Gbit
	s.AddFlowNodes([]int{0, 1}, 12.5e6, func(now float64) { tSmall = now }) // 0.1 Gbit
	s.Run(0)
	// Shared 50/50: small finishes at 0.1G/50G = 2 ms having moved 0.1 Gbit;
	// big then has 0.9 Gbit left at 100 Gbps → 9 ms more → 11 ms total.
	if math.Abs(tSmall-0.002) > 1e-6 {
		t.Errorf("small done at %g, want 0.002", tSmall)
	}
	if math.Abs(tBig-0.011) > 1e-6 {
		t.Errorf("big done at %g, want 0.011", tBig)
	}
}

func TestMaxMinFairness(t *testing.T) {
	// Three-node chain: flow A spans both links, flows B and C use one
	// link each. Max-min: B and C get 2/3 C... actually with A+B on link1
	// and A+C on link2: fair share splits each link 50/50, then B and C
	// can't reuse A's leftover (A is bottlenecked at 50). B gets 50, C 50.
	g := line(3, 100e9)
	s := New(g, 0)
	var ta, tb, tc float64
	s.AddFlowNodes([]int{0, 1, 2}, 125e6, func(now float64) { ta = now })
	s.AddFlowNodes([]int{0, 1}, 125e6, func(now float64) { tb = now })
	s.AddFlowNodes([]int{1, 2}, 125e6, func(now float64) { tc = now })
	s.Run(0)
	// All at 50 Gbps → 1Gbit/50Gbps = 20 ms; A also 20 ms.
	for _, tt := range []float64{ta, tb, tc} {
		if math.Abs(tt-0.02) > 1e-6 {
			t.Errorf("completions %g %g %g, want all 0.02", ta, tb, tc)
		}
	}
}

func TestWaterfillingGivesLeftoverToUnbottlenecked(t *testing.T) {
	// Link1: flows A,B. Link2: flow A only (A spans both), capacity of
	// link2 much smaller: A bottlenecked at link2 (10G), B should get 90G.
	g := graph.New(3)
	g.AddEdge(0, 1, 100e9)
	g.AddEdge(1, 2, 10e9)
	s := New(g, 0)
	var ta, tb float64
	s.AddFlowNodes([]int{0, 1, 2}, 12.5e6, func(now float64) { ta = now }) // 0.1 Gbit
	s.AddFlowNodes([]int{0, 1}, 112.5e6, func(now float64) { tb = now })   // 0.9 Gbit
	s.Run(0)
	// A: 0.1G/10G = 10 ms. B: 0.9G/90G = 10 ms.
	if math.Abs(ta-0.01) > 1e-6 || math.Abs(tb-0.01) > 1e-6 {
		t.Errorf("ta=%g tb=%g, want 0.01 both", ta, tb)
	}
}

func TestZeroByteFlowPaysLatencyOnly(t *testing.T) {
	g := line(3, 1e9)
	s := New(g, 2e-6)
	var done float64
	s.AddFlowNodes([]int{0, 1, 2}, 0, func(now float64) { done = now })
	s.Run(0)
	if math.Abs(done-4e-6) > 1e-12 {
		t.Errorf("zero-byte completion %g, want 4e-6", done)
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New(graph.New(1), 0)
	var order []int
	s.Schedule(2, func() { order = append(order, 2) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(1, func() { order = append(order, 11) }) // same time: FIFO
	s.Schedule(3, func() { order = append(order, 3) })
	s.Run(0)
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("final time %g, want 3", s.Now())
	}
}

func TestRunLimitStopsEarly(t *testing.T) {
	g := line(2, 1e9)
	s := New(g, 0)
	completed := false
	s.AddFlowNodes([]int{0, 1}, 1e9, func(float64) { completed = true }) // 8 s at 1 Gbps
	end := s.Run(1.0)
	if completed {
		t.Error("flow should not finish within limit")
	}
	if end != 1.0 {
		t.Errorf("end = %g, want 1.0", end)
	}
	// Continue to completion.
	s.Run(0)
	if !completed {
		t.Error("flow should finish after resuming")
	}
}

func TestSetLinkCapPausesFlow(t *testing.T) {
	g := line(2, 100e9)
	s := New(g, 0)
	var done float64
	f, err := s.AddFlowNodes([]int{0, 1}, 125e6, func(now float64) { done = now })
	if err != nil {
		t.Fatal(err)
	}
	// At t=5ms (half transferred), disable the link for 10 ms.
	s.Schedule(0.005, func() {
		s.SetLinkCap(f.Path[0], 0)
		s.Schedule(0.010, func() { s.SetLinkCap(f.Path[0], 100e9) })
	})
	s.Run(0)
	want := 0.020 // 5ms + 10ms pause + 5ms
	if math.Abs(done-want) > 1e-6 {
		t.Errorf("done at %g, want %g", done, want)
	}
}

func TestResolveNodePathBalancesParallelLinks(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1e9)
	g.AddEdge(0, 1, 1e9)
	s := New(g, 0)
	f1, _ := s.AddFlowNodes([]int{0, 1}, 1e6, nil)
	f2, _ := s.AddFlowNodes([]int{0, 1}, 1e6, nil)
	if f1.Path[0] == f2.Path[0] {
		t.Error("second flow should take the other parallel link")
	}
	s.Run(0)
}

func TestResolveNodePathErrors(t *testing.T) {
	g := line(2, 1e9)
	s := New(g, 0)
	if _, err := s.AddFlowNodes([]int{0, 1, 0, 1}, 1, nil); err != nil {
		t.Errorf("valid multi-hop rejected: %v", err)
	}
	g2 := graph.New(3)
	g2.AddEdge(0, 1, 1e9)
	s2 := New(g2, 0)
	if _, err := s2.AddFlowNodes([]int{0, 2}, 1, nil); err == nil {
		t.Error("expected error for missing link")
	}
}

func TestBandwidthTaxAccounting(t *testing.T) {
	g := line(3, 1e9)
	s := New(g, 0)
	s.AddFlowNodes([]int{0, 1, 2}, 1000, nil) // 2 hops
	s.AddFlowNodes([]int{0, 1}, 1000, nil)    // 1 hop
	s.Run(0)
	// tax = (1000·2 + 1000·1) / 2000 = 1.5
	if got := s.BandwidthTax(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("tax = %g, want 1.5", got)
	}
}

func TestManyFlowsConservation(t *testing.T) {
	// 8-node ring, 64 random flows; total delivered must equal injected.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddDuplex(i, (i+1)%8, 10e9)
	}
	s := New(g, 1e-6)
	var injected float64
	for i := 0; i < 64; i++ {
		src := i % 8
		dst := (i*3 + 1) % 8
		if src == dst {
			continue
		}
		// Route the long way around via BFS path.
		p := g.ShortestPath(src, dst)
		nodes := p.Nodes(g, src)
		bytes := float64(1e6 * (i + 1))
		injected += bytes
		if _, err := s.AddFlowNodes(nodes, bytes, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0)
	if s.ActiveFlows() != 0 {
		t.Fatalf("%d flows stuck", s.ActiveFlows())
	}
	if math.Abs(s.BytesDelivered()-injected) > 1 {
		t.Errorf("delivered %g, injected %g", s.BytesDelivered(), injected)
	}
}

func TestIdle(t *testing.T) {
	s := New(graph.New(1), 0)
	if !s.Idle() {
		t.Error("new sim should be idle")
	}
	s.Schedule(1, func() {})
	if s.Idle() {
		t.Error("pending event should not be idle")
	}
	s.Run(0)
	if !s.Idle() {
		t.Error("drained sim should be idle")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int) {
		g := graph.New(6)
		for i := 0; i < 6; i++ {
			g.AddDuplex(i, (i+1)%6, 25e9)
		}
		s := New(g, 1e-6)
		for i := 0; i < 30; i++ {
			src, dst := i%6, (i+2)%6
			p := g.ShortestPath(src, dst).Nodes(g, src)
			s.AddFlowNodes(p, float64(1e5*(i%7+1)), nil)
		}
		end := s.Run(0)
		return end, s.Completed()
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Errorf("non-deterministic: (%g,%d) vs (%g,%d)", e1, c1, e2, c2)
	}
}

func TestStripedFlowUsesParallelLinks(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 100e9)
	g.AddEdge(0, 1, 100e9)
	g.AddEdge(0, 1, 100e9)
	g.AddEdge(0, 1, 100e9)
	s := New(g, 0)
	var done float64
	fs, err := s.AddFlowNodesStriped([]int{0, 1}, 400e6, 0, func(now float64) { done = now })
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 {
		t.Fatalf("stripes = %d, want 4", len(fs))
	}
	s.Run(0)
	// 3.2 Gbit over 4×100 Gbps = 8 ms (vs 32 ms unstriped).
	if math.Abs(done-0.008) > 1e-6 {
		t.Errorf("striped completion %g, want 0.008", done)
	}
}

func TestStripedFlowCap(t *testing.T) {
	g := graph.New(2)
	for i := 0; i < 6; i++ {
		g.AddEdge(0, 1, 1e9)
	}
	s := New(g, 0)
	fs, err := s.AddFlowNodesStriped([]int{0, 1}, 600, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Errorf("capped stripes = %d, want 2", len(fs))
	}
	s.Run(0)
}

func TestStripedFlowNarrowestHop(t *testing.T) {
	// 0->1 has 4 links, 1->2 has 2: stripes limited to 2.
	g := graph.New(3)
	for i := 0; i < 4; i++ {
		g.AddEdge(0, 1, 1e9)
	}
	g.AddEdge(1, 2, 1e9)
	g.AddEdge(1, 2, 1e9)
	s := New(g, 0)
	fs, err := s.AddFlowNodesStriped([]int{0, 1, 2}, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Errorf("stripes = %d, want 2 (narrowest hop)", len(fs))
	}
	s.Run(0)
}

func TestStripedCompletionFiresOnce(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1e9)
	g.AddEdge(0, 1, 1e9)
	s := New(g, 0)
	fires := 0
	s.AddFlowNodesStriped([]int{0, 1}, 1000, 0, func(float64) { fires++ })
	s.Run(0)
	if fires != 1 {
		t.Errorf("onComplete fired %d times, want 1", fires)
	}
}
