package netsim

import (
	"testing"

	"topoopt/internal/graph"
)

// The benchmark scenarios mirror the traffic shapes the simulator sees in
// production use: ring AllReduce (the TopoOpt fast path), all-to-all MP
// (worst-case link sharing), and reconfiguration churn (OCS sweeps). Each
// iteration runs one full scenario to completion, so ns/op and allocs/op
// track the whole arrival→reallocate→complete pipeline. `make bench`
// records the results in BENCH_netsim.json; see DESIGN.md ("Simulator
// performance") for how these gate regressions.

// ringGraph builds a directed ring over n nodes with `parallel` links per
// hop (the shape TopologyFinder emits for a +1 ring with duplicated
// permutations).
func ringGraph(n, parallel int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for p := 0; p < parallel; p++ {
			g.AddEdge(i, (i+1)%n, 100e9)
		}
	}
	return g
}

// runRingAllReduce injects one ring-AllReduce step per node (every node
// sends to its successor) and drains the simulator.
func runRingAllReduce(b *testing.B, n int) {
	b.Helper()
	g := ringGraph(n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(g, 1e-6)
		for v := 0; v < n; v++ {
			if _, err := s.AddFlowNodes([]int{v, (v + 1) % n}, float64(1e6+v), nil); err != nil {
				b.Fatal(err)
			}
		}
		s.Run(0)
		if s.ActiveFlows() != 0 {
			b.Fatal("flows stuck")
		}
	}
}

func BenchmarkNetsimRingAllReduce32(b *testing.B)  { runRingAllReduce(b, 32) }
func BenchmarkNetsimRingAllReduce128(b *testing.B) { runRingAllReduce(b, 128) }

// BenchmarkNetsimAllToAll32 sends a flow between every ordered pair of a
// 32-node ring (multi-hop shortest paths), the heaviest link-sharing
// pattern: every reallocation touches O(n) links with O(n²) flows.
func BenchmarkNetsimAllToAll32(b *testing.B) {
	const n = 32
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddDuplex(i, (i+1)%n, 100e9)
	}
	// Precompute node paths outside the timed loop.
	var paths [][]int
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			paths = append(paths, g.ShortestPath(s, d).Nodes(g, s))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(g, 1e-6)
		for j, p := range paths {
			if _, err := s.AddFlowNodes(p, float64(1e5*(j%7+1)), nil); err != nil {
				b.Fatal(err)
			}
		}
		s.Run(0)
		if s.ActiveFlows() != 0 {
			b.Fatal("flows stuck")
		}
	}
}

// BenchmarkNetsimReconfigChurn models an OCS sweep: long-lived flows while
// link capacities are rewritten at successive instants, so every toggle
// pays a full reallocation against a stable flow population once time
// advances past it. This is the reallocation-dominated scenario of the
// ISSUE's acceptance criteria.
func BenchmarkNetsimReconfigChurn(b *testing.B) {
	const n = 64
	g := ringGraph(n, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(g, 0)
		for v := 0; v < n; v++ {
			// Big flows that outlive the churn below.
			if _, err := s.AddFlowNodes([]int{v, (v + 1) % n}, 1e12, nil); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < 100; r++ {
			r := r
			s.Schedule(float64(r+1)*1e-6, func() {
				if r%2 == 0 {
					s.SetLinkCap(r%n, 50e9)
				} else {
					s.SetLinkCap(r%n, 100e9)
				}
			})
		}
		s.Run(200e-6)
		if s.ActiveFlows() != n {
			b.Fatal("long flows should outlive the churn window")
		}
	}
}

// BenchmarkNetsimRingAllReduceReset is the ring scenario with simulator
// reuse via Reset — the steady-state path used by MCMC loops, sweep points
// and OCS rounds. After warm-up it should allocate (almost) nothing.
func BenchmarkNetsimRingAllReduceReset(b *testing.B) {
	const n = 32
	g := ringGraph(n, 2)
	s := New(g, 1e-6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(g, 1e-6)
		for v := 0; v < n; v++ {
			if _, err := s.AddFlowNodes([]int{v, (v + 1) % n}, float64(1e6+v), nil); err != nil {
				b.Fatal(err)
			}
		}
		s.Run(0)
		if s.ActiveFlows() != 0 {
			b.Fatal("flows stuck")
		}
	}
}

// BenchmarkNetsimArrivalChurn stresses flow add/remove bookkeeping: waves
// of short flows arrive while a backlog of long flows keeps every link
// busy, so each arrival and each completion triggers a reallocation over a
// large active set.
func BenchmarkNetsimArrivalChurn(b *testing.B) {
	const n = 32
	g := ringGraph(n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(g, 0)
		for v := 0; v < n; v++ {
			if _, err := s.AddFlowNodes([]int{v, (v + 1) % n}, 1e9, nil); err != nil {
				b.Fatal(err)
			}
		}
		// Ten waves of short flows, each wave scheduled mid-run.
		for w := 0; w < 10; w++ {
			w := w
			s.Schedule(float64(w)*1e-3, func() {
				for v := 0; v < n; v++ {
					s.AddFlowNodes([]int{v, (v + 1) % n}, 1e5, nil)
				}
			})
		}
		s.Run(0)
		if s.ActiveFlows() != 0 {
			b.Fatal("flows stuck")
		}
	}
}
