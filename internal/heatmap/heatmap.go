// Package heatmap renders traffic matrices as ASCII heatmaps — the
// textual analogue of the paper's Figures 1, 4, 8, 9. Intensity is
// log-scaled, matching the paper's log colorbars (0.04 GB … 44 GB).
package heatmap

import (
	"fmt"
	"math"
	"strings"

	"topoopt/internal/traffic"
)

// ramp is the intensity ramp from empty to max.
var ramp = []byte(" .:-=+*#%@")

// Render produces an ASCII heatmap of tm with row/column indices, one
// character per cell, log-scaled between the smallest and largest nonzero
// entries.
func Render(tm traffic.Matrix) string {
	n := tm.N()
	var minNZ, maxNZ float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			v := float64(tm[s][d])
			if v <= 0 {
				continue
			}
			if minNZ == 0 || v < minNZ {
				minNZ = v
			}
			if v > maxNZ {
				maxNZ = v
			}
		}
	}
	var b strings.Builder
	b.WriteString("    ")
	for d := 0; d < n; d++ {
		b.WriteByte(digit(d))
	}
	b.WriteByte('\n')
	for s := 0; s < n; s++ {
		fmt.Fprintf(&b, "%3d ", s)
		for d := 0; d < n; d++ {
			b.WriteByte(cell(float64(tm[s][d]), minNZ, maxNZ))
		}
		b.WriteByte('\n')
	}
	if maxNZ > 0 {
		fmt.Fprintf(&b, "scale: ' '=0  '%c'=%s  '%c'=%s (log)\n",
			ramp[1], human(minNZ), ramp[len(ramp)-1], human(maxNZ))
	}
	return b.String()
}

func cell(v, minNZ, maxNZ float64) byte {
	if v <= 0 {
		return ramp[0]
	}
	if maxNZ <= minNZ {
		return ramp[len(ramp)-1]
	}
	frac := math.Log(v/minNZ) / math.Log(maxNZ/minNZ)
	idx := 1 + int(frac*float64(len(ramp)-2)+0.5)
	if idx < 1 {
		idx = 1
	}
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}

func digit(d int) byte {
	return byte('0' + d%10)
}

func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fGB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fKB", v/1e3)
	}
	return fmt.Sprintf("%.0fB", v)
}

// Human exposes byte formatting for experiment output.
func Human(v float64) string { return human(v) }
