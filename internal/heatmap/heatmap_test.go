package heatmap

import (
	"strings"
	"testing"

	"topoopt/internal/traffic"
)

func TestRenderRing(t *testing.T) {
	tm := traffic.NewMatrix(4)
	for i := 0; i < 4; i++ {
		tm.Add(i, (i+1)%4, 1e9)
	}
	out := Render(tm)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 rows + scale line.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Diagonal cells filled with the max symbol, everything else blank.
	row0 := lines[1][4:]
	if row0[1] != '@' {
		t.Errorf("cell (0,1) = %q, want '@'", row0[1])
	}
	if row0[0] != ' ' || row0[2] != ' ' {
		t.Errorf("empty cells should be blank: %q", row0)
	}
}

func TestRenderLogScale(t *testing.T) {
	tm := traffic.NewMatrix(3)
	tm.Add(0, 1, 1e3)
	tm.Add(0, 2, 1e9)
	out := Render(tm)
	lines := strings.Split(out, "\n")
	row0 := lines[1][4:]
	if row0[2] != '@' {
		t.Errorf("max cell should be '@': %q", row0)
	}
	if row0[1] == '@' || row0[1] == ' ' {
		t.Errorf("min nonzero cell should be a low-ramp symbol: %q", row0)
	}
	if !strings.Contains(out, "scale:") {
		t.Error("missing scale legend")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(traffic.NewMatrix(2))
	if strings.Contains(out, "scale:") {
		t.Error("empty matrix should have no scale line")
	}
}

func TestHuman(t *testing.T) {
	cases := map[float64]string{
		5:      "5B",
		2e3:    "2.0KB",
		3.5e6:  "3.5MB",
		4.4e10: "44.0GB",
	}
	for v, want := range cases {
		if got := Human(v); got != want {
			t.Errorf("Human(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestUniformMatrixSingleSymbol(t *testing.T) {
	tm := traffic.NewMatrix(3)
	tm.Add(0, 1, 100)
	tm.Add(1, 2, 100)
	out := Render(tm)
	if !strings.Contains(out, "@") {
		t.Error("uniform nonzero should render at max intensity")
	}
}
