// Package graph provides the directed-multigraph substrate used by every
// other TopoOpt subsystem: adjacency bookkeeping with parallel links,
// unweighted and weighted shortest paths, Yen's k-shortest paths, diameter
// and connectivity queries, and Edmonds' blossom maximum-weight matching
// (used by TOPOLOGY FINDER to build the MP sub-topology).
//
// Nodes are dense integers 0..N-1 (server IDs). Edges are directed and may
// be parallel; physical fibers are duplex, so topology builders normally
// call AddDuplex. Each edge carries a capacity in bits/s, which the network
// simulator interprets as link bandwidth.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed link of a Graph. ID is dense and unique per graph and
// identifies the physical (directional) link in the simulator.
type Edge struct {
	ID   int
	From int
	To   int
	Cap  float64 // capacity in bits/s
}

// Graph is a directed multigraph on nodes 0..N-1. The zero value is an
// empty graph with no nodes; use New to allocate one with n nodes.
type Graph struct {
	n     int
	edges []Edge
	out   [][]int // node -> edge IDs leaving it
	in    [][]int // node -> edge IDs entering it
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge adds a directed edge from -> to with the given capacity and
// returns its ID. Self-loops are rejected because no TopoOpt fabric has
// them and they break path-length accounting.
func (g *Graph) AddEdge(from, to int, cap float64) int {
	if from == to {
		panic(fmt.Sprintf("graph: self-loop at node %d", from))
	}
	g.checkNode(from)
	g.checkNode(to)
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Cap: cap})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddDuplex adds a pair of directed edges (a->b, b->a) modelling one duplex
// fiber, and returns both edge IDs.
func (g *Graph) AddDuplex(a, b int, cap float64) (int, int) {
	return g.AddEdge(a, b, cap), g.AddEdge(b, a, cap)
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// EdgeTo returns the head node of the edge with the given ID. It avoids
// copying the whole Edge struct on hot paths (netsim path resolution).
func (g *Graph) EdgeTo(id int) int { return g.edges[id].To }

// EdgeFrom returns the tail node of the edge with the given ID.
func (g *Graph) EdgeFrom(id int) int { return g.edges[id].From }

// EdgeCap returns the capacity of the edge with the given ID.
func (g *Graph) EdgeCap(id int) float64 { return g.edges[id].Cap }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Out returns the IDs of edges leaving node v.
func (g *Graph) Out(v int) []int { g.checkNode(v); return g.out[v] }

// In returns the IDs of edges entering node v.
func (g *Graph) In(v int) []int { g.checkNode(v); return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v int) int { g.checkNode(v); return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int) int { g.checkNode(v); return len(g.in[v]) }

// HasEdge reports whether at least one directed edge from -> to exists.
func (g *Graph) HasEdge(from, to int) bool {
	g.checkNode(from)
	g.checkNode(to)
	for _, id := range g.out[from] {
		if g.edges[id].To == to {
			return true
		}
	}
	return false
}

// Multiplicity returns the number of parallel directed edges from -> to.
func (g *Graph) Multiplicity(from, to int) int {
	g.checkNode(from)
	g.checkNode(to)
	m := 0
	for _, id := range g.out[from] {
		if g.edges[id].To == to {
			m++
		}
	}
	return m
}

// Neighbors returns the distinct nodes reachable from v by one edge, in
// ascending order.
func (g *Graph) Neighbors(v int) []int {
	g.checkNode(v)
	seen := make(map[int]bool)
	for _, id := range g.out[v] {
		seen[g.edges[id].To] = true
	}
	ns := make([]int, 0, len(seen))
	for u := range seen {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for v := 0; v < g.n; v++ {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// Union adds every edge of other (same node count required) into g,
// preserving capacities. Edge IDs of other are not preserved.
func (g *Graph) Union(other *Graph) {
	if other.n != g.n {
		panic("graph: union of graphs with different node counts")
	}
	for _, e := range other.edges {
		g.AddEdge(e.From, e.To, e.Cap)
	}
}

func (g *Graph) checkNode(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// Path is a sequence of edge IDs forming a walk. Nodes traversed are
// implied by the edges.
type Path []int

// Nodes expands a path starting at src into the node sequence it visits.
func (p Path) Nodes(g *Graph, src int) []int {
	nodes := []int{src}
	at := src
	for _, id := range p {
		e := g.Edge(id)
		if e.From != at {
			panic(fmt.Sprintf("graph: broken path at edge %d (from %d, at %d)", id, e.From, at))
		}
		at = e.To
		nodes = append(nodes, at)
	}
	return nodes
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int { return len(p) }

// BFS computes unweighted hop distances from src to every node. Unreachable
// nodes get distance -1. parentEdge[v] is the edge used to first reach v
// (-1 for src and unreachable nodes).
func (g *Graph) BFS(src int) (dist []int, parentEdge []int) {
	g.checkNode(src)
	dist = make([]int, g.n)
	parentEdge = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parentEdge[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.out[v] {
			u := g.edges[id].To
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				parentEdge[u] = id
				queue = append(queue, u)
			}
		}
	}
	return dist, parentEdge
}

// ShortestPath returns a minimum-hop path from src to dst, or nil if dst is
// unreachable. An empty (non-nil) path is returned when src == dst.
func (g *Graph) ShortestPath(src, dst int) Path {
	g.checkNode(dst)
	if src == dst {
		return Path{}
	}
	dist, parent := g.BFS(src)
	if dist[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		id := parent[v]
		rev = append(rev, id)
		v = g.edges[id].From
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p
}

// Connected reports whether every node is reachable from node 0 following
// directed edges. For the duplex graphs TopoOpt builds this coincides with
// (weak and strong) connectivity.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum finite hop distance over all node pairs and
// whether the graph is strongly connected. For a disconnected graph the
// returned diameter ignores unreachable pairs.
func (g *Graph) Diameter() (int, bool) {
	diam := 0
	connected := true
	for v := 0; v < g.n; v++ {
		dist, _ := g.BFS(v)
		for u, d := range dist {
			if u == v {
				continue
			}
			if d == -1 {
				connected = false
				continue
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, connected
}

// AvgPathLength returns the mean hop distance over all ordered reachable
// pairs (excluding self-pairs). Returns 0 for graphs with < 2 nodes.
func (g *Graph) AvgPathLength() float64 {
	total, count := 0, 0
	for v := 0; v < g.n; v++ {
		dist, _ := g.BFS(v)
		for u, d := range dist {
			if u != v && d >= 0 {
				total += d
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// PathLengthHistogram returns counts of hop distances over all ordered
// reachable pairs: hist[h] = number of pairs at distance h.
func (g *Graph) PathLengthHistogram() []int {
	var hist []int
	for v := 0; v < g.n; v++ {
		dist, _ := g.BFS(v)
		for u, d := range dist {
			if u == v || d < 0 {
				continue
			}
			for len(hist) <= d {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	return hist
}
