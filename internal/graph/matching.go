package graph

// Maximum-weight matching in general graphs (Edmonds' blossom algorithm).
//
// TOPOLOGY FINDER (Algorithm 1, line 14) repeatedly takes a maximum-weight
// matching of the residual MP demand to build the MP sub-topology. This file
// implements the O(n^3) primal-dual blossom algorithm following Galil's
// exposition ("Efficient algorithms for finding maximum matching in graphs",
// ACM Computing Surveys 1986), in the arrangement popularised by
// van Rantwijk's reference implementation. Weights may be arbitrary
// nonnegative floats; ties are resolved deterministically by edge order.

// MatchEdge is an undirected weighted edge given to MaxWeightMatching.
type MatchEdge struct {
	U, V   int
	Weight float64
}

// MaxWeightMatching computes a matching of maximum total weight over n
// vertices (0..n-1). It returns mate where mate[v] is the vertex matched to
// v, or -1 if v is unmatched. If maxCardinality is true, only matchings of
// maximum cardinality are considered (not needed by TopologyFinder but
// exposed for completeness and testing).
func MaxWeightMatching(n int, edges []MatchEdge, maxCardinality bool) []int {
	m := newMatcher(n, edges, maxCardinality)
	return m.solve()
}

type matcher struct {
	nvertex int
	nedge   int
	edges   []MatchEdge
	maxcard bool

	// endpoint[p]: vertex at endpoint p; endpoints 2k and 2k+1 belong to
	// edge k.
	endpoint []int
	// neighbend[v]: remote endpoints of edges incident to v.
	neighbend [][]int

	mate     []int // vertex -> remote endpoint of matched edge, or -1
	label    []int // (vertex|blossom) -> 0 free, 1 S, 2 T
	labelend []int // endpoint through which label was assigned, or -1

	inblossom     []int   // vertex -> top-level blossom
	blossomparent []int   // blossom -> parent blossom or -1
	blossomchilds [][]int // blossom -> sub-blossoms
	blossombase   []int   // blossom -> base vertex
	blossomendps  [][]int // blossom -> endpoints on connecting edges

	bestedge         []int   // (vertex|blossom) -> least-slack edge, or -1
	blossombestedges [][]int // S-blossom -> least-slack edges to other S-blossoms
	unusedblossoms   []int
	dualvar          []float64
	allowedge        []bool
	queue            []int
}

func newMatcher(n int, edges []MatchEdge, maxcard bool) *matcher {
	m := &matcher{nvertex: n, nedge: len(edges), edges: edges, maxcard: maxcard}
	maxw := 0.0
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			panic("graph: invalid matching edge")
		}
		if e.Weight > maxw {
			maxw = e.Weight
		}
	}
	m.endpoint = make([]int, 2*len(edges))
	for k, e := range edges {
		m.endpoint[2*k] = e.U
		m.endpoint[2*k+1] = e.V
	}
	m.neighbend = make([][]int, n)
	for k, e := range edges {
		m.neighbend[e.U] = append(m.neighbend[e.U], 2*k+1)
		m.neighbend[e.V] = append(m.neighbend[e.V], 2*k)
	}
	m.mate = make([]int, n)
	for i := range m.mate {
		m.mate[i] = -1
	}
	m.label = make([]int, 2*n)
	m.labelend = make([]int, 2*n)
	m.inblossom = make([]int, n)
	for i := range m.inblossom {
		m.inblossom[i] = i
	}
	m.blossomparent = make([]int, 2*n)
	for i := range m.blossomparent {
		m.blossomparent[i] = -1
	}
	m.blossomchilds = make([][]int, 2*n)
	m.blossombase = make([]int, 2*n)
	for i := 0; i < n; i++ {
		m.blossombase[i] = i
	}
	for i := n; i < 2*n; i++ {
		m.blossombase[i] = -1
	}
	m.blossomendps = make([][]int, 2*n)
	m.bestedge = make([]int, 2*n)
	for i := range m.bestedge {
		m.bestedge[i] = -1
	}
	m.blossombestedges = make([][]int, 2*n)
	m.unusedblossoms = make([]int, 0, n)
	for i := n; i < 2*n; i++ {
		m.unusedblossoms = append(m.unusedblossoms, i)
	}
	m.dualvar = make([]float64, 2*n)
	for i := 0; i < n; i++ {
		m.dualvar[i] = maxw
	}
	m.allowedge = make([]bool, len(edges))
	return m
}

// slack returns the slack of edge k (2*dual - weight for its endpoints);
// positive slack means the edge is not yet tight.
func (m *matcher) slack(k int) float64 {
	e := m.edges[k]
	return m.dualvar[e.U] + m.dualvar[e.V] - 2*e.Weight
}

// blossomLeaves yields the vertices inside blossom b.
func (m *matcher) blossomLeaves(b int, fn func(v int)) {
	if b < m.nvertex {
		fn(b)
		return
	}
	for _, t := range m.blossomchilds[b] {
		m.blossomLeaves(t, fn)
	}
}

// assignLabel labels top-level blossom containing w with label t, coming
// through endpoint p.
func (m *matcher) assignLabel(w, t, p int) {
	b := m.inblossom[w]
	m.label[w] = t
	m.label[b] = t
	m.labelend[w] = p
	m.labelend[b] = p
	m.bestedge[w] = -1
	m.bestedge[b] = -1
	if t == 1 {
		m.blossomLeaves(b, func(v int) { m.queue = append(m.queue, v) })
	} else if t == 2 {
		base := m.blossombase[b]
		m.assignLabel(m.endpoint[m.mate[base]], 1, m.mate[base]^1)
	}
}

// scanBlossom traces back from vertices v and w to find either a new
// blossom's base or an augmenting path. Returns the base vertex or -1.
func (m *matcher) scanBlossom(v, w int) int {
	var path []int
	base := -1
	for v != -1 || w != -1 {
		b := m.inblossom[v]
		if m.label[b]&4 != 0 {
			base = m.blossombase[b]
			break
		}
		path = append(path, b)
		m.label[b] |= 4
		if m.mate[m.blossombase[b]] == -1 {
			v = -1
		} else {
			v = m.endpoint[m.mate[m.blossombase[b]]]
			b = m.inblossom[v]
			v = m.endpoint[m.labelend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		m.label[b] &^= 4
	}
	return base
}

// addBlossom constructs a new blossom with the given base, through edge k
// connecting two S-vertices.
func (m *matcher) addBlossom(base, k int) {
	v := m.edges[k].U
	w := m.edges[k].V
	bb := m.inblossom[base]
	bv := m.inblossom[v]
	bw := m.inblossom[w]
	b := m.unusedblossoms[len(m.unusedblossoms)-1]
	m.unusedblossoms = m.unusedblossoms[:len(m.unusedblossoms)-1]
	m.blossombase[b] = base
	m.blossomparent[b] = -1
	m.blossomparent[bb] = b
	var path, endps []int
	for bv != bb {
		m.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, m.labelend[bv])
		v = m.endpoint[m.labelend[bv]]
		bv = m.inblossom[v]
	}
	path = append(path, bb)
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	for i, j := 0, len(endps)-1; i < j; i, j = i+1, j-1 {
		endps[i], endps[j] = endps[j], endps[i]
	}
	endps = append(endps, 2*k)
	for bw != bb {
		m.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, m.labelend[bw]^1)
		w = m.endpoint[m.labelend[bw]]
		bw = m.inblossom[w]
	}
	m.blossomchilds[b] = path
	m.blossomendps[b] = endps
	m.label[b] = 1
	m.labelend[b] = m.labelend[bb]
	m.dualvar[b] = 0
	m.blossomLeaves(b, func(x int) {
		if m.label[m.inblossom[x]] == 2 {
			m.queue = append(m.queue, x)
		}
		m.inblossom[x] = b
	})
	// Compute best edges to other S-blossoms.
	bestedgeto := make([]int, 2*m.nvertex)
	for i := range bestedgeto {
		bestedgeto[i] = -1
	}
	for _, bv := range path {
		var nblists [][]int
		if m.blossombestedges[bv] != nil {
			nblists = [][]int{m.blossombestedges[bv]}
		} else {
			m.blossomLeaves(bv, func(x int) {
				lst := make([]int, 0, len(m.neighbend[x]))
				for _, p := range m.neighbend[x] {
					lst = append(lst, p/2)
				}
				nblists = append(nblists, lst)
			})
		}
		for _, nblist := range nblists {
			for _, kk := range nblist {
				i, j := m.edges[kk].U, m.edges[kk].V
				if m.inblossom[j] == b {
					i, j = j, i
				}
				bj := m.inblossom[j]
				if bj != b && m.label[bj] == 1 &&
					(bestedgeto[bj] == -1 || m.slack(kk) < m.slack(bestedgeto[bj])) {
					bestedgeto[bj] = kk
				}
			}
		}
		m.blossombestedges[bv] = nil
		m.bestedge[bv] = -1
	}
	be := make([]int, 0)
	for _, kk := range bestedgeto {
		if kk != -1 {
			be = append(be, kk)
		}
	}
	m.blossombestedges[b] = be
	m.bestedge[b] = -1
	for _, kk := range be {
		if m.bestedge[b] == -1 || m.slack(kk) < m.slack(m.bestedge[b]) {
			m.bestedge[b] = kk
		}
	}
}

// expandBlossom undoes blossom b (which must have zero dual if endstage).
func (m *matcher) expandBlossom(b int, endstage bool) {
	for _, s := range m.blossomchilds[b] {
		m.blossomparent[s] = -1
		if s < m.nvertex {
			m.inblossom[s] = s
		} else if endstage && m.dualvar[s] == 0 {
			m.expandBlossom(s, endstage)
		} else {
			m.blossomLeaves(s, func(v int) { m.inblossom[v] = s })
		}
	}
	if !endstage && m.label[b] == 2 {
		// The expanded blossom is a T-blossom: relabel its sub-blossoms.
		entrychild := m.inblossom[m.endpoint[m.labelend[b]^1]]
		j := 0
		for i, s := range m.blossomchilds[b] {
			if s == entrychild {
				j = i
				break
			}
		}
		var jstep, endptrick int
		if j&1 != 0 {
			j -= len(m.blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := m.labelend[b]
		for j != 0 {
			m.label[m.endpoint[p^1]] = 0
			idx := mod(j-endptrick, len(m.blossomendps[b]))
			m.label[m.endpoint[m.blossomendps[b][idx]^endptrick^1]] = 0
			m.assignLabel(m.endpoint[p^1], 2, p)
			m.allowedge[m.blossomendps[b][idx]/2] = true
			j += jstep
			idx = mod(j-endptrick, len(m.blossomendps[b]))
			p = m.blossomendps[b][idx] ^ endptrick
			m.allowedge[p/2] = true
			j += jstep
		}
		bv := m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
		m.label[m.endpoint[p^1]] = 2
		m.label[bv] = 2
		m.labelend[m.endpoint[p^1]] = p
		m.labelend[bv] = p
		m.bestedge[bv] = -1
		j += jstep
		for m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))] != entrychild {
			bv = m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
			if m.label[bv] == 1 {
				j += jstep
				continue
			}
			v := -1
			m.blossomLeaves(bv, func(x int) {
				if v == -1 && m.label[x] != 0 {
					v = x
				}
			})
			if v != -1 {
				m.label[v] = 0
				m.label[m.endpoint[m.mate[m.blossombase[bv]]]] = 0
				m.assignLabel(v, 2, m.labelend[v])
			}
			j += jstep
		}
	}
	m.label[b] = -1
	m.labelend[b] = -1
	m.blossomchilds[b] = nil
	m.blossomendps[b] = nil
	m.blossombase[b] = -1
	m.blossombestedges[b] = nil
	m.bestedge[b] = -1
	m.unusedblossoms = append(m.unusedblossoms, b)
}

// augmentBlossom swaps matched/unmatched edges over an alternating path
// through blossom b between vertex v and the base vertex.
func (m *matcher) augmentBlossom(b, v int) {
	t := v
	for m.blossomparent[t] != b {
		t = m.blossomparent[t]
	}
	if t >= m.nvertex {
		m.augmentBlossom(t, v)
	}
	i := 0
	for idx, s := range m.blossomchilds[b] {
		if s == t {
			i = idx
			break
		}
	}
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= len(m.blossomchilds[b])
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
		idx := mod(j-endptrick, len(m.blossomendps[b]))
		p := m.blossomendps[b][idx] ^ endptrick
		if t >= m.nvertex {
			m.augmentBlossom(t, m.endpoint[p])
		}
		j += jstep
		t = m.blossomchilds[b][mod(j, len(m.blossomchilds[b]))]
		if t >= m.nvertex {
			m.augmentBlossom(t, m.endpoint[p^1])
		}
		m.mate[m.endpoint[p]] = p ^ 1
		m.mate[m.endpoint[p^1]] = p
	}
	// Rotate childs so that the new base comes first. Copy before
	// appending: the two halves share a backing array.
	childs := append(append([]int(nil), m.blossomchilds[b][i:]...), m.blossomchilds[b][:i]...)
	endps := append(append([]int(nil), m.blossomendps[b][i:]...), m.blossomendps[b][:i]...)
	m.blossomchilds[b] = childs
	m.blossomendps[b] = endps
	m.blossombase[b] = m.blossombase[m.blossomchilds[b][0]]
}

// augmentMatching augments along the path through edge k and back to the
// two roots of the trees containing its endpoints.
func (m *matcher) augmentMatching(k int) {
	for _, se := range [][2]int{{m.edges[k].U, 2*k + 1}, {m.edges[k].V, 2 * k}} {
		v, p := se[0], se[1]
		for {
			bv := m.inblossom[v]
			if bv >= m.nvertex {
				m.augmentBlossom(bv, v)
			}
			m.mate[v] = p
			if m.labelend[bv] == -1 {
				break
			}
			t := m.endpoint[m.labelend[bv]]
			bt := m.inblossom[t]
			v = m.endpoint[m.labelend[bt]]
			w := m.endpoint[m.labelend[bt]^1]
			if bt >= m.nvertex {
				m.augmentBlossom(bt, w)
			}
			m.mate[w] = m.labelend[bt]
			p = m.labelend[bt] ^ 1
		}
	}
}

func (m *matcher) solve() []int {
	if m.nedge == 0 || m.nvertex == 0 {
		res := make([]int, m.nvertex)
		for i := range res {
			res[i] = -1
		}
		return res
	}
	for t := 0; t < m.nvertex; t++ {
		// Each iteration is a "stage": augment the matching by one edge.
		for i := 0; i < 2*m.nvertex; i++ {
			m.label[i] = 0
		}
		for i := range m.bestedge {
			m.bestedge[i] = -1
		}
		for i := m.nvertex; i < 2*m.nvertex; i++ {
			m.blossombestedges[i] = nil
		}
		for i := range m.allowedge {
			m.allowedge[i] = false
		}
		m.queue = m.queue[:0]
		for v := 0; v < m.nvertex; v++ {
			if m.mate[v] == -1 && m.label[m.inblossom[v]] == 0 {
				m.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(m.queue) > 0 && !augmented {
				v := m.queue[len(m.queue)-1]
				m.queue = m.queue[:len(m.queue)-1]
				for _, p := range m.neighbend[v] {
					k := p / 2
					w := m.endpoint[p]
					if m.inblossom[v] == m.inblossom[w] {
						continue
					}
					if !m.allowedge[k] {
						kslack := m.slack(k)
						if kslack <= 0 {
							m.allowedge[k] = true
						} else if m.label[m.inblossom[w]] == 1 {
							b := m.inblossom[v]
							if m.bestedge[b] == -1 || kslack < m.slack(m.bestedge[b]) {
								m.bestedge[b] = k
							}
						} else if m.label[w] == 0 {
							if m.bestedge[w] == -1 || kslack < m.slack(m.bestedge[w]) {
								m.bestedge[w] = k
							}
						}
					}
					if !m.allowedge[k] {
						continue
					}
					switch {
					case m.label[m.inblossom[w]] == 0:
						m.assignLabel(w, 2, p^1)
					case m.label[m.inblossom[w]] == 1:
						base := m.scanBlossom(v, w)
						if base >= 0 {
							m.addBlossom(base, k)
						} else {
							m.augmentMatching(k)
							augmented = true
						}
					case m.label[w] == 0:
						m.label[w] = 2
						m.labelend[w] = p ^ 1
					}
					if augmented {
						break
					}
				}
			}
			if augmented {
				break
			}
			// Dual update.
			deltatype := -1
			var delta float64
			var deltaedge, deltablossom int
			if !m.maxcard {
				deltatype = 1
				delta = m.dualvar[0]
				for v := 1; v < m.nvertex; v++ {
					if m.dualvar[v] < delta {
						delta = m.dualvar[v]
					}
				}
			}
			for v := 0; v < m.nvertex; v++ {
				if m.label[m.inblossom[v]] == 0 && m.bestedge[v] != -1 {
					d := m.slack(m.bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = m.bestedge[v]
					}
				}
			}
			for b := 0; b < 2*m.nvertex; b++ {
				if m.blossomparent[b] == -1 && m.label[b] == 1 && m.bestedge[b] != -1 {
					d := m.slack(m.bestedge[b]) / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = m.bestedge[b]
					}
				}
			}
			for b := m.nvertex; b < 2*m.nvertex; b++ {
				if m.blossombase[b] >= 0 && m.blossomparent[b] == -1 && m.label[b] == 2 {
					if deltatype == -1 || m.dualvar[b] < delta {
						delta = m.dualvar[b]
						deltatype = 4
						deltablossom = b
					}
				}
			}
			if deltatype == -1 {
				// No further improvement possible (max-cardinality mode):
				// finish with delta = max(0, min vertex dual).
				deltatype = 1
				delta = 0
				mind := m.dualvar[0]
				for v := 1; v < m.nvertex; v++ {
					if m.dualvar[v] < mind {
						mind = m.dualvar[v]
					}
				}
				if mind > 0 {
					delta = mind
				}
			}
			for v := 0; v < m.nvertex; v++ {
				switch m.label[m.inblossom[v]] {
				case 1:
					m.dualvar[v] -= delta
				case 2:
					m.dualvar[v] += delta
				}
			}
			for b := m.nvertex; b < 2*m.nvertex; b++ {
				if m.blossombase[b] >= 0 && m.blossomparent[b] == -1 {
					switch m.label[b] {
					case 1:
						m.dualvar[b] += delta
					case 2:
						m.dualvar[b] -= delta
					}
				}
			}
			switch deltatype {
			case 1:
				goto stageDone
			case 2:
				m.allowedge[deltaedge] = true
				v := m.edges[deltaedge].U
				if m.label[m.inblossom[v]] == 0 {
					v = m.edges[deltaedge].V
				}
				m.queue = append(m.queue, v)
			case 3:
				m.allowedge[deltaedge] = true
				m.queue = append(m.queue, m.edges[deltaedge].U)
			case 4:
				m.expandBlossom(deltablossom, false)
			}
		}
	stageDone:
		if !augmented {
			break
		}
		// End of stage: expand all S-blossoms with zero dual.
		for b := m.nvertex; b < 2*m.nvertex; b++ {
			if m.blossomparent[b] == -1 && m.blossombase[b] >= 0 &&
				m.label[b] == 1 && m.dualvar[b] == 0 {
				m.expandBlossom(b, true)
			}
		}
	}
	res := make([]int, m.nvertex)
	for v := 0; v < m.nvertex; v++ {
		if m.mate[v] >= 0 {
			res[v] = m.endpoint[m.mate[v]]
		} else {
			res[v] = -1
		}
	}
	return res
}

// mod is Euclidean modulo (result in [0, n)).
func mod(a, n int) int {
	r := a % n
	if r < 0 {
		r += n
	}
	return r
}
