package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddDuplex(i, (i+1)%n, 1)
	}
	return g
}

func TestAddEdgeDegrees(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 100)
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 50)
	if g.OutDegree(0) != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", g.OutDegree(0))
	}
	if g.InDegree(1) != 2 {
		t.Errorf("InDegree(1) = %d, want 2", g.InDegree(1))
	}
	if g.Multiplicity(0, 1) != 2 {
		t.Errorf("Multiplicity(0,1) = %d, want 2", g.Multiplicity(0, 1))
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("HasEdge direction wrong")
	}
	if g.M() != 3 {
		t.Errorf("M = %d, want 3", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 3, 1)
	ns := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 3 {
		t.Errorf("Neighbors(0) = %v, want [1 3]", ns)
	}
}

func TestBFSRing(t *testing.T) {
	g := ring(8)
	dist, _ := g.BFS(0)
	want := []int{0, 1, 2, 3, 4, 3, 2, 1}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestShortestPathEndpoints(t *testing.T) {
	g := ring(10)
	p := g.ShortestPath(2, 7)
	if p == nil {
		t.Fatal("no path found")
	}
	nodes := p.Nodes(g, 2)
	if nodes[0] != 2 || nodes[len(nodes)-1] != 7 {
		t.Errorf("path endpoints %d..%d, want 2..7", nodes[0], nodes[len(nodes)-1])
	}
	if p.Hops() != 5 {
		t.Errorf("hops = %d, want 5", p.Hops())
	}
}

func TestShortestPathSame(t *testing.T) {
	g := ring(4)
	p := g.ShortestPath(1, 1)
	if p == nil || len(p) != 0 {
		t.Errorf("self path = %v, want empty non-nil", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if p := g.ShortestPath(0, 2); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
	if g.Connected() {
		t.Error("graph should not be connected")
	}
}

func TestDiameterRing(t *testing.T) {
	g := ring(12)
	d, conn := g.Diameter()
	if !conn {
		t.Fatal("ring should be connected")
	}
	if d != 6 {
		t.Errorf("diameter = %d, want 6", d)
	}
}

func TestAvgPathLengthCompleteGraph(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddDuplex(i, j, 1)
		}
	}
	if apl := g.AvgPathLength(); apl != 1 {
		t.Errorf("avg path length = %v, want 1", apl)
	}
}

func TestPathLengthHistogram(t *testing.T) {
	g := ring(6)
	hist := g.PathLengthHistogram()
	// 6 nodes: each node has 2 at distance 1, 2 at distance 2, 1 at distance 3.
	want := []int{0, 12, 12, 6}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := ring(4)
	c := g.Clone()
	c.AddEdge(0, 2, 1)
	if g.M() == c.M() {
		t.Error("clone shares edges with original")
	}
}

func TestUnion(t *testing.T) {
	a := ring(4)
	b := New(4)
	b.AddDuplex(0, 2, 5)
	a.Union(b)
	if !a.HasEdge(0, 2) || !a.HasEdge(2, 0) {
		t.Error("union missing duplex edge")
	}
	if a.Edge(a.M()-1).Cap != 5 {
		t.Error("union lost capacity")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.4 {
					g.AddEdge(i, j, 1)
				}
			}
		}
		bfsDist, _ := g.BFS(0)
		dist, _ := g.Dijkstra(0, UnitWeight)
		for v := 0; v < n; v++ {
			if bfsDist[v] == -1 {
				if dist[v] >= 0 {
					t.Fatalf("trial %d: node %d reachable by dijkstra only", trial, v)
				}
				continue
			}
			if int(dist[v]) != bfsDist[v] {
				t.Fatalf("trial %d node %d: dijkstra %v, bfs %d", trial, v, dist[v], bfsDist[v])
			}
		}
	}
}

func TestWeightedShortestPathPrefersLightEdges(t *testing.T) {
	g := New(3)
	heavy := g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	w := func(e Edge) float64 {
		if e.ID == heavy {
			return 10
		}
		return 1
	}
	p := g.WeightedShortestPath(0, 2, w)
	if p.Hops() != 2 {
		t.Errorf("expected 2-hop light path, got %d hops", p.Hops())
	}
}

func TestKShortestPathsRing(t *testing.T) {
	g := ring(6)
	paths := g.KShortestPaths(0, 3, 3, UnitWeight)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (clockwise + counter-clockwise)", len(paths))
	}
	if paths[0].Hops() != 3 || paths[1].Hops() != 3 {
		t.Errorf("hops = %d,%d, want 3,3", paths[0].Hops(), paths[1].Hops())
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.5 {
					g.AddEdge(i, j, 1)
				}
			}
		}
		paths := g.KShortestPaths(0, n-1, 4, UnitWeight)
		for _, p := range paths {
			nodes := p.Nodes(g, 0)
			seen := make(map[int]bool)
			for _, v := range nodes {
				if seen[v] {
					t.Fatalf("trial %d: path %v revisits node %d", trial, nodes, v)
				}
				seen[v] = true
			}
			if len(nodes) > 0 && nodes[len(nodes)-1] != n-1 {
				t.Fatalf("trial %d: path ends at %d, want %d", trial, nodes[len(nodes)-1], n-1)
			}
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].Hops() < paths[i-1].Hops() {
				t.Fatalf("trial %d: paths out of order", trial)
			}
		}
	}
}

func TestPathNodesPanicsOnBrokenPath(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on disconnected path")
		}
	}()
	Path{a, b}.Nodes(g, 0)
}

// Property: BFS distances satisfy the triangle inequality over edges.
func TestBFSTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.3 {
					g.AddEdge(i, j, 1)
				}
			}
		}
		dist, _ := g.BFS(0)
		for _, e := range g.Edges() {
			if dist[e.From] >= 0 && (dist[e.To] == -1 || dist[e.To] > dist[e.From]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
