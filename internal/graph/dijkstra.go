package graph

import "container/heap"

// WeightFunc assigns a nonnegative traversal cost to an edge. The network
// layers use it to bias routing away from loaded links.
type WeightFunc func(Edge) float64

// UnitWeight gives every edge cost 1 (hop-count routing).
func UnitWeight(Edge) float64 { return 1 }

type dijkstraItem struct {
	node int
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int            { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes weighted shortest-path distances from src under w.
// Unreachable nodes get dist +Inf represented as -1 in reach[] being false.
func (g *Graph) Dijkstra(src int, w WeightFunc) (dist []float64, parentEdge []int) {
	g.checkNode(src)
	const unreached = -1.0
	dist = make([]float64, g.n)
	parentEdge = make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = unreached
		parentEdge[i] = -1
	}
	dist[src] = 0
	h := &dijkstraHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, id := range g.out[v] {
			e := g.edges[id]
			nd := it.dist + w(e)
			if dist[e.To] < 0 || nd < dist[e.To] {
				dist[e.To] = nd
				parentEdge[e.To] = id
				heap.Push(h, dijkstraItem{e.To, nd})
			}
		}
	}
	return dist, parentEdge
}

// WeightedShortestPath returns a minimum-cost path under w, or nil if dst is
// unreachable.
func (g *Graph) WeightedShortestPath(src, dst int, w WeightFunc) Path {
	g.checkNode(dst)
	if src == dst {
		return Path{}
	}
	dist, parent := g.Dijkstra(src, w)
	if dist[dst] < 0 {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		id := parent[v]
		rev = append(rev, id)
		v = g.edges[id].From
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing cost order under w, using Yen's algorithm. MP routing uses it
// to spread forwarded traffic over alternatives (§5.5).
func (g *Graph) KShortestPaths(src, dst, k int, w WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	first := g.WeightedShortestPath(src, dst, w)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	costOf := func(p Path) float64 {
		c := 0.0
		for _, id := range p {
			c += w(g.edges[id])
		}
		return c
	}
	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes(g, src)
		for i := 0; i < len(prev); i++ {
			spurNode := prevNodes[i]
			rootPath := prev[:i]
			// Ban edges that would recreate already-found paths sharing
			// this root, and ban root nodes to keep paths loopless.
			banned := make(map[int]bool)
			for _, p := range paths {
				if len(p) > i && pathPrefixEq(p, rootPath) {
					banned[p[i]] = true
				}
			}
			bannedNode := make(map[int]bool)
			for _, v := range prevNodes[:i] {
				bannedNode[v] = true
			}
			wf := func(e Edge) float64 {
				if banned[e.ID] || bannedNode[e.To] || bannedNode[e.From] {
					return -1 // sentinel: handled below
				}
				return w(e)
			}
			spur := g.filteredShortestPath(spurNode, dst, wf)
			if spur == nil {
				continue
			}
			total := make(Path, 0, len(rootPath)+len(spur))
			total = append(total, rootPath...)
			total = append(total, spur...)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if costOf(candidates[i]) < costOf(candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

// filteredShortestPath is Dijkstra that skips edges whose weight function
// returns a negative sentinel.
func (g *Graph) filteredShortestPath(src, dst int, w WeightFunc) Path {
	if src == dst {
		return Path{}
	}
	dist := make([]float64, g.n)
	parent := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	h := &dijkstraHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, id := range g.out[v] {
			e := g.edges[id]
			c := w(e)
			if c < 0 {
				continue
			}
			nd := it.dist + c
			if dist[e.To] < 0 || nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = id
				heap.Push(h, dijkstraItem{e.To, nd})
			}
		}
	}
	if dist[dst] < 0 {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		id := parent[v]
		rev = append(rev, id)
		v = g.edges[id].From
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p
}

func pathPrefixEq(p, prefix Path) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(set []Path, p Path) bool {
	for _, q := range set {
		if len(q) != len(p) {
			continue
		}
		eq := true
		for i := range q {
			if q[i] != p[i] {
				eq = false
				break
			}
		}
		if eq {
			return true
		}
	}
	return false
}
