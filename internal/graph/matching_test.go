package graph

import (
	"math/rand"
	"testing"
)

// bruteForceMatching enumerates all matchings of up to n=10 vertices and
// returns the maximum total weight (and max-cardinality max weight if
// maxcard is set).
func bruteForceMatching(n int, edges []MatchEdge, maxcard bool) float64 {
	best := 0.0
	bestCard := 0
	var rec func(k int, used uint, w float64, card int)
	rec = func(k int, used uint, w float64, card int) {
		if maxcard {
			if card > bestCard || (card == bestCard && w > best) {
				best = w
				bestCard = card
			}
		} else if w > best {
			best = w
		}
		for i := k; i < len(edges); i++ {
			e := edges[i]
			bu, bv := uint(1)<<uint(e.U), uint(1)<<uint(e.V)
			if used&bu != 0 || used&bv != 0 {
				continue
			}
			rec(i+1, used|bu|bv, w+e.Weight, card+1)
		}
	}
	rec(0, 0, 0, 0)
	return best
}

func matchingWeight(mate []int, edges []MatchEdge) float64 {
	// Sum weight of matched edges: for each pair take the max-weight edge
	// connecting them (the algorithm works on the effective simple graph).
	bestW := make(map[[2]int]float64)
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if e.Weight > bestW[[2]int{u, v}] {
			bestW[[2]int{u, v}] = e.Weight
		}
	}
	total := 0.0
	for v, u := range mate {
		if u > v {
			total += bestW[[2]int{v, u}]
		}
	}
	return total
}

func checkValidMatching(t *testing.T, n int, mate []int) {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate has %d entries, want %d", len(mate), n)
	}
	for v, u := range mate {
		if u == -1 {
			continue
		}
		if u < 0 || u >= n {
			t.Fatalf("mate[%d] = %d out of range", v, u)
		}
		if mate[u] != v {
			t.Fatalf("mate not symmetric: mate[%d]=%d but mate[%d]=%d", v, u, u, mate[u])
		}
	}
}

func TestMatchingEmpty(t *testing.T) {
	mate := MaxWeightMatching(3, nil, false)
	for v, u := range mate {
		if u != -1 {
			t.Errorf("mate[%d] = %d, want -1", v, u)
		}
	}
}

func TestMatchingSingleEdge(t *testing.T) {
	mate := MaxWeightMatching(2, []MatchEdge{{0, 1, 5}}, false)
	if mate[0] != 1 || mate[1] != 0 {
		t.Errorf("mate = %v, want [1 0]", mate)
	}
}

func TestMatchingPath(t *testing.T) {
	// 0-1 (w2), 1-2 (w3): optimum picks the heavier edge.
	mate := MaxWeightMatching(3, []MatchEdge{{0, 1, 2}, {1, 2, 3}}, false)
	if mate[1] != 2 || mate[2] != 1 || mate[0] != -1 {
		t.Errorf("mate = %v, want [-1 2 1]", mate)
	}
}

func TestMatchingPrefersTotalWeight(t *testing.T) {
	// Triangle-ish path 0-1 (6), 1-2 (10), 2-3 (6): two light edges beat one heavy.
	mate := MaxWeightMatching(4, []MatchEdge{{0, 1, 6}, {1, 2, 10}, {2, 3, 6}}, false)
	if mate[0] != 1 || mate[2] != 3 {
		t.Errorf("mate = %v, want 0-1 and 2-3 matched", mate)
	}
}

func TestMatchingBlossomCase(t *testing.T) {
	// Classic blossom: odd cycle 0-1-2 plus pendant edges. Known tricky case
	// from the reference test suite (test15 in mwmatching).
	edges := []MatchEdge{
		{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3},
	}
	mate := MaxWeightMatching(7, edges, false)
	checkValidMatching(t, 7, mate)
	got := matchingWeight(mate, edges)
	want := bruteForceMatching(7, edges, false)
	if got != want {
		t.Errorf("weight = %v, want %v (mate %v)", got, want, mate)
	}
}

func TestMatchingNestedBlossoms(t *testing.T) {
	// mwmatching test25: nested S-blossoms.
	edges := []MatchEdge{
		{1, 2, 10}, {1, 7, 10}, {2, 3, 12}, {3, 4, 20}, {3, 5, 20},
		{4, 5, 25}, {5, 6, 10}, {6, 7, 10}, {7, 8, 8},
	}
	mate := MaxWeightMatching(9, edges, false)
	checkValidMatching(t, 9, mate)
	got := matchingWeight(mate, edges)
	want := bruteForceMatching(9, edges, false)
	if got != want {
		t.Errorf("weight = %v, want %v (mate %v)", got, want, mate)
	}
}

func TestMatchingSBlossomRelabelTCase(t *testing.T) {
	// mwmatching test21: S-blossom, relabeled as T-blossom, expands.
	cases := [][]MatchEdge{
		{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3}},
		{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {1, 6, 4}},
		{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {3, 6, 4}},
	}
	for i, edges := range cases {
		mate := MaxWeightMatching(7, edges, false)
		checkValidMatching(t, 7, mate)
		got := matchingWeight(mate, edges)
		want := bruteForceMatching(7, edges, false)
		if got != want {
			t.Errorf("case %d: weight = %v, want %v (mate %v)", i, got, want, mate)
		}
	}
}

func TestMatchingMaxCardinality(t *testing.T) {
	// Without maxcard, only the heavy middle edge is chosen; with maxcard
	// we must match everything even at lower total weight.
	edges := []MatchEdge{{0, 1, 1}, {1, 2, 100}, {2, 3, 1}}
	mate := MaxWeightMatching(4, edges, true)
	checkValidMatching(t, 4, mate)
	for v, u := range mate {
		if u == -1 {
			t.Errorf("maxcard left vertex %d unmatched (mate %v)", v, mate)
		}
	}
}

func TestMatchingRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		var edges []MatchEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, MatchEdge{i, j, float64(1 + rng.Intn(20))})
				}
			}
		}
		mate := MaxWeightMatching(n, edges, false)
		checkValidMatching(t, n, mate)
		got := matchingWeight(mate, edges)
		want := bruteForceMatching(n, edges, false)
		if got != want {
			t.Fatalf("trial %d (n=%d, edges=%v): weight %v, want %v, mate %v",
				trial, n, edges, got, want, mate)
		}
	}
}

func TestMatchingRandomFloatsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(7)
		var edges []MatchEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, MatchEdge{i, j, rng.Float64() * 100})
				}
			}
		}
		mate := MaxWeightMatching(n, edges, false)
		checkValidMatching(t, n, mate)
		got := matchingWeight(mate, edges)
		want := bruteForceMatching(n, edges, false)
		if diff := want - got; diff > 1e-9*want {
			t.Fatalf("trial %d: weight %v, want %v", trial, got, want)
		}
	}
}

func TestMatchingLargeRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	var edges []MatchEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				edges = append(edges, MatchEdge{i, j, rng.Float64() * 1e9})
			}
		}
	}
	mate := MaxWeightMatching(n, edges, false)
	checkValidMatching(t, n, mate)
	// Optimality spot-check: no single unmatched-unmatched edge can be added.
	unmatched := make(map[int]bool)
	for v, u := range mate {
		if u == -1 {
			unmatched[v] = true
		}
	}
	for _, e := range edges {
		if unmatched[e.U] && unmatched[e.V] && e.Weight > 0 {
			t.Errorf("augmenting edge %d-%d (w=%v) left unmatched", e.U, e.V, e.Weight)
		}
	}
}

func BenchmarkMatching60(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	var edges []MatchEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				edges = append(edges, MatchEdge{i, j, rng.Float64()})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightMatching(n, edges, false)
	}
}
