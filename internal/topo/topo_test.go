package topo

import (
	"testing"
)

func TestIdealSwitch(t *testing.T) {
	nw := IdealSwitch(8, 400e9)
	if nw.G.N() != 9 || nw.Hosts != 8 {
		t.Fatalf("nodes=%d hosts=%d", nw.G.N(), nw.Hosts)
	}
	if !nw.IsSwitch(8) || nw.IsSwitch(7) {
		t.Error("switch classification wrong")
	}
	if !nw.G.Connected() {
		t.Error("ideal switch must be connected")
	}
	d, _ := nw.G.Diameter()
	if d != 2 {
		t.Errorf("diameter = %d, want 2 (server-switch-server)", d)
	}
	for v := 0; v < 8; v++ {
		if nw.G.OutDegree(v) != 1 {
			t.Errorf("server %d degree %d, want 1", v, nw.G.OutDegree(v))
		}
		if nw.G.Edge(nw.G.Out(v)[0]).Cap != 400e9 {
			t.Error("wrong uplink capacity")
		}
	}
}

func TestFatTreeIsNonBlocking(t *testing.T) {
	nw := FatTree(16, 100e9)
	if nw.Name != "Fat-tree" {
		t.Error("name should be Fat-tree")
	}
	if nw.ForwardingHosts {
		t.Error("fat-tree hosts must not forward")
	}
}

func TestOversubFatTree(t *testing.T) {
	nw := OversubFatTree(16, 4, 100e9)
	// 16 servers + 4 ToRs + core.
	if nw.G.N() != 21 {
		t.Fatalf("nodes = %d, want 21", nw.G.N())
	}
	if !nw.G.Connected() {
		t.Error("must be connected")
	}
	// ToR uplink = 4 servers × 100G / 2 = 200G.
	tor := 16
	var uplink float64
	for _, id := range nw.G.Out(tor) {
		e := nw.G.Edge(id)
		if e.To == 20 {
			uplink = e.Cap
		}
	}
	if uplink != 200e9 {
		t.Errorf("ToR uplink = %g, want 200e9", uplink)
	}
	// Uneven last rack.
	nw2 := OversubFatTree(10, 4, 100e9)
	if !nw2.G.Connected() {
		t.Error("uneven rack fabric must be connected")
	}
}

func TestExpanderRegularAndConnected(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		nw, err := Expander(32, d, 25e9, 7)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 32; v++ {
			if nw.G.OutDegree(v) != d {
				t.Errorf("d=%d: node %d degree %d", d, v, nw.G.OutDegree(v))
			}
		}
		if !nw.G.Connected() {
			t.Errorf("d=%d expander disconnected", d)
		}
		if !nw.DegreeOK(d) || nw.DegreeOK(d-1) {
			t.Errorf("d=%d DegreeOK wrong", d)
		}
	}
}

func TestExpanderOddDegree(t *testing.T) {
	nw, err := Expander(16, 3, 10e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		if nw.G.OutDegree(v) != 3 {
			t.Errorf("node %d degree %d, want 3", v, nw.G.OutDegree(v))
		}
	}
	if _, err := Expander(15, 3, 10e9, 1); err == nil {
		t.Error("odd degree × odd n should fail")
	}
	if _, err := Expander(8, 1, 10e9, 1); err == nil {
		t.Error("degree 1 should fail")
	}
}

func TestExpanderDeterministic(t *testing.T) {
	a, _ := Expander(24, 4, 1e9, 42)
	b, _ := Expander(24, 4, 1e9, 42)
	ea, eb := a.G.Edges(), b.G.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c, _ := Expander(24, 4, 1e9, 43)
	same := true
	for i, e := range c.G.Edges() {
		if e != ea[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical expander")
	}
}

func TestPhysicalRing(t *testing.T) {
	nw := PhysicalRing(16, 4, 50e9)
	for v := 0; v < 16; v++ {
		if nw.G.OutDegree(v) != 4 {
			t.Errorf("node %d degree %d, want 4", v, nw.G.OutDegree(v))
		}
	}
	if !nw.G.Connected() {
		t.Error("ring disconnected")
	}
	// Antipodal offset case: n=8, d=8 includes offset 4 = n/2.
	nw2 := PhysicalRing(8, 8, 1e9)
	if !nw2.G.Connected() {
		t.Error("antipodal ring disconnected")
	}
	for v := 0; v < 8; v++ {
		if got := nw2.G.OutDegree(v); got != 7 {
			// offsets 1,2,3 give 6 plus antipode gives 1 → 7 (degree capped
			// by distinct neighbors on an 8-ring).
			t.Errorf("node %d degree %d, want 7", v, got)
		}
	}
}

func TestDirectConnect(t *testing.T) {
	nw := DirectConnect(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 25e9)
	if !nw.G.Connected() {
		t.Error("disconnected")
	}
	if !nw.ForwardingHosts {
		t.Error("direct-connect hosts must forward")
	}
	for v := 0; v < 4; v++ {
		if nw.G.OutDegree(v) != 2 {
			t.Errorf("node %d degree %d, want 2", v, nw.G.OutDegree(v))
		}
	}
}

func TestTorusDims(t *testing.T) {
	cases := []struct {
		n, d int
		want []int
	}{
		{16, 4, []int{4, 4}},    // square 2D
		{12, 4, []int{3, 4}},    // rectangular 2D
		{9, 4, []int{3, 3}},     // odd square
		{7, 4, []int{7}},        // prime n degenerates to a ring
		{16, 2, []int{16}},      // degree budget 2 forces a ring
		{27, 6, []int{3, 3, 3}}, // cube 3D
		{64, 6, []int{4, 4, 4}}, // larger cube
		{24, 6, []int{2, 3, 4}}, // balanced 3-factor split
		{24, 4, []int{4, 6}},    // same n, degree budget forces 2D
		{10, 6, []int{2, 5}},    // no 3-factor split of 10; falls to 2D
	}
	for _, c := range cases {
		got, err := TorusDims(c.n, c.d)
		if err != nil {
			t.Errorf("TorusDims(%d, %d): %v", c.n, c.d, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("TorusDims(%d, %d) = %v, want %v", c.n, c.d, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("TorusDims(%d, %d) = %v, want %v", c.n, c.d, got, c.want)
				break
			}
		}
	}
	if _, err := TorusDims(1, 4); err == nil {
		t.Error("n < 2 must fail")
	}
	if _, err := TorusDims(16, 1); err == nil {
		t.Error("degree < 2 must fail")
	}
}

func TestTorusDegree(t *testing.T) {
	cases := []struct {
		dims []int
		want int
	}{
		{[]int{4, 4}, 4},
		{[]int{3, 3, 3}, 6},
		{[]int{2, 3, 4}, 5}, // the size-2 dimension has one shared neighbor
		{[]int{16}, 2},
		{[]int{2, 2}, 2},
	}
	for _, c := range cases {
		if got := TorusDegree(c.dims); got != c.want {
			t.Errorf("TorusDegree(%v) = %d, want %d", c.dims, got, c.want)
		}
	}
}

func TestTorusTopology(t *testing.T) {
	nw := Torus([]int{3, 4}, 100e9)
	if nw.G.N() != 12 {
		t.Fatalf("nodes = %d, want 12", nw.G.N())
	}
	if !nw.G.Connected() {
		t.Error("torus disconnected")
	}
	if !nw.ForwardingHosts {
		t.Error("torus hosts must forward")
	}
	for v := 0; v < 12; v++ {
		if got := nw.G.OutDegree(v); got != 4 {
			t.Errorf("node %d degree %d, want 4", v, got)
		}
	}
	// Row-major with the last dimension fastest: node 0 = (0,0) links to
	// (0,1)=1, (0,3)=3 (wrap), (1,0)=4 and (2,0)=8 (wrap).
	for _, nb := range []int{1, 3, 4, 8} {
		if !nw.G.HasEdge(0, nb) {
			t.Errorf("missing link 0->%d", nb)
		}
	}
	// Size-2 dimensions must not duplicate the wrap link.
	small := Torus([]int{2, 3}, 1e9)
	for v := 0; v < 6; v++ {
		for _, nb := range small.G.Neighbors(v) {
			if small.G.Multiplicity(v, nb) != 1 {
				t.Errorf("parallel links %d->%d in a 2-sized dimension", v, nb)
			}
		}
	}
	// A 1D torus is the n-ring.
	ring := Torus([]int{5}, 1e9)
	for v := 0; v < 5; v++ {
		if ring.G.OutDegree(v) != 2 {
			t.Errorf("ring node %d degree %d, want 2", v, ring.G.OutDegree(v))
		}
	}
}
