// Package topo builds the network architectures compared in §5.1 of the
// paper: Ideal Switch, cost-equivalent full-bisection Fat-tree, 2:1
// oversubscribed Fat-tree, Expander (Jellyfish-style random regular
// graph), SiP-ML-style ring fabrics and generic direct-connect topologies.
// TopoOpt's own topology is produced by the core package's TopologyFinder;
// this package supplies everything it is compared against.
package topo

import (
	"fmt"
	"math/rand"

	"topoopt/internal/graph"
)

// Network wraps a graph with the convention that nodes [0, Hosts) are
// servers and nodes [Hosts, N) are switches. ForwardingHosts reports
// whether servers may relay traffic for other servers (host-based
// forwarding, §3); switch nodes always forward.
type Network struct {
	G               *graph.Graph
	Hosts           int
	ForwardingHosts bool
	Name            string
}

// IsSwitch reports whether node v is a switch.
func (n *Network) IsSwitch(v int) bool { return v >= n.Hosts }

// IdealSwitch builds the Ideal Switch baseline: every server connects to
// one non-blocking switch with a duplex link of perServerBW bits/s (§5.1:
// d×B per server). Node n is the switch.
func IdealSwitch(n int, perServerBW float64) *Network {
	g := graph.New(n + 1)
	sw := n
	for v := 0; v < n; v++ {
		g.AddDuplex(v, sw, perServerBW)
	}
	return &Network{G: g, Hosts: n, Name: "IdealSwitch"}
}

// FatTree builds the cost-equivalent full-bisection Fat-tree baseline. The
// paper models it as a non-blocking fabric at reduced per-server bandwidth
// d×B' (§5.1), so structurally it is a single logical switch at
// perServerBW — contention appears only at server uplinks, exactly as in a
// full-bisection fabric.
func FatTree(n int, perServerBW float64) *Network {
	nw := IdealSwitch(n, perServerBW)
	nw.Name = "Fat-tree"
	return nw
}

// OversubFatTree builds a 2:1 oversubscribed two-tier Fat-tree: racks of
// serversPerRack servers connect to a ToR at perServerBW each; each ToR's
// uplink to the core carries only half the rack's aggregate bandwidth
// (§5.1, Oversub. Fat-tree). Node layout: servers, then ToRs, then one
// core node.
func OversubFatTree(n, serversPerRack int, perServerBW float64) *Network {
	if serversPerRack < 1 {
		panic("topo: serversPerRack must be >= 1")
	}
	racks := (n + serversPerRack - 1) / serversPerRack
	g := graph.New(n + racks + 1)
	core := n + racks
	for v := 0; v < n; v++ {
		tor := n + v/serversPerRack
		g.AddDuplex(v, tor, perServerBW)
	}
	for r := 0; r < racks; r++ {
		inRack := serversPerRack
		if r == racks-1 {
			inRack = n - r*serversPerRack
		}
		uplink := perServerBW * float64(inRack) / 2
		g.AddDuplex(n+r, core, uplink)
	}
	return &Network{G: g, Hosts: n, Name: "OversubFatTree"}
}

// Expander builds a Jellyfish-style random d-regular direct-connect fabric
// over n servers with per-link bandwidth bw: d/2 superimposed random
// Hamiltonian cycles (plus a random perfect matching when d is odd and n
// even). Deterministic for a given seed.
func Expander(n, d int, bw float64, seed int64) (*Network, error) {
	if d < 2 {
		return nil, fmt.Errorf("topo: expander degree %d < 2", d)
	}
	if d%2 == 1 && n%2 == 1 {
		return nil, fmt.Errorf("topo: odd degree %d with odd n %d impossible", d, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for c := 0; c < d/2; c++ {
		p := rng.Perm(n)
		for i := 0; i < n; i++ {
			g.AddDuplex(p[i], p[(i+1)%n], bw)
		}
	}
	if d%2 == 1 {
		p := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			g.AddDuplex(p[i], p[i+1], bw)
		}
	}
	return &Network{G: g, Hosts: n, ForwardingHosts: true, Name: "Expander"}, nil
}

// PhysicalRing builds the SiP-ML SiP-Ring physical substrate: servers in a
// ring where each server dedicates its d interfaces as wavelengths that
// can reach neighbors up to d hops away around the ring. We materialize
// the default allocation: one duplex link to each of the d/2 nearest
// neighbors clockwise and counter-clockwise (degree d total).
func PhysicalRing(n, d int, bw float64) *Network {
	g := graph.New(n)
	// Each offset ring h contributes one duplex link per node pair
	// (v, v+h); inserting for every v covers wrap-around pairs exactly
	// once.
	for h := 1; h <= d/2; h++ {
		if 2*h == n {
			// Offset n/2 pairs each node with its antipode; inserting for
			// every v would duplicate each duplex link.
			for v := 0; v < n/2; v++ {
				g.AddDuplex(v, v+h, bw)
			}
			continue
		}
		for v := 0; v < n; v++ {
			g.AddDuplex(v, (v+h)%n, bw)
		}
	}
	return &Network{G: g, Hosts: n, ForwardingHosts: true, Name: "SiP-Ring"}
}

// TorusDims factors n servers into the most balanced torus the degree
// budget d affords: three near-equal factors ≥ 2 when d ≥ 6 and such a
// decomposition exists, else two factors when d ≥ 4 and n is composite,
// else a 1D ring (d ≥ 2). Deterministic in (n, d). Dimensions sort
// ascending, so the same (n, d) always yields the same layout.
func TorusDims(n, d int) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: torus needs >= 2 servers, got %d", n)
	}
	if d < 2 {
		return nil, fmt.Errorf("topo: torus needs degree >= 2, got %d", d)
	}
	if d >= 6 {
		// Most balanced 3-factor split: largest a ≤ ∛n dividing n, then
		// largest b ≤ √(n/a) dividing n/a.
		for a := cbrtFloor(n); a >= 2; a-- {
			if n%a != 0 {
				continue
			}
			rest := n / a
			for b := sqrtFloor(rest); b >= a; b-- {
				if rest%b != 0 || rest/b < b {
					continue
				}
				return []int{a, b, rest / b}, nil
			}
		}
	}
	if d >= 4 {
		for a := sqrtFloor(n); a >= 2; a-- {
			if n%a == 0 {
				return []int{a, n / a}, nil
			}
		}
	}
	// Prime n or degree budget 2–3: a ring is the 1D torus.
	return []int{n}, nil
}

func sqrtFloor(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func cbrtFloor(n int) int {
	r := 0
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	return r
}

// TorusDegree returns the interfaces per server a torus of the given
// dimensions consumes: two per wrap-around dimension, one for a
// dimension of size two (where +1 and -1 reach the same neighbor).
func TorusDegree(dims []int) int {
	deg := 0
	for _, s := range dims {
		switch {
		case s >= 3:
			deg += 2
		case s == 2:
			deg++
		}
	}
	return deg
}

// Torus builds a multi-dimensional wrap-around grid (2D/3D torus; a
// single dimension degenerates to a ring) over the product of dims
// servers, one duplex link of bw to each ±1 neighbor per dimension.
// Node indices are row-major with the last dimension fastest — the same
// convention route.Torus uses for dimension-ordered routing.
func Torus(dims []int, bw float64) *Network {
	n := 1
	for _, s := range dims {
		if s < 1 {
			panic("topo: torus dimension < 1")
		}
		n *= s
	}
	g := graph.New(n)
	stride := make([]int, len(dims))
	st := 1
	for i := len(dims) - 1; i >= 0; i-- {
		stride[i] = st
		st *= dims[i]
	}
	for i, s := range dims {
		if s < 2 {
			continue
		}
		for v := 0; v < n; v++ {
			c := (v / stride[i]) % s
			if s == 2 && c == 1 {
				continue // the +1 and -1 neighbors coincide; link added at c=0
			}
			nb := v + stride[i]
			if c == s-1 {
				nb = v - (s-1)*stride[i] // wrap
			}
			g.AddDuplex(v, nb, bw)
		}
	}
	return &Network{G: g, Hosts: n, ForwardingHosts: true, Name: "Torus"}
}

// DirectConnect builds a direct-connect topology over n servers from
// explicit duplex pairs, each with bandwidth bw. This is how TopologyFinder
// materializes its output.
func DirectConnect(n int, pairs [][2]int, bw float64) *Network {
	g := graph.New(n)
	for _, p := range pairs {
		g.AddDuplex(p[0], p[1], bw)
	}
	return &Network{G: g, Hosts: n, ForwardingHosts: true, Name: "DirectConnect"}
}

// DegreeOK reports whether no server exceeds degree d (counting outgoing
// duplex links).
func (nw *Network) DegreeOK(d int) bool {
	for v := 0; v < nw.Hosts; v++ {
		if nw.G.OutDegree(v) > d {
			return false
		}
	}
	return true
}
