// Package route computes routing rules for TopoOpt fabrics: the modified
// coin-change routing over the AllReduce sub-topology (Algorithm 4 /
// Appendix E.1 of the paper) and k-shortest-path routing for MP transfers
// over the combined topology (Algorithm 1, line 20).
//
// Coin-change routing treats the selected ring generation rules p1..pd as
// coin denominations in the cyclic group Z_n: the hop sequence from server
// i to server j is a minimum-length decomposition of (j-i) mod n into
// coins, each coin c corresponding to one direct "+c" ring link.
package route

import (
	"fmt"

	"topoopt/internal/graph"
)

// CoinChange holds per-distance minimal coin decompositions for a cluster
// of n servers whose AllReduce sub-topology consists of the "+p" rings for
// the given coins.
type CoinChange struct {
	n     int
	coins []int
	// seq[d] is the coin sequence whose sum ≡ d (mod n), for d in 1..n-1.
	// seq[0] is nil.
	seq [][]int
}

// NewCoinChange runs the modified coin-change dynamic program
// (CoinChangeMod, Algorithm 4). If bidirectional is set, each physical
// duplex ring link also admits the reverse hop, adding coin n-c for every
// coin c; the paper's prototype forwards over duplex fibers so this is the
// default in TopologyFinder. Returns an error if some distance is
// unreachable (cannot happen when any coin is coprime with n, but guards
// against degenerate inputs).
func NewCoinChange(n int, coins []int, bidirectional bool) (*CoinChange, error) {
	if n < 2 {
		return nil, fmt.Errorf("route: cluster size %d too small", n)
	}
	set := make(map[int]bool)
	var cs []int
	add := func(c int) {
		c = ((c % n) + n) % n
		if c == 0 || set[c] {
			return
		}
		set[c] = true
		cs = append(cs, c)
	}
	for _, c := range coins {
		add(c)
		if bidirectional {
			add(n - c)
		}
	}
	if len(cs) == 0 {
		return nil, fmt.Errorf("route: no usable coins for n=%d", n)
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	back := make([]int, n) // last coin used to reach distance d
	for i := 1; i < n; i++ {
		dist[i] = inf
		back[i] = -1
	}
	for _, c := range cs {
		if dist[c] > 1 {
			dist[c] = 1
			back[c] = c
		}
	}
	// Bellman-Ford-style relaxation over Z_n; at most n rounds.
	for round := 0; round < n; round++ {
		changed := false
		for d := 1; d < n; d++ {
			for _, c := range cs {
				prev := ((d-c)%n + n) % n
				if prev == 0 {
					continue // handled by the seeding above
				}
				if dist[prev] != inf && dist[prev]+1 < dist[d] {
					dist[d] = dist[prev] + 1
					back[d] = c
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	cc := &CoinChange{n: n, coins: cs, seq: make([][]int, n)}
	for d := 1; d < n; d++ {
		if dist[d] == inf {
			return nil, fmt.Errorf("route: distance %d unreachable with coins %v (n=%d)", d, coins, n)
		}
		var s []int
		for at := d; at != 0; {
			c := back[at]
			s = append(s, c)
			at = ((at-c)%n + n) % n
		}
		cc.seq[d] = s
	}
	return cc, nil
}

// Coins returns the effective coin set (including reverse coins when
// bidirectional), in insertion order.
func (cc *CoinChange) Coins() []int { return append([]int(nil), cc.coins...) }

// Hops returns the minimal number of coin hops needed to cover distance d
// in Z_n.
func (cc *CoinChange) Hops(d int) int {
	d = ((d % cc.n) + cc.n) % cc.n
	if d == 0 {
		return 0
	}
	return len(cc.seq[d])
}

// Route returns the node sequence src, …, dst using coin hops. Every
// consecutive pair differs by a coin value (mod n), i.e. follows a direct
// ring link of the AllReduce sub-topology.
func (cc *CoinChange) Route(src, dst int) []int {
	d := ((dst-src)%cc.n + cc.n) % cc.n
	nodes := []int{src}
	at := src
	for _, c := range cc.seq[d] {
		at = (at + c) % cc.n
		nodes = append(nodes, at)
	}
	return nodes
}

// MaxHops returns the maximum number of hops over all distances — the
// diameter of the AllReduce sub-topology under coin routing. Theorem 1
// bounds this by O(d·n^(1/d)) when coins follow a geometric sequence.
func (cc *CoinChange) MaxHops() int {
	max := 0
	for d := 1; d < cc.n; d++ {
		if len(cc.seq[d]) > max {
			max = len(cc.seq[d])
		}
	}
	return max
}

// Table maps src -> dst -> node path (inclusive of both endpoints). A nil
// entry means "no route computed"; same-node entries are single-element
// paths.
type Table struct {
	n     int
	paths map[int]map[int][]int
}

// NewTable returns an empty routing table for n nodes.
func NewTable(n int) *Table {
	return &Table{n: n, paths: make(map[int]map[int][]int)}
}

// Set installs the node path for (src, dst). The path must start at src
// and end at dst.
func (t *Table) Set(src, dst int, nodes []int) {
	if len(nodes) == 0 || nodes[0] != src || nodes[len(nodes)-1] != dst {
		panic(fmt.Sprintf("route: invalid path %v for %d->%d", nodes, src, dst))
	}
	m := t.paths[src]
	if m == nil {
		m = make(map[int][]int)
		t.paths[src] = m
	}
	m[dst] = nodes
}

// Get returns the installed node path for (src, dst), or nil.
func (t *Table) Get(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if m := t.paths[src]; m != nil {
		return m[dst]
	}
	return nil
}

// N returns the node count the table was built for.
func (t *Table) N() int { return t.n }

// PairCount returns the number of (src,dst) pairs with installed routes.
func (t *Table) PairCount() int {
	c := 0
	for _, m := range t.paths {
		c += len(m)
	}
	return c
}

// FromCoinChange fills the table with coin-change routes for all ordered
// pairs.
func (t *Table) FromCoinChange(cc *CoinChange) {
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s == d {
				continue
			}
			t.Set(s, d, cc.Route(s, d))
		}
	}
}

// FillShortestPaths installs minimum-hop routes on g for every ordered pair
// not already present. Used for MP transfers on the combined topology.
func (t *Table) FillShortestPaths(g *graph.Graph) {
	for s := 0; s < t.n; s++ {
		dist, parent := g.BFS(s)
		for d := 0; d < t.n; d++ {
			if s == d || t.Get(s, d) != nil || dist[d] < 0 {
				continue
			}
			var rev []int
			for v := d; v != s; {
				rev = append(rev, v)
				v = g.Edge(parent[v]).From
			}
			nodes := make([]int, 0, len(rev)+1)
			nodes = append(nodes, s)
			for i := len(rev) - 1; i >= 0; i-- {
				nodes = append(nodes, rev[i])
			}
			t.Set(s, d, nodes)
		}
	}
}

// KShortest computes up to k loopless shortest paths between src and dst on
// g and returns them as node paths; MP routing spreads flows across them in
// round-robin (§5.5 notes the residual load imbalance this leaves).
func KShortest(g *graph.Graph, src, dst, k int) [][]int {
	paths := g.KShortestPaths(src, dst, k, graph.UnitWeight)
	out := make([][]int, 0, len(paths))
	for _, p := range paths {
		out = append(out, p.Nodes(g, src))
	}
	return out
}

// LinkLoads routes the traffic matrix tm (bytes, tm[s][d]) over the table
// and accumulates per-directed-link byte loads, keyed by [2]int{from,to}.
// Multi-hop routes charge every traversed link — this is exactly the
// "bandwidth tax" of host-based forwarding (§5.4).
func (t *Table) LinkLoads(tm [][]int64) map[[2]int]int64 {
	loads := make(map[[2]int]int64)
	for s := range tm {
		for d, bytes := range tm[s] {
			if bytes == 0 || s == d {
				continue
			}
			nodes := t.Get(s, d)
			if nodes == nil {
				continue
			}
			for i := 0; i+1 < len(nodes); i++ {
				loads[[2]int{nodes[i], nodes[i+1]}] += bytes
			}
		}
	}
	return loads
}

// BandwidthTax returns the ratio of routed traffic volume (including
// forwarded hops) to the logical demand volume for the given traffic
// matrix. A full-bisection switch has tax exactly 1 (§5.4).
func (t *Table) BandwidthTax(tm [][]int64) float64 {
	var logical, routed int64
	for s := range tm {
		for d, bytes := range tm[s] {
			if bytes == 0 || s == d {
				continue
			}
			nodes := t.Get(s, d)
			if nodes == nil {
				continue
			}
			logical += bytes
			routed += bytes * int64(len(nodes)-1)
		}
	}
	if logical == 0 {
		return 1
	}
	return float64(routed) / float64(logical)
}
