package route

import (
	"fmt"
	"sort"
)

// Traffic engineering for host-forwarded MP transfers (§5.5). The paper
// observes that single-path routing leaves the per-link load imbalanced
// (Figure 15: the least-loaded link carries 39–59% less than the most
// loaded) and that the optimal routing strategy — minimizing maximum link
// utilization — would bring the slowdown factor α of Eq. (1) down to the
// average path length, but leaves it to future work. This file implements
// that future work as an iterative min-max heuristic in the spirit of
// semi-oblivious WAN TE: demands split fractionally over k-shortest path
// candidates, repeatedly shifting load away from the most-utilized link.

// Torus routes a multi-dimensional wrap-around grid with dimension-
// ordered routing (DOR): correct the coordinate one dimension at a time,
// taking the shorter way around each ring. DOR is deadlock-free on a
// torus and — unlike shortest-path routing with arbitrary tie-breaks —
// fully deterministic, which the plan fingerprinting in internal/serve
// relies on. Node indices are row-major with the last dimension fastest,
// matching topo.Torus.
type Torus struct {
	Dims []int
}

// N returns the node count (the product of the dimensions).
func (t Torus) N() int {
	n := 1
	for _, s := range t.Dims {
		n *= s
	}
	return n
}

// Coord decomposes node v into per-dimension coordinates.
func (t Torus) Coord(v int) []int {
	c := make([]int, len(t.Dims))
	for i := len(t.Dims) - 1; i >= 0; i-- {
		c[i] = v % t.Dims[i]
		v /= t.Dims[i]
	}
	return c
}

// Index recomposes coordinates into a node index.
func (t Torus) Index(c []int) int {
	v := 0
	for i, s := range t.Dims {
		v = v*s + c[i]
	}
	return v
}

// Route returns the dimension-ordered node path from src to dst:
// dimensions are corrected in declaration order, each along its shorter
// ring direction; an exact half-ring tie breaks toward +1, so routes are
// deterministic functions of (Dims, src, dst).
func (t Torus) Route(src, dst int) []int {
	cur := t.Coord(src)
	want := t.Coord(dst)
	path := []int{src}
	for i, s := range t.Dims {
		delta := ((want[i]-cur[i])%s + s) % s
		if delta == 0 {
			continue
		}
		dir, steps := 1, delta
		if s-delta < delta {
			dir, steps = -1, s-delta
		}
		for k := 0; k < steps; k++ {
			cur[i] = ((cur[i]+dir)%s + s) % s
			path = append(path, t.Index(cur))
		}
	}
	return path
}

// FillTable installs DOR routes for every ordered pair into tab.
func (t Torus) FillTable(tab *Table) {
	n := t.N()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			tab.Set(s, d, t.Route(s, d))
		}
	}
}

// Split is a fractional assignment of one (src,dst) demand across
// candidate paths.
type Split struct {
	Paths     [][]int // node paths
	Fractions []float64
}

// TEResult is the outcome of Balance.
type TEResult struct {
	// Splits maps [2]int{src,dst} to the chosen fractional assignment.
	Splits map[[2]int]Split
	// MaxLinkLoad and MeanLinkLoad are byte loads after balancing.
	MaxLinkLoad  int64
	MeanLinkLoad float64
	// Alpha is Σ(bytes×hops)/Σ(bytes): with perfect balancing this is the
	// demand-weighted average path length (the §5.5 lower bound).
	Alpha float64
}

// Balance spreads the demand matrix over the candidate paths to minimize
// the maximum per-link load. candidates[pair] must contain at least one
// path per demanded pair; iterations bounds the refinement loop.
func Balance(tm [][]int64, candidates map[[2]int][][]int, iterations int) (*TEResult, error) {
	if iterations <= 0 {
		iterations = 100
	}
	type flowState struct {
		pair  [2]int
		bytes float64
		paths [][]int
		frac  []float64
	}
	var flows []*flowState
	for s := range tm {
		for d, bytes := range tm[s] {
			if bytes == 0 || s == d {
				continue
			}
			paths := candidates[[2]int{s, d}]
			if len(paths) == 0 {
				return nil, fmt.Errorf("route: no candidate paths for %d->%d", s, d)
			}
			frac := make([]float64, len(paths))
			frac[0] = 1 // start on the primary (shortest) path
			flows = append(flows, &flowState{
				pair: [2]int{s, d}, bytes: float64(bytes),
				paths: paths, frac: frac,
			})
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].pair[0] != flows[j].pair[0] {
			return flows[i].pair[0] < flows[j].pair[0]
		}
		return flows[i].pair[1] < flows[j].pair[1]
	})
	linkLoad := func() map[[2]int]float64 {
		loads := make(map[[2]int]float64)
		for _, f := range flows {
			for pi, p := range f.paths {
				if f.frac[pi] == 0 {
					continue
				}
				for i := 0; i+1 < len(p); i++ {
					loads[[2]int{p[i], p[i+1]}] += f.bytes * f.frac[pi]
				}
			}
		}
		return loads
	}
	pathUses := func(p []int, link [2]int) bool {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == link[0] && p[i+1] == link[1] {
				return true
			}
		}
		return false
	}
	const step = 0.1
	for it := 0; it < iterations; it++ {
		loads := linkLoad()
		// Most-loaded link.
		var hot [2]int
		hotLoad := -1.0
		for l, v := range loads {
			if v > hotLoad || (v == hotLoad && (l[0] < hot[0] || (l[0] == hot[0] && l[1] < hot[1]))) {
				hot, hotLoad = l, v
			}
		}
		if hotLoad <= 0 {
			break
		}
		// Move a slice of some flow off the hot link onto its best
		// alternative (the candidate path whose own max-link load is
		// lowest).
		moved := false
		for _, f := range flows {
			if len(f.paths) < 2 {
				continue
			}
			onHot := -1
			for pi, p := range f.paths {
				if f.frac[pi] > 0 && pathUses(p, hot) {
					onHot = pi
					break
				}
			}
			if onHot == -1 {
				continue
			}
			// Best alternative: avoid the hot link, lowest bottleneck.
			best, bestLoad := -1, hotLoad
			for pi, p := range f.paths {
				if pi == onHot || pathUses(p, hot) {
					continue
				}
				worst := 0.0
				for i := 0; i+1 < len(p); i++ {
					if v := loads[[2]int{p[i], p[i+1]}]; v > worst {
						worst = v
					}
				}
				if worst < bestLoad {
					best, bestLoad = pi, worst
				}
			}
			if best == -1 {
				continue
			}
			delta := step
			if f.frac[onHot] < delta {
				delta = f.frac[onHot]
			}
			// Only move if it cannot create a hotter link.
			if bestLoad+delta*f.bytes >= hotLoad {
				continue
			}
			f.frac[onHot] -= delta
			f.frac[best] += delta
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	res := &TEResult{Splits: make(map[[2]int]Split)}
	var totalBytes, byteHops float64
	loads := linkLoad()
	for _, f := range flows {
		res.Splits[f.pair] = Split{Paths: f.paths, Fractions: append([]float64(nil), f.frac...)}
		totalBytes += f.bytes
		for pi, p := range f.paths {
			byteHops += f.bytes * f.frac[pi] * float64(len(p)-1)
		}
	}
	var sum float64
	for _, v := range loads {
		if int64(v) > res.MaxLinkLoad {
			res.MaxLinkLoad = int64(v)
		}
		sum += v
	}
	if len(loads) > 0 {
		res.MeanLinkLoad = sum / float64(len(loads))
	}
	if totalBytes > 0 {
		res.Alpha = byteHops / totalBytes
	}
	return res, nil
}
