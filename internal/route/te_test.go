package route

import (
	"testing"

	"topoopt/internal/graph"
)

// diamond: 0->3 via 1 or via 2; plus direct demand 0->1.
func diamondCandidates() map[[2]int][][]int {
	return map[[2]int][][]int{
		{0, 3}: {{0, 1, 3}, {0, 2, 3}},
		{0, 1}: {{0, 1}},
	}
}

func TestBalanceSpreadsHotLink(t *testing.T) {
	tm := make([][]int64, 4)
	for i := range tm {
		tm[i] = make([]int64, 4)
	}
	tm[0][3] = 1000
	tm[0][1] = 1000
	res, err := Balance(tm, diamondCandidates(), 200)
	if err != nil {
		t.Fatal(err)
	}
	// Without TE, link (0,1) carries 2000 (both demands). Balanced, the
	// 0->3 demand should shift mostly onto 0->2->3.
	if res.MaxLinkLoad >= 2000 {
		t.Errorf("max link load %d not reduced from 2000", res.MaxLinkLoad)
	}
	sp := res.Splits[[2]int{0, 3}]
	if sp.Fractions[1] <= 0 {
		t.Errorf("no traffic moved to the alternate path: %v", sp.Fractions)
	}
	// Fractions stay a distribution.
	sum := 0.0
	for _, f := range sp.Fractions {
		if f < -1e-9 || f > 1+1e-9 {
			t.Errorf("fraction %v out of range", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestBalanceAlphaIsWeightedPathLength(t *testing.T) {
	tm := make([][]int64, 4)
	for i := range tm {
		tm[i] = make([]int64, 4)
	}
	tm[0][1] = 500
	res, err := Balance(tm, map[[2]int][][]int{{0, 1}: {{0, 1}}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha != 1 {
		t.Errorf("alpha = %v, want 1 for a direct path", res.Alpha)
	}
}

func TestBalanceMissingCandidates(t *testing.T) {
	tm := make([][]int64, 2)
	for i := range tm {
		tm[i] = make([]int64, 2)
	}
	tm[0][1] = 1
	if _, err := Balance(tm, nil, 10); err == nil {
		t.Error("missing candidates should fail")
	}
}

func TestBalanceImprovesImbalanceOnRealTopology(t *testing.T) {
	// 8-node double ring (+1, +3): all-to-all demand, k-shortest
	// candidates. TE should reduce max link load versus single-path.
	g := graph.New(8)
	for _, p := range []int{1, 3} {
		for i := 0; i < 8; i++ {
			g.AddEdge(i, (i+p)%8, 1)
		}
	}
	tm := make([][]int64, 8)
	for i := range tm {
		tm[i] = make([]int64, 8)
		for j := range tm[i] {
			if i != j {
				tm[i][j] = 100
			}
		}
	}
	cands := make(map[[2]int][][]int)
	tab := NewTable(8)
	tab.FillShortestPaths(g)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			cands[[2]int{s, d}] = KShortest(g, s, d, 3)
		}
	}
	single := tab.LinkLoads(tm)
	var singleMax int64
	for _, v := range single {
		if v > singleMax {
			singleMax = v
		}
	}
	res, err := Balance(tm, cands, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad > singleMax {
		t.Errorf("TE max load %d worse than single-path %d", res.MaxLinkLoad, singleMax)
	}
	if res.Alpha <= 0 {
		t.Error("alpha must be positive")
	}
}
