package route

import (
	"testing"

	"topoopt/internal/graph"
)

// diamond: 0->3 via 1 or via 2; plus direct demand 0->1.
func diamondCandidates() map[[2]int][][]int {
	return map[[2]int][][]int{
		{0, 3}: {{0, 1, 3}, {0, 2, 3}},
		{0, 1}: {{0, 1}},
	}
}

func TestBalanceSpreadsHotLink(t *testing.T) {
	tm := make([][]int64, 4)
	for i := range tm {
		tm[i] = make([]int64, 4)
	}
	tm[0][3] = 1000
	tm[0][1] = 1000
	res, err := Balance(tm, diamondCandidates(), 200)
	if err != nil {
		t.Fatal(err)
	}
	// Without TE, link (0,1) carries 2000 (both demands). Balanced, the
	// 0->3 demand should shift mostly onto 0->2->3.
	if res.MaxLinkLoad >= 2000 {
		t.Errorf("max link load %d not reduced from 2000", res.MaxLinkLoad)
	}
	sp := res.Splits[[2]int{0, 3}]
	if sp.Fractions[1] <= 0 {
		t.Errorf("no traffic moved to the alternate path: %v", sp.Fractions)
	}
	// Fractions stay a distribution.
	sum := 0.0
	for _, f := range sp.Fractions {
		if f < -1e-9 || f > 1+1e-9 {
			t.Errorf("fraction %v out of range", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestBalanceAlphaIsWeightedPathLength(t *testing.T) {
	tm := make([][]int64, 4)
	for i := range tm {
		tm[i] = make([]int64, 4)
	}
	tm[0][1] = 500
	res, err := Balance(tm, map[[2]int][][]int{{0, 1}: {{0, 1}}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha != 1 {
		t.Errorf("alpha = %v, want 1 for a direct path", res.Alpha)
	}
}

func TestBalanceMissingCandidates(t *testing.T) {
	tm := make([][]int64, 2)
	for i := range tm {
		tm[i] = make([]int64, 2)
	}
	tm[0][1] = 1
	if _, err := Balance(tm, nil, 10); err == nil {
		t.Error("missing candidates should fail")
	}
}

func TestBalanceImprovesImbalanceOnRealTopology(t *testing.T) {
	// 8-node double ring (+1, +3): all-to-all demand, k-shortest
	// candidates. TE should reduce max link load versus single-path.
	g := graph.New(8)
	for _, p := range []int{1, 3} {
		for i := 0; i < 8; i++ {
			g.AddEdge(i, (i+p)%8, 1)
		}
	}
	tm := make([][]int64, 8)
	for i := range tm {
		tm[i] = make([]int64, 8)
		for j := range tm[i] {
			if i != j {
				tm[i][j] = 100
			}
		}
	}
	cands := make(map[[2]int][][]int)
	tab := NewTable(8)
	tab.FillShortestPaths(g)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			cands[[2]int{s, d}] = KShortest(g, s, d, 3)
		}
	}
	single := tab.LinkLoads(tm)
	var singleMax int64
	for _, v := range single {
		if v > singleMax {
			singleMax = v
		}
	}
	res, err := Balance(tm, cands, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad > singleMax {
		t.Errorf("TE max load %d worse than single-path %d", res.MaxLinkLoad, singleMax)
	}
	if res.Alpha <= 0 {
		t.Error("alpha must be positive")
	}
}

func TestTorusCoordIndexRoundTrip(t *testing.T) {
	tor := Torus{Dims: []int{3, 4, 5}}
	if tor.N() != 60 {
		t.Fatalf("N = %d, want 60", tor.N())
	}
	for v := 0; v < tor.N(); v++ {
		c := tor.Coord(v)
		for i, s := range tor.Dims {
			if c[i] < 0 || c[i] >= s {
				t.Fatalf("coord %v of %d out of range", c, v)
			}
		}
		if got := tor.Index(c); got != v {
			t.Fatalf("Index(Coord(%d)) = %d", v, got)
		}
	}
}

func TestTorusDimensionOrderedRoute(t *testing.T) {
	tor := Torus{Dims: []int{4, 4}}
	// (0,0) -> (2,3): dimension 0 first (2 hops down the first axis, via
	// the tie-broken +1 direction), then dimension 1 takes the 1-hop -1
	// wrap instead of 3 forward hops.
	path := tor.Route(0, 11)
	want := []int{0, 4, 8, 11}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// The -1 wrap must be taken when it is strictly shorter: (0,0)->(0,3)
	// is one hop through the wrap link, not three forward hops.
	short := tor.Route(0, 3)
	if len(short) != 2 || short[1] != 3 {
		t.Errorf("wrap route = %v, want [0 3]", short)
	}
	// Exact half-ring ties break toward +1, deterministically.
	tie := tor.Route(0, 2)
	if len(tie) != 3 || tie[1] != 1 {
		t.Errorf("tie route = %v, want [0 1 2]", tie)
	}
	// Self-route is the single node.
	if self := tor.Route(5, 5); len(self) != 1 || self[0] != 5 {
		t.Errorf("self route = %v", self)
	}
}

func TestTorusRouteHopOptimalPerDimension(t *testing.T) {
	tor := Torus{Dims: []int{3, 5}}
	for s := 0; s < tor.N(); s++ {
		for d := 0; d < tor.N(); d++ {
			path := tor.Route(s, d)
			// DOR hop count = Σ min(Δ, size−Δ) over dimensions.
			cs, cd := tor.Coord(s), tor.Coord(d)
			want := 0
			for i, size := range tor.Dims {
				delta := ((cd[i]-cs[i])%size + size) % size
				if size-delta < delta {
					delta = size - delta
				}
				want += delta
			}
			if len(path)-1 != want {
				t.Fatalf("%d->%d: %d hops, want %d (path %v)", s, d, len(path)-1, want, path)
			}
			if path[0] != s || path[len(path)-1] != d {
				t.Fatalf("%d->%d: bad endpoints %v", s, d, path)
			}
		}
	}
}

func TestTorusFillTableDeterministic(t *testing.T) {
	tor := Torus{Dims: []int{2, 3, 4}}
	a := NewTable(tor.N())
	tor.FillTable(a)
	b := NewTable(tor.N())
	tor.FillTable(b)
	if a.PairCount() != tor.N()*(tor.N()-1) || a.PairCount() != b.PairCount() {
		t.Fatalf("pair counts %d vs %d", a.PairCount(), b.PairCount())
	}
	for s := 0; s < tor.N(); s++ {
		for d := 0; d < tor.N(); d++ {
			pa, pb := a.Get(s, d), b.Get(s, d)
			if len(pa) != len(pb) {
				t.Fatalf("%d->%d: %v vs %v", s, d, pa, pb)
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("%d->%d: %v vs %v", s, d, pa, pb)
				}
			}
		}
	}
}

// tieGraph builds a graph with many equal-length s->t paths: a 2-wide,
// 3-long ladder where every layer offers two parallel choices.
func tieGraph() (*graph.Graph, int, int) {
	g := graph.New(8)
	// 0 -> {1,2} -> {3,4} -> {5,6} -> 7 with full bipartite layers.
	g.AddDuplex(0, 1, 1e9)
	g.AddDuplex(0, 2, 1e9)
	for _, a := range []int{1, 2} {
		for _, b := range []int{3, 4} {
			g.AddDuplex(a, b, 1e9)
		}
	}
	for _, a := range []int{3, 4} {
		for _, b := range []int{5, 6} {
			g.AddDuplex(a, b, 1e9)
		}
	}
	g.AddDuplex(5, 7, 1e9)
	g.AddDuplex(6, 7, 1e9)
	return g, 0, 7
}

func TestKShortestTieBreakDeterministic(t *testing.T) {
	// Eight equal-length 0->7 paths: the selection and order of the k
	// returned paths must be identical run over run — plan fingerprints
	// and the serve cache rely on routing being a pure function.
	g0, s, d := tieGraph()
	base := KShortest(g0, s, d, 4)
	if len(base) != 4 {
		t.Fatalf("got %d paths, want 4", len(base))
	}
	for _, p := range base {
		if len(p) != 5 {
			t.Errorf("path %v is not shortest (4 hops)", p)
		}
	}
	for run := 0; run < 10; run++ {
		g, _, _ := tieGraph() // a fresh graph: no shared state between runs
		got := KShortest(g, s, d, 4)
		if len(got) != len(base) {
			t.Fatalf("run %d: %d paths vs %d", run, len(got), len(base))
		}
		for i := range got {
			if len(got[i]) != len(base[i]) {
				t.Fatalf("run %d: path %d = %v vs %v", run, i, got[i], base[i])
			}
			for j := range got[i] {
				if got[i][j] != base[i][j] {
					t.Fatalf("run %d: path %d = %v vs %v", run, i, got[i], base[i])
				}
			}
		}
	}
}

func TestBalanceDeterministicOnTies(t *testing.T) {
	// Two identical demands over symmetric candidates: Balance's
	// hot-link scan and flow ordering must break ties identically run
	// over run.
	mk := func() *TEResult {
		tm := make([][]int64, 4)
		for i := range tm {
			tm[i] = make([]int64, 4)
		}
		tm[0][3] = 1000
		tm[1][3] = 1000
		res, err := Balance(tm, map[[2]int][][]int{
			{0, 3}: {{0, 1, 3}, {0, 2, 3}},
			{1, 3}: {{1, 0, 3}, {1, 2, 3}},
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.MaxLinkLoad != b.MaxLinkLoad || a.Alpha != b.Alpha {
		t.Fatalf("aggregate results differ: %+v vs %+v", a, b)
	}
	for pair, sa := range a.Splits {
		sb := b.Splits[pair]
		for i := range sa.Fractions {
			if sa.Fractions[i] != sb.Fractions[i] {
				t.Fatalf("%v: fractions %v vs %v", pair, sa.Fractions, sb.Fractions)
			}
		}
	}
}
