package route

import (
	"math"
	"math/rand"
	"testing"

	"topoopt/internal/graph"
	"topoopt/internal/perm"
)

func TestCoinChangeSingleRing(t *testing.T) {
	cc, err := NewCoinChange(8, []int{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Hops(5) != 5 {
		t.Errorf("Hops(5) = %d, want 5 on a unidirectional +1 ring", cc.Hops(5))
	}
	route := cc.Route(2, 7)
	want := []int{2, 3, 4, 5, 6, 7}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("Route(2,7) = %v, want %v", route, want)
		}
	}
}

func TestCoinChangeBidirectional(t *testing.T) {
	cc, err := NewCoinChange(8, []int{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Hops(7) != 1 {
		t.Errorf("Hops(7) = %d, want 1 (reverse hop)", cc.Hops(7))
	}
	if cc.MaxHops() != 4 {
		t.Errorf("MaxHops = %d, want 4", cc.MaxHops())
	}
}

func TestCoinChangePaperCoins(t *testing.T) {
	// 16 servers with rings +1, +3, +7 (Figs 7–9).
	cc, err := NewCoinChange(16, []int{1, 3, 7}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Distance 14 = 7+7 → 2 hops.
	if cc.Hops(14) != 2 {
		t.Errorf("Hops(14) = %d, want 2", cc.Hops(14))
	}
	// Distance 10 = 7+3 → 2 hops.
	if cc.Hops(10) != 2 {
		t.Errorf("Hops(10) = %d, want 2", cc.Hops(10))
	}
	// Every route's steps must be coin values.
	coins := map[int]bool{1: true, 3: true, 7: true}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			nodes := cc.Route(s, d)
			if nodes[0] != s || nodes[len(nodes)-1] != d {
				t.Fatalf("Route(%d,%d) endpoints wrong: %v", s, d, nodes)
			}
			for i := 0; i+1 < len(nodes); i++ {
				step := ((nodes[i+1]-nodes[i])%16 + 16) % 16
				if !coins[step] {
					t.Fatalf("Route(%d,%d) = %v uses non-coin step %d", s, d, nodes, step)
				}
			}
		}
	}
}

func TestCoinChangeOptimality(t *testing.T) {
	// Against brute-force BFS over Z_n for random coin sets.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(40)
		cands := perm.Coprimes(n)
		coins := []int{cands[rng.Intn(len(cands))], cands[rng.Intn(len(cands))]}
		cc, err := NewCoinChange(n, coins, false)
		if err != nil {
			t.Fatal(err)
		}
		// BFS.
		dist := make([]int, n)
		for i := 1; i < n; i++ {
			dist[i] = -1
		}
		queue := []int{0}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, c := range coins {
				u := (v + c) % n
				if u != 0 && dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for d := 1; d < n; d++ {
			if cc.Hops(d) != dist[d] {
				t.Fatalf("trial %d (n=%d coins=%v): Hops(%d)=%d, want %d",
					trial, n, coins, d, cc.Hops(d), dist[d])
			}
		}
	}
}

func TestCoinChangeErrors(t *testing.T) {
	if _, err := NewCoinChange(1, []int{1}, false); err == nil {
		t.Error("expected error for n=1")
	}
	if _, err := NewCoinChange(8, nil, false); err == nil {
		t.Error("expected error for no coins")
	}
	// Coins {2,4} cannot reach odd distances in Z_8.
	if _, err := NewCoinChange(8, []int{2, 4}, false); err == nil {
		t.Error("expected unreachable error for even coins in Z_8")
	}
}

func TestCoinChangeGeometricDiameterBound(t *testing.T) {
	// Theorem 1: geometric coins bound diameter by ~d·n^(1/d).
	for _, n := range []int{16, 64, 128, 256} {
		for _, d := range []int{2, 3, 4} {
			coins := perm.SelectPermutations(n, d, perm.Coprimes(n))
			cc, err := NewCoinChange(n, coins, false)
			if err != nil {
				t.Fatal(err)
			}
			bound := float64(d) * math.Pow(float64(n), 1/float64(d)) * 2.5
			if float64(cc.MaxHops()) > bound {
				t.Errorf("n=%d d=%d coins=%v: diameter %d exceeds bound %.1f",
					n, d, coins, cc.MaxHops(), bound)
			}
		}
	}
}

func TestTableSetGet(t *testing.T) {
	tab := NewTable(4)
	tab.Set(0, 3, []int{0, 1, 3})
	if got := tab.Get(0, 3); len(got) != 3 || got[1] != 1 {
		t.Errorf("Get(0,3) = %v", got)
	}
	if got := tab.Get(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("Get(2,2) = %v, want [2]", got)
	}
	if got := tab.Get(1, 0); got != nil {
		t.Errorf("Get(1,0) = %v, want nil", got)
	}
	if tab.PairCount() != 1 {
		t.Errorf("PairCount = %d, want 1", tab.PairCount())
	}
}

func TestTableSetInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable(4).Set(0, 3, []int{0, 1, 2})
}

func TestTableFromCoinChangeCoversAllPairs(t *testing.T) {
	cc, err := NewCoinChange(12, []int{1, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(12)
	tab.FromCoinChange(cc)
	if tab.PairCount() != 12*11 {
		t.Errorf("PairCount = %d, want %d", tab.PairCount(), 12*11)
	}
}

func TestFillShortestPaths(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddDuplex(i, (i+1)%5, 1)
	}
	tab := NewTable(5)
	tab.Set(0, 2, []int{0, 4, 3, 2}) // pre-installed long route must survive
	tab.FillShortestPaths(g)
	if got := tab.Get(0, 2); len(got) != 4 {
		t.Errorf("pre-installed route overwritten: %v", got)
	}
	if got := tab.Get(1, 3); len(got) != 3 {
		t.Errorf("Get(1,3) = %v, want 2-hop path", got)
	}
	if tab.PairCount() != 20 {
		t.Errorf("PairCount = %d, want 20", tab.PairCount())
	}
}

func TestLinkLoadsAndBandwidthTax(t *testing.T) {
	// 4-node +1 unidirectional ring: routing 0->2 takes 2 hops, so tax for a
	// single 0->2 transfer is 2.
	cc, err := NewCoinChange(4, []int{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(4)
	tab.FromCoinChange(cc)
	tm := make([][]int64, 4)
	for i := range tm {
		tm[i] = make([]int64, 4)
	}
	tm[0][2] = 1000
	loads := tab.LinkLoads(tm)
	if loads[[2]int{0, 1}] != 1000 || loads[[2]int{1, 2}] != 1000 {
		t.Errorf("loads = %v", loads)
	}
	if tax := tab.BandwidthTax(tm); tax != 2 {
		t.Errorf("tax = %v, want 2", tax)
	}
	// Direct neighbors have tax 1.
	tm[0][2] = 0
	tm[0][1] = 500
	if tax := tab.BandwidthTax(tm); tax != 1 {
		t.Errorf("tax = %v, want 1", tax)
	}
}

func TestKShortestNodePaths(t *testing.T) {
	g := graph.New(4)
	g.AddDuplex(0, 1, 1)
	g.AddDuplex(1, 3, 1)
	g.AddDuplex(0, 2, 1)
	g.AddDuplex(2, 3, 1)
	paths := KShortest(g, 0, 3, 4)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Errorf("bad path %v", p)
		}
	}
}
