package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func rec(i int) Record {
	return Record{Op: OpPut, Kind: "plan", Fp: fmt.Sprintf("fp%04d", i),
		Payload: []byte(fmt.Sprintf(`{"plan":%d}`, i))}
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	got := s2.Records()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		want := rec(i)
		if r.Op != want.Op || r.Kind != want.Kind || r.Fp != want.Fp ||
			!bytes.Equal(r.Payload, want.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, r, want)
		}
	}
}

// TestWithSyncRoundTripAndHasJob: the opt-in sync-on-append mode writes
// the same on-disk format (a sync store and a default store interop on
// one directory), and HasJob tracks the OpJob/OpJobDone lifecycle.
func TestWithSyncRoundTripAndHasJob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(Record{Op: OpJob, Kind: "plan", Fp: "j1", Payload: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if !s.HasJob("plan", "j1") {
		t.Error("HasJob = false for an outstanding journaled job")
	}
	if s.HasJob("plan", "j2") || s.HasJob("fleet", "j1") {
		t.Error("HasJob = true for a never-journaled key")
	}
	if err := s.Append(Record{Op: OpJobDone, Kind: "plan", Fp: "j1"}); err != nil {
		t.Fatal(err)
	}
	if s.HasJob("plan", "j1") {
		t.Error("HasJob = true after OpJobDone cleared the entry")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A default (non-sync) store replays the synced log unchanged.
	s2 := openT(t, dir)
	defer s2.Close()
	if got := s2.Len(); got != 5 {
		t.Fatalf("replayed %d puts from a synced log, want 5", got)
	}
	if s2.HasJob("plan", "j1") {
		t.Error("cleared job resurrected on replay")
	}
}

func TestPutLastWriteWinsKeepsOrder(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.Append(Record{Op: OpPut, Kind: "plan", Fp: "a", Payload: []byte(`1`)})
	s.Append(Record{Op: OpPut, Kind: "plan", Fp: "b", Payload: []byte(`2`)})
	s.Append(Record{Op: OpPut, Kind: "plan", Fp: "a", Payload: []byte(`3`)})
	got := s.Records()
	if len(got) != 2 {
		t.Fatalf("live puts = %d, want 2", len(got))
	}
	if got[0].Fp != "a" || string(got[0].Payload) != `3` {
		t.Errorf("rewritten entry = %+v, want fp a payload 3 in original position", got[0])
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

// TestTornFinalRecordTruncated: a partial final record (simulating a
// crash mid-append) is dropped on replay, the file is truncated to the
// last good boundary, and subsequent appends land cleanly.
func TestTornFinalRecordTruncated(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"torn header": func(b []byte) []byte { return append(b, 0x12, 0x34, 0x56) },
		"torn body": func(b []byte) []byte {
			body := []byte(`{"op":"put","kind":"plan","fp":"torn","payload":{}}`)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
			return append(append(b, hdr[:]...), body[:len(body)/2]...)
		},
		"impossible length": func(b []byte) []byte {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], ^uint32(0))
			return append(b, hdr[:]...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir)
			for i := 0; i < 3; i++ {
				if err := s.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			logPath := filepath.Join(dir, LogName)
			b, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			goodLen := len(b)
			if err := os.WriteFile(logPath, tear(b), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := openT(t, dir)
			if got := len(s2.Records()); got != 3 {
				t.Fatalf("replayed %d records, want the 3 before the tear", got)
			}
			// The torn tail must be physically gone so new appends start
			// from a clean boundary.
			if fi, err := os.Stat(logPath); err != nil || fi.Size() != int64(goodLen) {
				t.Fatalf("log size = %v (err %v), want truncated to %d", fi.Size(), err, goodLen)
			}
			if err := s2.Append(rec(3)); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3 := openT(t, dir)
			defer s3.Close()
			if got := len(s3.Records()); got != 4 {
				t.Fatalf("after post-tear append: %d records, want 4", got)
			}
		})
	}
}

// TestCRCMismatchStopsReplayKeepsPrefix: flipping a byte inside an
// interior record stops replay at that record without poisoning the
// entries before it.
func TestCRCMismatchStopsReplayKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	var offsets []int64
	logPath := filepath.Join(dir, LogName)
	for i := 0; i < 5; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, fi.Size())
	}
	s.Close()

	// Corrupt one byte inside record 2's body.
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	b[offsets[1]+recHeaderLen+2] ^= 0xff
	if err := os.WriteFile(logPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	got := s2.Records()
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want the 2 before the corruption", len(got))
	}
	for i, r := range got {
		if want := rec(i); r.Fp != want.Fp || !bytes.Equal(r.Payload, want.Payload) {
			t.Errorf("record %d poisoned: %+v", i, r)
		}
	}
}

// TestCompactionRoundTripsByteIdentically: snapshot + truncated WAL
// must replay to exactly the same live records, payload bytes included,
// and a second compaction of the same state must produce a byte-
// identical snapshot file.
func TestCompactionRoundTripsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 10; i++ {
		s.Append(rec(i))
	}
	s.Append(Record{Op: OpJob, Kind: "plan", Fp: "queued", Payload: []byte(`{"req":1}`)})
	s.Append(Record{Op: OpJob, Kind: "fleet", Fp: "donejob", Payload: []byte(`{"req":2}`)})
	s.Append(Record{Op: OpJobDone, Kind: "fleet", Fp: "donejob"})
	before := s.Records()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, LogName)); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after compaction: %v %v", fi, err)
	}
	snap1, err := os.ReadFile(filepath.Join(dir, SnapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	snap2, _ := os.ReadFile(filepath.Join(dir, SnapshotName))
	if !bytes.Equal(snap1, snap2) {
		t.Error("repeated compaction of identical state produced different snapshot bytes")
	}
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	after := s2.Records()
	if len(after) != len(before) {
		t.Fatalf("post-compaction replay has %d records, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i].Op != after[i].Op || before[i].Kind != after[i].Kind ||
			before[i].Fp != after[i].Fp || !bytes.Equal(before[i].Payload, after[i].Payload) {
			t.Errorf("record %d: %+v != %+v", i, after[i], before[i])
		}
	}
	// The cleared job must stay cleared; the outstanding one must survive.
	var jobs []string
	for _, r := range after {
		if r.Op == OpJob {
			jobs = append(jobs, r.Fp)
		}
	}
	if len(jobs) != 1 || jobs[0] != "queued" {
		t.Errorf("outstanding jobs after compaction = %v, want [queued]", jobs)
	}
}

// TestKillDuringAppendCrashConsistency simulates kill -9 racing an
// append: a writer goroutine appends records while the test repeatedly
// copies the log file mid-write into a fresh directory and replays the
// copy. Every copy must open cleanly to a valid record prefix. Run
// under -race this also proves Append is internally synchronized.
func TestKillDuringAppendCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	logPath := filepath.Join(dir, LogName)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Bounded and throttled: enough appends to guarantee mid-write
		// snapshots below, small enough that each crash-image replay
		// stays cheap.
		for i := 0; i < 20000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Append(rec(i)); err != nil {
				t.Error(err)
				return
			}
			if i%128 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	for snap := 0; snap < 20; snap++ {
		time.Sleep(500 * time.Microsecond)
		b, err := os.ReadFile(logPath) // arbitrary point-in-time image
		if err != nil {
			t.Fatal(err)
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, LogName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(crashDir)
		if err != nil {
			t.Fatalf("crash image %d failed to open: %v", snap, err)
		}
		recs := c.Records()
		for i, r := range recs {
			if want := rec(i); r.Fp != want.Fp || !bytes.Equal(r.Payload, want.Payload) {
				t.Fatalf("crash image %d record %d corrupt: %+v", snap, i, r)
			}
		}
		c.Close()
	}
	close(stop)
	wg.Wait()
}

// TestWarmBootReplay10kUnder1s pins the ISSUE 6 acceptance bound: a
// 10k-entry WAL must replay in under a second on a warm boot.
func TestWarmBootReplay10kUnder1s(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	payload := []byte(`{"strategy":[1,2,3,4],"degree_allreduce":3,"degree_mp":1,` +
		`"predicted_iteration":{"allreduce_seconds":0.1,"mp_seconds":0.2},"demand":[[0,1,2]]}`)
	for i := 0; i < 10000; i++ {
		if err := s.Append(Record{Op: OpPut, Kind: "plan",
			Fp: fmt.Sprintf("%064d", i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	start := time.Now()
	s2 := openT(t, dir)
	elapsed := time.Since(start)
	defer s2.Close()
	if got := s2.Len(); got != 10000 {
		t.Fatalf("replayed %d entries, want 10000", got)
	}
	if elapsed >= time.Second {
		t.Errorf("10k-entry warm-boot replay took %s, want < 1s", elapsed)
	}
}

func TestAppendAfterCloseAndBadOp(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Append(Record{Op: "explode", Kind: "plan", Fp: "x"}); err == nil {
		t.Error("unknown op must be rejected")
	}
	s.Close()
	if err := s.Append(rec(0)); err != ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("compact after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close = %v, want nil", err)
	}
}

// TestSnapshotCorruptTailKeepsPrefix: snapshot replay uses the same
// stop-at-first-bad-record rule as the log (a half-written snapshot can
// only exist if rename semantics were violated, but replay must still
// degrade to a prefix, never an error).
func TestSnapshotCorruptTailKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 4; i++ {
		s.Append(rec(i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snapPath := filepath.Join(dir, SnapshotName)
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if got := len(s2.Records()); got != 3 {
		t.Fatalf("replayed %d records from torn snapshot, want 3", got)
	}
}

func TestOpenErrorPaths(t *testing.T) {
	base := t.TempDir()

	// Store dir path occupied by a regular file: MkdirAll must fail.
	filePath := filepath.Join(base, "notadir")
	if err := os.WriteFile(filePath, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(filePath, "sub")); err == nil {
		t.Error("Open under a regular file should fail")
	}

	// Snapshot path occupied by a directory: the read error must surface
	// (a missing snapshot is fine; an unreadable one is not).
	snapDir := filepath.Join(base, "snapdir")
	if err := os.MkdirAll(filepath.Join(snapDir, SnapshotName), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(snapDir); err == nil {
		t.Error("Open with an unreadable snapshot should fail")
	}

	// Log path occupied by a directory: same for the log.
	logDir := filepath.Join(base, "logdir")
	if err := os.MkdirAll(filepath.Join(logDir, LogName), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(logDir); err == nil {
		t.Error("Open with an unreadable log should fail")
	}
}

func TestClosedStoreRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close should be a nil no-op, got %v", err)
	}
	if err := s.Append(Record{Op: OpPut, Kind: "plan", Fp: "a", Payload: []byte(`{}`)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close: %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close: %v, want ErrClosed", err)
	}
}

func TestCompactErrorPaths(t *testing.T) {
	// snapshot.tmp occupied by a directory: os.Create must fail and the
	// store must stay usable.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(Record{Op: OpPut, Kind: "plan", Fp: "a", Payload: []byte(`{"v":1}`)}); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, SnapshotName+".tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Error("Compact with an uncreatable tmp file should fail")
	}
	if err := os.Remove(filepath.Join(dir, SnapshotName+".tmp")); err != nil {
		t.Fatal(err)
	}

	// Snapshot path occupied by a non-empty directory: the rename must
	// fail and leave no tmp file behind.
	if err := os.MkdirAll(filepath.Join(dir, SnapshotName, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Error("Compact with an unrenamable snapshot path should fail")
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName+".tmp")); !os.IsNotExist(err) {
		t.Errorf("failed Compact left snapshot.tmp behind (stat err %v)", err)
	}
	// The log was never truncated, so the record is still replayable.
	if err := os.RemoveAll(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Errorf("record lost across failed compactions: Len = %d, want 1", s2.Len())
	}
}

// TestBrokenLogHandleSurfacesErrors closes the underlying log file out
// from under the store (same-package reach-around) so the write, the
// post-compaction truncate and the final sync all fail, and verifies
// each surfaces an error instead of silently dropping data.
func TestBrokenLogHandleSurfacesErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpPut, Kind: "plan", Fp: "a", Payload: []byte(`{"v":1}`)}); err != nil {
		t.Fatal(err)
	}
	s.log.Close()

	if err := s.Append(Record{Op: OpPut, Kind: "plan", Fp: "b", Payload: []byte(`{"v":2}`)}); err == nil {
		t.Error("Append on a broken log handle should fail")
	}
	if err := s.Compact(); err == nil {
		t.Error("Compact should fail when it cannot truncate the log")
	}
	if err := s.Close(); err == nil {
		t.Error("Close should surface the failed sync")
	}
}
