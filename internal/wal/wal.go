// Package wal implements the durable plan store behind the serving
// layer: an append-only write-ahead log plus a compacted snapshot, both
// holding (op, kind, fingerprint, payload) records framed with a length
// and a CRC so a torn or corrupt tail truncates cleanly on replay
// instead of poisoning the store.
//
// Layout inside a store directory:
//
//	snapshot — the compacted live record set, replaced atomically
//	           (write to snapshot.tmp, fsync, rename)
//	wal.log  — records appended since the last compaction
//
// Replay order is snapshot first, then the log; within each file,
// records apply in append order. OpPut records upsert a
// (kind, fingerprint) → payload entry (last write wins, first-write
// ordering preserved), OpJob records journal a queued async job keyed
// the same way, and OpJobDone clears one. Replay stops at the first
// record that fails validation — a CRC mismatch, an impossible length,
// or a torn header or body — keeping everything before it; for the log
// the file is additionally truncated to the last good offset so later
// appends start from a clean record boundary.
//
// Each append is a single buffered write of header+body, so a process
// crash (kill -9) can never interleave two records; an OS crash can
// lose the unsynced page-cache tail but the CRC framing turns that into
// a clean truncation, never a corrupt store. Deployments that need
// acknowledged appends to survive power loss too can open the store
// with WithSync, which fsyncs the log on every Append at the cost of
// one disk flush per acknowledged write. Compaction always fsyncs the
// snapshot before the rename, so the atomically-replaced snapshot is
// durable even across power loss in either mode.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// File names inside a store directory, exported so tests (and the chaos
// harness) can inject torn or corrupt tails at the right path.
const (
	SnapshotName = "snapshot"
	LogName      = "wal.log"
)

// Record operations.
const (
	OpPut     = "put"     // upsert a completed-result entry
	OpJob     = "job"     // journal a queued async job
	OpJobDone = "jobdone" // clear a journaled job (finished, failed or cancelled)
)

// Record is one WAL entry. Kind namespaces fingerprints (plan, compare
// and fleet results share one store without aliasing); Payload carries
// the canonical JSON of the result (OpPut) or of the request to re-run
// (OpJob), and is empty for OpJobDone.
type Record struct {
	Op      string          `json:"op"`
	Kind    string          `json:"kind"`
	Fp      string          `json:"fp"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("wal: store closed")

// recHeaderLen is the fixed frame header: little-endian uint32 body
// length followed by the IEEE CRC32 of the body.
const recHeaderLen = 8

// maxRecordLen bounds a single record body. Results are at most a few
// MB of JSON; anything claiming more is a corrupt length field, and
// bounding it keeps replay from allocating garbage-sized buffers.
const maxRecordLen = 64 << 20

// Store is a durable record store. All methods are safe for concurrent
// use. The live record set (the result of replaying every record) is
// kept in memory for Records and Compact; payloads are shared, not
// copied, so callers must not mutate them.
type Store struct {
	dir  string
	sync bool // fsync the log on every Append (power-loss durability)

	mu     sync.Mutex
	log    *os.File
	closed bool

	puts   map[string]Record // key → latest OpPut record
	putSeq []string          // first-append order of put keys
	jobs   map[string]Record // key → outstanding OpJob record
	jobSeq []string          // first-append order of job keys
}

func key(kind, fp string) string { return kind + "\x00" + fp }

// Option configures a Store at Open time.
type Option func(*Store)

// WithSync makes every Append fsync the log before returning, extending
// the durability of acknowledged writes from process crashes to power
// loss. The default (no fsync on append) relies on the OS page cache;
// a lost unsynced tail still replays as a clean truncation either way.
func WithSync() Option { return func(s *Store) { s.sync = true } }

// Open opens (creating if needed) the store in dir, replays the
// snapshot and then the log, and truncates the log at the first torn or
// corrupt record so subsequent appends start from a clean boundary.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{
		dir:  dir,
		puts: make(map[string]Record),
		jobs: make(map[string]Record),
	}
	for _, opt := range opts {
		opt(s)
	}
	if snap, err := os.ReadFile(filepath.Join(dir, SnapshotName)); err == nil {
		recs, _ := decodeAll(snap)
		for _, r := range recs {
			s.apply(r)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}

	logPath := filepath.Join(dir, LogName)
	raw, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	recs, good := decodeAll(raw)
	for _, r := range recs {
		s.apply(r)
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	// Drop the torn/corrupt tail (no-op on a clean log) and position at
	// the end of the last good record for appends.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn log tail: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	s.log = f
	return s, nil
}

// decodeAll parses framed records from b, stopping at the first torn or
// invalid record. It returns the valid prefix and the byte offset just
// past the last good record.
func decodeAll(b []byte) ([]Record, int64) {
	var (
		recs []Record
		off  int64
	)
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return recs, off // clean end
		}
		if len(rest) < recHeaderLen {
			return recs, off // torn header
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxRecordLen || int(n) > len(rest)-recHeaderLen {
			return recs, off // impossible length or torn body
		}
		body := rest[recHeaderLen : recHeaderLen+int(n)]
		if crc32.ChecksumIEEE(body) != crc {
			return recs, off // corrupt body
		}
		var r Record
		if json.Unmarshal(body, &r) != nil {
			return recs, off // CRC matched but the body is not a record
		}
		recs = append(recs, r)
		off += recHeaderLen + int64(n)
	}
}

// apply folds one record into the live state. Unknown ops are ignored
// (a newer writer's records must not break an older reader's replay).
func (s *Store) apply(r Record) {
	k := key(r.Kind, r.Fp)
	switch r.Op {
	case OpPut:
		if _, ok := s.puts[k]; !ok {
			s.putSeq = append(s.putSeq, k)
		}
		s.puts[k] = r
	case OpJob:
		if _, ok := s.jobs[k]; !ok {
			s.jobSeq = append(s.jobSeq, k)
		}
		s.jobs[k] = r
	case OpJobDone:
		delete(s.jobs, k)
	}
}

// Append durably appends r to the log and folds it into the live state.
// The header and body are written in a single Write call, so a crashed
// append leaves at most one torn record at the tail, which the next
// Open truncates away.
func (s *Store) Append(r Record) error {
	switch r.Op {
	case OpPut, OpJob, OpJobDone:
	default:
		return fmt.Errorf("wal: unknown op %q", r.Op)
	}
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	buf := make([]byte, recHeaderLen+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[recHeaderLen:], body)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.log.Write(buf); err != nil {
		return fmt.Errorf("wal: appending: %w", err)
	}
	if s.sync {
		if err := s.log.Sync(); err != nil {
			return fmt.Errorf("wal: syncing append: %w", err)
		}
	}
	s.apply(r)
	return nil
}

// Records returns the live record set in replay-deterministic order:
// puts in first-append order, then outstanding jobs in first-append
// order. The returned slice is a fresh copy; the Payloads are shared.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.puts)+len(s.jobs))
	for _, k := range s.putSeq {
		if r, ok := s.puts[k]; ok {
			out = append(out, r)
		}
	}
	for _, k := range s.jobSeq {
		if r, ok := s.jobs[k]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Len reports the number of live put entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.puts)
}

// HasJob reports whether (kind, fp) has an outstanding journaled job —
// an OpJob record not yet cleared by an OpJobDone.
func (s *Store) HasJob(kind, fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.jobs[key(kind, fp)]
	return ok
}

// Compact writes the live record set to a fresh snapshot (atomically:
// tmp file, fsync, rename) and truncates the log. After a compaction,
// replay cost is proportional to the live set, not to append history.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmp := filepath.Join(s.dir, SnapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compacting: %w", err)
	}
	write := func(r Record) error {
		body, err := json.Marshal(r)
		if err != nil {
			return err
		}
		buf := make([]byte, recHeaderLen+len(body))
		binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
		copy(buf[recHeaderLen:], body)
		_, err = f.Write(buf)
		return err
	}
	for _, k := range s.putSeq {
		if r, ok := s.puts[k]; ok {
			if err := write(r); err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("wal: compacting: %w", err)
			}
		}
	}
	for _, k := range s.jobSeq {
		if r, ok := s.jobs[k]; ok {
			if err := write(r); err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("wal: compacting: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compacting: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compacting: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, SnapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compacting: %w", err)
	}
	syncDir(s.dir)
	if err := s.log.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating log after compaction: %w", err)
	}
	if _, err := s.log.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed snapshot survives power
// loss. Best effort: some filesystems reject directory fsync, and the
// rename itself is already atomic for process crashes.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close flushes and closes the log. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.log.Sync(); err != nil {
		s.log.Close()
		return fmt.Errorf("wal: closing: %w", err)
	}
	return s.log.Close()
}
