package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Errorf("p50 = %v, want 3", Percentile(xs, 50))
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v, want 2", got)
	}
	// Interpolation.
	if got := Percentile([]float64{0, 10}, 75); got != 7.5 {
		t.Errorf("p75 of {0,10} = %v, want 7.5", got)
	}
	// Clamping.
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 5 {
		t.Error("clamping failed")
	}
	if Percentile([]float64{42}, 99) != 42 {
		t.Error("singleton percentile")
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{4, 1, 7, 2}
	if Mean(xs) != 3.5 || Min(xs) != 1 || Max(xs) != 7 {
		t.Errorf("mean %v min %v max %v", Mean(xs), Min(xs), Max(xs))
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{3, 1, 3, 2}
	pts := CDF(xs)
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Value != 1 || pts[0].Frac != 0.25 {
		t.Errorf("first point %v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Frac != 1 {
		t.Errorf("last point %v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if CDFAt(xs, 2.5) != 0.5 {
		t.Errorf("CDFAt(2.5) = %v", CDFAt(xs, 2.5))
	}
	if CDFAt(xs, 0) != 0 || CDFAt(xs, 10) != 1 {
		t.Error("CDF bounds wrong")
	}
	if CDFAt(nil, 1) != 0 {
		t.Error("empty CDFAt should be 0")
	}
}

func TestSummaryFormat(t *testing.T) {
	if Summary(nil) != "n=0" {
		t.Error("empty summary")
	}
	s := Summary([]float64{1, 2, 3})
	if len(s) == 0 {
		t.Error("summary empty")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return Percentile(xs, 0) == Min(xs) && Percentile(xs, 100) == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
