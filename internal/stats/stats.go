// Package stats provides the small statistical helpers the experiment
// harness needs: percentiles, CDF sampling and simple summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. Panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile over an already-sorted slice: no copy,
// no sort, no allocation — for callers on a hot path that manage their
// own scratch buffer. Panics on empty input.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean. Panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Max returns the maximum. Panics on empty input.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum. Panics on empty input.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical CDF of xs as points at each distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var out []CDFPoint
	for i, v := range s {
		frac := float64(i+1) / float64(len(s))
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Frac = frac
			continue
		}
		out = append(out, CDFPoint{Value: v, Frac: frac})
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at value v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary formats mean/p50/p99/max of xs compactly for experiment output.
func Summary(xs []float64) string {
	if len(xs) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		len(xs), Mean(xs), Percentile(xs, 50), Percentile(xs, 99), Max(xs))
}
