package parallel

import (
	"testing"

	"topoopt/internal/model"
)

func TestDataParallelValid(t *testing.T) {
	m := model.BERTPreset(model.Sec53)
	s := DataParallel(m, 16)
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if !s.IsPureDataParallel() {
		t.Error("DataParallel should be pure DP")
	}
	if len(s.ShardedLayers()) != 0 {
		t.Error("DataParallel should shard nothing")
	}
}

func TestHybridPlacesTables(t *testing.T) {
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: 128, DenseLayers: 2, DenseLayerSize: 256,
		DenseFeatLayers: 2, FeatLayerSize: 256, EmbedDim: 64, EmbedRows: 1000, EmbedTables: 4})
	s := Hybrid(m, 16)
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	sharded := s.ShardedLayers()
	if len(sharded) != 4 {
		t.Fatalf("sharded %d layers, want 4", len(sharded))
	}
	// Paper §2.1: 4 tables on 16 servers land on S0, S4, S8, S12 (stride
	// n/#tables; the paper uses S0,S3,S8,S13, same spirit).
	hosts := make(map[int]bool)
	for _, li := range sharded {
		h := s.Layers[li].Group[0]
		if hosts[h] {
			t.Errorf("two tables on server %d", h)
		}
		hosts[h] = true
	}
}

func TestHybridMoreTablesThanServers(t *testing.T) {
	m := model.DLRMAllToAll(64) // 128 tables
	s := Hybrid(m, 16)
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if len(s.ShardedLayers()) != 128 {
		t.Fatalf("want all 128 tables sharded")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	s := DataParallel(m, 4)
	s.Layers[0].Group = nil
	if err := s.Validate(m); err == nil {
		t.Error("empty group should fail")
	}
	s = DataParallel(m, 4)
	s.Layers[0].Group = []int{0, 0}
	if err := s.Validate(m); err == nil {
		t.Error("duplicate server should fail")
	}
	s = DataParallel(m, 4)
	s.Layers[0].Group = []int{7}
	if err := s.Validate(m); err == nil {
		t.Error("out-of-range server should fail")
	}
	s = DataParallel(m, 4)
	s.Layers[0].Kind = Sharded // CANDLE layers are not shardable
	if err := s.Validate(m); err == nil {
		t.Error("sharding unshardable layer should fail")
	}
	if err := (Strategy{N: 4}).Validate(m); err == nil {
		t.Error("wrong layer count should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	s := DataParallel(m, 4)
	c := s.Clone()
	c.Layers[0].Group[0] = 3
	if s.Layers[0].Group[0] == 3 {
		t.Error("clone shares group slices")
	}
}

func TestComputeTimesBalancedForDP(t *testing.T) {
	m := model.VGGPreset(model.Sec53)
	s := DataParallel(m, 8)
	times := s.ComputeTimes(m, model.A100, 64)
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("DP compute should be uniform: %v", times)
		}
	}
	if times[0] <= 0 {
		t.Fatal("compute time must be positive")
	}
}

func TestComputeTimesShardHostLoaded(t *testing.T) {
	m := model.DLRMPreset(model.Sec53)
	s := Hybrid(m, 16)
	times := s.ComputeTimes(m, model.A100, m.BatchPerGPU)
	// Shard hosts do strictly more work than a host with no shards, if any.
	hostSet := make(map[int]bool)
	for _, li := range s.ShardedLayers() {
		hostSet[s.Layers[li].Group[0]] = true
	}
	if len(hostSet) == 16 {
		t.Skip("all servers host shards in this configuration")
	}
	var withShard, without float64
	for v := 0; v < 16; v++ {
		if hostSet[v] {
			withShard = times[v]
		} else {
			without = times[v]
		}
	}
	if withShard <= without {
		t.Errorf("shard host time %g should exceed plain host %g", withShard, without)
	}
	if s.MaxComputeTime(m, model.A100, m.BatchPerGPU) < withShard {
		t.Error("MaxComputeTime below a server's time")
	}
}

func TestPlaceShardAndReplicate(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	s := DataParallel(m, 12)
	li := m.ShardableLayers()[0]
	s.PlaceShard(li, 5)
	if s.Layers[li].Kind != Sharded || s.Layers[li].Group[0] != 5 {
		t.Error("PlaceShard did not apply")
	}
	s.Replicate(li)
	if s.Layers[li].Kind != Replicated || len(s.Layers[li].Group) != 12 {
		t.Error("Replicate did not apply")
	}
	s.Replicate(li, 0, 1, 2)
	if len(s.Layers[li].Group) != 3 {
		t.Error("Replicate subset did not apply")
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Replicated.String() != "replicated" || Sharded.String() != "sharded" {
		t.Error("Kind strings wrong")
	}
}

func TestHybridOnScopedToMembers(t *testing.T) {
	m := model.DLRMPreset(model.Sec6)
	members := []int{3, 5, 7, 9}
	s := HybridOn(m, 16, members)
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	allowed := map[int]bool{3: true, 5: true, 7: true, 9: true}
	for i, ls := range s.Layers {
		for _, v := range ls.Group {
			if !allowed[v] {
				t.Fatalf("layer %d placed on server %d outside shard", i, v)
			}
		}
	}
	sv := s.Servers()
	if len(sv) != 4 || sv[0] != 3 || sv[3] != 9 {
		t.Errorf("Servers() = %v, want shard members", sv)
	}
}

func TestServersFullCluster(t *testing.T) {
	m := model.CANDLEPreset(model.Sec6)
	s := DataParallel(m, 6)
	sv := s.Servers()
	if len(sv) != 6 || sv[0] != 0 || sv[5] != 5 {
		t.Errorf("Servers() = %v, want [0..5]", sv)
	}
}

func TestHybridOnComputeUsesShardWorld(t *testing.T) {
	// Sharded layer's global batch should scale with shard size, not
	// cluster size: the same shard on a bigger cluster costs the same.
	m := model.DLRMPreset(model.Sec6)
	members := []int{0, 1, 2, 3}
	sSmall := HybridOn(m, 8, members)
	sBig := HybridOn(m, 64, members)
	tSmall := sSmall.MaxComputeTime(m, model.A100, 16)
	tBig := sBig.MaxComputeTime(m, model.A100, 16)
	if tSmall != tBig {
		t.Errorf("shard compute depends on cluster size: %g vs %g", tSmall, tBig)
	}
}
