// Package parallel represents DNN parallelization strategies and device
// placements — the state of the paper's Comp.×Comm. plane. A strategy
// assigns every model layer either replicated execution (data parallelism
// over a replica group, requiring gradient AllReduce) or sharded execution
// (model parallelism over one or more hosts, requiring MP transfers of
// activations and gradients).
package parallel

import (
	"encoding/binary"
	"fmt"
	"sort"

	"topoopt/internal/model"
)

// Kind distinguishes how a layer is parallelized.
type Kind int

const (
	// Replicated: the layer's weights are copied on every member of
	// Group; gradients are AllReduced across the group each iteration.
	Replicated Kind = iota
	// Sharded: the layer's weights are partitioned over the hosts in
	// Group; activations/gradients travel between hosts and consumers
	// (MP transfers).
	Sharded
)

func (k Kind) String() string {
	if k == Replicated {
		return "replicated"
	}
	return "sharded"
}

// LayerStrategy is the parallelization decision for one layer. JSON tags
// define the public wire format (topoopt's Plan serialization).
type LayerStrategy struct {
	Kind  Kind  `json:"kind"`
	Group []int `json:"group"` // replica group (Replicated) or shard hosts (Sharded)
}

// Strategy is a full parallelization strategy + device placement for a job
// on N servers. Layers is parallel to the model's layer slice.
type Strategy struct {
	N      int             `json:"n"`
	Layers []LayerStrategy `json:"layers"`
}

// Validate checks structural consistency against the model.
func (s Strategy) Validate(m *model.Model) error {
	if len(s.Layers) != len(m.Layers) {
		return fmt.Errorf("parallel: %d layer strategies for %d layers", len(s.Layers), len(m.Layers))
	}
	for i, ls := range s.Layers {
		if len(ls.Group) == 0 {
			return fmt.Errorf("parallel: layer %d (%s) has empty group", i, m.Layers[i].Name)
		}
		seen := make(map[int]bool)
		for _, v := range ls.Group {
			if v < 0 || v >= s.N {
				return fmt.Errorf("parallel: layer %d places server %d outside [0,%d)", i, v, s.N)
			}
			if seen[v] {
				return fmt.Errorf("parallel: layer %d repeats server %d", i, v)
			}
			seen[v] = true
		}
		if ls.Kind == Sharded && !m.Layers[i].Shardable {
			return fmt.Errorf("parallel: layer %d (%s) is not shardable", i, m.Layers[i].Name)
		}
	}
	return nil
}

// Fingerprint returns a compact key that uniquely identifies the strategy
// (N plus every layer's kind and group, order-sensitive). MCMC search uses
// it to memoize evaluator results, so revisiting a state costs a map
// lookup instead of a re-simulation.
func (s Strategy) Fingerprint() string {
	var b []byte
	b = binary.AppendVarint(b, int64(s.N))
	for _, ls := range s.Layers {
		b = binary.AppendVarint(b, int64(ls.Kind))
		b = binary.AppendVarint(b, int64(len(ls.Group)))
		for _, v := range ls.Group {
			b = binary.AppendVarint(b, int64(v))
		}
	}
	return string(b)
}

// Clone returns a deep copy (for MCMC proposals).
func (s Strategy) Clone() Strategy {
	c := Strategy{N: s.N, Layers: make([]LayerStrategy, len(s.Layers))}
	for i, ls := range s.Layers {
		c.Layers[i] = LayerStrategy{Kind: ls.Kind, Group: append([]int(nil), ls.Group...)}
	}
	return c
}

// IsPureDataParallel reports whether every layer is replicated over all N
// servers.
func (s Strategy) IsPureDataParallel() bool {
	for _, ls := range s.Layers {
		if ls.Kind != Replicated || len(ls.Group) != s.N {
			return false
		}
	}
	return true
}

// ShardedLayers returns indices of layers using model parallelism.
func (s Strategy) ShardedLayers() []int {
	var idx []int
	for i, ls := range s.Layers {
		if ls.Kind == Sharded {
			idx = append(idx, i)
		}
	}
	return idx
}

// Servers returns the distinct servers the strategy touches, ascending —
// the job's world. Full-cluster strategies return [0..N); shard-scoped
// strategies (HybridOn) return the shard members.
func (s Strategy) Servers() []int {
	seen := make(map[int]bool)
	for _, ls := range s.Layers {
		for _, v := range ls.Group {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// allServers returns [0, 1, …, n-1].
func allServers(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// DataParallel builds the pure data-parallel strategy: every layer
// replicated over all n servers.
func DataParallel(m *model.Model, n int) Strategy {
	s := Strategy{N: n, Layers: make([]LayerStrategy, len(m.Layers))}
	for i := range m.Layers {
		s.Layers[i] = LayerStrategy{Kind: Replicated, Group: allServers(n)}
	}
	return s
}

// Hybrid builds the standard DLRM-style hybrid strategy: every shardable
// layer is placed on a single server, round-robin with the given stride
// (the paper's §2.1 example uses stride ≈ n / #tables, e.g. E0→S0, E1→S3,
// E2→S8, E3→S13 for 4 tables on 16 servers); everything else is replicated
// over all servers.
func Hybrid(m *model.Model, n int) Strategy {
	s := DataParallel(m, n)
	shardable := m.ShardableLayers()
	if len(shardable) == 0 {
		return s
	}
	for j, li := range shardable {
		var host int
		if len(shardable) >= n {
			host = j % n
		} else {
			host = (j * n) / len(shardable)
		}
		s.Layers[li] = LayerStrategy{Kind: Sharded, Group: []int{host}}
	}
	return s
}

// HybridOn builds the hybrid strategy scoped to a subset of servers (a
// cluster shard, Appendix C): replicated layers use exactly the shard
// members as their AllReduce group; shardable layers are placed
// round-robin on shard members. N remains the full cluster size so shard
// strategies compose on a shared fabric.
func HybridOn(m *model.Model, n int, members []int) Strategy {
	s := Strategy{N: n, Layers: make([]LayerStrategy, len(m.Layers))}
	grp := append([]int(nil), members...)
	for i := range m.Layers {
		s.Layers[i] = LayerStrategy{Kind: Replicated, Group: grp}
	}
	shardable := m.ShardableLayers()
	k := len(members)
	for j, li := range shardable {
		var host int
		if len(shardable) >= k {
			host = members[j%k]
		} else {
			host = members[(j*k)/len(shardable)]
		}
		s.Layers[li] = LayerStrategy{Kind: Sharded, Group: []int{host}}
	}
	return s
}

// PlaceShard overrides the placement of layer li to the given hosts,
// marking it sharded.
func (s *Strategy) PlaceShard(li int, hosts ...int) {
	s.Layers[li] = LayerStrategy{Kind: Sharded, Group: append([]int(nil), hosts...)}
}

// Replicate marks layer li replicated over the given group (all servers if
// empty).
func (s *Strategy) Replicate(li int, group ...int) {
	if len(group) == 0 {
		group = allServers(s.N)
	}
	s.Layers[li] = LayerStrategy{Kind: Replicated, Group: append([]int(nil), group...)}
}

// ComputeTimes returns the per-server compute time (seconds) of one
// iteration under the strategy: replicated layers cost their roofline time
// at the local batch on every group member; sharded layers cost their
// lookup/compute for the whole global batch divided across shard hosts.
func (s Strategy) ComputeTimes(m *model.Model, gpu model.GPU, batchPerGPU int) []float64 {
	times := make([]float64, s.N)
	for i, ls := range s.Layers {
		l := m.Layers[i]
		switch ls.Kind {
		case Replicated:
			t := gpu.LayerTime(l, batchPerGPU)
			for _, v := range ls.Group {
				times[v] += t
			}
		case Sharded:
			// Each shard host serves the global batch of every consumer;
			// roofline on activation traffic plus its share of the weights.
			globalBatch := batchPerGPU * len(s.Servers())
			perHost := model.Layer{
				Name:              l.Name,
				Kind:              l.Kind,
				ParamBytes:        l.ParamBytes / int64(len(ls.Group)),
				ActBytesPerSample: l.ActBytesPerSample,
				FwdFLOPsPerSample: l.FwdFLOPsPerSample,
			}
			t := gpu.LayerTime(perHost, globalBatch/len(ls.Group))
			for _, v := range ls.Group {
				times[v] += t
			}
		}
	}
	return times
}

// MaxComputeTime is the straggler compute time — the iteration's compute
// component under bulk-synchronous execution.
func (s Strategy) MaxComputeTime(m *model.Model, gpu model.GPU, batchPerGPU int) float64 {
	max := 0.0
	for _, t := range s.ComputeTimes(m, gpu, batchPerGPU) {
		if t > max {
			max = t
		}
	}
	return max
}
