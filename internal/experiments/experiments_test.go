package experiments

import (
	"strings"
	"testing"
)

// tiny params keep the experiment smoke tests fast.
var tiny = Params{Scale: 16, SharedScale: 32, ServersPerJob: 8,
	MCMCIters: 10, Iterations: 1, Seed: 1}

func checkOutput(t *testing.T, name, out string, wants ...string) {
	t.Helper()
	if strings.Contains(out, "err") && !strings.Contains(out, "error") {
		// per-cell "err" entries indicate a broken experiment
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "err") && !strings.Contains(line, "error") {
				t.Errorf("%s: error cell in %q", name, line)
			}
		}
	}
	if strings.Contains(out, "error:") {
		t.Fatalf("%s failed:\n%s", name, out)
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("%s: missing %q in output", name, w)
		}
	}
}

func TestFig01(t *testing.T) {
	out := Fig01DLRMHeatmaps()
	checkOutput(t, "fig01", out, "Data parallelism", "Hybrid parallelism", "max-transfer reduction")
	// The data-parallel max transfer must exceed the hybrid one by ~10x.
	if !strings.Contains(out, "GB") {
		t.Error("expected GB-scale transfers")
	}
}

func TestFig02(t *testing.T) {
	checkOutput(t, "fig02", Fig02ProductionCDFs(), "Recommendation", "top 10%")
}

func TestFig03(t *testing.T) {
	checkOutput(t, "fig03", Fig03NetworkOverhead(tiny), "128 GPUs", "DLRM")
}

func TestFig04(t *testing.T) {
	checkOutput(t, "fig04", Fig04ProductionHeatmaps(), "ring-dominant=true")
}

func TestTab01(t *testing.T) {
	checkOutput(t, "tab01", Tab01OpticalTech(), "Patch Panel", "1008")
}

func TestFig07(t *testing.T) {
	checkOutput(t, "fig07", Fig07RingPermutations(), "\"+1\" permutation", "\"+7\" permutation")
}

func TestFig09(t *testing.T) {
	out := Fig09TopoOptTopology()
	checkOutput(t, "fig09", out, "permutations", "degree split", "diameter")
	if !strings.Contains(out, "[1 3 7]") {
		t.Errorf("expected the paper's +1,+3,+7 selection, got:\n%s", out)
	}
}

func TestFig10(t *testing.T) {
	checkOutput(t, "fig10", Fig10CostComparison(), "Ideal/TopoOpt", "n=2000")
}

func TestFig12Tiny(t *testing.T) {
	checkOutput(t, "fig12", Fig12AllToAll(tiny), "d=4", "d=8", "a2a/AR ratio")
}

func TestFig13Tiny(t *testing.T) {
	checkOutput(t, "fig13", Fig13BandwidthTax(tiny), "d=4", "d=8")
}

func TestFig14Tiny(t *testing.T) {
	checkOutput(t, "fig14", Fig14PathLengthCDF(tiny), "d=4", "d=8")
}

func TestFig15Tiny(t *testing.T) {
	checkOutput(t, "fig15", Fig15LinkTrafficCDF(tiny), "batch size 128", "imbalance")
}

func TestFig16Tiny(t *testing.T) {
	checkOutput(t, "fig16", Fig16SharedCluster(tiny), "TopoOpt", "Fat-tree", "100%")
}

func TestFig17Tiny(t *testing.T) {
	checkOutput(t, "fig17", Fig17ReconfigLatency(tiny), "OCS-FW", "OCS-noFW", "TopoOpt (static)")
}

func TestFig19(t *testing.T) {
	checkOutput(t, "fig19", Fig19TestbedThroughput(), "TopoOpt 4x25G", "ResNet50")
}

func TestFig20(t *testing.T) {
	checkOutput(t, "fig20", Fig20TimeToAccuracy(), "TTA", "speedup")
}

func TestFig21(t *testing.T) {
	checkOutput(t, "fig21", Fig21TestbedAllToAll(), "a2a/AR ratio", "512")
}

func TestTab02(t *testing.T) {
	checkOutput(t, "tab02", Tab02ComponentCosts(), "transceiver", "200")
}

func TestFigA1(t *testing.T) {
	checkOutput(t, "figA1", FigA1DoubleBinaryTree(), "identical volume")
}

func TestFig28Tiny(t *testing.T) {
	checkOutput(t, "fig28", Fig28DegreeSensitivity(tiny), "d=10", "BERT")
}

func TestAblations(t *testing.T) {
	checkOutput(t, "selectperms", AblationSelectPerms(tiny), "geometric", "random")
	checkOutput(t, "mpdiscount", AblationMPDiscount(tiny), "halving")
	checkOutput(t, "alternating", AblationAlternating(tiny), "alternating", "sequential")
	checkOutput(t, "mcmc", AblationMCMCBudget(tiny), "800")
	checkOutput(t, "multiring", AblationMultiRing(tiny), "speedup")
	checkOutput(t, "coinchange", AblationCoinChange(tiny), "coin-change")
}

func TestExtTotientPermsFatTree(t *testing.T) {
	checkOutput(t, "ext-fattree", ExtTotientPermsFatTree(tiny),
		"TotientPerms x4", "full-bisection control")
}

func TestExtMoETimeVarying(t *testing.T) {
	checkOutput(t, "ext-moe", ExtMoETimeVaryingTraffic(tiny),
		"TopoOpt (static)", "OCS 1us")
}

func TestExtDynamicArrivals(t *testing.T) {
	checkOutput(t, "ext-arrivals", ExtDynamicArrivals(tiny),
		"look-ahead", "OCS")
}

func TestExtRoutingTE(t *testing.T) {
	out := ExtRoutingTE(tiny)
	checkOutput(t, "ext-te", out, "single path", "TE (min-max)")
}

// TestRepeatedRunsIdentical asserts the seed-determinism guarantee at the
// experiment level: regenerating the same figures twice in one process
// must produce byte-identical text. The simulator iterates slices (never
// maps), so there is no run-to-run rate residue.
func TestRepeatedRunsIdentical(t *testing.T) {
	gens := map[string]func() string{
		"fig12": func() string { return Fig12AllToAll(tiny) },
		"fig13": func() string { return Fig13BandwidthTax(tiny) },
		"fig16": func() string { return Fig16SharedCluster(tiny) },
		"fig17": func() string { return Fig17ReconfigLatency(tiny) },
	}
	for name, gen := range gens {
		if a, b := gen(), gen(); a != b {
			t.Errorf("%s: repeated runs differ", name)
		}
	}
}
