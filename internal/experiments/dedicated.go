package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"topoopt/internal/arch"
	"topoopt/internal/collective"
	"topoopt/internal/core"
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/heatmap"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/route"
	"topoopt/internal/stats"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// Fig09TopoOptTopology reproduces Figure 9: TopologyFinder's combined
// topology for the §2.1 DLRM on 16 servers (3 interfaces) and its
// balanced traffic matrix under multi-ring AllReduce.
func Fig09TopoOptTopology() string {
	m := sec21DLRM()
	n := 16
	hy := parallel.Hybrid(m, n)
	dem, _ := traffic.FromStrategy(m, hy, m.BatchPerGPU)
	res, err := core.TopologyFinder(core.Config{N: n, D: 3, LinkBW: 100e9}, dem)
	if err != nil {
		return "Figure 9: error: " + err.Error()
	}
	var b strings.Builder
	b.WriteString(header("Figure 9", "TopoOpt topology and traffic matrix (16 servers, d=3)"))
	for _, gr := range res.Rings {
		fmt.Fprintf(&b, "AllReduce rings over %d servers: permutations %v (paper: +1,+3,+7)\n",
			len(gr.Members), gr.Ps)
	}
	fmt.Fprintf(&b, "degree split: %d AllReduce + %d MP\n", res.DegreeAllReduce, res.DegreeMP)
	tm := dem.MP.Clone()
	for _, gr := range res.Rings {
		collective.MultiRing(tm, gr.Members, gr.Ps, gr.Bytes)
	}
	b.WriteString(heatmap.Render(tm))
	single := dem.CombinedMatrix()
	fmt.Fprintf(&b, "max entry: multi-ring %s vs single-ring %s (load-balancing factor %.1fx)\n",
		heatmap.Human(float64(tm.Max())), heatmap.Human(float64(single.Max())),
		float64(single.Max())/float64(tm.Max()))
	diam, _ := res.Network.G.Diameter()
	fmt.Fprintf(&b, "cluster diameter: %d hops\n", diam)
	return b.String()
}

// Fig10CostComparison reproduces Figure 10: interconnect cost vs server
// count for both (d=4, B=100G) and (d=8, B=200G).
func Fig10CostComparison() string {
	var b strings.Builder
	b.WriteString(header("Figure 10", "Interconnect cost comparison (M$)"))
	archs := Fig10ArchOrder()
	for _, cfg := range []struct {
		d  int
		bw float64
	}{{4, 100e9}, {8, 200e9}} {
		fmt.Fprintf(&b, "\n(d=%d, B=%.0f Gbps)\n", cfg.d, cfg.bw/1e9)
		cols := []string{"architecture"}
		ns := []int{128, 432, 1024, 2000}
		for _, n := range ns {
			cols = append(cols, fmt.Sprintf("n=%d", n))
		}
		b.WriteString(row(cols...))
		for _, a := range archs {
			vals := []string{a}
			for _, n := range ns {
				c, err := archCost(a, n, cfg.d, cfg.bw)
				if err != nil {
					vals = append(vals, "err")
					continue
				}
				vals = append(vals, fmt.Sprintf("%.2fM", c/1e6))
			}
			b.WriteString(row(vals...))
		}
		ideal, _ := archCost("IdealSwitch", 432, cfg.d, cfg.bw)
		topoopt, _ := archCost("TopoOpt", 432, cfg.d, cfg.bw)
		fmt.Fprintf(&b, "Ideal/TopoOpt at n=432: %.1fx (paper average: 3.2x)\n", ideal/topoopt)
	}
	return b.String()
}

// dedicatedArchs are the Figure 11 comparison set (OCS-reconfig omitted
// from the quick sweep for runtime; cmd/experiments -full includes it).
func dedicatedArchs(full bool) []string {
	archs := []string{"TopoOpt", "IdealSwitch", "Fat-tree", "Expander", "SiP-ML"}
	if full {
		archs = append(archs, "OCS-reconfig")
	}
	return archs
}

// Fig10ArchOrder is Figure 10's cheap-to-expensive presentation order
// over the §5.1 comparison set — the one shared home for this ordering
// (cmd/costcalc reuses it), so the figure and the CLI cannot drift.
func Fig10ArchOrder() []string {
	return []string{"Expander", "TopoOpt", "Fat-tree",
		"OCS-reconfig", "OversubFatTree", "IdealSwitch", "SiP-ML"}
}

// archCost prices one architecture through its registered backend.
func archCost(name string, n, d int, bw float64) (float64, error) {
	b, ok := arch.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("unknown architecture %q", name)
	}
	return b.Cost(arch.Options{Servers: n, Degree: d, LinkBW: bw})
}

// dedicatedIteration evaluates one model on one architecture at the given
// degree/bandwidth through the backend registry, returning iteration
// seconds. The sweep pins its historical parameterization: two
// alternating-optimization rounds for TopoOpt and the p.Seed+7 expander
// construction seed.
func dedicatedIteration(m *model.Model, name string, n, d int, bw float64, p Params) (float64, error) {
	b, ok := arch.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("unknown architecture %q", name)
	}
	it, err := arch.Evaluate(context.Background(), b, m, arch.Options{
		Servers: n, Degree: d, LinkBW: bw,
		Rounds: 2, MCMCIters: p.MCMCIters, Seed: p.Seed,
		FabricSeed: p.Seed + 7,
	})
	if err != nil {
		return 0, err
	}
	return it.Total(), nil
}

// FigDedicated reproduces Figures 11 (d=4) and 27 (d=8): training
// iteration time vs link bandwidth for the six workloads across
// architectures on a dedicated cluster.
func FigDedicated(p Params, d int, full bool) string {
	var b strings.Builder
	id := "Figure 11"
	if d == 8 {
		id = "Figure 27 (Appendix H)"
	}
	b.WriteString(header(id, fmt.Sprintf("Dedicated cluster of %d servers (d=%d)", p.Scale, d)))
	bandwidths := []float64{10e9, 25e9, 40e9, 100e9}
	archs := dedicatedArchs(full)
	for _, m := range sec53Models(p) {
		fmt.Fprintf(&b, "\n%s (batch/GPU %d):\n", m.Name, m.BatchPerGPU)
		cols := []string{"architecture"}
		for _, bw := range bandwidths {
			cols = append(cols, fmt.Sprintf("B=%.0fG", bw/1e9))
		}
		b.WriteString(row(cols...))
		// Figure presentation: accumulate the two rows the headline
		// Fat-tree/TopoOpt ratio summarizes.
		avg := map[string]float64{}
		for _, arch := range archs {
			vals := []string{arch}
			for _, bw := range bandwidths {
				t, err := dedicatedIteration(m, arch, p.Scale, d, bw, p)
				if err != nil {
					vals = append(vals, "err")
					continue
				}
				vals = append(vals, secs(t))
				avg[arch] += t
			}
			b.WriteString(row(vals...))
		}
		ftAvg, toAvg := avg["Fat-tree"], avg["TopoOpt"]
		if toAvg > 0 {
			fmt.Fprintf(&b, "Fat-tree/TopoOpt iteration-time ratio (avg over B): %.2fx (paper: 2.1-3.0x)\n",
				ftAvg/toAvg)
		}
	}
	return b.String()
}

// allToAllSetup builds the §5.4 worst-case workload at the given scale:
// one large embedding table per server, a lean dense part, and an
// embedding dimension scaled inversely with the cluster size so the
// all-to-all/AllReduce traffic ratio sweeps the paper's 3%–80% range over
// batch sizes 64–2048 regardless of Scale (MP grows ∝ n² while AllReduce
// grows ∝ n, so the dimension compensates).
func allToAllSetup(n, batch int) (*model.Model, parallel.Strategy, traffic.Demand, error) {
	dim := 128 * 128 / n
	if dim < 32 {
		dim = 32
	}
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: batch, DenseLayers: 8,
		DenseLayerSize: 2048, DenseFeatLayers: 4, FeatLayerSize: 1024,
		EmbedDim: dim, EmbedRows: 1e7, EmbedTables: n})
	st := parallel.Hybrid(m, n)
	dem, err := traffic.FromStrategy(m, st, batch)
	return m, st, dem, err
}

// Fig12AllToAll reproduces Figure 12: iteration time vs batch size under
// worst-case all-to-all traffic for d=4 and d=8, TopoOpt vs Fat-tree vs
// Ideal Switch.
func Fig12AllToAll(p Params) string {
	var b strings.Builder
	b.WriteString(header("Figure 12",
		fmt.Sprintf("All-to-all impact, %d servers with %d embedding tables (B=100G)", p.Scale, p.Scale)))
	batches := []int{64, 128, 256, 512, 1024, 2048}
	for _, d := range []int{4, 8} {
		fmt.Fprintf(&b, "\n(d=%d)\n", d)
		b.WriteString(row("batch", "a2a/AR ratio", "TopoOpt", "Fat-tree", "IdealSwitch"))
		for _, batch := range batches {
			m, st, dem, err := allToAllSetup(p.Scale, batch)
			if err != nil {
				b.WriteString(row(fmt.Sprint(batch), "err"))
				continue
			}
			compute := st.MaxComputeTime(m, model.A100, batch)
			ratio := float64(dem.TotalMPBytes()) / float64(dem.TotalAllReduceBytes())
			tf, err := core.TopologyFinder(core.Config{N: p.Scale, D: d, LinkBW: 100e9}, dem)
			if err != nil {
				b.WriteString(row(fmt.Sprint(batch), "err"))
				continue
			}
			topoIt, err := flexnet.SimulateIteration(flexnet.NewTopoOptFabric(tf), dem, compute)
			if err != nil {
				b.WriteString(row(fmt.Sprint(batch), "err"))
				continue
			}
			bft := cost.EquivalentFatTreeBandwidth(p.Scale, d, 100e9)
			ftIt, err := flexnet.SimulateIteration(
				flexnet.NewSwitchFabric(topo.FatTree(p.Scale, bft)), dem, compute)
			if err != nil {
				b.WriteString(row(fmt.Sprint(batch), "err"))
				continue
			}
			idIt, err := flexnet.SimulateIteration(
				flexnet.NewSwitchFabric(topo.IdealSwitch(p.Scale, float64(d)*100e9)), dem, compute)
			if err != nil {
				b.WriteString(row(fmt.Sprint(batch), "err"))
				continue
			}
			b.WriteString(row(fmt.Sprint(batch),
				fmt.Sprintf("%.0f%%", ratio*100),
				secs(topoIt.Total()), secs(ftIt.Total()), secs(idIt.Total())))
		}
	}
	b.WriteString("shape: TopoOpt degrades faster with batch size; d=8 mitigates (Eq. 1)\n")
	return b.String()
}

// Fig13BandwidthTax reproduces Figure 13: the host-forwarding bandwidth
// tax per batch size at d=4 and d=8.
func Fig13BandwidthTax(p Params) string {
	var b strings.Builder
	b.WriteString(header("Figure 13", "Bandwidth tax of host-based forwarding"))
	b.WriteString(row("batch", "d=4", "d=8"))
	for _, batch := range []int{64, 128, 256, 512, 1024, 2048} {
		vals := []string{fmt.Sprint(batch)}
		for _, d := range []int{4, 8} {
			_, _, dem, err := allToAllSetup(p.Scale, batch)
			if err != nil {
				vals = append(vals, "err")
				continue
			}
			tf, err := core.TopologyFinder(core.Config{N: p.Scale, D: d, LinkBW: 100e9}, dem)
			if err != nil {
				vals = append(vals, "err")
				continue
			}
			fab := flexnet.NewTopoOptFabric(tf)
			// Volume-weighted tax over the whole iteration (§5.4):
			// AllReduce rides direct ring links at tax 1, so the combined
			// tax rises with the all-to-all share of the batch.
			combined := fab.AllReduceMatrix(dem)
			for s := range dem.MP {
				for dd, v := range dem.MP[s] {
					combined.Add(s, dd, v)
				}
			}
			tax := fab.Routes.BandwidthTax(combined)
			vals = append(vals, fmt.Sprintf("%.2f", tax))
		}
		b.WriteString(row(vals...))
	}
	b.WriteString("paper: 1.11 at bs=64/d=4 improving to 1.05 at d=8; up to 3.03 at bs=2048/d=4\n")
	return b.String()
}

// Fig14PathLengthCDF reproduces Figure 14: the CDF of path lengths across
// server pairs for d=4 vs d=8.
func Fig14PathLengthCDF(p Params) string {
	var b strings.Builder
	b.WriteString(header("Figure 14", "Path length CDF"))
	for _, d := range []int{4, 8} {
		_, _, dem, err := allToAllSetup(p.Scale, 128)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		tf, err := core.TopologyFinder(core.Config{N: p.Scale, D: d, LinkBW: 100e9}, dem)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		var lens []float64
		for s := 0; s < p.Scale; s++ {
			for dst := 0; dst < p.Scale; dst++ {
				if s == dst {
					continue
				}
				if nodes := tf.Routes.Get(s, dst); nodes != nil {
					lens = append(lens, float64(len(nodes)-1))
				}
			}
		}
		fmt.Fprintf(&b, "d=%d: %s\n", d, stats.Summary(lens))
	}
	b.WriteString("paper shape: average path length drops sharply from d=4 to d=8\n")
	return b.String()
}

// Fig15LinkTrafficCDF reproduces Figure 15: per-link traffic distribution
// of an all-to-all matrix routed on the TopoOpt fabric.
func Fig15LinkTrafficCDF(p Params) string {
	var b strings.Builder
	b.WriteString(header("Figure 15", "Per-link traffic distribution (all-to-all MP matrix)"))
	for _, batch := range []int{128, 2048} {
		fmt.Fprintf(&b, "\nbatch size %d:\n", batch)
		for _, d := range []int{4, 8} {
			_, _, dem, err := allToAllSetup(p.Scale, batch)
			if err != nil {
				return b.String() + "error: " + err.Error()
			}
			tf, err := core.TopologyFinder(core.Config{N: p.Scale, D: d, LinkBW: 100e9}, dem)
			if err != nil {
				return b.String() + "error: " + err.Error()
			}
			loads := tf.Routes.LinkLoads(dem.MP)
			var mb []float64
			for _, v := range loads {
				mb = append(mb, float64(v)/1e6)
			}
			sort.Float64s(mb)
			imb := 0.0
			if len(mb) > 0 && stats.Max(mb) > 0 {
				imb = (1 - stats.Min(mb)/stats.Max(mb)) * 100
			}
			fmt.Fprintf(&b, "d=%d: link MB %s; min/max imbalance %.0f%%\n",
				d, stats.Summary(mb), imb)
		}
	}
	b.WriteString("paper: least-loaded link carries 39% (d=4) / 59% (d=8) less than the most loaded\n")
	return b.String()
}

// AblationCoinChange compares coin-change routing hops against plain
// BFS shortest paths on the same AllReduce sub-topology (design decision
// 4 in DESIGN.md).
func AblationCoinChange(p Params) string {
	var b strings.Builder
	b.WriteString(header("Ablation", "Coin-change vs shortest-path routing on AllReduce rings"))
	n := p.Scale
	m := model.CANDLEPreset(model.Sec53)
	st := parallel.DataParallel(m, n)
	dem, _ := traffic.FromStrategy(m, st, m.BatchPerGPU)
	tf, err := core.TopologyFinder(core.Config{N: n, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	var ccHops, spHops []float64
	sp := route.NewTable(n)
	sp.FillShortestPaths(tf.Network.G)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			ccHops = append(ccHops, float64(len(tf.Routes.Get(s, d))-1))
			spHops = append(spHops, float64(len(sp.Get(s, d))-1))
		}
	}
	fmt.Fprintf(&b, "coin-change:  %s\n", stats.Summary(ccHops))
	fmt.Fprintf(&b, "shortest:     %s\n", stats.Summary(spHops))
	b.WriteString("coin-change routes stay on ring links by construction; hop counts match BFS on the ring-only fabric\n")
	return b.String()
}
