// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each function
// returns the figure's rows/series as formatted text; bench_test.go and
// cmd/experiments are thin callers.
//
// Params scales the expensive sweeps: Quick (the default for benches)
// runs the §5.3–§5.5 experiments at 32 servers with reduced MCMC budgets,
// preserving every qualitative shape; Full reproduces the paper's 128-
// and 432-server scales (minutes of runtime; use cmd/experiments -full).
package experiments

import (
	"fmt"
	"strings"

	"topoopt/internal/model"
)

// Params scales experiment sweeps.
type Params struct {
	// Scale is the dedicated-cluster size (paper: 128).
	Scale int
	// SharedScale is the shared-cluster size (paper: 432).
	SharedScale int
	// ServersPerJob in the shared cluster (paper: 16).
	ServersPerJob int
	// MCMCIters bounds strategy search per evaluation.
	MCMCIters int
	// Iterations per job in shared-cluster runs.
	Iterations int
	Seed       int64
}

// Quick is the bench-friendly configuration.
var Quick = Params{Scale: 32, SharedScale: 64, ServersPerJob: 8,
	MCMCIters: 30, Iterations: 2, Seed: 1}

// Full matches the paper's scales.
var Full = Params{Scale: 128, SharedScale: 432, ServersPerJob: 16,
	MCMCIters: 200, Iterations: 5, Seed: 1}

// sec21DLRM is the §2.1 motivating example: 4 embedding tables of
// 512×1e7 plus a dense part sized so ring-AllReduce transfers ≈4 GB per
// edge and MP transfers are tens of MB — the Figure 1b magnitudes.
func sec21DLRM() *model.Model {
	return model.DLRM(model.DLRMConfig{BatchPerGPU: 8192, DenseLayers: 8,
		DenseLayerSize: 8192, DenseFeatLayers: 4, FeatLayerSize: 2048,
		EmbedDim: 512, EmbedRows: 1e7, EmbedTables: 4})
}

// scaledModel shrinks a §5.3 preset's embedding-table count to the
// cluster scale so reduced-scale runs keep the paper's tables-per-server
// ratio.
func scaledDLRM(p Params) *model.Model {
	tables := 64 * p.Scale / 128
	if tables < 4 {
		tables = 4
	}
	return model.DLRM(model.DLRMConfig{BatchPerGPU: 128, DenseLayers: 8,
		DenseLayerSize: 2048, DenseFeatLayers: 16, FeatLayerSize: 4096,
		EmbedDim: 128, EmbedRows: 1e7, EmbedTables: tables})
}

func scaledNCF(p Params) *model.Model {
	t := 32 * p.Scale / 128
	if t < 4 {
		t = 4
	}
	return model.NCF(model.NCFConfig{BatchPerGPU: 128, DenseLayers: 8,
		DenseLayerSize: 4096, UserTablesMF: t, UserTablesMLP: t,
		ItemTablesMF: t, ItemTablesMLP: t, UsersPerTable: 1e6,
		ItemsPerTable: 1e6, MFDim: 64, MLPDim: 128})
}

// sec53Models returns the six §5.3 workloads at the requested scale.
func sec53Models(p Params) []*model.Model {
	return []*model.Model{
		model.CANDLEPreset(model.Sec53),
		model.VGGPreset(model.Sec53),
		model.BERTPreset(model.Sec53),
		scaledDLRM(p),
		scaledNCF(p),
		model.ResNetPreset(model.Sec53),
	}
}

// header formats a figure banner.
func header(id, title string) string {
	line := strings.Repeat("=", 72)
	return fmt.Sprintf("%s\n%s — %s\n%s\n", line, id, title, line)
}

// row formats a result line with aligned columns.
func row(cols ...string) string {
	var b strings.Builder
	for i, c := range cols {
		if i == 0 {
			fmt.Fprintf(&b, "%-22s", c)
		} else {
			fmt.Fprintf(&b, "%14s", c)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func secs(v float64) string { return fmt.Sprintf("%.4gs", v) }
