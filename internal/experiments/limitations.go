package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"topoopt/internal/cluster"
	"topoopt/internal/core"
	"topoopt/internal/flexnet"
	"topoopt/internal/route"
	"topoopt/internal/stats"
	"topoopt/internal/traffic"
)

// ExtMoETimeVaryingTraffic demonstrates the §7 limitation honestly:
// TopoOpt assumes the traffic pattern is identical across iterations,
// which Mixture-of-Experts gating breaks. We draw per-iteration random
// expert-routing matrices and compare the static TopoOpt fabric
// (optimized for the average pattern) against a per-iteration
// OCS-reconfig fabric at two switching speeds.
func ExtMoETimeVaryingTraffic(p Params) string {
	var b strings.Builder
	b.WriteString(header("Extension (§7 limitation)", "MoE-style time-varying traffic"))
	n := 16
	d := 4
	bw := 100e9
	iters := 5
	rng := rand.New(rand.NewSource(p.Seed))

	// Average demand: uniform all-to-all expert traffic + a dense
	// AllReduce group.
	avg := traffic.Demand{N: n, MP: traffic.NewMatrix(n)}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	avg.Groups = []traffic.Group{{Members: all, Bytes: 200e6}}
	perPair := int64(8e6)
	for s := 0; s < n; s++ {
		for dd := 0; dd < n; dd++ {
			avg.MP.Add(s, dd, perPair)
		}
	}
	tf, err := core.TopologyFinder(core.Config{N: n, D: d, LinkBW: bw}, avg)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	staticFab := flexnet.NewTopoOptFabric(tf)

	// Per-iteration demand: each server routes its tokens to 2 random
	// experts, concentrating the MP matrix differently every iteration.
	draw := func() traffic.Demand {
		dem := traffic.Demand{N: n, MP: traffic.NewMatrix(n), Groups: avg.Groups}
		for s := 0; s < n; s++ {
			for e := 0; e < 2; e++ {
				dst := rng.Intn(n)
				for dst == s {
					dst = rng.Intn(n)
				}
				dem.MP.Add(s, dst, perPair*int64(n)/2)
				dem.MP.Add(dst, s, perPair*int64(n)/2)
			}
		}
		return dem
	}
	var staticTimes, ocsFast, ocsSlow []float64
	for it := 0; it < iters; it++ {
		dem := draw()
		st, err := flexnet.SimulateIteration(staticFab, dem, 0.002)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		staticTimes = append(staticTimes, st.Total())
		for _, cfg := range []struct {
			lat  float64
			dest *[]float64
		}{{1e-6, &ocsFast}, {10e-3, &ocsSlow}} {
			t2, err := flexnet.SimulateOCSIteration(flexnet.OCSRunConfig{
				N: n, D: d, LinkBW: bw, ReconfigLatency: cfg.lat,
				MeasureInterval: 0.050, HostForwarding: true,
			}, dem, 0.002)
			if err != nil {
				return b.String() + "error: " + err.Error()
			}
			*cfg.dest = append(*cfg.dest, t2)
		}
	}
	b.WriteString(row("fabric", "mean iter", "max iter"))
	b.WriteString(row("TopoOpt (static)", secs(stats.Mean(staticTimes)), secs(stats.Max(staticTimes))))
	b.WriteString(row("OCS 1us (ideal)", secs(stats.Mean(ocsFast)), secs(stats.Max(ocsFast))))
	b.WriteString(row("OCS 10ms (today)", secs(stats.Mean(ocsSlow)), secs(stats.Max(ocsSlow))))
	b.WriteString("the static fabric loses to a hypothetical fast OCS on shifting MoE traffic\n")
	b.WriteString("but beats today's 10 ms switches — the paper's case for one-shot reconfiguration\n")
	return b.String()
}

// ExtDynamicArrivals quantifies the Appendix C look-ahead design: job
// start delay under cold patch-panel, look-ahead patch-panel and OCS
// provisioning for a Poisson-ish arrival sequence.
func ExtDynamicArrivals(p Params) string {
	var b strings.Builder
	b.WriteString(header("Extension (Appendix C)", "Dynamic job arrivals and look-ahead provisioning"))
	rng := rand.New(rand.NewSource(p.Seed))
	var arrivals []cluster.Arrival
	at := 0.0
	for i := 0; i < 20; i++ {
		at += 200 + rng.Float64()*400 // 200-600 s inter-arrival
		arrivals = append(arrivals, cluster.Arrival{
			At: at, Servers: 8, Duration: 1800 + rng.Float64()*3600,
		})
	}
	b.WriteString(row("provisioning", "mean delay", "p99 delay"))
	for _, mode := range []struct {
		name string
		m    cluster.ProvisioningMode
	}{
		{"patch panel (cold)", cluster.PatchPanelCold},
		{"patch panel + look-ahead", cluster.PatchPanelLookAhead},
		{"OCS", cluster.OCS},
	} {
		res, err := cluster.SimulateArrivals(64, arrivals, mode.m, nil)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		b.WriteString(row(mode.name,
			fmt.Sprintf("%.1fs", stats.Mean(res.StartDelay)),
			fmt.Sprintf("%.1fs", stats.Percentile(res.StartDelay, 99))))
	}
	b.WriteString("look-ahead hides the robotic patch latency behind the previous job's run\n")
	return b.String()
}

// ExtRoutingTE runs the §5.5 future-work experiment: multipath traffic
// engineering on the TopoOpt fabric, reporting max/mean link load and the
// α slowdown factor against single-path routing (compare Figure 15's
// imbalance).
func ExtRoutingTE(p Params) string {
	var b strings.Builder
	b.WriteString(header("Extension (§5.5)", "Multipath traffic engineering for forwarded MP traffic"))
	n := p.Scale
	_, _, dem, err := allToAllSetup(n, 512)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	for _, d := range []int{4, 8} {
		tf, err := core.TopologyFinder(core.Config{N: n, D: d, LinkBW: 100e9, KShortest: 3}, dem)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		// Single-path baseline.
		loads := tf.Routes.LinkLoads(dem.MP)
		var singleMax int64
		var sum float64
		for _, v := range loads {
			if v > singleMax {
				singleMax = v
			}
			sum += float64(v)
		}
		singleMean := sum / float64(len(loads))
		// TE over the k-shortest candidates.
		res, err := route.Balance(dem.MP, tf.MPPaths, 2000)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		fmt.Fprintf(&b, "\nd=%d:\n", d)
		b.WriteString(row("routing", "max link", "mean link", "alpha"))
		b.WriteString(row("single path",
			fmt.Sprintf("%.1fMB", float64(singleMax)/1e6),
			fmt.Sprintf("%.1fMB", singleMean/1e6),
			fmt.Sprintf("%.2f", tf.Routes.BandwidthTax(dem.MP))))
		b.WriteString(row("TE (min-max)",
			fmt.Sprintf("%.1fMB", float64(res.MaxLinkLoad)/1e6),
			fmt.Sprintf("%.1fMB", res.MeanLinkLoad/1e6),
			fmt.Sprintf("%.2f", res.Alpha)))
	}
	b.WriteString("TE narrows the max/mean gap of Figure 15; α approaches the average path length\n")
	return b.String()
}
