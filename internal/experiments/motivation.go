package experiments

import (
	"fmt"
	"strings"

	"topoopt/internal/collective"
	"topoopt/internal/flexnet"
	"topoopt/internal/heatmap"
	"topoopt/internal/model"
	"topoopt/internal/optic"
	"topoopt/internal/parallel"
	"topoopt/internal/stats"
	"topoopt/internal/topo"
	"topoopt/internal/trace"
	"topoopt/internal/traffic"
)

// Fig01DLRMHeatmaps reproduces Figure 1: the §2.1 DLRM (4 embedding
// tables of 512×1e7) on 16 servers under pure data parallelism vs hybrid
// parallelism, with the max-transfer reduction (44 GB → 4 GB).
func Fig01DLRMHeatmaps() string {
	m := sec21DLRM()
	n := 16
	var b strings.Builder
	b.WriteString(header("Figure 1", "DLRM traffic heatmaps per parallelization strategy"))

	dp := parallel.DataParallel(m, n)
	demDP, _ := traffic.FromStrategy(m, dp, m.BatchPerGPU)
	tmDP := demDP.CombinedMatrix()
	fmt.Fprintf(&b, "(a) Data parallelism: max transfer %s, total %s\n",
		heatmap.Human(float64(tmDP.Max())), heatmap.Human(float64(tmDP.Total())))
	b.WriteString(heatmap.Render(tmDP))

	hy := parallel.Hybrid(m, n)
	demHy, _ := traffic.FromStrategy(m, hy, m.BatchPerGPU)
	tmHy := demHy.CombinedMatrix()
	fmt.Fprintf(&b, "\n(b) Hybrid parallelism: max transfer %s, total %s\n",
		heatmap.Human(float64(tmHy.Max())), heatmap.Human(float64(tmHy.Total())))
	b.WriteString(heatmap.Render(tmHy))
	fmt.Fprintf(&b, "\nmax-transfer reduction: %.1fx (paper: 44 GB -> 4 GB, 11x)\n",
		float64(tmDP.Max())/float64(tmHy.Max()))
	return b.String()
}

// Fig02ProductionCDFs reproduces Figure 2: worker-count and duration CDFs
// of the synthetic production trace.
func Fig02ProductionCDFs() string {
	var b strings.Builder
	b.WriteString(header("Figure 2", "Production job CDFs (synthetic trace, §2.2)"))
	b.WriteString(row("family", "p10 wrk", "p50 wrk", "p90 wrk", "p10 hrs", "p50 hrs", "p90 hrs"))
	for _, f := range trace.Families() {
		jobs := trace.Generate(f, 500, 1)
		ws, ds := trace.Workers(jobs), trace.Durations(jobs)
		b.WriteString(row(f.String(),
			fmt.Sprintf("%.0f", stats.Percentile(ws, 10)),
			fmt.Sprintf("%.0f", stats.Percentile(ws, 50)),
			fmt.Sprintf("%.0f", stats.Percentile(ws, 90)),
			fmt.Sprintf("%.1f", stats.Percentile(ds, 10)),
			fmt.Sprintf("%.1f", stats.Percentile(ds, 50)),
			fmt.Sprintf("%.1f", stats.Percentile(ds, 90))))
	}
	var all []float64
	for _, f := range trace.Families() {
		all = append(all, trace.Durations(trace.Generate(f, 500, 1))...)
	}
	fmt.Fprintf(&b, "top 10%% of jobs exceed %.0f hours (paper: 96 h)\n",
		stats.Percentile(all, 90))
	return b.String()
}

// Fig03NetworkOverhead reproduces Figure 3: network overhead (% of
// iteration time) vs GPU count for the six workloads on a fixed
// 25 Gbps/GPU Fat-tree.
func Fig03NetworkOverhead(p Params) string {
	var b strings.Builder
	b.WriteString(header("Figure 3", "Network overhead vs number of GPUs (Fat-tree, 25 Gbps/GPU)"))
	gpuCounts := []int{8, 16, 32, 64, 128}
	cols := []string{"model"}
	for _, g := range gpuCounts {
		cols = append(cols, fmt.Sprintf("%d GPUs", g))
	}
	b.WriteString(row(cols...))
	for _, m := range sec53Models(p) {
		vals := []string{m.Name}
		for _, g := range gpuCounts {
			fab := flexnet.NewSwitchFabric(topo.FatTree(g, 25e9))
			st := parallel.DataParallel(m, g)
			dem, err := traffic.FromStrategy(m, st, m.BatchPerGPU)
			if err != nil {
				vals = append(vals, "err")
				continue
			}
			compute := st.MaxComputeTime(m, model.A100, m.BatchPerGPU)
			comm := flexnet.EstimateIteration(fab, dem, 0)
			overhead := comm / (comm + compute) * 100
			vals = append(vals, fmt.Sprintf("%.0f%%", overhead))
		}
		b.WriteString(row(vals...))
	}
	b.WriteString("shape check: overhead grows with GPU count, reaching tens of % at 128\n")
	return b.String()
}

// Fig04ProductionHeatmaps reproduces Figure 4: per-family production
// traffic heatmaps (ring diagonal + model-dependent MP rows).
func Fig04ProductionHeatmaps() string {
	var b strings.Builder
	b.WriteString(header("Figure 4", "Traffic heatmaps of production jobs (synthetic)"))
	sizes := map[trace.Family]int{
		trace.ObjectTracking: 48, trace.Recommendation: 48,
		trace.NLP: 49, trace.ImageRecognition: 48,
	}
	for _, f := range trace.Families() {
		tm := trace.ProductionHeatmap(f, sizes[f], 3)
		fmt.Fprintf(&b, "\n(%s, %d servers) ring-dominant=%v\n",
			f, sizes[f], trace.IsRingDominant(tm))
		b.WriteString(heatmap.Render(tm))
	}
	return b.String()
}

// Tab01OpticalTech reproduces Table 1.
func Tab01OpticalTech() string {
	var b strings.Builder
	b.WriteString(header("Table 1", "Optical switching technologies"))
	for _, d := range optic.All() {
		b.WriteString(d.String() + "\n")
	}
	return b.String()
}

// Fig07RingPermutations reproduces Figures 7–8: the +1/+3/+7 ring
// permutations for 16 servers and their traffic heatmaps for the §2.1
// DLRM.
func Fig07RingPermutations() string {
	m := sec21DLRM()
	n := 16
	hy := parallel.Hybrid(m, n)
	dem, _ := traffic.FromStrategy(m, hy, m.BatchPerGPU)
	var b strings.Builder
	b.WriteString(header("Figures 7-8", "Ring-AllReduce permutations +1, +3, +7 (16 servers)"))
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	for _, p := range []int{1, 3, 7} {
		tm := dem.MP.Clone()
		for _, g := range dem.Groups {
			collective.Ring(tm, g.Members, p, g.Bytes)
		}
		fmt.Fprintf(&b, "\n\"+%d\" permutation: max transfer %s (AllReduce volume identical across permutations)\n",
			p, heatmap.Human(float64(tm.Max())))
		b.WriteString(heatmap.Render(tm))
	}
	return b.String()
}
