package experiments

import (
	"fmt"
	"strings"

	"topoopt/internal/flexnet"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/perm"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// ExtTotientPermsFatTree explores the §7 suggestion that TotientPerms is
// of independent interest on Fat-trees: load-balancing one AllReduce
// across several ring permutations on an oversubscribed two-tier fabric.
// On a full-bisection fabric permutations are equivalent (uniform
// bandwidth); under oversubscription the +1 ring keeps most hops
// intra-rack while larger strides cross the contended uplinks, so the
// experiment quantifies that trade-off per rack size.
func ExtTotientPermsFatTree(p Params) string {
	var b strings.Builder
	b.WriteString(header("Extension (§7)", "TotientPerms load-balancing on Fat-trees"))
	n := 32
	m := model.CANDLEPreset(model.Sec56)
	st := parallel.DataParallel(m, n)
	dem, err := traffic.FromStrategy(m, st, m.BatchPerGPU)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	ringSets := map[string][]int{
		"single +1 ring":  {1},
		"TotientPerms x4": perm.SelectPermutations(n, 4, perm.Coprimes(n)),
	}
	for _, rack := range []int{8, 16} {
		fmt.Fprintf(&b, "\n2:1 oversubscribed Fat-tree, racks of %d, 100 Gbps/server:\n", rack)
		for _, name := range []string{"single +1 ring", "TotientPerms x4"} {
			ps := ringSets[name]
			fab := flexnet.NewSwitchFabric(topo.OversubFatTree(n, rack, 100e9))
			d2 := traffic.Demand{N: n, MP: traffic.NewMatrix(n)}
			// Render the rings explicitly as grouped demand so the
			// fabric's +1 fallback does not override the permutation set.
			tm := traffic.NewMatrix(fab.Net.G.N())
			share := dem.Groups[0].Bytes / int64(len(ps))
			for _, pp := range ps {
				per := traffic.RingPerNodeBytes(share, n)
				for i := 0; i < n; i++ {
					tm.Add(members[i], members[(i+pp)%n], per)
				}
			}
			_ = d2
			it, err := simulateMatrix(fab, tm)
			if err != nil {
				fmt.Fprintf(&b, "  %-18s error: %v\n", name, err)
				continue
			}
			fmt.Fprintf(&b, "  %-18s AllReduce time %s\n", name, secs(it))
		}
	}
	b.WriteString("\nfull-bisection control (permutation-invariant by uniform bandwidth):\n")
	for _, name := range []string{"single +1 ring", "TotientPerms x4"} {
		ps := ringSets[name]
		fab := flexnet.NewSwitchFabric(topo.IdealSwitch(n, 100e9))
		tm := traffic.NewMatrix(fab.Net.G.N())
		share := dem.Groups[0].Bytes / int64(len(ps))
		for _, pp := range ps {
			per := traffic.RingPerNodeBytes(share, n)
			for i := 0; i < n; i++ {
				tm.Add(members[i], members[(i+pp)%n], per)
			}
		}
		it, err := simulateMatrix(fab, tm)
		if err != nil {
			fmt.Fprintf(&b, "  %-18s error: %v\n", name, err)
			continue
		}
		fmt.Fprintf(&b, "  %-18s AllReduce time %s\n", name, secs(it))
	}
	return b.String()
}

// simulateMatrix runs one traffic matrix on a fabric to completion.
func simulateMatrix(fab *flexnet.Fabric, tm traffic.Matrix) (float64, error) {
	dem := traffic.Demand{N: tm.N(), MP: tm}
	it, err := flexnet.SimulateIteration(fab, dem, 0)
	if err != nil {
		return 0, err
	}
	return it.MPTime, nil
}
