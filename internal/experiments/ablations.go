package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"topoopt/internal/core"
	"topoopt/internal/flexnet"
	"topoopt/internal/graph"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/perm"
	"topoopt/internal/route"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// AblationSelectPerms compares SelectPermutations' geometric-sequence
// selection against choosing the d smallest or d random co-primes,
// measuring the resulting AllReduce sub-topology diameter (Theorem 1).
func AblationSelectPerms(p Params) string {
	var b strings.Builder
	b.WriteString(header("Ablation", "SelectPermutations: geometric vs smallest vs random"))
	b.WriteString(row("n / d", "geometric", "smallest", "random"))
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range []int{32, 64, 128, 256} {
		for _, d := range []int{2, 3, 4} {
			cands := perm.Coprimes(n)
			geo := perm.SelectPermutations(n, d, cands)
			smallest := append([]int(nil), cands...)
			if len(smallest) > d {
				smallest = smallest[:d]
			}
			random := make([]int, 0, d)
			seen := map[int]bool{}
			for len(random) < d && len(random) < len(cands) {
				c := cands[rng.Intn(len(cands))]
				if !seen[c] {
					seen[c] = true
					random = append(random, c)
				}
			}
			diam := func(ps []int) string {
				cc, err := route.NewCoinChange(n, ps, false)
				if err != nil {
					return "err"
				}
				return fmt.Sprint(cc.MaxHops())
			}
			b.WriteString(row(fmt.Sprintf("n=%d d=%d", n, d),
				diam(geo), diam(smallest), diam(random)))
		}
	}
	b.WriteString("geometric selection bounds diameter near d*n^(1/d); smallest co-primes degenerate to ~n/d\n")
	return b.String()
}

// AblationMPDiscount compares TopologyFinder's demand-halving after each
// matching round (Algorithm 1 line 17) against no discount, measuring the
// number of distinct server pairs served with direct MP links.
func AblationMPDiscount(p Params) string {
	var b strings.Builder
	b.WriteString(header("Ablation", "MP matching demand discount (halving) vs none"))
	n := 16
	rng := rand.New(rand.NewSource(p.Seed))
	resid := make([][]float64, n)
	for i := range resid {
		resid[i] = make([]float64, n)
	}
	// Skewed demand: a few hot pairs and a long tail.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			resid[i][j] = rng.Float64()
		}
	}
	resid[0][1] = 100
	resid[2][3] = 90
	run := func(discount bool) int {
		r := make([][]float64, n)
		for i := range r {
			r[i] = append([]float64(nil), resid[i]...)
		}
		pairs := map[[2]int]bool{}
		for round := 0; round < 6; round++ {
			var edges []graph.MatchEdge
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if r[i][j] > 0 {
						edges = append(edges, graph.MatchEdge{U: i, V: j, Weight: r[i][j]})
					}
				}
			}
			mate := graph.MaxWeightMatching(n, edges, false)
			for v, u := range mate {
				if u > v {
					pairs[[2]int{v, u}] = true
					if discount {
						r[v][u] /= 2
					}
				}
			}
		}
		return len(pairs)
	}
	with, without := run(true), run(false)
	b.WriteString(row("distinct pairs", fmt.Sprintf("halving: %d", with),
		fmt.Sprintf("none: %d", without)))
	fmt.Fprintf(&b, "halving spreads links over %d pairs vs %d without (diverse connectivity, Alg 1)\n",
		with, without)
	return b.String()
}

// AblationAlternating compares the §4.1 alternating optimization against
// the naive sequential approach (search the strategy on an ideal fabric,
// then fit a topology once).
func AblationAlternating(p Params) string {
	var b strings.Builder
	b.WriteString(header("Ablation", "Alternating optimization vs sequential (naive)"))
	n := 16
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: 64, DenseLayers: 4,
		DenseLayerSize: 1024, DenseFeatLayers: 4, FeatLayerSize: 1024,
		EmbedDim: 128, EmbedRows: 1e6, EmbedTables: 8})
	alt, err := flexnet.CoOptimize(m, flexnet.CoOptConfig{
		N: n, Degree: 4, LinkBW: 100e9, Rounds: 3, MCMCIters: p.MCMCIters, Seed: p.Seed,
	})
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	// Naive: best strategy on an ideal switch, then one TopologyFinder.
	ideal := flexnet.NewSwitchFabric(topo.IdealSwitch(n, 4*100e9))
	st, _, err := flexnet.SearchOnFabric(m, ideal, n, 0, flexnet.MCMCConfig{Iters: p.MCMCIters, Seed: p.Seed}, model.A100)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	dem, err := traffic.FromStrategy(m, st, m.BatchPerGPU)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	tf, err := core.TopologyFinder(core.Config{N: n, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	seqIt, err := flexnet.SimulateIteration(flexnet.NewTopoOptFabric(tf), dem,
		st.MaxComputeTime(m, model.A100, m.BatchPerGPU))
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	b.WriteString(row("alternating", secs(alt.IterTime.Total())))
	b.WriteString(row("sequential", secs(seqIt.Total())))
	fmt.Fprintf(&b, "alternating/sequential = %.2f (<= 1 expected; equal when hybrid is already optimal)\n",
		alt.IterTime.Total()/seqIt.Total())
	return b.String()
}

// AblationMCMCBudget sweeps the MCMC iteration budget (design decision 6).
func AblationMCMCBudget(p Params) string {
	var b strings.Builder
	b.WriteString(header("Ablation", "MCMC search budget"))
	n := 16
	m := model.DLRM(model.DLRMConfig{BatchPerGPU: 64, DenseLayers: 4,
		DenseLayerSize: 1024, DenseFeatLayers: 4, FeatLayerSize: 1024,
		EmbedDim: 128, EmbedRows: 1e6, EmbedTables: 8})
	b.WriteString(row("iters", "estimated iteration"))
	fab := flexnet.NewSwitchFabric(topo.IdealSwitch(n, 400e9))
	for _, iters := range []int{10, 50, 200, 800} {
		eval := func(s parallel.Strategy) float64 {
			d, err := traffic.FromStrategy(m, s, m.BatchPerGPU)
			if err != nil {
				return 1e30
			}
			return flexnet.EstimateIteration(fab, d, s.MaxComputeTime(m, model.A100, m.BatchPerGPU))
		}
		_, cost := flexnet.MCMCSearch(m, n, m.BatchPerGPU, eval,
			flexnet.MCMCConfig{Iters: iters, Seed: p.Seed})
		b.WriteString(row(fmt.Sprint(iters), secs(cost)))
	}
	b.WriteString("cost is non-increasing in budget (best-so-far semantics)\n")
	return b.String()
}

// AblationMultiRing compares TotientPerms multi-ring AllReduce against a
// single +1 ring on the same TopoOpt fabric (design decision: the NCCL
// load-balancing integration of §6).
func AblationMultiRing(p Params) string {
	var b strings.Builder
	b.WriteString(header("Ablation", "Multi-ring (TotientPerms) vs single-ring AllReduce"))
	n := 32
	m := model.CANDLEPreset(model.Sec53)
	st := parallel.DataParallel(m, n)
	dem, _ := traffic.FromStrategy(m, st, m.BatchPerGPU)
	tf, err := core.TopologyFinder(core.Config{N: n, D: 4, LinkBW: 100e9}, dem)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	multi := flexnet.NewTopoOptFabric(tf)
	multiIt, err := flexnet.SimulateIteration(multi, dem, 0)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	single := flexnet.NewTopoOptFabric(tf)
	single.Rings = nil // falls back to a +1 ring over one interface
	singleIt, err := flexnet.SimulateIteration(single, dem, 0)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	b.WriteString(row("multi-ring", secs(multiIt.AllReduceTime)))
	b.WriteString(row("single-ring", secs(singleIt.AllReduceTime)))
	fmt.Fprintf(&b, "speedup %.1fx (expect ~#rings: one ring leaves d-1 interfaces idle)\n",
		singleIt.AllReduceTime/multiIt.AllReduceTime)
	return b.String()
}
