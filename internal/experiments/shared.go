package experiments

import (
	"fmt"
	"strings"

	"topoopt/internal/cluster"
	"topoopt/internal/collective"
	"topoopt/internal/core"
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/heatmap"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/stats"
	"topoopt/internal/testbed"
	"topoopt/internal/topo"
	"topoopt/internal/traffic"
)

// Fig16SharedCluster reproduces Figure 16: average and 99th-percentile
// iteration time vs cluster load for TopoOpt (sharded partitions),
// Fat-tree, Oversub Fat-tree and Ideal Switch.
func Fig16SharedCluster(p Params) string {
	var b strings.Builder
	n := p.SharedScale
	spj := p.ServersPerJob
	maxJobs := n / spj
	b.WriteString(header("Figure 16",
		fmt.Sprintf("Shared cluster of %d servers, %d servers/job (d=8, B=100G)", n, spj)))
	b.WriteString(row("load", "arch", "avg iter", "p99 iter"))
	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	d := 8
	bw := 100e9
	// Rack size for the oversubscribed fabric; job placement is strided
	// across racks (production clusters are not rack-aligned), which is
	// what exposes ToR-uplink contention.
	rack := spj
	for _, load := range loads {
		jobs := int(load * float64(maxJobs))
		if jobs < 1 {
			jobs = 1
		}
		// TopoOpt: optically sharded partitions (placement-insensitive).
		sched := cluster.NewScheduler(n)
		js, err := cluster.BuildMix(sched, cluster.MixSpec{Jobs: jobs, ServersPerJob: spj})
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		times, err := cluster.RunShardedTopoOpt(js, d, bw, p.Iterations, model.A100)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		flat := cluster.Flatten(times)
		b.WriteString(row(fmt.Sprintf("%.0f%%", load*100), "TopoOpt",
			secs(stats.Mean(flat)), secs(stats.Percentile(flat, 99))))

		// Switch fabrics: all jobs contend.
		for _, fabSpec := range []struct {
			name string
			fab  *flexnet.Fabric
		}{
			{"Fat-tree", flexnet.NewSwitchFabric(topo.FatTree(n,
				cost.EquivalentFatTreeBandwidth(n, d, bw)))},
			{"OversubFatTree", flexnet.NewSwitchFabric(topo.OversubFatTree(n, rack, float64(d)*bw))},
			{"IdealSwitch", flexnet.NewSwitchFabric(topo.IdealSwitch(n, float64(d)*bw))},
		} {
			sched := cluster.NewScheduler(n)
			js, err := cluster.BuildMix(sched, cluster.MixSpec{Jobs: jobs, ServersPerJob: spj, Stride: rack})
			if err != nil {
				return b.String() + "error: " + err.Error()
			}
			times, err := cluster.RunShared(fabSpec.fab, js, p.Iterations, model.A100)
			if err != nil {
				return b.String() + "error: " + err.Error()
			}
			flat := cluster.Flatten(times)
			b.WriteString(row("", fabSpec.name,
				secs(stats.Mean(flat)), secs(stats.Percentile(flat, 99))))
		}
	}
	b.WriteString("paper: TopoOpt improves tail iteration time up to 3.4x vs Fat-tree at full load\n")
	return b.String()
}

// Fig17ReconfigLatency reproduces Figure 17: DLRM and BERT iteration time
// vs OCS reconfiguration latency, with and without host forwarding,
// against the static TopoOpt line.
func Fig17ReconfigLatency(p Params) string {
	var b strings.Builder
	n := p.Scale
	d := 8
	bw := 100e9
	b.WriteString(header("Figure 17",
		fmt.Sprintf("Reconfiguration latency sweep (%d servers, d=8, B=100G)", n)))
	models := []*model.Model{scaledDLRM(p), model.BERTPreset(model.Sec53)}
	latencies := []float64{1e-6, 10e-6, 100e-6, 1e-3, 10e-3}
	for _, m := range models {
		st := parallel.Hybrid(m, n)
		dem, err := traffic.FromStrategy(m, st, m.BatchPerGPU)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		compute := st.MaxComputeTime(m, model.A100, m.BatchPerGPU)
		tf, err := core.TopologyFinder(core.Config{N: n, D: d, LinkBW: bw}, dem)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		topoIt, err := flexnet.SimulateIteration(flexnet.NewTopoOptFabric(tf), dem, compute)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		fmt.Fprintf(&b, "\n%s — TopoOpt (static): %s\n", m.Name, secs(topoIt.Total()))
		b.WriteString(row("reconfig latency", "OCS-FW", "OCS-noFW"))
		for _, lat := range latencies {
			vals := []string{fmt.Sprintf("%.0fus", lat*1e6)}
			for _, fw := range []bool{true, false} {
				cfg := flexnet.OCSRunConfig{N: n, D: d, LinkBW: bw,
					ReconfigLatency: lat, MeasureInterval: 0.050, HostForwarding: fw}
				t, err := flexnet.SimulateOCSIteration(cfg, dem, compute)
				if err != nil {
					vals = append(vals, "err")
					continue
				}
				vals = append(vals, secs(t))
			}
			b.WriteString(row(vals...))
		}
	}
	b.WriteString("paper: 1us OCS-noFW matches TopoOpt; FW helps DLRM (all-to-all) but hurts BERT\n")
	return b.String()
}

// Fig19TestbedThroughput reproduces Figure 19: training throughput
// (samples/s) of the five §6 models on the 12-node prototype vs switch
// baselines.
func Fig19TestbedThroughput() string {
	var b strings.Builder
	b.WriteString(header("Figure 19", "Testbed training throughput (samples/second, 12 nodes)"))
	b.WriteString(row("model", "TopoOpt 4x25G", "Switch 100G", "Switch 25G"))
	for _, m := range testbed.Models() {
		vals := []string{m.Name}
		for _, s := range testbed.Setups() {
			r, err := testbed.Run(m, s, 0)
			if err != nil {
				vals = append(vals, "err")
				continue
			}
			vals = append(vals, fmt.Sprintf("%.0f", r.SamplesPerSecond))
		}
		b.WriteString(row(vals...))
	}
	b.WriteString("paper shape: TopoOpt ~= Switch 100G, Switch 25G lower\n")
	return b.String()
}

// Fig20TimeToAccuracy reproduces Figure 20: VGG19/ImageNet top-5
// time-to-accuracy curves on the three testbed fabrics.
func Fig20TimeToAccuracy() string {
	var b strings.Builder
	b.WriteString(header("Figure 20", "Time-to-accuracy, VGG19 on ImageNet (target 90% top-5)"))
	vgg := model.VGG(32, 19)
	b.WriteString(row("setup", "samples/s", "TTA (hours)"))
	var ttas []float64
	for _, s := range testbed.Setups() {
		r, err := testbed.Run(vgg, s, 32)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		h, err := testbed.TimeToAccuracy(0.90, r.SamplesPerSecond)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		ttas = append(ttas, h)
		b.WriteString(row(s.String(), fmt.Sprintf("%.0f", r.SamplesPerSecond),
			fmt.Sprintf("%.1f", h)))
	}
	fmt.Fprintf(&b, "TopoOpt vs Switch 25G speedup: %.1fx (paper: 2.0x)\n", ttas[2]/ttas[0])
	return b.String()
}

// Fig21TestbedAllToAll reproduces Figure 21: testbed iteration time vs
// batch size for the inflated-embedding DLRM.
func Fig21TestbedAllToAll() string {
	var b strings.Builder
	b.WriteString(header("Figure 21", "Testbed all-to-all impact (DLRM, 12 nodes)"))
	b.WriteString(row("batch", "a2a/AR ratio", "TopoOpt 4x25G", "Switch 100G", "Switch 25G"))
	for _, batch := range []int{32, 64, 128, 256, 512} {
		m := model.DLRMPreset(model.Sec6)
		st := parallel.Hybrid(m, testbed.Nodes)
		dem, err := traffic.FromStrategy(m, st, batch)
		if err != nil {
			return b.String() + "error: " + err.Error()
		}
		ratio := float64(dem.TotalMPBytes()) / float64(dem.TotalAllReduceBytes())
		vals := []string{fmt.Sprint(batch), fmt.Sprintf("%.0f%%", ratio*100)}
		for _, s := range testbed.Setups() {
			r, err := testbed.Run(m, s, batch)
			if err != nil {
				vals = append(vals, "err")
				continue
			}
			vals = append(vals, secs(r.IterationSeconds))
		}
		b.WriteString(row(vals...))
	}
	b.WriteString("paper: at bs=512 (78% a2a) TopoOpt is 1.6x faster than Switch 25G\n")
	return b.String()
}

// Tab02ComponentCosts reproduces Table 2.
func Tab02ComponentCosts() string {
	var b strings.Builder
	b.WriteString(header("Table 2", "Network component costs (USD)"))
	b.WriteString(row("Gbps", "transceiver", "NIC", "switch port", "patch port", "OCS port", "1x2 sw"))
	for _, t := range cost.Table2 {
		b.WriteString(row(fmt.Sprintf("%.0f", t.GbpsRate),
			fmt.Sprintf("%.0f", t.Transceiver), fmt.Sprintf("%.0f", t.NICPort),
			fmt.Sprintf("%.0f", t.ElectricalPort), fmt.Sprintf("%.0f", t.PatchPanelPort),
			fmt.Sprintf("%.0f", t.OCSPort), fmt.Sprintf("%.0f", t.OneByTwoSwitch)))
	}
	return b.String()
}

// FigA1DoubleBinaryTree reproduces Appendix A (Figures 22-24): DBT
// AllReduce heatmaps under label permutations.
func FigA1DoubleBinaryTree() string {
	var b strings.Builder
	b.WriteString(header("Figures 22-24 (Appendix A)", "Double binary tree AllReduce permutations"))
	n := 16
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	for trial, shift := range []int{0, 5, 11} {
		pi := make([]int, n)
		for i := range pi {
			pi[i] = (i + shift) % n
		}
		tm := traffic.NewMatrix(n)
		collective.DBT(tm, members, pi, 2e9)
		fmt.Fprintf(&b, "\npermutation %d (shift +%d): total %s, max %s\n",
			trial+1, shift, heatmap.Human(float64(tm.Total())), heatmap.Human(float64(tm.Max())))
		b.WriteString(heatmap.Render(tm))
	}
	b.WriteString("all permutations move identical volume (mutability, Appendix A)\n")
	return b.String()
}

// Fig28DegreeSensitivity reproduces Figure 28 (Appendix H): TopoOpt
// iteration time vs server degree for DLRM, CANDLE, BERT at 40 and
// 100 Gbps.
func Fig28DegreeSensitivity(p Params) string {
	var b strings.Builder
	b.WriteString(header("Figure 28 (Appendix H)", "Impact of server degree on TopoOpt"))
	models := []*model.Model{scaledDLRM(p), model.CANDLEPreset(model.Sec53),
		model.BERTPreset(model.Sec53)}
	for _, bw := range []float64{40e9, 100e9} {
		fmt.Fprintf(&b, "\n(B = %.0f Gbps)\n", bw/1e9)
		b.WriteString(row("model", "d=4", "d=6", "d=8", "d=10"))
		for _, m := range models {
			st := parallel.Hybrid(m, p.Scale)
			dem, err := traffic.FromStrategy(m, st, m.BatchPerGPU)
			if err != nil {
				return b.String() + "error: " + err.Error()
			}
			compute := st.MaxComputeTime(m, model.A100, m.BatchPerGPU)
			vals := []string{m.Name}
			for _, d := range []int{4, 6, 8, 10} {
				tf, err := core.TopologyFinder(core.Config{N: p.Scale, D: d, LinkBW: bw}, dem)
				if err != nil {
					vals = append(vals, "err")
					continue
				}
				it, err := flexnet.SimulateIteration(flexnet.NewTopoOptFabric(tf), dem, compute)
				if err != nil {
					vals = append(vals, "err")
					continue
				}
				vals = append(vals, secs(it.Total()))
			}
			b.WriteString(row(vals...))
		}
	}
	b.WriteString("paper: network-heavy models scale with degree; BERT is compute-bound\n")
	return b.String()
}
