// Package slo is the sustained-load SLO engine behind cmd/planload's
// open-loop mode: Poisson arrivals at a fixed offered rate with
// fire-and-forget scheduling, time-bucketed latency quantiles over the
// run, a pass/fail gate against a target p99, and a saturation-point
// search that binary-searches the highest rate still meeting the gate.
//
// Open-loop means the arrival schedule never waits for responses —
// unlike a closed-loop worker pool, which self-throttles as the server
// slows down and therefore flatters its tail latencies. The schedule is
// drawn up front from a seeded exponential inter-arrival process, so a
// (rate, duration, seed) triple offers a deterministic request count at
// deterministic offsets; only the measured latencies vary run to run.
package slo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"topoopt/internal/stats"
)

// Result is one request's outcome as reported by the Fire callback.
type Result struct {
	// Err marks the request as failed (transport error or non-2xx after
	// retries). Failed requests count toward bucket error totals and are
	// excluded from the latency quantiles.
	Err bool
}

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the offered arrival rate in requests/second. Required > 0.
	Rate float64
	// Duration is how long arrivals are offered. Required > 0. Requests
	// fired near the end still complete and are recorded; the run ends
	// when the last one does.
	Duration time.Duration
	// Bucket is the latency-quantile bucketing period (default 1s,
	// clamped to Duration).
	Bucket time.Duration
	// Seed seeds the arrival process (0 means seed 1, keeping runs
	// deterministic by default).
	Seed int64
	// Fire issues request i and reports its outcome. It is called from
	// one goroutine per arrival — fire-and-forget — and must be safe for
	// concurrent use. Its latency is measured around the whole call.
	Fire func(i int) Result
}

// Bucket is one time slice of the run: requests that ARRIVED in
// [StartSeconds, StartSeconds+width), with quantiles over their
// completion latencies.
type Bucket struct {
	StartSeconds float64 `json:"start_seconds"`
	Count        int     `json:"count"`
	Errors       int     `json:"errors"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	P999Seconds  float64 `json:"p999_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Gate is the pass/fail SLO verdict for a run.
type Gate struct {
	TargetP99Seconds float64 `json:"target_p99_seconds"`
	ActualP99Seconds float64 `json:"actual_p99_seconds"`
	MaxErrors        int     `json:"max_errors"`
	Errors           int     `json:"errors"`
	Pass             bool    `json:"pass"`
}

// Report is the machine-readable outcome of one open-loop run.
type Report struct {
	OfferedRate     float64 `json:"offered_rate"`
	DurationSeconds float64 `json:"duration_seconds"`
	BucketSeconds   float64 `json:"bucket_seconds"`
	Seed            int64   `json:"seed"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	// AchievedRate is completed-OK requests over the offered duration.
	AchievedRate float64 `json:"achieved_rate"`
	// Overall aggregates the whole run (StartSeconds 0).
	Overall Bucket   `json:"overall"`
	Buckets []Bucket `json:"buckets"`
	// SLO is set by Apply when the caller gates the run.
	SLO *Gate `json:"slo,omitempty"`
}

// sample is one completed request: its scheduled arrival offset and
// measured latency.
type sample struct {
	at  time.Duration
	lat float64
	err bool
}

// Schedule returns the deterministic arrival offsets for (rate,
// duration, seed): exponential inter-arrival gaps with mean 1/rate,
// truncated at duration.
func Schedule(rate float64, duration time.Duration, seed int64) []time.Duration {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var offs []time.Duration
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		t += gap
		if t >= duration {
			return offs
		}
		offs = append(offs, t)
	}
}

// Run executes one open-loop run and aggregates it into a Report.
func Run(cfg Config) (*Report, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("slo: rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("slo: duration must be positive, got %s", cfg.Duration)
	}
	if cfg.Fire == nil {
		return nil, fmt.Errorf("slo: Fire must be set")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = time.Second
	}
	if cfg.Bucket > cfg.Duration {
		cfg.Bucket = cfg.Duration
	}
	offsets := Schedule(cfg.Rate, cfg.Duration, cfg.Seed)

	var (
		mu      sync.Mutex
		samples = make([]sample, 0, len(offsets))
		wg      sync.WaitGroup
	)
	start := time.Now()
	for i, off := range offsets {
		// Fire-and-forget: sleep to the scheduled arrival, then launch the
		// request on its own goroutine. The scheduler never waits for a
		// response, so a saturated server faces the full offered rate.
		if d := time.Until(start.Add(off)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, off time.Duration) {
			defer wg.Done()
			t0 := time.Now()
			res := cfg.Fire(i)
			lat := time.Since(t0).Seconds()
			mu.Lock()
			samples = append(samples, sample{at: off, lat: lat, err: res.Err})
			mu.Unlock()
		}(i, off)
	}
	wg.Wait()

	return aggregate(cfg, samples), nil
}

func aggregate(cfg Config, samples []sample) *Report {
	rep := &Report{
		OfferedRate:     cfg.Rate,
		DurationSeconds: cfg.Duration.Seconds(),
		BucketSeconds:   cfg.Bucket.Seconds(),
		Seed:            cfg.Seed,
		Requests:        len(samples),
	}
	width := cfg.Bucket.Seconds()
	n := int(math.Ceil(cfg.Duration.Seconds() / width))
	byBucket := make([][]float64, n)
	errsBy := make([]int, n)
	countBy := make([]int, n)
	var all []float64
	for _, s := range samples {
		b := int(s.at.Seconds() / width)
		if b >= n {
			b = n - 1
		}
		countBy[b]++
		if s.err {
			rep.Errors++
			errsBy[b]++
			continue
		}
		byBucket[b] = append(byBucket[b], s.lat)
		all = append(all, s.lat)
	}
	rep.AchievedRate = float64(len(all)) / cfg.Duration.Seconds()
	rep.Overall = quantiles(0, countBy, errsBy, all)
	for b := 0; b < n; b++ {
		if countBy[b] == 0 {
			continue
		}
		rep.Buckets = append(rep.Buckets,
			quantiles(float64(b)*width, countBy[b:b+1], errsBy[b:b+1], byBucket[b]))
	}
	return rep
}

func quantiles(startS float64, counts, errs []int, lats []float64) Bucket {
	b := Bucket{StartSeconds: startS}
	for _, c := range counts {
		b.Count += c
	}
	for _, e := range errs {
		b.Errors += e
	}
	if len(lats) > 0 {
		sorted := append([]float64(nil), lats...)
		sort.Float64s(sorted)
		b.P50Seconds = stats.PercentileSorted(sorted, 50)
		b.P99Seconds = stats.PercentileSorted(sorted, 99)
		b.P999Seconds = stats.PercentileSorted(sorted, 99.9)
		b.MaxSeconds = sorted[len(sorted)-1]
	}
	return b
}

// Apply gates the report against a target p99 and an error budget,
// recording the verdict in r.SLO and returning pass/fail. maxErrors < 0
// disables the error check.
func (r *Report) Apply(targetP99 time.Duration, maxErrors int) bool {
	g := &Gate{
		TargetP99Seconds: targetP99.Seconds(),
		ActualP99Seconds: r.Overall.P99Seconds,
		MaxErrors:        maxErrors,
		Errors:           r.Errors,
		Pass:             true,
	}
	if targetP99 > 0 && r.Overall.P99Seconds > targetP99.Seconds() {
		g.Pass = false
	}
	if maxErrors >= 0 && r.Errors > maxErrors {
		g.Pass = false
	}
	// A run that completed nothing passes no gate.
	if r.Requests > 0 && r.Requests == r.Errors {
		g.Pass = false
	}
	r.SLO = g
	return g.Pass
}

// String renders the human-readable bucket table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "open-loop: offered %.1f req/s for %.1fs (seed %d): %d requests, %d errors, achieved %.1f req/s\n",
		r.OfferedRate, r.DurationSeconds, r.Seed, r.Requests, r.Errors, r.AchievedRate)
	fmt.Fprintf(&sb, "  %-12s %6s %6s %10s %10s %10s %10s\n",
		"bucket", "n", "err", "p50", "p99", "p999", "max")
	for _, b := range r.Buckets {
		fmt.Fprintf(&sb, "  [%5.1fs,+%gs) %6d %6d %9.1fms %9.1fms %9.1fms %9.1fms\n",
			b.StartSeconds, r.BucketSeconds, b.Count, b.Errors,
			b.P50Seconds*1e3, b.P99Seconds*1e3, b.P999Seconds*1e3, b.MaxSeconds*1e3)
	}
	o := r.Overall
	fmt.Fprintf(&sb, "  %-12s %6d %6d %9.1fms %9.1fms %9.1fms %9.1fms\n",
		"overall", o.Count, o.Errors, o.P50Seconds*1e3, o.P99Seconds*1e3, o.P999Seconds*1e3, o.MaxSeconds*1e3)
	if g := r.SLO; g != nil {
		verdict := "PASS"
		if !g.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "  SLO %s: p99 %.1fms vs target %.1fms, errors %d (max %d)\n",
			verdict, g.ActualP99Seconds*1e3, g.TargetP99Seconds*1e3, g.Errors, g.MaxErrors)
	}
	return sb.String()
}

// BenchLines renders the run as `go test -bench`-style lines so the
// benchdiff ledger (BENCH_serve.json, BENCH_HISTORY.json) can ingest an
// SLO trajectory with the machinery it already has. One synthetic
// iteration per line; the value is the quantile in ns.
func (r *Report) BenchLines(prefix string) string {
	var sb strings.Builder
	line := func(name string, seconds float64) {
		fmt.Fprintf(&sb, "Benchmark%s%s \t 1 \t %.0f ns/op\n", prefix, name, seconds*1e9)
	}
	line("P50", r.Overall.P50Seconds)
	line("P99", r.Overall.P99Seconds)
	line("P999", r.Overall.P999Seconds)
	return sb.String()
}

// SearchStep is one probe of the saturation search.
type SearchStep struct {
	Rate       float64 `json:"rate"`
	P99Seconds float64 `json:"p99_seconds"`
	Errors     int     `json:"errors"`
	Pass       bool    `json:"pass"`
}

// SearchConfig parameterizes Saturate.
type SearchConfig struct {
	// MinRate and MaxRate bracket the search (req/s). Required
	// 0 < MinRate < MaxRate.
	MinRate, MaxRate float64
	// Iters is the number of bisection steps after the bracket probes
	// (default 5; each halves the bracket, so 5 resolves the rate to
	// ~3% of the initial range).
	Iters int
	// TargetP99 and MaxErrors define passing, as in Report.Apply.
	TargetP99 time.Duration
	MaxErrors int
	// Measure runs one open-loop measurement at the given rate.
	Measure func(rate float64) (*Report, error)
}

// SaturationReport is the outcome of a saturation-point search.
type SaturationReport struct {
	MinRate          float64 `json:"min_rate"`
	MaxRate          float64 `json:"max_rate"`
	TargetP99Seconds float64 `json:"target_p99_seconds"`
	// SaturationRate is the highest probed rate that met the gate, or 0
	// when even MinRate failed.
	SaturationRate float64      `json:"saturation_rate"`
	Steps          []SearchStep `json:"steps"`
}

// Saturate binary-searches the highest offered rate meeting the SLO
// gate. It probes MinRate and MaxRate first: a failing MinRate reports
// saturation 0 (the server cannot meet the target at all), a passing
// MaxRate reports MaxRate (the bracket never saturated). Otherwise
// Iters bisection steps shrink the bracket; the returned rate is the
// highest rate that actually passed a measurement, so it is always a
// rate the server was observed to sustain.
func Saturate(cfg SearchConfig) (*SaturationReport, error) {
	if cfg.MinRate <= 0 || cfg.MaxRate <= cfg.MinRate {
		return nil, fmt.Errorf("slo: need 0 < MinRate < MaxRate, got [%g, %g]", cfg.MinRate, cfg.MaxRate)
	}
	if cfg.Measure == nil {
		return nil, fmt.Errorf("slo: Measure must be set")
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	rep := &SaturationReport{
		MinRate: cfg.MinRate, MaxRate: cfg.MaxRate,
		TargetP99Seconds: cfg.TargetP99.Seconds(),
	}
	probe := func(rate float64) (bool, error) {
		r, err := cfg.Measure(rate)
		if err != nil {
			return false, err
		}
		pass := r.Apply(cfg.TargetP99, cfg.MaxErrors)
		rep.Steps = append(rep.Steps, SearchStep{
			Rate: rate, P99Seconds: r.Overall.P99Seconds, Errors: r.Errors, Pass: pass,
		})
		return pass, nil
	}
	ok, err := probe(cfg.MinRate)
	if err != nil {
		return nil, err
	}
	if !ok {
		return rep, nil // saturated below the bracket
	}
	rep.SaturationRate = cfg.MinRate
	ok, err = probe(cfg.MaxRate)
	if err != nil {
		return nil, err
	}
	if ok {
		rep.SaturationRate = cfg.MaxRate
		return rep, nil
	}
	lo, hi := cfg.MinRate, cfg.MaxRate
	for i := 0; i < cfg.Iters; i++ {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo = mid
			rep.SaturationRate = mid
		} else {
			hi = mid
		}
	}
	return rep, nil
}

// BenchLine renders the saturation result for the benchdiff ledger: the
// mean inter-arrival time at the saturation rate, in ns/op — a real
// per-request figure that falls as the sustainable rate rises.
func (s *SaturationReport) BenchLine(prefix string) string {
	if s.SaturationRate <= 0 {
		return ""
	}
	return fmt.Sprintf("Benchmark%sSaturationInterval \t 1 \t %.0f ns/op\n", prefix, 1e9/s.SaturationRate)
}
