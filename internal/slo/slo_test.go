package slo

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(100, time.Second, 7)
	b := Schedule(100, time.Second, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (rate, duration, seed) produced different schedules")
	}
	c := Schedule(100, time.Second, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// ~rate*duration arrivals, loosely (Poisson): 100±40 for mean 100.
	if len(a) < 60 || len(a) > 140 {
		t.Fatalf("schedule has %d arrivals for 100 req/s over 1s", len(a))
	}
	for i, off := range a {
		if off < 0 || off >= time.Second {
			t.Fatalf("arrival %d at %s outside [0, 1s)", i, off)
		}
		if i > 0 && off < a[i-1] {
			t.Fatalf("arrivals not monotonic at %d", i)
		}
	}
}

func TestRunBucketsAndQuantiles(t *testing.T) {
	var fired atomic.Int64
	rep, err := Run(Config{
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Bucket:   100 * time.Millisecond,
		Seed:     3,
		Fire: func(i int) Result {
			fired.Add(1)
			time.Sleep(time.Millisecond)
			return Result{Err: i%10 == 9} // every 10th request fails
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Schedule(400, 500*time.Millisecond, 3))
	if rep.Requests != want || int(fired.Load()) != want {
		t.Fatalf("requests=%d fired=%d, schedule says %d", rep.Requests, fired.Load(), want)
	}
	if rep.Errors == 0 || rep.Errors >= rep.Requests {
		t.Fatalf("errors=%d of %d, want some but not all", rep.Errors, rep.Requests)
	}
	sum, errSum := 0, 0
	for _, b := range rep.Buckets {
		sum += b.Count
		errSum += b.Errors
		if b.Count > b.Errors && (b.P50Seconds <= 0 || b.P99Seconds < b.P50Seconds) {
			t.Fatalf("bucket at %gs has bad quantiles: %+v", b.StartSeconds, b)
		}
	}
	if sum != rep.Requests || errSum != rep.Errors {
		t.Fatalf("bucket sums (%d, %d) != totals (%d, %d)", sum, errSum, rep.Requests, rep.Errors)
	}
	o := rep.Overall
	if o.Count != rep.Requests || o.P999Seconds < o.P99Seconds || o.MaxSeconds < o.P999Seconds {
		t.Fatalf("overall quantiles inconsistent: %+v", o)
	}
	if o.P50Seconds < 0.0005 {
		t.Fatalf("p50 %.4fs below the 1ms service floor", o.P50Seconds)
	}
	if rep.AchievedRate <= 0 {
		t.Fatal("achieved rate not computed")
	}
	out := rep.String()
	for _, needle := range []string{"open-loop", "p999", "overall"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("report text missing %q:\n%s", needle, out)
		}
	}
}

func TestRunValidation(t *testing.T) {
	fire := func(int) Result { return Result{} }
	for _, cfg := range []Config{
		{Rate: 0, Duration: time.Second, Fire: fire},
		{Rate: 10, Duration: 0, Fire: fire},
		{Rate: 10, Duration: time.Second},
	} {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}

func TestApplyGate(t *testing.T) {
	rep := &Report{Requests: 100, Errors: 2, Overall: Bucket{P99Seconds: 0.050}}
	if !rep.Apply(100*time.Millisecond, 5) || !rep.SLO.Pass {
		t.Fatal("50ms p99 should pass a 100ms target with 2 ≤ 5 errors")
	}
	if rep.Apply(10*time.Millisecond, 5) {
		t.Fatal("50ms p99 should fail a 10ms target")
	}
	if rep.Apply(100*time.Millisecond, 1) {
		t.Fatal("2 errors should fail a budget of 1")
	}
	if !rep.Apply(100*time.Millisecond, -1) {
		t.Fatal("negative budget disables the error check")
	}
	allFail := &Report{Requests: 5, Errors: 5}
	if allFail.Apply(0, -1) {
		t.Fatal("a run that completed nothing must not pass")
	}
	// The gate is recorded in the report text.
	if !strings.Contains(allFail.String(), "FAIL") {
		t.Fatal("failed gate missing from report text")
	}
}

func TestBenchLines(t *testing.T) {
	rep := &Report{Overall: Bucket{P50Seconds: 0.001, P99Seconds: 0.002, P999Seconds: 0.003}}
	out := rep.BenchLines("ServeOpenLoop")
	for _, want := range []string{
		"BenchmarkServeOpenLoopP50 \t 1 \t 1000000 ns/op",
		"BenchmarkServeOpenLoopP99 \t 1 \t 2000000 ns/op",
		"BenchmarkServeOpenLoopP999 \t 1 \t 3000000 ns/op",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestSaturateBisection drives the search against a synthetic server
// that sustains exactly 100 req/s: twice, asserting the found rate is
// stable run to run (the acceptance criterion for -saturate).
func TestSaturateBisection(t *testing.T) {
	measure := func(rate float64) (*Report, error) {
		p99 := 0.010
		if rate > 100 {
			p99 = 10.0 // saturated: tail blows up
		}
		return &Report{OfferedRate: rate, Requests: 100, Overall: Bucket{P99Seconds: p99}}, nil
	}
	run := func() *SaturationReport {
		rep, err := Saturate(SearchConfig{
			MinRate: 10, MaxRate: 1000, Iters: 8,
			TargetP99: 100 * time.Millisecond, MaxErrors: 0,
			Measure: measure,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.SaturationRate != b.SaturationRate {
		t.Fatalf("saturation rate not stable: %g vs %g", a.SaturationRate, b.SaturationRate)
	}
	if a.SaturationRate < 90 || a.SaturationRate > 100 {
		t.Fatalf("saturation rate %g, want within (90, 100] for a 100 req/s server", a.SaturationRate)
	}
	if len(a.Steps) != 2+8 {
		t.Fatalf("took %d probes, want bracket 2 + iters 8", len(a.Steps))
	}
	if !strings.Contains(a.BenchLine("SLO"), "SaturationInterval") {
		t.Fatal("bench line missing")
	}
	if math.Abs(1e9/a.SaturationRate-10.4e6) > 5e6 {
		// ~96 req/s → ~10.4ms interval; just sanity-check the magnitude.
		t.Logf("saturation interval %.0f ns", 1e9/a.SaturationRate)
	}
}

func TestSaturateBracketEdges(t *testing.T) {
	alwaysFail := func(rate float64) (*Report, error) {
		return &Report{Requests: 10, Overall: Bucket{P99Seconds: 10}}, nil
	}
	rep, err := Saturate(SearchConfig{MinRate: 1, MaxRate: 10, TargetP99: time.Millisecond, MaxErrors: 0, Measure: alwaysFail})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SaturationRate != 0 || len(rep.Steps) != 1 {
		t.Fatalf("failing MinRate should stop after one probe with rate 0: %+v", rep)
	}
	if rep.BenchLine("X") != "" {
		t.Fatal("no bench line for a failed search")
	}

	alwaysPass := func(rate float64) (*Report, error) {
		return &Report{Requests: 10, Overall: Bucket{P99Seconds: 0.001}}, nil
	}
	rep, err = Saturate(SearchConfig{MinRate: 1, MaxRate: 10, TargetP99: time.Second, MaxErrors: 0, Measure: alwaysPass})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SaturationRate != 10 || len(rep.Steps) != 2 {
		t.Fatalf("passing MaxRate should report the bracket top: %+v", rep)
	}

	if _, err := Saturate(SearchConfig{MinRate: 0, MaxRate: 10, Measure: alwaysPass}); err == nil {
		t.Fatal("MinRate 0 should be rejected")
	}
	if _, err := Saturate(SearchConfig{MinRate: 1, MaxRate: 10}); err == nil {
		t.Fatal("missing Measure should be rejected")
	}
	boom := errors.New("boom")
	if _, err := Saturate(SearchConfig{MinRate: 1, MaxRate: 10, Measure: func(float64) (*Report, error) { return nil, boom }}); !errors.Is(err, boom) {
		t.Fatalf("measure error not propagated: %v", err)
	}
}
