package cluster

import (
	"testing"

	"topoopt/internal/flexnet"
	"topoopt/internal/model"
	"topoopt/internal/stats"
	"topoopt/internal/topo"
)

func TestSchedulerAllocateRelease(t *testing.T) {
	s := NewScheduler(8)
	a, err := s.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || s.Free() != 5 {
		t.Fatalf("alloc %v free %d", a, s.Free())
	}
	b, err := s.Allocate(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		for _, w := range a {
			if v == w {
				t.Fatal("overlapping shards")
			}
		}
	}
	if _, err := s.Allocate(1); err == nil {
		t.Error("over-allocation should fail")
	}
	s.Release(a)
	if s.Free() != 3 {
		t.Errorf("free = %d after release, want 3", s.Free())
	}
}

func smallModel() *model.Model {
	return model.CANDLE(model.CANDLEConfig{BatchPerGPU: 8, DenseLayers: 2,
		DenseLayerSize: 1024, DenseFeatLayers: 2, FeatLayerSize: 1024})
}

func smallDLRM() *model.Model {
	return model.DLRM(model.DLRMConfig{BatchPerGPU: 16, DenseLayers: 2, DenseLayerSize: 512,
		DenseFeatLayers: 2, FeatLayerSize: 512, EmbedDim: 64, EmbedRows: 1e5, EmbedTables: 4})
}

func TestJobPrepareScopedToShard(t *testing.T) {
	j := &Job{Model: smallDLRM(), Servers: []int{4, 5, 6, 7}, Batch: 16}
	if err := j.Prepare(16, model.A100); err != nil {
		t.Fatal(err)
	}
	// MP traffic must stay within the shard.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if j.Demand.MP[s][d] == 0 {
				continue
			}
			if s < 4 || s > 7 || d < 4 || d > 7 {
				t.Fatalf("MP traffic %d->%d leaks outside shard", s, d)
			}
		}
	}
	for _, g := range j.Demand.Groups {
		if len(g.Members) != 4 {
			t.Errorf("AllReduce group size %d, want 4", len(g.Members))
		}
	}
	if j.Compute <= 0 {
		t.Error("compute time must be positive")
	}
}

func TestRunSharedTwoJobsContend(t *testing.T) {
	n := 8
	fab := flexnet.NewSwitchFabric(topo.FatTree(n, 10e9))
	j1 := &Job{Model: smallModel(), Servers: []int{0, 1, 2, 3}, Batch: 8}
	j2 := &Job{Model: smallModel(), Servers: []int{4, 5, 6, 7}, Batch: 8}
	times, err := RunShared(fab, []*Job{j1, j2}, 3, model.A100)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || len(times[0]) != 3 || len(times[1]) != 3 {
		t.Fatalf("shape wrong: %v", times)
	}
	for _, ts := range times {
		for _, x := range ts {
			if x <= 0 {
				t.Fatal("non-positive iteration time")
			}
		}
	}
	// Disjoint shards on a full-bisection switch should not contend:
	// solo run matches shared run closely.
	solo, err := RunShared(fab, []*Job{{Model: smallModel(), Servers: []int{0, 1, 2, 3}, Batch: 8}}, 3, model.A100)
	if err != nil {
		t.Fatal(err)
	}
	if r := times[0][0] / solo[0][0]; r > 1.05 {
		t.Errorf("full-bisection shards contended: shared/solo = %v", r)
	}
}

func TestOversubContendsMoreThanIdeal(t *testing.T) {
	n := 16
	mkJobs := func() []*Job {
		return []*Job{
			{Model: smallModel(), Servers: []int{0, 1, 2, 3, 4, 5, 6, 7}, Batch: 8},
			{Model: smallModel(), Servers: []int{8, 9, 10, 11, 12, 13, 14, 15}, Batch: 8},
		}
	}
	ideal := flexnet.NewSwitchFabric(topo.IdealSwitch(n, 40e9))
	over := flexnet.NewSwitchFabric(topo.OversubFatTree(n, 4, 40e9))
	ti, err := RunShared(ideal, mkJobs(), 2, model.A100)
	if err != nil {
		t.Fatal(err)
	}
	to, err := RunShared(over, mkJobs(), 2, model.A100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(Flatten(to)) < stats.Mean(Flatten(ti)) {
		t.Errorf("oversubscribed fabric (%g) should be no faster than ideal (%g)",
			stats.Mean(Flatten(to)), stats.Mean(Flatten(ti)))
	}
}

func TestRunShardedTopoOptIsolated(t *testing.T) {
	jobs := []*Job{
		{Model: smallDLRM(), Servers: []int{0, 1, 2, 3, 4, 5, 6, 7}, Batch: 16},
		{Model: smallModel(), Servers: []int{8, 9, 10, 11, 12, 13, 14, 15}, Batch: 8},
	}
	times, err := RunShardedTopoOpt(jobs, 4, 25e9, 4, model.A100)
	if err != nil {
		t.Fatal(err)
	}
	for ji, ts := range times {
		if len(ts) != 4 {
			t.Fatalf("job %d: %d iterations", ji, len(ts))
		}
		for _, x := range ts[1:] {
			if x != ts[0] {
				t.Error("isolated iterations should be identical")
			}
		}
	}
}

func TestBuildMixComposition(t *testing.T) {
	sched := NewScheduler(432)
	jobs, err := BuildMix(sched, MixSpec{Jobs: 10, ServersPerJob: 16})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Model.Name]++
	}
	if counts["DLRM"] != 4 || counts["BERT"] != 3 || counts["CANDLE"] != 2 || counts["VGG16"] != 1 {
		t.Errorf("mix = %v, want 4/3/2/1", counts)
	}
	if sched.Free() != 432-160 {
		t.Errorf("free = %d, want 272", sched.Free())
	}
	// Overflow.
	if _, err := BuildMix(NewScheduler(32), MixSpec{Jobs: 3, ServersPerJob: 16}); err == nil {
		t.Error("over-subscribed mix should fail")
	}
}

func TestFlatten(t *testing.T) {
	got := Flatten([][]float64{{1, 2}, {3}})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("Flatten = %v", got)
	}
}

func TestProvisionerLookahead(t *testing.T) {
	p := NewProvisioner()
	// Without pre-provisioning, flipping pays the full patch latency.
	if d := p.Flip(); d < p.PatchLatency {
		t.Errorf("cold flip delay %g, want >= %g", d, p.PatchLatency)
	}
	if err := p.StartProvisioning(); err != nil {
		t.Fatal(err)
	}
	if err := p.StartProvisioning(); err == nil {
		t.Error("double provisioning should fail")
	}
	p.FinishProvisioning()
	if d := p.Flip(); d != p.FlipLatency {
		t.Errorf("warm flip delay %g, want %g", d, p.FlipLatency)
	}
}

func TestJobStartDelays(t *testing.T) {
	p := NewProvisioner()
	// Long jobs fully hide the patch latency; short ones partially.
	withLA, without := p.JobStartDelays([]float64{3600, 30, 3600})
	if without[1] != p.PatchLatency {
		t.Errorf("baseline delay %g, want %g", without[1], p.PatchLatency)
	}
	if withLA[1] != p.FlipLatency {
		t.Errorf("job after a long job should only pay the flip: %g", withLA[1])
	}
	// Job 2 follows a 30 s job: must wait the remaining 90 s of patching.
	want := p.PatchLatency - 30 + p.FlipLatency
	if withLA[2] != want {
		t.Errorf("job after short job delay %g, want %g", withLA[2], want)
	}
	if withLA[0] <= p.PatchLatency-1 {
		t.Error("first job cannot be hidden")
	}
}

func TestAllocateStridedSpreadsAcrossRacks(t *testing.T) {
	s := NewScheduler(32)
	shard, err := s.AllocateStrided(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	racks := map[int]bool{}
	for _, v := range shard {
		racks[v/8] = true
	}
	if len(racks) != 4 {
		t.Errorf("strided shard %v covers %d racks, want 4", shard, len(racks))
	}
	// Exhaustion still errors and rolls back.
	if _, err := s.AllocateStrided(40, 8); err == nil {
		t.Error("over-allocation should fail")
	}
	if s.Free() != 28 {
		t.Errorf("failed allocation should roll back: free = %d, want 28", s.Free())
	}
}

func TestSimulateArrivalsModes(t *testing.T) {
	arrivals := []Arrival{
		{At: 0, Servers: 8, Duration: 3600},
		{At: 600, Servers: 8, Duration: 3600},
		{At: 1200, Servers: 8, Duration: 3600},
	}
	cold, err := SimulateArrivals(32, arrivals, PatchPanelCold, nil)
	if err != nil {
		t.Fatal(err)
	}
	la, err := SimulateArrivals(32, arrivals, PatchPanelLookAhead, nil)
	if err != nil {
		t.Fatal(err)
	}
	ocs, err := SimulateArrivals(32, arrivals, OCS, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProvisioner()
	for i := range arrivals {
		if cold.StartDelay[i] < p.PatchLatency {
			t.Errorf("cold job %d delay %g below patch latency", i, cold.StartDelay[i])
		}
		if ocs.StartDelay[i] > 0.011 {
			t.Errorf("OCS job %d delay %g, want ~10ms", i, ocs.StartDelay[i])
		}
	}
	// With 600 s gaps > 120 s patch latency, look-ahead hides all but the
	// first job's wiring.
	if la.StartDelay[1] > 1 || la.StartDelay[2] > 1 {
		t.Errorf("look-ahead delays %v should be ~flip latency after job 0", la.StartDelay)
	}
	if la.StartDelay[0] < p.FlipLatency {
		t.Error("first look-ahead job still pays something")
	}
}

func TestSimulateArrivalsQueueing(t *testing.T) {
	// Second job must wait for the first to release servers.
	arrivals := []Arrival{
		{At: 0, Servers: 8, Duration: 100},
		{At: 1, Servers: 8, Duration: 100},
	}
	res, err := SimulateArrivals(8, arrivals, OCS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartDelay[1] < 99 {
		t.Errorf("queued job delay %g, want >= 99 s", res.StartDelay[1])
	}
	if res.Completed != 2 {
		t.Errorf("completed %d, want 2", res.Completed)
	}
}

// TestSimulateArrivalsSimultaneousArrivals pins the At tie-break rule:
// equal-At jobs are served in input order (stable by index), which under
// look-ahead provisioning decides who gets the single pre-wired plane.
func TestSimulateArrivalsSimultaneousArrivals(t *testing.T) {
	p := NewProvisioner()
	// Three simultaneous arrivals on a cluster that fits only one at a
	// time: the queueing + lookahead interaction serializes them.
	arrivals := []Arrival{
		{At: 0, Servers: 8, Duration: 200},
		{At: 0, Servers: 8, Duration: 200},
		{At: 0, Servers: 8, Duration: 200},
	}
	la, err := SimulateArrivals(8, arrivals, PatchPanelLookAhead, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 (first by index): lookahead plane not yet wired at t=0, pays
	// flip only (the plane was never consumed), starts at flip.
	if la.StartDelay[0] != p.FlipLatency {
		t.Errorf("job 0 delay %g, want %g", la.StartDelay[0], p.FlipLatency)
	}
	// Job 1 waits for job 0's servers (released at start0+200). Job 0's
	// start kicked off wiring the next plane at start0, done at
	// start0+flip+patch < start0+200, so job 1 pays only the flip again.
	want1 := (p.FlipLatency + 200 + p.FlipLatency) - 0
	if la.StartDelay[1] != want1 {
		t.Errorf("job 1 delay %g, want %g", la.StartDelay[1], want1)
	}
	// Same one step later for job 2.
	want2 := want1 + 200 + p.FlipLatency
	if la.StartDelay[2] != want2 {
		t.Errorf("job 2 delay %g, want %g", la.StartDelay[2], want2)
	}
	// The tie-break is by index: a permuted input with distinguishable
	// durations must keep result slots aligned with sorted-stable order.
	mixed := []Arrival{
		{At: 0, Servers: 8, Duration: 50},
		{At: 0, Servers: 8, Duration: 500},
	}
	res, err := SimulateArrivals(8, mixed, OCS, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Index 0 starts first (delay 10 ms); index 1 waits out the 50 s job,
	// not the 500 s one — proving index order, not duration order.
	if res.StartDelay[0] != 0.010 {
		t.Errorf("first-by-index delay %g, want 0.010", res.StartDelay[0])
	}
	if res.StartDelay[1] < 50 || res.StartDelay[1] > 51 {
		t.Errorf("second-by-index delay %g, want ~50 s (waiting on the 50 s job)", res.StartDelay[1])
	}
	// And the whole vector is reproducible.
	res2, err := SimulateArrivals(8, mixed, OCS, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.StartDelay {
		if res.StartDelay[i] != res2.StartDelay[i] {
			t.Fatalf("tie-broken schedule not reproducible at job %d", i)
		}
	}
}

func TestSimulateArrivalsErrors(t *testing.T) {
	if _, err := SimulateArrivals(4, []Arrival{{Servers: 8}}, OCS, nil); err == nil {
		t.Error("oversized job should fail")
	}
	if _, err := SimulateArrivals(8, []Arrival{{Servers: 4}}, ProvisioningMode(9), nil); err == nil {
		t.Error("unknown mode should fail")
	}
}
