// Package cluster implements shared-cluster training (§5.6, Appendix C):
// a first-fit shard scheduler, per-job hybrid strategies scoped to their
// shard, and two execution modes — sharded TopoOpt partitions (each job on
// its own optically isolated fabric) and shared switch fabrics where all
// jobs' flows contend.
package cluster

import (
	"fmt"

	"topoopt/internal/core"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

// Job is one training job placed on the cluster.
type Job struct {
	ID      int
	Model   *model.Model
	Servers []int // global server IDs of the shard
	Batch   int
	// Derived state:
	Strategy parallel.Strategy
	Demand   traffic.Demand
	Compute  float64
}

// Scheduler hands out disjoint shards of an n-server cluster, first-fit.
type Scheduler struct {
	n    int
	used []bool
}

// NewScheduler returns a scheduler over n free servers.
func NewScheduler(n int) *Scheduler {
	return &Scheduler{n: n, used: make([]bool, n)}
}

// Free returns the number of unallocated servers.
func (s *Scheduler) Free() int {
	f := 0
	for _, u := range s.used {
		if !u {
			f++
		}
	}
	return f
}

// Allocate reserves k servers (lowest-index first) and returns their IDs.
func (s *Scheduler) Allocate(k int) ([]int, error) {
	return s.AllocateInto(nil, k)
}

// AllocateInto is Allocate reserving into buf's storage (appending from
// buf[:0]), so a steady-state caller that recycles shard slices allocates
// nothing. buf may be nil.
func (s *Scheduler) AllocateInto(buf []int, k int) ([]int, error) {
	out := buf[:0]
	for v := 0; v < s.n && len(out) < k; v++ {
		if !s.used[v] {
			out = append(out, v)
		}
	}
	if len(out) < k {
		return nil, fmt.Errorf("cluster: want %d servers, only %d free", k, s.Free())
	}
	for _, v := range out {
		s.used[v] = true
	}
	return out, nil
}

// AllocateStrided reserves k servers spread across the cluster with the
// given stride (e.g. stride = racks so consecutive members land in
// different racks, the non-rack-aligned placement typical of shared
// production clusters). Falls back to first-fit for leftovers.
func (s *Scheduler) AllocateStrided(k, stride int) ([]int, error) {
	return s.AllocateStridedInto(nil, k, stride)
}

// AllocateStridedInto is AllocateStrided reserving into buf's storage
// (appending from buf[:0]). buf may be nil.
func (s *Scheduler) AllocateStridedInto(buf []int, k, stride int) ([]int, error) {
	if stride < 1 {
		stride = 1
	}
	out := buf[:0]
	for off := 0; off < stride && len(out) < k; off++ {
		for v := off; v < s.n && len(out) < k; v += stride {
			if !s.used[v] {
				s.used[v] = true
				out = append(out, v)
			}
		}
	}
	if len(out) < k {
		s.Release(out)
		return nil, fmt.Errorf("cluster: want %d servers, only %d free", k, s.Free())
	}
	return out, nil
}

// Reset frees every server, returning the scheduler to its initial
// state (the pooled fleet engine rewinds with it between runs).
func (s *Scheduler) Reset() {
	clear(s.used)
}

// Release frees a shard.
func (s *Scheduler) Release(servers []int) {
	for _, v := range servers {
		if v >= 0 && v < s.n {
			s.used[v] = false
		}
	}
}

// Prepare derives the job's shard-scoped hybrid strategy, demand and
// compute time on the given cluster size.
func (j *Job) Prepare(clusterN int, gpu model.GPU) error {
	if j.Batch <= 0 {
		j.Batch = j.Model.BatchPerGPU
	}
	j.Strategy = parallel.HybridOn(j.Model, clusterN, j.Servers)
	dem, err := traffic.FromStrategy(j.Model, j.Strategy, j.Batch)
	if err != nil {
		return err
	}
	j.Demand = dem
	j.Compute = j.Strategy.MaxComputeTime(j.Model, gpu, j.Batch)
	return nil
}

// RunShardedTopoOpt gives every job a dedicated TopoOpt partition (the
// optical sharding of Appendix C): each job's demand is remapped to local
// IDs, TopologyFinder builds its partition, and iterations are simulated
// in isolation. Returns per-job per-iteration times.
func RunShardedTopoOpt(jobs []*Job, d int, linkBW float64, iters int, gpu model.GPU) ([][]float64, error) {
	out := make([][]float64, len(jobs))
	for ji, j := range jobs {
		k := len(j.Servers)
		localModel := j.Model
		st := parallel.Hybrid(localModel, k)
		dem, err := traffic.FromStrategy(localModel, st, j.Batch)
		if err != nil {
			return nil, err
		}
		tf, err := core.TopologyFinder(core.Config{N: k, D: d, LinkBW: linkBW}, dem)
		if err != nil {
			return nil, err
		}
		fab := flexnet.NewTopoOptFabric(tf)
		compute := st.MaxComputeTime(localModel, gpu, j.Batch)
		res, err := flexnet.SimulateIteration(fab, dem, compute)
		if err != nil {
			return nil, err
		}
		// Optical isolation makes every iteration identical.
		times := make([]float64, iters)
		for i := range times {
			times[i] = res.Total()
		}
		out[ji] = times
	}
	return out, nil
}

// RunShared runs all jobs concurrently on one shared fabric (Fat-tree,
// Oversub Fat-tree, Ideal Switch): each job loops MP → compute →
// AllReduce for iters iterations while contending for links. Returns
// per-job per-iteration times.
func RunShared(fab *flexnet.Fabric, jobs []*Job, iters int, gpu model.GPU) ([][]float64, error) {
	for _, j := range jobs {
		if err := j.Prepare(fab.Net.Hosts, gpu); err != nil {
			return nil, err
		}
	}
	sim := fab.AcquireSim()
	defer fab.ReleaseSim(sim)
	times := make([][]float64, len(jobs))
	var injectErr error

	type jobState struct {
		job       *Job
		iter      int
		iterStart float64
		pending   int
	}
	states := make([]*jobState, len(jobs))

	var startMP func(js *jobState)
	var startAR func(js *jobState)

	startMP = func(js *jobState) {
		js.iterStart = sim.Now()
		mp := fab.MPMatrix(js.job.Demand)
		if mp.Total() == 0 {
			sim.Schedule(js.job.Compute, func() { startAR(js) })
			return
		}
		err := fab.InjectMatrix(sim, mp, &js.pending, func() {
			sim.Schedule(js.job.Compute, func() { startAR(js) })
		})
		if err != nil && injectErr == nil {
			injectErr = err
		}
	}
	startAR = func(js *jobState) {
		ar := fab.AllReduceMatrix(js.job.Demand)
		finish := func() {
			times[js.job.ID] = append(times[js.job.ID], sim.Now()-js.iterStart)
			js.iter++
			if js.iter < iters {
				startMP(js)
			}
		}
		if ar.Total() == 0 {
			finish()
			return
		}
		err := fab.InjectMatrix(sim, ar, &js.pending, finish)
		if err != nil && injectErr == nil {
			injectErr = err
		}
	}

	for i, j := range jobs {
		j.ID = i
		states[i] = &jobState{job: j}
		startMP(states[i])
	}
	sim.Run(0)
	if injectErr != nil {
		return nil, injectErr
	}
	for i := range jobs {
		if len(times[i]) != iters {
			return nil, fmt.Errorf("cluster: job %d finished %d/%d iterations", i, len(times[i]), iters)
		}
	}
	return times, nil
}

// Flatten concatenates per-job iteration times into one sample set.
func Flatten(times [][]float64) []float64 {
	var out []float64
	for _, ts := range times {
		out = append(out, ts...)
	}
	return out
}

// MixSpec describes the §5.6 job mix: 40% DLRM, 30% BERT, 20% CANDLE,
// 10% VGG16, each requesting serversPerJob servers. A nonzero Stride
// spreads each job's servers across the cluster (non-rack-aligned
// placement); zero uses first-fit.
type MixSpec struct {
	Jobs          int
	ServersPerJob int
	Stride        int
}

// BuildMix allocates the §5.6 mix on a scheduler. Models use the Sec56
// presets.
func BuildMix(sched *Scheduler, spec MixSpec) ([]*Job, error) {
	mk := func(i int) *model.Model {
		switch {
		case i%10 < 4:
			return model.DLRMPreset(model.Sec56)
		case i%10 < 7:
			return model.BERTPreset(model.Sec56)
		case i%10 < 9:
			return model.CANDLEPreset(model.Sec56)
		default:
			return model.VGGPreset(model.Sec56)
		}
	}
	var jobs []*Job
	for i := 0; i < spec.Jobs; i++ {
		var servers []int
		var err error
		if spec.Stride > 1 {
			servers, err = sched.AllocateStrided(spec.ServersPerJob, spec.Stride)
		} else {
			servers, err = sched.Allocate(spec.ServersPerJob)
		}
		if err != nil {
			return nil, err
		}
		m := mk(i)
		jobs = append(jobs, &Job{ID: i, Model: m, Servers: servers, Batch: m.BatchPerGPU})
	}
	return jobs, nil
}
