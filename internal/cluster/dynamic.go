package cluster

import (
	"fmt"
	"sort"
)

// Dynamic job arrivals (Appendix C): jobs arrive over time, each needing
// a shard and a provisioned topology before it can start. With plain
// patch panels every job waits the full robotic reconfiguration; with the
// look-ahead design the next job's topology is wired while its
// predecessor trains, hiding the latency whenever the inter-arrival gap
// exceeds the patch time. OCS-based deployments pay only the OCS
// switching latency.

// Arrival is one job arrival event.
type Arrival struct {
	At      float64 // arrival time, seconds
	Servers int     // shard size requested
	// Duration is the training run length once started.
	Duration float64
}

// DynamicResult summarizes a dynamic-arrival simulation.
type DynamicResult struct {
	// StartDelay[i] is job i's wait between arrival and training start
	// (queueing for servers + topology activation).
	StartDelay []float64
	// Completed is the number of jobs that obtained servers.
	Completed int
}

// ProvisioningMode selects the activation latency model.
type ProvisioningMode int

const (
	// PatchPanelCold reconfigures the panel at job start (no look-ahead).
	PatchPanelCold ProvisioningMode = iota
	// PatchPanelLookAhead pre-provisions on the second plane (App. C).
	PatchPanelLookAhead
	// OCS switches circuits in ~10 ms at job start.
	OCS
)

// SimulateArrivals runs a simple event simulation of job arrivals on an
// n-server cluster under the given provisioning mode. Jobs are served
// FIFO; a job waits until enough servers are free, then pays the
// topology-activation latency before training.
//
// Tie-break rule: jobs with equal At are served in input-slice order
// (the sort below is stable, so index order survives the sort). This
// matters under look-ahead provisioning, where the single pre-wired
// plane goes to whichever tied job is admitted first — a nondeterministic
// order would make simultaneous arrivals produce different delay vectors
// run to run. The fleet simulator (internal/fleet) relies on the same
// rule when it replays this engine as its no-training degenerate case.
func SimulateArrivals(n int, arrivals []Arrival, mode ProvisioningMode, prov *Provisioner) (*DynamicResult, error) {
	if prov == nil {
		prov = NewProvisioner()
	}
	for _, a := range arrivals {
		if a.Servers > n {
			return nil, fmt.Errorf("cluster: job wants %d servers on an %d-server cluster", a.Servers, n)
		}
	}
	jobs := append([]Arrival(nil), arrivals...)
	// SliceStable, never Slice: equal-At jobs must keep index order.
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].At < jobs[j].At })

	type running struct {
		end     float64
		servers int
	}
	var active []running
	free := n
	res := &DynamicResult{StartDelay: make([]float64, len(jobs))}
	// lookaheadReadyAt is when the pre-provisioned plane for the NEXT job
	// becomes usable (wired in the background since the last start).
	lookaheadReadyAt := 0.0
	now := 0.0
	for i, j := range jobs {
		if j.At > now {
			now = j.At
		}
		// Wait for servers.
		for free < j.Servers {
			if len(active) == 0 {
				return nil, fmt.Errorf("cluster: job %d starves (%d free)", i, free)
			}
			// Pop the earliest-finishing job.
			earliest := 0
			for k := 1; k < len(active); k++ {
				if active[k].end < active[earliest].end {
					earliest = k
				}
			}
			if active[earliest].end > now {
				now = active[earliest].end
			}
			free += active[earliest].servers
			active = append(active[:earliest], active[earliest+1:]...)
		}
		// Topology activation.
		var activation float64
		switch mode {
		case PatchPanelCold:
			activation = prov.PatchLatency
		case PatchPanelLookAhead:
			if lookaheadReadyAt <= now {
				activation = prov.FlipLatency
			} else {
				activation = (lookaheadReadyAt - now) + prov.FlipLatency
			}
			// Start wiring the plane for the job after this one.
			lookaheadReadyAt = now + activation + prov.PatchLatency
		case OCS:
			activation = 0.010
		default:
			return nil, fmt.Errorf("cluster: unknown provisioning mode %d", mode)
		}
		start := now + activation
		res.StartDelay[i] = start - j.At
		active = append(active, running{end: start + j.Duration, servers: j.Servers})
		free -= j.Servers
		res.Completed++
		now = start
	}
	return res, nil
}
