package cluster

import "fmt"

// Look-ahead provisioning (Appendix C): each server interface passes
// through a $25 1×2 mechanical optical switch whose two outputs land on
// different patch panels (Active and Look-ahead). While a job trains on
// the Active plane, the next job's topology is pre-provisioned on the
// Look-ahead plane; when the job ends, flipping the 1×2 switches
// activates the new topology instantly instead of waiting minutes for
// the robotic patch panel.

// Provisioner tracks the two planes of a look-ahead deployment.
type Provisioner struct {
	// PatchLatency is the robotic patch panel reconfiguration time.
	PatchLatency float64
	// FlipLatency is the 1×2 switch actuation time.
	FlipLatency float64

	activeReady    bool
	lookaheadReady bool
	provisioning   bool
}

// NewProvisioner returns a provisioner with the paper's latencies:
// minutes for the patch panel (we use 120 s) and ~10 ms for the
// mechanical 1×2 switch.
func NewProvisioner() *Provisioner {
	return &Provisioner{PatchLatency: 120, FlipLatency: 0.010, activeReady: true}
}

// StartProvisioning begins wiring the next topology on the Look-ahead
// plane. It fails if a provisioning pass is already in flight.
func (p *Provisioner) StartProvisioning() error {
	if p.provisioning {
		return fmt.Errorf("cluster: look-ahead plane already provisioning")
	}
	p.provisioning = true
	p.lookaheadReady = false
	return nil
}

// FinishProvisioning marks the Look-ahead plane wired (call after
// PatchLatency has elapsed in the caller's clock).
func (p *Provisioner) FinishProvisioning() {
	p.provisioning = false
	p.lookaheadReady = true
}

// Flip activates the Look-ahead plane (swapping roles) and returns the
// activation delay the next job observes: FlipLatency when the plane was
// pre-provisioned, or the full PatchLatency when it was not.
func (p *Provisioner) Flip() float64 {
	if p.lookaheadReady {
		p.activeReady, p.lookaheadReady = true, false
		return p.FlipLatency
	}
	return p.PatchLatency + p.FlipLatency
}

// JobStartDelays computes, for a sequence of job run lengths (seconds),
// the topology-activation delay each job observes with and without
// look-ahead provisioning. With look-ahead, a job's topology is wired
// while its predecessor trains, so only jobs shorter than PatchLatency
// leave the successor waiting for the remainder.
func (p *Provisioner) JobStartDelays(runLengths []float64) (withLookahead, without []float64) {
	withLookahead = make([]float64, len(runLengths))
	without = make([]float64, len(runLengths))
	for i := range runLengths {
		without[i] = p.PatchLatency
		if i == 0 {
			withLookahead[i] = p.PatchLatency + p.FlipLatency
			continue
		}
		prev := runLengths[i-1]
		wait := p.PatchLatency - prev
		if wait < 0 {
			wait = 0
		}
		withLookahead[i] = wait + p.FlipLatency
	}
	return withLookahead, without
}
