package arch

import (
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/topo"
)

// idealSwitch is the §5.1 Ideal Switch baseline: one non-blocking switch
// giving every server a d×B fat port. Priced as the full-bisection
// fat-tree that could actually provide that bandwidth (§5.2).
type idealSwitch struct{}

func init() { Register(1, idealSwitch{}) }

func (idealSwitch) Name() string { return "IdealSwitch" }

func (idealSwitch) Build(o Options) (*flexnet.Fabric, error) {
	return flexnet.NewSwitchFabric(topo.IdealSwitch(o.Servers, float64(o.Degree)*o.LinkBW)), nil
}

func (idealSwitch) Cost(o Options) (float64, error) {
	return cost.IdealSwitch(o.Servers, o.Degree, o.LinkBW), nil
}

func (idealSwitch) Interfaces(o Options) IfaceSpec {
	// The d optical interfaces fold into one non-blocking d×B attachment.
	return IfaceSpec{PerServer: 1, LinkBW: float64(o.Degree) * o.LinkBW}
}
