package arch

import (
	"context"

	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
)

// topoOpt is the paper's own fabric: a demand-driven direct-connect
// topology from TopologyFinder, co-optimized with the parallelization
// strategy (§4). Priced as a patch-panel deployment with the look-ahead
// design (Appendix G).
type topoOpt struct{}

func init() { Register(0, topoOpt{}) }

func (topoOpt) Name() string { return "TopoOpt" }

// Build returns ErrNoStaticFabric: the TopoOpt topology is a function of
// the workload's traffic demand, so it only exists inside Iteration's
// co-optimization.
func (topoOpt) Build(Options) (*flexnet.Fabric, error) { return nil, ErrNoStaticFabric }

func (topoOpt) Cost(o Options) (float64, error) {
	return cost.TopoOptPatchPanel(o.Servers, o.Degree, o.LinkBW), nil
}

func (topoOpt) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: o.Degree, LinkBW: o.LinkBW,
		HostForwarding: true, Reconfigurable: true}
}

// Iteration runs the §4.1 alternating optimization and reports the
// flow-level simulated iteration of the converged (strategy, topology)
// pair — the same numbers topoopt.Optimize returns in its Plan.
func (topoOpt) Iteration(ctx context.Context, m *model.Model, o Options) (Iteration, error) {
	res, err := flexnet.CoOptimizeContext(ctx, m, flexnet.CoOptConfig{
		N: o.Servers, Degree: o.Degree, LinkBW: o.LinkBW,
		Batch: o.Batch, Rounds: o.Rounds, MCMCIters: o.MCMCIters,
		Seed: o.Seed, PrimeOnly: o.PrimeOnly, GPU: o.GPU,
		Parallelism: o.Parallelism, SearchWorkers: o.SearchWorkers,
	})
	if err != nil {
		return Iteration{}, err
	}
	return Iteration{
		MPSeconds:        res.IterTime.MPTime,
		ComputeSeconds:   res.IterTime.ComputeTime,
		AllReduceSeconds: res.IterTime.AllReduceTime,
		BandwidthTax:     res.IterTime.BandwidthTax,
	}, nil
}
