package arch

import (
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/route"
	"topoopt/internal/topo"
)

// torus is a 2D/3D wrap-around grid (a classic HPC direct-connect
// fabric): servers factor into the most balanced torus the degree budget
// affords, traffic follows deterministic dimension-ordered routing, and
// the bill of materials is a plain direct-connect one (NICs, transceivers
// and fibers for the interfaces the grid actually consumes).
type torus struct{}

func init() { Register(7, torus{}) }

func (torus) Name() string { return "Torus" }

func (torus) Build(o Options) (*flexnet.Fabric, error) {
	dims, err := topo.TorusDims(o.Servers, o.Degree)
	if err != nil {
		return nil, err
	}
	nw := topo.Torus(dims, o.LinkBW)
	tab := route.NewTable(nw.G.N())
	route.Torus{Dims: dims}.FillTable(tab)
	return flexnet.NewRoutedFabric(nw, tab), nil
}

func (torus) Cost(o Options) (float64, error) {
	dims, err := topo.TorusDims(o.Servers, o.Degree)
	if err != nil {
		return 0, err
	}
	return cost.DirectConnect(o.Servers, topo.TorusDegree(dims), o.LinkBW), nil
}

func (torus) Interfaces(o Options) IfaceSpec {
	// The grid may consume fewer interfaces than the nominal budget.
	// Options the factorization rejects (Build and Cost error on them)
	// report the nominal degree rather than a degenerate zero spec.
	ifaces := o.Degree
	if dims, err := topo.TorusDims(o.Servers, o.Degree); err == nil {
		ifaces = topo.TorusDegree(dims)
	}
	return IfaceSpec{PerServer: ifaces, LinkBW: o.LinkBW, HostForwarding: true}
}
