package arch

import (
	"context"

	"topoopt/internal/core"
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
)

// sipML is the SiP-ML baseline: microsecond-scale silicon-photonic
// reconfiguration (25 µs), no host forwarding, and SiP-ML's unit
// parallel-link discount (Appendix F). Priced with photonic ports at a
// premium that reproduces Figure 10's "most expensive at every scale"
// ordering.
type sipML struct{}

func init() { Register(5, sipML{}) }

func (sipML) Name() string { return "SiP-ML" }

// Build returns ErrNoStaticFabric: the fabric re-wires every measurement
// interval, so there is no single topology to materialize.
func (sipML) Build(Options) (*flexnet.Fabric, error) { return nil, ErrNoStaticFabric }

func (sipML) Cost(o Options) (float64, error) {
	return cost.SiPML(o.Servers, o.Degree, o.LinkBW), nil
}

func (sipML) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: o.Degree, LinkBW: o.LinkBW, Reconfigurable: true}
}

// Iteration simulates the reconfiguration loop. The heuristic is
// deterministic and sub-second, so ctx is not polled mid-simulation.
func (sipML) Iteration(_ context.Context, m *model.Model, o Options) (Iteration, error) {
	return reconfigurableIteration(m, o, 25e-6, false, core.UnitDiscount)
}
