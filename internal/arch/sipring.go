package arch

import (
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/topo"
)

// sipRing is the physical-ring SiP-ML variant: servers sit on a static
// silicon-photonic ring and dedicate their d wavelength interfaces to the
// d/2 nearest neighbors in each direction (topo.PhysicalRing's default
// allocation). Unlike the fully reconfigurable SiP-ML backend it never
// re-wires, so it evaluates like any static fabric: shortest-path routes
// over the ring plus the MCMC strategy search.
type sipRing struct{}

func init() { Register(8, sipRing{}) }

func (sipRing) Name() string { return "SiP-Ring" }

func (sipRing) Build(o Options) (*flexnet.Fabric, error) {
	return flexnet.NewSwitchFabric(topo.PhysicalRing(o.Servers, o.Degree, o.LinkBW)), nil
}

func (sipRing) Cost(o Options) (float64, error) {
	return cost.SiPRing(o.Servers, o.Degree, o.LinkBW), nil
}

func (sipRing) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: o.Degree, LinkBW: o.LinkBW, HostForwarding: true}
}
