package arch

import (
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/topo"
)

// oversubFatTree is the §5.1 2:1 oversubscribed Fat-tree: d×B per server
// into the ToR, half the aggregate bandwidth up into the core.
type oversubFatTree struct{}

func init() { Register(3, oversubFatTree{}) }

func (oversubFatTree) Name() string { return "OversubFatTree" }

// rackSize is the servers-per-ToR rule: 8-server racks, shrunk to 4 for
// clusters too small to fill two racks of 8.
func (oversubFatTree) rackSize(o Options) int {
	if o.Servers < 16 {
		return 4
	}
	return 8
}

func (ov oversubFatTree) Build(o Options) (*flexnet.Fabric, error) {
	nw := topo.OversubFatTree(o.Servers, ov.rackSize(o), float64(o.Degree)*o.LinkBW)
	return flexnet.NewSwitchFabric(nw), nil
}

func (oversubFatTree) Cost(o Options) (float64, error) {
	return cost.OversubFatTree(o.Servers, o.Degree, o.LinkBW), nil
}

func (oversubFatTree) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: 1, LinkBW: float64(o.Degree) * o.LinkBW}
}
