package arch

import (
	"topoopt/internal/core"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
	"topoopt/internal/parallel"
	"topoopt/internal/traffic"
)

// reconfigurableIteration is the shared evaluation of reconfigurable
// baselines (§5.1): run the default hybrid strategy, then simulate the
// demand-driven reconfiguration loop (measure → reconfigure → transfer)
// with the backend's latency/forwarding/discount parameters. The MP phase
// is folded into the AllReduce accounting by the OCS simulation, so
// MPSeconds stays zero and the tax is 1 (circuits are direct).
func reconfigurableIteration(m *model.Model, o Options, reconfigLatency float64,
	hostForwarding bool, discount core.DiscountFunc) (Iteration, error) {
	batch := o.Batch
	if batch <= 0 {
		batch = m.BatchPerGPU
	}
	gpu := o.GPU
	if gpu.PeakFLOPS == 0 {
		gpu = model.A100
	}
	st := parallel.Hybrid(m, o.Servers)
	dem, err := traffic.FromStrategy(m, st, batch)
	if err != nil {
		return Iteration{}, err
	}
	compute := st.MaxComputeTime(m, gpu, batch)
	cfg := flexnet.OCSRunConfig{
		N: o.Servers, D: o.Degree, LinkBW: o.LinkBW,
		MeasureInterval: 0.050,
		ReconfigLatency: reconfigLatency,
		HostForwarding:  hostForwarding,
		Discount:        discount,
	}
	total, err := flexnet.SimulateOCSIteration(cfg, dem, compute)
	if err != nil {
		return Iteration{}, err
	}
	return Iteration{ComputeSeconds: compute,
		AllReduceSeconds: total - compute, BandwidthTax: 1}, nil
}
