// Package arch is the pluggable architecture registry: every comparison
// fabric of §5.1 (and every fabric added since) is one self-describing
// Backend that owns its topology builder, its §5.2 cost model and its
// NIC/bandwidth normalization in a single file. The public topoopt
// package, the planning service and the CLIs all dispatch through
// Register/Lookup/All instead of switching over architecture names, so
// adding a fabric to the whole system — Compare, /v1/compare, /v1/cost,
// cmd/topoopt -arch, cmd/costcalc — is one file plus one Register call.
package arch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"topoopt/internal/flexnet"
	"topoopt/internal/model"
)

// Options carries everything a backend may need to build, price or
// evaluate its fabric. It deliberately mirrors the construction-relevant
// subset of the public topoopt.Options (the public package converts);
// internal callers (experiments) fill it directly.
type Options struct {
	// Servers is the number of training servers (n).
	Servers int
	// Degree is the nominal number of interfaces per server (d). Backends
	// normalize it: a switch fabric folds d×B into one fat port, a
	// direct-connect fabric provisions d physical interfaces.
	Degree int
	// LinkBW is the nominal per-interface bandwidth in bits/s (B).
	LinkBW float64
	// Batch overrides the model's default per-GPU batch when > 0.
	Batch int
	// Rounds is the alternating-optimization budget (co-optimized
	// backends only).
	Rounds int
	// MCMCIters, Seed, Parallelism and SearchWorkers parameterize the
	// strategy search exactly as in flexnet.MCMCConfig.
	MCMCIters     int
	Seed          int64
	Parallelism   int
	SearchWorkers int
	// FabricSeed seeds randomized topology construction (Expander). Zero
	// derives Seed+1, the historical Compare behavior; experiment sweeps
	// that pin their own construction seed set it explicitly.
	FabricSeed int64
	// PrimeOnly restricts TotientPerms generators (TopoOpt backend).
	PrimeOnly bool
	// GPU is the accelerator model; zero value selects model.A100.
	GPU model.GPU
}

// fabricSeed returns the topology-construction seed: FabricSeed when set,
// else the historical Seed+1 offset that keeps construction and search
// streams decorrelated.
func (o Options) fabricSeed() int64 {
	if o.FabricSeed != 0 {
		return o.FabricSeed
	}
	return o.Seed + 1
}

// IfaceSpec is a backend's NIC/bandwidth normalization: what each server
// actually provisions once the nominal (d, B) pair is mapped onto the
// fabric.
type IfaceSpec struct {
	// PerServer is the number of network interfaces per server.
	PerServer int
	// LinkBW is the per-interface bandwidth in bits/s after normalization
	// (e.g. Ideal Switch's d×B fat port, Fat-tree's cost-equivalent
	// reduction).
	LinkBW float64
	// HostForwarding reports whether servers relay traffic for other
	// servers (direct-connect fabrics).
	HostForwarding bool
	// Reconfigurable reports whether circuits change at runtime.
	Reconfigurable bool
}

// Iteration is a backend-evaluated training-iteration breakdown (the
// internal mirror of topoopt.IterationBreakdown).
type Iteration struct {
	MPSeconds        float64
	ComputeSeconds   float64
	AllReduceSeconds float64
	BandwidthTax     float64
}

// Total returns the full iteration time in seconds.
func (it Iteration) Total() float64 {
	return it.MPSeconds + it.ComputeSeconds + it.AllReduceSeconds
}

// ErrNoStaticFabric is returned by Build for backends whose fabric cannot
// be materialized from Options alone: co-optimized fabrics (TopoOpt)
// depend on the workload's traffic demand, reconfigurable heuristics
// (SiP-ML, OCS-reconfig) re-wire during the iteration. Evaluate handles
// both through the Iterator capability.
var ErrNoStaticFabric = errors.New("arch: fabric is model-dependent; use Evaluate")

// Backend is one architecture: a named fabric with a builder, a cost
// model and an interface normalization. Backends must be stateless and
// safe for concurrent use; everything request-specific arrives in
// Options.
type Backend interface {
	// Name is the wire/registry identity ("TopoOpt", "Fat-tree", ...).
	Name() string
	// Build materializes the static fabric, or ErrNoStaticFabric for
	// model-dependent backends.
	Build(Options) (*flexnet.Fabric, error)
	// Cost prices the interconnect in USD (§5.2 / Appendix G).
	Cost(Options) (float64, error)
	// Interfaces reports the per-server NIC/bandwidth normalization.
	Interfaces(Options) IfaceSpec
}

// Iterator is the optional capability for backends that own their full
// iteration-time evaluation instead of the default static-fabric MCMC
// search: TopoOpt co-optimizes topology and strategy, SiP-ML and
// OCS-reconfig simulate a reconfigurable fabric.
type Iterator interface {
	Backend
	Iteration(ctx context.Context, m *model.Model, o Options) (Iteration, error)
}

// entry pairs a backend with its display rank (paper order for the §5.1
// set, then additions).
type entry struct {
	rank int
	b    Backend
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]entry)
)

// Register adds a backend under its Name. rank orders All()/Names():
// entries sort by (rank, name), so the §5.1 comparison set keeps the
// paper's order and later fabrics append deterministically. Register
// panics on a duplicate name — backends are package-level singletons
// registered from init, and a silent overwrite would let two files fight
// over one architecture.
func Register(rank int, b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	name := b.Name()
	if name == "" {
		panic("arch: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("arch: duplicate backend %q", name))
	}
	registry[name] = entry{rank: rank, b: b}
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e.b, ok
}

// All returns every registered backend sorted by (rank, name) — a stable
// order that cannot drift from what Lookup accepts.
func All() []Backend {
	regMu.RLock()
	defer regMu.RUnlock()
	es := make([]entry, 0, len(registry))
	for _, e := range registry {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].rank != es[j].rank {
			return es[i].rank < es[j].rank
		}
		return es[i].b.Name() < es[j].b.Name()
	})
	out := make([]Backend, len(es))
	for i, e := range es {
		out[i] = e.b
	}
	return out
}

// Names returns the registered backend names in All() order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name()
	}
	return out
}

// Evaluate predicts one training iteration of m on backend b: backends
// implementing Iterator run their own evaluation; every other backend is
// a static fabric searched with flexnet's MCMC strategy search (the §5.1
// baseline procedure).
func Evaluate(ctx context.Context, b Backend, m *model.Model, o Options) (Iteration, error) {
	if it, ok := b.(Iterator); ok {
		return it.Iteration(ctx, m, o)
	}
	fab, err := b.Build(o)
	if err != nil {
		return Iteration{}, err
	}
	_, it, err := flexnet.SearchOnFabricContext(ctx, m, fab, o.Servers, o.Batch, flexnet.MCMCConfig{
		Iters: o.MCMCIters, Seed: o.Seed,
		Parallelism: o.Parallelism, Workers: o.SearchWorkers,
	}, o.GPU)
	if err != nil {
		return Iteration{}, err
	}
	return Iteration{
		MPSeconds:        it.MPTime,
		ComputeSeconds:   it.ComputeTime,
		AllReduceSeconds: it.AllReduceTime,
		BandwidthTax:     it.BandwidthTax,
	}, nil
}
