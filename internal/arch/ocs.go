package arch

import (
	"context"

	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/model"
)

// ocsReconfig is the OCS-reconfig baseline: millisecond-scale 3D-MEMS
// optical circuit switching (10 ms) with host-based forwarding over the
// instantaneous topology, and the paper's exponential parallel-link
// discount (nil selects it). Priced as TopoOpt on OCS ports instead of
// patch panels.
type ocsReconfig struct{}

func init() { Register(6, ocsReconfig{}) }

func (ocsReconfig) Name() string { return "OCS-reconfig" }

// Build returns ErrNoStaticFabric: circuits re-wire during the iteration.
func (ocsReconfig) Build(Options) (*flexnet.Fabric, error) { return nil, ErrNoStaticFabric }

func (ocsReconfig) Cost(o Options) (float64, error) {
	return cost.TopoOptOCS(o.Servers, o.Degree, o.LinkBW), nil
}

func (ocsReconfig) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: o.Degree, LinkBW: o.LinkBW,
		HostForwarding: true, Reconfigurable: true}
}

// Iteration simulates the reconfiguration loop (deterministic and
// sub-second; ctx is not polled mid-simulation).
func (ocsReconfig) Iteration(_ context.Context, m *model.Model, o Options) (Iteration, error) {
	return reconfigurableIteration(m, o, 10e-3, true, nil)
}
