package arch

import (
	"context"
	"errors"
	"math"
	"testing"

	"topoopt/internal/model"
	"topoopt/internal/topo"
)

// paperOrder is the §5.1 comparison set in the paper's display order,
// followed by the fabrics added since.
var paperOrder = []string{"TopoOpt", "IdealSwitch", "Fat-tree", "OversubFatTree",
	"Expander", "SiP-ML", "OCS-reconfig", "Torus", "SiP-Ring"}

// smallOpts is a fast, feasible configuration every backend accepts.
func smallOpts() Options {
	return Options{Servers: 8, Degree: 2, LinkBW: 100e9,
		Rounds: 1, MCMCIters: 5, Seed: 3}
}

// backendKind classifies a backend by name for test expectations — the
// one place a switch over architecture names is allowed to live.
func backendKind(name string) string {
	switch name {
	case "TopoOpt":
		return "cooptimized"
	case "SiP-ML", "OCS-reconfig":
		return "reconfigurable"
	case "IdealSwitch", "Fat-tree", "OversubFatTree", "Expander", "Torus", "SiP-Ring":
		return "static"
	}
	return "unknown"
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	names := Names()
	if len(names) != len(paperOrder) {
		t.Fatalf("registry = %v, want %v", names, paperOrder)
	}
	for i, want := range paperOrder {
		if names[i] != want {
			t.Errorf("Names()[%d] = %s, want %s", i, names[i], want)
		}
	}
	for _, n := range names {
		b, ok := Lookup(n)
		if !ok || b.Name() != n {
			t.Errorf("Lookup(%s) inconsistent", n)
		}
	}
	if _, ok := Lookup("warpdrive"); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register must panic")
		}
	}()
	Register(99, topoOpt{})
}

func TestBuildMatchesKind(t *testing.T) {
	o := smallOpts()
	for _, b := range All() {
		fab, err := b.Build(o)
		switch backendKind(b.Name()) {
		case "static":
			if err != nil {
				t.Errorf("%s: Build failed: %v", b.Name(), err)
				continue
			}
			if fab == nil || fab.Net == nil || fab.Routes == nil {
				t.Errorf("%s: incomplete fabric", b.Name())
			}
		case "cooptimized", "reconfigurable":
			if !errors.Is(err, ErrNoStaticFabric) {
				t.Errorf("%s: Build err = %v, want ErrNoStaticFabric", b.Name(), err)
			}
		default:
			t.Errorf("unclassified backend %s", b.Name())
		}
	}
}

func TestCostPositiveForAllBackends(t *testing.T) {
	o := Options{Servers: 128, Degree: 4, LinkBW: 100e9}
	for _, b := range All() {
		c, err := b.Cost(o)
		if err != nil {
			t.Errorf("%s: %v", b.Name(), err)
			continue
		}
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			t.Errorf("%s: cost %v", b.Name(), c)
		}
	}
}

func TestInterfacesNormalization(t *testing.T) {
	o := Options{Servers: 128, Degree: 4, LinkBW: 100e9}
	for _, b := range All() {
		spec := b.Interfaces(o)
		if spec.PerServer < 1 || spec.LinkBW <= 0 {
			t.Errorf("%s: degenerate spec %+v", b.Name(), spec)
		}
		// No backend may provision more aggregate bandwidth than the
		// nominal d×B budget.
		if got, budget := float64(spec.PerServer)*spec.LinkBW, float64(o.Degree)*o.LinkBW; got > budget+1e-6 {
			t.Errorf("%s: %v exceeds the d×B budget %v", b.Name(), got, budget)
		}
	}
	ideal, _ := Lookup("IdealSwitch")
	if spec := ideal.Interfaces(o); spec.PerServer != 1 || spec.LinkBW != 4*100e9 {
		t.Errorf("IdealSwitch must fold d interfaces into one d×B port, got %+v", spec)
	}
	ft, _ := Lookup("Fat-tree")
	if spec := ft.Interfaces(o); spec.LinkBW >= 4*100e9 {
		t.Errorf("Fat-tree normalization must reduce bandwidth below d×B, got %+v", spec)
	}
}

func TestFabricSeedDefaultsToSeedPlusOne(t *testing.T) {
	if (Options{Seed: 41}).fabricSeed() != 42 {
		t.Error("zero FabricSeed must derive Seed+1")
	}
	if (Options{Seed: 41, FabricSeed: 7}).fabricSeed() != 7 {
		t.Error("explicit FabricSeed must win")
	}
}

func TestEvaluateAllBackendsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry evaluation in -short mode")
	}
	m := model.CANDLEPreset(model.Sec6)
	o := smallOpts()
	for _, b := range All() {
		first, err := Evaluate(context.Background(), b, m, o)
		if err != nil {
			t.Errorf("%s: %v", b.Name(), err)
			continue
		}
		if first.Total() <= 0 {
			t.Errorf("%s: non-positive iteration %+v", b.Name(), first)
		}
		again, err := Evaluate(context.Background(), b, m, o)
		if err != nil {
			t.Errorf("%s: re-evaluate: %v", b.Name(), err)
			continue
		}
		if first != again {
			t.Errorf("%s: evaluation not deterministic: %+v vs %+v", b.Name(), first, again)
		}
	}
}

func TestEvaluateHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := model.CANDLEPreset(model.Sec6)
	b, _ := Lookup("Torus")
	if _, err := Evaluate(ctx, b, m, smallOpts()); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTorusBuildUsesDimensionOrderedRoutes(t *testing.T) {
	b, _ := Lookup("Torus")
	o := Options{Servers: 9, Degree: 4, LinkBW: 100e9, Seed: 1}
	fab, err := b.Build(o)
	if err != nil {
		t.Fatal(err)
	}
	if fab.Net.G.N() != 9 {
		t.Fatalf("torus nodes = %d, want 9", fab.Net.G.N())
	}
	dims, err := topo.TorusDims(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 3 || dims[1] != 3 {
		t.Fatalf("dims = %v, want [3 3]", dims)
	}
	// Every pair must be routed, and every hop must follow a torus link.
	for s := 0; s < 9; s++ {
		for d := 0; d < 9; d++ {
			if s == d {
				continue
			}
			path := fab.Routes.Get(s, d)
			if path == nil {
				t.Fatalf("no route %d->%d", s, d)
			}
			for i := 0; i+1 < len(path); i++ {
				if !fab.Net.G.HasEdge(path[i], path[i+1]) {
					t.Fatalf("route %d->%d uses missing link %d->%d",
						s, d, path[i], path[i+1])
				}
			}
		}
	}
}

func TestIterationTotal(t *testing.T) {
	it := Iteration{MPSeconds: 1, ComputeSeconds: 2, AllReduceSeconds: 4}
	if it.Total() != 7 {
		t.Errorf("Total = %v, want 7", it.Total())
	}
}
