package arch

import (
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/topo"
)

// expander is the §5.1 Expander baseline: a Jellyfish-style random
// d-regular direct-connect graph with host-based forwarding. The
// cheapest fabric (§5.2) — NICs, transceivers and fibers only.
type expander struct{}

func init() { Register(4, expander{}) }

func (expander) Name() string { return "Expander" }

func (expander) Build(o Options) (*flexnet.Fabric, error) {
	nw, err := topo.Expander(o.Servers, o.Degree, o.LinkBW, o.fabricSeed())
	if err != nil {
		return nil, err
	}
	return flexnet.NewSwitchFabric(nw), nil
}

func (expander) Cost(o Options) (float64, error) {
	return cost.Expander(o.Servers, o.Degree, o.LinkBW), nil
}

func (expander) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: o.Degree, LinkBW: o.LinkBW, HostForwarding: true}
}
