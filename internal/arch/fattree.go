package arch

import (
	"topoopt/internal/cost"
	"topoopt/internal/flexnet"
	"topoopt/internal/topo"
)

// fatTree is the §5.1 similar-cost Fat-tree baseline: a full-bisection
// fabric whose per-server bandwidth is reduced to B_ft so the whole
// interconnect costs the same as the TopoOpt patch-panel deployment
// (Figure 10's overlapping curves).
type fatTree struct{}

func init() { Register(2, fatTree{}) }

func (fatTree) Name() string { return "Fat-tree" }

func (fatTree) equivalentBW(o Options) float64 {
	return cost.EquivalentFatTreeBandwidth(o.Servers, o.Degree, o.LinkBW)
}

func (ft fatTree) Build(o Options) (*flexnet.Fabric, error) {
	return flexnet.NewSwitchFabric(topo.FatTree(o.Servers, ft.equivalentBW(o))), nil
}

func (ft fatTree) Cost(o Options) (float64, error) {
	return cost.FatTree(o.Servers, ft.equivalentBW(o)), nil
}

func (ft fatTree) Interfaces(o Options) IfaceSpec {
	return IfaceSpec{PerServer: 1, LinkBW: ft.equivalentBW(o)}
}
